GO ?= go

.PHONY: check build vet test race bench bench-ingest

check: build vet race ## full CI gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: ## hot-path localization benchmarks (see BENCH_hotpath.json)
	$(GO) test -run '^$$' -bench 'BenchmarkProbabilisticLargeMap$$|BenchmarkProbabilisticLocalize$$|BenchmarkHistogramLocalize$$|BenchmarkKNNSweep/k=3$$|BenchmarkBatchLocalize/workers=4$$|BenchmarkServerLocate$$' -benchmem -benchtime=2s .

bench-ingest: ## live-ingestion pipeline benchmarks (see BENCH_ingest.json)
	$(GO) test -run '^$$' -bench 'BenchmarkIngestReport|BenchmarkSnapshotSwap|BenchmarkServerLocateUnderIngest|BenchmarkServerLocateBatch|BenchmarkServerLocate$$' -benchmem -benchtime=500x .
