GO ?= go

.PHONY: check build vet test race bench

check: build vet race ## full CI gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: ## hot-path localization benchmarks (see BENCH_hotpath.json)
	$(GO) test -run '^$$' -bench 'BenchmarkProbabilisticLargeMap$$|BenchmarkProbabilisticLocalize$$|BenchmarkHistogramLocalize$$|BenchmarkKNNSweep/k=3$$|BenchmarkBatchLocalize/workers=4$$|BenchmarkServerLocate$$' -benchmem -benchtime=2s .
