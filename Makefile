GO ?= go

.PHONY: check build vet lint lint-fix-check test race bench bench-ingest bench-mapv2 bench-soak bench-venues bench-repl fuzz-smoke

check: build vet lint lint-fix-check race ## full CI gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint: ## loclint analyzers + gofmt gate over the whole module (LOCLINT_DEBUG=timing for per-analyzer wall time)
	$(GO) build -o bin/loclint ./cmd/loclint
	bin/loclint ./...
	@fmt_out=$$(gofmt -l $$(find . -name '*.go' -not -path './vendor/*' -not -path '*/testdata/*')); \
	if [ -n "$$fmt_out" ]; then echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

lint-fix-check: ## validate //loclint: directive grammar (typoed allow names, missing mmapdecode reasons)
	$(GO) build -o bin/loclint ./cmd/loclint
	bin/loclint -check ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke: ## 10s smoke run of each fuzz target
	$(GO) test -run '^$$' -fuzz FuzzWiscanParse -fuzztime 10s ./internal/wiscan/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/ingest/
	$(GO) test -run '^$$' -fuzz FuzzCompiledDecode -fuzztime 10s ./internal/trainingdb/
	$(GO) test -run '^$$' -fuzz FuzzReplFrameDecode -fuzztime 10s ./internal/repl/

bench: ## hot-path localization benchmarks (see BENCH_hotpath.json)
	$(GO) test -run '^$$' -bench 'BenchmarkProbabilisticLargeMap$$|BenchmarkProbabilisticLocalize$$|BenchmarkHistogramLocalize$$|BenchmarkKNNSweep/k=3$$|BenchmarkBatchLocalize/workers=4$$|BenchmarkServerLocate$$' -benchmem -benchtime=2s .

bench-ingest: ## live-ingestion pipeline benchmarks (see BENCH_ingest.json)
	$(GO) test -run '^$$' -bench 'BenchmarkIngestReport|BenchmarkSnapshotSwap|BenchmarkServerLocateUnderIngest|BenchmarkServerLocateBatch|BenchmarkServerLocate$$' -benchmem -benchtime=500x .

bench-mapv2: ## compiled-map v2 benchmarks: quantized vs float64, top-k vs full sort (see BENCH_mapv2.json)
	$(GO) test -run '^$$' -bench 'BenchmarkMapV2' -benchmem -benchtime=20x -timeout 30m .

bench-soak: ## 60s mixed-traffic soak of the serving front end (see BENCH_soak.json)
	$(GO) run ./cmd/soak -duration 60s -qps 0 -out BENCH_soak.json

bench-venues: ## 1000-venue city soak under an LRU budget (see BENCH_venues.json)
	$(GO) run ./cmd/soak -venues 1000 -duration 30s -workers 8 -out BENCH_venues.json

bench-repl: ## trainer + 2-follower replication fleet soak over a 100k-entry map (see BENCH_repl.json)
	$(GO) run ./cmd/soak -followers 2 -duration 15s -workers 4 -preload 5000 \
		-map-entries 100000 -locate-qps 50 -out BENCH_repl.json
