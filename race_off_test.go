//go:build !race

package indoorloc_test

const raceEnabled = false
