// Package feq holds the epsilon comparisons the nofloateq analyzer
// (internal/analysis/nofloateq) requires on serving-path float math.
// Exact ==/!= on floating point silently stops matching after any
// rounding — a posterior normalized twice, a config value computed
// instead of typed — so the serving packages compare through these
// helpers instead.
package feq

import "math"

// Tol is the default absolute tolerance. The quantities compared on
// the serving path (RSSI dB levels, posterior masses, feet) are all
// far above 1e-9, so anything within it is "the same value up to
// float rounding".
const Tol = 1e-9

// Eq reports whether a and b are equal within Tol.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Tol }

// Zero reports whether x is zero within Tol — the guard for "unset
// config field" sentinels and degenerate sums about to be divided by.
func Zero(x float64) bool { return math.Abs(x) <= Tol }
