// Package locmap reads and writes location maps: the text files
// pairing application-level location names with plan-frame
// coordinates. The Training Database Generator joins a location map
// against a wi-scan collection to attach coordinates to every
// observation; the Floor Plan Processor's "add location names" feature
// produces the same mapping inside an annotated plan.
//
// # File format
//
// Location maps are line-oriented UTF-8 text:
//
//	# location map v1
//	kitchen	5.0	35.0
//	center of hallway	25.0	20.0
//	room D22	45.0	10.0
//
// Columns are tab-separated: name, x, y (feet in the plan frame).
// Names may contain spaces. '#' lines and blank lines are ignored.
// Space-separated files are accepted when the name has no spaces.
package locmap

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"indoorloc/internal/geom"
)

// Map associates location names with coordinates.
type Map struct {
	points map[string]geom.Point
	order  []string // insertion order for stable writes
}

// New returns an empty location map.
func New() *Map {
	return &Map{points: make(map[string]geom.Point)}
}

// ErrEmpty is returned when a location map stream has no entries.
var ErrEmpty = errors.New("locmap: no entries")

// Add inserts or replaces a named location. Empty names and non-finite
// coordinates are rejected.
func (m *Map) Add(name string, p geom.Point) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return errors.New("locmap: empty location name")
	}
	if !p.IsFinite() {
		return fmt.Errorf("locmap: %q has non-finite coordinates %v", name, p)
	}
	if _, exists := m.points[name]; !exists {
		m.order = append(m.order, name)
	}
	m.points[name] = p
	return nil
}

// Lookup returns the coordinates for name.
func (m *Map) Lookup(name string) (geom.Point, bool) {
	p, ok := m.points[name]
	return p, ok
}

// Len returns the number of locations.
func (m *Map) Len() int { return len(m.points) }

// Names returns the location names in insertion order. The slice is a
// copy.
func (m *Map) Names() []string { return append([]string(nil), m.order...) }

// SortedNames returns the location names sorted lexically.
func (m *Map) SortedNames() []string {
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Nearest returns the named location closest to p, or "" for an empty
// map. Ties break toward the lexically smaller name so the result is
// deterministic.
func (m *Map) Nearest(p geom.Point) (string, geom.Point, bool) {
	// Scans insertion order with an explicit lexical tie-break rather
	// than sorting a fresh name slice: this sits on the per-observation
	// serving path, where the copy-and-sort was the map's only
	// allocation.
	bestName := ""
	var bestPt geom.Point
	best := math.Inf(1)
	for _, name := range m.order {
		q := m.points[name]
		d := p.DistSq(q)
		if d < best || (d == best && (bestName == "" || name < bestName)) {
			best = d
			bestName = name
			bestPt = q
		}
	}
	return bestName, bestPt, bestName != ""
}

// Read parses a location map stream.
func Read(r io.Reader) (*Map, error) {
	m := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(strings.TrimRight(sc.Text(), "\r"))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, x, y, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("locmap: line %d %q: %v", lineNo, line, err)
		}
		if err := m.Add(name, geom.Pt(x, y)); err != nil {
			return nil, fmt.Errorf("locmap: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("locmap: read: %w", err)
	}
	if m.Len() == 0 {
		return nil, ErrEmpty
	}
	return m, nil
}

func parseLine(line string) (name string, x, y float64, err error) {
	var fields []string
	if strings.Contains(line, "\t") {
		fields = strings.Split(line, "\t")
		// Collapse accidental doubled tabs.
		kept := fields[:0]
		for _, f := range fields {
			if strings.TrimSpace(f) != "" {
				kept = append(kept, strings.TrimSpace(f))
			}
		}
		fields = kept
	} else {
		fields = strings.Fields(line)
	}
	if len(fields) < 3 {
		return "", 0, 0, fmt.Errorf("want 3 fields (name x y), got %d", len(fields))
	}
	// The last two fields are coordinates; everything before is name
	// (space-separated names survive this way too).
	xs := fields[len(fields)-2]
	ys := fields[len(fields)-1]
	name = strings.Join(fields[:len(fields)-2], " ")
	x, err = strconv.ParseFloat(xs, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("x: %v", err)
	}
	y, err = strconv.ParseFloat(ys, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("y: %v", err)
	}
	return name, x, y, nil
}

// Write renders the map in canonical tab-separated form, entries in
// insertion order.
func Write(w io.Writer, m *Map) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# location map v1")
	for _, name := range m.order {
		p := m.points[name]
		fmt.Fprintf(bw, "%s\t%g\t%g\n", name, p.X, p.Y)
	}
	return bw.Flush()
}

// ReadFile loads a location map from disk.
func ReadFile(path string) (*Map, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("locmap: %w", err)
	}
	defer fh.Close()
	return Read(fh)
}

// WriteFile saves a location map to disk.
func WriteFile(path string, m *Map) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("locmap: %w", err)
	}
	if err := Write(fh, m); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
