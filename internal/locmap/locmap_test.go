package locmap

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/geom"
)

func TestAddLookup(t *testing.T) {
	m := New()
	if err := m.Add("kitchen", geom.Pt(5, 35)); err != nil {
		t.Fatal(err)
	}
	p, ok := m.Lookup("kitchen")
	if !ok || p != geom.Pt(5, 35) {
		t.Errorf("Lookup = %v, %v", p, ok)
	}
	if _, ok := m.Lookup("attic"); ok {
		t.Error("phantom lookup")
	}
	// Replace keeps one entry.
	m.Add("kitchen", geom.Pt(6, 36))
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	p, _ = m.Lookup("kitchen")
	if p != geom.Pt(6, 36) {
		t.Errorf("replaced value = %v", p)
	}
}

func TestAddValidation(t *testing.T) {
	m := New()
	if err := m.Add("", geom.Pt(0, 0)); err == nil {
		t.Error("empty name accepted")
	}
	if err := m.Add("  ", geom.Pt(0, 0)); err == nil {
		t.Error("blank name accepted")
	}
	if err := m.Add("x", geom.Pt(math.NaN(), 0)); err == nil {
		t.Error("NaN accepted")
	}
	if err := m.Add("x", geom.Pt(0, math.Inf(1))); err == nil {
		t.Error("Inf accepted")
	}
}

func TestNamesOrder(t *testing.T) {
	m := New()
	m.Add("zeta", geom.Pt(1, 1))
	m.Add("alpha", geom.Pt(2, 2))
	m.Add("mid", geom.Pt(3, 3))
	if got := m.Names(); got[0] != "zeta" || got[1] != "alpha" || got[2] != "mid" {
		t.Errorf("Names = %v", got)
	}
	if got := m.SortedNames(); got[0] != "alpha" || got[2] != "zeta" {
		t.Errorf("SortedNames = %v", got)
	}
}

func TestNearest(t *testing.T) {
	m := New()
	if _, _, ok := m.Nearest(geom.Pt(0, 0)); ok {
		t.Error("empty map returned a nearest")
	}
	m.Add("a", geom.Pt(0, 0))
	m.Add("b", geom.Pt(10, 0))
	name, p, ok := m.Nearest(geom.Pt(2, 1))
	if !ok || name != "a" || p != geom.Pt(0, 0) {
		t.Errorf("Nearest = %q %v %v", name, p, ok)
	}
	// Tie: equidistant → lexically smaller name.
	name, _, _ = m.Nearest(geom.Pt(5, 0))
	if name != "a" {
		t.Errorf("tie break = %q, want a", name)
	}
}

func TestReadBasic(t *testing.T) {
	in := `# location map v1
kitchen	5.0	35.0
center of hallway	25	20
room D22	45.0	10.5
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	p, ok := m.Lookup("center of hallway")
	if !ok || p != geom.Pt(25, 20) {
		t.Errorf("hallway = %v %v", p, ok)
	}
	p, _ = m.Lookup("room D22")
	if p != geom.Pt(45, 10.5) {
		t.Errorf("D22 = %v", p)
	}
}

func TestReadSpaceSeparated(t *testing.T) {
	// Space-separated with a multi-word name: last two fields are
	// coordinates, the rest joins into the name.
	in := "master bedroom 10 20\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := m.Lookup("master bedroom"); !ok || p != geom.Pt(10, 20) {
		t.Errorf("lookup = %v %v", p, ok)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"onlyname\n",
		"name 1\n",
		"name x 2\n",
		"name 1 y\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	if _, err := Read(strings.NewReader("# nothing\n")); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := New()
	m.Add("kitchen", geom.Pt(5, 35))
	m.Add("room D22", geom.Pt(45, 10.5))
	m.Add("center of hallway", geom.Pt(25, 20))
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
	for _, name := range m.Names() {
		want, _ := m.Lookup(name)
		got, ok := back.Lookup(name)
		if !ok || got != want {
			t.Errorf("%s: %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	// Insertion order preserved through the file.
	if names := back.Names(); names[0] != "kitchen" || names[2] != "center of hallway" {
		t.Errorf("order = %v", names)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loc.map")
	m := New()
	m.Add("porch", geom.Pt(0, 0))
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := back.Lookup("porch"); !ok || p != geom.Pt(0, 0) {
		t.Errorf("file round trip = %v %v", p, ok)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.map")); err == nil {
		t.Error("missing file accepted")
	}
}
