// Package units provides the unit conversions used throughout the
// toolkit.
//
// The paper's experiments are specified in feet (a 50 ft × 40 ft house
// with training points every 10 ft), so the toolkit's canonical
// distance unit is the foot. Radio signal strength is expressed in dBm,
// the unit reported by 802.11 NICs; power in milliwatts is available
// for models that work in linear space.
package units

import (
	"fmt"
	"math"
)

// FeetPerMeter is the exact number of international feet in one metre.
const FeetPerMeter = 1 / 0.3048

// MetersPerFoot is the exact length of one international foot in metres.
const MetersPerFoot = 0.3048

// Feet is a distance in feet, the toolkit's canonical distance unit.
type Feet float64

// Meters converts a distance in feet to metres.
func (f Feet) Meters() Meters { return Meters(float64(f) * MetersPerFoot) }

// String formats the distance with a "ft" suffix.
func (f Feet) String() string { return fmt.Sprintf("%.2f ft", float64(f)) }

// Meters is a distance in metres.
type Meters float64

// Feet converts a distance in metres to feet.
func (m Meters) Feet() Feet { return Feet(float64(m) * FeetPerMeter) }

// String formats the distance with an "m" suffix.
func (m Meters) String() string { return fmt.Sprintf("%.2f m", float64(m)) }

// DBm is a signal power level in decibel-milliwatts. Typical 802.11
// receive levels range from about -30 dBm (adjacent to the AP) down to
// the noise floor near -100 dBm.
type DBm float64

// Milliwatts converts a dBm level to linear milliwatts.
func (p DBm) Milliwatts() Milliwatts {
	return Milliwatts(math.Pow(10, float64(p)/10))
}

// String formats the level with a "dBm" suffix.
func (p DBm) String() string { return fmt.Sprintf("%.1f dBm", float64(p)) }

// Milliwatts is a linear power in milliwatts.
type Milliwatts float64

// DBm converts a linear milliwatt power to dBm. Non-positive powers
// map to -infinity dBm.
func (mw Milliwatts) DBm() DBm {
	if mw <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(float64(mw)))
}

// QuantizeRSSI rounds a model-space signal level to the nearest whole
// dBm and clamps it to the range real NIC drivers report. Wi-scan
// records store RSSI as a small integer, mirroring wireless card
// firmware.
func QuantizeRSSI(p DBm) int {
	const (
		maxRSSI = 0    // no NIC reports a positive receive level
		minRSSI = -120 // below any practical noise floor
	)
	r := int(math.Round(float64(p)))
	if r > maxRSSI {
		r = maxRSSI
	}
	if r < minRSSI {
		r = minRSSI
	}
	return r
}

// ClampDBm limits a level to the closed range [lo, hi].
func ClampDBm(p, lo, hi DBm) DBm {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}
