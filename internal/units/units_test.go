package units

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFeetMetersRoundTrip(t *testing.T) {
	cases := []float64{0, 1, 10, 50, 40, 3.2808398950131235, -7.5}
	for _, ft := range cases {
		got := float64(Feet(ft).Meters().Feet())
		if !almostEqual(got, ft, 1e-12) {
			t.Errorf("Feet(%v) round trip = %v", ft, got)
		}
	}
}

func TestKnownConversions(t *testing.T) {
	if got := float64(Meters(1).Feet()); !almostEqual(got, 3.280839895, 1e-9) {
		t.Errorf("1 m = %v ft, want 3.280839895", got)
	}
	if got := float64(Feet(50).Meters()); !almostEqual(got, 15.24, 1e-12) {
		t.Errorf("50 ft = %v m, want 15.24", got)
	}
}

func TestDBmMilliwatts(t *testing.T) {
	if got := float64(DBm(0).Milliwatts()); !almostEqual(got, 1, 1e-12) {
		t.Errorf("0 dBm = %v mW, want 1", got)
	}
	if got := float64(DBm(-30).Milliwatts()); !almostEqual(got, 0.001, 1e-15) {
		t.Errorf("-30 dBm = %v mW, want 0.001", got)
	}
	if got := float64(Milliwatts(100).DBm()); !almostEqual(got, 20, 1e-12) {
		t.Errorf("100 mW = %v dBm, want 20", got)
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		// Restrict to a physical range to avoid overflow in Pow.
		p := math.Mod(math.Abs(raw), 120) * -1 // [-120, 0]
		back := float64(DBm(p).Milliwatts().DBm())
		return almostEqual(back, p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(105))}); err != nil {
		t.Error(err)
	}
}

func TestMilliwattsDBmNonPositive(t *testing.T) {
	if got := float64(Milliwatts(0).DBm()); !math.IsInf(got, -1) {
		t.Errorf("0 mW = %v dBm, want -Inf", got)
	}
	if got := float64(Milliwatts(-5).DBm()); !math.IsInf(got, -1) {
		t.Errorf("-5 mW = %v dBm, want -Inf", got)
	}
}

func TestQuantizeRSSI(t *testing.T) {
	cases := []struct {
		in   DBm
		want int
	}{
		{-60.2, -60},
		{-60.7, -61},
		{-59.5, -60}, // math.Round rounds half away from zero
		{5, 0},       // clamp high
		{-200, -120}, // clamp low
		{0, 0},
	}
	for _, c := range cases {
		if got := QuantizeRSSI(c.in); got != c.want {
			t.Errorf("QuantizeRSSI(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuantizeRSSIRangeProperty(t *testing.T) {
	f := func(p float64) bool {
		r := QuantizeRSSI(DBm(p))
		return r <= 0 && r >= -120
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(105))}); err != nil {
		t.Error(err)
	}
}

func TestClampDBm(t *testing.T) {
	if got := ClampDBm(-150, -100, -30); got != -100 {
		t.Errorf("clamp low: got %v", got)
	}
	if got := ClampDBm(-20, -100, -30); got != -30 {
		t.Errorf("clamp high: got %v", got)
	}
	if got := ClampDBm(-55, -100, -30); got != -55 {
		t.Errorf("clamp mid: got %v", got)
	}
}

func TestStringers(t *testing.T) {
	if s := Feet(12.345).String(); s != "12.35 ft" {
		t.Errorf("Feet.String() = %q", s)
	}
	if s := Meters(1).String(); s != "1.00 m" {
		t.Errorf("Meters.String() = %q", s)
	}
	if s := DBm(-61.25).String(); s != "-61.2 dBm" && s != "-61.3 dBm" {
		t.Errorf("DBm.String() = %q", s)
	}
}
