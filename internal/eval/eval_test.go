package eval

import (
	"errors"
	"math"
	"strings"
	"testing"

	"indoorloc/internal/geom"
)

func sampleReport() *Report {
	r := &Report{}
	r.Add(Trial{True: geom.Pt(0, 0), Est: geom.Pt(3, 4), EstName: "a", WantName: "a"})  // 5 ft, valid
	r.Add(Trial{True: geom.Pt(0, 0), Est: geom.Pt(0, 10), EstName: "b", WantName: "a"}) // 10 ft, invalid
	r.Add(Trial{True: geom.Pt(0, 0), Est: geom.Pt(0, 0), EstName: "a", WantName: "a"})  // 0 ft, valid
	r.Add(Trial{True: geom.Pt(0, 0), WantName: "a", Err: errors.New("no signal")})      // failed
	return r
}

func TestTrialBasics(t *testing.T) {
	ok := Trial{True: geom.Pt(0, 0), Est: geom.Pt(3, 4), EstName: "x", WantName: "x"}
	if ok.Deviation() != 5 {
		t.Errorf("Deviation = %v", ok.Deviation())
	}
	if !ok.Valid() {
		t.Error("valid trial reported invalid")
	}
	bad := Trial{EstName: "x", WantName: "y"}
	if bad.Valid() {
		t.Error("wrong name reported valid")
	}
	coord := Trial{EstName: "", WantName: "y"}
	if coord.Valid() {
		t.Error("coordinate-only estimate cannot be valid")
	}
	failed := Trial{Err: errors.New("x"), EstName: "y", WantName: "y"}
	if failed.Valid() || failed.Deviation() != 0 {
		t.Error("failed trial mis-scored")
	}
}

func TestReportMetrics(t *testing.T) {
	r := sampleReport()
	if r.N() != 4 || r.Failures() != 1 {
		t.Errorf("N=%d failures=%d", r.N(), r.Failures())
	}
	if got := r.MeanError(); math.Abs(got-5) > 1e-12 {
		t.Errorf("MeanError = %v", got)
	}
	if got := r.MedianError(); got != 5 {
		t.Errorf("MedianError = %v", got)
	}
	if got := r.MaxError(); got != 10 {
		t.Errorf("MaxError = %v", got)
	}
	// 2 valid out of 4 total (failure counts against).
	if got := r.ValidRate(); got != 0.5 {
		t.Errorf("ValidRate = %v", got)
	}
	if got := r.WithinRate(5); got != 0.5 {
		t.Errorf("WithinRate(5) = %v", got)
	}
	if got := r.WithinRate(100); got != 0.75 {
		t.Errorf("WithinRate(100) = %v", got)
	}
	if got := r.Percentile(0); got != 0 {
		t.Errorf("P0 = %v", got)
	}
	if got := r.Percentile(100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
}

func TestEmptyReport(t *testing.T) {
	r := &Report{}
	if r.ValidRate() != 0 || r.MeanError() != 0 || r.WithinRate(1) != 0 {
		t.Error("empty report not zero")
	}
	if r.ErrorCDF() != nil {
		t.Error("empty CDF not nil")
	}
	allFailed := &Report{}
	allFailed.Add(Trial{Err: errors.New("x")})
	if allFailed.ErrorCDF() != nil {
		t.Error("all-failed CDF not nil")
	}
}

func TestErrorCDF(t *testing.T) {
	r := sampleReport()
	cdf := r.ErrorCDF()
	if cdf == nil {
		t.Fatal("nil CDF")
	}
	if got := cdf.At(5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("CDF(5) = %v", got)
	}
	if got := cdf.At(10); got != 1 {
		t.Errorf("CDF(10) = %v", got)
	}
}

func TestConfusion(t *testing.T) {
	r := sampleReport()
	c := r.Confusion()
	if c["a→a"] != 2 || c["a→b"] != 1 {
		t.Errorf("Confusion = %v", c)
	}
	if len(c) != 2 {
		t.Errorf("unexpected keys: %v", c)
	}
}

func TestStringAndTable(t *testing.T) {
	r := sampleReport()
	s := r.String()
	for _, want := range []string{"n=4", "failures=1", "valid=50%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	table := r.Table()
	if !strings.Contains(table, "FAIL") {
		t.Error("Table missing failure row")
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 5 { // header + 4 trials
		t.Errorf("Table has %d lines", len(lines))
	}
	// Sorted by deviation descending: the 10 ft row leads (failures
	// score 0 and sink).
	if !strings.Contains(lines[1], "10.0") {
		t.Errorf("first data row = %q", lines[1])
	}
}
