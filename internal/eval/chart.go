package eval

import (
	"fmt"
	"strings"

	"indoorloc/internal/stats"
)

// AsciiCDF renders an empirical CDF as a fixed-size text chart, the
// way localization papers plot error distributions. Columns span
// [0, xMax]; rows span [0, 1]. It returns "" for a nil CDF.
func AsciiCDF(cdf *stats.ECDF, xMax float64, width, height int) string {
	if cdf == nil || width < 10 || height < 4 || xMax <= 0 {
		return ""
	}
	var b strings.Builder
	step := xMax / float64(width)
	// Rows top (P=1) to bottom (P=0).
	for row := height; row >= 1; row-- {
		upper := float64(row) / float64(height)
		lower := float64(row-1) / float64(height)
		if row == height {
			fmt.Fprintf(&b, "%4.2f |", 1.0)
		} else if row == height/2 {
			fmt.Fprintf(&b, "%4.2f |", upper)
		} else {
			b.WriteString("     |")
		}
		for col := 1; col <= width; col++ {
			p := cdf.At(float64(col) * step)
			switch {
			case p >= upper:
				b.WriteByte('#')
			case p > lower:
				b.WriteByte('+')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	// X axis.
	b.WriteString("     +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	axis := fmt.Sprintf("      0%sft", strings.Repeat(" ", width-len(fmt.Sprintf("%.0f", xMax))-3))
	axis += fmt.Sprintf("%.0f", xMax)
	b.WriteString(axis)
	b.WriteByte('\n')
	return b.String()
}

// CDFChart renders the report's error CDF with sensible defaults: the
// x axis runs to the observed maximum (rounded up to 5 ft).
func (r *Report) CDFChart() string {
	cdf := r.ErrorCDF()
	if cdf == nil {
		return ""
	}
	max := r.MaxError()
	xMax := 5.0
	for xMax < max {
		xMax += 5
	}
	return AsciiCDF(cdf, xMax, 60, 10)
}
