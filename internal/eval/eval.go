// Package eval scores localization runs. It implements the paper's
// two headline metrics —
//
//   - the probabilistic approach's valid-estimation rate ("60% [of]
//     observations end up with a valid estimation"): an estimate is
//     valid when the returned training point is the training point
//     nearest the true position, and
//   - the geometric approach's average deviation ("the average
//     deviation ... of the 13 observation[s]"): the mean Euclidean
//     distance between estimate and truth —
//
// plus the error CDF, percentiles and confusion counts used by the
// ablation experiments.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// Trial is one observation's outcome.
type Trial struct {
	// True is the ground-truth position.
	True geom.Point
	// Est is the estimated position.
	Est geom.Point
	// EstName is the training-location name the localizer returned
	// (symbolic methods only).
	EstName string
	// WantName is the training location nearest the true position —
	// the "right answer" for the paper's validity metric.
	WantName string
	// Err is set when the localizer failed on this observation.
	Err error
}

// Deviation returns the Euclidean error in feet, or 0 for failed
// trials (use Failed to separate them).
func (t Trial) Deviation() float64 {
	if t.Err != nil {
		return 0
	}
	return t.True.Dist(t.Est)
}

// Valid reports the paper's §5.1 criterion: the symbolic estimate
// names the training point nearest the truth.
func (t Trial) Valid() bool {
	return t.Err == nil && t.EstName != "" && t.EstName == t.WantName
}

// Report aggregates trials into the paper's metrics.
type Report struct {
	Trials []Trial
}

// Add appends one trial.
func (r *Report) Add(t Trial) { r.Trials = append(r.Trials, t) }

// N returns the number of trials.
func (r *Report) N() int { return len(r.Trials) }

// Failures returns how many trials errored.
func (r *Report) Failures() int {
	n := 0
	for _, t := range r.Trials {
		if t.Err != nil {
			n++
		}
	}
	return n
}

// deviations collects errors from successful trials.
func (r *Report) deviations() []float64 {
	out := make([]float64, 0, len(r.Trials))
	for _, t := range r.Trials {
		if t.Err == nil {
			out = append(out, t.Deviation())
		}
	}
	return out
}

// MeanError returns the paper's §5.2 metric: mean deviation in feet
// over successful trials, or 0 when none succeeded.
func (r *Report) MeanError() float64 { return stats.Mean(r.deviations()) }

// MedianError returns the median deviation over successful trials.
func (r *Report) MedianError() float64 { return stats.Median(r.deviations()) }

// Percentile returns the p-th percentile deviation.
func (r *Report) Percentile(p float64) float64 {
	return stats.Percentile(r.deviations(), p)
}

// MaxError returns the worst deviation over successful trials.
func (r *Report) MaxError() float64 {
	worst := 0.0
	for _, t := range r.Trials {
		if t.Err == nil && t.Deviation() > worst {
			worst = t.Deviation()
		}
	}
	return worst
}

// ValidRate returns the paper's §5.1 metric: the fraction of all
// trials (failures count against it) whose symbolic estimate named the
// nearest training point.
func (r *Report) ValidRate() float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.Trials {
		if t.Valid() {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// WithinRate returns the fraction of all trials with deviation at most
// radius feet — the tolerance-based validity variant.
func (r *Report) WithinRate(radius float64) float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	n := 0
	for _, t := range r.Trials {
		if t.Err == nil && t.Deviation() <= radius {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// ErrorCDF returns the empirical CDF of deviations over successful
// trials, or nil when none succeeded.
func (r *Report) ErrorCDF() *stats.ECDF {
	ds := r.deviations()
	if len(ds) == 0 {
		return nil
	}
	e, err := stats.NewECDF(ds)
	if err != nil {
		return nil
	}
	return e
}

// Confusion counts symbolic outcomes: how often each true training
// point was estimated as each name. Keys are "want→got".
func (r *Report) Confusion() map[string]int {
	out := make(map[string]int)
	for _, t := range r.Trials {
		if t.Err != nil || t.EstName == "" {
			continue
		}
		out[t.WantName+"→"+t.EstName]++
	}
	return out
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"n=%d failures=%d valid=%.0f%% mean=%.1fft median=%.1fft p90=%.1fft max=%.1fft",
		r.N(), r.Failures(), 100*r.ValidRate(),
		r.MeanError(), r.MedianError(), r.Percentile(90), r.MaxError())
}

// Table renders the per-trial breakdown, sorted by deviation
// descending, for experiment logs.
func (r *Report) Table() string {
	rows := append([]Trial(nil), r.Trials...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Deviation() > rows[j].Deviation() })
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-22s %-10s %-14s %s\n", "true", "estimate", "error(ft)", "want", "got")
	for _, t := range rows {
		if t.Err != nil {
			fmt.Fprintf(&b, "%-22v %-22s %-10s %-14s %s\n", t.True, "-", "FAIL", t.WantName, t.Err)
			continue
		}
		fmt.Fprintf(&b, "%-22v %-22v %-10.1f %-14s %s\n", t.True, t.Est, t.Deviation(), t.WantName, t.EstName)
	}
	return b.String()
}
