package eval

import (
	"strings"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

func TestAsciiCDFShape(t *testing.T) {
	cdf, err := stats.NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	chart := AsciiCDF(cdf, 10, 40, 8)
	if chart == "" {
		t.Fatal("empty chart")
	}
	lines := strings.Split(strings.TrimRight(chart, "\n"), "\n")
	if len(lines) != 10 { // 8 rows + axis + labels
		t.Fatalf("%d lines", len(lines))
	}
	// Monotone: lower rows have lower probability thresholds, so the
	// filled width can only grow from the top row down.
	prev := -1
	for _, line := range lines[:8] {
		body := line[6:]
		filled := strings.Count(body, "#") + strings.Count(body, "+")
		if prev >= 0 && filled < prev {
			t.Fatalf("CDF not monotone: %d then %d", prev, filled)
		}
		prev = filled
	}
	// The top row carries the 1.00 label, bottom area the axis.
	if !strings.HasPrefix(lines[0], "1.00") {
		t.Errorf("top label: %q", lines[0])
	}
	if !strings.Contains(lines[9], "10") {
		t.Errorf("x label: %q", lines[9])
	}
}

func TestAsciiCDFDegenerate(t *testing.T) {
	if AsciiCDF(nil, 10, 40, 8) != "" {
		t.Error("nil CDF produced output")
	}
	cdf, _ := stats.NewECDF([]float64{1})
	if AsciiCDF(cdf, 0, 40, 8) != "" {
		t.Error("zero xMax produced output")
	}
	if AsciiCDF(cdf, 10, 2, 8) != "" {
		t.Error("tiny width produced output")
	}
	if AsciiCDF(cdf, 10, 40, 1) != "" {
		t.Error("tiny height produced output")
	}
}

func TestReportCDFChart(t *testing.T) {
	r := &Report{}
	if r.CDFChart() != "" {
		t.Error("empty report produced a chart")
	}
	r.Add(Trial{True: geom.Pt(0, 0), Est: geom.Pt(3, 4)})
	r.Add(Trial{True: geom.Pt(0, 0), Est: geom.Pt(0, 12)})
	chart := r.CDFChart()
	if chart == "" {
		t.Fatal("no chart")
	}
	// Axis must reach past the 12 ft max error (rounded to 15).
	if !strings.Contains(chart, "15") {
		t.Errorf("axis: %q", chart)
	}
}
