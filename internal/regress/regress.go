// Package regress implements the least-squares regression machinery
// the paper's geometric approach depends on.
//
// Section 5.2 fits, per access point, a "reverse square" model of
// signal strength against distance,
//
//	SignalStrength(d) = a + b/d + c/d²,
//
// by least squares over the training samples, then inverts the fitted
// curve at observation time to turn a signal strength back into a
// distance. The package provides general linear least squares over an
// arbitrary basis (solved by normal equations with partially pivoted
// Gaussian elimination), the inverse-power and polynomial bases, the
// log-distance basis used by the RADAR-style model, goodness-of-fit
// statistics, and numeric inversion of fitted monotone models.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Basis maps a scalar input to its feature vector. The fitted model is
// the dot product of the coefficient vector with the feature vector.
type Basis interface {
	// Features returns the feature vector for input x. The length must
	// be the same for every x.
	Features(x float64) []float64
	// Terms returns human-readable names for the features, used when
	// printing fitted models.
	Terms() []string
}

// InversePowerBasis is the paper's reverse-square basis:
// features 1, 1/d, 1/d², ..., 1/d^Degree. Inputs below MinDist are
// clamped so a sample taken on top of the transmitter cannot blow up
// the design matrix.
type InversePowerBasis struct {
	Degree  int
	MinDist float64
}

// Features returns [1, 1/x, 1/x², ...].
func (b InversePowerBasis) Features(x float64) []float64 {
	if x < b.MinDist {
		x = b.MinDist
	}
	f := make([]float64, b.Degree+1)
	f[0] = 1
	inv := 1 / x
	acc := 1.0
	for i := 1; i <= b.Degree; i++ {
		acc *= inv
		f[i] = acc
	}
	return f
}

// Terms returns ["1", "1/d", "1/d^2", ...].
func (b InversePowerBasis) Terms() []string {
	t := make([]string, b.Degree+1)
	t[0] = "1"
	for i := 1; i <= b.Degree; i++ {
		if i == 1 {
			t[i] = "1/d"
		} else {
			t[i] = fmt.Sprintf("1/d^%d", i)
		}
	}
	return t
}

// PolynomialBasis has features 1, x, x², ..., x^Degree.
type PolynomialBasis struct{ Degree int }

// Features returns [1, x, x², ...].
func (b PolynomialBasis) Features(x float64) []float64 {
	f := make([]float64, b.Degree+1)
	acc := 1.0
	for i := range f {
		f[i] = acc
		acc *= x
	}
	return f
}

// Terms returns ["1", "d", "d^2", ...].
func (b PolynomialBasis) Terms() []string {
	t := make([]string, b.Degree+1)
	t[0] = "1"
	for i := 1; i <= b.Degree; i++ {
		if i == 1 {
			t[i] = "d"
		} else {
			t[i] = fmt.Sprintf("d^%d", i)
		}
	}
	return t
}

// LogDistBasis has features 1 and log10(d) — the RADAR/log-distance
// path-loss shape SS(d) = P0 - 10·n·log10(d). Inputs below MinDist are
// clamped.
type LogDistBasis struct{ MinDist float64 }

// Features returns [1, log10(max(x, MinDist))].
func (b LogDistBasis) Features(x float64) []float64 {
	m := b.MinDist
	if m <= 0 {
		m = 1e-6
	}
	if x < m {
		x = m
	}
	return []float64{1, math.Log10(x)}
}

// Terms returns ["1", "log10(d)"].
func (b LogDistBasis) Terms() []string { return []string{"1", "log10(d)"} }

// Model is a fitted linear-in-parameters regression model.
type Model struct {
	Basis Basis
	Coef  []float64
	// Goodness of fit over the training data.
	R2   float64 // coefficient of determination
	RMSE float64 // root mean squared residual
	N    int     // number of samples fitted
}

// Predict evaluates the fitted model at x.
func (m *Model) Predict(x float64) float64 {
	f := m.Basis.Features(x)
	s := 0.0
	for i, c := range m.Coef {
		s += c * f[i]
	}
	return s
}

// String renders the model as "y = c0·t0 + c1·t1 + ..." with fit stats.
func (m *Model) String() string {
	terms := m.Basis.Terms()
	s := "y ="
	for i, c := range m.Coef {
		if i == 0 {
			s += fmt.Sprintf(" %.4g", c)
			continue
		}
		if c >= 0 {
			s += fmt.Sprintf(" + %.4g·%s", c, terms[i])
		} else {
			s += fmt.Sprintf(" - %.4g·%s", -c, terms[i])
		}
	}
	return fmt.Sprintf("%s  (n=%d, R²=%.3f, RMSE=%.2f)", s, m.N, m.R2, m.RMSE)
}

// Errors returned by Fit and Invert.
var (
	ErrTooFewSamples = errors.New("regress: fewer samples than coefficients")
	ErrSingular      = errors.New("regress: singular normal matrix (inputs not diverse enough)")
	ErrNoRoot        = errors.New("regress: no root in search interval")
)

// Fit performs least-squares regression of ys on xs under the basis.
// xs and ys must have equal length and at least as many samples as the
// basis has features.
func Fit(basis Basis, xs, ys []float64) (*Model, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("regress: len(xs)=%d len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, ErrTooFewSamples
	}
	k := len(basis.Features(xs[0]))
	if len(xs) < k {
		return nil, ErrTooFewSamples
	}
	// Normal equations: (FᵀF) c = Fᵀy.
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	atb := make([]float64, k)
	for r, x := range xs {
		f := basis.Features(x)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += f[i] * f[j]
			}
			atb[i] += f[i] * ys[r]
		}
	}
	coef, err := solve(ata, atb)
	if err != nil {
		return nil, err
	}
	m := &Model{Basis: basis, Coef: coef, N: len(xs)}
	// Goodness of fit.
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i, x := range xs {
		r := ys[i] - m.Predict(x)
		ssRes += r * r
		d := ys[i] - meanY
		ssTot += d * d
	}
	m.RMSE = math.Sqrt(ssRes / float64(len(xs)))
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		m.R2 = 1
	}
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy
// of the inputs, returning x with a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= factor * m[col][c]
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}

// Invert finds a distance d in [lo, hi] with m.Predict(d) = y, by
// bisection. Signal-vs-distance models are monotone decreasing over
// their physical range, so a sign change brackets exactly one root.
// When y lies outside the model's range on [lo, hi] the nearer
// endpoint is returned (the best physical answer for an observation
// stronger than any training sample, or weaker), with ErrNoRoot.
func Invert(m *Model, y, lo, hi float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo := m.Predict(lo) - y
	fhi := m.Predict(hi) - y
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if flo*fhi > 0 {
		// No sign change: clamp to the endpoint whose prediction is
		// closer to the target.
		if math.Abs(flo) <= math.Abs(fhi) {
			return lo, ErrNoRoot
		}
		return hi, ErrNoRoot
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		fm := m.Predict(mid) - y
		if fm == 0 || (hi-lo)/2 < 1e-10 {
			return mid, nil
		}
		if fm*flo < 0 {
			hi = mid
		} else {
			lo = mid
			flo = fm
		}
	}
	return (lo + hi) / 2, nil
}
