package regress

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestInversePowerBasis(t *testing.T) {
	b := InversePowerBasis{Degree: 2, MinDist: 0.5}
	f := b.Features(2)
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if !close(f[i], want[i], 1e-12) {
			t.Errorf("feature[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	// Clamping below MinDist.
	f0 := b.Features(0)
	fm := b.Features(0.5)
	for i := range f0 {
		if f0[i] != fm[i] {
			t.Error("MinDist clamp failed")
		}
	}
	terms := b.Terms()
	if terms[0] != "1" || terms[1] != "1/d" || terms[2] != "1/d^2" {
		t.Errorf("Terms = %v", terms)
	}
}

func TestPolynomialBasis(t *testing.T) {
	b := PolynomialBasis{Degree: 3}
	f := b.Features(2)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("feature[%d] = %v", i, f[i])
		}
	}
	if got := b.Terms(); got[3] != "d^3" {
		t.Errorf("Terms = %v", got)
	}
}

func TestLogDistBasis(t *testing.T) {
	b := LogDistBasis{MinDist: 1}
	f := b.Features(100)
	if f[0] != 1 || !close(f[1], 2, 1e-12) {
		t.Errorf("Features(100) = %v", f)
	}
	// Clamp at MinDist keeps log finite.
	f = b.Features(0)
	if math.IsInf(f[1], 0) || math.IsNaN(f[1]) {
		t.Errorf("clamped feature = %v", f[1])
	}
	// Zero MinDist still protected.
	b = LogDistBasis{}
	f = b.Features(0)
	if math.IsInf(f[1], 0) || math.IsNaN(f[1]) {
		t.Errorf("default clamp failed: %v", f[1])
	}
}

func TestFitRecoversExactInverseSquare(t *testing.T) {
	// Generate noise-free data from known coefficients and recover them.
	truth := []float64{-68, 120, -160} // a + b/d + c/d²
	basis := InversePowerBasis{Degree: 2, MinDist: 0.5}
	var xs, ys []float64
	for d := 1.0; d <= 64; d += 1.5 {
		f := basis.Features(d)
		y := truth[0]*f[0] + truth[1]*f[1] + truth[2]*f[2]
		xs = append(xs, d)
		ys = append(ys, y)
	}
	m, err := Fit(basis, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !close(m.Coef[i], truth[i], 1e-6) {
			t.Errorf("coef[%d] = %v, want %v", i, m.Coef[i], truth[i])
		}
	}
	if !close(m.R2, 1, 1e-9) || m.RMSE > 1e-6 {
		t.Errorf("fit stats: R²=%v RMSE=%v", m.R2, m.RMSE)
	}
	if m.N != len(xs) {
		t.Errorf("N = %d", m.N)
	}
}

func TestFitNoisyStillClose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := []float64{-70, 90, -55}
	basis := InversePowerBasis{Degree: 2, MinDist: 0.5}
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		d := 1 + rng.Float64()*60
		f := basis.Features(d)
		y := truth[0] + truth[1]*f[1] + truth[2]*f[2] + rng.NormFloat64()*2
		xs = append(xs, d)
		ys = append(ys, y)
	}
	m, err := Fit(basis, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Coef[0], truth[0], 1.0) {
		t.Errorf("intercept = %v, want ≈%v", m.Coef[0], truth[0])
	}
	if m.RMSE < 1 || m.RMSE > 3 {
		t.Errorf("RMSE = %v, want ≈2", m.RMSE)
	}
}

func TestFitErrors(t *testing.T) {
	basis := PolynomialBasis{Degree: 2}
	if _, err := Fit(basis, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit(basis, nil, nil); err != ErrTooFewSamples {
		t.Errorf("empty fit err = %v", err)
	}
	if _, err := Fit(basis, []float64{1, 2}, []float64{1, 2}); err != ErrTooFewSamples {
		t.Errorf("underdetermined fit err = %v", err)
	}
	// All-identical x with a degree-1 basis: singular.
	if _, err := Fit(PolynomialBasis{Degree: 1},
		[]float64{3, 3, 3, 3}, []float64{1, 2, 3, 4}); err != ErrSingular {
		t.Errorf("constant-x fit err = %v", err)
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2x fitted with a polynomial basis.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	m, err := Fit(PolynomialBasis{Degree: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Coef[0], 3, 1e-9) || !close(m.Coef[1], 2, 1e-9) {
		t.Errorf("coef = %v", m.Coef)
	}
}

func TestFitConstantTarget(t *testing.T) {
	// All y equal: R² defined as 1 (perfect fit, no variance).
	xs := []float64{1, 2, 3}
	ys := []float64{5, 5, 5}
	m, err := Fit(PolynomialBasis{Degree: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Predict(10), 5, 1e-9) {
		t.Errorf("Predict = %v", m.Predict(10))
	}
	if m.R2 != 1 {
		t.Errorf("R² = %v", m.R2)
	}
}

func TestFitLeastSquaresOptimalityProperty(t *testing.T) {
	// The fitted coefficients must have residual sum of squares no
	// larger than randomly perturbed coefficient vectors.
	basis := InversePowerBasis{Degree: 2, MinDist: 0.5}
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 60; i++ {
		d := 1 + rng.Float64()*50
		xs = append(xs, d)
		ys = append(ys, -60+150/d-80/(d*d)+rng.NormFloat64()*3)
	}
	m, err := Fit(basis, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	rss := func(coef []float64) float64 {
		s := 0.0
		for i, x := range xs {
			f := basis.Features(x)
			pred := 0.0
			for j, c := range coef {
				pred += c * f[j]
			}
			r := ys[i] - pred
			s += r * r
		}
		return s
	}
	best := rss(m.Coef)
	f := func(d0, d1, d2 float64) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.1
			}
			return math.Mod(v, 10)
		}
		pert := []float64{
			m.Coef[0] + norm(d0),
			m.Coef[1] + norm(d1),
			m.Coef[2] + norm(d2),
		}
		return rss(pert) >= best-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(106))}); err != nil {
		t.Error(err)
	}
}

func TestInvert(t *testing.T) {
	// Monotone decreasing model: y = -40 - 20·log10(d).
	basis := LogDistBasis{MinDist: 0.1}
	var xs, ys []float64
	for d := 1.0; d <= 100; d *= 1.3 {
		xs = append(xs, d)
		ys = append(ys, -40-20*math.Log10(d))
	}
	m, err := Fit(basis, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Invert at y = -60: expect d = 10.
	d, err := Invert(m, -60, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !close(d, 10, 1e-6) {
		t.Errorf("Invert = %v, want 10", d)
	}
	// Exact endpoint hits.
	d, err = Invert(m, m.Predict(1), 1, 100)
	if err != nil || !close(d, 1, 1e-9) {
		t.Errorf("endpoint lo: d=%v err=%v", d, err)
	}
	d, err = Invert(m, m.Predict(100), 1, 100)
	if err != nil || !close(d, 100, 1e-9) {
		t.Errorf("endpoint hi: d=%v err=%v", d, err)
	}
	// Out of range: stronger than any training signal clamps to lo.
	d, err = Invert(m, 0, 1, 100)
	if err != ErrNoRoot || d != 1 {
		t.Errorf("too-strong clamp: d=%v err=%v", d, err)
	}
	// Weaker than any training signal clamps to hi.
	d, err = Invert(m, -200, 1, 100)
	if err != ErrNoRoot || d != 100 {
		t.Errorf("too-weak clamp: d=%v err=%v", d, err)
	}
	// Swapped interval still works.
	d, err = Invert(m, -60, 100, 1)
	if err != nil || !close(d, 10, 1e-6) {
		t.Errorf("swapped interval: d=%v err=%v", d, err)
	}
}

func TestInvertRoundTripProperty(t *testing.T) {
	basis := InversePowerBasis{Degree: 2, MinDist: 0.5}
	var xs, ys []float64
	for d := 1.0; d <= 80; d += 0.7 {
		xs = append(xs, d)
		ys = append(ys, -55-30*math.Log10(d)) // smooth monotone target
	}
	m, err := Fit(basis, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Round-tripping requires a bracket where the fitted curve is
	// strictly monotone: the inverse-power basis can crest below ~2 ft,
	// where Predict is not injective. Verify monotonicity on [3, 80]
	// first, then round-trip within it.
	prev := m.Predict(3)
	for d := 3.5; d <= 80; d += 0.5 {
		cur := m.Predict(d)
		if cur >= prev {
			t.Fatalf("fitted curve not monotone at %v ft", d)
		}
		prev = cur
	}
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		d := 4 + math.Mod(math.Abs(raw), 70) // [4, 74]
		y := m.Predict(d)
		back, err := Invert(m, y, 3, 80)
		return err == nil && close(back, d, 1e-4)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestModelString(t *testing.T) {
	m, err := Fit(InversePowerBasis{Degree: 2, MinDist: 0.5},
		[]float64{1, 2, 4, 8, 16}, []float64{-40, -52, -61, -67, -70})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	for _, want := range []string{"y =", "1/d", "R²"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
