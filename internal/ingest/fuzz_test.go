package ingest

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// walBytes frames payloads into a syntactically valid WAL image, for
// seeding the fuzzer with realistic inputs.
func walBytes(payloads ...string) []byte {
	b := []byte(walMagic)
	for _, p := range payloads {
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE([]byte(p)))
		b = append(b, frame[:]...)
		b = append(b, p...)
	}
	return b
}

// FuzzWALReplay feeds arbitrary bytes to the WAL recovery path. The
// invariants: OpenWAL never panics on any file content, and whenever it
// succeeds the file has been repaired — a second open replays the same
// records with nothing further to drop, and an append survives a
// close/reopen cycle.
func FuzzWALReplay(f *testing.F) {
	rep := `{"name":"kitchen","observation":{"00:02:2d:0a:0b:0c":-61}}`
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add([]byte("ILOCWAL9 wrong magic"))
	f.Add(walBytes(rep))
	f.Add(walBytes(rep, rep)[:len(walBytes(rep, rep))-3]) // torn tail
	f.Add(append(walBytes(rep), 0x01, 0x02))              // torn header
	f.Add(walBytes("{not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, reports, _, err := OpenWAL(path, false)
		if err != nil {
			return
		}
		n := w.Records()
		if n != len(reports) {
			t.Fatalf("Records()=%d but %d reports replayed", n, len(reports))
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
		// The first open truncated any damage, so a reopen must be
		// clean: same records, nothing dropped.
		w2, reports2, dropped2, err := OpenWAL(path, false)
		if err != nil {
			t.Fatalf("reopen of repaired wal failed: %v", err)
		}
		if dropped2 != 0 {
			t.Fatalf("reopen dropped %d records from a repaired wal", dropped2)
		}
		if len(reports2) != n {
			t.Fatalf("reopen replayed %d records, first open had %d", len(reports2), n)
		}
		// Appending to the repaired log must survive a reopen.
		add := Report{Name: "fuzz", Observation: map[string]float64{"aa:bb": -50}}
		if _, err := w2.Append(add); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("close after append: %v", err)
		}
		w3, reports3, dropped3, err := OpenWAL(path, false)
		if err != nil {
			t.Fatalf("reopen after append failed: %v", err)
		}
		defer w3.Close()
		if dropped3 != 0 || len(reports3) != n+1 {
			t.Fatalf("after append: dropped=%d replayed=%d, want 0 and %d", dropped3, len(reports3), n+1)
		}
		got := reports3[len(reports3)-1]
		if got.Name != add.Name || len(got.Observation) != 1 || got.Observation["aa:bb"] != -50 {
			t.Fatalf("appended report corrupted across reopen: %#v", got)
		}
	})
}
