package ingest

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/trainingdb"
)

// testDB builds a small synthetic training database: a 3x3 grid of
// entries named g<i>, 20 ft apart, each hearing two APs.
func testDB() *trainingdb.DB {
	db := &trainingdb.DB{Entries: make(map[string]*trainingdb.Entry)}
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("g%d", i)
		pos := geom.Point{X: float64(i%3) * 20, Y: float64(i/3) * 20}
		e := &trainingdb.Entry{Name: name, Pos: pos, PerAP: make(map[string]*trainingdb.APStats)}
		for ap := 0; ap < 2; ap++ {
			s := &trainingdb.APStats{BSSID: fmt.Sprintf("ap%d", ap)}
			for k := 0; k < 5; k++ {
				s.AddSample(-50 - float64(i) - 3*float64(ap) - float64(k%2))
			}
			e.PerAP[s.BSSID] = s
		}
		db.Entries[name] = e
	}
	db.BSSIDs = []string{"ap0", "ap1"}
	return db
}

// testRebuilder mirrors locserved's: probabilistic locator plus a name
// map regenerated from the entry set.
func testRebuilder(db *trainingdb.DB) (*core.Service, error) {
	locator, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		return nil, err
	}
	names := locmap.New()
	for _, name := range db.Names() {
		if err := names.Add(name, db.Entries[name].Pos); err != nil {
			return nil, err
		}
	}
	return &core.Service{DB: db, Locator: locator, Names: names}, nil
}

func newTestManager(t *testing.T, path string, cfg Config) *Manager {
	t.Helper()
	cfg.WALPath = path
	m, err := NewManager(testDB(), testRebuilder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitFoldsAndSwaps(t *testing.T) {
	m := newTestManager(t, filepath.Join(t.TempDir(), "w.wal"), Config{
		FlushReports: 2, FlushInterval: time.Hour, // count-triggered swaps only
	})
	gen0 := m.Registry().Current().Generation
	err := m.Submit(
		Report{Name: "g0", Observation: map[string]float64{"ap0": -49}},
		Report{Name: "g0", Observation: map[string]float64{"ap0": -51, "apNEW": -77}},
	)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "count-triggered swap", func() bool { return m.Stats().Swaps >= 1 })
	snap := m.Registry().Current()
	if snap.Generation <= gen0 {
		t.Errorf("generation did not advance: %d -> %d", gen0, snap.Generation)
	}
	db := snap.Service.DB
	if s := db.Entries["g0"].PerAP["ap0"]; s.N != 7 {
		t.Errorf("g0/ap0 N=%d want 7 (5 trained + 2 folded)", s.N)
	}
	if _, ok := db.Entries["g0"].PerAP["apNEW"]; !ok {
		t.Error("new AP not folded")
	}
	st := m.Stats()
	if st.Accepted != 2 || st.Folded != 2 || st.Dropped != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.LastSwap.IsZero() {
		t.Error("LastSwap still zero after swap")
	}
}

func TestIntervalTriggeredSwap(t *testing.T) {
	m := newTestManager(t, filepath.Join(t.TempDir(), "w.wal"), Config{
		FlushReports: 1 << 30, FlushInterval: 10 * time.Millisecond,
	})
	if err := m.Submit(Report{Name: "g1", Observation: map[string]float64{"ap1": -60}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "interval-triggered swap", func() bool { return m.Stats().Swaps >= 1 })
}

func TestNewEntryAndSnapRadius(t *testing.T) {
	m := newTestManager(t, filepath.Join(t.TempDir(), "w.wal"), Config{
		FlushReports: 1, FlushInterval: time.Hour, SnapRadius: 5,
	})
	// Within 5 ft of g0 at (0,0): snaps to g0.
	if err := m.Submit(Report{Pos: &ReportPos{X: 3, Y: 0}, Observation: map[string]float64{"ap0": -48}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snap fold", func() bool { return m.Stats().Swaps >= 1 })
	db := m.Registry().Current().Service.DB
	if s := db.Entries["g0"].PerAP["ap0"]; s.N != 6 {
		t.Errorf("snap: g0/ap0 N=%d want 6", s.N)
	}
	// Far from everything: founds a coordinate-named entry.
	if err := m.Submit(Report{Pos: &ReportPos{X: 200, Y: 200}, Observation: map[string]float64{"ap0": -90}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "new coordinate entry", func() bool {
		_, ok := m.Registry().Current().Service.DB.Entries["xy:200.0,200.0"]
		return ok
	})
	// Named new location with a coordinate: founded under that name,
	// and resolvable through the snapshot's name map.
	if err := m.Submit(Report{Name: "annex", Pos: &ReportPos{X: -40, Y: -40}, Observation: map[string]float64{"ap1": -85}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "named new entry", func() bool {
		snap := m.Registry().Current()
		if _, ok := snap.Service.DB.Entries["annex"]; !ok {
			return false
		}
		_, ok := snap.Service.Names.Lookup("annex")
		return ok
	})
	// Unknown name without a coordinate: accepted (it is valid on its
	// face) but dropped at fold time.
	if err := m.Submit(Report{Name: "nowhere", Observation: map[string]float64{"ap0": -70}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "undecidable report dropped", func() bool { return m.Stats().Dropped == 1 })
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, filepath.Join(t.TempDir(), "w.wal"), Config{})
	cases := []Report{
		{},
		{Name: "g0"},
		{Observation: map[string]float64{"ap0": -50}},
		{Name: "g0", Observation: map[string]float64{"ap0": +10}},
		{Name: "g0", Observation: map[string]float64{"": -50}},
	}
	for i, r := range cases {
		if err := m.Submit(r); !errors.Is(err, ErrInvalidReport) {
			t.Errorf("case %d: err %v, want ErrInvalidReport", i, err)
		}
	}
	if err := m.Submit(); !errors.Is(err, ErrInvalidReport) {
		t.Error("empty submission accepted")
	}
	if st := m.Stats(); st.Accepted != 0 {
		t.Errorf("invalid reports counted as accepted: %+v", st)
	}
}

// TestBackpressure fills the bounded queue and checks Submit answers
// ErrQueueFull all-or-nothing, with nothing journaled for the
// rejected batch.
func TestBackpressure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	cfg := Config{WALPath: path, QueueDepth: 4, FlushReports: 1 << 30, FlushInterval: time.Hour}
	cfg.fillDefaults()
	m, err := NewManager(testDB(), testRebuilder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Stall the compactor by feeding it nothing — it only wakes for
	// queue/ticker — and fill the admission slots synchronously.
	r := Report{Name: "g0", Observation: map[string]float64{"ap0": -50}}
	accepted := 0
	for i := 0; i < 64 && accepted < 4; i++ {
		if err := m.Submit(r); err == nil {
			accepted++
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
	}
	// The compactor drains concurrently, so we may land short of a
	// provably full queue only if folding outpaces submission; batch
	// submission of more than the depth is deterministically too big.
	batch := make([]Report, 5)
	for i := range batch {
		batch[i] = r
	}
	if err := m.Submit(batch...); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overdeep batch: err %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.RejectedFull == 0 {
		t.Error("no rejections counted")
	}
	// All-or-nothing: the WAL holds exactly the accepted reports.
	m.Close()
	_, replayed, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != int(st.Accepted) {
		t.Errorf("WAL holds %d records, accepted %d — rejected reports leaked into the journal",
			len(replayed), st.Accepted)
	}
}

// TestRestartReplaysAcceptedReports is the kill-and-restart property:
// everything acknowledged before the "crash" is folded after reopen,
// even though the manager never swapped.
func TestRestartReplaysAcceptedReports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	cfg := Config{WALPath: path, FlushReports: 1 << 30, FlushInterval: time.Hour}
	m, err := NewManager(testDB(), testRebuilder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Submit(Report{Name: "g4", Observation: map[string]float64{"ap0": -60 - float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: close the WAL out from under the manager
	// without letting the compactor publish. (Close drains, which is
	// the graceful path; a real kill simply leaves the WAL as the only
	// record — which is exactly what the fresh manager below sees.)
	m.wal.Close()

	m2, err := NewManager(testDB(), testRebuilder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st := m2.Stats()
	if st.Replayed != 10 || st.Folded != 10 {
		t.Fatalf("after restart: replayed %d folded %d, want 10/10", st.Replayed, st.Folded)
	}
	// The initial snapshot already contains the replayed evidence.
	db := m2.Registry().Current().Service.DB
	if s := db.Entries["g4"].PerAP["ap0"]; s.N != 15 {
		t.Errorf("g4/ap0 N=%d want 15 (5 trained + 10 replayed)", s.N)
	}
	if m.Close() == nil {
		t.Log("first manager close tolerated closed WAL") // drain hits closed WAL only on append, fine
	}
}

// TestSnapshotIsolation verifies the published snapshot never changes
// under continued folding — the copy-on-write contract seen from the
// outside.
func TestSnapshotIsolation(t *testing.T) {
	m := newTestManager(t, filepath.Join(t.TempDir(), "w.wal"), Config{
		FlushReports: 1, FlushInterval: time.Hour,
	})
	if err := m.Submit(Report{Name: "g0", Observation: map[string]float64{"ap0": -40}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first swap", func() bool { return m.Stats().Swaps >= 1 })
	snap := m.Registry().Current()
	before := *snap.Service.DB.Entries["g0"].PerAP["ap0"]
	for i := 0; i < 5; i++ {
		if err := m.Submit(Report{Name: "g0", Observation: map[string]float64{"ap0": -41}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "later swaps", func() bool { return m.Stats().Swaps >= 6 })
	after := snap.Service.DB.Entries["g0"].PerAP["ap0"]
	if after.N != before.N || after.Mean != before.Mean {
		t.Errorf("published snapshot mutated: %+v -> %+v", before, *after)
	}
	// The current snapshot did move on.
	if cur := m.Registry().Current().Service.DB.Entries["g0"].PerAP["ap0"]; cur.N != before.N+5 {
		t.Errorf("current snapshot N=%d want %d", cur.N, before.N+5)
	}
}
