// Package ingest is the live training pipeline: it accepts
// crowdsourced fingerprint reports, journals them to an append-only
// write-ahead log, buffers them in a bounded queue with explicit
// backpressure, and folds them into the training database in a
// background compactor that periodically recompiles the radio map and
// publishes it through an atomic snapshot registry — so a static
// reproduction of the paper's one-shot Training Database Generator
// becomes a continuously learning service that never blocks or
// corrupts the localization hot path.
//
// # WAL format
//
// The log is a 8-byte magic header ("ILOCWAL1") followed by records:
//
//	uint32 payload length (little endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload — the report as compact JSON
//
// Records are append-only and individually checksummed. On open the
// tail is scanned: a partial final record (torn write from a crash) or
// a checksum mismatch marks the end of the trusted prefix; the file is
// truncated there and appending resumes. Every report acknowledged to
// a client is flushed to the log before the acknowledgement, so a
// kill-and-restart replays every accepted report.
package ingest

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
)

// walMagic starts every log file; it guards against replaying a
// foreign file as fingerprint reports.
const walMagic = "ILOCWAL1"

// maxWALRecord bounds one record's payload. A report is a location tag
// plus one reading per audible AP — even a pathological 10k-AP report
// is far under this; anything larger on replay is corruption, not
// data.
const maxWALRecord = 1 << 20

// WAL is the append-only report journal. Append is safe for
// concurrent use; Open replays and positions the file for appending.
//
// Every record carries an implicit sequence number: its 1-based
// ordinal in the file. Replay establishes the base; Append extends it.
// Sequence numbers are the replication protocol's currency — a
// follower resumes a tail by the last sequence it applied — so they
// are never reused within one WAL lifetime. A WAL lifetime is named by
// its epoch, a random identifier persisted in a "<path>.epoch" sidecar
// and regenerated whenever the file is initialized from scratch:
// deleting the WAL (sequence numbers restart at 1) changes the epoch,
// which is how a follower distinguishes "same history, trainer
// restarted" from "new history, my position is meaningless".
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	bw   *bufio.Writer
	sync bool
	path string
	// frame is the reusable 8-byte length+CRC header buffer.
	frame [8]byte
	// records counts appended + replayed records; the last record's
	// sequence number is exactly this count.
	records int
	// off is the append position: the byte offset just past the last
	// durable record (replication lag in bytes reads it).
	off int64
	// epoch names this WAL lifetime (see type doc).
	epoch uint64
	// notify is closed and replaced after every successful append, so
	// tailers can wait for growth without polling.
	notify chan struct{}
}

// OpenWAL opens (creating if needed) the log at path, replays every
// intact record into reports, and returns the WAL positioned to
// append. dropped counts trailing records discarded as torn or
// corrupt — the file is truncated to the last intact record, so the
// damage never propagates into future appends. syncEach makes every
// append fsync (durable against power loss, not just process death).
func OpenWAL(path string, syncEach bool) (w *WAL, reports []Report, dropped int, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("ingest: open wal: %w", err)
	}
	reports, goodOff, dropped, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	fresh := goodOff == 0
	if fresh {
		// Fresh (or empty) file: write the magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("ingest: reset wal: %w", err)
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("ingest: init wal: %w", err)
		}
		goodOff = int64(len(walMagic))
	} else if dropped > 0 {
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("ingest: truncate damaged wal tail: %w", err)
		}
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("ingest: seek wal: %w", err)
	}
	epoch, err := loadEpoch(path, fresh)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	w = &WAL{f: f, bw: bufio.NewWriterSize(f, 64<<10), sync: syncEach, path: path,
		off: goodOff, epoch: epoch, notify: make(chan struct{})}
	w.records = len(reports)
	return w, reports, dropped, nil
}

// loadEpoch reads (or mints) the WAL's lifetime identifier from the
// "<path>.epoch" sidecar. A freshly initialized WAL always gets a new
// epoch — its sequence numbers restart, so any follower position taken
// against the old file must be invalidated. An existing WAL with no
// sidecar (pre-replication deployments) gets one minted now and keeps
// it from then on.
func loadEpoch(path string, fresh bool) (uint64, error) {
	side := path + ".epoch"
	if !fresh {
		if raw, err := os.ReadFile(side); err == nil {
			if e, perr := strconv.ParseUint(strings.TrimSpace(string(raw)), 16, 64); perr == nil && e != 0 {
				return e, nil
			}
			// Unparsable sidecar: fall through and mint a fresh epoch —
			// safer to make followers re-bootstrap than to guess.
		}
	}
	var buf [8]byte
	if _, err := crand.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("ingest: mint wal epoch: %w", err)
	}
	e := binary.LittleEndian.Uint64(buf[:])
	if e == 0 {
		e = 1 // zero is the "no epoch yet" sentinel on the follower side
	}
	if err := os.WriteFile(side, []byte(strconv.FormatUint(e, 16)+"\n"), 0o644); err != nil {
		return 0, fmt.Errorf("ingest: persist wal epoch: %w", err)
	}
	return e, nil
}

// replay scans the log from the start, returning the intact reports,
// the offset just past the last intact record, and how many trailing
// records were dropped as torn or corrupt. A file shorter than the
// magic (including empty) replays as zero records at offset zero. A
// wrong magic is a hard error: the file is not a WAL and truncating it
// would destroy someone else's data.
func replay(f *os.File) (reports []Report, goodOff int64, dropped int, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("ingest: seek wal: %w", err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, 0, nil // empty or sub-magic file: treat as fresh
		}
		return nil, 0, 0, fmt.Errorf("ingest: read wal magic: %w", err)
	}
	if string(magic) != walMagic {
		return nil, 0, 0, fmt.Errorf("ingest: %s is not a report WAL (bad magic %q)", f.Name(), magic)
	}
	goodOff = int64(len(walMagic))
	var frame [8]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return reports, goodOff, dropped, nil // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return reports, goodOff, dropped + 1, nil // torn header
			}
			return nil, 0, 0, fmt.Errorf("ingest: read wal record header: %w", err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxWALRecord {
			return reports, goodOff, dropped + 1, nil // insane length: corrupt tail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return reports, goodOff, dropped + 1, nil // torn payload
			}
			return nil, 0, 0, fmt.Errorf("ingest: read wal payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return reports, goodOff, dropped + 1, nil // checksum mismatch: reject
		}
		var r Report
		if err := json.Unmarshal(payload, &r); err != nil {
			return reports, goodOff, dropped + 1, nil // undecodable: reject
		}
		reports = append(reports, r)
		goodOff += int64(8 + int(length))
	}
}

// Append journals the reports, flushing them to the operating system
// (and to stable storage when the WAL was opened with syncEach) before
// returning. A batch is one lock acquisition and one flush; either all
// of its records reach the log or the error aborts the acknowledgement.
// It returns the sequence number of the batch's last record (the
// batch occupies last-len+1 … last), assigned atomically under the
// WAL lock so concurrent appenders never interleave numbering.
//
//loclint:hotpath
func (w *WAL) Append(reports ...Report) (last uint64, err error) {
	if len(reports) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errors.New("ingest: wal closed")
	}
	var grew int64
	for i := range reports {
		payload, err := json.Marshal(&reports[i])
		if err != nil {
			return 0, fmt.Errorf("ingest: encode report: %w", err)
		}
		if len(payload) > maxWALRecord {
			return 0, fmt.Errorf("ingest: report exceeds max WAL record (%d > %d bytes)", len(payload), maxWALRecord)
		}
		binary.LittleEndian.PutUint32(w.frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(w.frame[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.bw.Write(w.frame[:]); err != nil {
			return 0, fmt.Errorf("ingest: append wal: %w", err)
		}
		if _, err := w.bw.Write(payload); err != nil {
			return 0, fmt.Errorf("ingest: append wal: %w", err)
		}
		grew += int64(8 + len(payload))
	}
	if err := w.bw.Flush(); err != nil {
		return 0, fmt.Errorf("ingest: flush wal: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("ingest: sync wal: %w", err)
		}
	}
	w.records += len(reports)
	w.off += grew
	// Wake every waiting tailer; the next wait gets a fresh channel.
	// One channel header per *batch*, amortized across its records and
	// dwarfed by the per-record JSON encoding above.
	close(w.notify)
	w.notify = make(chan struct{}) //loclint:allow hotpathalloc
	return uint64(w.records), nil
}

// Seq returns the sequence number of the last durable record (0 for an
// empty log).
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return uint64(w.records)
}

// Size returns the byte offset just past the last durable record.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Epoch returns the WAL's lifetime identifier (see the type doc).
func (w *WAL) Epoch() uint64 { return w.epoch }

// Changed returns a channel closed at the next successful append.
// Callers re-arm by calling Changed again after each wake-up; checking
// Seq between the two closes any notify/append race window.
func (w *WAL) Changed() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.notify
}

// Records returns how many records the WAL holds (replayed at open
// plus appended since).
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Path returns the log file's path.
func (w *WAL) Path() string { return w.path }

// Close flushes and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	// Wake waiting tailers once; the replacement channel never closes,
	// so a woken tailer that re-arms waits on its own timeout instead of
	// spinning against a permanently closed channel.
	close(w.notify)
	w.notify = make(chan struct{})
	return err
}
