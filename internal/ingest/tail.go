package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// TailReader reads WAL records sequentially from its own file
// descriptor, independent of the writer: the replication source opens
// one per follower stream and never touches the writer's lock or
// buffer. Because the writer appends strictly sequentially and flushes
// whole batches, a reader can only ever observe a prefix of the final
// file content — so an incomplete frame at the read position always
// means "not written yet, retry after the WAL grows" (io.EOF), while a
// complete frame that fails its checksum is real corruption.
type TailReader struct {
	f *os.File
	// off is the offset of the next unread record's header.
	off int64
	// seq is the last record sequence returned (records are numbered
	// 1..n in file order).
	seq uint64
	// hdr is the reusable frame header buffer.
	hdr [8]byte
}

// ErrTailCorrupt marks a complete-but-invalid record under the tail
// cursor — a checksum mismatch or an insane length with bytes beyond
// it. The writer never produces this; it means the file was damaged in
// place and the reader cannot continue.
var ErrTailCorrupt = errors.New("ingest: wal tail corrupt")

// OpenTail opens the log at path for tailing and positions the cursor
// just past record `from` (0 = the beginning). Records not yet written
// surface as io.EOF from Next, never as an error. If the log holds
// fewer than `from` complete records the cursor stops at the durable
// end and Next waits there — the skipped-ahead case a follower hits
// when it bootstrapped from a snapshot newer than the log's tail
// cannot happen with a correct source (the snapshot watermark is
// always ≤ the WAL head).
func OpenTail(path string, from uint64) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal tail: %w", err)
	}
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: read wal magic: %w", err)
	}
	if string(magic[:]) != walMagic {
		f.Close()
		return nil, fmt.Errorf("ingest: %s is not a report WAL (bad magic %q)", path, magic)
	}
	t := &TailReader{f: f, off: int64(len(walMagic))}
	for t.seq < from {
		if _, err := t.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			f.Close()
			return nil, err
		}
	}
	return t, nil
}

// Next returns the next record's payload (valid until the following
// call) and its sequence number. io.EOF means the durable log holds no
// complete record past the cursor yet; wait on the WAL's Changed
// channel and call Next again.
func (t *TailReader) Next() (Record, error) {
	if _, err := t.f.ReadAt(t.hdr[:], t.off); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Header absent or torn — or present with the file ending right
			// after it, in which case the payload is equally in flight.
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("ingest: read wal tail header: %w", err)
	}
	length := binary.LittleEndian.Uint32(t.hdr[0:4])
	sum := binary.LittleEndian.Uint32(t.hdr[4:8])
	if length == 0 || length > maxWALRecord {
		return Record{}, fmt.Errorf("%w: record %d has length %d", ErrTailCorrupt, t.seq+1, length)
	}
	payload := make([]byte, length)
	if _, err := t.f.ReadAt(payload, t.off+8); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, io.EOF // torn payload: flush in flight
		}
		return Record{}, fmt.Errorf("ingest: read wal tail payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, fmt.Errorf("%w: record %d checksum mismatch", ErrTailCorrupt, t.seq+1)
	}
	t.off += int64(8 + length)
	t.seq++
	return Record{Seq: t.seq, Payload: payload}, nil
}

// Record is one tailed WAL record: the 1-based sequence number and the
// raw payload bytes (compact report JSON).
type Record struct {
	Seq     uint64
	Payload []byte
}

// Seq returns the sequence of the last record Next returned.
func (t *TailReader) Seq() uint64 { return t.seq }

// Offset returns the byte offset of the cursor (just past the last
// returned record).
func (t *TailReader) Offset() int64 { return t.off }

// Close releases the reader's file descriptor.
func (t *TailReader) Close() error { return t.f.Close() }
