package ingest

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "reports.wal")
}

func sampleReports() []Report {
	return []Report{
		{Name: "kitchen", Observation: map[string]float64{"aa:bb": -61.5, "cc:dd": -70}},
		{Pos: &ReportPos{X: 12.5, Y: 40}, Observation: map[string]float64{"aa:bb": -55}},
		{Name: "hall", Pos: &ReportPos{X: 1, Y: 2}, Observation: map[string]float64{"ee:ff": -80.25}},
	}
}

// TestWALReplayRoundTrip appends across two open/close cycles and
// checks every record comes back intact and in order.
func TestWALReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	reports := sampleReports()
	w, got, dropped, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || dropped != 0 {
		t.Fatalf("fresh WAL replayed %d records, dropped %d", len(got), dropped)
	}
	if _, err := w.Append(reports[0], reports[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(reports[2]); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 3 {
		t.Errorf("Records() = %d want 3", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, dropped, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if dropped != 0 {
		t.Errorf("clean log dropped %d records", dropped)
	}
	if !reflect.DeepEqual(got, reports) {
		t.Errorf("replay mismatch:\n got %+v\nwant %+v", got, reports)
	}
	// The reopened WAL keeps appending where it left off.
	extra := Report{Name: "porch", Observation: map[string]float64{"aa:bb": -90}}
	if _, err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, got, _, err = OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Name != "porch" {
		t.Errorf("after reopen+append: %d records, last %+v", len(got), got[len(got)-1])
	}
}

// TestWALTruncatedTail simulates a crash mid-write: a partial final
// record must be ignored (not fatal) and the intact prefix preserved.
func TestWALTruncatedTail(t *testing.T) {
	path := walPath(t)
	reports := sampleReports()
	w, _, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(reports...); err != nil {
		t.Fatal(err)
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end one at a time down past the last record's
	// header: every truncation must tolerate the torn tail and replay
	// the first two records.
	for cut := 1; cut <= 12; cut++ {
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, dropped, err := OpenWAL(path, false)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if len(got) != 2 || dropped != 1 {
			t.Fatalf("cut %d: replayed %d dropped %d, want 2/1", cut, len(got), dropped)
		}
		if !reflect.DeepEqual(got, reports[:2]) {
			t.Fatalf("cut %d: prefix mismatch: %+v", cut, got)
		}
		// Open truncated the damage away; appending must produce a log
		// that replays cleanly.
		if _, err := w.Append(reports[2]); err != nil {
			t.Fatal(err)
		}
		w.Close()
		_, got, dropped, err = OpenWAL(path, false)
		if err != nil || len(got) != 3 || dropped != 0 {
			t.Fatalf("cut %d: after repair+append: %d records dropped %d err %v", cut, len(got), dropped, err)
		}
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALChecksumMismatch flips a payload byte and checks the record
// is rejected, not folded into the training data.
func TestWALChecksumMismatch(t *testing.T) {
	path := walPath(t)
	reports := sampleReports()
	w, _, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(reports...); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the LAST record's payload. Records start
	// after the magic; walk the frames to find the final payload.
	off := len(walMagic)
	for i := 0; i < len(reports)-1; i++ {
		off += 8 + int(binary.LittleEndian.Uint32(raw[off:off+4]))
	}
	raw[off+8] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, got, dropped, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 2 || dropped != 1 {
		t.Errorf("corrupt record: replayed %d dropped %d, want 2/1", len(got), dropped)
	}
	if !reflect.DeepEqual(got, reports[:2]) {
		t.Errorf("intact prefix mismatch: %+v", got)
	}
}

// TestWALForeignFile refuses to treat an arbitrary file as a journal
// (truncating it would destroy someone's data).
func TestWALForeignFile(t *testing.T) {
	path := walPath(t)
	if err := os.WriteFile(path, []byte("definitely not a WAL, but longer than the magic"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(path, false); err == nil {
		t.Fatal("foreign file accepted as WAL")
	}
	// And the file must be untouched.
	raw, _ := os.ReadFile(path)
	if string(raw) != "definitely not a WAL, but longer than the magic" {
		t.Error("foreign file was modified")
	}
}

// TestWALEmptyAndSubMagic treats zero-length and shorter-than-magic
// files as fresh logs.
func TestWALEmptyAndSubMagic(t *testing.T) {
	for _, content := range [][]byte{nil, []byte("ILO")} {
		path := walPath(t)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, dropped, err := OpenWAL(path, false)
		if err != nil {
			t.Fatalf("content %q: %v", content, err)
		}
		if len(got) != 0 || dropped != 0 {
			t.Errorf("content %q: replayed %d dropped %d", content, len(got), dropped)
		}
		if _, err := w.Append(sampleReports()[0]); err != nil {
			t.Fatal(err)
		}
		w.Close()
		_, got, _, err = OpenWAL(path, false)
		if err != nil || len(got) != 1 {
			t.Errorf("content %q: after append: %d records err %v", content, len(got), err)
		}
	}
}
