package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/trainingdb"
)

// Report is one crowdsourced fingerprint: an observation map (BSSID →
// mean RSSI in dBm) tagged with where it was taken — a named training
// location, a plan-frame coordinate, or both (the name wins for
// existing locations; a new name needs the coordinate).
type Report struct {
	// Name is the training-location tag; empty for coordinate-only
	// reports.
	Name string `json:"name,omitempty"`
	// Pos is the plan-frame position, when the reporter knows it.
	Pos *ReportPos `json:"pos,omitempty"`
	// Observation is the signal vector, one mean RSSI per audible AP.
	Observation map[string]float64 `json:"observation"`
}

// ReportPos is a report's plan-frame coordinate.
type ReportPos struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Validate applies the acceptance rules a report must pass before it
// is journaled: a non-empty observation with RSSI levels in the
// plausible range, and at least one of name or position.
func (r *Report) Validate() error {
	if len(r.Observation) == 0 {
		return errors.New("report needs a non-empty observation")
	}
	if r.Name == "" && r.Pos == nil {
		return errors.New("report needs a location name or a position")
	}
	for b, v := range r.Observation {
		if b == "" {
			return errors.New("observation has an empty BSSID")
		}
		if v > 0 || v < -120 {
			return fmt.Errorf("observation %s has RSSI %v outside [-120, 0]", b, v)
		}
	}
	return nil
}

// Config tunes the pipeline. The zero value is usable: defaults are
// filled in by NewManager.
type Config struct {
	// WALPath is the report journal; required.
	WALPath string
	// SyncEveryAppend fsyncs the WAL on every accepted batch. Off by
	// default: flush-to-OS already survives process death, and fsync per
	// report caps throughput at disk latency.
	SyncEveryAppend bool
	// QueueDepth bounds the accepted-but-unfolded backlog; a full queue
	// rejects submissions with ErrQueueFull (the HTTP layer turns that
	// into 429 + Retry-After). Zero means 1024.
	QueueDepth int
	// FlushReports triggers a recompile-and-swap after this many folded
	// reports. Zero means 256.
	FlushReports int
	// FlushInterval triggers a swap when reports have been folded but
	// the count trigger has not fired. Zero means 2s.
	FlushInterval time.Duration
	// SnapRadius folds a coordinate-only report into the nearest
	// existing training entry when it lies within this many plan-frame
	// feet; farther reports found a new entry at their coordinate. Zero
	// means 10.
	SnapRadius float64
	// RetryAfter is the backoff advertised with ErrQueueFull. Zero
	// means 1s.
	RetryAfter time.Duration
	// ArtifactPath, when set, makes every published snapshot also emit
	// a compiled radio-map artifact (the mmap-able v2 binary) at this
	// path, written atomically on the compactor goroutine — off the
	// serving path. The locator must expose its compiled view
	// (localize.CompiledSource); a rebuild whose locator does not is
	// counted as an artifact error and the snapshot still serves.
	// A "<ArtifactPath>.manifest" sidecar records the generation, WAL
	// watermark and epoch of each write, so operators (tdbtool inspect)
	// can correlate the artifact with trainer state.
	ArtifactPath string
	// OnPublish, when set, is called on the compactor goroutine after
	// every snapshot publish (including the initial build) with the
	// frozen state the snapshot was built from. The replication source
	// uses it to capture the artifact + exact-resume payload a follower
	// bootstraps from. The callback must not block for long — it runs
	// on the fold/recompile path (never the serving path) — and must
	// treat the event's DB and Compiled as immutable.
	OnPublish func(PublishEvent)
}

// PublishEvent describes one published snapshot to Config.OnPublish.
type PublishEvent struct {
	// Snapshot is what was published to the registry.
	Snapshot *core.Snapshot
	// DB is the frozen database view the snapshot was built from. Its
	// entries are protected by the compactor's copy-on-write discipline:
	// they are never mutated after the freeze, so the callback may read
	// them at any later time.
	DB *trainingdb.DB
	// Compiled is the locator's dense radio-map view, nil when the
	// snapshot's locator does not expose one (then the snapshot cannot
	// be replicated from).
	Compiled *trainingdb.Compiled
	// Watermark is the WAL sequence folded into the snapshot: every
	// record with seq ≤ Watermark is reflected (folded, or counted
	// dropped by the resolution rules), none above it are.
	Watermark uint64
	// Epoch is the WAL lifetime identifier (WAL.Epoch).
	Epoch uint64
	// SnapRadius is the coordinate-snap rule the trainer folds with; a
	// follower must mirror it exactly to stay byte-identical.
	SnapRadius float64
}

func (c *Config) fillDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.FlushReports == 0 {
		c.FlushReports = 256
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.SnapRadius == 0 {
		c.SnapRadius = 10
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
}

// ErrQueueFull is returned by Submit when the bounded queue cannot
// take the reports; the caller should back off for RetryAfter.
var ErrQueueFull = errors.New("ingest: report queue full")

// ErrInvalidReport wraps Validate failures surfaced by Submit, so the
// HTTP layer can answer 400 for bad reports and 500 for I/O trouble.
var ErrInvalidReport = errors.New("invalid report")

// Rebuilder turns a frozen database snapshot into a warmed serving
// state: it builds the locator (compiling the radio map) and the
// name/room resolution for exactly that entry set. It runs on the
// compactor goroutine — off the serving path — and must not retain or
// mutate db beyond building the service.
type Rebuilder func(db *trainingdb.DB) (*core.Service, error)

// Stats is a point-in-time counter snapshot for telemetry (/healthz).
type Stats struct {
	// Accepted counts reports journaled and queued.
	Accepted uint64 `json:"accepted"`
	// RejectedFull counts reports refused with ErrQueueFull.
	RejectedFull uint64 `json:"rejected_queue_full"`
	// Folded counts reports folded into the master database.
	Folded uint64 `json:"folded"`
	// Dropped counts reports that could not be folded (a new name with
	// no coordinate).
	Dropped uint64 `json:"dropped"`
	// Queued is the current accepted-but-unfolded backlog.
	Queued int `json:"queued"`
	// Swaps counts published snapshots (the initial build excluded).
	Swaps uint64 `json:"swaps"`
	// SwapErrors counts rebuilds that failed; the previous snapshot
	// keeps serving.
	SwapErrors uint64 `json:"swap_errors"`
	// Artifacts counts compiled radio-map artifacts written to
	// Config.ArtifactPath (zero when no path is configured).
	Artifacts uint64 `json:"artifacts"`
	// ArtifactErrors counts artifact writes that failed; the snapshot
	// serves regardless.
	ArtifactErrors uint64 `json:"artifact_errors"`
	// Replayed counts reports recovered from the WAL at startup.
	Replayed int `json:"replayed"`
	// Applied is the WAL sequence of the last report the compactor
	// resolved.
	Applied uint64 `json:"applied_seq"`
	// Watermark is the WAL sequence captured by the latest published
	// snapshot (what a replication bootstrap resumes from).
	Watermark uint64 `json:"snapshot_watermark"`
	// LastSwap is when the current snapshot was published (zero before
	// the first swap).
	LastSwap time.Time `json:"last_swap"`
}

// Manager owns the live pipeline: the WAL, the bounded queue, the
// master database (exclusively owned by the compactor goroutine after
// Start), the copy-on-write bookkeeping, and the snapshot registry the
// server reads from.
type Manager struct {
	cfg     Config
	wal     *WAL
	rebuild Rebuilder
	reg     *core.SnapshotRegistry

	// master is the compactor's private, always-current database.
	// published marks entries shared with the latest snapshot; the
	// compactor clones them before folding into them.
	master    *trainingdb.DB
	published map[string]bool

	// slots is the admission semaphore and queue the report buffer:
	// Submit acquires a slot (non-blocking; failure is backpressure),
	// journals, then enqueues — so the send can never block. The
	// compactor releases the slot after dequeueing. Each queued report
	// carries its WAL sequence so the compactor can watermark
	// snapshots for replication.
	slots chan struct{}
	queue chan queuedReport
	// appendMu orders journal append and queue insertion together (see
	// Submit).
	appendMu sync.Mutex

	// applied is the WAL sequence of the last report the compactor
	// resolved (folded or dropped); snapshots are watermarked with it.
	// Written by the compactor (and NewManager's replay), read by
	// Stats.
	applied atomic.Uint64
	// watermark is the applied sequence captured by the latest
	// published snapshot.
	watermark atomic.Uint64

	stop chan struct{}
	done chan struct{}

	accepted       atomic.Uint64
	rejectedFull   atomic.Uint64
	folded         atomic.Uint64
	dropped        atomic.Uint64
	swaps          atomic.Uint64
	swapErrors     atomic.Uint64
	artifacts      atomic.Uint64
	artifactErrors atomic.Uint64
	replayed       int
	lastSwap       atomic.Int64 // UnixNano; 0 = never
}

// NewManager opens (and replays) the WAL, folds every recovered report
// into db, publishes the initial snapshot through a fresh registry,
// and starts the compactor. db must not be used by the caller
// afterwards — the manager owns it. Close releases the WAL and stops
// the compactor.
func NewManager(db *trainingdb.DB, rebuild Rebuilder, cfg Config) (*Manager, error) {
	if db == nil {
		return nil, errors.New("ingest: nil training database")
	}
	if rebuild == nil {
		return nil, errors.New("ingest: nil rebuilder")
	}
	if cfg.WALPath == "" {
		return nil, errors.New("ingest: Config.WALPath required")
	}
	cfg.fillDefaults()
	m := &Manager{
		cfg:       cfg,
		rebuild:   rebuild,
		master:    db,
		published: make(map[string]bool, db.Len()),
		slots:     make(chan struct{}, cfg.QueueDepth),
		queue:     make(chan queuedReport, cfg.QueueDepth),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	wal, recovered, dropped, err := OpenWAL(cfg.WALPath, cfg.SyncEveryAppend)
	if err != nil {
		return nil, err
	}
	m.wal = wal
	m.replayed = len(recovered)
	_ = dropped // torn-tail records were never acknowledged; nothing to recover
	for i := range recovered {
		m.fold(recovered[i])
		m.applied.Store(uint64(i + 1))
	}
	snap, frozen, err := m.buildSnapshot()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("ingest: initial snapshot: %w", err), wal.Close())
	}
	if m.reg, err = core.NewSnapshotRegistry(snap); err != nil {
		return nil, errors.Join(err, wal.Close())
	}
	// Emit the initial artifact (and publish event) too, so a
	// configured path — and a replication source — is valid from the
	// first request, not only after the first live swap.
	m.finishPublish(snap, frozen)
	go m.compact()
	return m, nil
}

// Registry returns the snapshot registry the manager publishes to.
func (m *Manager) Registry() *core.SnapshotRegistry { return m.reg }

// RetryAfter is the backoff the HTTP layer advertises on ErrQueueFull.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Submit validates, journals and queues the reports, all-or-nothing.
// It returns ErrQueueFull when the bounded queue cannot take the whole
// batch — nothing is journaled in that case, so a client retry cannot
// duplicate reports. On nil return every report is durable in the WAL
// and will be folded by the compactor.
func (m *Manager) Submit(reports ...Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("ingest: %w: empty submission", ErrInvalidReport)
	}
	for i := range reports {
		if err := reports[i].Validate(); err != nil {
			return fmt.Errorf("ingest: %w %d: %w", ErrInvalidReport, i, err)
		}
	}
	// Admission: grab one slot per report before touching the WAL, so
	// acknowledged reports always fit in the queue and a full queue
	// costs nothing durable.
	for i := range reports {
		select {
		case m.slots <- struct{}{}:
		default:
			for ; i > 0; i-- {
				<-m.slots
			}
			m.rejectedFull.Add(uint64(len(reports)))
			return ErrQueueFull
		}
	}
	// The append lock spans journal + enqueue so the compactor folds in
	// exactly WAL order: without it two concurrent submissions could
	// enqueue in the opposite order of their journal sequences, and a
	// follower replaying the WAL (strictly in sequence order) would fold
	// the same reports in a different order than the trainer did —
	// Welford updates do not commute bit-for-bit. The critical section
	// adds one buffered-channel send per report over what the WAL mutex
	// already serialized.
	m.appendMu.Lock()
	last, err := m.wal.Append(reports...)
	if err != nil {
		m.appendMu.Unlock()
		for range reports {
			<-m.slots
		}
		return err
	}
	first := last - uint64(len(reports)) + 1
	for i := range reports {
		// Cannot block: slots bound occupancy.
		m.queue <- queuedReport{r: reports[i], seq: first + uint64(i)}
	}
	m.appendMu.Unlock()
	m.accepted.Add(uint64(len(reports)))
	return nil
}

// queuedReport pairs an accepted report with its WAL sequence on the
// way to the compactor.
type queuedReport struct {
	r   Report
	seq uint64
}

// WAL exposes the manager's journal for replication: the source tails
// it (via its own TailReader), reads the head sequence, size and
// epoch, and waits on its change notification. The returned WAL must
// only be read — appends belong to Submit.
func (m *Manager) WAL() *WAL { return m.wal }

// Applied returns the WAL sequence of the last report the compactor
// has resolved into the master database.
func (m *Manager) Applied() uint64 { return m.applied.Load() }

// SnapRadius returns the coordinate-snap rule the manager folds with.
func (m *Manager) SnapRadius() float64 { return m.cfg.SnapRadius }

// compact is the background loop: fold queued reports into the master
// database and, on the count or interval cadence, recompile and
// publish a fresh snapshot. All master/published access happens here
// (plus NewManager before the goroutine starts), so the mutable state
// needs no locks.
func (m *Manager) compact() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.FlushInterval)
	defer ticker.Stop()
	pending := 0
	for {
		select {
		case q := <-m.queue:
			<-m.slots
			m.fold(q.r)
			m.applied.Store(q.seq)
			pending++
			if pending >= m.cfg.FlushReports {
				m.swap()
				pending = 0
			}
		case <-ticker.C:
			if pending > 0 {
				m.swap()
				pending = 0
			}
		case <-m.stop:
			// Drain what is already queued so a clean shutdown folds
			// everything it acknowledged; the WAL covers a crash.
			for {
				select {
				case q := <-m.queue:
					<-m.slots
					m.fold(q.r)
					m.applied.Store(q.seq)
					pending++
				default:
					if pending > 0 {
						m.swap()
					}
					return
				}
			}
		}
	}
}

// ResolveReport applies the fold resolution rules against db without
// mutating it: an existing name wins (its surveyed coordinate is
// authoritative); a coordinate-only report snaps to the nearest entry
// within snapRadius, else founds a new entry auto-named from its
// coordinate; a never-seen name with no coordinate is undecidable
// (ok=false — the caller counts it dropped). The rules live in one
// exported function because a replication follower must re-resolve
// WAL records against its replica database exactly the way the
// trainer's compactor did — any divergence here forks the radio map.
func ResolveReport(db *trainingdb.DB, r Report, snapRadius float64) (name string, pos geom.Point, ok bool) {
	name = r.Name
	if r.Pos != nil {
		pos = geom.Point{X: r.Pos.X, Y: r.Pos.Y}
	}
	if name == "" {
		if e, found := db.NearestEntry(pos); found && e.Pos.Dist(pos) <= snapRadius {
			name, pos = e.Name, e.Pos
		} else {
			name = fmt.Sprintf("xy:%.1f,%.1f", pos.X, pos.Y)
		}
	} else if e, found := db.Entries[name]; found {
		pos = e.Pos
	} else if r.Pos == nil {
		return "", geom.Point{}, false
	}
	return name, pos, true
}

// fold applies one report to the master database under the
// copy-on-write discipline, using the shared resolution rules.
func (m *Manager) fold(r Report) {
	name, pos, ok := ResolveReport(m.master, r, m.cfg.SnapRadius)
	if !ok {
		// A name the database has never seen and no coordinate to found
		// it at: undecidable, count and drop.
		m.dropped.Add(1)
		return
	}
	if m.published[name] {
		if e := m.master.Entries[name]; e != nil {
			m.master.Entries[name] = e.Clone()
		}
		delete(m.published, name)
	}
	m.master.Fold(name, pos, r.Observation)
	m.folded.Add(1)
}

// buildSnapshot freezes the master database and rebuilds the serving
// state from it. Every entry in the frozen view is marked published,
// so the next fold into it clones first. The frozen view is returned
// alongside so the publish hook can hand replication the exact state
// the snapshot was built from.
func (m *Manager) buildSnapshot() (*core.Snapshot, *trainingdb.DB, error) {
	frozen := m.master.Snapshot()
	svc, err := m.rebuild(frozen)
	if err != nil {
		return nil, nil, err
	}
	for name := range frozen.Entries {
		m.published[name] = true
	}
	return &core.Snapshot{Generation: frozen.Generation(), Service: svc, BuiltAt: time.Now()}, frozen, nil
}

// swap recompiles and publishes. A failed rebuild (e.g. a geometric
// fit that no longer converges) keeps the previous snapshot serving
// and is only counted — live training must never take the service
// down.
func (m *Manager) swap() {
	snap, frozen, err := m.buildSnapshot()
	if err != nil {
		m.swapErrors.Add(1)
		return
	}
	m.reg.Publish(snap)
	m.swaps.Add(1)
	m.lastSwap.Store(snap.BuiltAt.UnixNano())
	m.finishPublish(snap, frozen)
}

// finishPublish runs the post-publish work on the compactor goroutine:
// watermark bookkeeping, the artifact write, and the replication hook.
// The watermark is the applied sequence at this instant — the
// compactor folds and publishes on one goroutine, so nothing has been
// applied since the freeze.
func (m *Manager) finishPublish(snap *core.Snapshot, frozen *trainingdb.DB) {
	watermark := m.applied.Load()
	m.watermark.Store(watermark)
	c := compiledView(snap)
	m.writeArtifact(c, snap, watermark)
	if m.cfg.OnPublish != nil {
		m.cfg.OnPublish(PublishEvent{
			Snapshot:   snap,
			DB:         frozen,
			Compiled:   c,
			Watermark:  watermark,
			Epoch:      m.wal.Epoch(),
			SnapRadius: m.cfg.SnapRadius,
		})
	}
}

// compiledView extracts the snapshot locator's dense radio-map view,
// nil when the locator does not expose one.
func compiledView(snap *core.Snapshot) *trainingdb.Compiled {
	src, ok := snap.Service.Locator.(localize.CompiledSource)
	if !ok {
		return nil
	}
	return src.CompiledView()
}

// ArtifactManifest is the "<ArtifactPath>.manifest" sidecar written
// next to every artifact: the trainer state the artifact captures, so
// an operator (or tdbtool inspect) can correlate a follower's snapshot
// with the trainer's WAL position without decoding the artifact.
type ArtifactManifest struct {
	// Generation is the radio-map generation of the artifact.
	Generation uint64 `json:"generation"`
	// Watermark is the WAL sequence folded into the artifact.
	Watermark uint64 `json:"wal_watermark"`
	// Epoch is the WAL lifetime the watermark counts within.
	Epoch uint64 `json:"wal_epoch"`
	// BuiltAt is when the snapshot was published.
	BuiltAt time.Time `json:"built_at"`
}

// ReadArtifactManifest loads the sidecar for the artifact at path
// (i.e. "<path>.manifest").
func ReadArtifactManifest(path string) (*ArtifactManifest, error) {
	raw, err := os.ReadFile(path + ".manifest")
	if err != nil {
		return nil, err
	}
	var am ArtifactManifest
	if err := json.Unmarshal(raw, &am); err != nil {
		return nil, fmt.Errorf("ingest: parse artifact manifest: %w", err)
	}
	return &am, nil
}

// writeArtifact emits the snapshot's compiled radio map as a v2 binary
// artifact plus its manifest sidecar, after Publish so serving never
// waits on the disk. Runs on the compactor goroutine only.
func (m *Manager) writeArtifact(c *trainingdb.Compiled, snap *core.Snapshot, watermark uint64) {
	if m.cfg.ArtifactPath == "" {
		return
	}
	if c == nil {
		m.artifactErrors.Add(1)
		return
	}
	if err := trainingdb.WriteCompiledFile(m.cfg.ArtifactPath, c); err != nil {
		m.artifactErrors.Add(1)
		return
	}
	am := ArtifactManifest{
		Generation: snap.Generation,
		Watermark:  watermark,
		Epoch:      m.wal.Epoch(),
		BuiltAt:    snap.BuiltAt,
	}
	if raw, err := json.Marshal(am); err == nil {
		if werr := os.WriteFile(m.cfg.ArtifactPath+".manifest", append(raw, '\n'), 0o644); werr != nil {
			m.artifactErrors.Add(1)
			return
		}
	}
	m.artifacts.Add(1)
}

// Stats returns the current telemetry counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		Accepted:       m.accepted.Load(),
		RejectedFull:   m.rejectedFull.Load(),
		Folded:         m.folded.Load(),
		Dropped:        m.dropped.Load(),
		Queued:         len(m.queue),
		Swaps:          m.swaps.Load(),
		SwapErrors:     m.swapErrors.Load(),
		Artifacts:      m.artifacts.Load(),
		ArtifactErrors: m.artifactErrors.Load(),
		Replayed:       m.replayed,
		Applied:        m.applied.Load(),
		Watermark:      m.watermark.Load(),
	}
	if ns := m.lastSwap.Load(); ns != 0 {
		s.LastSwap = time.Unix(0, ns)
	}
	return s
}

// Close stops the compactor (folding and publishing anything already
// queued) and closes the WAL. The registry keeps serving its last
// snapshot.
func (m *Manager) Close() error {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
	return m.wal.Close()
}
