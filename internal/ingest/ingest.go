package ingest

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/trainingdb"
)

// Report is one crowdsourced fingerprint: an observation map (BSSID →
// mean RSSI in dBm) tagged with where it was taken — a named training
// location, a plan-frame coordinate, or both (the name wins for
// existing locations; a new name needs the coordinate).
type Report struct {
	// Name is the training-location tag; empty for coordinate-only
	// reports.
	Name string `json:"name,omitempty"`
	// Pos is the plan-frame position, when the reporter knows it.
	Pos *ReportPos `json:"pos,omitempty"`
	// Observation is the signal vector, one mean RSSI per audible AP.
	Observation map[string]float64 `json:"observation"`
}

// ReportPos is a report's plan-frame coordinate.
type ReportPos struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Validate applies the acceptance rules a report must pass before it
// is journaled: a non-empty observation with RSSI levels in the
// plausible range, and at least one of name or position.
func (r *Report) Validate() error {
	if len(r.Observation) == 0 {
		return errors.New("report needs a non-empty observation")
	}
	if r.Name == "" && r.Pos == nil {
		return errors.New("report needs a location name or a position")
	}
	for b, v := range r.Observation {
		if b == "" {
			return errors.New("observation has an empty BSSID")
		}
		if v > 0 || v < -120 {
			return fmt.Errorf("observation %s has RSSI %v outside [-120, 0]", b, v)
		}
	}
	return nil
}

// Config tunes the pipeline. The zero value is usable: defaults are
// filled in by NewManager.
type Config struct {
	// WALPath is the report journal; required.
	WALPath string
	// SyncEveryAppend fsyncs the WAL on every accepted batch. Off by
	// default: flush-to-OS already survives process death, and fsync per
	// report caps throughput at disk latency.
	SyncEveryAppend bool
	// QueueDepth bounds the accepted-but-unfolded backlog; a full queue
	// rejects submissions with ErrQueueFull (the HTTP layer turns that
	// into 429 + Retry-After). Zero means 1024.
	QueueDepth int
	// FlushReports triggers a recompile-and-swap after this many folded
	// reports. Zero means 256.
	FlushReports int
	// FlushInterval triggers a swap when reports have been folded but
	// the count trigger has not fired. Zero means 2s.
	FlushInterval time.Duration
	// SnapRadius folds a coordinate-only report into the nearest
	// existing training entry when it lies within this many plan-frame
	// feet; farther reports found a new entry at their coordinate. Zero
	// means 10.
	SnapRadius float64
	// RetryAfter is the backoff advertised with ErrQueueFull. Zero
	// means 1s.
	RetryAfter time.Duration
	// ArtifactPath, when set, makes every published snapshot also emit
	// a compiled radio-map artifact (the mmap-able v2 binary) at this
	// path, written atomically on the compactor goroutine — off the
	// serving path. The locator must expose its compiled view
	// (localize.CompiledSource); a rebuild whose locator does not is
	// counted as an artifact error and the snapshot still serves.
	ArtifactPath string
}

func (c *Config) fillDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.FlushReports == 0 {
		c.FlushReports = 256
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.SnapRadius == 0 {
		c.SnapRadius = 10
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
}

// ErrQueueFull is returned by Submit when the bounded queue cannot
// take the reports; the caller should back off for RetryAfter.
var ErrQueueFull = errors.New("ingest: report queue full")

// ErrInvalidReport wraps Validate failures surfaced by Submit, so the
// HTTP layer can answer 400 for bad reports and 500 for I/O trouble.
var ErrInvalidReport = errors.New("invalid report")

// Rebuilder turns a frozen database snapshot into a warmed serving
// state: it builds the locator (compiling the radio map) and the
// name/room resolution for exactly that entry set. It runs on the
// compactor goroutine — off the serving path — and must not retain or
// mutate db beyond building the service.
type Rebuilder func(db *trainingdb.DB) (*core.Service, error)

// Stats is a point-in-time counter snapshot for telemetry (/healthz).
type Stats struct {
	// Accepted counts reports journaled and queued.
	Accepted uint64 `json:"accepted"`
	// RejectedFull counts reports refused with ErrQueueFull.
	RejectedFull uint64 `json:"rejected_queue_full"`
	// Folded counts reports folded into the master database.
	Folded uint64 `json:"folded"`
	// Dropped counts reports that could not be folded (a new name with
	// no coordinate).
	Dropped uint64 `json:"dropped"`
	// Queued is the current accepted-but-unfolded backlog.
	Queued int `json:"queued"`
	// Swaps counts published snapshots (the initial build excluded).
	Swaps uint64 `json:"swaps"`
	// SwapErrors counts rebuilds that failed; the previous snapshot
	// keeps serving.
	SwapErrors uint64 `json:"swap_errors"`
	// Artifacts counts compiled radio-map artifacts written to
	// Config.ArtifactPath (zero when no path is configured).
	Artifacts uint64 `json:"artifacts"`
	// ArtifactErrors counts artifact writes that failed; the snapshot
	// serves regardless.
	ArtifactErrors uint64 `json:"artifact_errors"`
	// Replayed counts reports recovered from the WAL at startup.
	Replayed int `json:"replayed"`
	// LastSwap is when the current snapshot was published (zero before
	// the first swap).
	LastSwap time.Time `json:"last_swap"`
}

// Manager owns the live pipeline: the WAL, the bounded queue, the
// master database (exclusively owned by the compactor goroutine after
// Start), the copy-on-write bookkeeping, and the snapshot registry the
// server reads from.
type Manager struct {
	cfg     Config
	wal     *WAL
	rebuild Rebuilder
	reg     *core.SnapshotRegistry

	// master is the compactor's private, always-current database.
	// published marks entries shared with the latest snapshot; the
	// compactor clones them before folding into them.
	master    *trainingdb.DB
	published map[string]bool

	// slots is the admission semaphore and queue the report buffer:
	// Submit acquires a slot (non-blocking; failure is backpressure),
	// journals, then enqueues — so the send can never block. The
	// compactor releases the slot after dequeueing.
	slots chan struct{}
	queue chan Report

	stop chan struct{}
	done chan struct{}

	accepted       atomic.Uint64
	rejectedFull   atomic.Uint64
	folded         atomic.Uint64
	dropped        atomic.Uint64
	swaps          atomic.Uint64
	swapErrors     atomic.Uint64
	artifacts      atomic.Uint64
	artifactErrors atomic.Uint64
	replayed       int
	lastSwap       atomic.Int64 // UnixNano; 0 = never
}

// NewManager opens (and replays) the WAL, folds every recovered report
// into db, publishes the initial snapshot through a fresh registry,
// and starts the compactor. db must not be used by the caller
// afterwards — the manager owns it. Close releases the WAL and stops
// the compactor.
func NewManager(db *trainingdb.DB, rebuild Rebuilder, cfg Config) (*Manager, error) {
	if db == nil {
		return nil, errors.New("ingest: nil training database")
	}
	if rebuild == nil {
		return nil, errors.New("ingest: nil rebuilder")
	}
	if cfg.WALPath == "" {
		return nil, errors.New("ingest: Config.WALPath required")
	}
	cfg.fillDefaults()
	m := &Manager{
		cfg:       cfg,
		rebuild:   rebuild,
		master:    db,
		published: make(map[string]bool, db.Len()),
		slots:     make(chan struct{}, cfg.QueueDepth),
		queue:     make(chan Report, cfg.QueueDepth),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	wal, recovered, dropped, err := OpenWAL(cfg.WALPath, cfg.SyncEveryAppend)
	if err != nil {
		return nil, err
	}
	m.wal = wal
	m.replayed = len(recovered)
	_ = dropped // torn-tail records were never acknowledged; nothing to recover
	for i := range recovered {
		m.fold(recovered[i])
	}
	snap, err := m.buildSnapshot()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("ingest: initial snapshot: %w", err), wal.Close())
	}
	if m.reg, err = core.NewSnapshotRegistry(snap); err != nil {
		return nil, errors.Join(err, wal.Close())
	}
	// Emit the initial artifact too, so a configured path is valid from
	// the first request, not only after the first live swap.
	m.writeArtifact(snap)
	go m.compact()
	return m, nil
}

// Registry returns the snapshot registry the manager publishes to.
func (m *Manager) Registry() *core.SnapshotRegistry { return m.reg }

// RetryAfter is the backoff the HTTP layer advertises on ErrQueueFull.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Submit validates, journals and queues the reports, all-or-nothing.
// It returns ErrQueueFull when the bounded queue cannot take the whole
// batch — nothing is journaled in that case, so a client retry cannot
// duplicate reports. On nil return every report is durable in the WAL
// and will be folded by the compactor.
func (m *Manager) Submit(reports ...Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("ingest: %w: empty submission", ErrInvalidReport)
	}
	for i := range reports {
		if err := reports[i].Validate(); err != nil {
			return fmt.Errorf("ingest: %w %d: %w", ErrInvalidReport, i, err)
		}
	}
	// Admission: grab one slot per report before touching the WAL, so
	// acknowledged reports always fit in the queue and a full queue
	// costs nothing durable.
	for i := range reports {
		select {
		case m.slots <- struct{}{}:
		default:
			for ; i > 0; i-- {
				<-m.slots
			}
			m.rejectedFull.Add(uint64(len(reports)))
			return ErrQueueFull
		}
	}
	if err := m.wal.Append(reports...); err != nil {
		for range reports {
			<-m.slots
		}
		return err
	}
	for i := range reports {
		m.queue <- reports[i] // cannot block: slots bound occupancy
	}
	m.accepted.Add(uint64(len(reports)))
	return nil
}

// compact is the background loop: fold queued reports into the master
// database and, on the count or interval cadence, recompile and
// publish a fresh snapshot. All master/published access happens here
// (plus NewManager before the goroutine starts), so the mutable state
// needs no locks.
func (m *Manager) compact() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.FlushInterval)
	defer ticker.Stop()
	pending := 0
	for {
		select {
		case r := <-m.queue:
			<-m.slots
			m.fold(r)
			pending++
			if pending >= m.cfg.FlushReports {
				m.swap()
				pending = 0
			}
		case <-ticker.C:
			if pending > 0 {
				m.swap()
				pending = 0
			}
		case <-m.stop:
			// Drain what is already queued so a clean shutdown folds
			// everything it acknowledged; the WAL covers a crash.
			for {
				select {
				case r := <-m.queue:
					<-m.slots
					m.fold(r)
					pending++
				default:
					if pending > 0 {
						m.swap()
					}
					return
				}
			}
		}
	}
}

// fold applies one report to the master database under the
// copy-on-write discipline. Resolution order: an existing name wins
// (its surveyed coordinate is authoritative); a known coordinate snaps
// to the nearest entry within SnapRadius; otherwise the report founds
// a new entry — named, or auto-named from its coordinate.
func (m *Manager) fold(r Report) {
	name := r.Name
	var pos geom.Point
	if r.Pos != nil {
		pos = geom.Point{X: r.Pos.X, Y: r.Pos.Y}
	}
	if name == "" {
		if e, ok := m.master.NearestEntry(pos); ok && e.Pos.Dist(pos) <= m.cfg.SnapRadius {
			name, pos = e.Name, e.Pos
		} else {
			name = fmt.Sprintf("xy:%.1f,%.1f", pos.X, pos.Y)
		}
	} else if e, ok := m.master.Entries[name]; ok {
		pos = e.Pos
	} else if r.Pos == nil {
		// A name the database has never seen and no coordinate to found
		// it at: undecidable, count and drop.
		m.dropped.Add(1)
		return
	}
	if m.published[name] {
		if e := m.master.Entries[name]; e != nil {
			m.master.Entries[name] = e.Clone()
		}
		delete(m.published, name)
	}
	m.master.Fold(name, pos, r.Observation)
	m.folded.Add(1)
}

// buildSnapshot freezes the master database and rebuilds the serving
// state from it. Every entry in the frozen view is marked published,
// so the next fold into it clones first.
func (m *Manager) buildSnapshot() (*core.Snapshot, error) {
	frozen := m.master.Snapshot()
	svc, err := m.rebuild(frozen)
	if err != nil {
		return nil, err
	}
	for name := range frozen.Entries {
		m.published[name] = true
	}
	return &core.Snapshot{Generation: frozen.Generation(), Service: svc, BuiltAt: time.Now()}, nil
}

// swap recompiles and publishes. A failed rebuild (e.g. a geometric
// fit that no longer converges) keeps the previous snapshot serving
// and is only counted — live training must never take the service
// down.
func (m *Manager) swap() {
	snap, err := m.buildSnapshot()
	if err != nil {
		m.swapErrors.Add(1)
		return
	}
	m.reg.Publish(snap)
	m.swaps.Add(1)
	m.lastSwap.Store(snap.BuiltAt.UnixNano())
	m.writeArtifact(snap)
}

// writeArtifact emits the snapshot's compiled radio map as a v2 binary
// artifact, after Publish so serving never waits on the disk. Runs on
// the compactor goroutine only.
func (m *Manager) writeArtifact(snap *core.Snapshot) {
	if m.cfg.ArtifactPath == "" {
		return
	}
	src, ok := snap.Service.Locator.(localize.CompiledSource)
	if !ok {
		m.artifactErrors.Add(1)
		return
	}
	c := src.CompiledView()
	if c == nil {
		m.artifactErrors.Add(1)
		return
	}
	if err := trainingdb.WriteCompiledFile(m.cfg.ArtifactPath, c); err != nil {
		m.artifactErrors.Add(1)
		return
	}
	m.artifacts.Add(1)
}

// Stats returns the current telemetry counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		Accepted:       m.accepted.Load(),
		RejectedFull:   m.rejectedFull.Load(),
		Folded:         m.folded.Load(),
		Dropped:        m.dropped.Load(),
		Queued:         len(m.queue),
		Swaps:          m.swaps.Load(),
		SwapErrors:     m.swapErrors.Load(),
		Artifacts:      m.artifacts.Load(),
		ArtifactErrors: m.artifactErrors.Load(),
		Replayed:       m.replayed,
	}
	if ns := m.lastSwap.Load(); ns != 0 {
		s.LastSwap = time.Unix(0, ns)
	}
	return s
}

// Close stops the compactor (folding and publishing anything already
// queued) and closes the WAL. The registry keeps serving its last
// snapshot.
func (m *Manager) Close() error {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
	return m.wal.Close()
}
