package track

import (
	"fmt"
	"math"
	"testing"

	"indoorloc/internal/filter"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

type houseFixture struct {
	scen sim.Scenario
	sc   *sim.Scanner
	ml   localize.Locator
}

func newHouse(t *testing.T) *houseFixture {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 23)
	coll := sc.CaptureCollection(grid, 20)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &houseFixture{scen: scen, sc: sc, ml: localize.NewMaxLikelihood(db)}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil locator accepted")
	}
	f := newHouse(t)
	tr, err := New(f.ml, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Filter.(filter.Raw); !ok {
		t.Error("nil filter not defaulted to Raw")
	}
}

func TestStepAndReset(t *testing.T) {
	f := newHouse(t)
	tr, err := New(f.ml, &filter.EWMA{Alpha: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Started() {
		t.Error("fresh tracker started")
	}
	target := geom.Pt(25, 20)
	p, err := tr.Step(f.sc.Capture(target, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Started() {
		t.Error("tracker not started after Step")
	}
	if p.Dist(target) > 20 {
		t.Errorf("first step %v far from %v", p, target)
	}
	if tr.LastRaw.Pos == (geom.Point{}) {
		t.Error("LastRaw not recorded")
	}
	tr.Reset()
	if tr.Started() || tr.LastRaw.Pos != (geom.Point{}) {
		t.Error("Reset incomplete")
	}
}

func TestStepErrors(t *testing.T) {
	f := newHouse(t)
	tr, _ := New(f.ml, nil)
	if _, err := tr.Step(nil); err != localize.ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	// A window of unknown APs fails without corrupting state.
	bad := []wiscan.Record{{TimeMillis: 1, BSSID: "gh:os:t", RSSI: -50}}
	if _, err := tr.Step(bad); err == nil {
		t.Error("ghost window accepted")
	}
	if tr.Started() {
		t.Error("failed step marked tracker started")
	}
}

func TestPathSmoothsWalk(t *testing.T) {
	f := newHouse(t)

	// Build one continuous capture log for a straight walk: 1 second
	// per scan, 4 scans per 2-ft step.
	var log []wiscan.Record
	var truth []geom.Point
	base := int64(0)
	for step := 0; step < 20; step++ {
		p := geom.Pt(5+float64(step)*2, 20)
		for s := 0; s < 4; s++ {
			for _, r := range f.sc.Capture(p, 1, base) {
				log = append(log, r)
			}
			base += 1000
		}
		truth = append(truth, p)
	}

	rawTr, _ := New(f.ml, nil)
	rawPath := rawTr.Path(log, 4000, 0)
	kalTr, _ := New(f.ml, &filter.Kalman{Dt: 1, ProcessNoise: 0.8, MeasurementNoise: 6})
	kalPath := kalTr.Path(log, 4000, 0)

	if len(rawPath) != len(truth) || len(kalPath) != len(truth) {
		t.Fatalf("paths %d/%d, want %d", len(rawPath), len(kalPath), len(truth))
	}
	rmse := func(est []geom.Point) float64 {
		s := 0.0
		for i := range est {
			d := est[i].Dist(truth[i])
			s += d * d
		}
		return math.Sqrt(s / float64(len(est)))
	}
	rawErr, kalErr := rmse(rawPath), rmse(kalPath)
	if kalErr >= rawErr {
		t.Errorf("kalman rmse %.2f not below raw %.2f", kalErr, rawErr)
	}
}

func TestPathSkipsBadWindows(t *testing.T) {
	f := newHouse(t)
	tr, _ := New(f.ml, nil)
	// Interleave good scans with a window of ghost-AP records.
	var log []wiscan.Record
	log = append(log, f.sc.Capture(geom.Pt(10, 10), 3, 0)...)
	for i := 0; i < 3; i++ {
		log = append(log, wiscan.Record{
			TimeMillis: int64(5000 + i*1000), BSSID: fmt.Sprintf("gh:os:t%d", i), RSSI: -50,
		})
	}
	log = append(log, f.sc.Capture(geom.Pt(12, 10), 3, 10_000)...)
	// Windows of 3 s: [0,3k) good, [3k,6k) and [6k,9k) pure ghost,
	// [9k,12k) and [12k,15k) good → 3 positions, 2 windows skipped.
	path := tr.Path(log, 3000, 0)
	if len(path) != 3 {
		t.Errorf("%d positions, want 3 (ghost windows skipped)", len(path))
	}
}
