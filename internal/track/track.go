// Package track combines a localizer with a tracking filter into the
// client-tracking service the paper's future work §6.2 describes:
// each observation window is localized, then blended with history.
//
// A Tracker is stateful — one per moving client. Feed it observation
// windows in time order; it returns the smoothed position after each.
package track

import (
	"errors"

	"indoorloc/internal/filter"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/wiscan"
)

// Tracker fuses per-window localization with a position filter.
type Tracker struct {
	// Locator produces the raw per-window estimate.
	Locator localize.Locator
	// Filter blends history; nil means raw (no smoothing).
	Filter filter.PositionFilter

	// LastRaw holds the most recent unfiltered estimate, for
	// diagnostics and renderers that want both.
	LastRaw localize.Estimate

	started bool
}

// New returns a tracker over the locator and filter. A nil filter
// means no smoothing.
func New(loc localize.Locator, f filter.PositionFilter) (*Tracker, error) {
	if loc == nil {
		return nil, errors.New("track: nil locator")
	}
	if f == nil {
		f = filter.Raw{}
	}
	return &Tracker{Locator: loc, Filter: f}, nil
}

// Step consumes one observation window and returns the smoothed
// position. Windows that fail to localize (no overlap, too few APs)
// return the error; the filter state is left untouched so tracking
// resumes cleanly on the next good window.
func (t *Tracker) Step(recs []wiscan.Record) (geom.Point, error) {
	if len(recs) == 0 {
		return geom.Point{}, localize.ErrEmptyObservation
	}
	est, err := t.Locator.Locate(localize.ObservationFromRecords(recs))
	if err != nil {
		return geom.Point{}, err
	}
	t.LastRaw = est
	t.started = true
	return t.Filter.Update(est.Pos), nil
}

// Reset clears filter history; the next Step starts a fresh track.
func (t *Tracker) Reset() {
	t.Filter.Reset()
	t.started = false
	t.LastRaw = localize.Estimate{}
}

// Started reports whether at least one window has been processed
// since construction or the last Reset.
func (t *Tracker) Started() bool { return t.started }

// Path localizes a whole capture log: it slices recs into windows of
// windowMillis (stride strideMillis; ≤0 means non-overlapping) and
// steps the tracker through them. Windows that fail to localize are
// skipped; the returned positions correspond to the successful
// windows, in order.
func (t *Tracker) Path(recs []wiscan.Record, windowMillis, strideMillis int64) []geom.Point {
	var out []geom.Point
	for _, win := range wiscan.Windows(recs, windowMillis, strideMillis) {
		if p, err := t.Step(win); err == nil {
			out = append(out, p)
		}
	}
	return out
}
