// Package sim builds complete, reproducible experiment scenarios: the
// paper's 50 ft × 40 ft experiment house with four corner APs, the
// 10-ft training grid, the 13 scattered test locations, a scanner that
// writes wi-scan files the way the paper's "third-party signal
// strength detecting system" did, and the environmental factor hooks
// for the future-work §6.1 experiments.
package sim

import (
	"fmt"
	"image"
	"math"
	"math/rand"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/rf"
	"indoorloc/internal/wiscan"
)

// Scenario describes one experiment setup.
type Scenario struct {
	// Name labels the scenario.
	Name string
	// Outline is the floor rectangle in feet, origin at Min.
	Outline geom.Rect
	// APs are the access points.
	APs []rf.AP
	// Walls are interior wall segments.
	Walls []geom.Segment
	// GridSpacing is the training-grid pitch in feet.
	GridSpacing float64
	// TestPoints are the working-phase evaluation locations.
	TestPoints []geom.Point
	// Radio configures the RF environment.
	Radio rf.Config
}

// PaperHouse returns the paper's §5 experiment setup: a 50 ft × 40 ft
// house, four 802.11b APs (A, B, C, D) at the corners, training points
// at every multiple of 10 ft, and 13 test locations scattered through
// the house.
func PaperHouse() Scenario {
	return Scenario{
		Name:    "experiment house",
		Outline: geom.RectWH(0, 0, 50, 40),
		APs: []rf.AP{
			{BSSID: "00:02:2d:00:00:0a", SSID: "house", Pos: geom.Pt(0, 0), TxPower: -30, Channel: 1},
			{BSSID: "00:02:2d:00:00:0b", SSID: "house", Pos: geom.Pt(50, 0), TxPower: -30, Channel: 6},
			{BSSID: "00:02:2d:00:00:0c", SSID: "house", Pos: geom.Pt(50, 40), TxPower: -30, Channel: 11},
			{BSSID: "00:02:2d:00:00:0d", SSID: "house", Pos: geom.Pt(0, 40), TxPower: -30, Channel: 1},
		},
		// Two interior walls give the house rooms without blocking the
		// grid: a partial vertical wall and a partial horizontal wall.
		Walls: []geom.Segment{
			geom.Seg(geom.Pt(25, 0), geom.Pt(25, 25)),
			geom.Seg(geom.Pt(25, 25), geom.Pt(50, 25)),
		},
		GridSpacing: 10,
		TestPoints: []geom.Point{
			// 13 locations scattered in the house (fixed for
			// reproducibility; the paper does not publish its list).
			geom.Pt(7, 6), geom.Pt(18, 12), geom.Pt(33, 7), geom.Pt(44, 14),
			geom.Pt(12, 22), geom.Pt(25, 20), geom.Pt(38, 22), geom.Pt(47, 31),
			geom.Pt(6, 33), geom.Pt(17, 36), geom.Pt(28, 31), geom.Pt(36, 35),
			geom.Pt(23, 28),
		},
		// Radio parameters calibrated so the reproduction matches the
		// paper's headline numbers: room-scale shadowing (σ 4.5 dB over
		// a 12 ft correlation length) yields ≈60% valid estimations for
		// the probabilistic approach and a double-digit-feet average
		// deviation for the geometric approach, as published.
		Radio: rf.Config{ShadowSigma: 4.5, ShadowCell: 12},
	}
}

// Environment builds the scenario's radio environment.
func (s Scenario) Environment() (*rf.Environment, error) {
	return rf.NewEnvironment(s.APs, s.Walls, s.Radio)
}

// TrainingName returns the canonical name of the grid point at column
// gx, row gy.
func TrainingName(gx, gy int) string { return fmt.Sprintf("grid-%d-%d", gx, gy) }

// TrainingPoints returns the scenario's training grid as a location
// map: every multiple of GridSpacing inside (and on) the outline,
// named TrainingName(gx, gy).
func (s Scenario) TrainingPoints() (*locmap.Map, error) {
	if s.GridSpacing <= 0 {
		return nil, fmt.Errorf("sim: grid spacing %v must be positive", s.GridSpacing)
	}
	m := locmap.New()
	nx := int(math.Floor(s.Outline.Width()/s.GridSpacing + 1e-9))
	ny := int(math.Floor(s.Outline.Height()/s.GridSpacing + 1e-9))
	for gx := 0; gx <= nx; gx++ {
		for gy := 0; gy <= ny; gy++ {
			p := s.Outline.Min.Add(geom.Pt(float64(gx)*s.GridSpacing, float64(gy)*s.GridSpacing))
			if err := m.Add(TrainingName(gx, gy), p); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// APPositions returns the scenario's AP positions keyed by BSSID.
func (s Scenario) APPositions() map[string]geom.Point {
	out := make(map[string]geom.Point, len(s.APs))
	for _, ap := range s.APs {
		out[ap.BSSID] = ap.Pos
	}
	return out
}

// Plan renders the scenario as an annotated floor plan: blueprint
// image, scale, origin, AP markers and training-location names — the
// artefact the Floor Plan Processor would produce by hand.
func (s Scenario) Plan() (*floorplan.Plan, error) {
	// Import cycle note: the blueprint rasteriser lives in compositor;
	// to keep sim below compositor in the package graph, the plan here
	// carries annotations without an image. cmd/ tools attach blueprint
	// images where needed.
	p := floorplan.New(s.Name)
	p.FeetPerPixel = 1.0 / 8
	origin := imagePtForWorld(s, geom.Pt(0, 0))
	p.SetOrigin(origin)
	for _, ap := range s.APs {
		// Markers are named by BSSID so a plan's AP positions key
		// directly into training databases for the geometric methods.
		p.AddAP(ap.BSSID, imagePtForWorld(s, ap.Pos.Sub(s.Outline.Min)))
	}
	tp, err := s.TrainingPoints()
	if err != nil {
		return nil, err
	}
	for _, name := range tp.Names() {
		w, _ := tp.Lookup(name)
		if err := p.AddLocation(name, imagePtForWorld(s, w.Sub(s.Outline.Min))); err != nil {
			return nil, err
		}
	}
	for _, wall := range s.Walls {
		p.AddWall(geom.Seg(wall.A.Sub(s.Outline.Min), wall.B.Sub(s.Outline.Min)))
	}
	return p, nil
}

// imagePtForWorld mirrors the blueprint raster layout: 8 px per foot,
// 20 px margin, image Y down.
func imagePtForWorld(s Scenario, w geom.Point) image.Point {
	const ppf, margin = 8.0, 20
	hPx := int(math.Ceil(s.Outline.Height()*ppf)) + 2*margin
	return image.Pt(
		margin+int(math.Round(w.X*ppf)),
		hPx-margin-int(math.Round(w.Y*ppf)),
	)
}

// Scanner produces wi-scan captures from an environment, standing in
// for the paper's third-party signal strength detector.
type Scanner struct {
	Env *rf.Environment
	// IntervalMillis is the time between scan sweeps; zero means 1000.
	IntervalMillis int64
	// Rng drives the sampling noise.
	Rng *rand.Rand
}

// NewScanner returns a scanner with a seeded RNG.
func NewScanner(env *rf.Environment, seed int64) *Scanner {
	return &Scanner{Env: env, IntervalMillis: 1000, Rng: rand.New(rand.NewSource(seed))}
}

// Capture records sweeps scans at p, spaced IntervalMillis apart
// starting at startMillis, as wi-scan records. The paper's protocol —
// 1.5 minutes of samples at each point — is sweeps=90 at the default
// interval.
func (sc *Scanner) Capture(p geom.Point, sweeps int, startMillis int64) []wiscan.Record {
	interval := sc.IntervalMillis
	if interval <= 0 {
		interval = 1000
	}
	var recs []wiscan.Record
	for i := 0; i < sweeps; i++ {
		t := startMillis + int64(i)*interval
		for _, r := range sc.Env.ScanAt(p, t, sc.Rng) {
			recs = append(recs, wiscan.Record{
				TimeMillis: t,
				BSSID:      r.BSSID,
				SSID:       r.SSID,
				Channel:    r.Channel,
				RSSI:       r.RSSI,
				Noise:      r.Noise,
			})
		}
	}
	return recs
}

// CaptureCollection walks every location in the map and captures
// sweeps scans at each, returning the wi-scan collection the Training
// Database Generator consumes.
func (sc *Scanner) CaptureCollection(m *locmap.Map, sweeps int) *wiscan.Collection {
	coll := &wiscan.Collection{Files: make(map[string]*wiscan.File)}
	start := int64(1_118_161_600_000) // a fixed epoch for reproducibility
	for _, name := range m.SortedNames() {
		p, _ := m.Lookup(name)
		coll.Files[name] = &wiscan.File{
			Location: name,
			Records:  sc.Capture(p, sweeps, start),
		}
		start += int64(sweeps) * sc.IntervalMillis
	}
	return coll
}

// Factor hooks for the §6.1 one-factor-at-a-time experiments. Each
// returns an extra-loss function for rf.Environment.SetExtraLoss.

// PeopleFactor attenuates any path passing within radius feet of a
// person by lossDB per person blocked. People absorb 2.4 GHz strongly
// (the human body is mostly water).
func PeopleFactor(people []geom.Point, radius, lossDB float64) func(rf.AP, geom.Point) float64 {
	return func(ap rf.AP, rx geom.Point) float64 {
		loss := 0.0
		path := geom.Seg(ap.Pos, rx)
		for _, person := range people {
			if path.DistToPoint(person) <= radius {
				loss += lossDB
			}
		}
		return loss
	}
}

// HumidityFactor models humid air's extra absorption as a per-foot
// attenuation over the path length.
func HumidityFactor(lossDBPerFoot float64) func(rf.AP, geom.Point) float64 {
	return func(ap rf.AP, rx geom.Point) float64 {
		return lossDBPerFoot * ap.Pos.Dist(rx)
	}
}

// FurnitureFactor attenuates paths crossing furniture blobs, each a
// disc with its own loss.
type FurnitureBlob struct {
	Center geom.Point
	Radius float64
	LossDB float64
}

// FurnitureFactor builds the extra-loss hook for a furniture layout.
func FurnitureFactor(blobs []FurnitureBlob) func(rf.AP, geom.Point) float64 {
	return func(ap rf.AP, rx geom.Point) float64 {
		loss := 0.0
		path := geom.Seg(ap.Pos, rx)
		for _, b := range blobs {
			if path.DistToPoint(b.Center) <= b.Radius {
				loss += b.LossDB
			}
		}
		return loss
	}
}

// TemperatureFactor shifts every AP's effective level uniformly —
// hardware efficiency drifts with temperature. deltaDB may be
// negative (hotter hardware, weaker signal).
func TemperatureFactor(deltaDB float64) func(rf.AP, geom.Point) float64 {
	return func(rf.AP, geom.Point) float64 { return -deltaDB }
}

// Audibility reports the fraction of (training point, AP) pairs whose
// mean level clears the environment floor — a quick sanity gauge for
// scenario parameters.
func Audibility(env *rf.Environment, m *locmap.Map) float64 {
	total, heard := 0, 0
	for _, name := range m.SortedNames() {
		p, _ := m.Lookup(name)
		levels, audible := env.MeanVector(p)
		_ = levels
		for _, ok := range audible {
			total++
			if ok {
				heard++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(heard) / float64(total)
}

// FloorLevel exposes the environment floor in dBm as a float for
// localizer configuration.
func FloorLevel(env *rf.Environment) float64 { return float64(env.Floor()) }

// OfficeWing returns a larger benchmark scenario: a 120 ft × 80 ft
// office floor with eight APs and a denser wall layout. It exists for
// scaling studies — the paper's house has 30 training points; this
// floor has 117 at the same pitch.
func OfficeWing() Scenario {
	return Scenario{
		Name:    "office wing",
		Outline: geom.RectWH(0, 0, 120, 80),
		APs: []rf.AP{
			{BSSID: "00:40:96:00:00:01", SSID: "office", Pos: geom.Pt(0, 0), TxPower: -30, Channel: 1},
			{BSSID: "00:40:96:00:00:02", SSID: "office", Pos: geom.Pt(120, 0), TxPower: -30, Channel: 6},
			{BSSID: "00:40:96:00:00:03", SSID: "office", Pos: geom.Pt(120, 80), TxPower: -30, Channel: 11},
			{BSSID: "00:40:96:00:00:04", SSID: "office", Pos: geom.Pt(0, 80), TxPower: -30, Channel: 1},
			{BSSID: "00:40:96:00:00:05", SSID: "office", Pos: geom.Pt(60, 0), TxPower: -30, Channel: 6},
			{BSSID: "00:40:96:00:00:06", SSID: "office", Pos: geom.Pt(60, 80), TxPower: -30, Channel: 11},
			{BSSID: "00:40:96:00:00:07", SSID: "office", Pos: geom.Pt(0, 40), TxPower: -30, Channel: 6},
			{BSSID: "00:40:96:00:00:08", SSID: "office", Pos: geom.Pt(120, 40), TxPower: -30, Channel: 1},
		},
		Walls: []geom.Segment{
			geom.Seg(geom.Pt(30, 0), geom.Pt(30, 50)),
			geom.Seg(geom.Pt(60, 30), geom.Pt(60, 80)),
			geom.Seg(geom.Pt(90, 0), geom.Pt(90, 50)),
			geom.Seg(geom.Pt(0, 40), geom.Pt(20, 40)),
			geom.Seg(geom.Pt(100, 40), geom.Pt(120, 40)),
		},
		GridSpacing: 10,
		TestPoints: []geom.Point{
			geom.Pt(15, 20), geom.Pt(45, 15), geom.Pt(75, 25), geom.Pt(105, 20),
			geom.Pt(15, 60), geom.Pt(45, 65), geom.Pt(75, 60), geom.Pt(105, 65),
			geom.Pt(60, 40), geom.Pt(25, 45), geom.Pt(95, 45), geom.Pt(50, 50),
			geom.Pt(110, 75),
		},
		Radio: rf.Config{ShadowSigma: 4.5, ShadowCell: 12},
	}
}
