package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"indoorloc/internal/trainingdb"
)

func TestCityVenueIDs(t *testing.T) {
	cfg := CityConfig{Campuses: 3, Floors: 2}
	if n := cfg.Venues(); n != 6 {
		t.Fatalf("Venues() = %d, want 6", n)
	}
	ids := cfg.VenueIDs()
	if len(ids) != 6 {
		t.Fatalf("%d ids, want 6", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if ids[0] != "campus-000-floor-0" || ids[5] != "campus-002-floor-1" {
		t.Errorf("id order: %v", ids)
	}
	// Defaults: the zero config is one venue.
	if (CityConfig{}).Venues() != 1 {
		t.Error("zero config is not one venue")
	}
}

// TestCityBSSIDsDisjoint checks the realism property the soak relies
// on: no two venues share an AP, so an observation captured in one
// venue carries no signal about another.
func TestCityBSSIDsDisjoint(t *testing.T) {
	seen := map[string]string{}
	for ca := 0; ca < 3; ca++ {
		for fl := 0; fl < 3; fl++ {
			s := CityScenario(ca, fl)
			for _, ap := range s.APs {
				if prev, dup := seen[ap.BSSID]; dup {
					t.Fatalf("BSSID %s appears in both %s and %s", ap.BSSID, prev, s.Name)
				}
				seen[ap.BSSID] = s.Name
			}
		}
	}
}

// TestCityDeterministic: same seed, same city — byte-identical
// artifacts, so a regenerated fixture never silently changes a
// benchmark's workload.
func TestCityDeterministic(t *testing.T) {
	cfg := CityConfig{Campuses: 2, Floors: 1, Seed: 42}
	dirA, dirB := filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")
	idsA, err := WriteArtifacts(dirA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idsB, err := WriteArtifacts(dirB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsA) != 2 || len(idsB) != 2 {
		t.Fatalf("wrote %d and %d venues, want 2", len(idsA), len(idsB))
	}
	for _, id := range idsA {
		a, err := os.ReadFile(filepath.Join(dirA, id+".ilr"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, id+".ilr"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("venue %s: two runs with seed %d differ", id, cfg.Seed)
		}
		// The artifact decodes as a quantized serving map.
		c, err := trainingdb.DecodeCompiled(a, trainingdb.DecodeOptions{VerifyCRC: true})
		if err != nil {
			t.Fatalf("venue %s: %v", id, err)
		}
		if c.NumEntries() == 0 || c.Quant == nil || c.Mean != nil {
			t.Errorf("venue %s shape: %d entries quant=%v float64=%v",
				id, c.NumEntries(), c.Quant != nil, c.Mean != nil)
		}
	}
	// Different campuses get different footprints, hence different
	// artifact sizes — the property the LRU budget tests lean on.
	a0, _ := os.Stat(filepath.Join(dirA, idsA[0]+".ilr"))
	a1, _ := os.Stat(filepath.Join(dirA, idsA[1]+".ilr"))
	if a0.Size() == a1.Size() {
		t.Errorf("campus 0 and 1 artifacts are both %d bytes; footprints should differ", a0.Size())
	}
}
