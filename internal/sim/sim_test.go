package sim

import (
	"math"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/rf"
	"indoorloc/internal/trainingdb"
)

func TestPaperHouseShape(t *testing.T) {
	s := PaperHouse()
	if s.Outline.Width() != 50 || s.Outline.Height() != 40 {
		t.Errorf("outline %v × %v", s.Outline.Width(), s.Outline.Height())
	}
	if len(s.APs) != 4 {
		t.Fatalf("%d APs", len(s.APs))
	}
	corners := map[geom.Point]bool{
		geom.Pt(0, 0): true, geom.Pt(50, 0): true,
		geom.Pt(50, 40): true, geom.Pt(0, 40): true,
	}
	for _, ap := range s.APs {
		if !corners[ap.Pos] {
			t.Errorf("AP %s not at a corner: %v", ap.BSSID, ap.Pos)
		}
	}
	if len(s.TestPoints) != 13 {
		t.Errorf("%d test points, want 13 (the paper's count)", len(s.TestPoints))
	}
	for _, p := range s.TestPoints {
		if !s.Outline.Contains(p) {
			t.Errorf("test point %v outside the house", p)
		}
	}
	if s.GridSpacing != 10 {
		t.Errorf("grid spacing %v", s.GridSpacing)
	}
}

func TestTrainingPoints(t *testing.T) {
	s := PaperHouse()
	m, err := s.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	// 6 × 5 grid: x ∈ {0..50 step 10}, y ∈ {0..40 step 10}.
	if m.Len() != 30 {
		t.Errorf("grid has %d points, want 30", m.Len())
	}
	p, ok := m.Lookup(TrainingName(2, 3))
	if !ok || p != geom.Pt(20, 30) {
		t.Errorf("grid-2-3 = %v %v", p, ok)
	}
	// Bad spacing rejected.
	s.GridSpacing = 0
	if _, err := s.TrainingPoints(); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestEnvironmentAndAudibility(t *testing.T) {
	s := PaperHouse()
	env, err := s.Environment()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.TrainingPoints()
	// All four corner APs should be audible across a 50×40 house with
	// consumer parameters.
	if a := Audibility(env, m); a < 0.95 {
		t.Errorf("audibility %.2f, want ≥0.95", a)
	}
	if FloorLevel(env) != -94 {
		t.Errorf("floor %v", FloorLevel(env))
	}
}

func TestAPPositions(t *testing.T) {
	s := PaperHouse()
	pos := s.APPositions()
	if len(pos) != 4 {
		t.Fatalf("%d positions", len(pos))
	}
	if pos["00:02:2d:00:00:0c"] != geom.Pt(50, 40) {
		t.Errorf("AP C at %v", pos["00:02:2d:00:00:0c"])
	}
}

func TestScannerCapture(t *testing.T) {
	s := PaperHouse()
	env, _ := s.Environment()
	sc := NewScanner(env, 7)
	recs := sc.Capture(geom.Pt(25, 20), 5, 1000)
	if len(recs) != 20 { // 5 sweeps × 4 audible APs mid-house
		t.Errorf("%d records, want 20", len(recs))
	}
	// Timestamps advance by the interval.
	if recs[0].TimeMillis != 1000 || recs[len(recs)-1].TimeMillis != 5000 {
		t.Errorf("timestamps %d..%d", recs[0].TimeMillis, recs[len(recs)-1].TimeMillis)
	}
	for _, r := range recs {
		if r.RSSI >= 0 || r.RSSI < -120 {
			t.Errorf("rssi %d", r.RSSI)
		}
		if r.SSID != "house" {
			t.Errorf("ssid %q", r.SSID)
		}
	}
}

func TestScannerDeterminism(t *testing.T) {
	s := PaperHouse()
	env, _ := s.Environment()
	a := NewScanner(env, 7).Capture(geom.Pt(10, 10), 10, 0)
	b := NewScanner(env, 7).Capture(geom.Pt(10, 10), 10, 0)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different captures")
		}
	}
}

func TestCaptureCollectionToTrainingDB(t *testing.T) {
	s := PaperHouse()
	env, _ := s.Environment()
	m, _ := s.TrainingPoints()
	coll := NewScanner(env, 11).CaptureCollection(m, 10)
	if len(coll.Files) != m.Len() {
		t.Fatalf("collection has %d files", len(coll.Files))
	}
	db, skipped, err := trainingdb.Generate(coll, m, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != nil {
		t.Errorf("skipped %v", skipped)
	}
	if db.Len() != 30 {
		t.Errorf("db has %d entries", db.Len())
	}
	if len(db.BSSIDs) != 4 {
		t.Errorf("db sees %d APs", len(db.BSSIDs))
	}
}

func TestPlan(t *testing.T) {
	s := PaperHouse()
	p, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.APs) != 4 || p.APs[0].Name != s.APs[0].BSSID {
		t.Errorf("plan APs = %v", p.APs)
	}
	if len(p.Locations) != 30 {
		t.Errorf("plan has %d locations", len(p.Locations))
	}
	// The plan's coordinate frame reproduces the scenario's geometry.
	pos, err := p.APPositions()
	if err != nil {
		t.Fatal(err)
	}
	if d := pos["00:02:2d:00:00:0c"].Dist(geom.Pt(50, 40)); d > 0.2 {
		t.Errorf("AP C maps to %v", pos["00:02:2d:00:00:0c"])
	}
	lm, err := p.LocationMap()
	if err != nil {
		t.Fatal(err)
	}
	w, ok := lm.Lookup(TrainingName(1, 1))
	if !ok || w.Dist(geom.Pt(10, 10)) > 0.2 {
		t.Errorf("grid-1-1 maps to %v", w)
	}
	if len(p.Walls) != 2 {
		t.Errorf("plan has %d walls", len(p.Walls))
	}
}

func TestPeopleFactor(t *testing.T) {
	ap := rf.AP{Pos: geom.Pt(0, 0)}
	f := PeopleFactor([]geom.Point{geom.Pt(5, 0)}, 1.5, 3)
	if got := f(ap, geom.Pt(10, 0)); got != 3 {
		t.Errorf("blocked path loss = %v", got)
	}
	if got := f(ap, geom.Pt(0, 10)); got != 0 {
		t.Errorf("clear path loss = %v", got)
	}
	// Two people on the path stack.
	f2 := PeopleFactor([]geom.Point{geom.Pt(3, 0), geom.Pt(6, 0)}, 1, 3)
	if got := f2(ap, geom.Pt(10, 0)); got != 6 {
		t.Errorf("double block = %v", got)
	}
}

func TestHumidityFactor(t *testing.T) {
	ap := rf.AP{Pos: geom.Pt(0, 0)}
	f := HumidityFactor(0.1)
	if got := f(ap, geom.Pt(30, 40)); math.Abs(got-5) > 1e-12 {
		t.Errorf("humidity loss over 50 ft = %v", got)
	}
}

func TestFurnitureFactor(t *testing.T) {
	ap := rf.AP{Pos: geom.Pt(0, 0)}
	f := FurnitureFactor([]FurnitureBlob{
		{Center: geom.Pt(5, 0), Radius: 2, LossDB: 4},
		{Center: geom.Pt(0, 5), Radius: 1, LossDB: 2},
	})
	if got := f(ap, geom.Pt(10, 0)); got != 4 {
		t.Errorf("through couch = %v", got)
	}
	if got := f(ap, geom.Pt(0, 10)); got != 2 {
		t.Errorf("through shelf = %v", got)
	}
	if got := f(ap, geom.Pt(-5, -5)); got != 0 {
		t.Errorf("clear = %v", got)
	}
}

func TestTemperatureFactor(t *testing.T) {
	f := TemperatureFactor(2)
	if got := f(rf.AP{}, geom.Pt(0, 0)); got != -2 {
		t.Errorf("temperature delta = %v", got)
	}
}

func TestFactorChangesEnvironment(t *testing.T) {
	s := PaperHouse()
	s.Radio = rf.Config{ShadowSigma: 0.001}
	env, _ := s.Environment()
	p := geom.Pt(25, 20)
	base := env.MeanAt(p, 0)
	env.SetExtraLoss(HumidityFactor(0.05))
	after := env.MeanAt(p, 0)
	if after >= base {
		t.Errorf("humidity did not attenuate: %v -> %v", base, after)
	}
}

func TestOfficeWing(t *testing.T) {
	s := OfficeWing()
	env, err := s.Environment()
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 117 { // 13 × 9 grid
		t.Errorf("office grid has %d points", m.Len())
	}
	for _, p := range s.TestPoints {
		if !s.Outline.Contains(p) {
			t.Errorf("test point %v outside", p)
		}
	}
	// With eight APs every grid point should hear most of them.
	if a := Audibility(env, m); a < 0.9 {
		t.Errorf("audibility %.2f", a)
	}
	coll := NewScanner(env, 3).CaptureCollection(m, 5)
	db, _, err := trainingdb.Generate(coll, m, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 117 || len(db.BSSIDs) != 8 {
		t.Errorf("db %d entries, %d APs", db.Len(), len(db.BSSIDs))
	}
}
