package sim

import (
	"fmt"
	"os"
	"path/filepath"

	"indoorloc/internal/geom"
	"indoorloc/internal/rf"
	"indoorloc/internal/trainingdb"
)

// CityConfig sizes a synthetic city: Campuses buildings of Floors
// floors each, every floor an independent venue with its own radio
// map. The city is the scale fixture for multi-venue serving — a
// thousand small venues stress the registry's lazy load, LRU budget
// and eviction machinery the way one big venue never could.
type CityConfig struct {
	// Campuses × Floors venues are generated.
	Campuses int
	Floors   int
	// Seed makes the city reproducible; venue i's scanner derives its
	// stream from Seed and i.
	Seed int64
	// Sweeps per training point (default 3 — enough for stable means,
	// cheap enough that generating 1000 venues stays in seconds).
	Sweeps int
}

func (c CityConfig) withDefaults() CityConfig {
	if c.Campuses <= 0 {
		c.Campuses = 1
	}
	if c.Floors <= 0 {
		c.Floors = 1
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 3
	}
	return c
}

// Venues returns the venue count, Campuses × Floors.
func (c CityConfig) Venues() int {
	c = c.withDefaults()
	return c.Campuses * c.Floors
}

// VenueID names campus ca, floor fl: "campus-007-floor-2". The ids
// satisfy venue.ValidID and sort lexically in campus/floor order.
func VenueID(campus, floor int) string {
	return fmt.Sprintf("campus-%03d-floor-%d", campus, floor)
}

// VenueIDs lists every venue id in the city, campus-major.
func (c CityConfig) VenueIDs() []string {
	c = c.withDefaults()
	out := make([]string, 0, c.Campuses*c.Floors)
	for ca := 0; ca < c.Campuses; ca++ {
		for fl := 0; fl < c.Floors; fl++ {
			out = append(out, VenueID(ca, fl))
		}
	}
	return out
}

// CityScenario builds the deterministic per-venue scenario: a small
// floor (the footprint varies with the campus so artifacts differ in
// size), four corner APs whose BSSIDs encode campus and floor (no two
// venues share a BSSID — a capture from one venue is meaningless in
// another, as in reality), and mild shadowing so the maps stay
// distinguishable at 3 sweeps.
func CityScenario(campus, floor int) Scenario {
	w := 40 + float64(campus%3)*10 // 40, 50 or 60 ft wide
	h := 30.0
	bs := func(last byte) string {
		return fmt.Sprintf("02:%02x:%02x:00:00:%02x", byte(campus), byte(floor), last)
	}
	return Scenario{
		Name:    VenueID(campus, floor),
		Outline: geom.RectWH(0, 0, w, h),
		APs: []rf.AP{
			{BSSID: bs(0x0a), SSID: "city", Pos: geom.Pt(0, 0), TxPower: -30, Channel: 1},
			{BSSID: bs(0x0b), SSID: "city", Pos: geom.Pt(w, 0), TxPower: -30, Channel: 6},
			{BSSID: bs(0x0c), SSID: "city", Pos: geom.Pt(w, h), TxPower: -30, Channel: 11},
			{BSSID: bs(0x0d), SSID: "city", Pos: geom.Pt(0, h), TxPower: -30, Channel: 1},
		},
		GridSpacing: 10,
		Radio:       rf.Config{ShadowSigma: 3, ShadowCell: 10},
	}
}

// BuildVenueDB trains one venue's database: capture cfg.Sweeps sweeps
// at every grid point of the venue's scenario and generate the DB.
func (c CityConfig) BuildVenueDB(campus, floor int) (*trainingdb.DB, error) {
	c = c.withDefaults()
	s := CityScenario(campus, floor)
	env, err := s.Environment()
	if err != nil {
		return nil, fmt.Errorf("sim: city venue %s: %w", s.Name, err)
	}
	pts, err := s.TrainingPoints()
	if err != nil {
		return nil, fmt.Errorf("sim: city venue %s: %w", s.Name, err)
	}
	idx := int64(campus*1000 + floor)
	sc := NewScanner(env, c.Seed+idx)
	col := sc.CaptureCollection(pts, c.Sweeps)
	db, _, err := trainingdb.Generate(col, pts, trainingdb.Options{})
	if err != nil {
		return nil, fmt.Errorf("sim: city venue %s: %w", s.Name, err)
	}
	return db, nil
}

// WriteArtifacts emits the whole city into dir as quantized v2
// artifacts (<venue-id>.ilr), the layout venue.Registry serves from,
// and returns the venue ids written. Floor-model parameters match
// tdbtool compile's defaults (-95 dBm floor, σ 4).
func WriteArtifacts(dir string, cfg CityConfig) ([]string, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: city dir: %w", err)
	}
	ids := make([]string, 0, cfg.Campuses*cfg.Floors)
	for ca := 0; ca < cfg.Campuses; ca++ {
		for fl := 0; fl < cfg.Floors; fl++ {
			db, err := cfg.BuildVenueDB(ca, fl)
			if err != nil {
				return nil, err
			}
			comp := db.Compile(-95, 4)
			comp.Quantize()
			comp.ReleaseFloat64()
			id := VenueID(ca, fl)
			if err := trainingdb.WriteCompiledFile(filepath.Join(dir, id+".ilr"), comp); err != nil {
				return nil, fmt.Errorf("sim: city venue %s: %w", id, err)
			}
			ids = append(ids, id)
		}
	}
	return ids, nil
}
