// Package a exercises lockorder. Source order matters: the first
// function establishes Registry.mu → WAL.mu; later inversions are
// the flagged sites.
package a

import "sync"

type Registry struct{ mu sync.Mutex }

type WAL struct{ mu sync.Mutex }

func lockAB(r *Registry, w *WAL) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.mu.Lock()
	w.mu.Unlock()
}

func lockB(w *WAL) {
	w.mu.Lock()
	w.mu.Unlock()
}

func lockA(r *Registry) {
	r.mu.Lock()
	r.mu.Unlock()
}

// indirectAB repeats the established order through a callee summary.
func indirectAB(r *Registry, w *WAL) {
	r.mu.Lock()
	lockB(w)
	r.mu.Unlock()
}

func lockBA(r *Registry, w *WAL) {
	w.mu.Lock()
	defer w.mu.Unlock()
	r.mu.Lock() // want `lock order inversion: a.Registry.mu acquired while holding a.WAL.mu`
	r.mu.Unlock()
}

// indirectBA inverts the order through a call: lockA may take
// Registry.mu while WAL.mu is held.
func indirectBA(r *Registry, w *WAL) {
	w.mu.Lock()
	lockA(r) // want `lock order inversion: a.Registry.mu acquired while holding a.WAL.mu`
	w.mu.Unlock()
}

// sequential is fine: the first lock is released before the second.
func sequential(r *Registry, w *WAL) {
	w.mu.Lock()
	w.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

// spawned goroutines do not hold the spawner's locks.
func spawns(r *Registry, w *WAL) {
	w.mu.Lock()
	defer w.mu.Unlock()
	go func() {
		r.mu.Lock()
		r.mu.Unlock()
	}()
}
