// Package lockorder records mutex acquisition order as facts and
// flags inversions. The registry eviction path holds Registry.mu
// while finalizing a venue, which closes the venue's ingest manager
// and takes the WAL mutex — so the established order is
// Registry.mu → WAL.mu, and any code path that takes a venue-side
// mutex first and then re-enters the registry can deadlock a fleet
// node under load (eviction on one goroutine, the inverse path on
// another).
//
// Mutexes are identified by owner: a sync.Mutex/RWMutex field keyed
// "pkg.Owner.field", or a package-level mutex var keyed "pkg.var".
// Function-local mutexes are skipped (they cannot participate in a
// cross-function order). Each function is walked in source order with
// a held-set: a plain Unlock releases, a deferred Unlock holds to
// function end (defer subtrees are otherwise skipped — they run
// after the locks of interest move), and a go statement's body is
// skipped (a spawned goroutine does not hold the spawner's locks).
// Calls contribute the callee's transitive may-acquire set, computed
// by callwalk fixpoint within the package and imported Acquires facts
// across packages; Edges package facts carry established order to
// downstream packages.
//
// A cycle is reported once, at the edge that contradicts the order
// established earlier (in source order, or in an imported package).
// The self-edge A→A is skipped: recursive acquisition is a different
// defect class with too many read-lock false positives.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/callwalk"
	"indoorloc/internal/analysis/directive"
)

// Acquires is the per-function fact: mutex keys the function may
// acquire, directly or transitively.
type Acquires struct{ Keys []string }

func (*Acquires) AFact() {}

func (a *Acquires) String() string {
	s := "acquires("
	for i, k := range a.Keys {
		if i > 0 {
			s += ","
		}
		s += k
	}
	return s + ")"
}

// Edges is the per-package fact: the acquisition order established by
// this package's code, as (held, acquired) pairs.
type Edges struct{ Pairs [][2]string }

func (*Edges) AFact() {}

func (e *Edges) String() string { return "lockedges" }

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "record mutex acquisition order as facts and flag reverse acquisition\n\n" +
		"Registry.mu is held across venue finalize (which takes the WAL mutex);\n" +
		"taking them in the other order deadlocks eviction against that path.",
	Run:       run,
	FactTypes: []analysis.Fact{(*Acquires)(nil), (*Edges)(nil)},
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func run(pass *analysis.Pass) (any, error) {
	sup := directive.NewSuppressor(pass)
	decls := callwalk.Decls(pass)

	// Transitive may-acquire summaries, with imported facts for
	// callees from other packages.
	summaries := callwalk.Transitive(pass.TypesInfo, decls,
		func(_ *types.Func, fd *ast.FuncDecl) callwalk.Set {
			s := callwalk.Set{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, isLock := mutexOp(pass, call, lockMethods); isLock {
						s[key] = true
					}
				}
				return true
			})
			return s
		},
		func(fn *types.Func) callwalk.Set { return importedAcquires(pass, fn) })
	for fn, s := range summaries {
		if len(s) > 0 {
			pass.ExportObjectFact(fn, &Acquires{Keys: sortedKeys(s)})
		}
	}

	// Established order from upstream packages.
	established := make(map[[2]string]bool)
	for _, imp := range pass.Pkg.Imports() {
		var e Edges
		if pass.ImportPackageFact(imp, &e) {
			for _, p := range e.Pairs {
				established[p] = true
			}
		}
	}

	// Walk functions in source order so "earlier edge wins" is
	// deterministic; report the contradicting (later) edge.
	type edgeSite struct {
		pair [2]string
		pos  token.Pos
	}
	local := make(map[[2]string]bool)
	var sites []edgeSite
	for _, f := range pass.Files {
		if directive.InTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkHeld(pass, decls, summaries, fd.Body, func(held []string, acquired string, pos token.Pos) {
				for _, h := range held {
					if h == acquired {
						continue
					}
					pair := [2]string{h, acquired}
					local[pair] = true
					sites = append(sites, edgeSite{pair, pos})
				}
			})
		}
	}
	reported := make(map[token.Pos]bool)
	for i, s := range sites {
		rev := [2]string{s.pair[1], s.pair[0]}
		inverted := established[rev]
		if !inverted {
			for _, earlier := range sites[:i] {
				if earlier.pair == rev {
					inverted = true
					break
				}
			}
		}
		if inverted && !reported[s.pos] {
			reported[s.pos] = true
			sup.Reportf(s.pos, "lock order inversion: %s acquired while holding %s, but the established order is %s before %s",
				s.pair[1], s.pair[0], s.pair[1], s.pair[0])
		}
	}
	pairs := make([][2]string, 0, len(local))
	for p := range local {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if len(pairs) > 0 {
		pass.ExportPackageFact(&Edges{Pairs: pairs})
	}
	return nil, nil
}

// walkHeld simulates fd's body in source order, invoking onAcquire
// for every direct lock and every call that may transitively lock,
// with the currently held keys.
func walkHeld(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, summaries map[*types.Func]callwalk.Set, body ast.Node, onAcquire func(held []string, acquired string, pos token.Pos)) {
	var held []string
	drop := func(key string) {
		for i, h := range held {
			if h == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock means "held to the end": by skipping
			// the subtree the release is simply never seen. Deferred
			// cleanup bodies run after the function's lock region.
			return false
		case *ast.GoStmt:
			return false // the goroutine does not hold our locks
		case *ast.CallExpr:
			if key, ok := mutexOp(pass, n, lockMethods); ok {
				onAcquire(held, key, n.Pos())
				held = append(held, key)
				return true
			}
			if key, ok := mutexOp(pass, n, unlockMethods); ok {
				drop(key)
				return true
			}
			if fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func); ok && len(held) > 0 {
				var may callwalk.Set
				if _, local := decls[fn]; local {
					may = summaries[fn]
				} else {
					may = importedAcquires(pass, fn)
				}
				for _, key := range sortedKeys(may) {
					onAcquire(held, key, n.Pos())
				}
			}
		}
		return true
	})
}

// mutexOp reports whether call is a sync.Mutex/RWMutex method in ops
// on an identifiable mutex, returning its stable key.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr, ops map[string]bool) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !ops[sel.Sel.Name] {
		return "", false
	}
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := callwalk.ReceiverNamed(fn)
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		owner := callwalk.Named(pass.TypesInfo.TypeOf(x.X))
		if owner == nil || owner.Obj().Pkg() == nil {
			return "", false
		}
		return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + x.Sel.Name, true
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

func importedAcquires(pass *analysis.Pass, fn *types.Func) callwalk.Set {
	var a Acquires
	if !pass.ImportObjectFact(fn, &a) {
		return nil
	}
	s := callwalk.Set{}
	for _, k := range a.Keys {
		s[k] = true
	}
	return s
}

func sortedKeys(s callwalk.Set) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
