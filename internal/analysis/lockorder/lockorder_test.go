package lockorder_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), lockorder.Analyzer, "a")
}
