// Package errenvelope enforces the unified HTTP error contract: every
// error a handler emits goes through a blessed envelope helper and
// carries a code from the registered stable set, so clients (and the
// replication follower) can switch on {"error":{code,message}} without
// parsing prose. Within the scoped packages (server, repl) it flags:
//
//   - raw http.Error calls — plain-text bodies with no code
//   - fmt.Fprint*/io.WriteString straight onto a ResponseWriter
//   - w.WriteHeader with a constant error status (>= 400) outside a
//     blessed emitter — the envelope helper owns the status line
//   - json.NewEncoder(w).Encode onto a ResponseWriter outside a
//     blessed emitter — ad-hoc JSON shapes drift
//   - a code argument to a blessed emitter that is not a constant in
//     the registered set (and, inside blessed string-returning
//     mappers, constant returns outside the set)
//
// Blessed emitters carry //loclint:errenvelope in their doc comment
// and must live in the checked package (the directive is resolved on
// package-local declarations). Methods of types that themselves
// implement WriteHeader are middleware plumbing (status recorders,
// timeout writers) and are exempt from the raw-write rules: they
// relay statuses, they do not originate error bodies.
//
// The stable set is append-only ("add, never repurpose"); growing it
// means updating the analyzer default, DESIGN.md, and the server
// constants together.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/callwalk"
	"indoorloc/internal/analysis/directive"
)

// Analyzer is the errenvelope analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "require the unified {\"error\":{code,message}} envelope and registered codes for HTTP errors\n\n" +
		"Ad-hoc error bodies drift per endpoint and break machine clients;\n" +
		"the envelope helpers and the stable code set are the only sanctioned path.",
	Run: run,
}

var (
	scopedPkgs = "server,repl"
	codeSet    = "bad_request,no_route,venue_not_found,track_not_found,method_not_allowed," +
		"body_too_large,batch_too_large,path_too_long,unprocessable,queue_full," +
		"venue_frozen,venue_load_failed,internal,timeout,not_ready,generation_conflict"
)

func init() {
	Analyzer.Flags.StringVar(&scopedPkgs, "pkgs", scopedPkgs,
		"comma-separated package names whose HTTP handlers are held to the envelope contract")
	Analyzer.Flags.StringVar(&codeSet, "codes", codeSet,
		"comma-separated registered stable error codes")
}

func run(pass *analysis.Pass) (any, error) {
	scoped := splitSet(scopedPkgs)
	if !scoped[pass.Pkg.Name()] {
		return nil, nil
	}
	codes := splitSet(codeSet)
	sup := directive.NewSuppressor(pass)
	decls := callwalk.Decls(pass)
	blessed := make(map[*types.Func]*ast.FuncDecl)
	for fn, fd := range decls {
		if directive.Errenvelope(fd.Doc) {
			blessed[fn] = fd
		}
	}
	for fn, fd := range decls {
		if directive.InTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		_, isBlessed := blessed[fn]
		plumbing := isResponseWriter(recvType(fn))
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if bfd, ok := blessed[callee]; ok {
				checkCodeArg(pass, sup, blessed, codes, call, bfd)
			}
			if isBlessed || plumbing {
				return true
			}
			checkEmission(pass, sup, call, callee)
			return true
		})
		if isBlessed && returnsString(fn) {
			checkMapperReturns(pass, sup, fd, codes)
		}
	}
	return nil, nil
}

// checkEmission applies the raw-write rules (a–d) to one call.
func checkEmission(pass *analysis.Pass, sup *directive.Suppressor, call *ast.CallExpr, callee *types.Func) {
	info := pass.TypesInfo
	if callee == nil {
		return
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	switch {
	case pkgPath == "net/http" && callee.Name() == "Error":
		sup.Reportf(call.Pos(), "http.Error bypasses the unified error envelope; use the blessed //loclint:errenvelope helper")
	case (pkgPath == "fmt" && strings.HasPrefix(callee.Name(), "Fprint")) ||
		(pkgPath == "io" && callee.Name() == "WriteString"):
		if len(call.Args) > 0 && isResponseWriter(info.TypeOf(call.Args[0])) {
			sup.Reportf(call.Pos(), "%s.%s writes straight to the ResponseWriter; emit error bodies through the unified envelope helper", callee.Pkg().Name(), callee.Name())
		}
	case pkgPath == "encoding/json" && callee.Name() == "NewEncoder":
		if len(call.Args) == 1 && isResponseWriter(info.TypeOf(call.Args[0])) {
			sup.Reportf(call.Pos(), "ad-hoc JSON encoded straight to the ResponseWriter; emit errors through the unified envelope helper")
		}
	case callee.Name() == "WriteHeader" && len(call.Args) == 1:
		if status, ok := constInt(info, call.Args[0]); ok && status >= 400 {
			sup.Reportf(call.Pos(), "error status %d written without the unified envelope; use the blessed //loclint:errenvelope helper", status)
		}
	}
}

// checkCodeArg enforces the registered stable set on the `code`
// parameter of a blessed emitter call. A call to a blessed mapper
// (codeFor) is fine: its own returns are checked at the source.
func checkCodeArg(pass *analysis.Pass, sup *directive.Suppressor, blessed map[*types.Func]*ast.FuncDecl, codes map[string]bool, call *ast.CallExpr, bfd *ast.FuncDecl) {
	idx := paramIndex(bfd, "code")
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	arg := ast.Unparen(call.Args[idx])
	if inner, ok := arg.(*ast.CallExpr); ok {
		if innerCallee, _ := typeutil.Callee(pass.TypesInfo, inner).(*types.Func); innerCallee != nil {
			if _, ok := blessed[innerCallee]; ok {
				return
			}
		}
	}
	if s, ok := constString(pass.TypesInfo, arg); ok {
		if !codes[s] {
			sup.Reportf(arg.Pos(), "error code %q is not in the registered stable set; register it (analyzer -codes, server constants, DESIGN.md) before use", s)
		}
		return
	}
	sup.Reportf(arg.Pos(), "error code argument must be a registered constant or a blessed mapper call")
}

// checkMapperReturns verifies every constant string a blessed mapper
// returns is registered.
func checkMapperReturns(pass *analysis.Pass, sup *directive.Suppressor, fd *ast.FuncDecl, codes map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if s, ok := constString(pass.TypesInfo, res); ok && !codes[s] {
				sup.Reportf(res.Pos(), "error code %q is not in the registered stable set; register it (analyzer -codes, server constants, DESIGN.md) before use", s)
			}
		}
		return true
	})
}

// paramIndex returns the flat index of the named parameter in fd's
// signature, or -1.
func paramIndex(fd *ast.FuncDecl, name string) int {
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, n := range field.Names {
			if n.Name == name {
				return i
			}
			i++
		}
	}
	return -1
}

// isResponseWriter reports whether t's method set carries
// WriteHeader(int) — the structural signature of net/http's
// ResponseWriter and everything wrapping one.
func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "WriteHeader")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func returnsString(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if basic, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			return true
		}
	}
	return false
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	n, ok := constant.Int64Val(tv.Value)
	return n, ok
}

func splitSet(csv string) map[string]bool {
	set := make(map[string]bool)
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			set[s] = true
		}
	}
	return set
}
