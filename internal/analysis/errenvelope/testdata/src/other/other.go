// Package other sits outside errenvelope's package scope: raw writes
// are someone else's problem here.
package other

import "net/http"

func rawIsFine(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusBadRequest)
	w.WriteHeader(http.StatusInternalServerError)
}
