// Package json is a minimal encoding/json stand-in for errenvelope
// fixtures (matched by import path).
package json

import "io"

type Encoder struct{ w io.Writer }

func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

func (e *Encoder) Encode(v any) error { return nil }
