// Package http is a minimal net/http stand-in for errenvelope
// fixtures: the analyzer matches by import path and method shape, so
// the fixture does not need to compile the real net/http tree.
package http

type Header map[string][]string

type ResponseWriter interface {
	Header() Header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

func Error(w ResponseWriter, error string, code int) {}

const (
	StatusOK                  = 200
	StatusBadRequest          = 400
	StatusConflict            = 409
	StatusInternalServerError = 500
)
