// Package server exercises the errenvelope in-scope rules.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

// writeError is the unified envelope emitter.
//
//loclint:errenvelope
func writeError(w http.ResponseWriter, status int, code string, msg string) {
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: errorBody{Code: code, Message: msg}})
}

// codeFor maps error kinds to registered codes.
//
//loclint:errenvelope
func codeFor(kind int) string {
	if kind == 0 {
		return "bad_request"
	}
	return "internal"
}

// badMapper leaks an unregistered code from a blessed mapper.
//
//loclint:errenvelope
func badMapper(kind int) string {
	if kind == 1 {
		return "surprise" // want `error code "surprise" is not in the registered stable set`
	}
	return "internal"
}

func good(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, "bad_request", "nope")
}

func goodMapped(w http.ResponseWriter, kind int) {
	writeError(w, http.StatusInternalServerError, codeFor(kind), "boom")
}

func rawHTTPError(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http.Error bypasses the unified error envelope`
}

func adHocBody(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest)   // want `error status 400 written without the unified envelope`
	fmt.Fprintf(w, `{"error":%q}`, "nope") // want `fmt.Fprintf writes straight to the ResponseWriter`
}

func adHocJSON(w http.ResponseWriter) {
	json.NewEncoder(w).Encode(map[string]string{"error": "nope"}) // want `ad-hoc JSON encoded straight to the ResponseWriter`
}

func unregisteredCode(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, "nonsense_code", "nope") // want `error code "nonsense_code" is not in the registered stable set`
}

func nonConstantCode(w http.ResponseWriter, c string) {
	writeError(w, http.StatusBadRequest, c, "nope") // want `error code argument must be a registered constant or a blessed mapper call`
}

func okStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK) // good: success statuses carry no error body
}

// statusWriter mirrors the router middleware plumbing: a type that is
// itself a ResponseWriter relays statuses rather than emitting errors.
type statusWriter struct {
	w      http.ResponseWriter
	status int
}

func (sw *statusWriter) Header() http.Header         { return sw.w.Header() }
func (sw *statusWriter) Write(b []byte) (int, error) { return sw.w.Write(b) }
func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.w.WriteHeader(code)
}

func (sw *statusWriter) replay() {
	sw.w.WriteHeader(http.StatusInternalServerError) // good: plumbing is exempt
}
