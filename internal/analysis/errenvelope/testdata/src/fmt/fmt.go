// Package fmt is a minimal fmt stand-in for errenvelope fixtures
// (matched by import path).
package fmt

import "io"

func Fprintf(w io.Writer, format string, a ...any) (int, error) { return 0, nil }

func Fprintln(w io.Writer, a ...any) (int, error) { return 0, nil }
