package errenvelope_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/errenvelope"
)

func TestErrenvelope(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), errenvelope.Analyzer, "server", "other")
}
