// Package loclint aggregates the project's serving-path invariant
// analyzers into the suite cmd/loclint runs. Each analyzer encodes
// one rule the PRs established informally; see DESIGN.md "Enforced
// invariants" for the catalogue. The first five date from the PR-4
// suite (compiled read path, live ingestion); the second five enforce
// the fleet-serving invariants grown since — venue pinning, the
// unified error envelope, blessed unsafe decodes, goroutine lifetime,
// and mutex acquisition order.
package loclint

import (
	"golang.org/x/tools/go/analysis"

	"indoorloc/internal/analysis/errenvelope"
	"indoorloc/internal/analysis/genbump"
	"indoorloc/internal/analysis/goroutinelife"
	"indoorloc/internal/analysis/hotpathalloc"
	"indoorloc/internal/analysis/lockorder"
	"indoorloc/internal/analysis/nofloateq"
	"indoorloc/internal/analysis/pinbalance"
	"indoorloc/internal/analysis/snapshotonce"
	"indoorloc/internal/analysis/unsafebound"
	"indoorloc/internal/analysis/walerr"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		snapshotonce.Analyzer,
		genbump.Analyzer,
		hotpathalloc.Analyzer,
		walerr.Analyzer,
		nofloateq.Analyzer,
		pinbalance.Analyzer,
		errenvelope.Analyzer,
		unsafebound.Analyzer,
		goroutinelife.Analyzer,
		lockorder.Analyzer,
	}
}

// Names returns the registered analyzer names, the vocabulary
// //loclint:allow directives may reference.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}
