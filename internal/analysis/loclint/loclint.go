// Package loclint aggregates the project's serving-path invariant
// analyzers into the suite cmd/loclint runs. Each analyzer encodes
// one rule PRs 1–3 established informally; see DESIGN.md "Enforced
// invariants" for the catalogue.
package loclint

import (
	"golang.org/x/tools/go/analysis"

	"indoorloc/internal/analysis/genbump"
	"indoorloc/internal/analysis/hotpathalloc"
	"indoorloc/internal/analysis/nofloateq"
	"indoorloc/internal/analysis/snapshotonce"
	"indoorloc/internal/analysis/walerr"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		snapshotonce.Analyzer,
		genbump.Analyzer,
		hotpathalloc.Analyzer,
		walerr.Analyzer,
		nofloateq.Analyzer,
	}
}
