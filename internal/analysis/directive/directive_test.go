package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestHotpath(t *testing.T) {
	_, f := parse(t, `package p

// Fast is hot.
//
//loclint:hotpath
func Fast() {}

// Slow is not.
func Slow() {}

func Bare() {}
`)
	got := map[string]bool{}
	for _, d := range f.Decls {
		fd := d.(*ast.FuncDecl)
		got[fd.Name.Name] = Hotpath(fd)
	}
	want := map[string]bool{"Fast": true, "Slow": false, "Bare": false}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("Hotpath(%s) = %v, want %v", name, got[name], w)
		}
	}
}

func TestMmapdecode(t *testing.T) {
	_, f := parse(t, `package p

// decode reinterprets bytes.
//
//loclint:mmapdecode caller-checked: header validates bounds
func decode() {}

// plain has no blessing.
func plain() {}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	reason, ok := Mmapdecode(fd.Doc)
	if !ok || reason != "caller-checked: header validates bounds" {
		t.Errorf("Mmapdecode = %q, %v", reason, ok)
	}
	if _, ok := Mmapdecode(f.Decls[1].(*ast.FuncDecl).Doc); ok {
		t.Error("unblessed decl reported blessed")
	}
	if _, ok := Mmapdecode(nil); ok {
		t.Error("nil doc reported blessed")
	}
}

func TestErrenvelope(t *testing.T) {
	_, f := parse(t, `package p

//loclint:errenvelope
func writeError() {}

func other() {}
`)
	if !Errenvelope(f.Decls[0].(*ast.FuncDecl).Doc) {
		t.Error("blessed emitter not recognized")
	}
	if Errenvelope(f.Decls[1].(*ast.FuncDecl).Doc) {
		t.Error("unblessed function recognized")
	}
	if Errenvelope(nil) {
		t.Error("nil doc recognized")
	}
}

// TestSuppressor covers the three allow forms against a fake pass:
// bare (suppress everything), named-and-matching, named-but-other.
func TestSuppressor(t *testing.T) {
	fset, f := parse(t, `package p

func a() {} //loclint:allow
func b() {} //loclint:allow nofloateq
func c() {} //loclint:allow walerr — justified elsewhere
func d() {}
`)
	var reported []string
	pass := &analysis.Pass{
		Analyzer: &analysis.Analyzer{Name: "nofloateq"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d analysis.Diagnostic) { reported = append(reported, d.Message) },
	}
	s := NewSuppressor(pass)
	for _, d := range f.Decls {
		fd := d.(*ast.FuncDecl)
		s.Reportf(fd.Pos(), "diag at %s", fd.Name.Name)
	}
	// a: bare allow. b: allow names this analyzer. c: allow names a
	// different analyzer, so the report goes through. d: no directive.
	want := []string{"diag at c", "diag at d"}
	if strings.Join(reported, "|") != strings.Join(want, "|") {
		t.Errorf("reported %v, want %v", reported, want)
	}
}

func TestValidate(t *testing.T) {
	known := map[string]bool{"nofloateq": true, "walerr": true}
	cases := []struct {
		name string
		src  string
		want []string // substrings of expected problems, in order
	}{
		{"clean", `package p

//loclint:hotpath
func a() {} //loclint:allow nofloateq,walerr

//loclint:mmapdecode bounds checked by header
func b() {} //loclint:allow walerr — exact compare is the contract

func c() {} //loclint:allow nofloateq -- ascii separator too
`, nil},
		{"unknown directive", `package p
//loclint:hotpat
func a() {}
`, []string{`unknown loclint directive "hotpat"`}},
		{"hotpath with args", `package p
//loclint:hotpath really fast
func a() {}
`, []string{"takes no arguments"}},
		{"errenvelope with args", `package p
//loclint:errenvelope because
func a() {}
`, []string{"takes no arguments"}},
		{"mmapdecode without reason", `package p
//loclint:mmapdecode
func a() {}
`, []string{"requires a reason"}},
		{"allow unknown analyzer", `package p
func a() {} //loclint:allow nofloateqq
`, []string{`unknown analyzer "nofloateqq"`}},
		{"justification not treated as names", `package p
func a() {} //loclint:allow walerr — wal frames are best effort
`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, f := parse(t, tc.src)
			probs := Validate(f, known)
			if len(probs) != len(tc.want) {
				t.Fatalf("got %d problems %v, want %d", len(probs), probs, len(tc.want))
			}
			for i, p := range probs {
				if !p.Pos.IsValid() {
					t.Errorf("problem %d has no position", i)
				}
				if !strings.Contains(p.Msg, tc.want[i]) {
					t.Errorf("problem %d = %q, want substring %q", i, p.Msg, tc.want[i])
				}
			}
		})
	}
}

func TestInTestFile(t *testing.T) {
	fset := token.NewFileSet()
	tf := fset.AddFile("p_test.go", -1, 100)
	pf := fset.AddFile("p.go", -1, 100)
	if !InTestFile(fset, tf.Pos(1)) {
		t.Error("test file not recognized")
	}
	if InTestFile(fset, pf.Pos(1)) {
		t.Error("non-test file flagged")
	}
}
