// Package directive parses the loclint source directives shared by
// every analyzer in the suite:
//
//	//loclint:hotpath            (function doc) opt the function into
//	                             the hotpathalloc allocation rules
//	//loclint:allow              (end of line) suppress every loclint
//	                             diagnostic on that line
//	//loclint:allow name,name    suppress only the named analyzers
//
// Suppressions are deliberate, reviewable escapes: the comment sits on
// the flagged line, so the exemption and its justification travel with
// the code.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const (
	hotpathDirective = "//loclint:hotpath"
	allowDirective   = "//loclint:allow"
)

// Hotpath reports whether the function declaration carries the
// //loclint:hotpath annotation in its doc comment.
func Hotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// Suppressor indexes the //loclint:allow comments of a pass and
// filters reports through them.
type Suppressor struct {
	pass *analysis.Pass
	// allowed maps "file:line" to the analyzer names allowed there;
	// an empty list means all analyzers.
	allowed map[string][]string
}

// NewSuppressor scans every file of the pass for allow directives.
func NewSuppressor(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{pass: pass, allowed: make(map[string][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				var names []string
				for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					names = append(names, n)
				}
				p := pass.Fset.Position(c.Pos())
				s.allowed[key(p.Filename, p.Line)] = names
			}
		}
	}
	return s
}

func key(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// lines fit in a few digits; avoid strconv import noise
	b.WriteString(itoa(line))
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Suppressed reports whether a diagnostic at pos is silenced by an
// allow directive on the same line.
func (s *Suppressor) Suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	names, ok := s.allowed[key(p.Filename, p.Line)]
	if !ok {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == s.pass.Analyzer.Name {
			return true
		}
	}
	return false
}

// Reportf reports a diagnostic unless an allow directive on the line
// suppresses it.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...any) {
	if s.Suppressed(pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// InTestFile reports whether pos lands in a *_test.go file. The suite
// enforces serving-path invariants; tests deliberately break them
// (re-reading registries to assert swaps, comparing floats exactly in
// equivalence properties), so every analyzer skips test files.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
