// Package directive parses the loclint source directives shared by
// every analyzer in the suite:
//
//	//loclint:hotpath            (function doc) opt the function into
//	                             the hotpathalloc allocation rules
//	//loclint:allow              (end of line) suppress every loclint
//	                             diagnostic on that line
//	//loclint:allow name,name    suppress only the named analyzers
//	//loclint:mmapdecode reason  (decl doc) bless the declaration's
//	                             unsafe zero-copy casts for unsafebound;
//	                             the reason is mandatory
//	//loclint:errenvelope        (function doc) mark the function as a
//	                             unified error-envelope emitter that
//	                             errenvelope trusts to write error bodies
//
// An allow list may carry a trailing justification after an "—" or
// "--" separator: //loclint:allow nofloateq — exact compare is the
// contract. Suppressions are deliberate, reviewable escapes: the
// comment sits on the flagged line, so the exemption and its
// justification travel with the code. Validate machine-checks the
// grammar of every directive so a typoed name fails `make
// lint-fix-check` instead of silently not suppressing (or worse,
// silently blessing nothing).
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const (
	hotpathDirective     = "//loclint:hotpath"
	allowDirective       = "//loclint:allow"
	mmapdecodeDirective  = "//loclint:mmapdecode"
	errenvelopeDirective = "//loclint:errenvelope"
)

// Hotpath reports whether the function declaration carries the
// //loclint:hotpath annotation in its doc comment.
func Hotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// Suppressor indexes the //loclint:allow comments of a pass and
// filters reports through them.
type Suppressor struct {
	pass *analysis.Pass
	// allowed maps "file:line" to the analyzer names allowed there;
	// an empty list means all analyzers.
	allowed map[string][]string
}

// NewSuppressor scans every file of the pass for allow directives.
func NewSuppressor(pass *analysis.Pass) *Suppressor {
	s := &Suppressor{pass: pass, allowed: make(map[string][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				var names []string
				for _, n := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					names = append(names, n)
				}
				p := pass.Fset.Position(c.Pos())
				s.allowed[key(p.Filename, p.Line)] = names
			}
		}
	}
	return s
}

func key(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// lines fit in a few digits; avoid strconv import noise
	b.WriteString(itoa(line))
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Suppressed reports whether a diagnostic at pos is silenced by an
// allow directive on the same line.
func (s *Suppressor) Suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	names, ok := s.allowed[key(p.Filename, p.Line)]
	if !ok {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == s.pass.Analyzer.Name {
			return true
		}
	}
	return false
}

// Reportf reports a diagnostic unless an allow directive on the line
// suppresses it.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...any) {
	if s.Suppressed(pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// Mmapdecode reports whether the doc comment group carries the
// //loclint:mmapdecode directive and returns its reason text. The
// group form (rather than *ast.FuncDecl) lets package-level `var`
// blocks with unsafe initializers carry the blessing too.
func Mmapdecode(doc *ast.CommentGroup) (reason string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if rest, found := strings.CutPrefix(c.Text, mmapdecodeDirective); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// Errenvelope reports whether the doc comment group carries the
// //loclint:errenvelope directive marking a blessed error emitter.
func Errenvelope(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, errenvelopeDirective) {
			return true
		}
	}
	return false
}

// Problem is a grammar defect in a //loclint: directive.
type Problem struct {
	Pos token.Pos
	Msg string
}

// Validate scans a file's comments for //loclint: directives and
// returns every grammar problem: unknown directive words, allow lists
// naming unknown analyzers, and mmapdecode blessings with no reason.
// knownAnalyzers is the registered suite (loclint.All names).
func Validate(f *ast.File, knownAnalyzers map[string]bool) []Problem {
	var probs []Problem
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//loclint:")
			if !ok {
				continue
			}
			word, args, _ := strings.Cut(rest, " ")
			args = strings.TrimSpace(args)
			switch word {
			case "hotpath", "errenvelope":
				if args != "" {
					probs = append(probs, Problem{c.Pos(), "//loclint:" + word + " takes no arguments"})
				}
			case "mmapdecode":
				if args == "" {
					probs = append(probs, Problem{c.Pos(), "//loclint:mmapdecode requires a reason"})
				}
			case "allow":
				for _, n := range strings.FieldsFunc(args, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if n == "—" || n == "--" {
						break // justification text follows
					}
					if !knownAnalyzers[n] {
						probs = append(probs, Problem{c.Pos(), "//loclint:allow names unknown analyzer " + strconvQuote(n)})
					}
				}
			default:
				probs = append(probs, Problem{c.Pos(), "unknown loclint directive " + strconvQuote(word)})
			}
		}
	}
	return probs
}

// strconvQuote is a minimal %q without importing strconv/fmt into a
// package every analyzer links.
func strconvQuote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('"')
	return b.String()
}

// InTestFile reports whether pos lands in a *_test.go file. The suite
// enforces serving-path invariants; tests deliberately break them
// (re-reading registries to assert swaps, comparing floats exactly in
// equivalence properties), so every analyzer skips test files.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
