// Package a exercises the snapshotonce analyzer: the registry type is
// matched by name, so the fixture carries its own SnapshotRegistry.
package a

type Snapshot struct {
	Generation uint64
	Names      []string
}

type SnapshotRegistry struct{ cur *Snapshot }

func (r *SnapshotRegistry) Current() *Snapshot { return r.cur }
func (r *SnapshotRegistry) Load() *Snapshot    { return r.cur }

type Server struct{ reg *SnapshotRegistry }

// current is a single-return accessor: calls to it count as registry
// reads, and the wrapper itself is not flagged.
func (s *Server) current() *Snapshot { return s.reg.Current() }

// SnapshotAccessor wraps the wrapper; still a read at call sites.
func (s *Server) SnapshotAccessor() *Snapshot { return s.current() }

// Good: one read, answer derived entirely from it.
func (s *Server) handleGood() uint64 {
	snap := s.current()
	return snap.Generation + uint64(len(snap.Names))
}

// Bad: two direct reads can straddle a hot swap.
func (s *Server) handleTorn() uint64 {
	gen := s.reg.Current().Generation
	names := s.reg.Current().Names // want `reads the snapshot registry 2 times`
	return gen + uint64(len(names))
}

// Bad: mixing a wrapper read with a direct read is still two reads.
func (s *Server) handleMixed() int {
	snap := s.current()
	other := s.reg.Load() // want `reads the snapshot registry 2 times`
	return len(snap.Names) + len(other.Names)
}

// Bad: a wrapper-of-wrapper read plus a wrapper read.
func (s *Server) handleDeep() int {
	a := s.SnapshotAccessor()
	b := s.current() // want `reads the snapshot registry 2 times`
	return len(a.Names) + len(b.Names)
}

// Bad: any read inside a loop re-reads per iteration.
func (s *Server) handleLoop(names []string) int {
	n := 0
	for range names {
		n += len(s.current().Names) // want `snapshot registry read inside a loop`
	}
	return n
}

// Good: load once before the loop.
func (s *Server) handleLoopGood(names []string) int {
	snap := s.current()
	n := 0
	for range names {
		n += len(snap.Names)
	}
	return n
}

// Good: unrelated Current methods on other types are not reads.
type clock struct{}

func (clock) Current() int { return 0 }

func (s *Server) handleOtherCurrent() int {
	var c clock
	return c.Current() + c.Current()
}
