// Package snapshotonce enforces the serving consistency model from
// DESIGN.md: a function answers a request from ONE snapshot. It flags
// any function that reads the snapshot registry (SnapshotRegistry.
// Current or .Load, or a same-package accessor that just returns such
// a read) more than once, or inside a loop — both shapes can observe
// two different worlds and tear the ⟨estimate, name, room⟩ answer
// across a hot swap.
package snapshotonce

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/directive"
)

// Analyzer is the snapshotonce analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotonce",
	Doc: "flag functions that read the snapshot registry more than once per request\n\n" +
		"Handlers must load one core.SnapshotRegistry snapshot and answer entirely\n" +
		"from it; a second Current/Load call mid-request can observe a hot swap and\n" +
		"pair an estimate from one radio map with names from another.",
	Run: run,
}

const registryTypeName = "SnapshotRegistry"

func run(pass *analysis.Pass) (any, error) {
	sup := directive.NewSuppressor(pass)

	// isDirectRead reports whether call reads the registry directly.
	isDirectRead := func(call *ast.CallExpr) bool {
		fn := typeutil.Callee(pass.TypesInfo, call)
		f, ok := fn.(*types.Func)
		if !ok {
			return false
		}
		if f.Name() != "Current" && f.Name() != "Load" {
			return false
		}
		recv := f.Type().(*types.Signature).Recv()
		return recv != nil && namedTypeName(recv.Type()) == registryTypeName
	}

	// Accessor wrappers: same-package functions whose body is exactly
	// `return <registry read>` count as registry reads at their call
	// sites (e.g. Server.current, and wrappers over wrappers). Found by
	// fixpoint so chains resolve.
	wrappers := make(map[*types.Func]bool)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	isRead := func(call *ast.CallExpr) bool {
		if isDirectRead(call) {
			return true
		}
		f, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		return ok && wrappers[f]
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if wrappers[fn] || len(fd.Body.List) != 1 {
				continue
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok && isRead(call) {
				wrappers[fn] = true
				changed = true
			}
		}
	}

	for fn, fd := range decls {
		if wrappers[fn] || directive.InTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		var reads []*ast.CallExpr
		loopDepth := 0
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth++
				for _, child := range loopChildren(n) {
					ast.Inspect(child, walk)
				}
				loopDepth--
				return false
			case *ast.CallExpr:
				if isRead(n) {
					reads = append(reads, n)
					if loopDepth > 0 {
						sup.Reportf(n.Pos(), "snapshot registry read inside a loop: load one snapshot before the loop and answer from it")
					}
				}
			}
			return true
		}
		ast.Inspect(fd.Body, walk)
		if len(reads) > 1 {
			for _, call := range reads[1:] {
				sup.Reportf(call.Pos(), "function %s reads the snapshot registry %d times; load one snapshot per request and pass it down", fd.Name.Name, len(reads))
			}
		}
	}
	return nil, nil
}

// loopChildren returns the sub-nodes of a for/range statement.
func loopChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	add := func(c ast.Node) {
		// Typed nils arrive as non-nil ast.Node interfaces; filter by
		// the concrete check each caller does below.
		if c != nil {
			out = append(out, c)
		}
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			add(n.Init)
		}
		if n.Cond != nil {
			add(n.Cond)
		}
		if n.Post != nil {
			add(n.Post)
		}
		add(n.Body)
	case *ast.RangeStmt:
		add(n.X)
		add(n.Body)
	}
	return out
}

// namedTypeName returns the name of t's named type, looking through
// pointers and aliases; "" when t has none.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
