package snapshotonce_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/snapshotonce"
)

func TestSnapshotOnce(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), snapshotonce.Analyzer, "a")
}
