// Package callwalk is the shared cross-function layer of the loclint
// suite. The PR-4 analyzers were all intraprocedural; the invariants
// grown since (pin/unpin balance, goroutine stop signals, mutex
// acquisition order) only hold across call chains, so pinbalance,
// goroutinelife and lockorder all need the same three ingredients this
// package provides:
//
//   - Decls: the package's function objects mapped to their bodies
//   - Callees: the statically resolvable calls inside any subtree
//   - Transitive: a bottom-up fixpoint that folds a per-function local
//     summary over the same-package call graph, with an escape hatch
//     for functions declared elsewhere (imported facts)
//
// Summaries are string sets — general enough for "which mutexes may
// this call chain acquire" and "does this call chain ever receive a
// stop signal" alike — and the fixpoint is deliberately conservative:
// dynamic calls (interface methods, function values) contribute
// nothing, so analyzers built on it must treat absence of evidence
// as the suspicious case only where the issue rules say so.
package callwalk

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Decls maps every function and method declared in the pass's package
// (with a body) to its declaration.
func Decls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// Callees returns every statically resolvable function called within
// n, in source order, duplicates included. Calls through function
// values and interface methods resolve to nothing and are skipped.
func Callees(info *types.Info, n ast.Node) []*types.Func {
	var out []*types.Func
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := typeutil.Callee(info, call).(*types.Func); ok {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// Set is a summary: a set of opaque evidence strings.
type Set map[string]bool

// Merge folds src into dst and reports whether dst grew.
func (dst Set) Merge(src Set) bool {
	grew := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			grew = true
		}
	}
	return grew
}

// Transitive computes, for every declared function, the union of its
// local summary and the summaries of everything it (transitively)
// calls. seed supplies the local contribution of one declaration;
// external supplies the contribution of a callee declared outside the
// package (typically an imported object fact) and may be nil. The
// fixpoint resolves same-package cycles (mutual recursion) without
// divergence because summaries only grow.
func Transitive(
	info *types.Info,
	decls map[*types.Func]*ast.FuncDecl,
	seed func(*types.Func, *ast.FuncDecl) Set,
	external func(*types.Func) Set,
) map[*types.Func]Set {
	result := make(map[*types.Func]Set, len(decls))
	callees := make(map[*types.Func][]*types.Func, len(decls))
	for fn, fd := range decls {
		s := Set{}
		s.Merge(seed(fn, fd))
		result[fn] = s
		callees[fn] = Callees(info, fd.Body)
	}
	extCache := make(map[*types.Func]Set)
	ext := func(fn *types.Func) Set {
		if external == nil {
			return nil
		}
		if s, ok := extCache[fn]; ok {
			return s
		}
		s := external(fn)
		extCache[fn] = s
		return s
	}
	for changed := true; changed; {
		changed = false
		for fn := range decls {
			for _, callee := range callees[fn] {
				var src Set
				if _, local := decls[callee]; local {
					src = result[callee]
				} else {
					src = ext(callee)
				}
				if result[fn].Merge(src) {
					changed = true
				}
			}
		}
	}
	return result
}

// ReceiverNamed returns the named type behind fn's receiver, looking
// through pointers; nil for plain functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return Named(sig.Recv().Type())
}

// Named returns the named type behind t, looking through pointers and
// aliases; nil when t has none.
func Named(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}
