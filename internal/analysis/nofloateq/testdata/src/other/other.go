// Package other is outside the nofloateq scope: exact float equality
// is not flagged here.
package other

func Same(a, b float64) bool { return a == b }
