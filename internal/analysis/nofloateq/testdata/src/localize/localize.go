// Package localize exercises the nofloateq analyzer; the package name
// puts it in the analyzer's default scope.
package localize

const tol = 1e-9

func abs(x float64) bool { return x < 0 }

func eq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func normalize(ps []float64) {
	sum := 0.0
	for _, p := range ps {
		sum += p
	}
	if sum == 0 { // want `floating-point == comparison`
		return
	}
	for i := range ps {
		ps[i] /= sum
	}
}

func compare(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func compareF32(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

// good: epsilon comparison, ordering operators are fine.
func compareEps(a, b float64) bool {
	return eq(a, b) || a < b
}

// good: integer equality is out of scope.
func compareInt(a, b int) bool {
	return a == b
}

// good: both operands constant — decided at compile time.
func constFold() bool {
	return 1.5 == 3.0/2.0
}

// good: a deliberate exact comparison carries an allow directive.
func exactSentinel(x float64) bool {
	return x == 0 //loclint:allow nofloateq
}
