// Package nofloateq forbids ==/!= on floating-point operands in the
// numeric serving packages (internal/localize, internal/stats,
// internal/rf by default). Exact float equality silently stops
// holding after any rounding — a posterior normalized twice, a score
// recomputed in a different association order — so those packages
// compare through the epsilon helpers in internal/feq instead.
// Comparisons where both operands are compile-time constants are
// exempt; deliberate exact comparisons carry //loclint:allow.
package nofloateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"indoorloc/internal/analysis/directive"
)

// Analyzer is the nofloateq analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nofloateq",
	Doc: "forbid ==/!= on floating-point operands in the numeric serving packages\n\n" +
		"Exact float equality breaks under rounding; use internal/feq's epsilon\n" +
		"helpers (feq.Eq, feq.Zero) instead.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packages = "localize,stats,rf"

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", packages,
		"comma-separated package names the float-equality ban applies to")
}

func run(pass *analysis.Pass) (any, error) {
	applies := false
	for _, p := range strings.Split(packages, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Name() {
			applies = true
			break
		}
	}
	if !applies {
		return nil, nil
	}
	sup := directive.NewSuppressor(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		if directive.InTestFile(pass.Fset, be.Pos()) {
			return
		}
		xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return
		}
		if xt.Value != nil && yt.Value != nil {
			return // constant fold: decided at compile time, rounding-free
		}
		sup.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon helper (feq.Eq/feq.Zero) or annotate the deliberate exact compare with //loclint:allow", be.Op)
	})
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
