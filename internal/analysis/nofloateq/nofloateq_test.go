package nofloateq_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/nofloateq"
)

func TestNoFloatEq(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), nofloateq.Analyzer, "localize", "other")
}
