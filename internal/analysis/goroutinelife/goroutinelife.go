// Package goroutinelife enforces shutdown discipline in the
// long-lived subsystems (repl, ingest, venue): a goroutine those
// packages start must take a stop signal — a context, a done channel,
// or a closed-channel select — or the follower/compactor it runs
// leaks across Close and fails the -race soak on shutdown.
//
// The check is calibrated to flag only goroutines that can actually
// outlive their owner: the spawned body (transitively, over the
// same-package call graph plus imported facts) must contain a loop.
// Bounded one-shot goroutines (publish a result, fire a callback) are
// fine without a signal. Stop-signal evidence is any channel receive,
// a select with a receive clause (which covers <-ctx.Done()), or a
// range over a channel (close(ch) ends it). Evidence resolution is
// conservative: calls through function values or interfaces
// contribute nothing, so a loop driven by an opaque callback needs
// its receive at the spawn site.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/callwalk"
	"indoorloc/internal/analysis/directive"
)

// LifeFact summarizes a function for cross-package callers: whether
// its transitive body loops and whether it receives a stop signal.
type LifeFact struct {
	Signal bool
	Loop   bool
}

func (*LifeFact) AFact() {}

func (f *LifeFact) String() string {
	switch {
	case f.Signal && f.Loop:
		return "loops+signal"
	case f.Loop:
		return "loops"
	case f.Signal:
		return "signal"
	}
	return "bounded"
}

// Analyzer is the goroutinelife analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc: "require a stop signal (context, done channel, closed-channel select) for looping goroutines in long-lived subsystems\n\n" +
		"A follower or compactor loop without a stop signal leaks across Close\n" +
		"and keeps serving a dead registry.",
	Run:       run,
	FactTypes: []analysis.Fact{(*LifeFact)(nil)},
}

var scopedPkgs = "repl,ingest,venue"

func init() {
	Analyzer.Flags.StringVar(&scopedPkgs, "pkgs", scopedPkgs,
		"comma-separated package names whose goroutines must take a stop signal")
}

const (
	evSignal = "signal"
	evLoop   = "loop"
)

func run(pass *analysis.Pass) (any, error) {
	decls := callwalk.Decls(pass)
	summaries := callwalk.Transitive(pass.TypesInfo, decls,
		func(_ *types.Func, fd *ast.FuncDecl) callwalk.Set { return localEvidence(pass.TypesInfo, fd.Body) },
		func(fn *types.Func) callwalk.Set {
			var lf LifeFact
			if !pass.ImportObjectFact(fn, &lf) {
				return nil
			}
			s := callwalk.Set{}
			if lf.Signal {
				s[evSignal] = true
			}
			if lf.Loop {
				s[evLoop] = true
			}
			return s
		})
	// Export summaries even when this package is out of scope: a
	// scoped package may spawn goroutines running our functions.
	for fn, s := range summaries {
		if s[evSignal] || s[evLoop] {
			pass.ExportObjectFact(fn, &LifeFact{Signal: s[evSignal], Loop: s[evLoop]})
		}
	}
	scoped := false
	for _, name := range strings.Split(scopedPkgs, ",") {
		if strings.TrimSpace(name) == pass.Pkg.Name() {
			scoped = true
		}
	}
	if !scoped {
		return nil, nil
	}
	sup := directive.NewSuppressor(pass)
	for _, fd := range decls {
		if directive.InTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ev := spawnEvidence(pass, decls, summaries, g.Call)
			if ev[evLoop] && !ev[evSignal] {
				sup.Reportf(g.Pos(), "goroutine loops without a stop signal; take a context, done channel, or closed-channel select so shutdown can reach it")
			}
			return true
		})
	}
	return nil, nil
}

// spawnEvidence computes the evidence set of one go statement: the
// spawned closure's own body plus everything the spawn (or closure)
// statically calls.
func spawnEvidence(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, summaries map[*types.Func]callwalk.Set, call *ast.CallExpr) callwalk.Set {
	ev := callwalk.Set{}
	resolve := func(fn *types.Func) {
		if s, ok := summaries[fn]; ok {
			ev.Merge(s)
			return
		}
		var lf LifeFact
		if pass.ImportObjectFact(fn, &lf) {
			if lf.Signal {
				ev[evSignal] = true
			}
			if lf.Loop {
				ev[evLoop] = true
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ev.Merge(localEvidence(pass.TypesInfo, lit.Body))
		for _, callee := range callwalk.Callees(pass.TypesInfo, lit.Body) {
			resolve(callee)
		}
		return ev
	}
	if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok {
		resolve(fn)
	}
	return ev
}

// localEvidence scans one body for direct loop and stop-signal
// evidence.
func localEvidence(info *types.Info, body ast.Node) callwalk.Set {
	ev := callwalk.Set{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			ev[evLoop] = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					// close(ch) ends the range: loop AND signal.
					ev[evSignal] = true
				}
			}
			ev[evLoop] = true
		case *ast.UnaryExpr:
			// A unary <- is a channel receive wherever it appears:
			// bare, in an assignment, or as a select receive clause
			// (which is how <-ctx.Done() shows up).
			if n.Op == token.ARROW {
				ev[evSignal] = true
			}
		}
		return true
	})
	return ev
}
