package goroutinelife_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/goroutinelife"
)

func TestGoroutinelife(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), goroutinelife.Analyzer, "repl", "other")
}
