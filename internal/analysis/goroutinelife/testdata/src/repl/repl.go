// Package repl exercises goroutinelife inside a scoped package name.
package repl

type Follower struct {
	stop chan struct{}
}

func (f *Follower) run() {
	for {
		select {
		case <-f.stop:
			return
		default:
		}
	}
}

func (f *Follower) Start() {
	go f.run() // good: run selects on the stop channel
}

func leakyLoop() {
	for {
		work()
	}
}

func work() {}

func (f *Follower) StartLeaky() {
	go leakyLoop() // want `goroutine loops without a stop signal`
}

func (f *Follower) StartLeakyLit() {
	go func() { // want `goroutine loops without a stop signal`
		for {
			work()
		}
	}()
}

func (f *Follower) StartBounded() {
	go work() // good: one-shot body, nothing to stop
}

func (f *Follower) StartBoundedLit(done chan struct{}) {
	go func() { close(done) }() // good: bounded
}

func (f *Follower) Drain(ch chan int) {
	go func() { // good: close(ch) ends the range
		for range ch {
		}
	}()
}

// helper receives transitively; spawning it is fine.
func (f *Follower) helper() {
	for {
		if f.wait() {
			return
		}
	}
}

func (f *Follower) wait() bool {
	<-f.stop
	return true
}

func (f *Follower) StartIndirect() {
	go f.helper() // good: helper's callee receives the stop signal
}
