// Package other is outside goroutinelife's subsystem scope; its
// goroutines are short-lived request work and not checked.
package other

func spin() {
	for {
	}
}

func Start() {
	go spin()
}
