// Package pinbalance enforces the venue pin discipline introduced
// with the refcounted multi-venue registry: a venue handed out by
// Registry.Acquire is pinned (refcounted) and its compiled map stays
// mapped only while the pin is held. Three rules follow:
//
//  1. Balance: every Acquire must be paired with a Release on every
//     path out of the function — a defer, an explicit Release/unref
//     before each return, or transferring the pin to the caller by
//     returning the venue (the function is then recorded as a
//     "pinned returner" fact and its call sites inherit the same
//     obligation). Early returns inside the acquire's own error/ok
//     guard are exempt: no pin exists on those paths.
//  2. Containment: a pinned venue must not escape the request scope —
//     no stores into fields, maps or slices, no channel sends, no
//     capture by a spawned goroutine. A pin that outlives its
//     function body defeats the whole point of refcounted eviction.
//  3. No unpinned use: calling venue methods on a value recovered
//     from a type assertion (the raw sync.Map payload) without a
//     tryRef pin races with eviction — the venue may be finalized
//     and its artifact munmapped mid-read. The pin machinery itself
//     (Release, unref, tryRef) is exempt.
//
// The pinned type is recognized structurally — a named type with both
// a Release and a tryRef method — so the fixtures need no venue
// import and any future registry with the same shape is covered.
// Cross-function reasoning (rule 1's transfer case) runs on
// callwalk.Decls with a same-package fixpoint plus exported
// PinnedReturner facts for cross-package call sites.
package pinbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/callwalk"
	"indoorloc/internal/analysis/directive"
)

// PinnedReturner marks a function that transfers a pinned venue to
// its caller: the caller owns the Release obligation.
type PinnedReturner struct{}

func (*PinnedReturner) AFact()         {}
func (*PinnedReturner) String() string { return "pinnedReturner" }

// Analyzer is the pinbalance analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "pinbalance",
	Doc: "enforce Release on every path after venue Acquire, no pin escapes, no unpinned venue use\n\n" +
		"A pinned venue keeps its compiled map mapped; a leaked pin defeats eviction\n" +
		"and an unpinned read races with finalize/munmap.",
	Run:       run,
	FactTypes: []analysis.Fact{(*PinnedReturner)(nil)},
}

// machinery methods manage the refcount itself and are callable
// without holding a pin.
var machinery = map[string]bool{"Release": true, "unref": true, "tryRef": true}

func run(pass *analysis.Pass) (any, error) {
	sup := directive.NewSuppressor(pass)
	decls := callwalk.Decls(pass)

	// Same-package fixpoint: a function returning a pin it acquired is
	// itself an acquire source for its callers, which may in turn
	// return it, and so on (resolveVenue → handler chains).
	returners := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if returners[fn] {
				continue
			}
			if fnReturnsPin(pass, fd, returners) {
				returners[fn] = true
				changed = true
			}
		}
	}
	for fn := range returners {
		pass.ExportObjectFact(fn, &PinnedReturner{})
	}

	for fn, fd := range decls {
		if directive.InTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		checkBalance(pass, sup, fd, fn, returners)
		checkUnpinnedUse(pass, sup, fd)
	}
	return nil, nil
}

// isPinnedType reports whether n is a pin-managed venue type: it owns
// both Release and tryRef.
func isPinnedType(n *types.Named) bool {
	if n == nil {
		return false
	}
	var release, tryRef bool
	for i := 0; i < n.NumMethods(); i++ {
		switch n.Method(i).Name() {
		case "Release":
			release = true
		case "tryRef":
			tryRef = true
		}
	}
	return release && tryRef
}

// isAcquireCallee reports whether calling fn yields a fresh pin the
// caller must release: the registry Acquire method, or a function
// known (same-package fixpoint or imported fact) to transfer one.
func isAcquireCallee(pass *analysis.Pass, fn *types.Func, returners map[*types.Func]bool) bool {
	if fn == nil {
		return false
	}
	if returners[fn] {
		return true
	}
	var pr PinnedReturner
	if pass.ImportObjectFact(fn, &pr) {
		return true
	}
	if fn.Name() != "Acquire" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isPinnedType(callwalk.Named(sig.Results().At(0).Type()))
}

// acquireSite is one pin-producing call and how its result is bound.
type acquireSite struct {
	call   *ast.CallExpr
	callee *types.Func
	assign *ast.AssignStmt // nil when the result is dropped or returned directly
	v      types.Object    // the pinned variable; nil when dropped
	guards []types.Object  // companion results (err/ok) whose checks exempt early returns
}

// collectAcquires finds the acquire calls in fd and classifies each
// binding. Calls whose result feeds straight into a return statement
// are pin transfers and carry no local obligation.
func collectAcquires(pass *analysis.Pass, fd *ast.FuncDecl, returners map[*types.Func]bool) []acquireSite {
	info := pass.TypesInfo
	var sites []acquireSite
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := typeutil.Callee(info, call).(*types.Func)
		if !isAcquireCallee(pass, callee, returners) {
			return true
		}
		site := acquireSite{call: call, callee: callee}
		// Classify by the nearest enclosing statement.
		for i := len(stack) - 2; i >= 0; i-- {
			switch parent := stack[i].(type) {
			case *ast.ReturnStmt:
				return true // direct transfer: caller owns the pin
			case *ast.AssignStmt:
				site.assign = parent
				if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) {
					for j, lhs := range parent.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := info.ObjectOf(id)
						if j == 0 {
							if id.Name != "_" {
								site.v = obj
							}
						} else if obj != nil {
							site.guards = append(site.guards, obj)
						}
					}
				}
				sites = append(sites, site)
				return true
			case ast.Stmt:
				_ = parent
				sites = append(sites, site) // dropped result (ExprStmt etc.)
				return true
			}
		}
		sites = append(sites, site)
		return true
	}
	ast.Inspect(fd.Body, walk)
	return sites
}

// fnReturnsPin reports whether fd returns a variable bound from an
// acquire call (a pin transfer).
func fnReturnsPin(pass *analysis.Pass, fd *ast.FuncDecl, returners map[*types.Func]bool) bool {
	if directive.InTestFile(pass.Fset, fd.Pos()) {
		return false
	}
	info := pass.TypesInfo
	pinned := make(map[types.Object]bool)
	direct := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				callee, _ := typeutil.Callee(info, call).(*types.Func)
				if isAcquireCallee(pass, callee, returners) {
					direct = true
				}
			}
		}
		return true
	})
	if direct {
		return true
	}
	for _, site := range collectAcquires(pass, fd, returners) {
		if site.v != nil {
			pinned[site.v] = true
		}
	}
	if len(pinned) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && pinned[info.ObjectOf(id)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkBalance applies rules 1 and 2 to every acquire site in fd.
func checkBalance(pass *analysis.Pass, sup *directive.Suppressor, fd *ast.FuncDecl, fn *types.Func, returners map[*types.Func]bool) {
	info := pass.TypesInfo
	sites := collectAcquires(pass, fd, returners)
	if len(sites) == 0 {
		return
	}
	var g *cfg.CFG
	for _, site := range sites {
		name := "Acquire"
		if site.callee != nil {
			name = site.callee.Name()
		}
		if site.v == nil {
			sup.Reportf(site.call.Pos(), "result of %s is dropped; the pin is never released", name)
			continue
		}
		if esc, kind := escapeOf(info, fd, site.v); esc != nil {
			sup.Reportf(esc.Pos(), "pinned venue %s escapes the request scope (%s); the pin can outlive the request and block eviction", site.v.Name(), kind)
			continue
		}
		if hasDeferredRelease(info, fd, site.v) {
			continue
		}
		if g == nil {
			g = cfg.New(fd.Body, func(*ast.CallExpr) bool { return true })
		}
		if leaksOnSomePath(info, g, fd, site) {
			sup.Reportf(site.call.Pos(), "%s acquired from %s is not released on every path; add defer %s.Release() or release before each return",
				site.v.Name(), name, site.v.Name())
		}
	}
}

// escapeOf scans for a store of v beyond the request scope and
// returns the offending node and a label for the escape kind.
func escapeOf(info *types.Info, fd *ast.FuncDecl, v types.Object) (ast.Node, string) {
	var node ast.Node
	var kind string
	mentionsV := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if node != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !mentionsV(rhs) {
					continue
				}
				lhs := n.Lhs[0]
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				if _, isIdent := lhs.(*ast.Ident); !isIdent {
					node, kind = n, "stored outside the stack frame"
				}
			}
		case *ast.SendStmt:
			if mentionsV(n.Value) {
				node, kind = n, "sent on a channel"
			}
		case *ast.GoStmt:
			if mentionsV(n.Call.Fun) || anyMentions(n.Call.Args, mentionsV) {
				node, kind = n, "captured by a goroutine"
			}
		}
		return node == nil
	})
	return node, kind
}

func anyMentions(exprs []ast.Expr, pred func(ast.Expr) bool) bool {
	for _, e := range exprs {
		if pred(e) {
			return true
		}
	}
	return false
}

// hasDeferredRelease reports whether some defer in fd releases v —
// directly (defer v.Release()) or inside a deferred closure. A defer
// covers every subsequent path, and the paths before it are the
// acquire guard, which rule 1 exempts separately.
func hasDeferredRelease(info *types.Info, fd *ast.FuncDecl, v types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if releasesV(info, d.Call, v) {
			found = true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok && releasesV(info, call, v) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// releasesV reports whether call is v.Release() or v.unref().
func releasesV(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Release" && sel.Sel.Name != "unref") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.ObjectOf(id) == v
}

// leaksOnSomePath walks the CFG from the acquire site and reports
// whether some path reaches an exit without releasing v, returning v
// (a transfer), or returning from inside the acquire's err/ok guard.
func leaksOnSomePath(info *types.Info, g *cfg.CFG, fd *ast.FuncDecl, site acquireSite) bool {
	exempt := guardRanges(info, fd, site)
	contains := func(n, target ast.Node) bool {
		return n.Pos() <= target.Pos() && target.End() <= n.End()
	}
	// Evidence that the path is settled at node n.
	settled := func(n ast.Node) bool {
		ok := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok2 := c.(*ast.CallExpr); ok2 && releasesV(info, call, site.v) {
				ok = true
			}
			return !ok
		})
		if ok {
			return true
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return false
		}
		for _, res := range ret.Results {
			if id, ok2 := ast.Unparen(res).(*ast.Ident); ok2 && info.ObjectOf(id) == site.v {
				return true // pin transferred to caller
			}
		}
		for _, r := range exempt {
			if ret.Pos() != token.NoPos && r.lo <= ret.Pos() && ret.End() <= r.hi {
				return true // guard-path return: the pin never existed here
			}
		}
		return false
	}
	// Locate the acquire in the CFG.
	anchor := ast.Node(site.call)
	if site.assign != nil {
		anchor = site.assign
	}
	var home *cfg.Block
	homeIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == anchor || contains(n, anchor) {
				home, homeIdx = b, i
				break
			}
		}
		if home != nil {
			break
		}
	}
	if home == nil {
		return false // unreachable code
	}
	for _, n := range home.Nodes[homeIdx+1:] {
		if settled(n) {
			return false
		}
	}
	seen := map[*cfg.Block]bool{}
	var escapes func(b *cfg.Block) bool
	escapes = func(b *cfg.Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if settled(n) {
				return false
			}
		}
		if len(b.Succs) == 0 {
			return b.Live
		}
		for _, s := range b.Succs {
			if escapes(s) {
				return true
			}
		}
		return false
	}
	if len(home.Succs) == 0 {
		return true // acquire in a returning block with nothing after it
	}
	for _, s := range home.Succs {
		if escapes(s) {
			return true
		}
	}
	return false
}

type posRange struct{ lo, hi token.Pos }

// guardRanges returns the body spans of if statements testing the
// acquire's companion results (err/ok) or the pin against nil:
// returns inside them run before a pin exists.
func guardRanges(info *types.Info, fd *ast.FuncDecl, site acquireSite) []posRange {
	guarded := make(map[types.Object]bool, len(site.guards)+1)
	for _, g := range site.guards {
		guarded[g] = true
	}
	guarded[site.v] = true
	var out []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() < site.call.Pos() {
			return true
		}
		mentions := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && guarded[info.ObjectOf(id)] {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			out = append(out, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// checkUnpinnedUse applies rule 3: venue methods invoked on a value
// bound from a type assertion need a tryRef pin first.
func checkUnpinnedUse(pass *analysis.Pass, sup *directive.Suppressor, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || machinery[sel.Sel.Name] {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		tv, ok := info.Types[sel.X]
		if !ok || !isPinnedType(callwalk.Named(tv.Type)) {
			return true
		}
		if _, isMethod := info.Selections[sel]; !isMethod {
			return true // field access through the selector chain
		}
		obj := info.ObjectOf(recv)
		if obj == nil || !boundFromTypeAssertion(info, fd, obj) {
			return true
		}
		if tryRefBefore(info, fd, obj, call.Pos()) {
			return true
		}
		sup.Reportf(call.Pos(), "%s.%s called on a venue recovered by type assertion without a tryRef pin; it may be finalized (unmapped) concurrently", recv.Name, sel.Sel.Name)
		return true
	})
}

// boundFromTypeAssertion reports whether obj's defining assignment
// draws from a type assertion (the raw registry map payload).
func boundFromTypeAssertion(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || info.ObjectOf(id) != obj {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if _, isAssert := ast.Unparen(rhs).(*ast.TypeAssertExpr); isAssert {
				found = true
			}
		}
		return !found
	})
	return found
}

// tryRefBefore reports whether obj.tryRef() is called before pos.
func tryRefBefore(info *types.Info, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "tryRef" {
			return !found
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
