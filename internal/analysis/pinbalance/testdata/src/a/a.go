// Package a exercises the pinbalance analyzer.
package a

// Venue is matched structurally, mirroring venue.Venue: a named type
// with both Release and tryRef is pin-managed.
type Venue struct{ refs int }

func (v *Venue) Release()      {}
func (v *Venue) unref()        {}
func (v *Venue) tryRef() bool  { return true }
func (v *Venue) Snapshot() int { return 0 }
func (v *Venue) touch()        {}

type Registry struct{ m map[string]any }

func (r *Registry) Acquire(id string) (*Venue, error) { return nil, nil }

func deferRelease(r *Registry) int {
	v, err := r.Acquire("a")
	if err != nil {
		return 0
	}
	defer v.Release()
	return v.Snapshot()
}

func deferClosureRelease(r *Registry) int {
	v, err := r.Acquire("a")
	if err != nil {
		return 0
	}
	defer func() {
		v.Release()
	}()
	return v.Snapshot()
}

func allPathsRelease(r *Registry, x bool) int {
	v, err := r.Acquire("a")
	if err != nil {
		return 0
	}
	if x {
		n := v.Snapshot()
		v.Release()
		return n
	}
	v.Release()
	return 1
}

func missingOnBranch(r *Registry, x bool) int {
	v, err := r.Acquire("a") // want `v acquired from Acquire is not released on every path`
	if err != nil {
		return 0
	}
	if x {
		return v.Snapshot()
	}
	v.Release()
	return 1
}

func fallsOffEnd(r *Registry) {
	v, _ := r.Acquire("a") // want `v acquired from Acquire is not released on every path`
	v.touch()
}

func droppedResult(r *Registry) {
	r.Acquire("a") // want `result of Acquire is dropped`
}

func blankResult(r *Registry) {
	_, err := r.Acquire("a") // want `result of Acquire is dropped`
	_ = err
}

type holder struct{ v *Venue }

func escapesToField(r *Registry, h *holder) {
	v, _ := r.Acquire("a")
	h.v = v // want `pinned venue v escapes the request scope \(stored outside the stack frame\)`
}

func escapesToChannel(r *Registry, ch chan *Venue) {
	v, _ := r.Acquire("a")
	ch <- v // want `pinned venue v escapes the request scope \(sent on a channel\)`
}

func escapesToGoroutine(r *Registry) {
	v, _ := r.Acquire("a")
	go func(x *Venue) { x.Release() }(v) // want `pinned venue v escapes the request scope \(captured by a goroutine\)`
}

// resolve transfers the pin to its caller (PinnedReturner): its call
// sites inherit the release obligation.
func resolve(r *Registry, id string) (*Venue, bool) {
	v, err := r.Acquire(id)
	if err != nil {
		return nil, false
	}
	return v, true
}

// directTransfer hands the acquire result straight through.
func directTransfer(r *Registry, id string) (*Venue, error) {
	return r.Acquire(id)
}

func callerBalanced(r *Registry) int {
	v, ok := resolve(r, "a")
	if !ok {
		return 0
	}
	defer v.Release()
	return v.Snapshot()
}

func callerLeaks(r *Registry) int {
	v, ok := resolve(r, "a") // want `v acquired from resolve is not released on every path`
	if !ok {
		return 0
	}
	return v.Snapshot()
}

func transferCallerLeaks(r *Registry) int {
	v, err := directTransfer(r, "a") // want `v acquired from directTransfer is not released on every path`
	if err != nil {
		return 0
	}
	return v.Snapshot()
}

func unpinnedUse(m map[string]any) int {
	raw := m["a"]
	lv := raw.(*Venue)
	return lv.Snapshot() // want `lv.Snapshot called on a venue recovered by type assertion without a tryRef pin`
}

func pinnedUse(m map[string]any) int {
	raw := m["a"]
	lv := raw.(*Venue)
	if !lv.tryRef() {
		return 0
	}
	defer lv.unref()
	return lv.Snapshot()
}

func machineryOnly(m map[string]any) {
	lv := m["a"].(*Venue)
	lv.unref()
}
