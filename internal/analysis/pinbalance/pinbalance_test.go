package pinbalance_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/pinbalance"
)

func TestPinbalance(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), pinbalance.Analyzer, "a")
}
