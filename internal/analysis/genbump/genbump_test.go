package genbump_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/genbump"
)

func TestGenBump(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), genbump.Analyzer, "a")
}
