// Package genbump enforces the trainingdb staleness contract: every
// exported DB method that mutates the radio-map state (the Entries
// map, the BSSIDs universe, or anything reachable from them — entry
// stat structs, sample slices) must call bumpGeneration() on every
// path that performed a mutation before returning. Compiled views
// detect staleness by comparing generations; a mutation that skips the
// bump makes a stale view look fresh and silently serves matrices
// compiled from an older entry set.
//
// The check is path-sensitive: an early `return err` before any
// mutation is fine, but a path that mutates and then reaches a return
// without passing a bumpGeneration() call is flagged. Mutations
// through receiver-derived aliases count (`for _, e := range
// db.Entries { delete(e.PerAP, ...) }` mutates db).
package genbump

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"indoorloc/internal/analysis/directive"
)

// Analyzer is the genbump analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "genbump",
	Doc: "flag exported DB methods that mutate tracked state without bumping the generation on every return path\n\n" +
		"The generation counter is how compiled radio-map views detect staleness;\n" +
		"a mutator that returns without bumpGeneration() lets stale matrices serve.",
	Run: run,
}

var trackedFields = "Entries,BSSIDs"

func init() {
	Analyzer.Flags.StringVar(&trackedFields, "fields", trackedFields,
		"comma-separated receiver fields whose mutation requires a generation bump")
}

const bumpName = "bumpGeneration"

func run(pass *analysis.Pass) (any, error) {
	// The analyzer applies to any type that owns a bumpGeneration
	// method (in the repo: trainingdb.DB). Packages without one are
	// skipped outright.
	var target *types.Named
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == bumpName {
				target = named
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		return nil, nil
	}
	tracked := make(map[string]bool)
	for _, f := range strings.Split(trackedFields, ",") {
		if f = strings.TrimSpace(f); f != "" {
			tracked[f] = true
		}
	}
	sup := directive.NewSuppressor(pass)
	mutators := receiverMutators(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			if directive.InTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			recv := receiverOf(pass, fd)
			if recv == nil || namedOf(recv.Type()) != target {
				continue
			}
			checkMethod(pass, sup, fd, recv, tracked, mutators)
		}
	}
	return nil, nil
}

// receiverMutators summarizes, for every method declared in the
// package, whether its body writes through its receiver (directly, or
// by calling another receiver-mutating method on it). Read-only
// pointer-receiver methods like Entry.MeanVector then do not count as
// mutations at their call sites; methods from other packages stay
// conservatively "mutating".
func receiverMutators(pass *analysis.Pass) map[*types.Func]bool {
	info := pass.TypesInfo
	type methodDecl struct {
		fd   *ast.FuncDecl
		recv *types.Var
	}
	decls := make(map[*types.Func]methodDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			recv := receiverOf(pass, fd)
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || recv == nil {
				continue
			}
			decls[fn] = methodDecl{fd: fd, recv: recv}
		}
	}
	mutates := make(map[*types.Func]bool)
	rootsAtRecv := func(e ast.Expr, recv *types.Var) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				return info.ObjectOf(x) == recv
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return false
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, d := range decls {
			if mutates[fn] {
				continue
			}
			found := false
			ast.Inspect(d.fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if _, isIdent := lhs.(*ast.Ident); !isIdent && rootsAtRecv(lhs, d.recv) {
							found = true
						}
					}
				case *ast.IncDecStmt:
					if rootsAtRecv(n.X, d.recv) {
						found = true
					}
				case *ast.CallExpr:
					switch fun := ast.Unparen(n.Fun).(type) {
					case *ast.Ident:
						if (fun.Name == "delete" || fun.Name == "copy" || fun.Name == "clear") && len(n.Args) > 0 && isBuiltin(info, fun) && rootsAtRecv(n.Args[0], d.recv) {
							found = true
						}
					case *ast.SelectorExpr:
						if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal && rootsAtRecv(fun.X, d.recv) {
							if callee, ok := sel.Obj().(*types.Func); ok && mutates[callee] {
								found = true
							}
						}
					}
				}
				return !found
			})
			if found {
				mutates[fn] = true
				changed = true
			}
		}
	}
	// Methods not declared in this package are unknown: callers treat
	// them as mutating. Encode by leaving them absent and exposing the
	// decl set through a sentinel: checkMethod consults both maps.
	for fn := range decls {
		if _, ok := mutates[fn]; !ok {
			mutates[fn] = false
		}
	}
	return mutates
}

// checkMethod flags fd if some mutation of tracked state can reach a
// return without a bumpGeneration call.
func checkMethod(pass *analysis.Pass, sup *directive.Suppressor, fd *ast.FuncDecl, recv *types.Var, tracked map[string]bool, mutators map[*types.Func]bool) {
	info := pass.TypesInfo

	// Taint: objects whose value is reachable from a tracked receiver
	// field. Grown to a fixpoint so chains (e := db.Entries[n]; s :=
	// e.PerAP[b]) resolve regardless of statement order.
	taint := make(map[types.Object]bool)
	isTracked := func(e ast.Expr) bool { return trackedExpr(info, e, recv, tracked, taint) }
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					obj := info.ObjectOf(id)
					if obj != nil && !taint[obj] && isTracked(rhs) {
						taint[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if isTracked(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && id != nil {
							if obj := info.ObjectOf(id); obj != nil && !taint[obj] {
								taint[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// Collect mutation sites.
	var mutations []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent && isTracked(lhs) {
					mutations = append(mutations, n)
					return true
				}
				// `db.BSSIDs = append(...)` has an ident-free selector
				// LHS; a bare ident LHS (`x = ...`) rebinds a local and
				// is not a mutation of the receiver — unless the ident
				// IS a tracked alias being written through? Writing the
				// variable itself only rebinds; skip.
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if (fun.Name == "delete" || fun.Name == "copy" || fun.Name == "clear") && len(n.Args) > 0 && isBuiltin(info, fun) && isTracked(n.Args[0]) {
					mutations = append(mutations, n)
				}
			case *ast.SelectorExpr:
				// A pointer-receiver method invoked on tracked state
				// (s.AddSample(v)) mutates it — unless the package-local
				// summary proves the method read-only (MeanVector).
				if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal && isTracked(fun.X) {
					if sig, ok := sel.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
							callee, _ := sel.Obj().(*types.Func)
							if m, known := mutators[callee]; !known || m {
								mutations = append(mutations, n)
							}
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if isTracked(n.X) {
				mutations = append(mutations, n)
			}
		}
		return true
	})
	if len(mutations) == 0 {
		return
	}

	// Path check over the CFG: from each mutation, every path to an
	// exit must pass a bumpGeneration call.
	g := cfg.New(fd.Body, func(*ast.CallExpr) bool { return true })
	isBump := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == bumpName {
					found = true
				}
			}
			return !found
		})
		return found
	}
	contains := func(n ast.Node, target ast.Node) bool {
		return n.Pos() <= target.Pos() && target.End() <= n.End()
	}
	for _, mut := range mutations {
		// Locate the mutation's block and node index.
		var home *cfg.Block
		homeIdx := -1
		for _, b := range g.Blocks {
			for i, n := range b.Nodes {
				if contains(n, mut) || n == mut {
					home, homeIdx = b, i
					break
				}
			}
			if home != nil {
				break
			}
		}
		if home == nil {
			continue // unreachable code
		}
		// BFS from just after the mutation; a bump anywhere in a block
		// covers every path through it (blocks are straight-line).
		bumped := false
		for _, n := range home.Nodes[homeIdx+1:] {
			if isBump(n) {
				bumped = true
				break
			}
		}
		if bumped {
			continue
		}
		seen := map[*cfg.Block]bool{}
		var escapes func(b *cfg.Block) bool
		escapes = func(b *cfg.Block) bool {
			if seen[b] {
				return false
			}
			seen[b] = true
			for _, n := range b.Nodes {
				if isBump(n) {
					return false
				}
			}
			if len(b.Succs) == 0 {
				return b.Live // an unreachable empty block is not an exit
			}
			for _, s := range b.Succs {
				if escapes(s) {
					return true
				}
			}
			return false
		}
		leaks := false
		if len(home.Succs) == 0 {
			leaks = true // mutation in a returning block with no bump after it
		}
		for _, s := range home.Succs {
			if escapes(s) {
				leaks = true
				break
			}
		}
		if leaks {
			sup.Reportf(mut.Pos(), "%s.%s mutates tracked state but can return without %s()", namedOf(recv.Type()).Obj().Name(), fd.Name.Name, bumpName)
		}
	}
}

// trackedExpr reports whether e denotes state reachable from a tracked
// receiver field or a tainted alias of one.
func trackedExpr(info *types.Info, e ast.Expr, recv *types.Var, tracked map[string]bool, taint map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			return obj != nil && taint[obj]
		case *ast.SelectorExpr:
			// recv.Field where Field is tracked?
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.ObjectOf(id) == recv && tracked[x.Sel.Name] {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return false
		default:
			return false
		}
	}
}

// receiverOf returns the receiver variable of a method declaration.
func receiverOf(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	obj, _ := pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0]).(*types.Var)
	return obj
}

// namedOf returns the named type behind t, looking through pointers.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.ObjectOf(id).(*types.Builtin)
	return ok
}
