// Package a exercises the genbump analyzer with a miniature of
// trainingdb.DB: a type owning bumpGeneration plus exported mutators.
package a

import "fmt"

type Stats struct {
	N       int
	Samples []float64
}

func (s *Stats) AddSample(v float64) {
	s.N++
	s.Samples = append(s.Samples, v)
}

func (s Stats) Mean() float64 { return 0 } // value receiver: a read

// MeanVector has a pointer receiver but only reads: the package-local
// summary proves it harmless at call sites.
func (s *Stats) MeanVector(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(s.N)
	}
	return out
}

type Entry struct {
	Name  string
	PerAP map[string]*Stats
}

type DB struct {
	Entries map[string]*Entry
	BSSIDs  []string
	gen     uint64
	names   []string
}

func (db *DB) bumpGeneration() { db.gen++ }

// Good: mutation then unconditional bump.
func (db *DB) Add(name string) {
	db.Entries[name] = &Entry{Name: name}
	db.bumpGeneration()
}

// Good: the early return happens before any mutation.
func (db *DB) Remove(name string) bool {
	if _, ok := db.Entries[name]; !ok {
		return false
	}
	delete(db.Entries, name)
	db.bumpGeneration()
	return true
}

// Bad: no bump at all.
func (db *DB) Rename(old, new string) {
	e := db.Entries[old]
	delete(db.Entries, old) // want `mutates tracked state but can return without bumpGeneration`
	db.Entries[new] = e     // want `mutates tracked state but can return without bumpGeneration`
}

// Bad: the error path returns after the first iteration may already
// have mutated the map.
func (db *DB) MergeLeaky(other *DB) error {
	for name, e := range other.Entries {
		if _, dup := db.Entries[name]; dup {
			return fmt.Errorf("collision on %q", name)
		}
		db.Entries[name] = e // want `mutates tracked state but can return without bumpGeneration`
	}
	db.bumpGeneration()
	return nil
}

// Good: validate first, mutate after — every mutating path bumps.
func (db *DB) MergeSafe(other *DB) error {
	for name := range other.Entries {
		if _, dup := db.Entries[name]; dup {
			return fmt.Errorf("collision on %q", name)
		}
	}
	for name, e := range other.Entries {
		db.Entries[name] = e
	}
	db.bumpGeneration()
	return nil
}

// Bad: mutation through a receiver-derived alias still mutates db.
func (db *DB) Prune(min int) int {
	removed := 0
	for _, e := range db.Entries {
		for ap, s := range e.PerAP {
			if s.N < min {
				delete(e.PerAP, ap) // want `mutates tracked state but can return without bumpGeneration`
				removed++
			}
		}
	}
	return removed
}

// Bad: a pointer-receiver method call on tracked state is a mutation.
func (db *DB) Fold(name string, v float64) {
	if e := db.Entries[name]; e != nil {
		for _, s := range e.PerAP {
			s.AddSample(v) // want `mutates tracked state but can return without bumpGeneration`
		}
	}
}

// Good: value-receiver reads on tracked state are not mutations.
func (db *DB) Sum(name string) float64 {
	total := 0.0
	if e := db.Entries[name]; e != nil {
		for _, s := range e.PerAP {
			total += s.Mean()
		}
	}
	return total
}

// Good: read-only pointer-receiver calls on tracked state are not
// mutations either.
func (db *DB) Vectors(name string) [][]float64 {
	var out [][]float64
	if e := db.Entries[name]; e != nil {
		for _, s := range e.PerAP {
			out = append(out, s.MeanVector(3))
		}
	}
	return out
}

// Good: building and mutating a fresh DB is not a receiver mutation.
func (db *DB) Snapshot() *DB {
	nd := &DB{Entries: make(map[string]*Entry, len(db.Entries)), gen: db.gen}
	for n, e := range db.Entries {
		nd.Entries[n] = e
	}
	return nd
}

// Good: untracked cache fields do not require a bump.
func (db *DB) Names() []string {
	if db.names == nil {
		for n := range db.Entries {
			db.names = append(db.names, n)
		}
	}
	return db.names
}

// unexported mutators are implementation detail of exported ones.
func (db *DB) rebuild() {
	db.BSSIDs = db.BSSIDs[:0]
}
