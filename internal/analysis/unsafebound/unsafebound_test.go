package unsafebound_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/unsafebound"
)

func TestUnsafebound(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), unsafebound.Analyzer, "a", "b")
}
