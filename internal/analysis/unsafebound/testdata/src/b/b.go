// Package b has a blessed decode site but never verifies a checksum:
// the package-level frame rule fires at the first site.
package b

import "unsafe"

//loclint:mmapdecode caller-checked: fixture
func cast(p *byte, n int) []byte {
	return unsafe.Slice(p, n) // want `package b has //loclint:mmapdecode decode sites but never verifies a checksum`
}
