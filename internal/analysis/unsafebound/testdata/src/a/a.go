// Package a exercises unsafebound in a package that does verify
// checksums (the hash/crc32 call below satisfies the frame rule).
package a

import (
	"hash/crc32"
	"unsafe"
)

// Checksummed: the package verifies CRC frames somewhere.
func verify(b []byte) bool { return crc32.ChecksumIEEE(b) == 0 }

// byteView reinterprets s after rejecting the empty slice.
//
//loclint:mmapdecode len check precedes the cast
func byteView(s []byte) []uint16 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&s[0])), len(s)/2)
}

// castRaw trusts its caller's section-table validation.
//
//loclint:mmapdecode caller-checked: bounds validated by parseHeader
func castRaw(p *byte, n int) []byte {
	return unsafe.Slice(p, n)
}

func unblessed(p *byte, n int) []byte {
	return unsafe.Slice(p, n) // want `unsafe.Slice outside a //loclint:mmapdecode-blessed declaration`
}

//loclint:mmapdecode reason present but nothing guards the cast
func missingGuard(p *byte, n int) []byte {
	return unsafe.Slice(p, n) // want `no preceding len\(\) bounds check`
}

//loclint:mmapdecode this blessing is stale
func nothingUnsafe(n int) int { // want `stale //loclint:mmapdecode`
	return n + 1
}

func sizeOnly() uintptr {
	return unsafe.Sizeof(int64(0)) // good: compile-time, exempt
}

// hostLittle probes byte order once at init; a var block carries the
// blessing with no guard requirement.
//
//loclint:mmapdecode single-byte probe of a local scalar
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
