// Package unsafebound gates the zero-copy mmap decode tricks. The
// ILRMAPv2 artifact path reinterprets mapped bytes as typed slices
// through unsafe.Slice/unsafe.Pointer; one unchecked length and a
// truncated artifact becomes a fault at query time instead of a
// decode error at load time. The rules:
//
//   - every unsafe.Slice / unsafe.String / unsafe.SliceData /
//     unsafe.StringData / unsafe.Pointer use must sit inside a
//     declaration blessed with //loclint:mmapdecode <reason> —
//     the allowlist makes each site a reviewed, justified exception
//     (unsafe.Sizeof/Alignof/Offsetof are compile-time and exempt)
//   - inside a blessed function, a len(...) bounds check must
//     lexically precede the unsafe operation, unless the reason
//     carries the token "caller-checked" (the caller proved the
//     bounds, e.g. parseHeader's section table validation)
//   - a blessed declaration with no unsafe operation inside is stale
//     and flagged, so blessings can't outlive refactors
//   - a package with blessed decode sites must verify a checksum
//     (any hash/* call) somewhere in non-test code: CRC-framed
//     sections are only trustworthy after the frame check
//
// Package-level var initializers (the byte-order probe) may carry the
// blessing on their var block; they get the reason requirement but no
// guard requirement, having no body to guard.
package unsafebound

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/directive"
)

// Analyzer is the unsafebound analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unsafebound",
	Doc: "require //loclint:mmapdecode blessing, bounds checks and package checksum verification for unsafe decode sites\n\n" +
		"Unsafe casts over mmap'd artifacts fault at query time when unchecked;\n" +
		"every site must be an audited, justified exception.",
	Run: run,
}

// exempt are the compile-time unsafe operations.
var exempt = map[string]bool{"Sizeof": true, "Alignof": true, "Offsetof": true}

// blessedDecl tracks one //loclint:mmapdecode-annotated declaration.
type blessedDecl struct {
	decl   ast.Decl
	reason string
	sites  int
	isFunc bool
}

func run(pass *analysis.Pass) (any, error) {
	sup := directive.NewSuppressor(pass)
	var blessed []*blessedDecl
	var firstSite token.Pos
	checksummed := false
	for _, f := range pass.Files {
		if directive.InTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Any hash/* call (crc32.ChecksumIEEE, crc32.Update, ...)
		// counts as the package verifying frames.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok && fn.Pkg() != nil &&
				strings.HasPrefix(fn.Pkg().Path(), "hash") {
				checksummed = true
			}
			return !checksummed
		})
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			isFunc := false
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc, isFunc = d.Doc, true
			case *ast.GenDecl:
				doc = d.Doc
			default:
				continue
			}
			reason, ok := directive.Mmapdecode(doc)
			var bd *blessedDecl
			if ok {
				bd = &blessedDecl{decl: decl, reason: reason, isFunc: isFunc}
				blessed = append(blessed, bd)
			}
			checkDecl(pass, sup, decl, bd, &firstSite)
		}
	}
	for _, bd := range blessed {
		if bd.sites == 0 {
			sup.Reportf(bd.decl.Pos(), "stale //loclint:mmapdecode: declaration contains no unsafe operations")
		}
	}
	if firstSite != token.NoPos && !checksummed {
		sup.Reportf(firstSite, "package %s has //loclint:mmapdecode decode sites but never verifies a checksum (hash/*); CRC-framed sections must be checked before reinterpretation", pass.Pkg.Name())
	}
	return nil, nil
}

// checkDecl scans one top-level declaration for unsafe operations and
// applies the blessing and guard rules. bd is nil for unblessed
// declarations.
func checkDecl(pass *analysis.Pass, sup *directive.Suppressor, decl ast.Decl, bd *blessedDecl, firstSite *token.Pos) {
	ast.Inspect(decl, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "unsafe" || exempt[sel.Sel.Name] {
			return true
		}
		if *firstSite == token.NoPos {
			*firstSite = sel.Pos()
		}
		if bd == nil {
			sup.Reportf(sel.Pos(), "unsafe.%s outside a //loclint:mmapdecode-blessed declaration; audit the bounds and bless the site with a reason", sel.Sel.Name)
			return true
		}
		bd.sites++
		if bd.isFunc && !strings.Contains(bd.reason, "caller-checked") && !lenCheckBefore(pass.TypesInfo, decl, sel.Pos()) {
			sup.Reportf(sel.Pos(), "//loclint:mmapdecode site has no preceding len() bounds check; guard the decode or mark the reason caller-checked")
		}
		return true
	})
}

// lenCheckBefore reports whether a builtin len(...) call lexically
// precedes pos within the declaration.
func lenCheckBefore(info *types.Info, decl ast.Decl, pos token.Pos) bool {
	found := false
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return !found
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
				found = true
			}
		}
		return !found
	})
	return found
}
