// Package hotpathalloc enforces the ~1 alloc/op budget of functions
// annotated //loclint:hotpath (the compiled scorers, BatchInto, the
// fast-path JSON scanner, the WAL append). Inside an annotated
// function it rejects the constructs that allocate on every call:
//
//   - fmt.* calls (formatting boxes every operand) — except
//     fmt.Errorf inside a return statement, the cold error exit
//   - map and slice composite literals
//   - make and new
//   - append (growth is unbounded unless the backing array is managed
//     by the surrounding arena — suppress deliberate amortized growth
//     with //loclint:allow)
//   - func literals (closures capture by reference and escape)
//   - string↔[]byte conversions, except the compiler-recognized
//     non-allocating forms (map index m[string(b)], comparisons)
//   - explicit conversions to interface types (boxing)
//
// A finding on a line carrying //loclint:allow [hotpathalloc] is an
// acknowledged, reviewed exception.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/directive"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "reject allocating constructs in functions annotated //loclint:hotpath\n\n" +
		"The serving hot path holds a measured ~1 alloc/op budget; this analyzer\n" +
		"keeps formatting, literals, closures, unpooled growth and boxing out of it.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	sup := directive.NewSuppressor(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive.Hotpath(fd) {
				continue
			}
			check(pass, sup, fd)
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, sup *directive.Suppressor, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			sup.Reportf(n.Pos(), "closure on the hot path: func literals capture by reference and allocate")
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(n)).Underlying().(type) {
			case *types.Map:
				sup.Reportf(n.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				sup.Reportf(n.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.CallExpr:
			checkCall(pass, sup, n, stack)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

func checkCall(pass *analysis.Pass, sup *directive.Suppressor, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				sup.Reportf(call.Pos(), "append on the hot path may grow its backing array; pre-size in the arena or annotate the amortized growth with //loclint:allow")
			case "make":
				sup.Reportf(call.Pos(), "make allocates on the hot path")
			case "new":
				sup.Reportf(call.Pos(), "new allocates on the hot path")
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := types.Unalias(tv.Type)
		src := info.TypeOf(call.Args[0])
		switch {
		case isStringByteConv(dst, src):
			if !nonAllocConvContext(call, stack) {
				sup.Reportf(call.Pos(), "string/[]byte conversion copies on the hot path; use a pooled scratch buffer")
			}
		case types.IsInterface(dst) && src != nil && !types.IsInterface(src):
			sup.Reportf(call.Pos(), "conversion to interface type boxes its operand on the hot path")
		}
		return
	}

	// fmt.*.
	if fn, ok := typeutil.Callee(info, call).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if fn.Name() == "Errorf" && inReturn(stack) {
			return // cold error exit: constructing the error is the last thing the path does
		}
		sup.Reportf(call.Pos(), "fmt.%s formats and allocates on the hot path", fn.Name())
	}
}

// isStringByteConv reports a string↔[]byte (or []rune) conversion.
func isStringByteConv(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// nonAllocConvContext reports whether the conversion sits in a context
// the compiler optimizes to skip the copy: a map index key, or an
// operand of a comparison.
func nonAllocConvContext(call *ast.CallExpr, stack []ast.Node) bool {
	// stack[len-1] is the call itself.
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.IndexExpr:
			return p.Index != nil && contains(p.Index, call)
		case *ast.BinaryExpr:
			switch p.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}

func inReturn(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func contains(n ast.Node, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}
