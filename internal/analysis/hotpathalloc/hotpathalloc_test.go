package hotpathalloc_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), hotpathalloc.Analyzer, "a")
}
