// Package a exercises the hotpathalloc analyzer.
package a

import (
	"errors"
	"fmt"
)

type point struct{ x, y float64 }

type candidate struct {
	name  string
	pos   point
	score float64
}

type compiled struct {
	names []string
	pos   []point
	mean  []float64
}

// scoreRange is the shape of the real compiled scorers: struct
// literals into a caller-owned slice, pure arithmetic — clean.
//
//loclint:hotpath
func scoreRange(c *compiled, vals []float64, out []candidate, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for h := range vals {
			d := vals[h] - c.mean[i]
			s -= d * d
		}
		out[i] = candidate{name: c.names[i], pos: c.pos[i], score: s}
	}
}

// errNoOverlap is constructed once, off the hot path.
var errNoOverlap = errors.New("no overlap")

// appendReport returns the error through the cold exit; fmt.Errorf in
// a return statement is the allowed error-construction idiom.
//
//loclint:hotpath
func appendReport(buf []byte, n int) error {
	if n > len(buf) {
		return fmt.Errorf("report exceeds buffer (%d > %d)", n, len(buf))
	}
	if n < 0 {
		return errNoOverlap
	}
	return nil
}

//loclint:hotpath
func hotViolations(m map[string]float64, keys []string, raw []byte) float64 {
	msg := fmt.Sprintf("%d keys", len(keys)) // want `fmt.Sprintf formats and allocates`
	weights := map[string]float64{"a": 1}    // want `map literal allocates`
	extra := []float64{1, 2, 3}              // want `slice literal allocates`
	scratch := make([]byte, 64)              // want `make allocates`
	p := new(point)                          // want `new allocates`
	keys = append(keys, msg)                 // want `append on the hot path may grow`
	f := func() float64 { return 1 }         // want `closure on the hot path`
	s := string(raw)                         // want `string/\[\]byte conversion copies`
	var tot float64
	for _, k := range keys {
		tot += m[k]
	}
	return tot + weights["a"] + extra[0] + float64(len(scratch)) + p.x + f() + float64(len(s))
}

type stringer interface{ String() string }

type id int

func (id) String() string { return "id" }

//loclint:hotpath
func boxes(v id) stringer {
	return stringer(v) // want `conversion to interface type boxes`
}

// internKey uses the compiler-recognized non-allocating forms: map
// index keyed by string(b), and comparisons — clean.
//
//loclint:hotpath
func internKey(m map[string]string, b []byte) string {
	if s, ok := m[string(b)]; ok {
		return s
	}
	if string(b) == "observations" {
		return "observations"
	}
	return ""
}

// arenaGrow documents a deliberate amortized growth with an allow
// directive — suppressed.
//
//loclint:hotpath
func arenaGrow(obs [][]float64, n int) [][]float64 {
	for len(obs) < n {
		obs = append(obs, make([]float64, 0, 8)) //loclint:allow hotpathalloc
	}
	return obs
}

// coldPath is not annotated: anything goes.
func coldPath(names []string) string {
	return fmt.Sprintf("%v", append(names, string([]byte("x"))))
}
