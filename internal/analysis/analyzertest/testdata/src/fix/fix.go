// Package fix is the harness's own fixture, checked by the toy
// analyzer in analyzertest_test.go that flags every call to a
// function named Bad.
package fix

import (
	"strings"

	"dep"
)

func bad() {}

func local() {
	bad() // want "call to bad"
	bad() // want `call to bad`
}

func imported() {
	dep.Bad() // want "call to bad"
	dep.Fine()
}

func clean() string {
	return strings.ToUpper("ok")
}
