// Package dep is a sibling fixture: fix imports it by its
// testdata/src-relative path, exercising the loader's
// fixture-before-stdlib import resolution.
package dep

// Bad exists to be flagged at call sites.
func Bad() {}

// Fine exists to not be.
func Fine() {}
