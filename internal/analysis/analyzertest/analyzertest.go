// Package analyzertest runs a go/analysis analyzer over fixture
// packages and checks its diagnostics against // want comments — a
// self-contained stand-in for golang.org/x/tools/go/analysis/analysistest,
// which the toolchain's vendored x/tools copy does not ship. The
// subset implemented here is exactly what the loclint suite needs:
//
//   - fixtures live under testdata/src/<pkg>/*.go
//   - a line expecting diagnostics carries // want "regexp" ["regexp" ...]
//   - every diagnostic must match a want on its line, and every want
//     must be matched, or the test fails
//
// Fixture packages may import the standard library (resolved by
// compiling stdlib from source, so no prebuilt export data is needed)
// and sibling fixture packages by their testdata/src-relative path.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the caller package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// loader loads and type-checks fixture packages.
type loader struct {
	fset     *token.FileSet
	testdata string
	std      types.Importer
	pkgs     map[string]*pkgInfo
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		testdata: testdata,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*pkgInfo),
	}
}

// Import resolves fixture-sibling packages first, then the standard
// library.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.testdata, "src", path)); err == nil && st.IsDir() {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		return pi, pi.err
	}
	pi := &pkgInfo{}
	l.pkgs[path] = pi
	dir := filepath.Join(l.testdata, "src", path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		pi.err = fmt.Errorf("analyzertest: no fixture files in %s", dir)
		return pi, pi.err
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			pi.err = fmt.Errorf("analyzertest: parse %s: %w", name, err)
			return pi, pi.err
		}
		pi.files = append(pi.files, f)
	}
	pi.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pi.pkg, pi.err = conf.Check(path, l.fset, pi.files, pi.info)
	if pi.err != nil {
		pi.err = fmt.Errorf("analyzertest: type-check %s: %w", path, pi.err)
	}
	return pi, pi.err
}

// Run loads each named fixture package and applies the analyzer,
// comparing diagnostics to the // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	for _, path := range pkgPaths {
		pi, err := l.load(path)
		if err != nil {
			t.Fatal(err)
		}
		diags := runAnalyzer(t, l, a, pi)
		checkWants(t, l.fset, pi.files, diags)
	}
}

// runAnalyzer runs a and its Requires closure over one package.
func runAnalyzer(t *testing.T, l *loader, a *analysis.Analyzer, pi *pkgInfo) []analysis.Diagnostic {
	t.Helper()
	results := make(map[*analysis.Analyzer]any)
	var diags []analysis.Diagnostic
	var run func(a *analysis.Analyzer, collect bool)
	run = func(a *analysis.Analyzer, collect bool) {
		if _, done := results[a]; done {
			return
		}
		for _, dep := range a.Requires {
			run(dep, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		if a.ResultType != nil && res != nil && !reflect.TypeOf(res).AssignableTo(a.ResultType) {
			t.Fatalf("analyzer %s returned %T, want %s", a.Name, res, a.ResultType)
		}
		results[a] = res
	}
	run(a, true)
	return diags
}

// wantRx extracts the quoted regexps of one want comment; both
// "double-quoted" and `backquoted` forms are accepted.
var wantRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// checkWants cross-checks diagnostics against // want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // file:line → expectations
	loc := func(p token.Position) string { return fmt.Sprintf("%s:%d", p.Filename, p.Line) }
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				p := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", loc(p), pat, err)
					}
					wants[loc(p)] = append(wants[loc(p)], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, e := range wants[loc(p)] {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", loc(p), d.Message)
		}
	}
	for at, es := range wants {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: no diagnostic matched want %q", at, e.rx)
			}
		}
	}
}
