package analyzertest

import (
	"go/ast"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// badcall is the harness's own toy analyzer: it flags every call to a
// function named Bad or bad, which the fix fixture provokes through a
// local call, a sibling-fixture import, and two want-comment forms.
var badcall = &analysis.Analyzer{
	Name: "badcall",
	Doc:  "flag calls to functions named bad",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var name string
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if strings.EqualFold(name, "bad") {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil, nil
	},
}

// TestHarnessMatchesWants runs the full harness over the fix fixture:
// sibling import (dep), stdlib import (strings), double-quoted and
// backquoted wants, and diagnostic-free lines all in one package.
func TestHarnessMatchesWants(t *testing.T) {
	Run(t, TestData(), badcall, "fix")
}

// TestLoaderImportOrder pins the resolution rule fixture analyzers
// rely on: a testdata/src sibling wins over the standard library, and
// anything else falls through to the source importer.
func TestLoaderImportOrder(t *testing.T) {
	l := newLoader(TestData())
	pkg, err := l.Import("dep")
	if err != nil {
		t.Fatalf("Import(dep): %v", err)
	}
	if pkg.Path() != "dep" || pkg.Scope().Lookup("Bad") == nil {
		t.Errorf("dep did not resolve to the fixture package: %v", pkg)
	}
	std, err := l.Import("strings")
	if err != nil {
		t.Fatalf("Import(strings): %v", err)
	}
	if std.Scope().Lookup("ToUpper") == nil {
		t.Error("strings did not resolve to the standard library")
	}
	if _, err := l.load("no-such-fixture"); err == nil {
		t.Error("missing fixture loaded without error")
	}
}

// TestWantRx pins the two accepted pattern quoting forms, including
// escaped quotes inside the double-quoted form.
func TestWantRx(t *testing.T) {
	text := `// want "plain" "esc\"aped" ` + "`back.?quoted`"
	ms := wantRx.FindAllStringSubmatch(text[strings.Index(text, "// want ")+len("// want "):], -1)
	var pats []string
	for _, m := range ms {
		if m[2] != "" {
			pats = append(pats, m[2])
		} else {
			pats = append(pats, m[1])
		}
	}
	want := []string{"plain", `esc\"aped`, "back.?quoted"}
	if strings.Join(pats, "|") != strings.Join(want, "|") {
		t.Errorf("patterns %v, want %v", pats, want)
	}
}
