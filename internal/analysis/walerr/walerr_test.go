package walerr_test

import (
	"testing"

	"indoorloc/internal/analysis/analyzertest"
	"indoorloc/internal/analysis/walerr"
)

func TestWALErr(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(), walerr.Analyzer, "a")
}
