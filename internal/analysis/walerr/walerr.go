// Package walerr enforces the WAL durability contract: the error
// results of WAL.Append / WAL.Close, (*bufio.Writer).Flush and
// (*os.File).Sync must not be silently discarded. Every report
// acknowledged to a client is supposed to be durable; an ignored
// flush/sync error breaks that promise invisibly. Discarding into
// explicit blanks (`_ = w.Close()`) is allowed — it is greppable and
// visibly deliberate; a bare call statement is not.
package walerr

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"indoorloc/internal/analysis/directive"
)

// Analyzer is the walerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walerr",
	Doc: "flag discarded error results of WAL append/flush/sync calls\n\n" +
		"The ingest pipeline acknowledges reports only after they reach the log;\n" +
		"dropping an Append/Flush/Sync/Close error silently breaks durability.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	sup := directive.NewSuppressor(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
		stmt := n.(*ast.ExprStmt)
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || directive.InTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 0 || sig.Recv() == nil {
			return
		}
		recvType, pkgPath := recvInfo(fn)
		var what string
		switch {
		case recvType == "WAL" && (fn.Name() == "Append" || fn.Name() == "Close"):
			what = "WAL." + fn.Name()
		case recvType == "File" && pkgPath == "os" && fn.Name() == "Sync":
			what = "(*os.File).Sync"
		case recvType == "Writer" && pkgPath == "bufio" && fn.Name() == "Flush":
			what = "(*bufio.Writer).Flush"
		default:
			return
		}
		sup.Reportf(call.Pos(), "result of %s is discarded; the durability contract depends on this error (assign it, or discard explicitly with _ =)", what)
	})
	return nil, nil
}

// recvInfo returns the receiver's named-type name and defining package
// path.
func recvInfo(fn *types.Func) (typeName, pkgPath string) {
	recv := fn.Type().(*types.Signature).Recv()
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", ""
	}
	if p := named.Obj().Pkg(); p != nil {
		pkgPath = p.Path()
	}
	return named.Obj().Name(), pkgPath
}
