// Package a exercises the walerr analyzer.
package a

import (
	"bufio"
	"errors"
	"os"
)

type Report struct{ Name string }

// WAL is matched by type name, mirroring ingest.WAL.
type WAL struct {
	f  *os.File
	bw *bufio.Writer
}

func (w *WAL) Append(reports ...Report) error { return nil }
func (w *WAL) Close() error                   { return nil }
func (w *WAL) Path() string                   { return "" }

func appendChecked(w *WAL, r Report) error {
	if err := w.Append(r); err != nil { // good: handled
		return err
	}
	return nil
}

func appendDiscarded(w *WAL, r Report) {
	w.Append(r) // want `result of WAL.Append is discarded`
}

func closeDiscarded(w *WAL) {
	w.Close() // want `result of WAL.Close is discarded`
}

func closeBlank(w *WAL) {
	_ = w.Close() // good: explicitly discarded, greppable
}

func syncDiscarded(f *os.File) {
	f.Sync() // want `result of \(\*os\.File\)\.Sync is discarded`
}

func flushDiscarded(bw *bufio.Writer) {
	bw.Flush() // want `result of \(\*bufio\.Writer\)\.Flush is discarded`
}

func flushChecked(bw *bufio.Writer) error {
	if err := bw.Flush(); err != nil {
		return errors.New("flush failed")
	}
	return nil
}

// Path returns no error: a bare call is fine.
func pathOnly(w *WAL) {
	w.Path()
}

// Other types' Close calls are out of scope.
func fileClose(f *os.File) {
	f.Close()
}
