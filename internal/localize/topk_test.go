package localize

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomCandidates draws n candidates with unique names and occasional
// duplicate scores, so the name tiebreak is exercised.
func randomCandidates(rng *rand.Rand, n int) []Candidate {
	cs := make([]Candidate, n)
	for i := range cs {
		score := float64(rng.Intn(n/2+1)) - float64(n)/4 // collisions on purpose
		cs[i] = Candidate{Name: fmt.Sprintf("loc-%04d", i), Score: score}
	}
	rng.Shuffle(n, func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
	return cs
}

// TestTopKMatchesFullSortPrefix is the selection property: for every
// (n, k), TopK's prefix must equal the full sort's prefix exactly —
// same candidates, same order, ties resolved identically.
func TestTopKMatchesFullSortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(n+4) // sometimes k > n: full-sort fallback
		cs := randomCandidates(rng, n)
		want := append([]Candidate(nil), cs...)
		rankCandidates(want)

		got := TopK(cs, k)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("n=%d k=%d: len = %d, want %d", n, k, len(got), wantLen)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: prefix[%d] = %+v, full sort has %+v",
					n, k, i, got[i], want[i])
			}
		}
	}
}

// TestTopKPermutes pins that TopK never loses a candidate: the slice
// after selection is a permutation of the input.
func TestTopKPermutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(100)
		cs := randomCandidates(rng, n)
		seen := make(map[string]float64, n)
		for _, c := range cs {
			seen[c.Name] = c.Score
		}
		TopK(cs, 1+rng.Intn(n))
		if len(cs) != n {
			t.Fatalf("length changed: %d → %d", n, len(cs))
		}
		for _, c := range cs {
			score, ok := seen[c.Name]
			if !ok || score != c.Score {
				t.Fatalf("candidate %q corrupted after TopK", c.Name)
			}
			delete(seen, c.Name)
		}
	}
}

func TestTopKEdges(t *testing.T) {
	if got := TopK(nil, 3); len(got) != 0 {
		t.Errorf("TopK(nil) = %v", got)
	}
	one := []Candidate{{Name: "only", Score: 1}}
	if got := TopK(one, 0); len(got) != 1 { // k<=0 means full ranking
		t.Errorf("TopK(k=0) = %v", got)
	}
}

// TestTopKZeroAllocs pins the hot-path contract testing.AllocsPerRun
// can see: bounded selection allocates nothing.
func TestTopKZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := randomCandidates(rng, 512)
	if avg := testing.AllocsPerRun(100, func() {
		TopK(cs, 8)
	}); avg != 0 {
		t.Errorf("TopK allocates %v per run, want 0", avg)
	}
}

// TestLocatorsTopKMatchesFullRanking is the integration property: with
// TopK set, every locator must return exactly the first k candidates
// of its full ranking, and the same winner. (Histogram's posterior is
// renormalized over the retained set, so its scores are compared
// before normalization via the winner identity only.)
func TestLocatorsTopKMatchesFullRanking(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomTrainDB(rng, 30+rng.Intn(120), 4+rng.Intn(12), 0.3+rng.Float64()*0.6)
		if len(db.BSSIDs) == 0 {
			continue
		}
		const k = 5

		mlFull := NewMaxLikelihood(db)
		mlTop := NewMaxLikelihood(db)
		mlTop.TopK = k
		histFull := NewHistogram(db)
		histTop := NewHistogram(db)
		histTop.TopK = k
		knnFull := NewKNN(db, 3)
		knnTop := NewKNN(db, 3)
		knnTop.TopK = k
		secFull := NewSector(db)
		secTop := NewSector(db)
		secTop.TopK = k

		for trial := 0; trial < 10; trial++ {
			obs := randomObs(rng, db, 0.2+rng.Float64()*0.7)
			if len(obs) == 0 {
				continue
			}
			tag := fmt.Sprintf("seed %d trial %d", seed, trial)

			check := func(algo string, full, top Estimate, exactScores bool) {
				t.Helper()
				if top.Name != full.Name {
					t.Fatalf("%s %s: Name = %q, full ranking %q", tag, algo, top.Name, full.Name)
				}
				want := k
				if want > len(full.Candidates) {
					want = len(full.Candidates)
				}
				if len(top.Candidates) != want {
					t.Fatalf("%s %s: %d candidates, want %d", tag, algo, len(top.Candidates), want)
				}
				for i, c := range top.Candidates {
					if c.Name != full.Candidates[i].Name {
						t.Fatalf("%s %s: candidate %d = %q, full ranking %q",
							tag, algo, i, c.Name, full.Candidates[i].Name)
					}
					if exactScores && c.Score != full.Candidates[i].Score {
						t.Fatalf("%s %s: candidate %d score = %v, full ranking %v",
							tag, algo, i, c.Score, full.Candidates[i].Score)
					}
				}
			}

			fe, ferr := mlFull.Locate(obs)
			te, terr := mlTop.Locate(obs)
			if (ferr == nil) != (terr == nil) {
				t.Fatalf("%s ml: err %v vs %v", tag, terr, ferr)
			}
			if ferr == nil {
				check("ml", fe, te, true)
			}

			fe, ferr = histFull.Locate(obs)
			te, terr = histTop.Locate(obs)
			if (ferr == nil) != (terr == nil) {
				t.Fatalf("%s hist: err %v vs %v", tag, terr, ferr)
			}
			if ferr == nil {
				check("hist", fe, te, false)
			}

			fe, ferr = knnFull.Locate(obs)
			te, terr = knnTop.Locate(obs)
			if (ferr == nil) != (terr == nil) {
				t.Fatalf("%s knn: err %v vs %v", tag, terr, ferr)
			}
			if ferr == nil {
				check("knn", fe, te, true)
				if te.Pos != fe.Pos {
					t.Fatalf("%s knn: centroid %v, full ranking %v", tag, te.Pos, fe.Pos)
				}
			}

			fe, ferr = secFull.Locate(obs)
			te, terr = secTop.Locate(obs)
			if (ferr == nil) != (terr == nil) {
				t.Fatalf("%s sector: err %v vs %v", tag, terr, ferr)
			}
			if ferr == nil {
				check("sector", fe, te, true)
			}
		}
	}
}

// TestKNNTopKNeverBelowK pins the bound floor: TopK smaller than K
// must still hand the centroid K neighbours.
func TestKNNTopKNeverBelowK(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	db := randomTrainDB(rng, 40, 8, 0.7)
	knn := NewKNN(db, 4)
	knn.TopK = 2 // below K
	obs := randomObs(rng, db, 0.8)
	est, err := knn.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Candidates) != 4 {
		t.Fatalf("retained %d candidates, want K=4", len(est.Candidates))
	}
}
