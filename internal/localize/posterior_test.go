package localize

import (
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
)

func TestExpectedPositionBetweenGridPoints(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 20, 1)
	ml := NewMaxLikelihood(db)
	ml.ExpectedPosition = true
	rng := rand.New(rand.NewSource(12))
	// Observe midway between two training points: the expected position
	// can land between grid points, where the argmax never can.
	target := geom.Pt(25, 20)
	est, err := ml.Locate(observe(env, target, 15, rng))
	if err != nil {
		t.Fatal(err)
	}
	// Name still reports the argmax training point.
	if est.Name == "" {
		t.Error("argmax name lost")
	}
	if est.Pos.Dist(target) > 10 {
		t.Errorf("expected position %v far from %v", est.Pos, target)
	}
	// The posterior mean generally differs from the argmax position.
	if est.Pos == est.Candidates[0].Pos {
		t.Log("posterior mean coincided with argmax (possible but unusual)")
	}
}

func TestExpectedPositionAveragesBetterMidCell(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 20, 1)
	argmax := NewMaxLikelihood(db)
	expected := NewMaxLikelihood(db)
	expected.ExpectedPosition = true
	rng := rand.New(rand.NewSource(13))
	// Mid-cell targets: argmax is forced to a corner ≥ 7.07 ft away;
	// the posterior mean can interpolate.
	var argmaxTotal, expectedTotal float64
	targets := []geom.Point{
		geom.Pt(15, 15), geom.Pt(25, 25), geom.Pt(35, 15), geom.Pt(15, 25),
	}
	for _, target := range targets {
		obs := observe(env, target, 15, rng)
		ea, err := argmax.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		ee, err := expected.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		argmaxTotal += ea.Pos.Dist(target)
		expectedTotal += ee.Pos.Dist(target)
	}
	if expectedTotal >= argmaxTotal {
		t.Errorf("posterior mean (%.1f ft total) not better than argmax (%.1f ft) on mid-cell targets",
			expectedTotal, argmaxTotal)
	}
}

func TestPosteriorMeanDegenerate(t *testing.T) {
	if got := posteriorMean(nil); got != geom.Pt(0, 0) {
		t.Errorf("empty = %v", got)
	}
	one := []Candidate{{Pos: geom.Pt(3, 4), Score: -5}}
	if got := posteriorMean(one); got != geom.Pt(3, 4) {
		t.Errorf("single = %v", got)
	}
	// A dominant candidate pulls the mean onto itself.
	two := []Candidate{
		{Pos: geom.Pt(0, 0), Score: 0},
		{Pos: geom.Pt(10, 10), Score: -1000},
	}
	if got := posteriorMean(two); got.Dist(geom.Pt(0, 0)) > 1e-9 {
		t.Errorf("dominant = %v", got)
	}
}
