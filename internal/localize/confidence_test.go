package localize

import (
	"fmt"
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
)

func TestConfidenceRadiusDegenerate(t *testing.T) {
	if got := ConfidenceRadius(Estimate{}, 0.9); got != 0 {
		t.Errorf("no candidates: %v", got)
	}
}

func TestConfidenceRadiusConcentrated(t *testing.T) {
	// One overwhelming candidate at the estimate: radius 0 at any
	// fraction.
	est := Estimate{
		Pos: geom.Pt(10, 10),
		Candidates: []Candidate{
			{Pos: geom.Pt(10, 10), Score: 0},
			{Pos: geom.Pt(40, 40), Score: -500},
		},
	}
	if got := ConfidenceRadius(est, 0.95); got != 0 {
		t.Errorf("concentrated radius = %v", got)
	}
}

func TestConfidenceRadiusSpread(t *testing.T) {
	// Four equally likely candidates at 0, 10, 20, 30 ft from the
	// estimate: 50% needs the second, 95% the fourth.
	est := Estimate{
		Pos: geom.Pt(0, 0),
		Candidates: []Candidate{
			{Pos: geom.Pt(0, 0), Score: -1},
			{Pos: geom.Pt(10, 0), Score: -1},
			{Pos: geom.Pt(20, 0), Score: -1},
			{Pos: geom.Pt(30, 0), Score: -1},
		},
	}
	if got := ConfidenceRadius(est, 0.5); got != 10 {
		t.Errorf("50%% radius = %v, want 10", got)
	}
	if got := ConfidenceRadius(est, 0.95); got != 30 {
		t.Errorf("95%% radius = %v, want 30", got)
	}
	// Fraction clamping.
	if got := ConfidenceRadius(est, 5); got != 30 {
		t.Errorf("clamped high = %v", got)
	}
	if got := ConfidenceRadius(est, -1); got != 10 {
		t.Errorf("clamped low (defaults to 0.5) = %v", got)
	}
}

func TestConfidenceRadiusNormalisedScores(t *testing.T) {
	// Histogram-style candidates: scores are probabilities already.
	est := Estimate{
		Pos: geom.Pt(0, 0),
		Candidates: []Candidate{
			{Pos: geom.Pt(0, 0), Score: 0.7},
			{Pos: geom.Pt(10, 0), Score: 0.2},
			{Pos: geom.Pt(50, 0), Score: 0.1},
		},
	}
	if got := ConfidenceRadius(est, 0.85); got != 10 {
		t.Errorf("85%% radius = %v, want 10", got)
	}
	if got := ConfidenceRadius(est, 0.99); got != 50 {
		t.Errorf("99%% radius = %v, want 50", got)
	}
}

// TestConfidenceRadiusZeroAllocs pins the scratch-pool fix: the massAt
// accumulation must not allocate per call once the pool is warm.
func TestConfidenceRadiusZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cands := make([]Candidate, 200)
	for i := range cands {
		cands[i] = Candidate{
			Pos:   geom.Pt(rng.Float64()*100, rng.Float64()*80),
			Score: -rng.Float64() * 50,
		}
	}
	est := Estimate{Pos: cands[0].Pos, Candidates: cands}
	ConfidenceRadius(est, 0.9) // warm the pool
	if n := testing.AllocsPerRun(100, func() {
		ConfidenceRadius(est, 0.9)
	}); n != 0 {
		t.Errorf("ConfidenceRadius allocates %v per call", n)
	}
}

// BenchmarkConfidenceRadius prices the per-query confidence pass at
// serving candidate-list sizes; allocs/op must stay 0.
func BenchmarkConfidenceRadius(b *testing.B) {
	for _, n := range []int{8, 100, 1000} {
		b.Run(fmt.Sprintf("candidates=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(18))
			cands := make([]Candidate, n)
			for i := range cands {
				cands[i] = Candidate{
					Pos:   geom.Pt(rng.Float64()*100, rng.Float64()*80),
					Score: -rng.Float64() * 50,
				}
			}
			est := Estimate{Pos: cands[0].Pos, Candidates: cands}
			ConfidenceRadius(est, 0.9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ConfidenceRadius(est, 0.9)
			}
		})
	}
}

// BenchmarkObservationBSSIDs compares the allocating convenience form
// with the scratch-reusing AppendBSSIDs the serving path uses.
func BenchmarkObservationBSSIDs(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	obs := make(Observation, 32)
	for i := 0; i < 32; i++ {
		obs[fmt.Sprintf("aa:bb:cc:dd:%02x:%02x", i, i)] = -40 - rng.Float64()*50
	}
	b.Run("BSSIDs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := obs.BSSIDs(); len(got) != 32 {
				b.Fatal("wrong length")
			}
		}
	})
	b.Run("AppendBSSIDs", func(b *testing.B) {
		buf := make([]string, 0, 32)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = obs.AppendBSSIDs(buf[:0])
			if len(buf) != 32 {
				b.Fatal("wrong length")
			}
		}
	})
}

func TestConfidenceRadiusMonotoneInFraction(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 10, 1)
	ml := NewMaxLikelihood(db)
	rng := rand.New(rand.NewSource(6))
	est, err := ml.Locate(observe(env, geom.Pt(22, 18), 10, rng))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, f := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		r := ConfidenceRadius(est, f)
		if r < prev {
			t.Fatalf("radius shrank: %v at %v", r, f)
		}
		prev = r
	}
	// A confident fix should bound 90% of mass within a few cells.
	if r := ConfidenceRadius(est, 0.9); r > 30 {
		t.Errorf("90%% radius = %v ft, suspiciously wide", r)
	}
}
