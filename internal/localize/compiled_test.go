package localize

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
	"indoorloc/internal/trainingdb"
)

// This file is the compiled-vs-map equivalence property suite: the
// scoring loops now run against trainingdb.Compiled matrices, and the
// reference implementations below preserve the original string-keyed
// map walks verbatim. Randomized databases (sparse AP coverage,
// constant-sample sigmas, unknown observation BSSIDs) must produce
// identical names, positions and candidate orderings through both
// paths for every algorithm.

// randomTrainDB builds a database with nEntries locations over at most
// nAPs access points; each location hears each AP with probability
// hearProb, so coverage is sparse like a real survey.
func randomTrainDB(rng *rand.Rand, nEntries, nAPs int, hearProb float64) *trainingdb.DB {
	db := &trainingdb.DB{Entries: make(map[string]*trainingdb.Entry)}
	universe := make(map[string]bool)
	for i := 0; i < nEntries; i++ {
		name := fmt.Sprintf("loc-%03d", i)
		e := &trainingdb.Entry{
			Name:  name,
			Pos:   geom.Pt(rng.Float64()*120, rng.Float64()*90),
			PerAP: make(map[string]*trainingdb.APStats),
		}
		for j := 0; j < nAPs; j++ {
			if rng.Float64() >= hearProb {
				continue
			}
			bssid := fmt.Sprintf("ap:%02d", j)
			mean := -35 - rng.Float64()*55
			spread := rng.Float64() * 6
			if rng.Float64() < 0.15 {
				spread = 0 // constant samples: exercises the MinSigma clamp
			}
			n := 3 + rng.Intn(12)
			var run stats.Running
			samples := make([]float64, n)
			for s := range samples {
				samples[s] = mean + spread*rng.NormFloat64()
				run.Add(samples[s])
			}
			e.PerAP[bssid] = &trainingdb.APStats{
				BSSID: bssid, N: n,
				Mean: run.Mean(), StdDev: run.StdDev(),
				Min: run.Min(), Max: run.Max(),
				Samples: samples,
			}
			universe[bssid] = true
		}
		db.Entries[name] = e
	}
	for b := range universe {
		db.BSSIDs = append(db.BSSIDs, b)
	}
	sort.Strings(db.BSSIDs)
	return db
}

// randomObs draws an observation hearing each universe AP with
// probability hearProb, plus the occasional BSSID the training phase
// never saw (which every scorer must ignore).
func randomObs(rng *rand.Rand, db *trainingdb.DB, hearProb float64) Observation {
	obs := Observation{}
	for _, b := range db.BSSIDs {
		if rng.Float64() < hearProb {
			obs[b] = -25 - rng.Float64()*70
		}
	}
	if rng.Float64() < 0.5 {
		obs[fmt.Sprintf("ghost:%02d", rng.Intn(8))] = -60 - rng.Float64()*20
	}
	return obs
}

// --- reference implementations: the original map-walking scorers ---

func refMaxLikelihood(m *MaxLikelihood, obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	minOverlap := m.MinOverlap
	if minOverlap <= 0 {
		minOverlap = 1
	}
	overlap := 0
	known := make(map[string]bool, len(m.DB.BSSIDs))
	for _, b := range m.DB.BSSIDs {
		known[b] = true
	}
	for b := range obs {
		if known[b] {
			overlap++
		}
	}
	if overlap < minOverlap {
		return Estimate{}, ErrNoOverlap
	}
	floorSigma := m.FloorSigma
	if floorSigma < stats.MinSigma {
		floorSigma = stats.MinSigma
	}
	candidates := make([]Candidate, 0, m.DB.Len())
	for _, name := range m.DB.Names() {
		e := m.DB.Entries[name]
		ll := 0.0
		for _, b := range m.DB.BSSIDs {
			s, trained := e.PerAP[b]
			o, heard := obs[b]
			switch {
			case trained && heard:
				ll += stats.LogGaussianPDF(o, s.Mean, s.StdDev)
			case trained && !heard:
				ll += stats.LogGaussianPDF(m.FloorRSSI, s.Mean, s.StdDev)
			case !trained && heard:
				ll += stats.LogGaussianPDF(o, m.FloorRSSI, floorSigma)
			}
		}
		candidates = append(candidates, Candidate{Name: name, Pos: e.Pos, Score: ll})
	}
	rankCandidates(candidates)
	best := candidates[0]
	est := Estimate{Pos: best.Pos, Name: best.Name, Score: best.Score, Candidates: candidates}
	if m.ExpectedPosition {
		est.Pos = posteriorMean(candidates)
	}
	return est, nil
}

func refHistogram(h *Histogram, obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	bins := h.Bins
	lo, hi := h.RangeLo, h.RangeHi
	if bins <= 0 {
		bins = 70
		lo, hi = -100, -30
	}
	if hi <= lo {
		lo, hi = -100, -30
	}
	overlap := false
	for _, b := range h.DB.BSSIDs {
		if _, ok := obs[b]; ok {
			overlap = true
			break
		}
	}
	if !overlap {
		return Estimate{}, ErrNoOverlap
	}
	hists := make(map[string]map[string]*stats.Histogram, h.DB.Len())
	for name, e := range h.DB.Entries {
		m := make(map[string]*stats.Histogram, len(e.PerAP))
		for bssid, s := range e.PerAP {
			hist, err := stats.NewHistogram(lo, hi, bins)
			if err != nil {
				return Estimate{}, err
			}
			for _, v := range s.Samples {
				hist.Add(v)
			}
			m[bssid] = hist
		}
		hists[name] = m
	}
	uniform := logf(1 / float64(bins))
	candidates := make([]Candidate, 0, h.DB.Len())
	for _, name := range h.DB.Names() {
		ll := 0.0
		for _, b := range h.DB.BSSIDs {
			hist, trained := hists[name][b]
			o, heard := obs[b]
			switch {
			case trained && heard:
				ll += logf(hist.Prob(o))
			case trained && !heard:
				ll += logf(hist.Prob(h.FloorRSSI))
			case !trained && heard:
				ll += uniform
			}
		}
		candidates = append(candidates, Candidate{Name: name, Pos: h.DB.Entries[name].Pos, Score: ll})
	}
	rankCandidates(candidates)
	normalizePosterior(candidates)
	best := candidates[0]
	return Estimate{Pos: best.Pos, Name: best.Name, Score: best.Score, Candidates: candidates}, nil
}

func refKNN(k *KNN, obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	overlap := false
	for _, b := range k.DB.BSSIDs {
		if _, ok := obs[b]; ok {
			overlap = true
			break
		}
	}
	if !overlap {
		return Estimate{}, ErrNoOverlap
	}
	candidates := make([]Candidate, 0, k.DB.Len())
	for _, name := range k.DB.Names() {
		e := k.DB.Entries[name]
		d := k.SignalDistance(obs, e)
		candidates = append(candidates, Candidate{Name: name, Pos: e.Pos, Score: -d})
	}
	rankCandidates(candidates)
	kk := k.kVal()
	if kk > len(candidates) {
		kk = len(candidates)
	}
	top := candidates[:kk]
	var pos geom.Point
	if k.Weighted {
		var wsum float64
		for _, c := range top {
			w := 1 / (1e-6 - c.Score)
			pos = pos.Add(c.Pos.Scale(w))
			wsum += w
		}
		pos = pos.Scale(1 / wsum)
	} else {
		pts := make([]geom.Point, len(top))
		for i, c := range top {
			pts[i] = c.Pos
		}
		pos = geom.Centroid(pts)
	}
	name := ""
	if kk == 1 {
		name = top[0].Name
	}
	return Estimate{Pos: pos, Name: name, Score: top[0].Score, Candidates: candidates}, nil
}

func refSector(s *Sector, obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	overlap := false
	for _, b := range s.DB.BSSIDs {
		if _, ok := obs[b]; ok {
			overlap = true
			break
		}
	}
	if !overlap {
		return Estimate{}, ErrNoOverlap
	}
	frac := s.AudibleFraction
	if frac <= 0 {
		frac = 0.5
	}
	codes := make(map[string]uint64, s.DB.Len())
	for name, e := range s.DB.Entries {
		maxN := 0
		for _, st := range e.PerAP {
			if st.N > maxN {
				maxN = st.N
			}
		}
		var code uint64
		for i, b := range s.DB.BSSIDs {
			if i >= 64 {
				break
			}
			st, ok := e.PerAP[b]
			if !ok {
				continue
			}
			if maxN == 0 || float64(st.N) >= frac*float64(maxN) {
				code |= 1 << uint(i)
			}
		}
		codes[name] = code
	}
	var observed uint64
	for i, b := range s.DB.BSSIDs {
		if i >= 64 {
			break
		}
		if _, ok := obs[b]; ok {
			observed |= 1 << uint(i)
		}
	}
	candidates := make([]Candidate, 0, s.DB.Len())
	best := 1 << 30
	for _, name := range s.DB.Names() {
		d := hamming(observed, codes[name])
		if d < best {
			best = d
		}
		candidates = append(candidates, Candidate{
			Name: name, Pos: s.DB.Entries[name].Pos, Score: -float64(d),
		})
	}
	rankCandidates(candidates)
	var winners []Candidate
	for _, c := range candidates {
		if int(-c.Score) == best {
			winners = append(winners, c)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i].Name < winners[j].Name })
	var x, y float64
	for _, c := range winners {
		x += c.Pos.X
		y += c.Pos.Y
	}
	n := float64(len(winners))
	est := Estimate{Score: -float64(best), Candidates: candidates}
	est.Pos.X, est.Pos.Y = x/n, y/n
	if len(winners) == 1 {
		est.Name = winners[0].Name
		est.Pos = winners[0].Pos
	}
	return est, nil
}

// --- comparison helpers ---

// scoreClose allows last-ulp drift: the compiled path accumulates the
// same terms from a precomputed baseline, so sums differ only by
// floating-point association.
func scoreClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func compareEstimates(t *testing.T, tag string, got Estimate, gotErr error, want Estimate, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && gotErr != wantErr) {
		t.Fatalf("%s: error mismatch: compiled %v, reference %v", tag, gotErr, wantErr)
	}
	if wantErr != nil {
		return
	}
	if got.Name != want.Name {
		t.Fatalf("%s: Name = %q, reference %q", tag, got.Name, want.Name)
	}
	if got.Pos.Dist(want.Pos) > 1e-9 {
		t.Fatalf("%s: Pos = %v, reference %v", tag, got.Pos, want.Pos)
	}
	if !scoreClose(got.Score, want.Score) {
		t.Fatalf("%s: Score = %v, reference %v", tag, got.Score, want.Score)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%s: %d candidates, reference %d", tag, len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		g, w := got.Candidates[i], want.Candidates[i]
		if g.Name != w.Name {
			t.Fatalf("%s: candidate %d = %q, reference %q", tag, i, g.Name, w.Name)
		}
		if g.Pos != w.Pos {
			t.Fatalf("%s: candidate %d pos = %v, reference %v", tag, i, g.Pos, w.Pos)
		}
		if !scoreClose(g.Score, w.Score) {
			t.Fatalf("%s: candidate %d score = %v, reference %v", tag, i, g.Score, w.Score)
		}
	}
}

// TestCompiledMatchesMapBased is the equivalence property: over
// randomized databases and observations, every algorithm must return
// identical estimates through the compiled matrices and through the
// original map walk.
func TestCompiledMatchesMapBased(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nEntries := 4 + rng.Intn(36)
		nAPs := 3 + rng.Intn(18)
		db := randomTrainDB(rng, nEntries, nAPs, 0.4+rng.Float64()*0.5)
		if len(db.BSSIDs) == 0 {
			continue
		}

		ml := NewMaxLikelihood(db)
		mlExp := NewMaxLikelihood(db)
		mlExp.ExpectedPosition = true
		mlStrict := NewMaxLikelihood(db)
		mlStrict.MinOverlap = 2
		hist := NewHistogram(db)
		histCoarse := &Histogram{DB: db, Bins: 10, RangeLo: -110, RangeHi: -20, FloorRSSI: -92}
		nnss := NewKNN(db, 1)
		knn := NewKNN(db, 4)
		wknn := &KNN{DB: db, K: 3, Weighted: true, FloorRSSI: -95}
		sec := NewSector(db)
		secLoose := &Sector{DB: db, AudibleFraction: 0.1}

		for trial := 0; trial < 12; trial++ {
			obs := randomObs(rng, db, 0.1+rng.Float64()*0.8)
			if len(obs) == 0 {
				continue
			}
			tag := func(algo string) string {
				return fmt.Sprintf("seed %d trial %d %s", seed, trial, algo)
			}

			est, err := ml.Locate(obs)
			want, wantErr := refMaxLikelihood(ml, obs)
			compareEstimates(t, tag("ml"), est, err, want, wantErr)

			est, err = mlExp.Locate(obs)
			want, wantErr = refMaxLikelihood(mlExp, obs)
			compareEstimates(t, tag("ml-expected"), est, err, want, wantErr)

			est, err = mlStrict.Locate(obs)
			want, wantErr = refMaxLikelihood(mlStrict, obs)
			compareEstimates(t, tag("ml-minoverlap"), est, err, want, wantErr)

			est, err = hist.Locate(obs)
			want, wantErr = refHistogram(hist, obs)
			compareEstimates(t, tag("histogram"), est, err, want, wantErr)

			est, err = histCoarse.Locate(obs)
			want, wantErr = refHistogram(histCoarse, obs)
			compareEstimates(t, tag("histogram-coarse"), est, err, want, wantErr)

			est, err = nnss.Locate(obs)
			want, wantErr = refKNN(nnss, obs)
			compareEstimates(t, tag("nnss"), est, err, want, wantErr)

			est, err = knn.Locate(obs)
			want, wantErr = refKNN(knn, obs)
			compareEstimates(t, tag("knn"), est, err, want, wantErr)

			est, err = wknn.Locate(obs)
			want, wantErr = refKNN(wknn, obs)
			compareEstimates(t, tag("wknn"), est, err, want, wantErr)

			est, err = sec.Locate(obs)
			want, wantErr = refSector(sec, obs)
			compareEstimates(t, tag("sector"), est, err, want, wantErr)

			est, err = secLoose.Locate(obs)
			want, wantErr = refSector(secLoose, obs)
			compareEstimates(t, tag("sector-loose"), est, err, want, wantErr)
		}
	}
}

// compareBitIdentical demands exact equality — no tolerance. The
// sharded scan computes each entry from the same precomputed baseline
// with the same operation order as the single-thread scan; only the
// assignment of entries to goroutines differs, so every float must
// match to the last bit.
func compareBitIdentical(t *testing.T, tag string, got Estimate, gotErr error, want Estimate, wantErr error) {
	t.Helper()
	if gotErr != wantErr {
		t.Fatalf("%s: error mismatch: sharded %v, single-thread %v", tag, gotErr, wantErr)
	}
	if wantErr != nil {
		return
	}
	if got.Name != want.Name || got.Pos != want.Pos || got.Score != want.Score {
		t.Fatalf("%s: estimate (%q, %v, %v), single-thread (%q, %v, %v)",
			tag, got.Name, got.Pos, got.Score, want.Name, want.Pos, want.Score)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%s: %d candidates, single-thread %d", tag, len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		if got.Candidates[i] != want.Candidates[i] {
			t.Fatalf("%s: candidate %d = %+v, single-thread %+v",
				tag, i, got.Candidates[i], want.Candidates[i])
		}
	}
}

// TestShardedMatchesSingleThread is the sharding equivalence property:
// over randomized databases, forcing the scan through the worker pool
// must return bit-identical estimates — best entry, position, score
// and full candidate ranking — to the single-thread compiled path, for
// every scanner wired through ShardedScorer.
func TestShardedMatchesSingleThread(t *testing.T) {
	single := &ShardedScorer{Shards: 1}
	forced := &ShardedScorer{Shards: 5, Cutover: 1}
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nEntries := 50 + rng.Intn(400)
		nAPs := 3 + rng.Intn(20)
		db := randomTrainDB(rng, nEntries, nAPs, 0.3+rng.Float64()*0.6)
		if len(db.BSSIDs) == 0 {
			continue
		}

		type pair struct {
			name            string
			sharded, serial Locator
		}
		mlS := NewMaxLikelihood(db)
		mlS.Sharding = forced
		ml1 := NewMaxLikelihood(db)
		ml1.Sharding = single
		histS := NewHistogram(db)
		histS.Sharding = forced
		hist1 := NewHistogram(db)
		hist1.Sharding = single
		knnS := NewKNN(db, 4)
		knnS.Sharding = forced
		knn1 := NewKNN(db, 4)
		knn1.Sharding = single
		wknnS := &KNN{DB: db, K: 3, Weighted: true, FloorRSSI: -95, Sharding: forced}
		wknn1 := &KNN{DB: db, K: 3, Weighted: true, FloorRSSI: -95, Sharding: single}
		pairs := []pair{
			{"ml", mlS, ml1},
			{"histogram", histS, hist1},
			{"knn", knnS, knn1},
			{"wknn", wknnS, wknn1},
		}

		for trial := 0; trial < 8; trial++ {
			obs := randomObs(rng, db, 0.1+rng.Float64()*0.8)
			if len(obs) == 0 {
				continue
			}
			for _, p := range pairs {
				got, gotErr := p.sharded.Locate(obs)
				want, wantErr := p.serial.Locate(obs)
				tag := fmt.Sprintf("seed %d trial %d %s", seed, trial, p.name)
				compareBitIdentical(t, tag, got, gotErr, want, wantErr)
			}
		}
	}
}

// TestShardedConcurrentLocates hammers one sharded locator from many
// goroutines — the serving shape where batch fan-out and shard fan-out
// share the pool — and checks every answer against the single-thread
// path. Run under -race in CI.
func TestShardedConcurrentLocates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := randomTrainDB(rng, 120, 10, 0.6)
	ml := NewMaxLikelihood(db)
	ml.Sharding = &ShardedScorer{Shards: 4, Cutover: 1}
	serial := NewMaxLikelihood(db)
	serial.Sharding = &ShardedScorer{Shards: 1}

	type job struct {
		obs  Observation
		want Estimate
	}
	var jobs []job
	for len(jobs) < 24 {
		obs := randomObs(rng, db, 0.7)
		if len(obs) == 0 {
			continue
		}
		want, err := serial.Locate(obs)
		if err != nil {
			continue
		}
		jobs = append(jobs, job{obs, want})
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for rep := 0; rep < 8; rep++ {
				j := jobs[(g+rep)%len(jobs)]
				got, err := ml.Locate(j.obs)
				if err != nil {
					done <- err
					return
				}
				if got.Name != j.want.Name || got.Score != j.want.Score {
					done <- fmt.Errorf("goroutine %d: (%q, %v) want (%q, %v)",
						g, got.Name, got.Score, j.want.Name, j.want.Score)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompiledNoOverlapParity pins the error paths: observations with
// only unknown BSSIDs fail identically through both paths.
func TestCompiledNoOverlapParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := randomTrainDB(rng, 8, 6, 0.8)
	obs := Observation{"gh:os:t1": -50, "gh:os:t2": -60}
	for _, loc := range []Locator{NewMaxLikelihood(db), NewHistogram(db), NewKNN(db, 3), NewSector(db)} {
		if _, err := loc.Locate(obs); err != ErrNoOverlap {
			t.Errorf("%s: err = %v, want ErrNoOverlap", loc.Name(), err)
		}
	}
}

// TestWarmIsIdempotentAndConcurrent drives Warm and Locate from many
// goroutines at once; under -race this proves the sync.Once caches
// replaced the old "prime single-threaded first" contract.
func TestWarmIsIdempotentAndConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomTrainDB(rng, 12, 8, 0.7)
	obs := randomObs(rng, db, 0.9)
	for _, loc := range []Locator{NewMaxLikelihood(db), NewHistogram(db), NewKNN(db, 3), NewSector(db)} {
		w := loc.(Warmer)
		done := make(chan error, 16)
		for g := 0; g < 16; g++ {
			go func() {
				if err := w.Warm(); err != nil {
					done <- err
					return
				}
				_, err := loc.Locate(obs)
				done <- err
			}()
		}
		for g := 0; g < 16; g++ {
			if err := <-done; err != nil {
				t.Fatalf("%s: %v", loc.Name(), err)
			}
		}
	}
}
