package localize

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/rf"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// houseAPs places four APs at the corners of the paper's 50×40 ft
// house.
func houseAPs() []rf.AP {
	return []rf.AP{
		{BSSID: "00:02:2d:00:00:0a", SSID: "house", Pos: geom.Pt(0, 0), TxPower: -30, Channel: 1},
		{BSSID: "00:02:2d:00:00:0b", SSID: "house", Pos: geom.Pt(50, 0), TxPower: -30, Channel: 6},
		{BSSID: "00:02:2d:00:00:0c", SSID: "house", Pos: geom.Pt(50, 40), TxPower: -30, Channel: 11},
		{BSSID: "00:02:2d:00:00:0d", SSID: "house", Pos: geom.Pt(0, 40), TxPower: -30, Channel: 1},
	}
}

func apPositions(aps []rf.AP) map[string]geom.Point {
	m := make(map[string]geom.Point, len(aps))
	for _, ap := range aps {
		m[ap.BSSID] = ap.Pos
	}
	return m
}

// buildDB trains a database on the paper's 10-ft grid using the given
// environment: samplesPerPoint scans at each of the 24 interior+edge
// grid points.
func buildDB(t *testing.T, env *rf.Environment, samplesPerPoint int, seed int64) *trainingdb.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coll := &wiscan.Collection{Files: make(map[string]*wiscan.File)}
	lm := locmap.New()
	for gx := 0; gx <= 5; gx++ {
		for gy := 0; gy <= 4; gy++ {
			p := geom.Pt(float64(gx*10), float64(gy*10))
			name := fmt.Sprintf("t%d-%d", gx, gy)
			if err := lm.Add(name, p); err != nil {
				t.Fatal(err)
			}
			f := &wiscan.File{Location: name}
			for s := 0; s < samplesPerPoint; s++ {
				for _, r := range env.Scan(p, rng) {
					f.Records = append(f.Records, wiscan.Record{
						TimeMillis: int64(s+1) * 1000,
						BSSID:      r.BSSID,
						SSID:       r.SSID,
						Channel:    r.Channel,
						RSSI:       r.RSSI,
						Noise:      r.Noise,
					})
				}
			}
			coll.Files[name] = f
		}
	}
	db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func quietEnv(t *testing.T) *rf.Environment {
	t.Helper()
	env, err := rf.NewEnvironment(houseAPs(), nil, rf.Config{
		ShadowSigma: 0.001, FastSigma: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func noisyEnv(t *testing.T) *rf.Environment {
	t.Helper()
	env, err := rf.NewEnvironment(houseAPs(), nil, rf.Config{
		ShadowSigma: 3.5, FastSigma: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// observe builds an averaged Observation from n scans at p.
func observe(env *rf.Environment, p geom.Point, n int, rng *rand.Rand) Observation {
	var recs []wiscan.Record
	for s := 0; s < n; s++ {
		for _, r := range env.Scan(p, rng) {
			recs = append(recs, wiscan.Record{
				TimeMillis: int64(s+1) * 1000, BSSID: r.BSSID, RSSI: r.RSSI,
			})
		}
	}
	return ObservationFromRecords(recs)
}

func TestObservationFromRecords(t *testing.T) {
	recs := []wiscan.Record{
		{TimeMillis: 1, BSSID: "a", RSSI: -60},
		{TimeMillis: 2, BSSID: "a", RSSI: -62},
		{TimeMillis: 1, BSSID: "b", RSSI: -75},
	}
	obs := ObservationFromRecords(recs)
	if len(obs) != 2 {
		t.Fatalf("len = %d", len(obs))
	}
	if obs["a"] != -61 || obs["b"] != -75 {
		t.Errorf("obs = %v", obs)
	}
	if got := obs.BSSIDs(); got[0] != "a" || got[1] != "b" {
		t.Errorf("BSSIDs = %v", got)
	}
}

func TestMaxLikelihoodRecoverTrainingPoints(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 20, 1)
	ml := NewMaxLikelihood(db)
	rng := rand.New(rand.NewSource(42))
	// Observing fresh samples at each training point must return that
	// point in a quiet environment.
	correct := 0
	total := 0
	for _, name := range db.Names() {
		e := db.Entries[name]
		obs := observe(env, e.Pos, 10, rng)
		est, err := ml.Locate(obs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total++
		if est.Name == name {
			correct++
		}
	}
	if correct < total*9/10 {
		t.Errorf("recovered %d/%d training points in a quiet environment", correct, total)
	}
}

func TestMaxLikelihoodCandidatesRanked(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 10, 1)
	ml := NewMaxLikelihood(db)
	rng := rand.New(rand.NewSource(7))
	est, err := ml.Locate(observe(env, geom.Pt(22, 18), 5, rng))
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Candidates) != db.Len() {
		t.Fatalf("candidates = %d, want %d", len(est.Candidates), db.Len())
	}
	for i := 1; i < len(est.Candidates); i++ {
		if est.Candidates[i].Score > est.Candidates[i-1].Score {
			t.Fatal("candidates not ranked")
		}
	}
	if est.Candidates[0].Name != est.Name || est.Candidates[0].Score != est.Score {
		t.Error("estimate does not match top candidate")
	}
}

func TestMaxLikelihoodErrors(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 5, 1)
	ml := NewMaxLikelihood(db)
	if _, err := ml.Locate(Observation{}); err != ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	if _, err := ml.Locate(Observation{"un:kn:ow:n": -60}); err != ErrNoOverlap {
		t.Errorf("no overlap: %v", err)
	}
	if _, err := ml.Locate(Observation{"00:02:2d:00:00:0a": 30}); err == nil {
		t.Error("positive RSSI accepted")
	}
	empty := &MaxLikelihood{DB: &trainingdb.DB{Entries: map[string]*trainingdb.Entry{}}}
	if _, err := empty.Locate(Observation{"a": -60}); err == nil {
		t.Error("empty DB accepted")
	}
	// MinOverlap enforcement.
	strict := NewMaxLikelihood(db)
	strict.MinOverlap = 3
	obs := Observation{"00:02:2d:00:00:0a": -60, "zz": -70}
	if _, err := strict.Locate(obs); err != ErrNoOverlap {
		t.Errorf("MinOverlap: %v", err)
	}
}

func TestKNNVariants(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 10, 1)
	rng := rand.New(rand.NewSource(5))
	target := geom.Pt(20, 20) // exactly training point t2-2
	obs := observe(env, target, 10, rng)

	nn := NewKNN(db, 1)
	if nn.Name() != "nnss" {
		t.Errorf("Name = %q", nn.Name())
	}
	est, err := nn.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if est.Name != "t2-2" {
		t.Errorf("NN picked %q", est.Name)
	}
	if est.Pos != target {
		t.Errorf("NN pos = %v", est.Pos)
	}

	k3 := NewKNN(db, 3)
	if k3.Name() != "knn" {
		t.Errorf("Name = %q", k3.Name())
	}
	est3, err := k3.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if est3.Name != "" {
		t.Errorf("k=3 should not pick a single name, got %q", est3.Name)
	}
	if est3.Pos.Dist(target) > 15 {
		t.Errorf("k=3 pos = %v, too far from %v", est3.Pos, target)
	}

	wk := &KNN{DB: db, K: 3, Weighted: true, FloorRSSI: -95}
	if wk.Name() != "wknn" {
		t.Errorf("Name = %q", wk.Name())
	}
	estw, err := wk.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if estw.Pos.Dist(target) > 15 {
		t.Errorf("weighted pos = %v", estw.Pos)
	}
	// Weighted estimate must land near the unweighted one here; the
	// inverse-distance weights only redistribute within the same K
	// neighbours.
	if estw.Pos.Dist(est3.Pos) > 10 {
		t.Errorf("weighted %v far from unweighted %v", estw.Pos, est3.Pos)
	}
}

func TestKNNKLargerThanDB(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 5, 1)
	k := NewKNN(db, 10000)
	rng := rand.New(rand.NewSource(5))
	est, err := k.Locate(observe(env, geom.Pt(25, 20), 5, rng))
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to the full grid: estimate is the grid centroid.
	if est.Pos.Dist(geom.Pt(25, 20)) > 1e-9 {
		t.Errorf("full-grid centroid = %v", est.Pos)
	}
}

func TestKNNErrors(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 5, 1)
	k := NewKNN(db, 1)
	if _, err := k.Locate(Observation{}); err != ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	if _, err := k.Locate(Observation{"zz": -50}); err != ErrNoOverlap {
		t.Errorf("no overlap: %v", err)
	}
}

func TestHistogramLocalizer(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 30, 1)
	h := NewHistogram(db)
	if h.Name() != "probabilistic-histogram" {
		t.Errorf("Name = %q", h.Name())
	}
	rng := rand.New(rand.NewSource(9))
	correct := 0
	total := 0
	for _, name := range db.Names() {
		e := db.Entries[name]
		est, err := h.Locate(observe(env, e.Pos, 10, rng))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total++
		if est.Name == name {
			correct++
		}
	}
	if correct < total*8/10 {
		t.Errorf("histogram recovered %d/%d", correct, total)
	}
}

func TestHistogramPosteriorSumsToOne(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 10, 1)
	h := NewHistogram(db)
	rng := rand.New(rand.NewSource(10))
	est, err := h.Locate(observe(env, geom.Pt(15, 25), 5, rng))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range est.Candidates {
		if c.Score < 0 || c.Score > 1 {
			t.Fatalf("posterior %v out of [0,1]", c.Score)
		}
		sum += c.Score
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posterior sums to %v", sum)
	}
}

func TestHistogramErrors(t *testing.T) {
	env := quietEnv(t)
	db := buildDB(t, env, 5, 1)
	h := NewHistogram(db)
	if _, err := h.Locate(Observation{}); err != ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	if _, err := h.Locate(Observation{"zz": -50}); err != ErrNoOverlap {
		t.Errorf("no overlap: %v", err)
	}
}
