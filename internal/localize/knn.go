package localize

import (
	"errors"
	"math"

	"indoorloc/internal/geom"
	"indoorloc/internal/trainingdb"
)

// KNN is the RADAR baseline: nearest neighbour(s) in signal space.
// The observation vector is compared with each training point's mean
// vector by Euclidean distance in dB; the estimate is the centroid of
// the K closest training points (K=1 is classic NNSS). Weighted mode
// scales each neighbour by the inverse of its signal distance.
type KNN struct {
	DB *trainingdb.DB
	// K is the neighbour count; zero means 1.
	K int
	// Weighted selects inverse-distance weighting of the K neighbours.
	Weighted bool
	// FloorRSSI substitutes for APs missing on either side. Typical -95.
	FloorRSSI float64
}

// NewKNN returns a K-nearest-neighbour localizer.
func NewKNN(db *trainingdb.DB, k int) *KNN {
	return &KNN{DB: db, K: k, FloorRSSI: -95}
}

// Name implements Locator.
func (k *KNN) Name() string {
	if k.kVal() == 1 {
		return "nnss"
	}
	if k.Weighted {
		return "wknn"
	}
	return "knn"
}

func (k *KNN) kVal() int {
	if k.K <= 0 {
		return 1
	}
	return k.K
}

// SignalDistance returns the Euclidean distance in dB between an
// observation and a training entry over the database's AP universe,
// substituting floor for missing readings.
func (k *KNN) SignalDistance(obs Observation, e *trainingdb.Entry) float64 {
	sum := 0.0
	for _, b := range k.DB.BSSIDs {
		var trainVal, obsVal float64
		if s, ok := e.PerAP[b]; ok {
			trainVal = s.Mean
		} else {
			trainVal = k.FloorRSSI
		}
		if v, ok := obs[b]; ok {
			obsVal = v
		} else {
			obsVal = k.FloorRSSI
		}
		d := obsVal - trainVal
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Locate implements Locator.
func (k *KNN) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if k.DB == nil || k.DB.Len() == 0 {
		return Estimate{}, errors.New("localize: KNN has no training database")
	}
	overlap := false
	for _, b := range k.DB.BSSIDs {
		if _, ok := obs[b]; ok {
			overlap = true
			break
		}
	}
	if !overlap {
		return Estimate{}, ErrNoOverlap
	}
	candidates := make([]Candidate, 0, k.DB.Len())
	for _, name := range k.DB.Names() {
		e := k.DB.Entries[name]
		d := k.SignalDistance(obs, e)
		candidates = append(candidates, Candidate{Name: name, Pos: e.Pos, Score: -d})
	}
	rankCandidates(candidates)
	kk := k.kVal()
	if kk > len(candidates) {
		kk = len(candidates)
	}
	top := candidates[:kk]
	var pos geom.Point
	if k.Weighted {
		var wsum float64
		for _, c := range top {
			w := 1 / (1e-6 - c.Score) // score is -distance
			pos = pos.Add(c.Pos.Scale(w))
			wsum += w
		}
		pos = pos.Scale(1 / wsum)
	} else {
		pts := make([]geom.Point, len(top))
		for i, c := range top {
			pts[i] = c.Pos
		}
		pos = geom.Centroid(pts)
	}
	name := ""
	if kk == 1 {
		name = top[0].Name
	}
	return Estimate{
		Pos:        pos,
		Name:       name,
		Score:      top[0].Score,
		Candidates: candidates,
	}, nil
}
