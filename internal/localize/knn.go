package localize

import (
	"errors"
	"math"
	"sync"

	"indoorloc/internal/geom"
	"indoorloc/internal/trainingdb"
)

// KNN is the RADAR baseline: nearest neighbour(s) in signal space.
// The observation vector is compared with each training point's mean
// vector by Euclidean distance in dB; the estimate is the centroid of
// the K closest training points (K=1 is classic NNSS). Weighted mode
// scales each neighbour by the inverse of its signal distance.
//
// Distances are computed against a compiled radio map built on first
// use: each entry's squared distance starts from the precomputed
// all-at-floor baseline and only the heard columns are corrected. The
// database and the K/Floor configuration must not change after the
// first Locate or Warm call.
type KNN struct {
	DB *trainingdb.DB
	// K is the neighbour count; zero means 1.
	K int
	// Weighted selects inverse-distance weighting of the K neighbours.
	Weighted bool
	// FloorRSSI substitutes for APs missing on either side. Typical -95.
	FloorRSSI float64
	// Sharding tunes the large-map scan fan-out, as in MaxLikelihood.
	Sharding *ShardedScorer
	// TopK bounds the ranked candidate list, as in MaxLikelihood. The
	// effective bound never drops below K — the centroid always sees
	// its neighbours.
	TopK int
	// Quantize compiles the radio map to int16 matrices (format v2), as
	// in MaxLikelihood.
	Quantize bool
	// Precompiled, when set, is served directly instead of compiling
	// DB, as in MaxLikelihood. SignalDistance still walks DB and is
	// unavailable without one.
	Precompiled *trainingdb.Compiled

	compileOnce sync.Once
	compiled    *trainingdb.Compiled
}

// NewKNN returns a K-nearest-neighbour localizer.
func NewKNN(db *trainingdb.DB, k int) *KNN {
	return &KNN{DB: db, K: k, FloorRSSI: -95}
}

// Name implements Locator.
func (k *KNN) Name() string {
	if k.kVal() == 1 {
		return "nnss"
	}
	if k.Weighted {
		return "wknn"
	}
	return "knn"
}

func (k *KNN) kVal() int {
	if k.K <= 0 {
		return 1
	}
	return k.K
}

// Warm implements Warmer: it compiles the radio map eagerly (or adopts
// Precompiled), quantizing it when Quantize is set.
func (k *KNN) Warm() error {
	if k.Precompiled == nil && (k.DB == nil || k.DB.Len() == 0) {
		return errors.New("localize: KNN has no training database")
	}
	k.compileOnce.Do(func() {
		if k.Precompiled != nil {
			k.compiled = k.Precompiled
		} else {
			// The spread parameter is irrelevant to signal distances; only
			// the floor level matters here.
			k.compiled = k.DB.Compile(k.FloorRSSI, 4)
		}
		if k.Quantize {
			k.compiled.Quantize()
			k.compiled.ReleaseFloat64()
		}
	})
	return nil
}

// CompiledView implements CompiledSource.
func (k *KNN) CompiledView() *trainingdb.Compiled {
	if err := k.Warm(); err != nil {
		return nil
	}
	return k.compiled
}

// SignalDistance returns the Euclidean distance in dB between an
// observation and a training entry over the database's AP universe,
// substituting floor for missing readings. This is the map-walking
// reference definition; Locate computes the same distances against the
// compiled radio map.
func (k *KNN) SignalDistance(obs Observation, e *trainingdb.Entry) float64 {
	sum := 0.0
	for _, b := range k.DB.BSSIDs {
		var trainVal, obsVal float64
		if s, ok := e.PerAP[b]; ok {
			trainVal = s.Mean
		} else {
			trainVal = k.FloorRSSI
		}
		if v, ok := obs[b]; ok {
			obsVal = v
		} else {
			obsVal = k.FloorRSSI
		}
		d := obsVal - trainVal
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Locate implements Locator.
func (k *KNN) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if err := k.Warm(); err != nil {
		return Estimate{}, err
	}
	c := k.compiled
	sc := getScratch()
	defer putScratch(sc)
	sc.cols, sc.vals = c.Intern(obs, sc.cols[:0], sc.vals[:0])
	cols, vals := sc.cols, sc.vals
	if len(cols) == 0 {
		return Estimate{}, ErrNoOverlap
	}
	n := len(c.Names)
	topk := k.TopK
	if topk > 0 && topk < k.kVal() {
		topk = k.kVal() // the centroid needs at least K neighbours
	}
	var candidates []Candidate
	if topk > 0 && topk < n {
		candidates = sc.candidates(n)
	} else {
		topk = 0
		candidates = make([]Candidate, n)
	}
	quant := c.Quant != nil
	if k.Sharding.Parallel(n) {
		k.Sharding.Scan(n, func(lo, hi int) {
			if quant {
				k.scoreRangeQuant(c, cols, vals, candidates, lo, hi)
			} else {
				k.scoreRange(c, cols, vals, candidates, lo, hi)
			}
		})
	} else if quant {
		k.scoreRangeQuant(c, cols, vals, candidates, 0, n)
	} else {
		k.scoreRange(c, cols, vals, candidates, 0, n)
	}
	if topk > 0 {
		out := make([]Candidate, topk)
		copy(out, TopK(candidates, topk))
		candidates = out
	} else {
		rankCandidates(candidates)
	}
	kk := k.kVal()
	if kk > len(candidates) {
		kk = len(candidates)
	}
	top := candidates[:kk]
	var pos geom.Point
	if k.Weighted {
		var wsum float64
		for _, c := range top {
			w := 1 / (1e-6 - c.Score) // score is -distance
			pos = pos.Add(c.Pos.Scale(w))
			wsum += w
		}
		pos = pos.Scale(1 / wsum)
	} else {
		pts := make([]geom.Point, len(top))
		for i, c := range top {
			pts[i] = c.Pos
		}
		pos = geom.Centroid(pts)
	}
	name := ""
	if kk == 1 {
		name = top[0].Name
	}
	return Estimate{
		Pos:        pos,
		Name:       name,
		Score:      top[0].Score,
		Candidates: candidates,
	}, nil
}

// scoreRange computes the signal distances for entries [lo, hi). The
// baseline assumes every column reads the floor; each heard column
// replaces its floor term with the observed one. Mean holds the floor
// level for untrained cells, so one load covers both cases. Shard
// ranges are disjoint, so concurrent calls never race.
//
//loclint:hotpath
func (k *KNN) scoreRange(c *trainingdb.Compiled, cols []int32, vals []float64, candidates []Candidate, lo, hi int) {
	nAP := len(c.BSSIDs)
	for i := lo; i < hi; i++ {
		sum := c.SignalBase[i]
		base := i * nAP
		for h, j := range cols {
			t := c.Mean[base+int(j)]
			dv := vals[h] - t
			df := c.FloorRSSI - t
			sum += dv*dv - df*df
		}
		if sum < 0 {
			sum = 0 // guard the sqrt against rounding on near-exact matches
		}
		candidates[i] = Candidate{Name: c.Names[i], Pos: c.Pos[i], Score: -math.Sqrt(sum)}
	}
}

// scoreRangeQuant is scoreRange over the int16-quantized Mean matrix:
// same baseline+correction algebra with each visited mean dequantized
// through its column's affine factors, and the baseline taken from the
// quantized mirror so the subtraction stays exact. Accumulators are
// float64 throughout.
//
//loclint:hotpath
func (k *KNN) scoreRangeQuant(c *trainingdb.Compiled, cols []int32, vals []float64, candidates []Candidate, lo, hi int) {
	q := c.Quant
	nAP := len(c.BSSIDs)
	for i := lo; i < hi; i++ {
		sum := q.SignalBase[i]
		base := i * nAP
		for h, j := range cols {
			jj := int(j)
			t := q.MeanOff[jj] + q.MeanScale[jj]*float64(q.MeanQ[base+jj])
			dv := vals[h] - t
			df := c.FloorRSSI - t
			sum += dv*dv - df*df
		}
		if sum < 0 {
			sum = 0 // guard the sqrt against rounding on near-exact matches
		}
		candidates[i] = Candidate{Name: c.Names[i], Pos: c.Pos[i], Score: -math.Sqrt(sum)}
	}
}
