package localize

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestScanPartition checks that Scan visits every entry exactly once
// for a spread of sizes and shard counts, including shards > n and
// deliberately tiny cutovers.
func TestScanPartition(t *testing.T) {
	cases := []struct {
		n, shards, cutover int
	}{
		{0, 4, 1},
		{1, 4, 1},
		{5, 4, 1},
		{7, 16, 1},
		{64, 3, 1},
		{1000, 8, 1},
		{100, 4, 1000}, // below cutover: single direct call
		{100, 1, 1},    // one shard: single direct call
	}
	for _, c := range cases {
		s := &ShardedScorer{Shards: c.shards, Cutover: c.cutover}
		counts := make([]int32, c.n)
		var calls atomic.Int32
		s.Scan(c.n, func(lo, hi int) {
			calls.Add(1)
			if lo < 0 || hi > c.n || lo > hi {
				t.Errorf("n=%d shards=%d: bad range [%d, %d)", c.n, c.shards, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, got := range counts {
			if got != 1 {
				t.Fatalf("n=%d shards=%d cutover=%d: entry %d scored %d times",
					c.n, c.shards, c.cutover, i, got)
			}
		}
		if !s.Parallel(c.n) && c.n > 0 && calls.Load() != 1 {
			t.Errorf("n=%d shards=%d cutover=%d: single-thread path made %d calls",
				c.n, c.shards, c.cutover, calls.Load())
		}
	}
}

// TestScanNilScorerDefaults pins the nil-receiver contract: a nil
// *ShardedScorer scans with the package defaults.
func TestScanNilScorerDefaults(t *testing.T) {
	var s *ShardedScorer
	if s.Parallel(DefaultShardCutover - 1) {
		t.Error("nil scorer parallel below the default cutover")
	}
	n := DefaultShardCutover
	counts := make([]int32, n)
	s.Scan(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, got := range counts {
		if got != 1 {
			t.Fatalf("entry %d scored %d times", i, got)
		}
	}
}

// TestScanNested drives scans from inside pool workers and from many
// goroutines at once: the opportunistic-offload design must neither
// deadlock nor lose entries when the pool is saturated.
func TestScanNested(t *testing.T) {
	outer := &ShardedScorer{Shards: 4, Cutover: 1}
	inner := &ShardedScorer{Shards: 4, Cutover: 1}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				var total atomic.Int64
				outer.Scan(32, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						inner.Scan(16, func(ilo, ihi int) {
							total.Add(int64(ihi - ilo))
						})
					}
				})
				if got := total.Load(); got != 32*16 {
					t.Errorf("nested scan covered %d inner entries, want %d", got, 32*16)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBatchIntoMatchesSequential checks the streaming fan-out returns
// the same estimates and errors as the serial loop, in order.
func TestBatchIntoMatchesSequential(t *testing.T) {
	loc, obs := batchFixture(t)
	obs[3] = Observation{}                  // empty → error
	obs[11] = Observation{"gh:os:t": -50.0} // no overlap → error
	seq := Batch(loc, obs, 1)
	out := make([]BatchResult, len(obs))
	BatchInto(loc, obs, out)
	for i := range seq {
		if (seq[i].Err == nil) != (out[i].Err == nil) {
			t.Fatalf("obs %d: err %v vs %v", i, seq[i].Err, out[i].Err)
		}
		if seq[i].Err != nil {
			if seq[i].Err != out[i].Err {
				t.Fatalf("obs %d: err %v vs %v", i, seq[i].Err, out[i].Err)
			}
			continue
		}
		if seq[i].Estimate.Name != out[i].Estimate.Name ||
			seq[i].Estimate.Pos != out[i].Estimate.Pos ||
			seq[i].Estimate.Score != out[i].Estimate.Score {
			t.Fatalf("obs %d: %+v vs %+v", i, seq[i].Estimate, out[i].Estimate)
		}
	}
}

// TestBatchIntoDegenerate pins the edge cases: empty input is a no-op,
// a one-element batch runs inline, and an oversized out slice is left
// untouched beyond len(observations).
func TestBatchIntoDegenerate(t *testing.T) {
	loc, obs := batchFixture(t)
	BatchInto(loc, nil, nil) // must not panic
	out := make([]BatchResult, 4)
	BatchInto(loc, obs[:1], out)
	if out[0].Err != nil {
		t.Errorf("single observation failed: %v", out[0].Err)
	}
	if out[1].Err != nil || out[1].Estimate.Candidates != nil || out[1].Estimate.Name != "" {
		t.Error("BatchInto wrote past len(observations)")
	}
}

// TestBatchIntoShardedLocator runs the streaming batch over a locator
// whose own scans shard — the nesting the serving path exercises —
// under -race in CI.
func TestBatchIntoShardedLocator(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := randomTrainDB(rng, 40, 12, 0.6)
	ml := NewMaxLikelihood(db)
	ml.Sharding = &ShardedScorer{Shards: 4, Cutover: 1}
	var obs []Observation
	for len(obs) < 48 {
		o := randomObs(rng, db, 0.7)
		if len(o) > 0 {
			obs = append(obs, o)
		}
	}
	out := make([]BatchResult, len(obs))
	BatchInto(ml, obs, out)
	want := Batch(ml, obs, 1)
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("obs %d: %v", i, out[i].Err)
		}
		if out[i].Estimate.Name != want[i].Estimate.Name {
			t.Fatalf("obs %d: %q vs %q", i, out[i].Estimate.Name, want[i].Estimate.Name)
		}
	}
}
