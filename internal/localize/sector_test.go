package localize

import (
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/trainingdb"
)

// codedDB builds a database whose locations have distinct audible-AP
// codes: each location hears a different subset of four APs.
func codedDB() *trainingdb.DB {
	mk := func(name string, pos geom.Point, bssids ...string) *trainingdb.Entry {
		e := &trainingdb.Entry{Name: name, Pos: pos, PerAP: map[string]*trainingdb.APStats{}}
		for _, b := range bssids {
			e.PerAP[b] = &trainingdb.APStats{
				BSSID: b, N: 10, Mean: -60, StdDev: 2,
				Samples: []float64{-60, -60},
			}
		}
		return e
	}
	return &trainingdb.DB{
		Entries: map[string]*trainingdb.Entry{
			"nw": mk("nw", geom.Pt(0, 40), "ap0", "ap3"),
			"ne": mk("ne", geom.Pt(50, 40), "ap2", "ap3"),
			"sw": mk("sw", geom.Pt(0, 0), "ap0", "ap1"),
			"se": mk("se", geom.Pt(50, 0), "ap1", "ap2"),
		},
		BSSIDs: []string{"ap0", "ap1", "ap2", "ap3"},
	}
}

func TestSectorExactCode(t *testing.T) {
	s := NewSector(codedDB())
	if s.Name() != "sector-code" {
		t.Errorf("Name = %q", s.Name())
	}
	est, err := s.Locate(Observation{"ap0": -60, "ap1": -70})
	if err != nil {
		t.Fatal(err)
	}
	if est.Name != "sw" || est.Pos != geom.Pt(0, 0) {
		t.Errorf("estimate = %q %v", est.Name, est.Pos)
	}
	if est.Score != 0 {
		t.Errorf("exact match score = %v, want 0", est.Score)
	}
}

func TestSectorNearMiss(t *testing.T) {
	s := NewSector(codedDB())
	// Hears ap0 only: Hamming 1 from both "sw" (ap0,ap1) and "nw"
	// (ap0,ap3) — the estimate is their centroid, no single name.
	est, err := s.Locate(Observation{"ap0": -60})
	if err != nil {
		t.Fatal(err)
	}
	if est.Name != "" {
		t.Errorf("ambiguous code picked %q", est.Name)
	}
	want := geom.Pt(0, 20) // midpoint of (0,0) and (0,40)
	if !est.Pos.Equal(want, 1e-9) {
		t.Errorf("centroid = %v, want %v", est.Pos, want)
	}
	if est.Score != -1 {
		t.Errorf("score = %v, want -1", est.Score)
	}
}

func TestSectorCandidatesComplete(t *testing.T) {
	s := NewSector(codedDB())
	est, err := s.Locate(Observation{"ap2": -60, "ap3": -61})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Candidates) != 4 {
		t.Fatalf("%d candidates", len(est.Candidates))
	}
	if est.Candidates[0].Name != "ne" {
		t.Errorf("top candidate %q", est.Candidates[0].Name)
	}
	for i := 1; i < len(est.Candidates); i++ {
		if est.Candidates[i].Score > est.Candidates[i-1].Score {
			t.Fatal("candidates not ranked")
		}
	}
}

func TestSectorErrors(t *testing.T) {
	s := NewSector(codedDB())
	if _, err := s.Locate(Observation{}); err != ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	if _, err := s.Locate(Observation{"unknown": -50}); err != ErrNoOverlap {
		t.Errorf("no overlap: %v", err)
	}
	empty := &Sector{DB: &trainingdb.DB{Entries: map[string]*trainingdb.Entry{}}}
	if _, err := empty.Locate(Observation{"a": -60}); err == nil {
		t.Error("empty DB accepted")
	}
}

func TestSectorAudibleFraction(t *testing.T) {
	db := codedDB()
	// "sw" hears ap2 rarely: 1 sample vs 10 for its main APs.
	db.Entries["sw"].PerAP["ap2"] = &trainingdb.APStats{
		BSSID: "ap2", N: 1, Mean: -90, StdDev: 1, Samples: []float64{-90},
	}
	s := NewSector(db) // default fraction 0.5: the stray ap2 is excluded
	est, err := s.Locate(Observation{"ap0": -60, "ap1": -70})
	if err != nil {
		t.Fatal(err)
	}
	if est.Name != "sw" || est.Score != 0 {
		t.Errorf("rare AP polluted the code: %q score %v", est.Name, est.Score)
	}
	// With a tiny fraction the stray AP joins the code and the match is
	// no longer exact.
	loose := &Sector{DB: db, AudibleFraction: 0.01}
	est, err = loose.Locate(Observation{"ap0": -60, "ap1": -70})
	if err != nil {
		t.Fatal(err)
	}
	if est.Score == 0 && est.Name == "sw" {
		t.Error("fraction knob had no effect")
	}
}

func TestHamming(t *testing.T) {
	cases := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0b1011, 0b1011, 0},
		{0b1011, 0b0011, 1},
		{0, ^uint64(0), 64},
		{0b1010, 0b0101, 4},
	}
	for _, c := range cases {
		if got := hamming(c.a, c.b); got != c.want {
			t.Errorf("hamming(%b, %b) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
