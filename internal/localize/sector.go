package localize

import (
	"errors"
	"sort"

	"indoorloc/internal/trainingdb"
)

// Sector implements the identifying-code approach the paper surveys in
// §2.2: ignore signal strength entirely and use only *which* APs are
// audible. Training records each location's audible-AP set; at
// observation time "the set of visible broadcast tags forms an
// identifying code, which determines the location from a table of
// vertex-code pairings". Ties and near-misses are resolved by Hamming
// distance between the observed code and each location's code.
//
// The method needs codes to differ between locations, which in
// practice means either many APs or aggressive receiver floors; with
// the paper's four house-wide audible APs it degrades gracefully to
// "everything matches", making it a useful lower-bound baseline.
type Sector struct {
	DB *trainingdb.DB
	// AudibleFraction is the fraction of a location's training sweeps
	// in which an AP must appear to count as part of the location's
	// code. Zero means 0.5.
	AudibleFraction float64

	codes map[string]uint64 // cached per-entry codes as BSSID bitmasks
}

// NewSector returns a Sector localizer over the database.
func NewSector(db *trainingdb.DB) *Sector { return &Sector{DB: db} }

// Name implements Locator.
func (s *Sector) Name() string { return "sector-code" }

// code builds the observed bitmask over the database's AP universe.
func (s *Sector) observedCode(obs Observation) uint64 {
	var code uint64
	for i, b := range s.DB.BSSIDs {
		if i >= 64 {
			break // identifying codes beyond 64 APs are out of scope
		}
		if _, ok := obs[b]; ok {
			code |= 1 << uint(i)
		}
	}
	return code
}

// buildCodes derives each training location's code: an AP is in the
// code when it was heard in at least AudibleFraction of that
// location's sweeps (approximated by sample count relative to the
// location's busiest AP, since wi-scan records do not carry sweep
// counts explicitly).
func (s *Sector) buildCodes() {
	frac := s.AudibleFraction
	if frac <= 0 {
		frac = 0.5
	}
	s.codes = make(map[string]uint64, s.DB.Len())
	for name, e := range s.DB.Entries {
		maxN := 0
		for _, st := range e.PerAP {
			if st.N > maxN {
				maxN = st.N
			}
		}
		var code uint64
		for i, b := range s.DB.BSSIDs {
			if i >= 64 {
				break
			}
			st, ok := e.PerAP[b]
			if !ok {
				continue
			}
			if maxN == 0 || float64(st.N) >= frac*float64(maxN) {
				code |= 1 << uint(i)
			}
		}
		s.codes[name] = code
	}
}

// hamming counts differing bits.
func hamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Locate implements Locator. The estimate is the centroid of all
// locations whose codes are at the minimum Hamming distance from the
// observed code; when a single location attains the minimum its name
// is returned.
func (s *Sector) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if s.DB == nil || s.DB.Len() == 0 {
		return Estimate{}, errors.New("localize: Sector has no training database")
	}
	overlap := false
	for _, b := range s.DB.BSSIDs {
		if _, ok := obs[b]; ok {
			overlap = true
			break
		}
	}
	if !overlap {
		return Estimate{}, ErrNoOverlap
	}
	if s.codes == nil {
		s.buildCodes()
	}
	observed := s.observedCode(obs)
	candidates := make([]Candidate, 0, s.DB.Len())
	best := 1 << 30
	for _, name := range s.DB.Names() {
		d := hamming(observed, s.codes[name])
		if d < best {
			best = d
		}
		candidates = append(candidates, Candidate{
			Name:  name,
			Pos:   s.DB.Entries[name].Pos,
			Score: -float64(d),
		})
	}
	rankCandidates(candidates)
	// All minimum-distance locations vote; their centroid is the
	// estimate.
	var winners []Candidate
	for _, c := range candidates {
		if int(-c.Score) == best {
			winners = append(winners, c)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i].Name < winners[j].Name })
	var x, y float64
	for _, c := range winners {
		x += c.Pos.X
		y += c.Pos.Y
	}
	n := float64(len(winners))
	est := Estimate{
		Score:      -float64(best),
		Candidates: candidates,
	}
	est.Pos.X, est.Pos.Y = x/n, y/n
	if len(winners) == 1 {
		est.Name = winners[0].Name
		est.Pos = winners[0].Pos
	}
	return est, nil
}
