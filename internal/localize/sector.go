package localize

import (
	"errors"
	"sync"

	"indoorloc/internal/feq"
	"indoorloc/internal/trainingdb"
)

// Sector implements the identifying-code approach the paper surveys in
// §2.2: ignore signal strength entirely and use only *which* APs are
// audible. Training records each location's audible-AP set; at
// observation time "the set of visible broadcast tags forms an
// identifying code, which determines the location from a table of
// vertex-code pairings". Ties and near-misses are resolved by Hamming
// distance between the observed code and each location's code.
//
// The method needs codes to differ between locations, which in
// practice means either many APs or aggressive receiver floors; with
// the paper's four house-wide audible APs it degrades gracefully to
// "everything matches", making it a useful lower-bound baseline.
//
// Codes are derived from a compiled radio map on first use; the
// database and AudibleFraction must not change after the first Locate
// or Warm call.
type Sector struct {
	DB *trainingdb.DB
	// AudibleFraction is the fraction of a location's training sweeps
	// in which an AP must appear to count as part of the location's
	// code. Zero means 0.5.
	AudibleFraction float64
	// TopK bounds the ranked candidate list, as in MaxLikelihood. The
	// minimum-distance vote then runs over the retained candidates, so
	// a tie run wider than TopK votes with its k lexically smallest
	// members only.
	TopK int
	// Precompiled, when set, is served directly instead of compiling
	// DB (codes derive from the view's Trained/N matrices); DB may be
	// nil.
	Precompiled *trainingdb.Compiled

	warmOnce sync.Once
	compiled *trainingdb.Compiled
	codes    []uint64 // per-entry codes as BSSID-column bitmasks
}

// NewSector returns a Sector localizer over the database.
func NewSector(db *trainingdb.DB) *Sector { return &Sector{DB: db} }

// Name implements Locator.
func (s *Sector) Name() string { return "sector-code" }

// Warm implements Warmer: it compiles the radio map and derives the
// per-entry codes eagerly.
func (s *Sector) Warm() error {
	if s.Precompiled == nil && (s.DB == nil || s.DB.Len() == 0) {
		return errors.New("localize: Sector has no training database")
	}
	s.warmOnce.Do(func() {
		if s.Precompiled != nil {
			s.compiled = s.Precompiled
		} else {
			// The floor parameters only matter to likelihood scorers; codes
			// use sample counts alone.
			s.compiled = s.DB.Compile(-95, 4)
		}
		s.buildCodes()
	})
	return nil
}

// CompiledView implements CompiledSource.
func (s *Sector) CompiledView() *trainingdb.Compiled {
	if err := s.Warm(); err != nil {
		return nil
	}
	return s.compiled
}

// buildCodes derives each training location's code: an AP is in the
// code when it was heard in at least AudibleFraction of that
// location's sweeps (approximated by sample count relative to the
// location's busiest AP, since wi-scan records do not carry sweep
// counts explicitly).
func (s *Sector) buildCodes() {
	frac := s.AudibleFraction
	if frac <= 0 {
		frac = 0.5
	}
	c := s.compiled
	nAP := len(c.BSSIDs)
	s.codes = make([]uint64, len(c.Names))
	for i := range c.Names {
		base := i * nAP
		maxN := int32(0)
		for j := 0; j < nAP; j++ {
			if n := c.N[base+j]; n > maxN {
				maxN = n
			}
		}
		lim := nAP
		if lim > 64 {
			lim = 64 // identifying codes beyond 64 APs are out of scope
		}
		var code uint64
		for j := 0; j < lim; j++ {
			cell := base + j
			if !c.Trained[cell] {
				continue
			}
			if maxN == 0 || float64(c.N[cell]) >= frac*float64(maxN) {
				code |= 1 << uint(j)
			}
		}
		s.codes[i] = code
	}
}

// hamming counts differing bits.
func hamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Locate implements Locator. The estimate is the centroid of all
// locations whose codes are at the minimum Hamming distance from the
// observed code; when a single location attains the minimum its name
// is returned.
func (s *Sector) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if err := s.Warm(); err != nil {
		return Estimate{}, err
	}
	c := s.compiled
	sc := getScratch()
	defer putScratch(sc)
	sc.cols, sc.vals = c.Intern(obs, sc.cols[:0], sc.vals[:0])
	cols := sc.cols
	if len(cols) == 0 {
		return Estimate{}, ErrNoOverlap
	}
	var observed uint64
	for _, j := range cols {
		if j < 64 {
			observed |= 1 << uint(j)
		}
	}
	n := len(c.Names)
	topk := s.TopK
	var candidates []Candidate
	if topk > 0 && topk < n {
		candidates = sc.candidates(n)
	} else {
		topk = 0
		candidates = make([]Candidate, n)
	}
	for i := range c.Names {
		candidates[i] = Candidate{
			Name:  c.Names[i],
			Pos:   c.Pos[i],
			Score: -float64(hamming(observed, s.codes[i])),
		}
	}
	if topk > 0 {
		out := make([]Candidate, topk)
		copy(out, TopK(candidates, topk))
		candidates = out
	} else {
		rankCandidates(candidates)
	}
	// All minimum-distance locations vote; their centroid is the
	// estimate. After ranking they are exactly the leading run of equal
	// scores, already in name order.
	best := candidates[0].Score
	var x, y float64
	votes := 0
	for _, cand := range candidates {
		if !feq.Eq(cand.Score, best) {
			break
		}
		x += cand.Pos.X
		y += cand.Pos.Y
		votes++
	}
	est := Estimate{
		Score:      best,
		Candidates: candidates,
	}
	est.Pos.X, est.Pos.Y = x/float64(votes), y/float64(votes)
	if votes == 1 {
		est.Name = candidates[0].Name
		est.Pos = candidates[0].Pos
	}
	return est, nil
}
