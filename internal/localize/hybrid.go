package localize

import (
	"errors"
	"math"

	"indoorloc/internal/feq"
	"indoorloc/internal/trainingdb"
)

// Hybrid blends the two families the paper evaluates separately: the
// probabilistic method supplies a posterior over training points (and
// the symbolic answer); the geometric method supplies a continuous
// coordinate unconstrained by the grid. The blended position is
//
//	pos = w·posteriorMean + (1-w)·geometric
//
// with w rising toward 1 as the probabilistic posterior concentrates —
// when fingerprinting is confident, trust it; when it is torn between
// distant candidates, the circles break the tie.
type Hybrid struct {
	Prob *MaxLikelihood
	Geo  *Geometric
	// MinWeight floors the probabilistic share so a confident-looking
	// geometric fix cannot swamp the fingerprint entirely. Zero means
	// 0.3.
	MinWeight float64
}

// NewHybrid wires a hybrid over an already-fitted pair.
func NewHybrid(prob *MaxLikelihood, geo *Geometric) (*Hybrid, error) {
	if prob == nil || geo == nil {
		return nil, errors.New("localize: hybrid needs both localizers")
	}
	return &Hybrid{Prob: prob, Geo: geo}, nil
}

// Name implements Locator.
func (h *Hybrid) Name() string { return "hybrid" }

// Warm implements Warmer: it compiles the probabilistic side's radio
// map eagerly (the geometric side has no lazy caches).
func (h *Hybrid) Warm() error { return h.Prob.Warm() }

// CompiledView implements CompiledSource via the probabilistic side.
func (h *Hybrid) CompiledView() *trainingdb.Compiled { return h.Prob.CompiledView() }

// Locate implements Locator. Symbolic fields come from the
// probabilistic side; when the geometric side fails (too few APs) the
// probabilistic answer stands alone, and vice versa is an error
// (without fingerprints the hybrid has no posterior to blend).
func (h *Hybrid) Locate(obs Observation) (Estimate, error) {
	pEst, err := h.Prob.Locate(obs)
	if err != nil {
		return Estimate{}, err
	}
	gEst, gErr := h.Geo.Locate(obs)
	if gErr != nil {
		return pEst, nil
	}
	// Posterior concentration: the top candidate's share of the
	// posterior mass (1/n for a flat posterior, →1 when certain).
	w := topShare(pEst.Candidates)
	minW := h.MinWeight
	if minW <= 0 {
		minW = 0.3
	}
	if w < minW {
		w = minW
	}
	blended := posteriorMean(pEst.Candidates).Scale(w).Add(gEst.Pos.Scale(1 - w))
	out := pEst
	out.Pos = blended
	return out, nil
}

// topShare returns the posterior probability of the best candidate
// under a softmax of the (ranked, log-likelihood) scores.
func topShare(cs []Candidate) float64 {
	if len(cs) == 0 {
		return 1
	}
	max := cs[0].Score
	var sum float64
	for _, c := range cs {
		sum += expSafe(c.Score - max)
	}
	if feq.Zero(sum) {
		return 1
	}
	return 1 / sum // exp(max-max)=1 over the total
}

// expSafe guards exp against extreme negative inputs.
func expSafe(x float64) float64 {
	if x < -700 {
		return 0
	}
	return math.Exp(x)
}
