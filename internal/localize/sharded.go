package localize

import (
	"runtime"
	"sync"
)

// DefaultShardCutover is the entry count below which a scan stays on
// the calling goroutine. The per-shard dispatch cost (one channel
// handoff plus WaitGroup accounting) is on the order of a microsecond;
// below a few hundred entries the whole scan costs about the same, so
// splitting it would only add latency. The paper-house map (30 points)
// and the office wing (117) stay single-threaded; building-scale maps
// fan out.
const DefaultShardCutover = 256

// ShardedScorer fans one entry scan over row shards of the compiled
// radio map, executed by a bounded package-level worker pool sized to
// GOMAXPROCS. It is the level-1 throughput knob of the serving path:
// a single Locate over a building-scale map uses every core instead of
// one, while small maps keep the single-thread fast path.
//
// The zero value (and a nil pointer) is ready to use: one shard per
// CPU, DefaultShardCutover entries before a scan splits. Scoring
// shards never enqueue further work, and a scan that finds the pool
// saturated runs its shards inline, so nesting Scan under BatchInto —
// or under another Scan — cannot deadlock: offloading is strictly
// opportunistic.
//
// A ShardedScorer carries configuration only; it is safe for
// concurrent use and must not be mutated after its first Scan.
type ShardedScorer struct {
	// Shards is the number of row shards one scan splits into; ≤ 0
	// means one per CPU (GOMAXPROCS).
	Shards int
	// Cutover is the minimum entry count before a scan shards; ≤ 0
	// means DefaultShardCutover. Set 1 to force sharding (tests).
	Cutover int
}

// config resolves the effective shard count and cutover, tolerating a
// nil receiver.
func (s *ShardedScorer) config() (shards, cutover int) {
	if s != nil {
		shards, cutover = s.Shards, s.Cutover
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if cutover <= 0 {
		cutover = DefaultShardCutover
	}
	return shards, cutover
}

// Parallel reports whether a scan over n entries will shard. Scorers
// check it first and keep their zero-allocation direct call when it
// returns false, paying the closure capture only on the fan-out path.
func (s *ShardedScorer) Parallel(n int) bool {
	shards, cutover := s.config()
	return shards > 1 && n >= cutover
}

// Scan runs fn over the half-open entry ranges that partition [0, n).
// Below the cutover (or with one shard) that is a single direct call
// on the caller's goroutine; otherwise the ranges are offered to the
// worker pool, the caller executes the last shard itself, and Scan
// returns once every shard has run. fn must be safe for concurrent
// invocation on disjoint ranges; writes it makes are visible to the
// caller when Scan returns.
func (s *ShardedScorer) Scan(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	shards, _ := s.config()
	if !s.Parallel(n) {
		fn(0, n)
		return
	}
	if shards > n {
		shards = n
	}
	ensureScorePool()
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi >= n {
			// The caller always contributes the final shard, so progress
			// never depends on a pool worker being free.
			fn(lo, n)
			break
		}
		wg.Add(1)
		select {
		case scoreJobs <- scoreJob{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			// Pool saturated — the cores are already busy scoring, so
			// run the shard here instead of queueing behind them.
			fn(lo, hi)
			wg.Done()
		}
	}
	wg.Wait()
}

// scoreJob is one unit of pool work: run fn over [lo, hi) and check in.
type scoreJob struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	scorePoolOnce sync.Once
	scoreJobs     chan scoreJob
)

// ensureScorePool starts the package-level workers on first use. The
// channel is unbuffered on purpose: a handoff succeeds only when a
// worker is parked and ready, so "no worker free" degrades to inline
// execution at the submit site instead of queue buildup.
func ensureScorePool() {
	scorePoolOnce.Do(func() {
		scoreJobs = make(chan scoreJob)
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				for j := range scoreJobs {
					j.fn(j.lo, j.hi)
					j.wg.Done()
				}
			}()
		}
	})
}

// trySubmit offers one job to the pool without blocking; the caller
// runs it inline when no worker is free.
func trySubmit(j scoreJob) bool {
	select {
	case scoreJobs <- j:
		return true
	default:
		return false
	}
}
