// Package localize implements the location determination algorithms
// evaluated in the paper, plus the standard baselines they are
// measured against:
//
//   - MaxLikelihood — the paper's §5.1 probabilistic approach: per
//     ⟨training point, AP⟩ Gaussian likelihoods multiplied across APs,
//     returning the training point with the maximum product.
//   - Geometric — the paper's §5.2 approach: per-AP inverse-square
//     signal↔distance regression, pairwise circle intersections
//     P1..P4, and their median point.
//   - NearestNeighbor / KNN — RADAR's nearest neighbour(s) in signal
//     space.
//   - Histogram — Bayesian histogram matching over the raw training
//     samples (the paper's future-work "distribution of these values").
//
// Every localizer consumes an Observation (a BSSID→RSSI vector,
// typically averaged over a capture window, as the paper averages 1.5
// minutes of samples) and produces an Estimate.
package localize

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"

	"indoorloc/internal/geom"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// Observation is a signal-strength vector: mean RSSI in dBm keyed by
// BSSID.
type Observation map[string]float64

// ObservationFromRecords averages a capture window into an
// Observation, one mean per BSSID — the paper's working-phase
// pre-processing ("uses only the average signal strength value").
func ObservationFromRecords(recs []wiscan.Record) Observation {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, r := range recs {
		sums[r.BSSID] += float64(r.RSSI)
		counts[r.BSSID]++
	}
	obs := make(Observation, len(sums))
	for b, s := range sums {
		obs[b] = s / float64(counts[b])
	}
	return obs
}

// BSSIDs returns the observation's BSSIDs, sorted. It allocates the
// result; loops should use AppendBSSIDs with a reused buffer.
func (o Observation) BSSIDs() []string {
	return o.AppendBSSIDs(make([]string, 0, len(o)))
}

// AppendBSSIDs appends the observation's BSSIDs to dst, sorted, and
// returns the extended slice — the allocation-free form of BSSIDs for
// callers that hold a reusable buffer (pass dst[:0] to reuse).
func (o Observation) AppendBSSIDs(dst []string) []string {
	start := len(dst)
	for b := range o {
		dst = append(dst, b)
	}
	sort.Strings(dst[start:])
	return dst
}

// Candidate is one ranked hypothesis.
type Candidate struct {
	// Name is the training-location name; empty for coordinate-only
	// methods like the geometric approach.
	Name string
	Pos  geom.Point
	// Score is method-specific (log-likelihood, negative signal
	// distance, posterior probability); higher is better within one
	// estimate.
	Score float64
}

// Estimate is a localization result.
type Estimate struct {
	// Pos is the estimated position in plan-frame feet.
	Pos geom.Point
	// Name is the chosen training location for symbolic methods;
	// empty for coordinate-only methods.
	Name string
	// Score is the winning candidate's score.
	Score float64
	// Candidates ranks the hypotheses best-first, when the method
	// produces them.
	Candidates []Candidate
}

// Locator turns observations into location estimates — the working
// phase of the paper's two-phase architecture.
type Locator interface {
	// Locate estimates the position for one observation.
	Locate(obs Observation) (Estimate, error)
	// Name identifies the algorithm for registries and reports.
	Name() string
}

// Warmer is implemented by locators with lazily-built internal caches
// — compiled radio maps, histogram tables, identifying codes. Warm
// builds them eagerly so their cost lands at a chosen time (service
// startup) instead of on the first query; it is safe to call
// concurrently and more than once. Every cache is also built lazily on
// first Locate under sync.Once, so calling Warm is never required for
// correctness. A locator's database and configuration must not change
// after the first Warm or Locate call.
type Warmer interface {
	Warm() error
}

// CompiledSource is implemented by locators whose scoring runs against
// a compiled radio map. CompiledView warms the locator and returns the
// view it scores against — the artifact writers (ingest compactor,
// tdbtool) serialize exactly what serving reads, and nil when warming
// fails.
type CompiledSource interface {
	CompiledView() *trainingdb.Compiled
}

// Errors shared by the localizers.
var (
	// ErrNoOverlap means the observation shares no AP with the model.
	ErrNoOverlap = errors.New("localize: observation shares no AP with the training data")
	// ErrEmptyObservation means the observation has no readings.
	ErrEmptyObservation = errors.New("localize: empty observation")
	// ErrTooFewAPs means the method needs more APs than were heard.
	ErrTooFewAPs = errors.New("localize: too few APs heard")
)

// rankCandidates sorts best-first with a deterministic name tiebreak.
// slices.SortFunc keeps the hot path allocation-free where sort.Slice
// boxed the slice and built a reflect-based swapper.
func rankCandidates(cs []Candidate) {
	slices.SortFunc(cs, func(a, b Candidate) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		}
		return strings.Compare(a.Name, b.Name)
	})
}

// validateObservation applies the shared preconditions.
func validateObservation(obs Observation) error {
	if len(obs) == 0 {
		return ErrEmptyObservation
	}
	for b, v := range obs {
		if v > 0 || v < -120 {
			return fmt.Errorf("localize: observation %s has RSSI %v outside [-120, 0]", b, v)
		}
	}
	return nil
}
