package localize

import (
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/regress"
	"indoorloc/internal/trainingdb"
)

func paperBasis() regress.Basis {
	return regress.InversePowerBasis{Degree: 2, MinDist: 1}
}

func fitHouse(t *testing.T, quiet bool) (*Geometric, *rand.Rand, func(p geom.Point, n int) Observation) {
	t.Helper()
	var env = quietEnv(t)
	if !quiet {
		env = noisyEnv(t)
	}
	db := buildDB(t, env, 20, 1)
	g, err := FitGeometric(db, apPositions(houseAPs()), paperBasis())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	return g, rng, func(p geom.Point, n int) Observation {
		return observe(env, p, n, rng)
	}
}

func TestFitGeometricShape(t *testing.T) {
	g, _, _ := fitHouse(t, true)
	if len(g.APs) != 4 {
		t.Fatalf("fitted %d APs", len(g.APs))
	}
	for _, ap := range g.APs {
		if ap.Model == nil {
			t.Fatalf("%s has nil model", ap.BSSID)
		}
		// The fitted curve must decay: closer is stronger.
		near := ap.Model.Predict(5)
		far := ap.Model.Predict(50)
		if near <= far {
			t.Errorf("%s model not decaying: %v at 5 ft, %v at 50 ft", ap.BSSID, near, far)
		}
		if ap.MaxDist <= ap.MinDist {
			t.Errorf("%s bracket [%v, %v]", ap.BSSID, ap.MinDist, ap.MaxDist)
		}
	}
}

func TestGeometricQuietAccuracy(t *testing.T) {
	g, _, obsAt := fitHouse(t, true)
	if g.Name() != "geometric-median" {
		t.Errorf("Name = %q", g.Name())
	}
	// In a near-noise-free environment the paper's method should land
	// within a few feet anywhere inside the house.
	for _, target := range []geom.Point{
		geom.Pt(25, 20), geom.Pt(10, 10), geom.Pt(40, 30), geom.Pt(15, 28),
	} {
		est, err := g.Locate(obsAt(target, 10))
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		if d := est.Pos.Dist(target); d > 6 {
			t.Errorf("%v: error %.1f ft", target, d)
		}
	}
}

func TestGeometricCombiners(t *testing.T) {
	g, _, obsAt := fitHouse(t, true)
	target := geom.Pt(20, 25)
	obs := obsAt(target, 10)
	for _, comb := range []Combiner{CombineMedian, CombineCentroid, CombineGeoMedian, CombineLeastSquares} {
		g.Combine = comb
		est, err := g.Locate(obs)
		if err != nil {
			t.Fatalf("%v: %v", comb, err)
		}
		if d := est.Pos.Dist(target); d > 8 {
			t.Errorf("%v: error %.1f ft", comb, d)
		}
	}
}

func TestCombinerString(t *testing.T) {
	cases := map[Combiner]string{
		CombineMedian:       "median",
		CombineCentroid:     "centroid",
		CombineGeoMedian:    "geometric-median",
		CombineLeastSquares: "least-squares",
		Combiner(99):        "combiner(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestGeometricErrors(t *testing.T) {
	g, _, _ := fitHouse(t, true)
	if _, err := g.Locate(Observation{}); err != ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	if _, err := g.Locate(Observation{"zz": -50}); err != ErrNoOverlap {
		t.Errorf("no overlap: %v", err)
	}
	// Only two APs heard: too few for the geometry.
	two := Observation{
		g.APs[0].BSSID: -60,
		g.APs[1].BSSID: -65,
	}
	if _, err := g.Locate(two); err != ErrTooFewAPs {
		t.Errorf("two APs: %v", err)
	}
	bare := &Geometric{}
	if _, err := bare.Locate(Observation{"a": -60}); err == nil {
		t.Error("unfitted localizer accepted")
	}
}

func TestFitGeometricErrors(t *testing.T) {
	if _, err := FitGeometric(nil, map[string]geom.Point{"a": {}}, paperBasis()); err == nil {
		t.Error("nil DB accepted")
	}
	env := quietEnv(t)
	db := buildDB(t, env, 5, 1)
	if _, err := FitGeometric(db, nil, paperBasis()); err == nil {
		t.Error("nil AP positions accepted")
	}
	// Positions for APs that don't exist in the DB: nothing to fit.
	ghost := map[string]geom.Point{
		"gh:ost:1": geom.Pt(0, 0), "gh:ost:2": geom.Pt(1, 1), "gh:ost:3": geom.Pt(2, 2),
	}
	if _, err := FitGeometric(db, ghost, paperBasis()); err == nil {
		t.Error("ghost APs accepted")
	}
	empty := &trainingdb.DB{Entries: map[string]*trainingdb.Entry{}}
	if _, err := FitGeometric(empty, ghost, paperBasis()); err == nil {
		t.Error("empty DB accepted")
	}
}

func TestGeometricDistancesRoundTrip(t *testing.T) {
	g, _, _ := fitHouse(t, true)
	// Build an observation from each AP model's own prediction at a
	// known distance; inversion must recover those distances.
	target := geom.Pt(30, 15)
	obs := make(Observation, len(g.APs))
	want := make(map[string]float64, len(g.APs))
	for _, ap := range g.APs {
		d := ap.Pos.Dist(target)
		obs[ap.BSSID] = ap.Model.Predict(d)
		want[ap.BSSID] = d
	}
	circles := g.Distances(obs)
	if len(circles) != len(g.APs) {
		t.Fatalf("got %d circles", len(circles))
	}
	for i, c := range circles {
		ap := g.APs[i]
		if diff := c.R - want[ap.BSSID]; diff > 0.1 || diff < -0.1 {
			t.Errorf("%s distance %.2f, want %.2f", ap.BSSID, c.R, want[ap.BSSID])
		}
	}
	// Noise-free inversion plus the paper combiner lands on target.
	est, err := g.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.Pos.Dist(target); d > 1 {
		t.Errorf("synthetic observation error %.2f ft", d)
	}
}

func TestGeometricStrongerThanTrainedClamps(t *testing.T) {
	g, _, _ := fitHouse(t, true)
	// An observation hotter than anything trained must clamp to the
	// minimum distance, not fail.
	obs := make(Observation, len(g.APs))
	for _, ap := range g.APs {
		obs[ap.BSSID] = -1
	}
	est, err := g.Locate(obs)
	if err != nil {
		t.Fatalf("hot observation: %v", err)
	}
	if !est.Pos.IsFinite() {
		t.Errorf("estimate %v not finite", est.Pos)
	}
}

func TestGeometricNoisyStillReasonable(t *testing.T) {
	g, _, obsAt := fitHouse(t, false)
	// With full noise the paper reports ~16 ft average deviation; allow
	// a generous bound per point.
	total := 0.0
	n := 0
	for _, target := range []geom.Point{
		geom.Pt(25, 20), geom.Pt(12, 8), geom.Pt(38, 31), geom.Pt(5, 35), geom.Pt(45, 5),
	} {
		est, err := g.Locate(obsAt(target, 15))
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		total += est.Pos.Dist(target)
		n++
	}
	if avg := total / float64(n); avg > 25 {
		t.Errorf("average error %.1f ft under noise; expected paper-like ~16 ft", avg)
	}
}

func TestGeometricBoundsClamp(t *testing.T) {
	g, _, _ := fitHouse(t, true)
	// An absurd observation drives the raw estimate outside the floor;
	// with Bounds set the answer is clamped inside.
	obs := Observation{
		g.APs[0].BSSID: -1,
		g.APs[1].BSSID: -90,
		g.APs[2].BSSID: -90,
		g.APs[3].BSSID: -90,
	}
	raw, err := g.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	g.Bounds = geom.RectWH(0, 0, 50, 40)
	clamped, err := g.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Bounds.Contains(clamped.Pos) {
		t.Errorf("clamped estimate %v outside bounds", clamped.Pos)
	}
	// When the raw estimate was already inside, clamping is identity.
	if g.Bounds.Contains(raw.Pos) && raw.Pos != clamped.Pos {
		t.Errorf("in-bounds estimate moved: %v -> %v", raw.Pos, clamped.Pos)
	}
	g.Bounds = geom.Rect{} // zero value restores paper behaviour
	again, err := g.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if again.Pos != raw.Pos {
		t.Error("zero bounds did not restore raw behaviour")
	}
}
