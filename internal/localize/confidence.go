package localize

import (
	"math"
	"slices"

	"indoorloc/internal/feq"
)

// massAt pairs a candidate's distance from the estimate with its
// posterior weight. Distance and weight share one struct so the
// accumulation sorts a single slice, drawn from the scratch pool — the
// serving hot path calls ConfidenceRadius once per query and used to
// pay a fresh allocation here every time.
type massAt struct {
	dist float64
	w    float64
}

// ConfidenceRadius estimates how far the true position may plausibly
// be from the returned coordinates: the smallest radius around
// est.Pos containing at least fraction of the posterior mass over the
// candidate locations. Applications use it to decide whether a
// room-level answer is trustworthy ("somewhere on this floor" vs
// "in this room").
//
// Candidate scores are interpreted as log-likelihoods and converted to
// a posterior under a uniform prior; a Histogram estimate (whose
// scores are already normalised probabilities in [0,1]) is detected
// and used as-is. It returns 0 when the estimate carries no
// candidates, and clamps fraction into (0, 1].
func ConfidenceRadius(est Estimate, fraction float64) float64 {
	if len(est.Candidates) == 0 {
		return 0
	}
	if fraction <= 0 {
		fraction = 0.5
	}
	if fraction > 1 {
		fraction = 1
	}
	// Detect already-normalised scores: all in [0, 1] summing to ≈1.
	sum := 0.0
	normalised := true
	for _, c := range est.Candidates {
		if c.Score < 0 || c.Score > 1 {
			normalised = false
			break
		}
		sum += c.Score
	}
	normalised = normalised && math.Abs(sum-1) < 1e-6
	// Accumulate mass outward from est.Pos. Weights stay unnormalised
	// (the threshold scales by their total instead).
	sc := getScratch()
	defer putScratch(sc)
	if cap(sc.mass) < len(est.Candidates) {
		sc.mass = make([]massAt, len(est.Candidates))
	}
	ms := sc.mass[:len(est.Candidates)]
	total := 0.0
	for i, c := range est.Candidates {
		w := c.Score
		if !normalised {
			// Softmax of log-likelihoods (candidates are ranked
			// best-first, so the max is the first score).
			w = math.Exp(c.Score - est.Candidates[0].Score)
		}
		ms[i] = massAt{dist: est.Pos.Dist(c.Pos), w: w}
		total += w
	}
	if feq.Zero(total) {
		return 0
	}
	slices.SortFunc(ms, func(a, b massAt) int {
		switch {
		case a.dist < b.dist:
			return -1
		case a.dist > b.dist:
			return 1
		}
		return 0
	})
	acc := 0.0
	threshold := (fraction - 1e-12) * total
	for _, m := range ms {
		acc += m.w
		if acc >= threshold {
			return m.dist
		}
	}
	return ms[len(ms)-1].dist
}
