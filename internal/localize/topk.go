package localize

// Bounded top-k candidate selection. Serving callers consume a handful
// of ranked candidates (the argmax, a centroid over k neighbours, a
// confidence quantile), yet every locator used to full-sort all n
// entries per query — O(n log n) comparisons and a cache-hostile
// shuffle of 40-byte Candidate structs. TopK replaces the sort with a
// bounded selection: a worst-at-root heap over the first k slots
// streams the remaining n−k candidates through in O(n + k log n) with
// zero allocations, then heapsorts the k winners best-first.
//
// TopK permutes cs in place — no candidate is lost — but only cs[:k]
// ends up ordered; the tail is scrambled. Callers that need the full
// ranking ask for k ≥ len(cs) and get the rankCandidates sort.

// candidateBetter reports whether a outranks b: higher score first,
// ties broken toward the lexically smaller name, matching
// rankCandidates exactly. Names are unique within one estimate, so the
// order is total and the selected top-k set is identical to the full
// sort's prefix.
//
//loclint:hotpath
func candidateBetter(a, b *Candidate) bool {
	if a.Score != b.Score { //loclint:allow nofloateq — exact compare mirrors rankCandidates so top-k prefix == full-sort prefix
		return a.Score > b.Score
	}
	return a.Name < b.Name
}

// siftWorst restores the worst-at-root heap property at index i over
// cs[:n]: every parent ranks no better than its children.
//
//loclint:hotpath
func siftWorst(cs []Candidate, i, n int) {
	for {
		w := i
		if l := 2*i + 1; l < n && candidateBetter(&cs[w], &cs[l]) {
			w = l
		}
		if r := 2*i + 2; r < n && candidateBetter(&cs[w], &cs[r]) {
			w = r
		}
		if w == i {
			return
		}
		cs[i], cs[w] = cs[w], cs[i]
		i = w
	}
}

// TopK reorders cs so cs[:k] holds the k best candidates ranked
// best-first (the exact prefix a full rankCandidates sort would
// produce) and returns that prefix. The elements beyond k remain in cs
// but in arbitrary order. k ≤ 0 or k ≥ len(cs) falls back to the full
// sort and returns all of cs.
//
//loclint:hotpath
func TopK(cs []Candidate, k int) []Candidate {
	if k <= 0 || k >= len(cs) {
		rankCandidates(cs)
		return cs
	}
	// Heapify the first k slots with the worst candidate at the root.
	for i := k/2 - 1; i >= 0; i-- {
		siftWorst(cs, i, k)
	}
	// Stream the tail through: anything better than the current worst
	// swaps in (the evicted candidate lands at position i, preserved).
	for i := k; i < len(cs); i++ {
		if candidateBetter(&cs[i], &cs[0]) {
			cs[0], cs[i] = cs[i], cs[0]
			siftWorst(cs, 0, k)
		}
	}
	// Heapsort the winners: extract the current worst to the end of the
	// shrinking prefix until the best sits at cs[0].
	for end := k - 1; end > 0; end-- {
		cs[0], cs[end] = cs[end], cs[0]
		siftWorst(cs, 0, end)
	}
	return cs[:k]
}
