package localize

import (
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
)

func hybridFixture(t *testing.T) (*Hybrid, func(geom.Point, int) Observation) {
	t.Helper()
	env := quietEnv(t)
	db := buildDB(t, env, 20, 1)
	geo, err := FitGeometric(db, apPositions(houseAPs()), paperBasis())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybrid(NewMaxLikelihood(db), geo)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	return h, func(p geom.Point, n int) Observation { return observe(env, p, n, rng) }
}

func TestNewHybridValidation(t *testing.T) {
	if _, err := NewHybrid(nil, nil); err == nil {
		t.Error("nil pair accepted")
	}
	if _, err := NewHybrid(&MaxLikelihood{}, nil); err == nil {
		t.Error("nil geometric accepted")
	}
}

func TestHybridBasics(t *testing.T) {
	h, obsAt := hybridFixture(t)
	if h.Name() != "hybrid" {
		t.Errorf("Name = %q", h.Name())
	}
	target := geom.Pt(23, 19)
	est, err := h.Locate(obsAt(target, 10))
	if err != nil {
		t.Fatal(err)
	}
	if est.Name == "" {
		t.Error("symbolic answer lost")
	}
	if est.Pos.Dist(target) > 8 {
		t.Errorf("hybrid error %.1f ft", est.Pos.Dist(target))
	}
	if len(est.Candidates) == 0 {
		t.Error("candidates lost")
	}
}

func TestHybridFallsBackWhenGeometricFails(t *testing.T) {
	h, _ := hybridFixture(t)
	// Two APs only: geometric refuses, probabilistic still answers.
	obs := Observation{
		h.Geo.APs[0].BSSID: -55,
		h.Geo.APs[1].BSSID: -60,
	}
	est, err := h.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if est.Name == "" {
		t.Error("fallback lost the symbolic answer")
	}
}

func TestHybridPropagatesProbabilisticErrors(t *testing.T) {
	h, _ := hybridFixture(t)
	if _, err := h.Locate(Observation{}); err != ErrEmptyObservation {
		t.Errorf("empty: %v", err)
	}
	if _, err := h.Locate(Observation{"zz": -50}); err != ErrNoOverlap {
		t.Errorf("no overlap: %v", err)
	}
}

func TestTopShare(t *testing.T) {
	if got := topShare(nil); got != 1 {
		t.Errorf("empty = %v", got)
	}
	flat := []Candidate{{Score: -3}, {Score: -3}, {Score: -3}, {Score: -3}}
	if got := topShare(flat); got < 0.24 || got > 0.26 {
		t.Errorf("flat posterior share = %v, want 0.25", got)
	}
	confident := []Candidate{{Score: 0}, {Score: -100}}
	if got := topShare(confident); got < 0.999 {
		t.Errorf("confident share = %v", got)
	}
}

func TestHybridAccuracyComparable(t *testing.T) {
	h, obsAt := hybridFixture(t)
	var hybridTotal, probTotal float64
	targets := []geom.Point{
		geom.Pt(15, 15), geom.Pt(25, 25), geom.Pt(35, 12), geom.Pt(8, 30), geom.Pt(42, 20),
	}
	for _, target := range targets {
		obs := obsAt(target, 10)
		he, err := h.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := h.Prob.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		hybridTotal += he.Pos.Dist(target)
		probTotal += pe.Pos.Dist(target)
	}
	// The hybrid should at minimum not be wildly worse than its
	// probabilistic half in a quiet environment.
	if hybridTotal > probTotal*1.5+5 {
		t.Errorf("hybrid total %.1f ft vs probabilistic %.1f ft", hybridTotal, probTotal)
	}
}
