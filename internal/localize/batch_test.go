package localize

import (
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
)

func batchFixture(t *testing.T) (Locator, []Observation) {
	t.Helper()
	env := quietEnv(t)
	db := buildDB(t, env, 10, 1)
	rng := rand.New(rand.NewSource(3))
	var obs []Observation
	for i := 0; i < 50; i++ {
		p := observe(env, randomHousePoint(rng), 5, rng)
		obs = append(obs, p)
	}
	return NewMaxLikelihood(db), obs
}

func randomHousePoint(rng *rand.Rand) geom.Point {
	return geom.Pt(rng.Float64()*50, rng.Float64()*40)
}

func TestBatchMatchesSequential(t *testing.T) {
	loc, obs := batchFixture(t)
	seq := Batch(loc, obs, 1)
	par := Batch(loc, obs, 8)
	if len(seq) != len(obs) || len(par) != len(obs) {
		t.Fatal("length mismatch")
	}
	for i := range seq {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("obs %d error mismatch", i)
		}
		if seq[i].Err == nil && seq[i].Estimate.Name != par[i].Estimate.Name {
			t.Fatalf("obs %d: %q vs %q", i, seq[i].Estimate.Name, par[i].Estimate.Name)
		}
	}
}

func TestBatchHistogramConcurrent(t *testing.T) {
	// The histogram localizer has a lazy cache; Batch must prime it
	// before fanning out (this test runs under -race in CI).
	env := quietEnv(t)
	db := buildDB(t, env, 10, 1)
	h := NewHistogram(db)
	rng := rand.New(rand.NewSource(4))
	var obs []Observation
	for i := 0; i < 30; i++ {
		obs = append(obs, observe(env, randomHousePoint(rng), 5, rng))
	}
	res := Batch(h, obs, 6)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("obs %d: %v", i, r.Err)
		}
	}
}

func TestBatchErrorsPropagatePerObservation(t *testing.T) {
	loc, obs := batchFixture(t)
	obs[7] = Observation{}                  // empty → error
	obs[23] = Observation{"gh:os:t": -50.0} // no overlap → error
	res := Batch(loc, obs, 4)
	if res[7].Err != ErrEmptyObservation {
		t.Errorf("obs 7 err = %v", res[7].Err)
	}
	if res[23].Err != ErrNoOverlap {
		t.Errorf("obs 23 err = %v", res[23].Err)
	}
	if res[8].Err != nil {
		t.Errorf("neighbouring observation poisoned: %v", res[8].Err)
	}
}

func TestBatchDegenerate(t *testing.T) {
	loc, obs := batchFixture(t)
	if got := Batch(loc, nil, 4); len(got) != 0 {
		t.Error("nil observations produced results")
	}
	one := Batch(loc, obs[:1], 16)
	if len(one) != 1 || one[0].Err != nil {
		t.Errorf("single observation: %+v", one)
	}
	// workers=0 means GOMAXPROCS — still correct.
	auto := Batch(loc, obs[:5], 0)
	if len(auto) != 5 {
		t.Errorf("auto workers: %d results", len(auto))
	}
}
