package localize

import (
	"errors"

	"indoorloc/internal/stats"
	"indoorloc/internal/trainingdb"
)

// MaxLikelihood is the paper's probabilistic approach (§5.1). For each
// training point it evaluates, per AP, the Gaussian likelihood
//
//	value = exp(-(observation-training)²/(2σ²)) / sqrt(2πσ²)
//
// with the training point's stored mean and standard deviation, and
// multiplies the per-AP values (a log-domain sum here, to survive many
// APs). The training point with the maximum likelihood is the
// estimate; like the paper, the method "does not return the coordinate
// values of the observed location, but returns the most approximate
// training location instead".
type MaxLikelihood struct {
	DB *trainingdb.DB
	// FloorRSSI substitutes for APs present on one side (observation or
	// training entry) but not the other, modelling "heard nothing" as a
	// level at the receiver floor. Typical: -95.
	FloorRSSI float64
	// FloorSigma is the spread assumed for substituted readings.
	// Typical: 4 dB. Values below stats.MinSigma are raised to it.
	FloorSigma float64
	// MinOverlap is the minimum number of APs the observation must
	// share with the database; below it ErrNoOverlap is returned.
	// Zero means 1.
	MinOverlap int
	// ExpectedPosition switches the returned coordinates from the
	// maximum-likelihood training point (the paper's rule) to the
	// posterior-weighted mean over all training points. Name still
	// reports the argmax, so the paper's validity metric is unaffected.
	ExpectedPosition bool
}

// NewMaxLikelihood returns a MaxLikelihood with the standard floor
// parameters.
func NewMaxLikelihood(db *trainingdb.DB) *MaxLikelihood {
	return &MaxLikelihood{DB: db, FloorRSSI: -95, FloorSigma: 4}
}

// Name implements Locator.
func (m *MaxLikelihood) Name() string { return "probabilistic-ml" }

// Locate implements Locator.
func (m *MaxLikelihood) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if m.DB == nil || m.DB.Len() == 0 {
		return Estimate{}, errors.New("localize: MaxLikelihood has no training database")
	}
	minOverlap := m.MinOverlap
	if minOverlap <= 0 {
		minOverlap = 1
	}
	overlap := 0
	known := make(map[string]bool, len(m.DB.BSSIDs))
	for _, b := range m.DB.BSSIDs {
		known[b] = true
	}
	for b := range obs {
		if known[b] {
			overlap++
		}
	}
	if overlap < minOverlap {
		return Estimate{}, ErrNoOverlap
	}
	floorSigma := m.FloorSigma
	if floorSigma < stats.MinSigma {
		floorSigma = stats.MinSigma
	}
	candidates := make([]Candidate, 0, m.DB.Len())
	for _, name := range m.DB.Names() {
		e := m.DB.Entries[name]
		ll := 0.0
		// Score over the union of APs: observed-and-trained pairs use
		// the trained Gaussian; mismatches use the floor model, which
		// penalises hearing an AP the training point never heard (and
		// vice versa) — absence is evidence too.
		for _, b := range m.DB.BSSIDs {
			s, trained := e.PerAP[b]
			o, heard := obs[b]
			switch {
			case trained && heard:
				ll += stats.LogGaussianPDF(o, s.Mean, s.StdDev)
			case trained && !heard:
				ll += stats.LogGaussianPDF(m.FloorRSSI, s.Mean, s.StdDev)
			case !trained && heard:
				ll += stats.LogGaussianPDF(o, m.FloorRSSI, floorSigma)
			}
		}
		candidates = append(candidates, Candidate{Name: name, Pos: e.Pos, Score: ll})
	}
	rankCandidates(candidates)
	best := candidates[0]
	est := Estimate{
		Pos:        best.Pos,
		Name:       best.Name,
		Score:      best.Score,
		Candidates: candidates,
	}
	if m.ExpectedPosition {
		est.Pos = posteriorMean(candidates)
	}
	return est, nil
}

// Histogram is the Bayesian histogram-matching localizer the paper
// sketches as future work ("our new algorithm will consider the
// distribution of these values"): instead of collapsing each
// ⟨training point, AP⟩ sample set to a mean and σ, it bins the raw
// samples and scores an observation by the smoothed bin probability,
// combined across APs in log space with a uniform prior over training
// points. The posterior over training points is exposed through the
// candidate scores.
type Histogram struct {
	DB *trainingdb.DB
	// Bins is the histogram resolution in whole-dB bins over
	// [RangeLo, RangeHi). Zero means 70 bins over [-100, -30).
	Bins             int
	RangeLo, RangeHi float64
	// FloorRSSI substitutes for unheard APs, as in MaxLikelihood.
	FloorRSSI float64

	// hists caches per ⟨entry, AP⟩ histograms, built on first use. The
	// database must not change after the first Locate call.
	hists map[string]map[string]*stats.Histogram
}

// NewHistogram returns a Histogram localizer with 1-dB bins over the
// practical RSSI range.
func NewHistogram(db *trainingdb.DB) *Histogram {
	return &Histogram{DB: db, Bins: 70, RangeLo: -100, RangeHi: -30, FloorRSSI: -95}
}

// Name implements Locator.
func (h *Histogram) Name() string { return "probabilistic-histogram" }

// Locate implements Locator.
func (h *Histogram) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if h.DB == nil || h.DB.Len() == 0 {
		return Estimate{}, errors.New("localize: Histogram has no training database")
	}
	bins := h.Bins
	lo, hi := h.RangeLo, h.RangeHi
	if bins <= 0 {
		bins = 70
		lo, hi = -100, -30
	}
	if hi <= lo {
		lo, hi = -100, -30
	}
	overlap := false
	for _, b := range h.DB.BSSIDs {
		if _, ok := obs[b]; ok {
			overlap = true
			break
		}
	}
	if !overlap {
		return Estimate{}, ErrNoOverlap
	}
	if h.hists == nil {
		if err := h.buildHists(lo, hi, bins); err != nil {
			return Estimate{}, err
		}
	}
	// An AP heard now but never seen at some entry scores against an
	// empty histogram — uniform after Laplace smoothing.
	uniform := logf(1 / float64(bins))
	candidates := make([]Candidate, 0, h.DB.Len())
	for _, name := range h.DB.Names() {
		ll := 0.0
		for _, b := range h.DB.BSSIDs {
			hist, trained := h.hists[name][b]
			o, heard := obs[b]
			switch {
			case trained && heard:
				ll += logf(hist.Prob(o))
			case trained && !heard:
				ll += logf(hist.Prob(h.FloorRSSI))
			case !trained && heard:
				ll += uniform
			}
		}
		candidates = append(candidates, Candidate{Name: name, Pos: h.DB.Entries[name].Pos, Score: ll})
	}
	rankCandidates(candidates)
	// Normalise scores into a posterior for the candidates (softmax of
	// log-likelihoods with uniform prior).
	normalizePosterior(candidates)
	best := candidates[0]
	return Estimate{
		Pos:        best.Pos,
		Name:       best.Name,
		Score:      best.Score,
		Candidates: candidates,
	}, nil
}
