package localize

import (
	"errors"
	"sync"

	"indoorloc/internal/stats"
	"indoorloc/internal/trainingdb"
)

// MaxLikelihood is the paper's probabilistic approach (§5.1). For each
// training point it evaluates, per AP, the Gaussian likelihood
//
//	value = exp(-(observation-training)²/(2σ²)) / sqrt(2πσ²)
//
// with the training point's stored mean and standard deviation, and
// multiplies the per-AP values (a log-domain sum here, to survive many
// APs). The training point with the maximum likelihood is the
// estimate; like the paper, the method "does not return the coordinate
// values of the observed location, but returns the most approximate
// training location instead".
//
// Scoring runs against a compiled radio map (trainingdb.Compiled)
// built on first use: each entry starts from its precomputed
// "heard nothing" baseline and only the observation's heard columns
// are corrected, so one Locate is O(entries × heard APs) over flat
// matrices with no map lookups. The database and the Floor/MinOverlap
// configuration must not change after the first Locate or Warm call.
type MaxLikelihood struct {
	DB *trainingdb.DB
	// FloorRSSI substitutes for APs present on one side (observation or
	// training entry) but not the other, modelling "heard nothing" as a
	// level at the receiver floor. Typical: -95.
	FloorRSSI float64
	// FloorSigma is the spread assumed for substituted readings.
	// Typical: 4 dB. Values below stats.MinSigma are raised to it.
	FloorSigma float64
	// MinOverlap is the minimum number of APs the observation must
	// share with the database; below it ErrNoOverlap is returned.
	// Zero means 1.
	MinOverlap int
	// ExpectedPosition switches the returned coordinates from the
	// maximum-likelihood training point (the paper's rule) to the
	// posterior-weighted mean over all training points. Name still
	// reports the argmax, so the paper's validity metric is unaffected.
	ExpectedPosition bool
	// Sharding tunes how a single Locate fans the entry scan over the
	// worker pool on large maps; nil uses the package defaults (one
	// shard per CPU, DefaultShardCutover entries).
	Sharding *ShardedScorer
	// TopK bounds the ranked candidate list to the best k entries via
	// bounded selection instead of a full sort; zero returns the full
	// ranking. With TopK set, ExpectedPosition averages over the
	// retained candidates only — on radio maps large enough for TopK to
	// matter the posterior mass beyond the leaders is negligible.
	TopK int
	// Quantize compiles the radio map to int16 matrices (format v2) and
	// drops the float64 originals, quartering the scan's memory traffic
	// at ≤ 10⁻³ dB dequantization error. See trainingdb.Quant.
	Quantize bool
	// Precompiled, when set, is served directly instead of compiling
	// DB — the mmap-loaded artifact path. DB may then be nil. The view's
	// own floor parameters govern scoring.
	Precompiled *trainingdb.Compiled

	compileOnce sync.Once
	compiled    *trainingdb.Compiled
}

// NewMaxLikelihood returns a MaxLikelihood with the standard floor
// parameters.
func NewMaxLikelihood(db *trainingdb.DB) *MaxLikelihood {
	return &MaxLikelihood{DB: db, FloorRSSI: -95, FloorSigma: 4}
}

// Name implements Locator.
func (m *MaxLikelihood) Name() string { return "probabilistic-ml" }

// Warm implements Warmer: it compiles the radio map eagerly (or adopts
// Precompiled), quantizing it when Quantize is set.
func (m *MaxLikelihood) Warm() error {
	if m.Precompiled == nil && (m.DB == nil || m.DB.Len() == 0) {
		return errors.New("localize: MaxLikelihood has no training database")
	}
	m.compileOnce.Do(func() {
		if m.Precompiled != nil {
			m.compiled = m.Precompiled
		} else {
			m.compiled = m.DB.Compile(m.FloorRSSI, m.FloorSigma)
		}
		if m.Quantize {
			m.compiled.Quantize()
			m.compiled.ReleaseFloat64()
		}
	})
	return nil
}

// CompiledView implements CompiledSource.
func (m *MaxLikelihood) CompiledView() *trainingdb.Compiled {
	if err := m.Warm(); err != nil {
		return nil
	}
	return m.compiled
}

// Locate implements Locator.
func (m *MaxLikelihood) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if err := m.Warm(); err != nil {
		return Estimate{}, err
	}
	c := m.compiled
	minOverlap := m.MinOverlap
	if minOverlap <= 0 {
		minOverlap = 1
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.cols, sc.vals = c.Intern(obs, sc.cols[:0], sc.vals[:0])
	cols, vals := sc.cols, sc.vals
	if len(cols) < minOverlap {
		return Estimate{}, ErrNoOverlap
	}
	// The "heard an AP this entry never trained" term depends only on
	// the observation — precompute it once per heard column.
	aux := sc.aux[:0]
	for _, v := range vals {
		aux = append(aux, stats.LogGaussianPDF(v, c.FloorRSSI, c.FloorSigma))
	}
	sc.aux = aux
	// Score over the union of APs, as the map-based loop did. Large
	// maps shard the scan over the worker pool; below the cutover the
	// direct call keeps the single-query path allocation-lean. With
	// TopK set, scoring fills a pooled buffer and only the k winners
	// are copied out; otherwise the full slice goes to the caller and
	// must be fresh.
	n := len(c.Names)
	topk := m.TopK
	var candidates []Candidate
	if topk > 0 && topk < n {
		candidates = sc.candidates(n)
	} else {
		topk = 0
		candidates = make([]Candidate, n)
	}
	quant := c.Quant != nil
	if m.Sharding.Parallel(n) {
		m.Sharding.Scan(n, func(lo, hi int) {
			if quant {
				m.scoreRangeQuant(c, cols, vals, aux, candidates, lo, hi)
			} else {
				m.scoreRange(c, cols, vals, aux, candidates, lo, hi)
			}
		})
	} else if quant {
		m.scoreRangeQuant(c, cols, vals, aux, candidates, 0, n)
	} else {
		m.scoreRange(c, cols, vals, aux, candidates, 0, n)
	}
	if topk > 0 {
		out := make([]Candidate, topk)
		copy(out, TopK(candidates, topk))
		candidates = out
	} else {
		rankCandidates(candidates)
	}
	best := candidates[0]
	est := Estimate{
		Pos:        best.Pos,
		Name:       best.Name,
		Score:      best.Score,
		Candidates: candidates,
	}
	if m.ExpectedPosition {
		est.Pos = posteriorMean(candidates)
	}
	return est, nil
}

// scoreRange scores entries [lo, hi): each starts at its precomputed
// all-unheard baseline; heard columns swap the floor term for the
// trained Gaussian (or add the observation-side floor term when the
// entry never heard the AP) — absence is evidence too. Ranges are
// disjoint across shards, so concurrent calls never race.
//
//loclint:hotpath
func (m *MaxLikelihood) scoreRange(c *trainingdb.Compiled, cols []int32, vals, aux []float64, candidates []Candidate, lo, hi int) {
	nAP := len(c.BSSIDs)
	for i := lo; i < hi; i++ {
		ll := c.UnheardLL[i]
		base := i * nAP
		for h, j := range cols {
			cell := base + int(j)
			if c.Trained[cell] {
				d := (vals[h] - c.Mean[cell]) / c.Sigma[cell]
				ll += -d*d/2 + c.LogNorm[cell] - c.FloorLL[cell]
			} else {
				ll += aux[h]
			}
		}
		candidates[i] = Candidate{Name: c.Names[i], Pos: c.Pos[i], Score: ll}
	}
}

// scoreRangeQuant is scoreRange over the int16-quantized matrices:
// identical algebra, with each visited cell dequantized on the fly
// through its column's affine factors and the baselines taken from the
// quantized mirror (they were recomputed from dequantized cells, so
// the baseline+correction subtraction stays exact). Accumulation is
// float64 throughout; only the per-cell loads shrink.
//
//loclint:hotpath
func (m *MaxLikelihood) scoreRangeQuant(c *trainingdb.Compiled, cols []int32, vals, aux []float64, candidates []Candidate, lo, hi int) {
	q := c.Quant
	nAP := len(c.BSSIDs)
	for i := lo; i < hi; i++ {
		ll := q.UnheardLL[i]
		base := i * nAP
		for h, j := range cols {
			cell := base + int(j)
			if c.Trained[cell] {
				jj := int(j)
				mean := q.MeanOff[jj] + q.MeanScale[jj]*float64(q.MeanQ[cell])
				sigma := q.SigmaOff[jj] + q.SigmaScale[jj]*float64(q.SigmaQ[cell])
				d := (vals[h] - mean) / sigma
				ll += -d*d/2 +
					q.LogNormOff[jj] + q.LogNormScale[jj]*float64(q.LogNormQ[cell]) -
					(q.FloorLLOff[jj] + q.FloorLLScale[jj]*float64(q.FloorLLQ[cell]))
			} else {
				ll += aux[h]
			}
		}
		candidates[i] = Candidate{Name: c.Names[i], Pos: c.Pos[i], Score: ll}
	}
}

// Histogram is the Bayesian histogram-matching localizer the paper
// sketches as future work ("our new algorithm will consider the
// distribution of these values"): instead of collapsing each
// ⟨training point, AP⟩ sample set to a mean and σ, it bins the raw
// samples and scores an observation by the smoothed bin probability,
// combined across APs in log space with a uniform prior over training
// points. The posterior over training points is exposed through the
// candidate scores.
//
// Scoring runs against flat per-⟨entry, AP⟩ log-probability tables
// compiled from the raw samples on first use (Warm builds them
// eagerly). The database and the Bins/Range/Floor configuration must
// not change after the first Locate or Warm call.
type Histogram struct {
	DB *trainingdb.DB
	// Bins is the histogram resolution in whole-dB bins over
	// [RangeLo, RangeHi). Zero means 70 bins over [-100, -30).
	Bins             int
	RangeLo, RangeHi float64
	// FloorRSSI substitutes for unheard APs, as in MaxLikelihood.
	FloorRSSI float64
	// Sharding tunes the large-map scan fan-out, as in MaxLikelihood.
	Sharding *ShardedScorer
	// TopK bounds the ranked candidate list, as in MaxLikelihood. The
	// posterior is renormalized over the retained candidates, so the
	// scores still sum to 1 — a documented approximation that slightly
	// inflates each retained probability by the dropped tail's mass.
	TopK int

	warmOnce sync.Once
	warmErr  error
	compiled *trainingdb.Compiled
	tables   *histTables
}

// NewHistogram returns a Histogram localizer with 1-dB bins over the
// practical RSSI range.
func NewHistogram(db *trainingdb.DB) *Histogram {
	return &Histogram{DB: db, Bins: 70, RangeLo: -100, RangeHi: -30, FloorRSSI: -95}
}

// Name implements Locator.
func (h *Histogram) Name() string { return "probabilistic-histogram" }

// Warm implements Warmer: it compiles the radio map and the
// log-probability tables eagerly.
func (h *Histogram) Warm() error {
	if h.DB == nil || h.DB.Len() == 0 {
		return errors.New("localize: Histogram has no training database")
	}
	h.warmOnce.Do(func() { h.warmErr = h.buildTables() })
	return h.warmErr
}

// CompiledView implements CompiledSource. Note the histogram's scoring
// tables are built from raw samples the view does not carry, so a
// Histogram cannot be rebuilt from a serialized view alone.
func (h *Histogram) CompiledView() *trainingdb.Compiled {
	if err := h.Warm(); err != nil {
		return nil
	}
	return h.compiled
}

// Locate implements Locator.
func (h *Histogram) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if err := h.Warm(); err != nil {
		return Estimate{}, err
	}
	c, t := h.compiled, h.tables
	sc := getScratch()
	defer putScratch(sc)
	sc.cols, sc.vals = c.Intern(obs, sc.cols[:0], sc.vals[:0])
	cols, vals := sc.cols, sc.vals
	if len(cols) == 0 {
		return Estimate{}, ErrNoOverlap
	}
	// Bin each heard level once; the bin depends only on the
	// observation, not the entry.
	binIdx := sc.bins[:0]
	for _, v := range vals {
		binIdx = append(binIdx, int32(t.bin(v)))
	}
	sc.bins = binIdx
	n := len(c.Names)
	topk := h.TopK
	var candidates []Candidate
	if topk > 0 && topk < n {
		candidates = sc.candidates(n)
	} else {
		topk = 0
		candidates = make([]Candidate, n)
	}
	if h.Sharding.Parallel(n) {
		h.Sharding.Scan(n, func(lo, hi int) {
			h.scoreRange(c, t, cols, binIdx, candidates, lo, hi)
		})
	} else {
		h.scoreRange(c, t, cols, binIdx, candidates, 0, n)
	}
	if topk > 0 {
		out := make([]Candidate, topk)
		copy(out, TopK(candidates, topk))
		candidates = out
	} else {
		rankCandidates(candidates)
	}
	// Normalise scores into a posterior for the candidates (softmax of
	// log-likelihoods with uniform prior; under TopK the posterior is
	// over the retained candidates — see the field comment).
	normalizePosterior(candidates)
	best := candidates[0]
	return Estimate{
		Pos:        best.Pos,
		Name:       best.Name,
		Score:      best.Score,
		Candidates: candidates,
	}, nil
}

// scoreRange scores entries [lo, hi). Baseline: every trained AP
// scored at the floor level; heard columns swap in the observed bin
// (trained) or the uniform smoothed mass of an empty histogram
// (untrained). Shard ranges are disjoint, so concurrent calls never
// race.
//
//loclint:hotpath
func (h *Histogram) scoreRange(c *trainingdb.Compiled, t *histTables, cols []int32, binIdx []int32, candidates []Candidate, lo, hi int) {
	nAP := len(c.BSSIDs)
	bins := t.bins
	for i := lo; i < hi; i++ {
		ll := t.base[i]
		base := i * nAP
		for h2, j := range cols {
			cell := base + int(j)
			if c.Trained[cell] {
				row := cell * bins
				ll += t.logProb[row+int(binIdx[h2])] - t.logProb[row+t.floorBin]
			} else {
				ll += t.uniform
			}
		}
		candidates[i] = Candidate{Name: c.Names[i], Pos: c.Pos[i], Score: ll}
	}
}
