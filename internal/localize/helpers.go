package localize

import (
	"math"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// logf is a guarded log: probabilities at or below zero (which Laplace
// smoothing should prevent) map to a large negative constant instead
// of -Inf, keeping candidate ordering total.
func logf(p float64) float64 {
	if p <= 0 {
		return -1e9
	}
	return math.Log(p)
}

// normalizePosterior rewrites candidate scores from log-likelihoods to
// posterior probabilities under a uniform prior (a numerically safe
// softmax). Candidates must already be ranked best-first.
func normalizePosterior(cs []Candidate) {
	if len(cs) == 0 {
		return
	}
	max := cs[0].Score
	sum := 0.0
	for i := range cs {
		cs[i].Score = math.Exp(cs[i].Score - max)
		sum += cs[i].Score
	}
	if sum == 0 {
		return
	}
	for i := range cs {
		cs[i].Score /= sum
	}
}

// posteriorMean converts ranked log-likelihood candidates into a
// posterior (softmax under a uniform prior) and returns the expected
// position. Candidates must be ranked best-first.
func posteriorMean(cs []Candidate) geom.Point {
	if len(cs) == 0 {
		return geom.Point{}
	}
	max := cs[0].Score
	var sum float64
	var mean geom.Point
	for _, c := range cs {
		w := math.Exp(c.Score - max)
		mean = mean.Add(c.Pos.Scale(w))
		sum += w
	}
	if sum == 0 {
		return cs[0].Pos
	}
	return mean.Scale(1 / sum)
}

// buildHists populates the Histogram localizer's per ⟨entry, AP⟩
// histogram cache.
func (h *Histogram) buildHists(lo, hi float64, bins int) error {
	h.hists = make(map[string]map[string]*stats.Histogram, h.DB.Len())
	for name, e := range h.DB.Entries {
		m := make(map[string]*stats.Histogram, len(e.PerAP))
		for bssid, s := range e.PerAP {
			hist, err := stats.NewHistogram(lo, hi, bins)
			if err != nil {
				return err
			}
			for _, v := range s.Samples {
				hist.Add(v)
			}
			m[bssid] = hist
		}
		h.hists[name] = m
	}
	return nil
}
