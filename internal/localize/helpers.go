package localize

import (
	"math"
	"sync"

	"indoorloc/internal/feq"
	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// logf is a guarded log: probabilities at or below zero (which Laplace
// smoothing should prevent) map to a large negative constant instead
// of -Inf, keeping candidate ordering total.
func logf(p float64) float64 {
	if p <= 0 {
		return -1e9
	}
	return math.Log(p)
}

// normalizePosterior rewrites candidate scores from log-likelihoods to
// posterior probabilities under a uniform prior (a numerically safe
// softmax). Candidates must already be ranked best-first.
func normalizePosterior(cs []Candidate) {
	if len(cs) == 0 {
		return
	}
	max := cs[0].Score
	sum := 0.0
	for i := range cs {
		cs[i].Score = math.Exp(cs[i].Score - max)
		sum += cs[i].Score
	}
	if feq.Zero(sum) {
		return
	}
	for i := range cs {
		cs[i].Score /= sum
	}
}

// posteriorMean converts ranked log-likelihood candidates into a
// posterior (softmax under a uniform prior) and returns the expected
// position. Candidates must be ranked best-first.
func posteriorMean(cs []Candidate) geom.Point {
	if len(cs) == 0 {
		return geom.Point{}
	}
	max := cs[0].Score
	var sum float64
	var mean geom.Point
	for _, c := range cs {
		w := math.Exp(c.Score - max)
		mean = mean.Add(c.Pos.Scale(w))
		sum += w
	}
	if feq.Zero(sum) {
		return cs[0].Pos
	}
	return mean.Scale(1 / sum)
}

// scratch holds the per-Locate working buffers — interned observation
// columns and values plus per-column precomputed terms — pooled so the
// hot path allocates nothing beyond the returned candidate slice.
type scratch struct {
	cols  []int32
	vals  []float64
	aux   []float64
	bins  []int32
	cands []Candidate
	mass  []massAt
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// candidates returns a length-n candidate buffer backed by the
// scratch, grown as needed. Only the bounded top-k paths score into it
// (they copy the k winners out before the scratch is pooled); the
// full-ranking paths hand their whole slice to the caller and must
// allocate it fresh.
func (s *scratch) candidates(n int) []Candidate {
	if cap(s.cands) < n {
		s.cands = make([]Candidate, n)
	}
	return s.cands[:n]
}

// histTables is the Histogram localizer's compiled scoring state: per
// ⟨entry, AP⟩ log bin probabilities in one flat cell-major slice
// (entry-major cells, bins within a cell), plus the per-entry
// all-at-floor baseline.
type histTables struct {
	bins      int
	lo, width float64
	// floorBin is the bin index of the floor substitution level.
	floorBin int
	// uniform is the log probability an empty histogram assigns any bin
	// after Laplace smoothing — the "heard an AP this entry never
	// trained" term.
	uniform float64
	// logProb[cell*bins+k] is the smoothed log probability of bin k at
	// the cell; rows of untrained cells stay zero and are never read.
	logProb []float64
	// base[i] sums the floor-bin log probabilities over entry i's
	// trained cells.
	base []float64
}

// bin replicates stats.Histogram.Bin over the table bounds.
func (t *histTables) bin(x float64) int {
	i := int(math.Floor((x - t.lo) / t.width))
	if i < 0 {
		i = 0
	}
	if i >= t.bins {
		i = t.bins - 1
	}
	return i
}

// buildTables compiles the radio map and the per-⟨entry, AP⟩
// log-probability tables from the raw training samples.
func (h *Histogram) buildTables() error {
	bins := h.Bins
	lo, hi := h.RangeLo, h.RangeHi
	if bins <= 0 {
		bins = 70
		lo, hi = -100, -30
	}
	if hi <= lo {
		lo, hi = -100, -30
	}
	c := h.DB.Compile(h.FloorRSSI, stats.MinSigma)
	nAP := len(c.BSSIDs)
	t := &histTables{
		bins:    bins,
		lo:      lo,
		width:   (hi - lo) / float64(bins),
		uniform: logf(1 / float64(bins)),
		logProb: make([]float64, len(c.Names)*nAP*bins),
		base:    make([]float64, len(c.Names)),
	}
	t.floorBin = t.bin(h.FloorRSSI)
	for i, name := range c.Names {
		e := h.DB.Entries[name]
		for j, b := range c.BSSIDs {
			s, ok := e.PerAP[b]
			if !ok {
				continue
			}
			hist, err := stats.NewHistogram(lo, hi, bins)
			if err != nil {
				return err
			}
			for _, v := range s.Samples {
				hist.Add(v)
			}
			row := (i*nAP + j) * bins
			total := float64(hist.Total()) + float64(bins)
			for k, count := range hist.Counts {
				t.logProb[row+k] = logf((float64(count) + 1) / total)
			}
			t.base[i] += t.logProb[row+t.floorBin]
		}
	}
	h.compiled, h.tables = c, t
	return nil
}
