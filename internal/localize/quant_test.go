package localize

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

// Quantization accuracy parity (format v2). The int16 codes reproduce
// each matrix cell within half a code step of its AP column's value
// range — ≤ (max−min)/131068, about 7·10⁻⁴ dB for a 90 dB RSSI column
// (see trainingdb.QuantLevels). Propagated through the scoring
// algebra, the worst-case per-candidate score deltas are:
//
//   - MaxLikelihood: each heard column perturbs the log-likelihood
//     through mean, σ, log-norm and floor terms; on the RSSI and σ
//     ranges the suite generates, the observed delta stays within
//     relTol = 2·10⁻³ of the score's magnitude (entries far from the
//     observation carry |score| in the hundreds, so a relative bound
//     is the honest one — their absolute delta can reach ~0.5 while
//     the leaders' sit below 10⁻³).
//   - KNN: the signal distance moves by at most
//     Σ_heard 2·|dv−df|·ε / (2·√sum) — bounded here by absTol = 0.05 dB.
//
// A near-tie between the float64 top-1 and runner-up can flip under
// those deltas; parity therefore demands an identical winner unless
// the float64 gap itself is inside the tolerance.
const (
	quantRelTol = 2e-3
	quantAbsTol = 0.05
)

func relClose(a, ref, relTol float64) bool {
	return math.Abs(a-ref) <= relTol*math.Max(1, math.Abs(ref))
}

// compareQuantParity checks one estimate pair: bounded per-candidate
// score deltas (matched by name — near-ties may reorder) and an
// identical winner unless the reference ranking was itself a near-tie.
func compareQuantParity(t *testing.T, tag string, ref, quant Estimate, relTol, absTol float64) {
	t.Helper()
	if len(quant.Candidates) != len(ref.Candidates) {
		t.Fatalf("%s: %d candidates, reference %d", tag, len(quant.Candidates), len(ref.Candidates))
	}
	scores := make(map[string]float64, len(ref.Candidates))
	for _, c := range ref.Candidates {
		scores[c.Name] = c.Score
	}
	for _, c := range quant.Candidates {
		r, ok := scores[c.Name]
		if !ok {
			t.Fatalf("%s: quantized ranking invented candidate %q", tag, c.Name)
		}
		if relTol > 0 && !relClose(c.Score, r, relTol) {
			t.Fatalf("%s: %q score %v, reference %v (rel bound %v)", tag, c.Name, c.Score, r, relTol)
		}
		if absTol > 0 && math.Abs(c.Score-r) > absTol {
			t.Fatalf("%s: %q score %v, reference %v (abs bound %v)", tag, c.Name, c.Score, r, absTol)
		}
	}
	if quant.Name == ref.Name {
		return
	}
	// Different winner: only acceptable when the reference top-1 and
	// runner-up were closer than the quantization tolerance.
	if len(ref.Candidates) < 2 {
		t.Fatalf("%s: winner %q, reference %q with no runner-up", tag, quant.Name, ref.Name)
	}
	gap := ref.Candidates[0].Score - ref.Candidates[1].Score
	lim := 2 * relTol * math.Max(1, math.Abs(ref.Candidates[0].Score))
	if absTol > 0 {
		lim = 2 * absTol
	}
	if gap > lim {
		t.Fatalf("%s: winner %q, reference %q with gap %v (tolerance %v)",
			tag, quant.Name, ref.Name, gap, lim)
	}
}

// TestQuantizedScoringParity is the randomized property: over sparse
// random radio maps, quantized MaxLikelihood and KNN scoring must stay
// within the documented score-delta bounds of the float64 path and
// pick the same top-1 outside near-ties.
func TestQuantizedScoringParity(t *testing.T) {
	for seed := int64(40); seed < 46; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomTrainDB(rng, 20+rng.Intn(150), 4+rng.Intn(14), 0.3+rng.Float64()*0.6)
		if len(db.BSSIDs) == 0 {
			continue
		}
		mlF := NewMaxLikelihood(db)
		mlQ := NewMaxLikelihood(db)
		mlQ.Quantize = true
		knnF := NewKNN(db, 3)
		knnQ := NewKNN(db, 3)
		knnQ.Quantize = true

		for trial := 0; trial < 10; trial++ {
			obs := randomObs(rng, db, 0.2+rng.Float64()*0.7)
			if len(obs) == 0 {
				continue
			}
			tag := fmt.Sprintf("seed %d trial %d", seed, trial)

			refEst, refErr := mlF.Locate(obs)
			qEst, qErr := mlQ.Locate(obs)
			if (refErr == nil) != (qErr == nil) {
				t.Fatalf("%s ml: err %v vs %v", tag, qErr, refErr)
			}
			if refErr == nil {
				compareQuantParity(t, tag+" ml", refEst, qEst, quantRelTol, 0)
			}

			refEst, refErr = knnF.Locate(obs)
			qEst, qErr = knnQ.Locate(obs)
			if (refErr == nil) != (qErr == nil) {
				t.Fatalf("%s knn: err %v vs %v", tag, qErr, refErr)
			}
			if refErr == nil {
				compareQuantParity(t, tag+" knn", refEst, qEst, 0, quantAbsTol)
			}
		}
	}
}

// TestQuantizedTopKConsistent pins that quantization and bounded
// selection compose: the quantized TopK prefix equals the quantized
// full ranking's prefix exactly (both score over the same codes).
func TestQuantizedTopKConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	db := randomTrainDB(rng, 120, 10, 0.5)
	full := NewMaxLikelihood(db)
	full.Quantize = true
	top := NewMaxLikelihood(db)
	top.Quantize = true
	top.TopK = 6
	for trial := 0; trial < 8; trial++ {
		obs := randomObs(rng, db, 0.6)
		if len(obs) == 0 {
			continue
		}
		fe, ferr := full.Locate(obs)
		te, terr := top.Locate(obs)
		if ferr != nil || terr != nil {
			t.Fatalf("trial %d: errs %v / %v", trial, ferr, terr)
		}
		for i, c := range te.Candidates {
			if c != fe.Candidates[i] {
				t.Fatalf("trial %d candidate %d: %+v vs %+v", trial, i, c, fe.Candidates[i])
			}
		}
	}
}

// simHouseDB builds a training database from a simulated scenario, the
// way the end-to-end tests and examples do.
func simHouseDB(t *testing.T, scen sim.Scenario, seed int64, sweeps int) *trainingdb.DB {
	t.Helper()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	coll := sim.NewScanner(env, seed).CaptureCollection(grid, sweeps)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQuantizedParitySimulated runs the parity property on the paper's
// simulated house and the larger office wing: working-phase captures
// at every training point must localize to the same top-1 through the
// quantized matrices as through float64 (sim observations are never
// near-tied — distinct rooms differ by whole dB).
func TestQuantizedParitySimulated(t *testing.T) {
	for _, scen := range []sim.Scenario{sim.PaperHouse(), sim.OfficeWing()} {
		db := simHouseDB(t, scen, 9, 15)
		env, err := scen.Environment()
		if err != nil {
			t.Fatal(err)
		}
		grid, err := scen.TrainingPoints()
		if err != nil {
			t.Fatal(err)
		}
		mlF := NewMaxLikelihood(db)
		mlQ := NewMaxLikelihood(db)
		mlQ.Quantize = true
		sc := sim.NewScanner(env, 77)
		for i, name := range grid.Names() {
			if i%3 != 0 { // every third point keeps OfficeWing's runtime down
				continue
			}
			p, _ := grid.Lookup(name)
			obs := ObservationFromRecords(sc.Capture(p, 5, 0))
			if len(obs) == 0 {
				continue
			}
			refEst, refErr := mlF.Locate(obs)
			qEst, qErr := mlQ.Locate(obs)
			if refErr != nil || qErr != nil {
				t.Fatalf("%s %s: errs %v / %v", scen.Name, name, refErr, qErr)
			}
			compareQuantParity(t, scen.Name+" "+name, refEst, qEst, quantRelTol, 0)
		}
	}
}
