package localize

import (
	"runtime"
	"sync"
)

// BatchResult pairs one observation's estimate with its error, in the
// input order.
type BatchResult struct {
	Estimate Estimate
	Err      error
}

// Batch localizes many observations concurrently over a worker pool —
// the server-side shape of the toolkit, where one trained service
// answers a building's worth of clients. workers ≤ 0 uses GOMAXPROCS.
// Results preserve input order. The locator must be safe for
// concurrent Locate calls; every localizer in this package is, after
// any lazy caches are built (Histogram builds its cache on first use,
// so prime it with one call before fanning out — Batch does this
// automatically when it sees more than one worker).
func Batch(loc Locator, observations []Observation, workers int) []BatchResult {
	out := make([]BatchResult, len(observations))
	if len(observations) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(observations) {
		workers = len(observations)
	}
	if workers > 1 {
		// Prime lazy caches single-threaded so concurrent Locate calls
		// are read-only.
		est, err := loc.Locate(observations[0])
		out[0] = BatchResult{Estimate: est, Err: err}
		if len(observations) == 1 {
			return out
		}
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					est, err := loc.Locate(observations[i])
					out[i] = BatchResult{Estimate: est, Err: err}
				}
			}()
		}
		for i := 1; i < len(observations); i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		return out
	}
	for i, obs := range observations {
		est, err := loc.Locate(obs)
		out[i] = BatchResult{Estimate: est, Err: err}
	}
	return out
}
