package localize

import (
	"runtime"
	"sync"
)

// BatchResult pairs one observation's estimate with its error, in the
// input order.
type BatchResult struct {
	Estimate Estimate
	Err      error
}

// Batch localizes many observations concurrently — the server-side
// shape of the toolkit, where one trained service answers a building's
// worth of clients. workers ≤ 0 selects the streaming mode: the fan-out
// feeds the shared scoring pool directly (see BatchInto) instead of
// spawning goroutines, bounded at one in-flight observation per CPU.
// An explicit workers > 1 spawns that many goroutines for the call,
// preserving a caller-chosen parallelism bound. Results preserve input
// order. The locator must be safe for concurrent Locate calls; every
// localizer in this package is — lazy caches (compiled radio maps,
// histogram tables, codes) build under sync.Once, so no priming is
// needed before fanning out.
func Batch(loc Locator, observations []Observation, workers int) []BatchResult {
	out := make([]BatchResult, len(observations))
	if len(observations) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 1 {
			BatchInto(loc, observations, out)
			return out
		}
	}
	if workers > len(observations) {
		workers = len(observations)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					est, err := loc.Locate(observations[i])
					out[i] = BatchResult{Estimate: est, Err: err}
				}
			}()
		}
		for i := range observations {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		return out
	}
	for i, obs := range observations {
		est, err := loc.Locate(obs)
		out[i] = BatchResult{Estimate: est, Err: err}
	}
	return out
}

// batchRun is the shared state of one BatchInto call; jobs carry only
// an index range into it, so the whole fan-out costs a handful of
// allocations regardless of batch size.
type batchRun struct {
	loc Locator
	obs []Observation
	out []BatchResult
}

// locateRange localizes observations [lo, hi) into the output slice.
func (r *batchRun) locateRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		est, err := r.loc.Locate(r.obs[i])
		r.out[i] = BatchResult{Estimate: est, Err: err}
	}
}

// BatchInto is Batch's streaming mode, built for serving loops that
// localize batch after batch: results land in the caller-owned out
// slice (which must hold at least len(observations) results), and each
// observation is offered to the shared scoring pool as one job — no
// per-call goroutines, no per-observation closures. The caller's
// goroutine localizes whatever the pool cannot take immediately, so a
// saturated pool degrades to inline execution rather than queueing,
// and nesting — a pooled observation job whose Locate shards its own
// scan — cannot deadlock. Results preserve input order; out[i] is
// valid when BatchInto returns.
//
//loclint:hotpath
func BatchInto(loc Locator, observations []Observation, out []BatchResult) {
	n := len(observations)
	if n == 0 {
		return
	}
	run := &batchRun{loc: loc, obs: observations, out: out[:n]}
	if n == 1 {
		run.locateRange(0, 1)
		return
	}
	ensureScorePool()
	fn := run.locateRange
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		if !trySubmit(scoreJob{fn: fn, lo: i, hi: i + 1, wg: &wg}) {
			fn(i, i+1)
			wg.Done()
		}
	}
	// The caller always localizes the last observation itself.
	fn(n-1, n)
	wg.Wait()
}
