package localize

import (
	"runtime"
	"sync"
)

// BatchResult pairs one observation's estimate with its error, in the
// input order.
type BatchResult struct {
	Estimate Estimate
	Err      error
}

// Batch localizes many observations concurrently over a worker pool —
// the server-side shape of the toolkit, where one trained service
// answers a building's worth of clients. workers ≤ 0 uses GOMAXPROCS.
// Results preserve input order. The locator must be safe for
// concurrent Locate calls; every localizer in this package is — lazy
// caches (compiled radio maps, histogram tables, codes) build under
// sync.Once, so no priming is needed before fanning out.
func Batch(loc Locator, observations []Observation, workers int) []BatchResult {
	out := make([]BatchResult, len(observations))
	if len(observations) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(observations) {
		workers = len(observations)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					est, err := loc.Locate(observations[i])
					out[i] = BatchResult{Estimate: est, Err: err}
				}
			}()
		}
		for i := range observations {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		return out
	}
	for i, obs := range observations {
		est, err := loc.Locate(obs)
		out[i] = BatchResult{Estimate: est, Err: err}
	}
	return out
}
