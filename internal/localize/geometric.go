package localize

import (
	"errors"
	"fmt"
	"sort"

	"indoorloc/internal/geom"
	"indoorloc/internal/regress"
	"indoorloc/internal/trainingdb"
)

// Combiner selects how the geometric approach merges the pairwise
// circle-intersection points into one estimate.
type Combiner int

const (
	// CombineMedian is the paper's rule: the component-wise median
	// point of P1..P4.
	CombineMedian Combiner = iota
	// CombineCentroid averages the intersection points.
	CombineCentroid
	// CombineGeoMedian uses the Fermat–Weber geometric median.
	CombineGeoMedian
	// CombineLeastSquares skips pairwise intersections entirely and
	// solves the classical multilateration least-squares system.
	CombineLeastSquares
)

// String names the combiner for reports.
func (c Combiner) String() string {
	switch c {
	case CombineMedian:
		return "median"
	case CombineCentroid:
		return "centroid"
	case CombineGeoMedian:
		return "geometric-median"
	case CombineLeastSquares:
		return "least-squares"
	default:
		return fmt.Sprintf("combiner(%d)", int(c))
	}
}

// APModel is one access point's fitted signal↔distance relationship:
// the paper fits each AP separately because antennas, transmit powers
// and surroundings differ.
type APModel struct {
	BSSID string
	Pos   geom.Point
	Model *regress.Model
	// MinDist and MaxDist bracket the model inversion; they come from
	// the span of training distances, padded outward.
	MinDist, MaxDist float64
}

// Geometric is the paper's §5.2 approach: observed RSSI per AP →
// distance via the fitted inverse-square model → circles around the
// APs → pairwise intersection points P1..Pn → combined estimate
// (median point, in the paper).
type Geometric struct {
	APs []APModel
	// Combine selects the merge rule; zero value is the paper's median.
	Combine Combiner
	// MinAPs is the minimum number of usable circles; the geometry
	// needs at least 3 (the paper uses 4). Zero means 3.
	MinAPs int
	// Bounds, when non-zero, clamps the final estimate into the floor
	// rectangle. The paper does not clamp (its §5.2 estimates are raw
	// intersections), so the zero value preserves that behaviour;
	// deployments that know the floor outline should set it — a user
	// cannot be 30 ft outside the building.
	Bounds geom.Rect
}

// Name implements Locator.
func (g *Geometric) Name() string { return "geometric-" + g.Combine.String() }

// FitGeometric builds a Geometric localizer from a training database
// and the AP positions (keyed by BSSID, plan-frame feet). Each AP's
// samples are regressed on distance under the basis; pass
// regress.InversePowerBasis{Degree: 2, MinDist: 1} for the paper's
// reverse-square model. APs with too few samples or a singular fit are
// skipped; fewer than three surviving APs is an error.
func FitGeometric(db *trainingdb.DB, apPositions map[string]geom.Point, basis regress.Basis) (*Geometric, error) {
	if db == nil || db.Len() == 0 {
		return nil, errors.New("localize: FitGeometric needs a training database")
	}
	if len(apPositions) == 0 {
		return nil, errors.New("localize: FitGeometric needs AP positions")
	}
	g := &Geometric{}
	// Deterministic AP order.
	bssids := make([]string, 0, len(apPositions))
	for b := range apPositions {
		bssids = append(bssids, b)
	}
	sort.Strings(bssids)
	for _, bssid := range bssids {
		pos := apPositions[bssid]
		dists, rssis := db.DistanceSamples(bssid, pos)
		if len(dists) == 0 {
			continue
		}
		model, err := regress.Fit(basis, dists, rssis)
		if err != nil {
			continue // not enough diversity for this AP; skip it
		}
		minD, maxD := dists[0], dists[0]
		for _, d := range dists[1:] {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		if minD > 1 {
			minD = 1
		}
		g.APs = append(g.APs, APModel{
			BSSID:   bssid,
			Pos:     pos,
			Model:   model,
			MinDist: minD,
			MaxDist: maxD * 1.5,
		})
	}
	if len(g.APs) < 3 {
		return nil, fmt.Errorf("localize: only %d APs fitted; geometric approach needs 3", len(g.APs))
	}
	return g, nil
}

// Distances inverts each fitted model at the observed levels,
// returning one circle per AP heard in the observation. Observations
// outside a model's range clamp to the bracket edge (ErrNoRoot from
// the inverter is tolerated: a stronger-than-trained reading means
// "very close").
func (g *Geometric) Distances(obs Observation) []geom.Circle {
	var circles []geom.Circle
	for _, ap := range g.APs {
		level, ok := obs[ap.BSSID]
		if !ok {
			continue
		}
		d, err := regress.Invert(ap.Model, level, ap.MinDist, ap.MaxDist)
		if err != nil && !errors.Is(err, regress.ErrNoRoot) {
			continue
		}
		circles = append(circles, geom.Circle{C: ap.Pos, R: d})
	}
	return circles
}

// Locate implements Locator.
func (g *Geometric) Locate(obs Observation) (Estimate, error) {
	if err := validateObservation(obs); err != nil {
		return Estimate{}, err
	}
	if len(g.APs) == 0 {
		return Estimate{}, errors.New("localize: Geometric has no fitted APs")
	}
	circles := g.Distances(obs)
	minAPs := g.MinAPs
	if minAPs <= 0 {
		minAPs = 3
	}
	if len(circles) == 0 {
		return Estimate{}, ErrNoOverlap
	}
	if len(circles) < minAPs {
		return Estimate{}, ErrTooFewAPs
	}
	centers := make([]geom.Point, len(circles))
	for i, c := range circles {
		centers[i] = c.C
	}
	hint := geom.Centroid(centers)
	var pos geom.Point
	switch g.Combine {
	case CombineLeastSquares:
		p, ok := geom.Trilaterate(circles)
		if !ok {
			return Estimate{}, errors.New("localize: multilateration singular (collinear APs?)")
		}
		pos = p
	default:
		pts := geom.PairwiseIntersections(circles, hint)
		switch g.Combine {
		case CombineCentroid:
			pos = geom.Centroid(pts)
		case CombineGeoMedian:
			pos = geom.GeometricMedian(pts, 200, 1e-9)
		default: // CombineMedian, the paper's rule
			pos = geom.MedianPoint(pts)
		}
	}
	if g.Bounds.Width() > 0 && g.Bounds.Height() > 0 {
		pos = g.Bounds.Clamp(pos)
	}
	return Estimate{Pos: pos, Score: float64(len(circles))}, nil
}
