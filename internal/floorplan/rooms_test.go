package floorplan

import (
	"bytes"
	"testing"

	"indoorloc/internal/geom"
)

func kitchenPoly() geom.Polygon {
	return geom.Polygon{geom.Pt(0, 25), geom.Pt(25, 25), geom.Pt(25, 40), geom.Pt(0, 40)}
}

func TestAddRoomValidation(t *testing.T) {
	p := New("house")
	if err := p.AddRoom("", kitchenPoly()); err == nil {
		t.Error("unnamed room accepted")
	}
	if err := p.AddRoom("line", geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 1)}); err == nil {
		t.Error("degenerate polygon accepted")
	}
	if err := p.AddRoom("kitchen", kitchenPoly()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRoom("kitchen", kitchenPoly()); err == nil {
		t.Error("duplicate room accepted")
	}
	// The stored polygon is a copy: mutating the input is harmless.
	poly := kitchenPoly()
	p2 := New("x")
	p2.AddRoom("r", poly)
	poly[0] = geom.Pt(99, 99)
	if p2.Rooms[0].Poly[0] != geom.Pt(0, 25) {
		t.Error("room polygon aliases caller slice")
	}
}

func TestRoomAt(t *testing.T) {
	p := New("house")
	p.AddRoom("kitchen", kitchenPoly())
	p.AddRoom("hall", geom.Polygon{
		geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 25), geom.Pt(0, 25),
	})
	if name, ok := p.RoomAt(geom.Pt(5, 35)); !ok || name != "kitchen" {
		t.Errorf("RoomAt kitchen = %q %v", name, ok)
	}
	if name, ok := p.RoomAt(geom.Pt(40, 10)); !ok || name != "hall" {
		t.Errorf("RoomAt hall = %q %v", name, ok)
	}
	if _, ok := p.RoomAt(geom.Pt(45, 39)); ok {
		t.Error("point outside all rooms matched")
	}
	// Boundary points match the first registered room.
	if name, _ := p.RoomAt(geom.Pt(10, 25)); name != "kitchen" {
		t.Errorf("shared boundary = %q", name)
	}
}

func TestRemoveRoomAndNames(t *testing.T) {
	p := New("house")
	p.AddRoom("a", kitchenPoly())
	p.AddRoom("b", geom.Polygon{geom.Pt(30, 0), geom.Pt(50, 0), geom.Pt(50, 20)})
	if got := p.RoomNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("RoomNames = %v", got)
	}
	if p.RemoveRoom("ghost") {
		t.Error("removed nonexistent room")
	}
	if !p.RemoveRoom("a") {
		t.Fatal("failed to remove a")
	}
	if got := p.RoomNames(); len(got) != 1 || got[0] != "b" {
		t.Errorf("RoomNames = %v", got)
	}
}

func TestRoomsSurviveSaveLoad(t *testing.T) {
	p := annotatedPlan(t)
	if err := p.AddRoom("kitchen", kitchenPoly()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rooms) != 1 || back.Rooms[0].Name != "kitchen" {
		t.Fatalf("rooms after round trip: %v", back.Rooms)
	}
	if name, ok := back.RoomAt(geom.Pt(5, 30)); !ok || name != "kitchen" {
		t.Errorf("loaded RoomAt = %q %v", name, ok)
	}
}
