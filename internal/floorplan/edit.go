package floorplan

import (
	"errors"
	"fmt"
	"image"
)

// RemoveAP deletes the first AP marker with the given name, returning
// false when none matches.
func (p *Plan) RemoveAP(name string) bool {
	for i, m := range p.APs {
		if m.Name == name {
			p.APs = append(p.APs[:i], p.APs[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveLocation deletes the first named location matching name,
// returning false when none matches.
func (p *Plan) RemoveLocation(name string) bool {
	for i, m := range p.Locations {
		if m.Name == name {
			p.Locations = append(p.Locations[:i], p.Locations[i+1:]...)
			return true
		}
	}
	return false
}

// RenameLocation changes a location's name, preserving its pixel. It
// fails when the old name is absent, the new name is empty, or the new
// name already exists (location names key training data, so collisions
// would corrupt downstream joins).
func (p *Plan) RenameLocation(oldName, newName string) error {
	if newName == "" {
		return errors.New("floorplan: new location name is empty")
	}
	if oldName == newName {
		return nil
	}
	for _, m := range p.Locations {
		if m.Name == newName {
			return fmt.Errorf("floorplan: location %q already exists", newName)
		}
	}
	for i, m := range p.Locations {
		if m.Name == oldName {
			p.Locations[i].Name = newName
			return nil
		}
	}
	return fmt.Errorf("floorplan: no location %q", oldName)
}

// ClearWalls removes every wall segment.
func (p *Plan) ClearWalls() { p.Walls = nil }

// Validate checks the plan's internal consistency: a usable scale when
// any annotations exist, unique location names, and in-bounds pixels
// when an image is attached. It returns nil for an un-annotated plan.
func (p *Plan) Validate() error {
	if (len(p.APs) > 0 || len(p.Locations) > 0) && p.FeetPerPixel == 0 {
		return ErrNoScale
	}
	seen := make(map[string]bool, len(p.Locations))
	for _, m := range p.Locations {
		if m.Name == "" {
			return errors.New("floorplan: unnamed location marker")
		}
		if seen[m.Name] {
			return fmt.Errorf("floorplan: duplicate location %q", m.Name)
		}
		seen[m.Name] = true
	}
	if p.img != nil {
		// The closed rectangle is allowed: operators click the far edge
		// of the image for corners and origins, which image.Rectangle's
		// half-open convention would otherwise reject.
		b := p.img.Bounds()
		inside := func(px image.Point) bool {
			return px.X >= b.Min.X && px.X <= b.Max.X &&
				px.Y >= b.Min.Y && px.Y <= b.Max.Y
		}
		for _, m := range p.APs {
			if !inside(m.Pixel) {
				return fmt.Errorf("floorplan: AP %q pixel %v outside image %v", m.Name, m.Pixel, b)
			}
		}
		for _, m := range p.Locations {
			if !inside(m.Pixel) {
				return fmt.Errorf("floorplan: location %q pixel %v outside image %v", m.Name, m.Pixel, b)
			}
		}
	}
	return nil
}
