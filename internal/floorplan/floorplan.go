// Package floorplan models the annotated floor plan at the heart of
// the toolkit's Floor Plan Processor. A Plan wraps a scanned GIF image
// of the physical space and carries the six annotations the paper's
// GUI collects:
//
//  1. the floor-plan image itself (GIF),
//  2. access-point positions (clicked pixels),
//  3. the image scale (two clicked pixels plus the real distance
//     between them),
//  4. the point of origin (a clicked pixel),
//  5. named locations, and
//  6. a save format carrying all of the above.
//
// Pixel coordinates are what the operator clicks; the scale and origin
// convert them to the plan's real-world frame (feet, +X right and
// +Y up, so the world frame is right-handed even though image rows
// grow downward). Walls are an extension beyond the paper's GUI —
// they let the same file drive the RF simulator.
package floorplan

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/gif"
	"io"
	"math"
	"os"
	"sort"

	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/units"
)

// Marker is a named, clicked pixel.
type Marker struct {
	Name  string      `json:"name"`
	Pixel image.Point `json:"pixel"`
}

// Plan is an annotated floor plan.
type Plan struct {
	// Name labels the plan ("experiment house").
	Name string
	// FeetPerPixel is the image scale; zero means not yet set.
	FeetPerPixel float64
	// Origin is the pixel representing world (0, 0).
	Origin image.Point
	// APs are the access-point markers.
	APs []Marker
	// Locations are the named application-level locations.
	Locations []Marker
	// Walls are wall segments in world coordinates (extension).
	Walls []geom.Segment
	// Rooms are named polygonal regions in world coordinates
	// (extension); see AddRoom/RoomAt.
	Rooms []Room

	img       *image.Paletted
	gifFrames *gif.GIF
}

// New returns an empty plan with the given name.
func New(name string) *Plan { return &Plan{Name: name} }

// Errors reported by Plan operations.
var (
	ErrNoImage     = errors.New("floorplan: no image loaded")
	ErrNoScale     = errors.New("floorplan: scale not set")
	ErrZeroScale   = errors.New("floorplan: the two scale points coincide")
	ErrBadDistance = errors.New("floorplan: real distance must be positive and finite")
)

// LoadImage attaches a GIF image from r — the Processor's "load the
// floor plan GIF image" function. Currently only GIF format is
// accepted, matching the paper's tool.
func (p *Plan) LoadImage(r io.Reader) error {
	g, err := gif.DecodeAll(r)
	if err != nil {
		return fmt.Errorf("floorplan: decoding GIF: %w", err)
	}
	if len(g.Image) == 0 {
		return errors.New("floorplan: GIF has no frames")
	}
	p.gifFrames = g
	p.img = g.Image[0]
	return nil
}

// LoadImageFile attaches a GIF from disk.
func (p *Plan) LoadImageFile(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("floorplan: %w", err)
	}
	defer fh.Close()
	return p.LoadImage(fh)
}

// SetImage attaches an in-memory paletted image directly (used by the
// blueprint generator, bypassing GIF encode/decode).
func (p *Plan) SetImage(img *image.Paletted) {
	p.img = img
	p.gifFrames = &gif.GIF{Image: []*image.Paletted{img}, Delay: []int{0}}
}

// Image returns the plan's image, or nil when none is loaded.
func (p *Plan) Image() *image.Paletted { return p.img }

// HasImage reports whether an image is attached.
func (p *Plan) HasImage() bool { return p.img != nil }

// SetScale implements the Processor's "set the scale" function: the
// operator clicks two pixels and states the real distance between
// them.
func (p *Plan) SetScale(a, b image.Point, realDist units.Feet) error {
	if realDist <= 0 || math.IsInf(float64(realDist), 0) || math.IsNaN(float64(realDist)) {
		return ErrBadDistance
	}
	dx := float64(b.X - a.X)
	dy := float64(b.Y - a.Y)
	px := math.Hypot(dx, dy)
	if px == 0 {
		return ErrZeroScale
	}
	p.FeetPerPixel = float64(realDist) / px
	return nil
}

// SetOrigin implements the Processor's "set the point of origin".
func (p *Plan) SetOrigin(px image.Point) { p.Origin = px }

// AddAP implements "add access points": name may be empty, in which
// case a sequential name is assigned.
func (p *Plan) AddAP(name string, px image.Point) {
	if name == "" {
		name = fmt.Sprintf("AP-%d", len(p.APs)+1)
	}
	p.APs = append(p.APs, Marker{Name: name, Pixel: px})
}

// AddLocation implements "add location names".
func (p *Plan) AddLocation(name string, px image.Point) error {
	if name == "" {
		return errors.New("floorplan: location needs a name")
	}
	p.Locations = append(p.Locations, Marker{Name: name, Pixel: px})
	return nil
}

// AddWall records a wall segment in world coordinates (extension).
func (p *Plan) AddWall(s geom.Segment) { p.Walls = append(p.Walls, s) }

// ToWorld converts a clicked pixel to plan-frame feet. The world frame
// is right-handed: image rows grow downward, so Y is negated.
func (p *Plan) ToWorld(px image.Point) (geom.Point, error) {
	if p.FeetPerPixel == 0 {
		return geom.Point{}, ErrNoScale
	}
	return geom.Pt(
		float64(px.X-p.Origin.X)*p.FeetPerPixel,
		float64(p.Origin.Y-px.Y)*p.FeetPerPixel,
	), nil
}

// ToPixel converts a world point to the nearest pixel.
func (p *Plan) ToPixel(w geom.Point) (image.Point, error) {
	if p.FeetPerPixel == 0 {
		return image.Point{}, ErrNoScale
	}
	return image.Pt(
		p.Origin.X+int(math.Round(w.X/p.FeetPerPixel)),
		p.Origin.Y-int(math.Round(w.Y/p.FeetPerPixel)),
	), nil
}

// APPositions returns the APs' world coordinates keyed by name.
func (p *Plan) APPositions() (map[string]geom.Point, error) {
	out := make(map[string]geom.Point, len(p.APs))
	for _, m := range p.APs {
		w, err := p.ToWorld(m.Pixel)
		if err != nil {
			return nil, err
		}
		out[m.Name] = w
	}
	return out, nil
}

// LocationMap converts the named locations into a locmap.Map in world
// coordinates — the bridge from the Processor's annotations to the
// Training Database Generator's input.
func (p *Plan) LocationMap() (*locmap.Map, error) {
	m := locmap.New()
	for _, mk := range p.Locations {
		w, err := p.ToWorld(mk.Pixel)
		if err != nil {
			return nil, err
		}
		if err := m.Add(mk.Name, w); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LocationNames returns the location names, sorted.
func (p *Plan) LocationNames() []string {
	out := make([]string, 0, len(p.Locations))
	for _, m := range p.Locations {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// planFile is the JSON save format. The GIF travels base64-embedded so
// a plan file is self-contained.
type planFile struct {
	Version      int            `json:"version"`
	Name         string         `json:"name"`
	FeetPerPixel float64        `json:"feet_per_pixel"`
	Origin       image.Point    `json:"origin"`
	APs          []Marker       `json:"aps,omitempty"`
	Locations    []Marker       `json:"locations,omitempty"`
	Walls        []geom.Segment `json:"walls,omitempty"`
	Rooms        []Room         `json:"rooms,omitempty"`
	GIF          []byte         `json:"gif,omitempty"`
}

// Save implements the Processor's "save the floor plan": everything —
// image included — in one stream.
func (p *Plan) Save(w io.Writer) error {
	pf := planFile{
		Version:      1,
		Name:         p.Name,
		FeetPerPixel: p.FeetPerPixel,
		Origin:       p.Origin,
		APs:          p.APs,
		Locations:    p.Locations,
		Walls:        p.Walls,
		Rooms:        p.Rooms,
	}
	if p.gifFrames != nil {
		var buf bytes.Buffer
		if err := gif.EncodeAll(&buf, p.gifFrames); err != nil {
			return fmt.Errorf("floorplan: encoding GIF: %w", err)
		}
		pf.GIF = buf.Bytes()
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&pf); err != nil {
		return fmt.Errorf("floorplan: encoding plan: %w", err)
	}
	return nil
}

// Load restores a plan written by Save.
func Load(r io.Reader) (*Plan, error) {
	var pf planFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&pf); err != nil {
		return nil, fmt.Errorf("floorplan: decoding plan: %w", err)
	}
	if pf.Version != 1 {
		return nil, fmt.Errorf("floorplan: unsupported plan version %d", pf.Version)
	}
	p := &Plan{
		Name:         pf.Name,
		FeetPerPixel: pf.FeetPerPixel,
		Origin:       pf.Origin,
		APs:          pf.APs,
		Locations:    pf.Locations,
		Walls:        pf.Walls,
		Rooms:        pf.Rooms,
	}
	if len(pf.GIF) > 0 {
		if err := p.LoadImage(bytes.NewReader(pf.GIF)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// SaveFile writes the plan to disk.
func (p *Plan) SaveFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("floorplan: %w", err)
	}
	if err := p.Save(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// LoadFile reads a plan from disk.
func LoadFile(path string) (*Plan, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("floorplan: %w", err)
	}
	defer fh.Close()
	return Load(fh)
}
