package floorplan

import (
	"image"
	"testing"

	"indoorloc/internal/geom"
)

func TestRemoveAP(t *testing.T) {
	p := annotatedPlan(t)
	if p.RemoveAP("ghost") {
		t.Error("removed nonexistent AP")
	}
	if !p.RemoveAP("A") {
		t.Fatal("failed to remove A")
	}
	if len(p.APs) != 1 || p.APs[0].Name != "AP-2" {
		t.Errorf("APs = %v", p.APs)
	}
}

func TestRemoveLocation(t *testing.T) {
	p := annotatedPlan(t)
	if p.RemoveLocation("attic") {
		t.Error("removed nonexistent location")
	}
	if !p.RemoveLocation("kitchen") {
		t.Fatal("failed to remove kitchen")
	}
	if len(p.Locations) != 0 {
		t.Errorf("Locations = %v", p.Locations)
	}
}

func TestRenameLocation(t *testing.T) {
	p := annotatedPlan(t)
	p.AddLocation("pantry", image.Pt(2, 2))
	if err := p.RenameLocation("kitchen", ""); err == nil {
		t.Error("empty new name accepted")
	}
	if err := p.RenameLocation("kitchen", "pantry"); err == nil {
		t.Error("collision accepted")
	}
	if err := p.RenameLocation("ghost", "x"); err == nil {
		t.Error("renaming ghost accepted")
	}
	if err := p.RenameLocation("kitchen", "kitchen"); err != nil {
		t.Errorf("no-op rename failed: %v", err)
	}
	if err := p.RenameLocation("kitchen", "scullery"); err != nil {
		t.Fatal(err)
	}
	names := p.LocationNames()
	if len(names) != 2 || names[0] != "pantry" || names[1] != "scullery" {
		t.Errorf("names = %v", names)
	}
	// Pixel preserved.
	for _, m := range p.Locations {
		if m.Name == "scullery" && m.Pixel != image.Pt(1, 1) {
			t.Errorf("pixel moved: %v", m.Pixel)
		}
	}
}

func TestClearWalls(t *testing.T) {
	p := annotatedPlan(t)
	p.AddWall(geom.Seg(geom.Pt(0, 0), geom.Pt(10, 10)))
	p.ClearWalls()
	if len(p.Walls) != 0 {
		t.Error("walls survived")
	}
}

func TestValidate(t *testing.T) {
	// Bare plan: fine.
	if err := New("bare").Validate(); err != nil {
		t.Errorf("bare plan: %v", err)
	}
	// Annotations without scale: rejected.
	noScale := New("x")
	noScale.AddAP("A", image.Pt(1, 1))
	if err := noScale.Validate(); err != ErrNoScale {
		t.Errorf("no scale: %v", err)
	}
	// Healthy plan passes.
	p := annotatedPlan(t)
	if err := p.Validate(); err != nil {
		t.Errorf("healthy plan: %v", err)
	}
	// Duplicate location names.
	p.Locations = append(p.Locations, p.Locations[0])
	if err := p.Validate(); err == nil {
		t.Error("duplicate locations accepted")
	}
	// Out-of-image pixel.
	p2 := annotatedPlan(t)
	p2.AddAP("far", image.Pt(999, 999))
	if err := p2.Validate(); err == nil {
		t.Error("out-of-image AP accepted")
	}
	// Unnamed location marker (forced directly).
	p3 := annotatedPlan(t)
	p3.Locations[0].Name = ""
	if err := p3.Validate(); err == nil {
		t.Error("unnamed location accepted")
	}
}
