package floorplan

import (
	"errors"
	"fmt"

	"indoorloc/internal/geom"
)

// Room is a named region of the floor in world coordinates. Rooms give
// the working phase a second abstraction level beyond nearest training
// point: an estimate is "in room D22" when the room's polygon contains
// it — the shape of answer the paper's motivating applications
// (call forwarding, conference material) actually consume.
type Room struct {
	Name string       `json:"name"`
	Poly geom.Polygon `json:"poly"`
}

// AddRoom registers a named room region. Names must be unique and
// polygons valid.
func (p *Plan) AddRoom(name string, poly geom.Polygon) error {
	if name == "" {
		return errors.New("floorplan: room needs a name")
	}
	if err := poly.Validate(); err != nil {
		return fmt.Errorf("floorplan: room %q: %w", name, err)
	}
	for _, r := range p.Rooms {
		if r.Name == name {
			return fmt.Errorf("floorplan: room %q already exists", name)
		}
	}
	p.Rooms = append(p.Rooms, Room{Name: name, Poly: append(geom.Polygon(nil), poly...)})
	return nil
}

// RemoveRoom deletes a room by name, returning false when absent.
func (p *Plan) RemoveRoom(name string) bool {
	for i, r := range p.Rooms {
		if r.Name == name {
			p.Rooms = append(p.Rooms[:i], p.Rooms[i+1:]...)
			return true
		}
	}
	return false
}

// RoomAt returns the name of the room containing the world point.
// When rooms overlap the first registered match wins; ok is false when
// no room contains the point.
func (p *Plan) RoomAt(w geom.Point) (string, bool) {
	for _, r := range p.Rooms {
		if r.Poly.Contains(w) {
			return r.Name, true
		}
	}
	return "", false
}

// RoomNames returns the room names in registration order.
func (p *Plan) RoomNames() []string {
	out := make([]string, len(p.Rooms))
	for i, r := range p.Rooms {
		out[i] = r.Name
	}
	return out
}
