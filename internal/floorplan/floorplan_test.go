package floorplan

import (
	"bytes"
	"image"
	"image/color"
	"image/gif"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/geom"
)

// tinyGIF returns an encoded 10×8 GIF.
func tinyGIF(t *testing.T) []byte {
	t.Helper()
	img := image.NewPaletted(image.Rect(0, 0, 10, 8), color.Palette{
		color.White, color.Black,
	})
	var buf bytes.Buffer
	if err := gif.Encode(&buf, img, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func annotatedPlan(t *testing.T) *Plan {
	t.Helper()
	p := New("experiment house")
	if err := p.LoadImage(bytes.NewReader(tinyGIF(t))); err != nil {
		t.Fatal(err)
	}
	// 10 px between the clicked points = 50 ft → 5 ft/px.
	if err := p.SetScale(image.Pt(0, 0), image.Pt(10, 0), 50); err != nil {
		t.Fatal(err)
	}
	p.SetOrigin(image.Pt(0, 8)) // bottom-left pixel
	p.AddAP("A", image.Pt(0, 8))
	p.AddAP("", image.Pt(10, 8))
	if err := p.AddLocation("kitchen", image.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadImage(t *testing.T) {
	p := New("x")
	if p.HasImage() {
		t.Error("fresh plan has image")
	}
	if err := p.LoadImage(bytes.NewReader(tinyGIF(t))); err != nil {
		t.Fatal(err)
	}
	if !p.HasImage() || p.Image().Bounds().Dx() != 10 {
		t.Error("image not attached")
	}
	// Only GIF is accepted.
	if err := New("y").LoadImage(strings.NewReader("not a gif")); err == nil {
		t.Error("non-GIF accepted")
	}
}

func TestSetScaleValidation(t *testing.T) {
	p := New("x")
	if err := p.SetScale(image.Pt(3, 3), image.Pt(3, 3), 10); err != ErrZeroScale {
		t.Errorf("coincident points: %v", err)
	}
	if err := p.SetScale(image.Pt(0, 0), image.Pt(1, 0), 0); err != ErrBadDistance {
		t.Errorf("zero distance: %v", err)
	}
	if err := p.SetScale(image.Pt(0, 0), image.Pt(1, 0), -2); err != ErrBadDistance {
		t.Errorf("negative distance: %v", err)
	}
	if err := p.SetScale(image.Pt(0, 0), image.Pt(3, 4), 10); err != nil {
		t.Fatal(err)
	}
	if p.FeetPerPixel != 2 {
		t.Errorf("FeetPerPixel = %v", p.FeetPerPixel)
	}
}

func TestWorldPixelRoundTrip(t *testing.T) {
	p := annotatedPlan(t)
	// Origin pixel maps to world (0,0).
	w, err := p.ToWorld(image.Pt(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if w != geom.Pt(0, 0) {
		t.Errorf("origin maps to %v", w)
	}
	// One pixel right and one up (y-1 in image space) = (5, 5) ft.
	w, _ = p.ToWorld(image.Pt(1, 7))
	if w != geom.Pt(5, 5) {
		t.Errorf("pixel (1,7) = %v, want (5,5)", w)
	}
	// Round trip.
	px, err := p.ToPixel(geom.Pt(25, 20))
	if err != nil {
		t.Fatal(err)
	}
	if px != image.Pt(5, 4) {
		t.Errorf("ToPixel = %v", px)
	}
	back, _ := p.ToWorld(px)
	if back != geom.Pt(25, 20) {
		t.Errorf("round trip = %v", back)
	}
}

func TestConversionRequiresScale(t *testing.T) {
	p := New("x")
	if _, err := p.ToWorld(image.Pt(0, 0)); err != ErrNoScale {
		t.Errorf("ToWorld: %v", err)
	}
	if _, err := p.ToPixel(geom.Pt(0, 0)); err != ErrNoScale {
		t.Errorf("ToPixel: %v", err)
	}
	if _, err := p.APPositions(); err != nil && err != ErrNoScale {
		t.Errorf("APPositions: %v", err)
	}
}

func TestAPsAndLocations(t *testing.T) {
	p := annotatedPlan(t)
	if p.APs[1].Name != "AP-2" {
		t.Errorf("auto name = %q", p.APs[1].Name)
	}
	pos, err := p.APPositions()
	if err != nil {
		t.Fatal(err)
	}
	if pos["A"] != geom.Pt(0, 0) {
		t.Errorf("AP A at %v", pos["A"])
	}
	if pos["AP-2"] != geom.Pt(50, 0) {
		t.Errorf("AP-2 at %v", pos["AP-2"])
	}
	if err := p.AddLocation("", image.Pt(0, 0)); err == nil {
		t.Error("unnamed location accepted")
	}
	if got := p.LocationNames(); len(got) != 1 || got[0] != "kitchen" {
		t.Errorf("LocationNames = %v", got)
	}
}

func TestLocationMap(t *testing.T) {
	p := annotatedPlan(t)
	m, err := p.LocationMap()
	if err != nil {
		t.Fatal(err)
	}
	// kitchen clicked at pixel (1,1): world (5, 35).
	w, ok := m.Lookup("kitchen")
	if !ok || w != geom.Pt(5, 35) {
		t.Errorf("kitchen = %v %v", w, ok)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := annotatedPlan(t)
	p.AddWall(geom.Seg(geom.Pt(25, 0), geom.Pt(25, 40)))
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.FeetPerPixel != p.FeetPerPixel || back.Origin != p.Origin {
		t.Error("scalar fields lost")
	}
	if len(back.APs) != 2 || back.APs[0].Name != "A" {
		t.Errorf("APs = %v", back.APs)
	}
	if len(back.Locations) != 1 || back.Locations[0].Name != "kitchen" {
		t.Errorf("Locations = %v", back.Locations)
	}
	if len(back.Walls) != 1 || back.Walls[0] != geom.Seg(geom.Pt(25, 0), geom.Pt(25, 40)) {
		t.Errorf("Walls = %v", back.Walls)
	}
	if !back.HasImage() || back.Image().Bounds() != p.Image().Bounds() {
		t.Error("image lost in round trip")
	}
}

func TestSaveLoadWithoutImage(t *testing.T) {
	p := New("bare")
	p.SetOrigin(image.Pt(5, 5))
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.HasImage() {
		t.Error("phantom image appeared")
	}
	if back.Origin != image.Pt(5, 5) {
		t.Errorf("Origin = %v", back.Origin)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	p := annotatedPlan(t)
	path := filepath.Join(t.TempDir(), "house.plan")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name {
		t.Error("file round trip lost name")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.plan")); err == nil {
		t.Error("missing file accepted")
	}
}
