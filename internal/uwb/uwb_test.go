package uwb

import (
	"math"
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

func houseAnchors() []Anchor {
	return []Anchor{
		{ID: "u0", Pos: geom.Pt(0, 0)},
		{ID: "u1", Pos: geom.Pt(50, 0)},
		{ID: "u2", Pos: geom.Pt(50, 40)},
		{ID: "u3", Pos: geom.Pt(0, 40)},
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(houseAnchors()[:2], nil, Channel{}); err == nil {
		t.Error("two anchors accepted")
	}
	dup := []Anchor{{ID: "a"}, {ID: "a"}, {ID: "b"}}
	if _, err := NewSystem(dup, nil, Channel{}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	anon := []Anchor{{ID: ""}, {ID: "a"}, {ID: "b"}}
	if _, err := NewSystem(anon, nil, Channel{}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := NewSystem(houseAnchors(), nil, Channel{}); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
}

func TestRangeLOSAccuracy(t *testing.T) {
	s, err := NewSystem(houseAnchors(), nil, Channel{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p := geom.Pt(20, 25)
	var errs stats.Running
	for i := 0; i < 500; i++ {
		d, ok := s.Range(p, 0, rng)
		if !ok {
			t.Fatal("LOS range failed")
		}
		errs.Add(d - p.Dist(geom.Pt(0, 0)))
	}
	// LOS UWB: errors on the order of the 0.1 ns jitter ≈ 0.1 ft.
	if math.Abs(errs.Mean()) > 0.05 {
		t.Errorf("LOS bias = %v ft", errs.Mean())
	}
	if errs.StdDev() > 0.2 {
		t.Errorf("LOS spread = %v ft", errs.StdDev())
	}
}

func TestRangeNLOSBias(t *testing.T) {
	// Four walls between tag and anchor 0: LOS amplitude 0.0625, below
	// the 0.12 detection threshold set by the strongest echo (0.6) →
	// the leading-edge detector locks a later path → the measured
	// distance is positively biased.
	walls := []geom.Segment{
		geom.Seg(geom.Pt(10, -1), geom.Pt(10, 41)),
		geom.Seg(geom.Pt(12, -1), geom.Pt(12, 41)),
		geom.Seg(geom.Pt(14, -1), geom.Pt(14, 41)),
		geom.Seg(geom.Pt(16, -1), geom.Pt(16, 41)),
	}
	s, err := NewSystem(houseAnchors(), walls, Channel{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	p := geom.Pt(20, 25)
	var errs stats.Running
	for i := 0; i < 500; i++ {
		d, ok := s.Range(p, 0, rng)
		if !ok {
			continue
		}
		errs.Add(d - p.Dist(geom.Pt(0, 0)))
	}
	if errs.Mean() < 1 {
		t.Errorf("NLOS bias = %v ft, expected positive bias of feet", errs.Mean())
	}
}

func TestRangeNeverNegative(t *testing.T) {
	s, _ := NewSystem(houseAnchors(), nil, Channel{JitterNs: 5})
	rng := rand.New(rand.NewSource(3))
	p := geom.Pt(0.5, 0.5) // nearly on top of anchor 0
	for i := 0; i < 200; i++ {
		d, ok := s.Range(p, 0, rng)
		if ok && d < 0 {
			t.Fatalf("negative distance %v", d)
		}
	}
}

func TestLocateAccuracy(t *testing.T) {
	s, err := NewSystem(houseAnchors(), nil, Channel{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, target := range []geom.Point{
		geom.Pt(25, 20), geom.Pt(10, 30), geom.Pt(40, 8),
	} {
		est, ok := s.Locate(target, rng)
		if !ok {
			t.Fatalf("%v: locate failed", target)
		}
		if d := est.Dist(target); d > 0.5 {
			t.Errorf("%v: UWB error %.3f ft, want sub-half-foot", target, d)
		}
	}
}

func TestLocateBeatsMultiFootErrors(t *testing.T) {
	// The headline contrast for experiment A6: UWB positioning error is
	// orders of magnitude below RSSI ranging's feet-scale error.
	s, _ := NewSystem(houseAnchors(), nil, Channel{})
	rng := rand.New(rand.NewSource(5))
	var errs stats.Running
	for i := 0; i < 100; i++ {
		target := geom.Pt(rng.Float64()*50, rng.Float64()*40)
		est, ok := s.Locate(target, rng)
		if !ok {
			continue
		}
		errs.Add(est.Dist(target))
	}
	if errs.Mean() > 0.3 {
		t.Errorf("mean UWB error %.3f ft", errs.Mean())
	}
}

func TestChannelDefaults(t *testing.T) {
	c := Channel{}.withDefaults()
	if c.JitterNs != 0.1 || c.Paths != 4 || c.MeanExcessNs != 8 ||
		c.EchoDecay != 0.6 || c.WallLoss != 0.5 || c.DetectThreshold != 0.2 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = Channel{JitterNs: 1, Paths: 2}.withDefaults()
	if c.JitterNs != 1 || c.Paths != 2 {
		t.Errorf("explicit values overwritten: %+v", c)
	}
}
