// Package uwb simulates ultra-wide-band impulse-radio ranging, the
// paper's future-work direction §6.3 for escaping RSSI instability.
//
// The property the paper cites is modelled directly: a UWB burst is so
// short (tens of picoseconds to tens of nanoseconds) that in an indoor
// environment the multipath copies arrive at *discrete, separable*
// intervals, so the receiver can detect the leading edge — the
// line-of-sight arrival — and convert its time of arrival (ToA) into a
// distance with centimetre-class error, instead of inferring distance
// from an amplitude that fading has scrambled.
//
// The simulator emits, per ranging exchange, a set of discrete
// arrivals (LOS plus multipath echoes with decaying amplitude),
// applies wall attenuation to the LOS amplitude, runs a
// threshold-based leading-edge detector, and adds receiver clock
// jitter. Blocked LOS therefore produces the classic positive NLOS
// bias: the detector locks onto a later echo.
package uwb

import (
	"errors"
	"fmt"
	"math/rand"

	"indoorloc/internal/geom"
)

// FeetPerNanosecond is the speed of light in feet per nanosecond.
const FeetPerNanosecond = 0.983571056

// Anchor is a fixed UWB transceiver with a known position.
type Anchor struct {
	ID  string
	Pos geom.Point
}

// Channel describes the impulse-radio propagation and receiver.
type Channel struct {
	// JitterNs is the receiver timestamp jitter (standard deviation,
	// nanoseconds). Zero means 0.1 ns (~3 cm).
	JitterNs float64
	// Paths is the number of multipath echoes after the LOS arrival.
	// Zero means 4.
	Paths int
	// MeanExcessNs is the mean excess delay between successive echoes.
	// Zero means 8 ns (typical indoor).
	MeanExcessNs float64
	// EchoDecay is the per-echo amplitude factor in (0, 1); each echo
	// is this fraction of the previous arrival's amplitude. Zero means
	// 0.6.
	EchoDecay float64
	// WallLoss is the LOS amplitude factor per intervening wall in
	// (0, 1]; zero means 0.5 (3 dB of field amplitude per wall).
	WallLoss float64
	// DetectThreshold is the leading-edge detector's amplitude
	// threshold as a fraction of the strongest arrival. Zero means 0.2.
	DetectThreshold float64
}

func (c Channel) withDefaults() Channel {
	if c.JitterNs == 0 {
		c.JitterNs = 0.1
	}
	if c.Paths == 0 {
		c.Paths = 4
	}
	if c.MeanExcessNs == 0 {
		c.MeanExcessNs = 8
	}
	if c.EchoDecay == 0 {
		c.EchoDecay = 0.6
	}
	if c.WallLoss == 0 {
		c.WallLoss = 0.5
	}
	if c.DetectThreshold == 0 {
		c.DetectThreshold = 0.2
	}
	return c
}

// System is a deployed set of anchors over a floor with walls.
type System struct {
	Anchors []Anchor
	Walls   []geom.Segment
	Channel Channel
}

// NewSystem validates and builds a ranging system.
func NewSystem(anchors []Anchor, walls []geom.Segment, ch Channel) (*System, error) {
	if len(anchors) < 3 {
		return nil, fmt.Errorf("uwb: need at least 3 anchors for positioning, got %d", len(anchors))
	}
	seen := make(map[string]bool, len(anchors))
	for _, a := range anchors {
		if a.ID == "" {
			return nil, errors.New("uwb: anchor with empty ID")
		}
		if seen[a.ID] {
			return nil, fmt.Errorf("uwb: duplicate anchor ID %q", a.ID)
		}
		seen[a.ID] = true
	}
	return &System{
		Anchors: append([]Anchor(nil), anchors...),
		Walls:   append([]geom.Segment(nil), walls...),
		Channel: ch.withDefaults(),
	}, nil
}

// arrival is one detected pulse copy.
type arrival struct {
	timeNs    float64
	amplitude float64
}

// Range performs one ranging exchange between the tag at p and anchor
// i, returning the measured distance in feet. The boolean is false
// when no arrival cleared the detection threshold (total blockage).
func (s *System) Range(p geom.Point, i int, rng *rand.Rand) (float64, bool) {
	ch := s.Channel
	a := s.Anchors[i]
	trueDist := a.Pos.Dist(p)
	losTime := trueDist / FeetPerNanosecond

	// Build the discrete arrival set: LOS plus decaying echoes.
	wallCount := geom.CrossingCount(a.Pos, p, s.Walls)
	losAmp := 1.0
	for w := 0; w < wallCount; w++ {
		losAmp *= ch.WallLoss
	}
	arrivals := []arrival{{timeNs: losTime, amplitude: losAmp}}
	// Echo amplitudes decay from the *unblocked* field strength: a
	// reflection can dodge the wall, which is what creates NLOS bias.
	amp := 1.0
	t := losTime
	for e := 0; e < ch.Paths; e++ {
		amp *= ch.EchoDecay
		t += rng.ExpFloat64() * ch.MeanExcessNs
		arrivals = append(arrivals, arrival{timeNs: t, amplitude: amp})
	}

	// Leading-edge detection: earliest arrival above the threshold
	// relative to the strongest arrival.
	strongest := 0.0
	for _, ar := range arrivals {
		if ar.amplitude > strongest {
			strongest = ar.amplitude
		}
	}
	threshold := ch.DetectThreshold * strongest
	detected := -1.0
	for _, ar := range arrivals {
		if ar.amplitude >= threshold && (detected < 0 || ar.timeNs < detected) {
			detected = ar.timeNs
		}
	}
	if detected < 0 {
		return 0, false
	}
	measured := detected + rng.NormFloat64()*ch.JitterNs
	if measured < 0 {
		measured = 0
	}
	return measured * FeetPerNanosecond, true
}

// Locate ranges against every anchor and multilaterates. It returns
// false when fewer than three anchors produced ranges or the geometry
// is singular.
func (s *System) Locate(p geom.Point, rng *rand.Rand) (geom.Point, bool) {
	circles := make([]geom.Circle, 0, len(s.Anchors))
	for i := range s.Anchors {
		if d, ok := s.Range(p, i, rng); ok {
			circles = append(circles, geom.Circle{C: s.Anchors[i].Pos, R: d})
		}
	}
	if len(circles) < 3 {
		return geom.Point{}, false
	}
	return geom.Trilaterate(circles)
}
