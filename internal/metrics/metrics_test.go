package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndCount(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		50 * time.Microsecond,  // bucket 0
		100 * time.Microsecond, // bucket 0 (bounds are inclusive)
		101 * time.Microsecond, // bucket 1
		3 * time.Millisecond,   // 5ms bucket
		20 * time.Second,       // +Inf
	}
	for _, d := range durations {
		h.Observe(d)
	}
	if got := h.Count(); got != uint64(len(durations)) {
		t.Fatalf("count %d, want %d", got, len(durations))
	}
	var want time.Duration
	for _, d := range durations {
		want += d
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	if n := h.buckets[0].Load(); n != 2 {
		t.Errorf("bucket 0 holds %d, want 2", n)
	}
	if n := h.buckets[NumBuckets-1].Load(); n != 1 {
		t.Errorf("+Inf bucket holds %d, want 1", n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 %v, want 0", q)
	}
	// 100 observations spread evenly through the 2.5–5ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(4 * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 2500*time.Microsecond || p50 > 5*time.Millisecond {
		t.Errorf("p50 %v outside the observed bucket (2.5ms, 5ms]", p50)
	}
	// Quantiles must be monotone in q.
	if p99 := h.Quantile(0.99); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	// Overflow observations resolve to the top finite bound.
	var inf Histogram
	inf.Observe(time.Minute)
	if q := inf.Quantile(0.99); q != BucketBounds[len(BucketBounds)-1] {
		t.Errorf("overflow p99 %v, want %v", q, BucketBounds[len(BucketBounds)-1])
	}
}

func TestRegistryObserve(t *testing.T) {
	r := NewRegistry([]string{"locate", "other"})
	r.Observe(0, 200, time.Millisecond)
	r.Observe(0, 200, time.Millisecond)
	r.Observe(0, 422, time.Millisecond)
	r.Observe(1, 404, time.Millisecond)
	r.Observe(7, 200, time.Millisecond)  // out of range: ignored
	r.Observe(-1, 200, time.Millisecond) // out of range: ignored
	r.Observe(0, 999, time.Millisecond)  // unclassifiable status → class 0
	if got := r.RouteCount(0); got != 4 {
		t.Errorf("locate count %d, want 4", got)
	}
	if got := r.RouteCount(1); got != 1 {
		t.Errorf("other count %d, want 1", got)
	}
	if got := r.routes[0].classes[2].Load(); got != 2 {
		t.Errorf("locate 2xx %d, want 2", got)
	}
	if got := r.routes[0].classes[4].Load(); got != 1 {
		t.Errorf("locate 4xx %d, want 1", got)
	}
	if got := r.routes[0].classes[0].Load(); got != 1 {
		t.Errorf("locate unclassified %d, want 1", got)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	r := NewRegistry([]string{"locate"})
	r.Observe(0, 200, 3*time.Millisecond)
	r.Observe(0, 400, 30*time.Millisecond)
	var buf bytes.Buffer
	r.WritePrometheus(&buf, []Gauge{
		{Name: "indoorloc_snapshot_generation", Help: "Radio-map generation.", Value: 7},
		{Name: "indoorloc_ingest_accepted_total", Counter: true, Value: 12},
	})
	out := buf.String()
	for _, want := range []string{
		`indoorloc_http_requests_total{route="locate",class="2xx"} 1`,
		`indoorloc_http_requests_total{route="locate",class="4xx"} 1`,
		`indoorloc_http_request_duration_seconds_count{route="locate"} 2`,
		`indoorloc_http_request_duration_seconds_bucket{route="locate",le="+Inf"} 2`,
		"# TYPE indoorloc_http_request_duration_seconds histogram",
		"# TYPE indoorloc_snapshot_generation gauge",
		"indoorloc_snapshot_generation 7",
		"# TYPE indoorloc_ingest_accepted_total counter",
		"indoorloc_ingest_accepted_total 12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at the count.
	if !strings.Contains(out, `le="0.005"} 1`) {
		t.Errorf("3ms observation not in the 5ms cumulative bucket\n%s", out)
	}
}

// TestRegistryConcurrent hammers Observe and scrapes concurrently —
// the registry's whole contract is that this is safe.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry([]string{"a", "b"})
	const goroutines, each = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
				buf.Reset()
				r.WritePrometheus(&buf, nil)
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < each; i++ {
				r.Observe(g%2, 200, time.Millisecond)
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	if got := r.RouteCount(0) + r.RouteCount(1); got != goroutines*each {
		t.Errorf("lost observations: %d, want %d", got, goroutines*each)
	}
}
