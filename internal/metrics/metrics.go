// Package metrics is the allocation-free observability layer of the
// serving front end. The hot path touches nothing but atomics: a
// request is recorded as one fixed-bucket histogram increment plus one
// status-class counter increment, both plain atomic adds on
// pre-allocated arrays. Rendering — the expensive part — happens only
// when something scrapes GET /metrics, off the serving path, into a
// caller-supplied buffer in Prometheus text exposition format.
//
// The bucket layout is fixed at compile time (100µs to 10s in a
// 1-2.5-5 progression plus a +Inf overflow bucket) so a Histogram is a
// flat value type with no pointers, no lazy growth and no locks;
// quantiles are estimated from the buckets by linear interpolation,
// which is exactly the fidelity a Prometheus histogram offers anyway.
package metrics

import (
	"bytes"
	"strconv"
	"sync/atomic"
	"time"
)

// BucketBounds are the histogram buckets' inclusive upper edges. A
// 1-2.5-5 decade ladder from 100µs to 10s: fine enough to separate a
// 6.8ms compiled-map query from a 40ms cold one, coarse enough that a
// histogram is 18 counters.
var BucketBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// NumBuckets counts the histogram slots: one per bound plus the +Inf
// overflow bucket.
const NumBuckets = len(BucketBounds) + 1

// Histogram is a fixed-bucket latency histogram safe for concurrent
// use. The zero value is ready. Observe is wait-free: one atomic add
// into the bucket array and one into the running sum.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
//
//loclint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(BucketBounds) && d > BucketBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate a Prometheus histogram_quantile() would produce from the
// exported buckets. Observations in the +Inf bucket resolve to the
// largest finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [NumBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank > next {
			seen = next
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = BucketBounds[i-1]
		}
		if i == len(BucketBounds) {
			// Overflow bucket: no finite upper edge to interpolate to.
			return BucketBounds[len(BucketBounds)-1]
		}
		hi := BucketBounds[i]
		frac := (rank - seen) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return BucketBounds[len(BucketBounds)-1]
}

// statusClasses is the per-route status counter fan: index status/100,
// clamped to [0,5]; 0 collects anything outside 1xx–5xx.
const statusClasses = 6

// routeMetrics is one route's counters. Flat arrays of atomics — no
// maps, no pointers, no locks.
type routeMetrics struct {
	hist    Histogram
	classes [statusClasses]atomic.Uint64
}

// Registry holds the per-route serving metrics. Routes are fixed at
// construction (the router's table is static), so recording is an
// index into a pre-sized array.
type Registry struct {
	names  []string
	routes []routeMetrics
}

// NewRegistry builds a registry for the given route names. The index
// of a name in the slice is the route index Observe expects.
func NewRegistry(routeNames []string) *Registry {
	names := make([]string, len(routeNames))
	copy(names, routeNames)
	return &Registry{names: names, routes: make([]routeMetrics, len(names))}
}

// Names returns the route names, in index order.
func (r *Registry) Names() []string { return r.names }

// Observe records one served request: its route, final status and
// latency. Out-of-range route indexes are ignored (never panic on the
// serving path).
//
//loclint:hotpath
func (r *Registry) Observe(route, status int, d time.Duration) {
	if route < 0 || route >= len(r.routes) {
		return
	}
	m := &r.routes[route]
	c := status / 100
	if c < 0 || c >= statusClasses {
		c = 0
	}
	m.classes[c].Add(1)
	m.hist.Observe(d)
}

// RouteCount returns the request count for one route (every status).
func (r *Registry) RouteCount(route int) uint64 {
	if route < 0 || route >= len(r.routes) {
		return 0
	}
	return r.routes[route].hist.Count()
}

// RouteQuantile estimates the latency q-quantile for one route.
func (r *Registry) RouteQuantile(route int, q float64) time.Duration {
	if route < 0 || route >= len(r.routes) {
		return 0
	}
	return r.routes[route].hist.Quantile(q)
}

// Gauge is one scrape-time value the caller injects into the
// exposition: state that lives elsewhere (snapshot generation, ingest
// counters, tracker population) and is only read when scraped.
type Gauge struct {
	// Name is the full metric name, e.g. "indoorloc_snapshot_generation".
	Name string
	// Help is the HELP line; empty omits it.
	Help string
	// Counter marks the metric TYPE counter instead of gauge.
	Counter bool
	Value   float64
}

// WritePrometheus renders the registry and the given gauges in
// Prometheus text exposition format (version 0.0.4) into buf. It runs
// off the hot path; counters are read with plain atomic loads, so a
// scrape racing live traffic sees each counter at some point during
// the scrape — the usual Prometheus consistency.
func (r *Registry) WritePrometheus(buf *bytes.Buffer, gauges []Gauge) {
	buf.WriteString("# HELP indoorloc_http_requests_total Requests served, by route and status class.\n")
	buf.WriteString("# TYPE indoorloc_http_requests_total counter\n")
	var scratch [32]byte
	for i := range r.routes {
		m := &r.routes[i]
		for c := 0; c < statusClasses; c++ {
			n := m.classes[c].Load()
			// 2xx–5xx are always exported so dashboards get stable
			// series; 0xx (unclassifiable) and 1xx only when seen.
			if n == 0 && (c < 2) {
				continue
			}
			buf.WriteString("indoorloc_http_requests_total{route=\"")
			buf.WriteString(r.names[i])
			buf.WriteString("\",class=\"")
			buf.WriteByte(byte('0' + c))
			buf.WriteString("xx\"} ")
			buf.Write(strconv.AppendUint(scratch[:0], n, 10))
			buf.WriteByte('\n')
		}
	}
	buf.WriteString("# HELP indoorloc_http_request_duration_seconds Request latency, by route.\n")
	buf.WriteString("# TYPE indoorloc_http_request_duration_seconds histogram\n")
	for i := range r.routes {
		m := &r.routes[i]
		var cum uint64
		for b := 0; b < NumBuckets; b++ {
			cum += m.hist.buckets[b].Load()
			buf.WriteString("indoorloc_http_request_duration_seconds_bucket{route=\"")
			buf.WriteString(r.names[i])
			buf.WriteString("\",le=\"")
			if b == len(BucketBounds) {
				buf.WriteString("+Inf")
			} else {
				buf.Write(strconv.AppendFloat(scratch[:0], BucketBounds[b].Seconds(), 'g', -1, 64))
			}
			buf.WriteString("\"} ")
			buf.Write(strconv.AppendUint(scratch[:0], cum, 10))
			buf.WriteByte('\n')
		}
		buf.WriteString("indoorloc_http_request_duration_seconds_sum{route=\"")
		buf.WriteString(r.names[i])
		buf.WriteString("\"} ")
		buf.Write(strconv.AppendFloat(scratch[:0], m.hist.Sum().Seconds(), 'g', -1, 64))
		buf.WriteByte('\n')
		buf.WriteString("indoorloc_http_request_duration_seconds_count{route=\"")
		buf.WriteString(r.names[i])
		buf.WriteString("\"} ")
		buf.Write(strconv.AppendUint(scratch[:0], cum, 10))
		buf.WriteByte('\n')
	}
	for _, g := range gauges {
		if g.Help != "" {
			buf.WriteString("# HELP ")
			buf.WriteString(g.Name)
			buf.WriteByte(' ')
			buf.WriteString(g.Help)
			buf.WriteByte('\n')
		}
		buf.WriteString("# TYPE ")
		buf.WriteString(g.Name)
		if g.Counter {
			buf.WriteString(" counter\n")
		} else {
			buf.WriteString(" gauge\n")
		}
		buf.WriteString(g.Name)
		buf.WriteByte(' ')
		buf.Write(strconv.AppendFloat(scratch[:0], g.Value, 'g', -1, 64))
		buf.WriteByte('\n')
	}
}
