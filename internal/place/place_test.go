package place

import (
	"math"
	"strings"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/rf"
)

func houseProblem(obj Objective) *Problem {
	outline := geom.RectWH(0, 0, 50, 40)
	return &Problem{
		Candidates: GridCandidates(outline, 10),
		Samples:    GridCandidates(outline, 10),
		Objective:  obj,
	}
}

func TestGridCandidates(t *testing.T) {
	pts := GridCandidates(geom.RectWH(0, 0, 50, 40), 10)
	if len(pts) != 30 {
		t.Errorf("%d candidates, want 30", len(pts))
	}
	if GridCandidates(geom.RectWH(0, 0, 10, 10), 0) != nil {
		t.Error("zero pitch produced candidates")
	}
	// Offset outlines keep their frame.
	off := GridCandidates(geom.RectWH(5, 5, 10, 10), 5)
	if off[0] != geom.Pt(5, 5) {
		t.Errorf("offset grid starts at %v", off[0])
	}
}

func TestGreedyValidation(t *testing.T) {
	p := houseProblem(Coverage)
	if _, err := Greedy(p, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Greedy(p, len(p.Candidates)+1); err == nil {
		t.Error("k > candidates accepted")
	}
	empty := *p
	empty.Samples = nil
	if _, err := Greedy(&empty, 2); err == nil {
		t.Error("no samples accepted")
	}
	one := *p
	one.Objective = Distinguishability
	one.Samples = one.Samples[:1]
	if _, err := Greedy(&one, 2); err == nil {
		t.Error("single-sample distinguishability accepted")
	}
}

func TestGreedyCoverageSingleAPCentres(t *testing.T) {
	// With one AP and no walls, the minimum-RSSI-maximising position is
	// the floor's centre (minimises the maximum distance).
	p := houseProblem(Coverage)
	res, err := Greedy(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	centre := geom.Pt(25, 20)
	if res.Positions[0].Dist(centre) > 8 {
		t.Errorf("single AP at %v, want near %v", res.Positions[0], centre)
	}
}

func TestGreedyCoverageImprovesWithK(t *testing.T) {
	p := houseProblem(Coverage)
	var prev float64 = math.Inf(-1)
	for k := 1; k <= 4; k++ {
		res, err := Greedy(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Chosen) != k {
			t.Fatalf("k=%d chose %d", k, len(res.Chosen))
		}
		if res.Score < prev-1e-9 {
			t.Fatalf("coverage got worse at k=%d: %v -> %v", k, prev, res.Score)
		}
		prev = res.Score
	}
}

func TestGreedyDeterministic(t *testing.T) {
	p := houseProblem(Coverage)
	a, err := Greedy(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Chosen {
		if a.Chosen[i] != b.Chosen[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}

func TestGreedyNoDuplicates(t *testing.T) {
	p := houseProblem(Distinguishability)
	res, err := Greedy(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, ci := range res.Chosen {
		if seen[ci] {
			t.Fatal("candidate chosen twice")
		}
		seen[ci] = true
	}
}

func TestDistinguishabilityPrefersSpread(t *testing.T) {
	// Two samples on the x axis: an AP off to one side distinguishes
	// them; an AP equidistant from both cannot.
	p := &Problem{
		Candidates: []geom.Point{
			geom.Pt(25, 30), // equidistant from both samples
			geom.Pt(0, 0),   // close to sample A: big level difference
		},
		Samples:   []geom.Point{geom.Pt(10, 0), geom.Pt(40, 0)},
		Objective: Distinguishability,
	}
	res, err := Greedy(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen[0] != 1 {
		t.Errorf("chose candidate %d, want the asymmetric one", res.Chosen[0])
	}
}

func TestWallsChangeTheAnswer(t *testing.T) {
	// A wall splitting the floor pushes coverage placement to serve
	// both sides.
	base := &Problem{
		Candidates: GridCandidates(geom.RectWH(0, 0, 50, 40), 5),
		Samples:    GridCandidates(geom.RectWH(0, 0, 50, 40), 10),
		Model:      rf.LogDistance{Exponent: 2.3, RefDist: 3, WallLoss: 15, MaxWalls: 0},
	}
	noWall, err := Greedy(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The wall sits off the candidate grid so no AP can stand "on" it.
	walled := *base
	walled.Walls = []geom.Segment{geom.Seg(geom.Pt(24, -1), geom.Pt(24, 41))}
	withWall, err := Greedy(&walled, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With a heavy wall, two APs should straddle it: one on each side.
	left, right := 0, 0
	for _, pos := range withWall.Positions {
		if pos.X < 24 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Errorf("walled placement %v does not straddle the wall", withWall.Positions)
	}
	_ = noWall
}

func TestEvaluateComparesLayouts(t *testing.T) {
	p := houseProblem(Coverage)
	corners := []geom.Point{
		geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 40), geom.Pt(0, 40),
	}
	cornerScore, err := Evaluate(p, corners)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < cornerScore-1e-9 {
		t.Errorf("greedy (%v) lost to corners (%v)", res.Score, cornerScore)
	}
	if _, err := Evaluate(p, nil); err == nil {
		t.Error("empty placement accepted")
	}
	// Evaluate must not clobber the problem's candidate set.
	if len(p.Candidates) != 30 {
		t.Error("Evaluate corrupted candidates")
	}
}

func TestObjectiveStringAndDescribe(t *testing.T) {
	if Coverage.String() != "coverage" || Distinguishability.String() != "distinguishability" {
		t.Error("objective names wrong")
	}
	if !strings.Contains(Objective(9).String(), "9") {
		t.Error("unknown objective string")
	}
	p := houseProblem(Coverage)
	res, _ := Greedy(p, 2)
	d := res.Describe()
	if !strings.Contains(d, "2 APs") || !strings.Contains(d, "score") {
		t.Errorf("Describe = %q", d)
	}
}
