// Package place chooses access-point positions for a floor — the
// deployment-planning question upstream of everything the paper
// builds: localization is only as good as the AP geometry (see the
// AP-count and AP-placement sensitivity in EXPERIMENTS.md A4).
//
// Two objectives are offered:
//
//   - Coverage: maximise the worst-case mean RSSI over the floor
//     (classic WLAN planning), and
//   - Distinguishability: maximise the minimum pairwise signal-space
//     distance between training points (fingerprinting planning —
//     points that sound alike localize alike).
//
// Both use greedy forward selection over a candidate set, which is
// within (1−1/e) of optimal for the submodular coverage objective and
// a strong heuristic for the min-distance one.
package place

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"indoorloc/internal/geom"
	"indoorloc/internal/rf"
	"indoorloc/internal/units"
)

// Objective scores a set of AP positions against sample points.
type Objective int

const (
	// Coverage maximises the minimum (over sample points) of the
	// maximum (over APs) mean RSSI — every point should hear at least
	// one AP well.
	Coverage Objective = iota
	// Distinguishability maximises the minimum pairwise distance
	// between sample points' signal vectors, so a fingerprinting
	// localizer can tell them apart.
	Distinguishability
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case Coverage:
		return "coverage"
	case Distinguishability:
		return "distinguishability"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Problem is one placement instance.
type Problem struct {
	// Candidates are the feasible AP positions (outlets, ceiling mounts).
	Candidates []geom.Point
	// Samples are the floor points the objective is evaluated at
	// (typically the training grid).
	Samples []geom.Point
	// Walls attenuate per crossing, via the model.
	Walls []geom.Segment
	// Model predicts mean RSSI; nil means rf.DefaultLogDistance().
	Model rf.Model
	// TxPower is the per-AP level at the model's reference distance;
	// zero means -30 dBm.
	TxPower units.DBm
	// Objective selects the score; zero value is Coverage.
	Objective Objective
}

// Result is a chosen placement.
type Result struct {
	// Indices into Problem.Candidates, in selection order.
	Chosen []int
	// Positions of the chosen candidates, in selection order.
	Positions []geom.Point
	// Score of the final set under the problem's objective.
	Score float64
}

// rssiAt predicts the mean level at sample s from an AP at c.
func (p *Problem) rssiAt(c, s geom.Point) float64 {
	model := p.Model
	if model == nil {
		model = rf.DefaultLogDistance()
	}
	tx := p.TxPower
	if tx == 0 {
		tx = -30
	}
	w := geom.CrossingCount(c, s, p.Walls)
	return float64(model.MeanRSSI(tx, c.Dist(s), w))
}

// Greedy selects k APs by forward selection: at each step it adds the
// candidate that most improves the objective over the current set.
// Ties break toward the lower candidate index, keeping runs
// deterministic.
func Greedy(p *Problem, k int) (*Result, error) {
	if k <= 0 {
		return nil, errors.New("place: k must be positive")
	}
	if len(p.Candidates) < k {
		return nil, fmt.Errorf("place: %d candidates for k=%d", len(p.Candidates), k)
	}
	if len(p.Samples) == 0 {
		return nil, errors.New("place: no sample points")
	}
	if p.Objective == Distinguishability && len(p.Samples) < 2 {
		return nil, errors.New("place: distinguishability needs at least two samples")
	}

	// Precompute the candidate × sample RSSI matrix once.
	rssi := make([][]float64, len(p.Candidates))
	for ci, c := range p.Candidates {
		row := make([]float64, len(p.Samples))
		for si, s := range p.Samples {
			row[si] = p.rssiAt(c, s)
		}
		rssi[ci] = row
	}

	chosen := make([]int, 0, k)
	inSet := make([]bool, len(p.Candidates))
	for len(chosen) < k {
		bestIdx := -1
		bestScore := math.Inf(-1)
		for ci := range p.Candidates {
			if inSet[ci] {
				continue
			}
			score := p.score(rssi, append(chosen, ci))
			if score > bestScore {
				bestScore = score
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen = append(chosen, bestIdx)
		inSet[bestIdx] = true
	}
	res := &Result{Chosen: chosen, Score: p.score(rssi, chosen)}
	for _, ci := range chosen {
		res.Positions = append(res.Positions, p.Candidates[ci])
	}
	return res, nil
}

// score evaluates a candidate set under the problem's objective.
func (p *Problem) score(rssi [][]float64, set []int) float64 {
	switch p.Objective {
	case Distinguishability:
		return p.minPairDistance(rssi, set)
	default:
		return p.minBestRSSI(rssi, set)
	}
}

// minBestRSSI is the coverage objective: min over samples of the best
// AP level there.
func (p *Problem) minBestRSSI(rssi [][]float64, set []int) float64 {
	worst := math.Inf(1)
	for si := range p.Samples {
		best := math.Inf(-1)
		for _, ci := range set {
			if v := rssi[ci][si]; v > best {
				best = v
			}
		}
		if best < worst {
			worst = best
		}
	}
	return worst
}

// minPairDistance is the fingerprinting objective: the minimum
// Euclidean distance in dB between any two samples' signal vectors
// under the chosen APs.
func (p *Problem) minPairDistance(rssi [][]float64, set []int) float64 {
	min := math.Inf(1)
	for i := 0; i < len(p.Samples); i++ {
		for j := i + 1; j < len(p.Samples); j++ {
			sum := 0.0
			for _, ci := range set {
				d := rssi[ci][i] - rssi[ci][j]
				sum += d * d
			}
			if sum < min {
				min = sum
			}
		}
	}
	return math.Sqrt(min)
}

// GridCandidates generates candidate positions on a grid over the
// outline — the default feasible set when mounting anywhere is
// acceptable.
func GridCandidates(outline geom.Rect, pitch float64) []geom.Point {
	if pitch <= 0 {
		return nil
	}
	var out []geom.Point
	for y := outline.Min.Y; y <= outline.Max.Y+1e-9; y += pitch {
		for x := outline.Min.X; x <= outline.Max.X+1e-9; x += pitch {
			out = append(out, geom.Pt(x, y))
		}
	}
	return out
}

// Evaluate scores an explicit placement (for comparing a human layout,
// like the paper's four corners, against the optimizer's pick).
func Evaluate(p *Problem, positions []geom.Point) (float64, error) {
	if len(positions) == 0 {
		return 0, errors.New("place: empty placement")
	}
	// Treat the positions as the candidate set and select all of them.
	saved := p.Candidates
	p.Candidates = positions
	defer func() { p.Candidates = saved }()
	rssi := make([][]float64, len(positions))
	for ci, c := range positions {
		row := make([]float64, len(p.Samples))
		for si, s := range p.Samples {
			row[si] = p.rssiAt(c, s)
		}
		rssi[ci] = row
	}
	set := make([]int, len(positions))
	for i := range set {
		set[i] = i
	}
	return p.score(rssi, set), nil
}

// Describe renders a result for logs.
func (r *Result) Describe() string {
	parts := make([]string, 0, len(r.Positions))
	for _, pos := range r.Positions {
		parts = append(parts, pos.String())
	}
	sort.Strings(parts)
	return fmt.Sprintf("%d APs at %v (score %.1f)", len(r.Positions), parts, r.Score)
}
