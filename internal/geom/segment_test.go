package geom

import (
	"math"
	"testing"
)

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
		name string
	}{
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true, "crossing X"},
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false, "parallel"},
		{Seg(Pt(0, 0), Pt(5, 0)), Seg(Pt(5, 0), Pt(10, 0)), true, "touching endpoints"},
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(2, 0), Pt(8, 0)), true, "collinear overlap"},
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false, "collinear disjoint"},
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, -5), Pt(5, 5)), true, "T crossing"},
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 5)), true, "T touching"},
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 1), Pt(5, 5)), false, "above"},
	}
	for _, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		// Symmetry.
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("%s (swapped): Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
	if s.Midpoint() != Pt(1.5, 2) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.DistToPoint(Pt(5, 3)); got != 3 {
		t.Errorf("perpendicular dist = %v", got)
	}
	if got := s.DistToPoint(Pt(-4, 3)); got != 5 {
		t.Errorf("past-endpoint dist = %v", got)
	}
	if got := s.DistToPoint(Pt(13, 4)); got != 5 {
		t.Errorf("past-far-endpoint dist = %v", got)
	}
	deg := Seg(Pt(2, 2), Pt(2, 2))
	if got := deg.DistToPoint(Pt(5, 6)); got != 5 {
		t.Errorf("degenerate segment dist = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := RectWH(0, 0, 50, 40)
	if r.Width() != 50 || r.Height() != 40 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Pt(25, 20)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(50, 40)) {
		t.Error("Contains failed for interior/boundary")
	}
	if r.Contains(Pt(-1, 0)) || r.Contains(Pt(51, 40)) {
		t.Error("Contains accepted exterior point")
	}
	if r.Center() != Pt(25, 20) {
		t.Errorf("Center = %v", r.Center())
	}
	// Normalisation of negative extents.
	n := RectWH(10, 10, -4, -6)
	if n.Min != Pt(6, 4) || n.Max != Pt(10, 10) {
		t.Errorf("normalised rect = %+v", n)
	}
}

func TestRectClamp(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	cases := []struct{ in, want Point }{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(12, -2), Pt(10, 0)},
		{Pt(4, 99), Pt(4, 10)},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectCornersAndEdges(t *testing.T) {
	r := RectWH(0, 0, 2, 3)
	corners := r.Corners()
	want := [4]Point{Pt(0, 0), Pt(2, 0), Pt(2, 3), Pt(0, 3)}
	if corners != want {
		t.Errorf("Corners = %v", corners)
	}
	total := 0.0
	for _, e := range r.Edges() {
		total += e.Length()
	}
	if math.Abs(total-10) > 1e-12 {
		t.Errorf("perimeter = %v, want 10", total)
	}
}

func TestCrossingCount(t *testing.T) {
	// Two vertical walls at x=10 and x=20 spanning y in [0, 40].
	walls := []Segment{
		Seg(Pt(10, 0), Pt(10, 40)),
		Seg(Pt(20, 0), Pt(20, 40)),
	}
	if got := CrossingCount(Pt(0, 20), Pt(30, 20), walls); got != 2 {
		t.Errorf("both walls: %d", got)
	}
	if got := CrossingCount(Pt(0, 20), Pt(15, 20), walls); got != 1 {
		t.Errorf("one wall: %d", got)
	}
	if got := CrossingCount(Pt(0, 20), Pt(5, 20), walls); got != 0 {
		t.Errorf("no walls: %d", got)
	}
	if got := CrossingCount(Pt(0, 20), Pt(30, 20), nil); got != 0 {
		t.Errorf("nil walls: %d", got)
	}
}
