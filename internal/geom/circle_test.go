package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCircleIntersectTwoPoints(t *testing.T) {
	a := Circle{Pt(0, 0), 5}
	b := Circle{Pt(6, 0), 5}
	pts := a.Intersect(b)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Dist(a.C)-a.R) > 1e-9 || math.Abs(p.Dist(b.C)-b.R) > 1e-9 {
			t.Errorf("point %v not on both circles", p)
		}
	}
	// Known solution: x=3, y=±4.
	want1, want2 := Pt(3, 4), Pt(3, -4)
	if !(pts[0].Equal(want1, 1e-9) && pts[1].Equal(want2, 1e-9)) &&
		!(pts[0].Equal(want2, 1e-9) && pts[1].Equal(want1, 1e-9)) {
		t.Errorf("points %v, want (3,±4)", pts)
	}
}

func TestCircleIntersectTangent(t *testing.T) {
	// External tangency at (5, 0).
	a := Circle{Pt(0, 0), 5}
	b := Circle{Pt(8, 0), 3}
	pts := a.Intersect(b)
	if len(pts) != 1 || !pts[0].Equal(Pt(5, 0), 1e-9) {
		t.Errorf("external tangency: %v", pts)
	}
	// Internal tangency at (2, 0).
	b = Circle{Pt(1, 0), 1}
	a = Circle{Pt(0, 0), 2}
	pts = a.Intersect(b)
	if len(pts) != 1 || !pts[0].Equal(Pt(2, 0), 1e-9) {
		t.Errorf("internal tangency: %v", pts)
	}
}

func TestCircleIntersectNone(t *testing.T) {
	if pts := (Circle{Pt(0, 0), 1}).Intersect(Circle{Pt(10, 0), 1}); pts != nil {
		t.Errorf("separate circles: %v", pts)
	}
	if pts := (Circle{Pt(0, 0), 10}).Intersect(Circle{Pt(1, 0), 1}); pts != nil {
		t.Errorf("nested circles: %v", pts)
	}
	if pts := (Circle{Pt(0, 0), 2}).Intersect(Circle{Pt(0, 0), 3}); pts != nil {
		t.Errorf("concentric circles: %v", pts)
	}
	if pts := (Circle{Pt(0, 0), -1}).Intersect(Circle{Pt(1, 0), 1}); pts != nil {
		t.Errorf("negative radius: %v", pts)
	}
}

func TestCircleIntersectDegenerate(t *testing.T) {
	pts := (Circle{Pt(3, 3), 0}).Intersect(Circle{Pt(3, 3), 0})
	if len(pts) != 1 || pts[0] != Pt(3, 3) {
		t.Errorf("coincident zero circles: %v", pts)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Pt(0, 0), 5}
	if !c.Contains(Pt(3, 4)) {
		t.Error("boundary point not contained")
	}
	if !c.Contains(Pt(0, 0)) {
		t.Error("centre not contained")
	}
	if c.Contains(Pt(5, 5)) {
		t.Error("outside point contained")
	}
}

func TestIntersectionPointsOnBothCirclesProperty(t *testing.T) {
	f := func(x1, y1, r1, x2, y2, r2 float64) bool {
		norm := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(math.Abs(v), lim)
		}
		a := Circle{Pt(norm(x1, 50), norm(y1, 50)), norm(r1, 40) + 0.1}
		b := Circle{Pt(norm(x2, 50), norm(y2, 50)), norm(r2, 40) + 0.1}
		for _, p := range a.Intersect(b) {
			scale := math.Max(1, math.Max(a.R, b.R))
			if math.Abs(p.Dist(a.C)-a.R) > 1e-6*scale ||
				math.Abs(p.Dist(b.C)-b.R) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(107))}); err != nil {
		t.Error(err)
	}
}

func TestClosestApproach(t *testing.T) {
	// Separate circles along x: gap between rims is [5, 7]; midpoint 6.
	p, ok := ClosestApproach(Circle{Pt(0, 0), 5}, Circle{Pt(10, 0), 3})
	if ok {
		t.Error("separate circles reported as intersecting")
	}
	if !p.Equal(Pt(6, 0), 1e-9) {
		t.Errorf("separate closest approach = %v, want (6,0)", p)
	}
	// Nested: outer r=10 at origin, inner r=1 at (2,0). Rims at x=10 and
	// x=3; midpoint (6.5, 0).
	p, ok = ClosestApproach(Circle{Pt(0, 0), 10}, Circle{Pt(2, 0), 1})
	if ok {
		t.Error("nested circles reported as intersecting")
	}
	if !p.Equal(Pt(6.5, 0), 1e-9) {
		t.Errorf("nested closest approach = %v, want (6.5,0)", p)
	}
	// Intersecting: chord midpoint.
	p, ok = ClosestApproach(Circle{Pt(0, 0), 5}, Circle{Pt(6, 0), 5})
	if !ok {
		t.Error("intersecting circles reported as non-intersecting")
	}
	if !p.Equal(Pt(3, 0), 1e-9) {
		t.Errorf("chord midpoint = %v, want (3,0)", p)
	}
}

func TestPairwiseIntersections(t *testing.T) {
	// Four APs at the paper's house corners, target at (20, 20).
	target := Pt(20, 20)
	aps := []Point{Pt(0, 0), Pt(50, 0), Pt(50, 40), Pt(0, 40)}
	circles := make([]Circle, len(aps))
	for i, ap := range aps {
		circles[i] = Circle{ap, ap.Dist(target)}
	}
	pts := PairwiseIntersections(circles, Centroid(aps))
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	est := MedianPoint(pts)
	if !est.Equal(target, 1e-6) {
		t.Errorf("noise-free estimate = %v, want %v", est, target)
	}
}

func TestPairwiseIntersectionsTwoCircles(t *testing.T) {
	circles := []Circle{{Pt(0, 0), 5}, {Pt(6, 0), 5}}
	pts := PairwiseIntersections(circles, Pt(3, 10))
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if !pts[0].Equal(Pt(3, 4), 1e-9) {
		t.Errorf("hint selection picked %v, want (3,4)", pts[0])
	}
}

func TestPairwiseIntersectionsDegenerateInputs(t *testing.T) {
	if pts := PairwiseIntersections(nil, Pt(0, 0)); pts != nil {
		t.Errorf("nil circles: %v", pts)
	}
	if pts := PairwiseIntersections([]Circle{{Pt(0, 0), 1}}, Pt(0, 0)); pts != nil {
		t.Errorf("single circle: %v", pts)
	}
	// Non-intersecting pairs still produce one representative each.
	circles := []Circle{{Pt(0, 0), 1}, {Pt(100, 0), 1}, {Pt(0, 100), 1}}
	pts := PairwiseIntersections(circles, Pt(0, 0))
	if len(pts) != 3 {
		t.Errorf("got %d representatives, want 3", len(pts))
	}
}

func TestTrilaterate(t *testing.T) {
	target := Pt(13, 27)
	aps := []Point{Pt(0, 0), Pt(50, 0), Pt(50, 40), Pt(0, 40)}
	circles := make([]Circle, len(aps))
	for i, ap := range aps {
		circles[i] = Circle{ap, ap.Dist(target)}
	}
	got, ok := Trilaterate(circles)
	if !ok {
		t.Fatal("Trilaterate failed")
	}
	if !got.Equal(target, 1e-6) {
		t.Errorf("Trilaterate = %v, want %v", got, target)
	}
}

func TestTrilaterateFailure(t *testing.T) {
	if _, ok := Trilaterate([]Circle{{Pt(0, 0), 1}, {Pt(1, 0), 1}}); ok {
		t.Error("two circles should not trilaterate")
	}
	// Collinear centres: singular.
	collinear := []Circle{{Pt(0, 0), 1}, {Pt(1, 0), 1}, {Pt(2, 0), 1}}
	if _, ok := Trilaterate(collinear); ok {
		t.Error("collinear centres should fail")
	}
}

func TestTrilaterateExactProperty(t *testing.T) {
	aps := []Point{Pt(0, 0), Pt(50, 0), Pt(50, 40), Pt(0, 40)}
	f := func(rx, ry float64) bool {
		clamp := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return lim / 2
			}
			return math.Mod(math.Abs(v), lim)
		}
		target := Pt(clamp(rx, 50), clamp(ry, 40))
		circles := make([]Circle, len(aps))
		for i, ap := range aps {
			circles[i] = Circle{ap, ap.Dist(target)}
		}
		got, ok := Trilaterate(circles)
		return ok && got.Equal(target, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(108))}); err != nil {
		t.Error(err)
	}
}
