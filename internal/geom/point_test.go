package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*-2-4*1 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(Pt(0, 0)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := p.DistSq(q); got != 4+36 {
		t.Errorf("DistSq = %v", got)
	}
}

func TestUnitAndPerp(t *testing.T) {
	u := Pt(3, 4).Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := Pt(0, 0).Unit(); got != Pt(0, 0) {
		t.Errorf("Unit(0) = %v", got)
	}
	if got := Pt(1, 0).Perp(); got != Pt(0, 1) {
		t.Errorf("Perp = %v", got)
	}
	// Perp is a rotation: preserves norm, orthogonal to input.
	p := Pt(-2.5, 7)
	if math.Abs(p.Perp().Norm()-p.Norm()) > 1e-12 {
		t.Error("Perp changed norm")
	}
	if p.Dot(p.Perp()) != 0 {
		t.Error("Perp not orthogonal")
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, -20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, -10) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestEqualAndFinite(t *testing.T) {
	if !Pt(1, 1).Equal(Pt(1+1e-10, 1-1e-10), 1e-9) {
		t.Error("Equal should tolerate 1e-10")
	}
	if Pt(1, 1).Equal(Pt(1.1, 1), 1e-9) {
		t.Error("Equal too lenient")
	}
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(math.NaN(), 0).IsFinite() || Pt(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite point reported finite")
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != Pt(0, 0) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	if got := Centroid(pts); got != Pt(5, 5) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestMedianPoint(t *testing.T) {
	if got := MedianPoint(nil); got != Pt(0, 0) {
		t.Errorf("MedianPoint(nil) = %v", got)
	}
	// One wild outlier must not drag the median far.
	pts := []Point{Pt(1, 1), Pt(2, 2), Pt(3, 3), Pt(1000, -1000)}
	got := MedianPoint(pts)
	if got != Pt(2.5, 1.5) {
		t.Errorf("MedianPoint = %v, want (2.50, 1.50)", got)
	}
	// Odd count: exact middle element.
	pts = []Point{Pt(9, 0), Pt(1, 5), Pt(4, 2)}
	if got := MedianPoint(pts); got != Pt(4, 2) {
		t.Errorf("MedianPoint odd = %v", got)
	}
}

func TestMedianPointRobustnessProperty(t *testing.T) {
	// For 4 points where 3 form a tight cluster, the median point stays
	// within the cluster's bounding box expanded marginally, regardless
	// of the outlier.
	f := func(ox, oy float64) bool {
		if math.IsNaN(ox) || math.IsNaN(oy) || math.IsInf(ox, 0) || math.IsInf(oy, 0) {
			return true
		}
		pts := []Point{Pt(10, 10), Pt(10.5, 10.2), Pt(9.8, 10.1), Pt(ox, oy)}
		m := MedianPoint(pts)
		return m.X >= 9.8 && m.X <= 10.5 && m.Y >= 10 && m.Y <= 10.2
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(109))}); err != nil {
		t.Error(err)
	}
}

func TestGeometricMedian(t *testing.T) {
	if got := GeometricMedian(nil, 100, 1e-9); got != Pt(0, 0) {
		t.Errorf("GeometricMedian(nil) = %v", got)
	}
	if got := GeometricMedian([]Point{Pt(7, 7)}, 100, 1e-9); got != Pt(7, 7) {
		t.Errorf("GeometricMedian single = %v", got)
	}
	// Symmetric square: geometric median is the centre.
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	got := GeometricMedian(pts, 200, 1e-12)
	if !got.Equal(Pt(1, 1), 1e-6) {
		t.Errorf("GeometricMedian square = %v, want (1,1)", got)
	}
	// Majority cluster wins: with 3 coincident points and 1 far point,
	// the geometric median is at the cluster.
	pts = []Point{Pt(5, 5), Pt(5, 5), Pt(5, 5), Pt(100, 100)}
	got = GeometricMedian(pts, 500, 1e-12)
	if !got.Equal(Pt(5, 5), 1e-3) {
		t.Errorf("GeometricMedian cluster = %v, want (5,5)", got)
	}
}

func TestGeometricMedianMinimizesProperty(t *testing.T) {
	sumDist := func(c Point, pts []Point) float64 {
		s := 0.0
		for _, p := range pts {
			s += c.Dist(p)
		}
		return s
	}
	f := func(x1, y1, x2, y2, x3, y3 float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		pts := []Point{
			Pt(clamp(x1), clamp(y1)),
			Pt(clamp(x2), clamp(y2)),
			Pt(clamp(x3), clamp(y3)),
		}
		gm := GeometricMedian(pts, 2000, 1e-12)
		base := sumDist(gm, pts)
		// The geometric median must beat (or tie) the centroid and all
		// input points as a 1-sum minimiser. Weiszfeld converges
		// sublinearly near degenerate configurations, so the slack is
		// relative to the objective's magnitude.
		slack := 1e-5 * (1 + base)
		if base > sumDist(Centroid(pts), pts)+slack {
			return false
		}
		for _, p := range pts {
			if base > sumDist(p, pts)+slack {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
