package geom

import (
	"fmt"
	"math"
)

// Segment is a line segment between two points. Floor-plan walls are
// segments; the RF simulator counts wall crossings along the
// transmitter→receiver path to apply per-wall attenuation.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// String formats the segment as "seg((x1, y1)-(x2, y2))".
func (s Segment) String() string { return fmt.Sprintf("seg(%v-%v)", s.A, s.B) }

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// Intersects reports whether s and t share at least one point,
// including touching endpoints and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	d1 := direction(t.A, t.B, s.A)
	d2 := direction(t.A, t.B, s.B)
	d3 := direction(s.A, s.B, t.A)
	d4 := direction(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// direction returns the orientation of c relative to the directed line
// a→b: positive for left (counter-clockwise), negative for right, zero
// for collinear.
func direction(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSegment reports whether collinear point p lies within the bounding
// box of segment ab.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// DistToPoint returns the shortest distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	denom := ab.Dot(ab)
	if denom == 0 {
		return s.A.Dist(p)
	}
	t := p.Sub(s.A).Dot(ab) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Lerp(s.B, t).Dist(p)
}

// Rect is an axis-aligned rectangle, used for floor outlines and room
// bounds. Min is the corner with the smaller coordinates.
type Rect struct {
	Min, Max Point
}

// RectWH builds a rectangle from an origin corner plus width and
// height. Negative extents are normalised.
func RectWH(x, y, w, h float64) Rect {
	r := Rect{Min: Pt(x, y), Max: Pt(x+w, y+h)}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Width returns the rectangle's horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside or on the rectangle.
func (r Rect) Contains(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// Center returns the rectangle's centre point.
func (r Rect) Center() Point { return r.Min.Lerp(r.Max, 0.5) }

// Corners returns the four corners counter-clockwise starting at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Edges returns the four boundary segments of the rectangle.
func (r Rect) Edges() [4]Segment {
	c := r.Corners()
	return [4]Segment{
		{c[0], c[1]}, {c[1], c[2]}, {c[2], c[3]}, {c[3], c[0]},
	}
}

// Clamp returns the point inside the rectangle nearest to p.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.Min.X {
		p.X = r.Min.X
	} else if p.X > r.Max.X {
		p.X = r.Max.X
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	} else if p.Y > r.Max.Y {
		p.Y = r.Max.Y
	}
	return p
}

// CrossingCount returns how many of the walls the open segment from a
// to b crosses. Endpoints sitting exactly on a wall count as crossings;
// the RF model treats a device pressed against a wall as attenuated.
func CrossingCount(a, b Point, walls []Segment) int {
	path := Segment{a, b}
	n := 0
	for _, w := range walls {
		if path.Intersects(w) {
			n++
		}
	}
	return n
}
