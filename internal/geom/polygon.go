package geom

import (
	"errors"
	"math"
)

// Polygon is a simple (non-self-intersecting) polygon given by its
// vertices in order; the closing edge from the last vertex back to the
// first is implicit. Floor plans use polygons to delimit rooms, so a
// coordinate estimate can be abstracted to "room D22" by containment
// rather than by nearest training point.
type Polygon []Point

// ErrDegeneratePolygon is returned for polygons with fewer than three
// vertices or zero area.
var ErrDegeneratePolygon = errors.New("geom: polygon needs ≥3 non-collinear vertices")

// Validate checks the polygon has at least three vertices and
// non-zero area.
func (pg Polygon) Validate() error {
	if len(pg) < 3 || math.Abs(pg.Area()) < 1e-12 {
		return ErrDegeneratePolygon
	}
	return nil
}

// Area returns the signed area (positive for counter-clockwise
// winding) via the shoelace formula.
func (pg Polygon) Area() float64 {
	if len(pg) < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		sum += p.Cross(q)
	}
	return sum / 2
}

// Centroid returns the area centroid. Degenerate polygons fall back to
// the vertex mean.
func (pg Polygon) Centroid() Point {
	a := pg.Area()
	if math.Abs(a) < 1e-12 {
		return Centroid(pg)
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	k := 1 / (6 * a)
	return Pt(cx*k, cy*k)
}

// Contains reports whether p lies inside the polygon (boundary points
// count as inside), by the even-odd ray-casting rule.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	// Boundary check first: ray casting is unreliable exactly on edges.
	for i := 0; i < n; i++ {
		if Seg(pg[i], pg[(i+1)%n]).DistToPoint(p) < 1e-9 {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg[i], pg[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Bounds returns the polygon's axis-aligned bounding box.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{Min: pg[0], Max: pg[0]}
	for _, p := range pg[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// Edges returns the polygon's boundary segments.
func (pg Polygon) Edges() []Segment {
	n := len(pg)
	out := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Seg(pg[i], pg[(i+1)%n]))
	}
	return out
}
