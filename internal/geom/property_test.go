package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// boundedPoint maps arbitrary floats into the house-scale range.
func boundedPoint(x, y float64) Point {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 60)
	}
	return Pt(clamp(x), clamp(y))
}

func seededConfig(seed int64, n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(seed))}
}

// Segment intersection is symmetric and invariant under endpoint swap.
func TestSegmentIntersectionSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s := Seg(boundedPoint(ax, ay), boundedPoint(bx, by))
		u := Seg(boundedPoint(cx, cy), boundedPoint(dx, dy))
		base := s.Intersects(u)
		if u.Intersects(s) != base {
			return false
		}
		// Swapping either segment's endpoints changes nothing.
		if Seg(s.B, s.A).Intersects(u) != base {
			return false
		}
		return s.Intersects(Seg(u.B, u.A)) == base
	}
	if err := quick.Check(f, seededConfig(3, 400)); err != nil {
		t.Error(err)
	}
}

// A segment always intersects itself and each of its endpoints'
// degenerate segments.
func TestSegmentSelfIntersectionProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		s := Seg(boundedPoint(ax, ay), boundedPoint(bx, by))
		if !s.Intersects(s) {
			return false
		}
		return s.Intersects(Seg(s.A, s.A)) && s.Intersects(Seg(s.B, s.B))
	}
	if err := quick.Check(f, seededConfig(4, 300)); err != nil {
		t.Error(err)
	}
}

// Distances obey the triangle inequality and symmetry.
func TestDistanceMetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := boundedPoint(ax, ay)
		b := boundedPoint(bx, by)
		c := boundedPoint(cx, cy)
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-12 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, seededConfig(5, 400)); err != nil {
		t.Error(err)
	}
}

// CrossingCount is symmetric in the path's endpoints.
func TestCrossingCountSymmetryProperty(t *testing.T) {
	walls := []Segment{
		Seg(Pt(10, -100), Pt(10, 100)),
		Seg(Pt(30, -100), Pt(30, 100)),
		Seg(Pt(-100, 20), Pt(100, 20)),
	}
	f := func(ax, ay, bx, by float64) bool {
		a := boundedPoint(ax, ay)
		b := boundedPoint(bx, by)
		return CrossingCount(a, b, walls) == CrossingCount(b, a, walls)
	}
	if err := quick.Check(f, seededConfig(6, 400)); err != nil {
		t.Error(err)
	}
}

// A straight path between two points on the same side of every wall
// crosses nothing.
func TestCrossingCountSameSideProperty(t *testing.T) {
	walls := []Segment{Seg(Pt(10, -100), Pt(10, 100))}
	f := func(ax, ay, bx, by float64) bool {
		a := boundedPoint(ax, ay)
		b := boundedPoint(bx, by)
		// Push both strictly left of the wall.
		a.X = -1 - math.Abs(a.X)/10
		b.X = -1 - math.Abs(b.X)/10
		return CrossingCount(a, b, walls) == 0
	}
	if err := quick.Check(f, seededConfig(7, 300)); err != nil {
		t.Error(err)
	}
}

// Rect.Clamp is idempotent and always lands inside.
func TestRectClampProperty(t *testing.T) {
	r := RectWH(0, 0, 50, 40)
	f := func(x, y float64) bool {
		p := boundedPoint(x*3, y*3)
		c := r.Clamp(p)
		if !r.Contains(c) {
			return false
		}
		return r.Clamp(c) == c
	}
	if err := quick.Check(f, seededConfig(8, 400)); err != nil {
		t.Error(err)
	}
}

// Trilateration with one perturbed radius degrades gracefully: the
// answer stays finite and within the perturbation's reach.
func TestTrilaterateRobustnessProperty(t *testing.T) {
	aps := []Point{Pt(0, 0), Pt(50, 0), Pt(50, 40), Pt(0, 40)}
	f := func(tx, ty, noise float64) bool {
		target := boundedPoint(tx, ty)
		target = RectWH(0, 0, 50, 40).Clamp(target)
		eps := math.Mod(math.Abs(noise), 5) // ≤5 ft radius error
		if math.IsNaN(eps) {
			eps = 1
		}
		circles := make([]Circle, len(aps))
		for i, ap := range aps {
			r := ap.Dist(target)
			if i == 0 {
				r += eps
			}
			circles[i] = Circle{ap, r}
		}
		got, ok := Trilaterate(circles)
		if !ok {
			return false
		}
		return got.IsFinite() && got.Dist(target) <= 6*eps+1e-6
	}
	if err := quick.Check(f, seededConfig(9, 300)); err != nil {
		t.Error(err)
	}
}
