package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func square(x, y, side float64) Polygon {
	return Polygon{Pt(x, y), Pt(x+side, y), Pt(x+side, y+side), Pt(x, y+side)}
}

func TestPolygonValidate(t *testing.T) {
	if err := square(0, 0, 10).Validate(); err != nil {
		t.Errorf("square rejected: %v", err)
	}
	if err := (Polygon{Pt(0, 0), Pt(1, 1)}).Validate(); err != ErrDegeneratePolygon {
		t.Errorf("2 vertices: %v", err)
	}
	collinear := Polygon{Pt(0, 0), Pt(1, 1), Pt(2, 2)}
	if err := collinear.Validate(); err != ErrDegeneratePolygon {
		t.Errorf("collinear: %v", err)
	}
}

func TestPolygonArea(t *testing.T) {
	if got := square(0, 0, 10).Area(); got != 100 {
		t.Errorf("ccw square area = %v", got)
	}
	// Clockwise winding flips the sign.
	cw := Polygon{Pt(0, 0), Pt(0, 10), Pt(10, 10), Pt(10, 0)}
	if got := cw.Area(); got != -100 {
		t.Errorf("cw square area = %v", got)
	}
	tri := Polygon{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	if got := tri.Area(); got != 50 {
		t.Errorf("triangle area = %v", got)
	}
	if (Polygon{Pt(0, 0)}).Area() != 0 {
		t.Error("degenerate area not 0")
	}
}

func TestPolygonCentroid(t *testing.T) {
	if got := square(10, 20, 10).Centroid(); !got.Equal(Pt(15, 25), 1e-9) {
		t.Errorf("square centroid = %v", got)
	}
	// L-shape: centroid of the union of two squares.
	l := Polygon{
		Pt(0, 0), Pt(20, 0), Pt(20, 10), Pt(10, 10), Pt(10, 20), Pt(0, 20),
	}
	got := l.Centroid()
	// Lower 20×10 rect (area 200, centroid (10,5)) plus upper 10×10
	// square (area 100, centroid (5,15)): weighted mean (25/3, 25/3).
	if !got.Equal(Pt(25.0/3, 25.0/3), 1e-9) {
		t.Errorf("L centroid = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := square(0, 0, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},   // vertex
		{Pt(5, 0), true},   // edge
		{Pt(10, 10), true}, // far vertex
		{Pt(-1, 5), false},
		{Pt(11, 5), false},
		{Pt(5, -0.001), false},
	}
	for _, c := range cases {
		if got := sq.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Concave polygon: the notch is outside.
	l := Polygon{
		Pt(0, 0), Pt(20, 0), Pt(20, 10), Pt(10, 10), Pt(10, 20), Pt(0, 20),
	}
	if !l.Contains(Pt(5, 15)) {
		t.Error("upper arm not contained")
	}
	if l.Contains(Pt(15, 15)) {
		t.Error("notch contained")
	}
	if (Polygon{Pt(0, 0), Pt(1, 0)}).Contains(Pt(0, 0)) {
		t.Error("degenerate polygon contained a point")
	}
}

func TestPolygonBoundsAndEdges(t *testing.T) {
	tri := Polygon{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	b := tri.Bounds()
	if b.Min != Pt(0, 0) || b.Max != Pt(10, 10) {
		t.Errorf("Bounds = %+v", b)
	}
	edges := tri.Edges()
	if len(edges) != 3 {
		t.Fatalf("%d edges", len(edges))
	}
	total := 0.0
	for _, e := range edges {
		total += e.Length()
	}
	if math.Abs(total-(20+math.Hypot(10, 10))) > 1e-9 {
		t.Errorf("perimeter = %v", total)
	}
	if (Polygon{}).Bounds() != (Rect{}) {
		t.Error("empty bounds not zero")
	}
}

func TestPolygonContainsMatchesBoundsProperty(t *testing.T) {
	// Containment implies being inside the bounding box.
	pg := Polygon{Pt(5, 0), Pt(25, 5), Pt(30, 20), Pt(15, 30), Pt(0, 18)}
	f := func(x, y float64) bool {
		p := boundedPoint(x, y)
		if pg.Contains(p) && !pg.Bounds().Contains(p) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(110))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPolygonCentroidInsideConvexProperty(t *testing.T) {
	// For convex polygons the centroid is inside.
	pg := Polygon{Pt(0, 0), Pt(30, 2), Pt(35, 25), Pt(12, 33), Pt(-4, 15)}
	if !pg.Contains(pg.Centroid()) {
		t.Error("centroid outside convex polygon")
	}
}
