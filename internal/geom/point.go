// Package geom provides the planar geometry used by the localization
// toolkit: points and vectors, circles and their intersections,
// segments (for wall occlusion tests), rectangles, median points, and
// least-squares multilateration.
//
// All coordinates are in the toolkit's canonical unit (feet) in the
// floor plan's real-world frame: the origin is the point chosen in the
// Floor Plan Processor and axes follow the plan.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location in the plan's 2-D real-world frame.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q
// treated as vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Unit returns the unit vector in the direction of p. The zero vector
// is returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// Perp returns p rotated 90° counter-clockwise.
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Equal reports whether p and q coincide to within tol in each
// coordinate.
func (p Point) Equal(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String formats the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Centroid returns the arithmetic mean of the points. It returns the
// zero point for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// MedianPoint returns the component-wise median of the points: the
// point whose X is the median of all Xs and whose Y is the median of
// all Ys. This is the robust combiner the paper uses to merge the four
// pairwise circle-intersection points P1..P4 into the final estimate P;
// unlike the centroid it shrugs off a single wildly wrong intersection.
// It returns the zero point for an empty slice.
func MedianPoint(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	return Point{median(xs), median(ys)}
}

// median returns the median of vs, averaging the two central elements
// for even lengths. vs is reordered.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// GeometricMedian returns the point minimising the sum of Euclidean
// distances to pts (the Fermat–Weber point), computed with Weiszfeld's
// algorithm. It is an alternative robust combiner offered alongside
// MedianPoint for the geometric approach.
func GeometricMedian(pts []Point, iters int, tol float64) Point {
	switch len(pts) {
	case 0:
		return Point{}
	case 1:
		return pts[0]
	}
	// A data point p is itself the geometric median when the resultant
	// of unit vectors toward the other points has norm at most p's
	// multiplicity (Weiszfeld stalls near such vertices, so test first).
	for _, p := range pts {
		var resultant Point
		mult := 0.0
		for _, q := range pts {
			d := p.Dist(q)
			if d < 1e-12 {
				mult++
				continue
			}
			resultant = resultant.Add(q.Sub(p).Scale(1 / d))
		}
		if resultant.Norm() <= mult {
			return p
		}
	}
	cur := Centroid(pts)
	for i := 0; i < iters; i++ {
		var num Point
		var den float64
		coincident := false
		for _, p := range pts {
			d := cur.Dist(p)
			if d < 1e-12 {
				coincident = true
				continue
			}
			w := 1 / d
			num = num.Add(p.Scale(w))
			den += w
		}
		if den == 0 {
			return cur // all points coincide with cur
		}
		next := num.Scale(1 / den)
		if coincident {
			// Weiszfeld with a data point at the iterate: nudge.
			next = next.Lerp(cur, 0.5)
		}
		if next.Dist(cur) < tol {
			return next
		}
		cur = next
	}
	return cur
}
