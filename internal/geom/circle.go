package geom

import (
	"fmt"
	"math"
)

// Circle is a circle in the plan frame: the locus of points at
// distance R from the centre C. In the geometric localization approach
// each access point contributes one circle, centred at the AP with the
// radius recovered from its signal strength.
type Circle struct {
	C Point
	R float64
}

// String formats the circle as "circle((x, y), r)".
func (c Circle) String() string { return fmt.Sprintf("circle(%v, %.2f)", c.C, c.R) }

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool { return c.C.DistSq(p) <= c.R*c.R+1e-12 }

// Intersect returns the intersection points of two circles.
//
// The returned slice has:
//   - two points when the circles properly intersect,
//   - one point when they are tangent (internally or externally),
//   - zero points when they are separate, nested, or concentric.
//
// Degenerate radii (zero or negative) yield no intersections unless
// both circles collapse onto the same point.
func (c Circle) Intersect(o Circle) []Point {
	d := c.C.Dist(o.C)
	if d == 0 {
		if c.R == 0 && o.R == 0 {
			return []Point{c.C}
		}
		return nil // concentric: none or infinitely many; report none
	}
	if c.R < 0 || o.R < 0 {
		return nil
	}
	// Standard two-circle intersection: a is the distance from c.C to
	// the foot of the chord along the centre line; h is half the chord.
	a := (d*d + c.R*c.R - o.R*o.R) / (2 * d)
	h2 := c.R*c.R - a*a
	const tol = 1e-9
	if h2 < -tol*math.Max(1, c.R*c.R) {
		return nil
	}
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	dir := o.C.Sub(c.C).Scale(1 / d)
	foot := c.C.Add(dir.Scale(a))
	if h == 0 {
		return []Point{foot}
	}
	off := dir.Perp().Scale(h)
	return []Point{foot.Add(off), foot.Sub(off)}
}

// ClosestApproach returns, for two non-intersecting circles, the point
// midway between them along the line of centres — the natural "best
// guess" when noisy radii leave the circles separate or nested. For
// intersecting circles it returns the midpoint of the chord.
//
// The geometric approach needs this fallback constantly: RSSI noise
// routinely inflates or deflates radii so that a circle pair misses.
func ClosestApproach(c, o Circle) (Point, bool) {
	d := c.C.Dist(o.C)
	if d == 0 {
		return c.C, c.R == 0 && o.R == 0
	}
	if pts := c.Intersect(o); len(pts) > 0 {
		return Centroid(pts), true
	}
	dir := o.C.Sub(c.C).Scale(1 / d)
	if d >= c.R+o.R {
		// Separate: midpoint of the gap between the two near rims.
		p1 := c.C.Add(dir.Scale(c.R))
		p2 := o.C.Sub(dir.Scale(o.R))
		return p1.Lerp(p2, 0.5), false
	}
	// Nested: midpoint between the rims on the side of the inner circle.
	if c.R > o.R {
		p1 := c.C.Add(dir.Scale(c.R))
		p2 := o.C.Add(dir.Scale(o.R))
		return p1.Lerp(p2, 0.5), false
	}
	p1 := c.C.Sub(dir.Scale(c.R))
	p2 := o.C.Sub(dir.Scale(o.R))
	return p1.Lerp(p2, 0.5), false
}

// PairwiseIntersections walks the circles in ring order —
// (0,1), (1,2), ..., (n-1,0) — mirroring the paper's pairs
// (A,B), (B,C), (C,D), (D,A), and returns one representative point per
// pair. For a properly intersecting pair the representative is the
// intersection point closer to hint (use the centroid of the AP
// positions when no better prior exists); otherwise the pair's closest
// approach is used, so a point is always produced.
func PairwiseIntersections(circles []Circle, hint Point) []Point {
	n := len(circles)
	if n < 2 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		a, b := circles[i], circles[(i+1)%n]
		if n == 2 && i == 1 {
			break // with two circles there is only one pair
		}
		inter := a.Intersect(b)
		switch len(inter) {
		case 0:
			p, _ := ClosestApproach(a, b)
			pts = append(pts, p)
		case 1:
			pts = append(pts, inter[0])
		default:
			if inter[0].DistSq(hint) <= inter[1].DistSq(hint) {
				pts = append(pts, inter[0])
			} else {
				pts = append(pts, inter[1])
			}
		}
	}
	return pts
}

// Trilaterate solves for the point whose distances to the circle
// centres best match the circle radii, by linear least squares.
// Subtracting the first circle's equation from each of the others
// linearises the system; the result is the classical multilateration
// baseline the paper contrasts with its median-of-intersections rule.
// It returns false when fewer than three circles are given or the
// centres are collinear (the normal matrix is singular).
func Trilaterate(circles []Circle) (Point, bool) {
	n := len(circles)
	if n < 3 {
		return Point{}, false
	}
	// Row i (i>=1): 2(xi-x0)x + 2(yi-y0)y = ri'^2 with
	// ri'^2 = r0^2 - ri^2 + xi^2 - x0^2 + yi^2 - y0^2.
	c0 := circles[0]
	var a11, a12, a22, b1, b2 float64 // normal equations accumulators
	for _, c := range circles[1:] {
		ax := 2 * (c.C.X - c0.C.X)
		ay := 2 * (c.C.Y - c0.C.Y)
		rhs := c0.R*c0.R - c.R*c.R +
			c.C.X*c.C.X - c0.C.X*c0.C.X +
			c.C.Y*c.C.Y - c0.C.Y*c0.C.Y
		a11 += ax * ax
		a12 += ax * ay
		a22 += ay * ay
		b1 += ax * rhs
		b2 += ay * rhs
	}
	det := a11*a22 - a12*a12
	scale := math.Max(a11, a22)
	if scale == 0 || math.Abs(det) < 1e-9*scale*scale {
		return Point{}, false
	}
	x := (b1*a22 - b2*a12) / det
	y := (b2*a11 - b1*a12) / det
	return Point{x, y}, true
}
