// Package venue is the multi-tenancy layer of the serving fleet: one
// locserved process hosts many venues (building × floor radio maps)
// behind a single registry keyed by venue id.
//
// A venue is a directory entry — <dir>/<id>.ilr (a compiled v2
// radio-map artifact, memory-mapped on load) or <dir>/<id>.tdb (a raw
// training database, optionally with a per-venue ingestion WAL). The
// registry loads venues lazily on first request, dedups concurrent
// cold loads singleflight-style (a stampede on a cold venue loads the
// artifact once), and holds residents under an LRU memory budget:
// when the budget overflows, the coldest venue (oldest last-use) is
// evicted — dropped from the table and its mapping released once the
// last in-flight request holding it finishes.
//
// # Reference counting
//
// Handlers hold one venue per request: Acquire pins the venue,
// Snapshot reads its current serving snapshot, Release unpins. The
// pin is what makes eviction safe — munmap happens only after the
// reference count drains, so a request never reads matrices out from
// under itself. On the hot path (venue already resident) Acquire is a
// lock-free map read plus two atomic operations and allocates
// nothing; the cold path takes the registry mutex and does the real
// load.
package venue

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/ingest"
	"indoorloc/internal/metrics"
	"indoorloc/internal/trainingdb"
)

// MaxIDLen caps venue ids. Ids double as artifact file names, and the
// router rejects anything longer before touching the registry, so an
// over-long id can never probe the filesystem.
const MaxIDLen = 64

// Sentinel errors the HTTP layer maps to machine-readable codes.
var (
	// ErrUnknownVenue: no artifact or database for the id exists.
	ErrUnknownVenue = errors.New("venue: unknown venue")
	// ErrInvalidID: the id fails ValidID.
	ErrInvalidID = errors.New("venue: invalid venue id")
	// ErrFrozen: the venue serves a compiled artifact and cannot accept
	// training reports.
	ErrFrozen = errors.New("venue: artifact-backed venue is frozen (no live training)")
)

// ValidID reports whether id is a well-formed venue id: 1–MaxIDLen
// characters drawn from [a-zA-Z0-9._-], and not "." or ".." (ids name
// files; dot segments would escape the artifact directory).
//
//loclint:hotpath
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLen {
		return false
	}
	if id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Config tunes a Registry.
type Config struct {
	// Dir is the artifact directory: venue id → <Dir>/<id>.ilr
	// (compiled v2 artifact, preferred) or <Dir>/<id>.tdb (raw
	// training database). Required.
	Dir string
	// Algorithm is the registry algorithm every venue serves; empty
	// means core.AlgoProbabilistic. Artifact-backed venues are limited
	// to the compiled-servable algorithms.
	Algorithm string
	// Build carries the locator knobs (sharding, quantize, top-k)
	// applied to every venue.
	Build core.BuildConfig
	// MaxBytes is the LRU memory budget over resident venues,
	// accounted at artifact/database file size. Zero means unbounded.
	// At least one venue stays resident regardless of budget.
	MaxBytes int64
	// WALDir, when set, gives every .tdb-backed venue a live ingestion
	// pipeline journaling to <WALDir>/<id>.wal; artifact-backed venues
	// stay frozen. Empty disables live training for all venues.
	WALDir string
	// Ingest is the pipeline template for WALDir venues; WALPath is
	// overridden per venue.
	Ingest ingest.Config
	// Default is the venue id the legacy unversioned routes (/locate,
	// /track/..., /train/report) alias onto. Empty disables the
	// aliases' target (they answer venue_not_found).
	Default string
}

// Registry hosts many venues in one process.
type Registry struct {
	cfg Config

	// venues maps id → *Venue for resident venues only. Reads are the
	// request hot path; writes (load, evict) happen under mu.
	venues sync.Map
	mu     sync.Mutex
	// loading dedups concurrent cold loads: one loader per id, the
	// rest wait on its done channel.
	loading map[string]*loadCall

	resident   atomic.Int64 // accounted bytes across resident venues
	loaded     atomic.Int64 // resident venue count
	loads      atomic.Uint64
	loadErrors atomic.Uint64
	evictions  atomic.Uint64
	loadHist   metrics.Histogram // cold-load latency

	start time.Time // monotonic base for last-use stamps
}

// loadCall is one in-flight cold load; waiters block on done.
type loadCall struct {
	done chan struct{}
	v    *Venue
	err  error
}

// NewRegistry validates the configuration and returns an empty
// registry; venues load lazily on first Acquire.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, errors.New("venue: Config.Dir required")
	}
	st, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("venue: artifact dir: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("venue: %s is not a directory", cfg.Dir)
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = core.AlgoProbabilistic
	}
	if cfg.Default != "" && !ValidID(cfg.Default) {
		return nil, fmt.Errorf("%w: default %q", ErrInvalidID, cfg.Default)
	}
	if cfg.MaxBytes < 0 {
		return nil, errors.New("venue: MaxBytes must be non-negative")
	}
	return &Registry{
		cfg:     cfg,
		loading: make(map[string]*loadCall),
		start:   time.Now(),
	}, nil
}

// DefaultID returns the venue the legacy unversioned routes alias
// onto; empty when no default is configured.
func (r *Registry) DefaultID() string { return r.cfg.Default }

// Acquire pins the venue for one request and returns it; the caller
// must Release when done answering. A resident venue costs one
// lock-free map read and two atomics — zero allocations; a cold venue
// takes the load path (open, decode, warm) exactly once per stampede.
//
//loclint:hotpath
func (r *Registry) Acquire(id string) (*Venue, error) {
	if v, ok := r.venues.Load(id); ok {
		lv := v.(*Venue)
		if lv.tryRef() {
			lv.lastUse.Store(int64(time.Since(r.start)))
			return lv, nil
		}
	}
	return r.acquireSlow(id)
}

// acquireSlow is the cold path: validate, singleflight the load,
// install, and evict over budget.
func (r *Registry) acquireSlow(id string) (*Venue, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	for {
		r.mu.Lock()
		// Re-check residency under the lock: a concurrent loader may
		// have installed the venue between the fast path and here.
		if v, ok := r.venues.Load(id); ok {
			lv := v.(*Venue)
			if lv.tryRef() {
				r.mu.Unlock()
				lv.touch(r)
				return lv, nil
			}
		}
		if c, ok := r.loading[id]; ok {
			r.mu.Unlock()
			<-c.done
			if c.err != nil {
				return nil, c.err
			}
			if c.v.tryRef() {
				c.v.touch(r)
				return c.v, nil
			}
			continue // loaded but already evicted again; retry
		}
		c := &loadCall{done: make(chan struct{})}
		r.loading[id] = c
		r.mu.Unlock()

		v, err := r.load(id)

		r.mu.Lock()
		delete(r.loading, id)
		if err != nil {
			// An unknown venue is a client-side 404, not an operational
			// failure; only real load failures feed the error counter a
			// scrape would alert on.
			if !errors.Is(err, ErrUnknownVenue) {
				r.loadErrors.Add(1)
			}
			c.err = err
			r.mu.Unlock()
			close(c.done)
			return nil, err
		}
		r.venues.Store(id, v)
		r.resident.Add(v.bytes)
		r.loaded.Add(1)
		r.loads.Add(1)
		r.evictOverBudget(id)
		r.mu.Unlock()
		c.v = v
		close(c.done)
		if v.tryRef() {
			v.touch(r)
			return v, nil
		}
		// Evicted before we could pin it (budget smaller than the
		// working set under churn); go around again.
	}
}

// load builds a venue from the directory: the .ilr artifact when
// present, else the .tdb database (with a live ingest pipeline when
// WALDir is configured).
func (r *Registry) load(id string) (*Venue, error) {
	t0 := time.Now()
	ilr := filepath.Join(r.cfg.Dir, id+".ilr")
	if st, err := os.Stat(ilr); err == nil {
		in, err := core.New(
			core.WithCompiledFile(ilr),
			core.WithAlgorithm(r.cfg.Algorithm),
			core.WithConfig(r.cfg.Build),
		)
		if err != nil {
			return nil, fmt.Errorf("venue %s: %w", id, err)
		}
		v := newVenue(id, in.Registry, nil, in.Close, st.Size())
		v.touch(r)
		r.loadHist.Observe(time.Since(t0))
		return v, nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("venue %s: %w", id, err)
	}
	tdbPath := filepath.Join(r.cfg.Dir, id+".tdb")
	st, err := os.Stat(tdbPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownVenue, id)
		}
		return nil, fmt.Errorf("venue %s: %w", id, err)
	}
	db, err := trainingdb.LoadFile(tdbPath)
	if err != nil {
		return nil, fmt.Errorf("venue %s: %w", id, err)
	}
	if r.cfg.WALDir != "" {
		icfg := r.cfg.Ingest
		icfg.WALPath = filepath.Join(r.cfg.WALDir, id+".wal")
		rebuild := func(db *trainingdb.DB) (*core.Service, error) {
			in, err := core.New(
				core.WithDB(db),
				core.WithAlgorithm(r.cfg.Algorithm),
				core.WithConfig(r.cfg.Build),
				core.WithEntryNames(),
			)
			if err != nil {
				return nil, err
			}
			return in.Service, nil
		}
		mgr, err := ingest.NewManager(db, rebuild, icfg)
		if err != nil {
			return nil, fmt.Errorf("venue %s: ingest: %w", id, err)
		}
		v := newVenue(id, mgr.Registry(), mgr, nil, st.Size())
		v.touch(r)
		r.loadHist.Observe(time.Since(t0))
		return v, nil
	}
	in, err := core.New(
		core.WithDB(db),
		core.WithAlgorithm(r.cfg.Algorithm),
		core.WithConfig(r.cfg.Build),
		core.WithEntryNames(),
	)
	if err != nil {
		return nil, fmt.Errorf("venue %s: %w", id, err)
	}
	v := newVenue(id, in.Registry, nil, in.Close, st.Size())
	v.touch(r)
	r.loadHist.Observe(time.Since(t0))
	return v, nil
}

// evictOverBudget drops coldest venues until the accounted bytes fit
// the budget. Runs under r.mu; keep (the just-loaded venue) is never
// the victim, so the working request always has a venue to serve
// from. Eviction removes the venue from the table and drops the
// registry's reference — the mapping is released when the last
// in-flight request holding the venue finishes.
func (r *Registry) evictOverBudget(keep string) {
	for r.cfg.MaxBytes > 0 && r.resident.Load() > r.cfg.MaxBytes {
		var victim *Venue
		r.venues.Range(func(_, val any) bool {
			lv := val.(*Venue)
			if lv.ID == keep {
				return true
			}
			if victim == nil || lv.lastUse.Load() < victim.lastUse.Load() {
				victim = lv
			}
			return true
		})
		if victim == nil {
			return // only the protected venue remains
		}
		r.venues.Delete(victim.ID)
		r.resident.Add(-victim.bytes)
		r.loaded.Add(-1)
		r.evictions.Add(1)
		victim.unref()
	}
}

// Close evicts every resident venue (their mappings release as
// in-flight requests drain) and leaves the registry empty. Acquire
// after Close reloads venues; callers stopping for good simply stop
// calling.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.venues.Range(func(key, val any) bool {
		lv := val.(*Venue)
		r.venues.Delete(key)
		r.resident.Add(-lv.bytes)
		r.loaded.Add(-1)
		lv.unref()
		return true
	})
	return nil
}

// Stats is a point-in-time registry counter snapshot for /metrics and
// /v1/venues.
type Stats struct {
	// Loaded is the resident venue count.
	Loaded int `json:"loaded"`
	// ResidentBytes is the accounted memory of resident venues.
	ResidentBytes int64 `json:"resident_bytes"`
	// MaxBytes echoes the configured budget (0 = unbounded).
	MaxBytes int64 `json:"max_bytes"`
	// Loads counts completed cold loads; LoadErrors failed ones.
	Loads      uint64 `json:"loads"`
	LoadErrors uint64 `json:"load_errors"`
	// Evictions counts venues dropped by the LRU budget.
	Evictions uint64 `json:"evictions"`
	// ColdLoadP50/P99 are cold-load latency quantiles.
	ColdLoadP50 time.Duration `json:"cold_load_p50_ns"`
	ColdLoadP99 time.Duration `json:"cold_load_p99_ns"`
}

// Stats returns the registry counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Loaded:        int(r.loaded.Load()),
		ResidentBytes: r.resident.Load(),
		MaxBytes:      r.cfg.MaxBytes,
		Loads:         r.loads.Load(),
		LoadErrors:    r.loadErrors.Load(),
		Evictions:     r.evictions.Load(),
		ColdLoadP50:   r.loadHist.Quantile(0.50),
		ColdLoadP99:   r.loadHist.Quantile(0.99),
	}
}

// Status describes one venue for the /v1/venues listing.
type Status struct {
	ID     string `json:"id"`
	Loaded bool   `json:"loaded"`
	// Source is "artifact" (.ilr) or "database" (.tdb).
	Source string `json:"source"`
	// Bytes is the on-disk size (the LRU accounting unit).
	Bytes int64 `json:"bytes"`
	// Generation and Locations describe the serving snapshot; zero
	// when the venue is cold.
	Generation uint64 `json:"generation,omitempty"`
	Locations  int    `json:"locations,omitempty"`
	// Live reports a venue with an ingestion pipeline attached.
	Live bool `json:"live,omitempty"`
}

// Status describes one venue without forcing a cold load — a status
// probe must stay cheap and must not churn the LRU.
func (r *Registry) Status(id string) (Status, error) {
	if !ValidID(id) {
		return Status{}, fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	st := Status{ID: id}
	if info, err := os.Stat(filepath.Join(r.cfg.Dir, id+".ilr")); err == nil {
		st.Source, st.Bytes = "artifact", info.Size()
	} else if info, err := os.Stat(filepath.Join(r.cfg.Dir, id+".tdb")); err == nil {
		st.Source, st.Bytes = "database", info.Size()
	} else {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownVenue, id)
	}
	if v, ok := r.venues.Load(id); ok {
		lv := v.(*Venue)
		// Pin before reading the snapshot: an evicted venue's mmap can
		// be unmapped the instant its refcount hits zero, and a bare
		// Snapshot() on it would read freed memory. A venue draining to
		// zero refuses the pin and is reported as not loaded.
		if lv.tryRef() {
			st.Loaded = true
			st.Live = lv.mgr != nil
			if snap := lv.Snapshot(); snap != nil {
				st.Generation = snap.Generation
				if snap.Service != nil && snap.Service.DB != nil {
					st.Locations = snap.Service.DB.Len()
				}
			}
			lv.unref()
		}
	}
	return st, nil
}

// List enumerates every venue the directory offers, resident or cold,
// sorted by id. It reads the directory on every call — the listing is
// an operator surface, not a hot path.
func (r *Registry) List() ([]Status, error) {
	ents, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("venue: list: %w", err)
	}
	seen := make(map[string]Status, len(ents))
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		var id, source string
		switch {
		case strings.HasSuffix(name, ".ilr"):
			id, source = name[:len(name)-4], "artifact"
		case strings.HasSuffix(name, ".tdb"):
			id, source = name[:len(name)-4], "database"
		default:
			continue
		}
		if !ValidID(id) {
			continue
		}
		if prev, ok := seen[id]; ok && prev.Source == "artifact" {
			continue // .ilr wins over a sibling .tdb, matching load
		}
		st := Status{ID: id, Source: source}
		if info, err := ent.Info(); err == nil {
			st.Bytes = info.Size()
		}
		seen[id] = st
	}
	out := make([]Status, 0, len(seen))
	for id, st := range seen {
		if v, ok := r.venues.Load(id); ok {
			lv := v.(*Venue)
			// Pin before reading, as in Status: a concurrently evicted
			// venue's snapshot may alias an unmapped artifact.
			if lv.tryRef() {
				st.Loaded = true
				st.Live = lv.mgr != nil
				// Each iteration reads a different venue's registry — the
				// one-snapshot-per-answer rule guards repeated reads of the
				// same registry, which this is not.
				if snap := lv.Snapshot(); snap != nil { //loclint:allow snapshotonce
					st.Generation = snap.Generation
					if snap.Service != nil && snap.Service.DB != nil {
						st.Locations = snap.Service.DB.Len()
					}
				}
				lv.unref()
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Venue is one resident tenant: its snapshot registry, its optional
// live-training pipeline, and the reference count that makes eviction
// safe under in-flight requests.
type Venue struct {
	// ID is the venue's registry key (and artifact file stem).
	ID string

	reg *core.SnapshotRegistry
	mgr *ingest.Manager // non-nil for live (.tdb + WALDir) venues

	closeFn func() error // releases the artifact mapping; may be nil
	bytes   int64
	// refs counts the registry's own reference (1 while resident) plus
	// one per in-flight request. 0 means finalized; tryRef refuses to
	// resurrect it.
	refs    atomic.Int64
	lastUse atomic.Int64 // nanoseconds since registry start
}

func newVenue(id string, reg *core.SnapshotRegistry, mgr *ingest.Manager, closeFn func() error, bytes int64) *Venue {
	v := &Venue{ID: id, reg: reg, mgr: mgr, closeFn: closeFn, bytes: bytes}
	v.refs.Store(1)
	return v
}

// tryRef takes a reference unless the venue is already draining to
// zero (evicted with no holders left).
//
//loclint:hotpath
func (v *Venue) tryRef() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (v *Venue) touch(r *Registry) {
	v.lastUse.Store(int64(time.Since(r.start)))
}

// Snapshot returns the venue's current serving snapshot. Load it once
// per request and answer entirely from it.
//
//loclint:hotpath
func (v *Venue) Snapshot() *core.Snapshot { return v.reg.Current() }

// Manager returns the venue's live-training pipeline, nil for frozen
// (artifact-backed, or no WALDir) venues.
func (v *Venue) Manager() *ingest.Manager { return v.mgr }

// Release unpins the venue after a request. The last release of an
// evicted venue finalizes it (stops the ingest pipeline, releases the
// artifact mapping).
//
//loclint:hotpath
func (v *Venue) Release() { v.unref() }

//loclint:hotpath
func (v *Venue) unref() {
	if v.refs.Add(-1) == 0 {
		v.finalize()
	}
}

// finalize releases everything the venue pinned. Runs exactly once —
// refs can never rise from 0 — on whatever goroutine dropped the last
// reference (cold path by construction: eviction already happened).
func (v *Venue) finalize() {
	if v.mgr != nil {
		v.mgr.Close()
	}
	if v.closeFn != nil {
		v.closeFn()
	}
}
