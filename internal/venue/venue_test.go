package venue

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/ingest"
	"indoorloc/internal/localize"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

// cityDir writes a small synthetic city and returns its directory.
func cityDir(t *testing.T, campuses, floors int) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := sim.WriteArtifacts(dir, sim.CityConfig{Campuses: campuses, Floors: floors, Seed: 42}); err != nil {
		t.Fatalf("WriteArtifacts: %v", err)
	}
	return dir
}

// observe captures one live observation inside the venue's scenario.
func observe(t *testing.T, campus, floor int) localize.Observation {
	t.Helper()
	s := sim.CityScenario(campus, floor)
	env, err := s.Environment()
	if err != nil {
		t.Fatalf("environment: %v", err)
	}
	sc := sim.NewScanner(env, 7)
	obs := localize.Observation{}
	for _, rec := range sc.Capture(geom.Pt(15, 15), 3, 0) {
		obs[rec.BSSID] = float64(rec.RSSI)
	}
	return obs
}

func TestValidID(t *testing.T) {
	long := make([]byte, MaxIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	cases := []struct {
		id string
		ok bool
	}{
		{"campus-001-floor-2", true},
		{"a", true},
		{"A.Z_9-x", true},
		{string(long[:MaxIDLen]), true},
		{"", false},
		{string(long), false},
		{".", false},
		{"..", false},
		{"a/b", false},
		{"../etc", false},
		{"a b", false},
		{"café", false},
		{"a%2e%2e", true}, // percent chars are not in the charset...
	}
	cases[len(cases)-1].ok = false // '%' is rejected
	for _, c := range cases {
		if got := ValidID(c.id); got != c.ok {
			t.Errorf("ValidID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

func TestRegistryLoadAndServe(t *testing.T) {
	dir := cityDir(t, 2, 2)
	r, err := NewRegistry(Config{Dir: dir})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()

	v, err := r.Acquire(sim.VenueID(1, 1))
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer v.Release()
	snap := v.Snapshot()
	if snap == nil || snap.Service == nil || snap.Service.Locator == nil {
		t.Fatalf("venue has no serving snapshot")
	}
	est, err := snap.Service.Locator.Locate(observe(t, 1, 1))
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	s := sim.CityScenario(1, 1)
	if !s.Outline.Contains(est.Pos) {
		t.Errorf("estimate %v outside venue outline %v", est.Pos, s.Outline)
	}
	st := r.Stats()
	if st.Loaded != 1 || st.Loads != 1 || st.LoadErrors != 0 {
		t.Errorf("stats after one load: %+v", st)
	}
	if st.ColdLoadP99 <= 0 {
		t.Errorf("cold-load histogram not observed: %+v", st)
	}
}

func TestRegistryUnknownAndInvalid(t *testing.T) {
	r, err := NewRegistry(Config{Dir: cityDir(t, 1, 1)})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()
	if _, err := r.Acquire("no-such-venue"); !errors.Is(err, ErrUnknownVenue) {
		t.Errorf("unknown venue: got %v, want ErrUnknownVenue", err)
	}
	if _, err := r.Acquire("../escape"); !errors.Is(err, ErrInvalidID) {
		t.Errorf("invalid id: got %v, want ErrInvalidID", err)
	}
	if _, err := r.Acquire(""); !errors.Is(err, ErrInvalidID) {
		t.Errorf("empty id: got %v, want ErrInvalidID", err)
	}
	// Neither miss is an operational failure: invalid ids are rejected
	// before the load path, and an unknown venue is a client 404 — the
	// error counter a scrape alerts on must stay untouched.
	if got := r.Stats().LoadErrors; got != 0 {
		t.Errorf("LoadErrors = %d after client-side misses, want 0", got)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir := cityDir(t, 3, 1)
	// Budget admits roughly one artifact: every artifact here is a few
	// KB; pick the largest single file as the budget so exactly one
	// resident fits.
	var maxFile int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if info, err := e.Info(); err == nil && info.Size() > maxFile {
			maxFile = info.Size()
		}
	}
	r, err := NewRegistry(Config{Dir: dir, MaxBytes: maxFile})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()

	ids := []string{sim.VenueID(0, 0), sim.VenueID(1, 0), sim.VenueID(2, 0)}
	for _, id := range ids {
		v, err := r.Acquire(id)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", id, err)
		}
		v.Release()
	}
	st := r.Stats()
	if st.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 (budget %d, resident %d)", st.Evictions, maxFile, st.ResidentBytes)
	}
	if st.Loaded != 1 {
		t.Errorf("loaded = %d, want 1 under single-artifact budget", st.Loaded)
	}
	if st.ResidentBytes > maxFile {
		t.Errorf("resident %d exceeds budget %d", st.ResidentBytes, maxFile)
	}
	// Re-acquiring an evicted venue is a fresh cold load.
	v, err := r.Acquire(ids[0])
	if err != nil {
		t.Fatalf("re-Acquire(%s): %v", ids[0], err)
	}
	v.Release()
	if got := r.Stats().Loads; got != 4 {
		t.Errorf("loads = %d, want 4 (3 cold + 1 reload)", got)
	}
}

func TestEvictionDefersReleaseToLastHolder(t *testing.T) {
	dir := cityDir(t, 2, 1)
	var maxFile int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if info, err := e.Info(); err == nil && info.Size() > maxFile {
			maxFile = info.Size()
		}
	}
	r, err := NewRegistry(Config{Dir: dir, MaxBytes: maxFile})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()

	a, err := r.Acquire(sim.VenueID(0, 0))
	if err != nil {
		t.Fatalf("Acquire a: %v", err)
	}
	// Loading b overflows the budget and evicts a — but a is pinned, so
	// its mapping must survive until the Release below.
	b, err := r.Acquire(sim.VenueID(1, 0))
	if err != nil {
		t.Fatalf("Acquire b: %v", err)
	}
	b.Release()
	if r.Stats().Evictions == 0 {
		t.Fatalf("expected the pinned venue to be evicted from the table")
	}
	// The pinned, evicted venue still answers: its matrices are intact.
	if _, err := a.Snapshot().Service.Locator.Locate(observe(t, 0, 0)); err != nil {
		t.Errorf("evicted-but-pinned venue failed to serve: %v", err)
	}
	if a.refs.Load() != 1 {
		t.Errorf("refs = %d, want 1 (registry ref dropped by eviction, holder remains)", a.refs.Load())
	}
	a.Release()
	if a.refs.Load() != 0 {
		t.Errorf("refs = %d after last release, want 0", a.refs.Load())
	}
	// A fresh acquire must not resurrect the finalized venue.
	a2, err := r.Acquire(sim.VenueID(0, 0))
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if a2 == a {
		t.Errorf("registry handed back a finalized venue")
	}
	a2.Release()
}

func TestRegistrySingleflight(t *testing.T) {
	dir := cityDir(t, 1, 1)
	r, err := NewRegistry(Config{Dir: dir})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.Acquire(sim.VenueID(0, 0))
			if err != nil {
				errs[i] = err
				return
			}
			v.Release()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := r.Stats().Loads; got != 1 {
		t.Errorf("loads = %d, want 1 (stampede must singleflight)", got)
	}
}

func TestAcquireZeroAlloc(t *testing.T) {
	dir := cityDir(t, 1, 1)
	r, err := NewRegistry(Config{Dir: dir})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()
	id := sim.VenueID(0, 0)
	v, err := r.Acquire(id)
	if err != nil {
		t.Fatalf("warm Acquire: %v", err)
	}
	v.Release()
	allocs := testing.AllocsPerRun(1000, func() {
		v, err := r.Acquire(id)
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		_ = v.Snapshot()
		v.Release()
	})
	if allocs != 0 {
		t.Errorf("resident Acquire/Snapshot/Release allocates %.1f/op, want 0", allocs)
	}
}

func TestRegistryList(t *testing.T) {
	dir := cityDir(t, 2, 1)
	r, err := NewRegistry(Config{Dir: dir})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()
	v, err := r.Acquire(sim.VenueID(0, 0))
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer v.Release()

	list, err := r.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d venues, want 2: %+v", len(list), list)
	}
	if list[0].ID != sim.VenueID(0, 0) || list[1].ID != sim.VenueID(1, 0) {
		t.Errorf("list not sorted by id: %+v", list)
	}
	if !list[0].Loaded || list[0].Locations == 0 {
		t.Errorf("loaded venue status incomplete: %+v", list[0])
	}
	if list[1].Loaded {
		t.Errorf("cold venue reported loaded: %+v", list[1])
	}
	for _, st := range list {
		if st.Source != "artifact" || st.Bytes <= 0 {
			t.Errorf("bad status: %+v", st)
		}
	}
}

// TestStatusSkipsDrainedVenue: Status and List must pin a resident
// venue before touching its snapshot. A venue whose refcount has
// drained to zero (evicted, last holder gone) refuses the pin, and
// the probes report it as not loaded instead of reading a snapshot
// whose artifact mapping may already be unmapped. Regression test for
// the unpinned Snapshot() reads pinbalance flagged in Status/List.
func TestStatusSkipsDrainedVenue(t *testing.T) {
	dir := cityDir(t, 1, 1)
	r, err := NewRegistry(Config{Dir: dir})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()
	id := sim.VenueID(0, 0)
	v, err := r.Acquire(id)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	v.Release()

	lv, ok := r.venues.Load(id)
	if !ok {
		t.Fatal("venue not resident after acquire")
	}
	// Freeze the venue in the eviction race window: still in the map,
	// refcount already at zero. tryRef must refuse to resurrect it.
	// Skip finalize — the mapping is still live; restored below so
	// r.Close tears it down normally.
	lv.(*Venue).refs.Store(0)

	st, err := r.Status(id)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Loaded || st.Generation != 0 || st.Locations != 0 {
		t.Errorf("drained venue reported loaded: %+v", st)
	}
	list, err := r.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 1 || list[0].Loaded {
		t.Errorf("drained venue reported loaded in list: %+v", list)
	}

	lv.(*Venue).refs.Store(1)
	st, err = r.Status(id)
	if err != nil {
		t.Fatalf("Status after restore: %v", err)
	}
	if !st.Loaded || st.Locations == 0 {
		t.Errorf("pinnable venue status incomplete: %+v", st)
	}
}

// TestRegistryTDBAndLiveIngest covers the .tdb source: without WALDir
// the venue is frozen (no Manager); with WALDir it accepts training
// reports through a per-venue ingest pipeline.
func TestRegistryTDBAndLiveIngest(t *testing.T) {
	dir := t.TempDir()
	db, err := sim.CityConfig{Seed: 42}.BuildVenueDB(0, 0)
	if err != nil {
		t.Fatalf("BuildVenueDB: %v", err)
	}
	if err := trainingdb.SaveFile(filepath.Join(dir, "live-0.tdb"), db); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	frozen, err := NewRegistry(Config{Dir: dir})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	v, err := frozen.Acquire("live-0")
	if err != nil {
		t.Fatalf("Acquire frozen tdb: %v", err)
	}
	if v.Manager() != nil {
		t.Errorf("tdb venue without WALDir must be frozen")
	}
	if _, err := v.Snapshot().Service.Locator.Locate(observe(t, 0, 0)); err != nil {
		t.Errorf("tdb venue failed to serve: %v", err)
	}
	v.Release()
	frozen.Close()

	walDir := t.TempDir()
	live, err := NewRegistry(Config{Dir: dir, WALDir: walDir})
	if err != nil {
		t.Fatalf("NewRegistry live: %v", err)
	}
	defer live.Close()
	lv, err := live.Acquire("live-0")
	if err != nil {
		t.Fatalf("Acquire live tdb: %v", err)
	}
	defer lv.Release()
	mgr := lv.Manager()
	if mgr == nil {
		t.Fatalf("tdb venue with WALDir must be live")
	}
	rep := ingest.Report{
		Name:        "test-report-1",
		Pos:         &ingest.ReportPos{X: 15, Y: 15},
		Observation: observe(t, 0, 0),
	}
	if err := mgr.Submit(rep); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walDir, "live-0.wal")); err != nil {
		t.Errorf("per-venue WAL missing: %v", err)
	}
}
