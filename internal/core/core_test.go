package core

import (
	"strings"
	"testing"

	"indoorloc/internal/geom"

	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// fixture builds the paper-house training artefacts once per test.
type fixture struct {
	scen sim.Scenario
	coll *wiscan.Collection
	lm   *locmap.Map
	db   *trainingdb.DB
	sc   *sim.Scanner
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	lm, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 5)
	coll := sc.CaptureCollection(lm, 15)
	db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{scen: scen, coll: coll, lm: lm, db: db, sc: sc}
}

func TestAlgorithmsListMatchesRegistry(t *testing.T) {
	f := newFixture(t)
	for _, name := range Algorithms() {
		loc, err := BuildLocator(name, f.db, BuildConfig{APPositions: f.scen.APPositions()})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if loc == nil {
			t.Errorf("%s: nil locator", name)
		}
	}
}

func TestBuildLocatorErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := BuildLocator("nope", f.db, BuildConfig{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := BuildLocator(AlgoProbabilistic, nil, BuildConfig{}); err == nil {
		t.Error("nil DB accepted")
	}
	if _, err := BuildLocator(AlgoGeometric, f.db, BuildConfig{}); err == nil {
		t.Error("geometric without AP positions accepted")
	}
}

func TestBuildLocatorKindsAndOptions(t *testing.T) {
	f := newFixture(t)
	nn, _ := BuildLocator(AlgoNNSS, f.db, BuildConfig{})
	if nn.Name() != "nnss" {
		t.Errorf("nnss built %q", nn.Name())
	}
	knn, _ := BuildLocator(AlgoKNN, f.db, BuildConfig{K: 5})
	if k, ok := knn.(*localize.KNN); !ok || k.K != 5 {
		t.Errorf("knn K option lost: %#v", knn)
	}
	w, _ := BuildLocator(AlgoWKNN, f.db, BuildConfig{})
	if k, ok := w.(*localize.KNN); !ok || !k.Weighted {
		t.Error("wknn not weighted")
	}
	ls, _ := BuildLocator(AlgoGeometricLS, f.db, BuildConfig{APPositions: f.scen.APPositions()})
	if g, ok := ls.(*localize.Geometric); !ok || g.Combine != localize.CombineLeastSquares {
		t.Error("geometric-ls combiner wrong")
	}
	ml, _ := BuildLocator(AlgoProbabilistic, f.db, BuildConfig{FloorRSSI: -90})
	if m, ok := ml.(*localize.MaxLikelihood); !ok || m.FloorRSSI != -90 {
		t.Error("floor option lost")
	}
}

func TestPipelineTrainAndLocate(t *testing.T) {
	f := newFixture(t)
	pl := &Pipeline{
		Collection:  f.coll,
		LocMap:      f.lm,
		Algorithm:   AlgoProbabilistic,
		APPositions: f.scen.APPositions(),
	}
	svc, trace, err := pl.Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 6 {
		t.Fatalf("trace has %d steps: %v", len(trace), trace)
	}
	for i, prefix := range []string{"step 1", "step 2", "step 3", "step 4", "step 5", "step 6"} {
		if !strings.HasPrefix(trace[i], prefix) {
			t.Errorf("trace[%d] = %q", i, trace[i])
		}
	}
	if svc.DB.Len() != 30 {
		t.Errorf("service DB has %d entries", svc.DB.Len())
	}
	// Phase 2 against a training point.
	target, _ := f.lm.Lookup(sim.TrainingName(2, 2))
	recs := f.sc.Capture(target, 10, 0)
	res, err := svc.LocateRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Pos.Dist(target) > 15 {
		t.Errorf("estimate %v far from %v", res.Estimate.Pos, target)
	}
	if res.NearestName == "" {
		t.Error("no symbolic resolution")
	}
}

func TestPipelineWithPlan(t *testing.T) {
	f := newFixture(t)
	plan, err := f.scen.Plan()
	if err != nil {
		t.Fatal(err)
	}
	pl := &Pipeline{Plan: plan, Collection: f.coll, SkipUnmapped: true}
	svc, trace, err := pl.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace[0], "floor plan") {
		t.Errorf("trace[0] = %q", trace[0])
	}
	if svc.Names == nil || svc.Names.Len() == 0 {
		t.Error("plan's location names not adopted")
	}
	// Plan-derived training positions are quantised to pixels; the DB
	// should still hold one entry per grid point.
	if svc.DB.Len() != 30 {
		t.Errorf("DB has %d entries", svc.DB.Len())
	}
}

func TestPipelineErrors(t *testing.T) {
	f := newFixture(t)
	if _, _, err := (&Pipeline{Collection: f.coll}).Train(); err == nil {
		t.Error("missing location map accepted")
	}
	if _, _, err := (&Pipeline{LocMap: f.lm}).Train(); err == nil {
		t.Error("missing collection accepted")
	}
	if _, _, err := (&Pipeline{
		Collection: f.coll, LocMap: f.lm, Algorithm: "bogus",
	}).Train(); err == nil {
		t.Error("bogus algorithm accepted")
	}
	// Unmapped locations fail by default, pass with SkipUnmapped.
	partial := locmap.New()
	p0, ok := f.lm.Lookup(sim.TrainingName(0, 0))
	if !ok {
		t.Fatal("grid-0-0 missing")
	}
	partial.Add(sim.TrainingName(0, 0), p0)
	if _, _, err := (&Pipeline{Collection: f.coll, LocMap: partial}).Train(); err == nil {
		t.Error("unmapped locations accepted in strict mode")
	}
	svc, _, err := (&Pipeline{Collection: f.coll, LocMap: partial, SkipUnmapped: true}).Train()
	if err != nil {
		t.Fatal(err)
	}
	if svc.DB.Len() != 1 {
		t.Errorf("partial DB has %d entries", svc.DB.Len())
	}
}

func TestServiceLocateRecordsEmpty(t *testing.T) {
	f := newFixture(t)
	svc, _, err := (&Pipeline{Collection: f.coll, LocMap: f.lm}).Train()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.LocateRecords(nil); err != localize.ErrEmptyObservation {
		t.Errorf("empty records: %v", err)
	}
}

func TestServiceRoomResolution(t *testing.T) {
	f := newFixture(t)
	plan, err := f.scen.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Two rooms split by the scenario's interior walls: west of x=25
	// and the south-east quadrant.
	if err := plan.AddRoom("west wing", geom.Polygon{
		geom.Pt(0, 0), geom.Pt(25, 0), geom.Pt(25, 40), geom.Pt(0, 40),
	}); err != nil {
		t.Fatal(err)
	}
	if err := plan.AddRoom("se room", geom.Polygon{
		geom.Pt(25, 0), geom.Pt(50, 0), geom.Pt(50, 25), geom.Pt(25, 25),
	}); err != nil {
		t.Fatal(err)
	}
	svc, _, err := (&Pipeline{Plan: plan, Collection: f.coll, LocMap: f.lm}).Train()
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Rooms) != 2 {
		t.Fatalf("service has %d rooms", len(svc.Rooms))
	}
	// A training point deep in the west wing resolves to it.
	target, _ := f.lm.Lookup(sim.TrainingName(1, 2)) // (10, 20)
	res, err := svc.LocateRecords(f.sc.Capture(target, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != "west wing" && res.Room != "se room" && res.Room != "" {
		t.Errorf("unexpected room %q", res.Room)
	}
	// The estimate itself decides the room; with a quiet check we just
	// assert consistency between coordinates and containment.
	if res.Room != "" {
		found := false
		for _, r := range svc.Rooms {
			if r.Name == res.Room {
				found = r.Poly.Contains(res.Estimate.Pos)
			}
		}
		if !found {
			t.Errorf("room %q does not contain estimate %v", res.Room, res.Estimate.Pos)
		}
	}
}
