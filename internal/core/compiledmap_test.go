package core

import (
	"math"
	"path/filepath"
	"testing"

	"indoorloc/internal/localize"
	"indoorloc/internal/trainingdb"
)

// writeArtifact compiles the fixture database into a quantized v2
// artifact on disk.
func writeArtifact(t *testing.T, f *fixture) string {
	t.Helper()
	c := f.db.Compile(-95, 4)
	c.Quantize()
	c.ReleaseFloat64()
	path := filepath.Join(t.TempDir(), "map.ilr")
	if err := trainingdb.WriteCompiledFile(path, c); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServiceFromCompiledFile checks the artifact-serving path against
// the conventional DB-built service: same entries, and estimates that
// agree to within the quantization tolerance.
func TestServiceFromCompiledFile(t *testing.T) {
	f := newFixture(t)
	path := writeArtifact(t, f)
	for _, algo := range []string{AlgoProbabilistic, AlgoNNSS, AlgoKNN, AlgoWKNN, AlgoSector} {
		t.Run(algo, func(t *testing.T) {
			svc, closeMap, err := ServiceFromCompiledFile(path, algo, BuildConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer closeMap()
			if svc.DB.Len() != f.db.Len() || svc.Names.Len() != f.db.Len() {
				t.Fatalf("skeleton has %d entries, names %d, want %d",
					svc.DB.Len(), svc.Names.Len(), f.db.Len())
			}
			ref, err := BuildLocator(algo, f.db, BuildConfig{})
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"grid-0-0", "grid-2-3", "grid-4-4"} {
				pos := f.db.Entries[name].Pos
				obs := localize.ObservationFromRecords(f.sc.Capture(pos, 8, 0))
				got, err := svc.Locate(obs)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Locate(obs)
				if err != nil {
					t.Fatal(err)
				}
				// Quantization can flip near-ties, so bound the positional
				// disagreement instead of demanding identity: within one
				// grid cell of the float64 answer.
				if d := math.Hypot(got.Estimate.Pos.X-want.Pos.X, got.Estimate.Pos.Y-want.Pos.Y); d > 8 {
					t.Errorf("%s at %s: artifact answered %v, db answered %v (%.1f ft apart)",
						algo, name, got.Estimate.Pos, want.Pos, d)
				}
				if got.NearestName == "" {
					t.Errorf("%s at %s: no resolved name", algo, name)
				}
			}
		})
	}
}

// TestArtifactLocateAllocParity is the acceptance bar for the mmap
// path: serving from a memory-mapped quantized artifact must not add a
// single hot-path allocation over the conventional in-memory locator.
func TestArtifactLocateAllocParity(t *testing.T) {
	f := newFixture(t)
	path := writeArtifact(t, f)
	svc, closeMap, err := ServiceFromCompiledFile(path, AlgoProbabilistic, BuildConfig{TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer closeMap()

	ref, err := BuildLocator(AlgoProbabilistic, f.db, BuildConfig{Quantize: true, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	obs := localize.ObservationFromRecords(f.sc.Capture(f.db.Entries["grid-2-2"].Pos, 8, 0))
	locate := func(loc localize.Locator) float64 {
		if _, err := loc.Locate(obs); err != nil { // warm pools and caches
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := loc.Locate(obs); err != nil {
				t.Fatal(err)
			}
		})
	}
	mmapAllocs := locate(svc.Locator)
	refAllocs := locate(ref)
	if mmapAllocs > refAllocs {
		t.Errorf("mmap-served Locate allocates %v/op, in-memory %v/op — the artifact path added allocations",
			mmapAllocs, refAllocs)
	}
}

func TestBuildLocatorFromCompiledErrors(t *testing.T) {
	f := newFixture(t)
	c := f.db.Compile(-95, 4)
	if _, err := BuildLocatorFromCompiled(AlgoProbabilistic, nil, BuildConfig{}); err == nil {
		t.Error("nil view accepted")
	}
	for _, algo := range []string{AlgoHistogram, AlgoHybrid, AlgoGeometric, AlgoGeometricLS, "nope"} {
		if _, err := BuildLocatorFromCompiled(algo, c, BuildConfig{}); err == nil {
			t.Errorf("%s over a compiled view accepted", algo)
		}
	}
}

func TestBuildConfigQuantizeTopK(t *testing.T) {
	f := newFixture(t)
	loc, err := BuildLocator(AlgoProbabilistic, f.db, BuildConfig{Quantize: true, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	ml := loc.(*localize.MaxLikelihood)
	if !ml.Quantize || ml.TopK != 3 {
		t.Fatalf("options lost: quantize=%v topk=%d", ml.Quantize, ml.TopK)
	}
	view := ml.CompiledView()
	if view == nil || view.Quant == nil {
		t.Fatal("warmed quantized locator has no quantized view")
	}
	obs := localize.ObservationFromRecords(f.sc.Capture(f.db.Entries["grid-1-1"].Pos, 8, 0))
	est, err := loc.Locate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Candidates) != 3 {
		t.Errorf("TopK=3 returned %d candidates", len(est.Candidates))
	}
}
