// Package core is the toolkit's engine: it wires the substrate
// packages into the paper's two-phase architecture (Figure 1).
//
// Phase 1 — training:
//
//	step 1  annotate the floor plan (Floor Plan Processor),
//	step 2  capture wi-scan files at each named training location,
//	step 3  produce the location map (names → coordinates),
//	step 4  generate the training database and fit the localizer.
//
// Phase 2 — working:
//
//	step 5  observe a signal-strength vector,
//	step 6  resolve it to a location (coordinates + application name).
//
// The engine exposes a registry of localization algorithms by name, so
// command-line tools and experiments select them uniformly.
package core

import (
	"errors"
	"fmt"
	"sort"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/regress"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// Algorithm names accepted by the registry.
const (
	AlgoProbabilistic = "probabilistic" // the paper's §5.1 Gaussian ML
	AlgoHistogram     = "histogram"     // Bayesian histogram matching
	AlgoNNSS          = "nnss"          // RADAR nearest neighbour
	AlgoKNN           = "knn"           // k nearest neighbours (k=3)
	AlgoWKNN          = "wknn"          // weighted kNN (k=3)
	AlgoGeometric     = "geometric"     // the paper's §5.2 circles + median
	AlgoGeometricLS   = "geometric-ls"  // multilateration least squares
	AlgoSector        = "sector"        // identifying-code audible-AP sets (§2.2)
	AlgoHybrid        = "hybrid"        // probabilistic posterior blended with geometric
)

// Algorithms returns the registry's algorithm names, sorted.
func Algorithms() []string {
	return []string{
		AlgoGeometric, AlgoGeometricLS, AlgoHistogram, AlgoHybrid,
		AlgoKNN, AlgoNNSS, AlgoProbabilistic, AlgoSector, AlgoWKNN,
	}
}

// BuildConfig carries what locator constructors need beyond the
// training database.
type BuildConfig struct {
	// APPositions (BSSID → world position) is required by the
	// geometric algorithms and ignored by the rest.
	APPositions map[string]geom.Point
	// FloorRSSI is the substitution level for unheard APs; zero means
	// -95 dBm.
	FloorRSSI float64
	// K overrides the neighbour count for knn/wknn; zero means 3.
	K int
	// Shards and ShardCutover tune the localize.ShardedScorer behind
	// the radio-map scanners (probabilistic, histogram, nnss/knn/wknn,
	// hybrid): Shards is the per-query fan-out width (zero means one
	// shard per CPU) and ShardCutover the minimum entry count before a
	// scan leaves the single-thread fast path (zero means
	// localize.DefaultShardCutover).
	Shards       int
	ShardCutover int
	// Quantize compiles the radio map into the int16-quantized form
	// (per-AP scale/offset, ~¼ the matrix footprint, within the bounds
	// documented in localize's parity tests). Applies to the
	// probabilistic and kNN families; other algorithms ignore it.
	Quantize bool
	// TopK bounds ranking to the best K candidates via a bounded-heap
	// selection instead of a full sort. Zero keeps full ranking. Applies
	// to the radio-map scanners (probabilistic, histogram, nnss/knn/wknn,
	// sector, hybrid); the kNN family never returns fewer than its
	// neighbour count.
	TopK int
}

// BuildLocator constructs a registered algorithm over a training
// database.
//
// Deprecated: use New with WithDB, WithAlgorithm and WithConfig; the
// built locator is Instance.Service.Locator. This wrapper remains for
// source compatibility.
func BuildLocator(name string, db *trainingdb.DB, cfg BuildConfig) (localize.Locator, error) {
	return buildLocator(name, db, cfg)
}

// buildLocator constructs a registered algorithm over a training
// database. The returned locator is warmed: compiled radio maps,
// histogram tables and identifying codes are built here, once, so
// every consumer — the HTTP server, localize.Batch fanouts, the CLI
// tools and the experiment harness — serves its first query at full
// speed.
func buildLocator(name string, db *trainingdb.DB, cfg BuildConfig) (localize.Locator, error) {
	if db == nil {
		return nil, errors.New("core: nil training database")
	}
	floor := cfg.FloorRSSI
	if floor == 0 {
		floor = -95
	}
	k := cfg.K
	if k <= 0 {
		k = 3
	}
	// One scorer is shared by every scanner the locator composes; the
	// zero-config value keeps the package defaults.
	sharding := &localize.ShardedScorer{Shards: cfg.Shards, Cutover: cfg.ShardCutover}
	var loc localize.Locator
	switch name {
	case AlgoProbabilistic:
		ml := localize.NewMaxLikelihood(db)
		ml.FloorRSSI = floor
		ml.Sharding = sharding
		ml.Quantize = cfg.Quantize
		ml.TopK = cfg.TopK
		loc = ml
	case AlgoHistogram:
		h := localize.NewHistogram(db)
		h.FloorRSSI = floor
		h.Sharding = sharding
		h.TopK = cfg.TopK
		loc = h
	case AlgoSector:
		s := localize.NewSector(db)
		s.TopK = cfg.TopK
		loc = s
	case AlgoNNSS:
		nn := localize.NewKNN(db, 1)
		nn.FloorRSSI = floor
		nn.Sharding = sharding
		nn.Quantize = cfg.Quantize
		nn.TopK = cfg.TopK
		loc = nn
	case AlgoKNN:
		knn := localize.NewKNN(db, k)
		knn.FloorRSSI = floor
		knn.Sharding = sharding
		knn.Quantize = cfg.Quantize
		knn.TopK = cfg.TopK
		loc = knn
	case AlgoWKNN:
		w := localize.NewKNN(db, k)
		w.Weighted = true
		w.FloorRSSI = floor
		w.Sharding = sharding
		w.Quantize = cfg.Quantize
		w.TopK = cfg.TopK
		loc = w
	case AlgoGeometric, AlgoGeometricLS, AlgoHybrid:
		if len(cfg.APPositions) == 0 {
			return nil, fmt.Errorf("core: algorithm %q needs AP positions", name)
		}
		g, err := localize.FitGeometric(db, cfg.APPositions,
			regress.InversePowerBasis{Degree: 2, MinDist: 1})
		if err != nil {
			return nil, err
		}
		if name == AlgoGeometricLS {
			g.Combine = localize.CombineLeastSquares
		}
		if name == AlgoHybrid {
			ml := localize.NewMaxLikelihood(db)
			ml.FloorRSSI = floor
			ml.Sharding = sharding
			ml.Quantize = cfg.Quantize
			ml.TopK = cfg.TopK
			h, err := localize.NewHybrid(ml, g)
			if err != nil {
				return nil, err
			}
			loc = h
		} else {
			loc = g
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (have %v)", name, Algorithms())
	}
	if w, ok := loc.(localize.Warmer); ok {
		if err := w.Warm(); err != nil {
			return nil, fmt.Errorf("core: warming %s: %w", name, err)
		}
	}
	return loc, nil
}

// Service is a trained, ready-to-answer location service — the output
// of Phase 1.
type Service struct {
	DB      *trainingdb.DB
	Locator localize.Locator
	// Names resolves coordinates back to application-level location
	// names (step 6's abstraction); may be nil.
	Names *locmap.Map
	// Rooms resolves coordinates to room regions by containment; may
	// be empty.
	Rooms []floorplan.Room
}

// Resolution is a Phase 2 answer: coordinates, the localizer's own
// symbolic choice if any, and the nearest named location.
type Resolution struct {
	Estimate localize.Estimate
	// NearestName is the closest name in the service's location map to
	// the estimated coordinates ("room D22"), empty without a map.
	NearestName string
	// Room is the name of the room region containing the estimate,
	// empty when no room matches or none are defined.
	Room string
}

// Locate runs steps 5–6 for an averaged observation.
func (s *Service) Locate(obs localize.Observation) (Resolution, error) {
	est, err := s.Locator.Locate(obs)
	if err != nil {
		return Resolution{}, err
	}
	res := Resolution{Estimate: est}
	if s.Names != nil {
		if name, _, ok := s.Names.Nearest(est.Pos); ok {
			res.NearestName = name
		}
	}
	for _, room := range s.Rooms {
		if room.Poly.Contains(est.Pos) {
			res.Room = room.Name
			break
		}
	}
	return res, nil
}

// LocateRecords averages a capture window (the paper averages 1.5
// minutes of scans) and resolves it.
func (s *Service) LocateRecords(recs []wiscan.Record) (Resolution, error) {
	if len(recs) == 0 {
		return Resolution{}, localize.ErrEmptyObservation
	}
	return s.Locate(localize.ObservationFromRecords(recs))
}

// Pipeline is the Figure 1 flow: feed it the Phase 1 artefacts and it
// produces a Service, recording a human-readable trace of the six
// steps for audit.
type Pipeline struct {
	// Plan is the annotated floor plan (step 1). Optional: when set,
	// its named locations become the location map unless LocMap is
	// given explicitly, and its AP positions feed the geometric
	// algorithms unless APPositions is set.
	Plan *floorplan.Plan
	// Collection holds the wi-scan captures (step 2).
	Collection *wiscan.Collection
	// LocMap is the location map (step 3); optional if Plan carries
	// named locations.
	LocMap *locmap.Map
	// Algorithm is the registry name to fit (step 4); empty means
	// AlgoProbabilistic.
	Algorithm string
	// APPositions overrides the plan's AP markers for the geometric
	// algorithms.
	APPositions map[string]geom.Point
	// SkipUnmapped forwards to the Training Database Generator.
	SkipUnmapped bool
}

// Train runs Phase 1 (steps 1–4) and returns the service plus the
// step trace.
func (p *Pipeline) Train() (*Service, []string, error) {
	var trace []string
	algo := p.Algorithm
	if algo == "" {
		algo = AlgoProbabilistic
	}

	// Step 1: floor plan annotations.
	lm := p.LocMap
	apPos := p.APPositions
	if p.Plan != nil {
		trace = append(trace, fmt.Sprintf("step 1: floor plan %q (%d APs, %d named locations)",
			p.Plan.Name, len(p.Plan.APs), len(p.Plan.Locations)))
		if lm == nil && len(p.Plan.Locations) > 0 {
			m, err := p.Plan.LocationMap()
			if err != nil {
				return nil, trace, fmt.Errorf("core: step 1: %w", err)
			}
			lm = m
		}
		if apPos == nil && len(p.Plan.APs) > 0 {
			m, err := p.Plan.APPositions()
			if err != nil {
				return nil, trace, fmt.Errorf("core: step 1: %w", err)
			}
			apPos = m
		}
	} else {
		trace = append(trace, "step 1: no floor plan (location map supplied directly)")
	}
	if lm == nil {
		return nil, trace, errors.New("core: no location map (set LocMap or annotate the plan)")
	}

	// Step 2: wi-scan collection.
	if p.Collection == nil || len(p.Collection.Files) == 0 {
		return nil, trace, errors.New("core: no wi-scan collection")
	}
	trace = append(trace, fmt.Sprintf("step 2: wi-scan collection (%d locations, %d records)",
		len(p.Collection.Files), p.Collection.TotalRecords()))

	// Step 3: location map.
	trace = append(trace, fmt.Sprintf("step 3: location map (%d names)", lm.Len()))

	// Step 4: training database + locator.
	db, skipped, err := trainingdb.Generate(p.Collection, lm,
		trainingdb.Options{SkipUnmapped: p.SkipUnmapped})
	if err != nil {
		return nil, trace, fmt.Errorf("core: step 4: %w", err)
	}
	msg := fmt.Sprintf("step 4: training database (%d entries, %d APs, %d samples), algorithm %s",
		db.Len(), len(db.BSSIDs), db.TotalSamples(), algo)
	if len(skipped) > 0 {
		sort.Strings(skipped)
		msg += fmt.Sprintf("; skipped unmapped %v", skipped)
	}
	trace = append(trace, msg)
	loc, err := buildLocator(algo, db, BuildConfig{APPositions: apPos})
	if err != nil {
		return nil, trace, fmt.Errorf("core: step 4: %w", err)
	}
	trace = append(trace,
		"step 5: (working phase) observe signal-strength vectors",
		"step 6: (working phase) resolve observations to locations")
	svc := &Service{DB: db, Locator: loc, Names: lm}
	if p.Plan != nil {
		svc.Rooms = p.Plan.Rooms
	}
	return svc, trace, nil
}
