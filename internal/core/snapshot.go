package core

import (
	"errors"
	"sync/atomic"
	"time"
)

// Snapshot is one immutable, fully consistent serving state: a
// training database frozen at a generation, the warmed locator
// compiled from exactly that database, and the name/room resolution
// built from the same entry set. Handlers that load a snapshot once
// and answer entirely from it can never mix worlds — the estimate, its
// symbolic name and its room all come from the same radio map.
//
// Snapshots are published, never mutated: the ingest compactor builds
// a fresh one off the serving path and swaps it in atomically.
type Snapshot struct {
	// Generation is the training database's mutation counter at build
	// time (see trainingdb.DB.Generation).
	Generation uint64
	// Service is the frozen serving state. Its DB, Locator, Names and
	// Rooms must not be mutated after Publish.
	Service *Service
	// BuiltAt records when the snapshot was built (the last-swap time
	// /healthz reports).
	BuiltAt time.Time
}

// SnapshotRegistry publishes the current snapshot to concurrent
// readers. Reads are one atomic pointer load — the hot-path cost of
// hot-swappability — and writers replace the whole snapshot at once,
// so a reader always sees a consistent ⟨DB, locator, names⟩ triple.
type SnapshotRegistry struct {
	cur atomic.Pointer[Snapshot]
}

// NewSnapshotRegistry returns a registry serving the given initial
// snapshot.
func NewSnapshotRegistry(s *Snapshot) (*SnapshotRegistry, error) {
	if s == nil || s.Service == nil || s.Service.Locator == nil {
		return nil, errors.New("core: snapshot registry needs an initial snapshot with a locator")
	}
	r := &SnapshotRegistry{}
	r.cur.Store(s)
	return r, nil
}

// StaticSnapshot wraps an immutable service as a registry's one
// forever-current snapshot — the shape of a server without live
// ingestion.
func StaticSnapshot(svc *Service) (*SnapshotRegistry, error) {
	if svc == nil || svc.Locator == nil {
		return nil, errors.New("core: nil service")
	}
	var gen uint64
	if svc.DB != nil {
		gen = svc.DB.Generation()
	}
	return NewSnapshotRegistry(&Snapshot{Generation: gen, Service: svc, BuiltAt: time.Now()})
}

// Current returns the snapshot to serve this request from. Callers
// must load it once per request and use only that snapshot for the
// whole answer.
//
//loclint:hotpath
func (r *SnapshotRegistry) Current() *Snapshot { return r.cur.Load() }

// Publish atomically replaces the current snapshot. In-flight readers
// keep the snapshot they loaded; new readers see s. Publish never
// blocks readers.
func (r *SnapshotRegistry) Publish(s *Snapshot) { r.cur.Store(s) }
