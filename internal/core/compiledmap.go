package core

import (
	"errors"
	"fmt"

	"indoorloc/internal/localize"
	"indoorloc/internal/trainingdb"
)

// BuildLocatorFromCompiled constructs a registered algorithm directly
// over a compiled radio-map view.
//
// Deprecated: use New with WithCompiled, WithAlgorithm and WithConfig;
// the built locator is Instance.Service.Locator. This wrapper remains
// for source compatibility.
func BuildLocatorFromCompiled(name string, c *trainingdb.Compiled, cfg BuildConfig) (localize.Locator, error) {
	return buildLocatorFromCompiled(name, c, cfg)
}

// buildLocatorFromCompiled constructs a registered algorithm directly
// over a compiled radio-map view — the serving shape of a v2 artifact,
// where the raw training database never existed in this process. Only
// the algorithms whose entire working state derives from the compiled
// matrices are supported: probabilistic, nnss, knn, wknn and sector.
// Histogram needs raw per-sample tables, and the geometric family
// needs AP positions plus a propagation fit; train those from a .tdb.
//
// The view's own floor parameters govern scoring. cfg.FloorRSSI is
// ignored; Quantize, TopK, K, Shards and ShardCutover apply as in
// buildLocator.
func buildLocatorFromCompiled(name string, c *trainingdb.Compiled, cfg BuildConfig) (localize.Locator, error) {
	if c == nil {
		return nil, errors.New("core: nil compiled view")
	}
	k := cfg.K
	if k <= 0 {
		k = 3
	}
	sharding := &localize.ShardedScorer{Shards: cfg.Shards, Cutover: cfg.ShardCutover}
	var loc localize.Locator
	switch name {
	case AlgoProbabilistic:
		ml := localize.NewMaxLikelihood(nil)
		ml.Precompiled = c
		ml.Sharding = sharding
		ml.Quantize = cfg.Quantize
		ml.TopK = cfg.TopK
		loc = ml
	case AlgoSector:
		s := localize.NewSector(nil)
		s.Precompiled = c
		s.TopK = cfg.TopK
		loc = s
	case AlgoNNSS, AlgoKNN, AlgoWKNN:
		if name == AlgoNNSS {
			k = 1
		}
		knn := localize.NewKNN(nil, k)
		knn.Precompiled = c
		knn.Sharding = sharding
		knn.Weighted = name == AlgoWKNN
		knn.Quantize = cfg.Quantize
		knn.TopK = cfg.TopK
		loc = knn
	default:
		return nil, fmt.Errorf("core: algorithm %q cannot serve from a compiled artifact "+
			"(supported: %s, %s, %s, %s, %s)", name,
			AlgoProbabilistic, AlgoNNSS, AlgoKNN, AlgoWKNN, AlgoSector)
	}
	if w, ok := loc.(localize.Warmer); ok {
		if err := w.Warm(); err != nil {
			return nil, fmt.Errorf("core: warming %s from artifact: %w", name, err)
		}
	}
	return loc, nil
}

// ServiceFromCompiledFile opens a v2 radio-map artifact (memory-mapped
// where supported), builds the named algorithm over it, and wraps it
// as a ready-to-serve Service.
//
// The returned close is idempotent — every call after the first
// returns the first call's error without re-closing — and error paths
// inside this function always release the mapping themselves. Call it
// only after the service has stopped answering (and nothing retains
// estimate strings).
//
// Deprecated: use New with WithCompiledFile; the service is
// Instance.Service and Instance.Close releases the mapping.
func ServiceFromCompiledFile(path, algo string, cfg BuildConfig) (svc *Service, close func() error, err error) {
	in, err := New(WithCompiledFile(path), WithAlgorithm(algo), WithConfig(cfg))
	if err != nil {
		return nil, nil, err
	}
	return in.Service, in.Close, nil
}
