package core

import (
	"math"
	"strings"
	"testing"

	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
)

func TestNewSourceExclusivity(t *testing.T) {
	f := newFixture(t)
	path := writeArtifact(t, f)
	cases := []struct {
		name string
		opts []Option
	}{
		{"no source", nil},
		{"only algorithm", []Option{WithAlgorithm(AlgoKNN)}},
		{"db and file", []Option{WithDB(f.db), WithCompiledFile(path)}},
		{"db and compiled", []Option{WithDB(f.db), WithCompiled(f.db.Compile(-95, 4))}},
		{"service and db", []Option{WithService(&Service{DB: f.db}), WithDB(f.db)}},
	}
	for _, tc := range cases {
		in, err := New(tc.opts...)
		if err == nil || !strings.Contains(err.Error(), "exactly one source") {
			t.Errorf("%s: want the exclusivity error, got %v (instance %v)", tc.name, err, in)
		}
	}
}

func TestNewFromDB(t *testing.T) {
	f := newFixture(t)
	in, err := New(WithDB(f.db), WithAlgorithm(AlgoKNN), WithConfig(BuildConfig{K: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if in.Service == nil || in.Service.Locator == nil || in.Service.DB != f.db {
		t.Fatal("instance not wired to the source DB")
	}
	if in.Service.Names != nil {
		t.Error("DB source should not derive names unless asked")
	}
	// The registry is a live static snapshot over the same service.
	if snap := in.Registry.Current(); snap == nil || snap.Service != in.Service {
		t.Error("registry does not snapshot the instance's service")
	}
	// Close on a DB-sourced instance pins nothing and must be a no-op.
	if err := in.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	// WithEntryNames derives a resolver from the training locations;
	// WithNames overrides it outright.
	in2, err := New(WithDB(f.db), WithEntryNames())
	if err != nil {
		t.Fatal(err)
	}
	if in2.Service.Names == nil || in2.Service.Names.Len() != f.db.Len() {
		t.Fatal("WithEntryNames did not derive the resolver")
	}
	lm := locmap.New()
	in3, err := New(WithDB(f.db), WithNames(lm))
	if err != nil {
		t.Fatal(err)
	}
	if in3.Service.Names != lm {
		t.Error("WithNames did not take precedence")
	}
}

// TestNewCompiledFileParity proves New(WithCompiledFile) is the same
// serving state ServiceFromCompiledFile built: entry names resolve by
// default and estimates agree with the DB-built reference to within
// quantization tolerance.
func TestNewCompiledFileParity(t *testing.T) {
	f := newFixture(t)
	path := writeArtifact(t, f)
	in, err := New(WithCompiledFile(path))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if in.Service.Names == nil || in.Service.Names.Len() != f.db.Len() {
		t.Fatal("artifact source should default to entry names")
	}
	ref, err := BuildLocator(AlgoProbabilistic, f.db, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"grid-0-0", "grid-3-2"} {
		pos := f.db.Entries[name].Pos
		obs := localize.ObservationFromRecords(f.sc.Capture(pos, 8, 0))
		got, err := in.Service.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Locate(obs)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Hypot(got.Estimate.Pos.X-want.Pos.X, got.Estimate.Pos.Y-want.Pos.Y); d > 8 {
			t.Errorf("at %s: artifact answered %v, db answered %v (%.1f ft apart)",
				name, got.Estimate.Pos, want.Pos, d)
		}
	}
}

// TestNewCloseIdempotent is the regression test for the close-func
// leak: Close releases the artifact mapping exactly once, and every
// later call returns the first call's result without re-closing.
func TestNewCloseIdempotent(t *testing.T) {
	f := newFixture(t)
	in, err := New(WithCompiledFile(writeArtifact(t, f)))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := in.Close(); err != nil {
			t.Fatalf("close %d not idempotent: %v", i+2, err)
		}
	}
}

func TestNewCompiledFileErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := New(WithCompiledFile("/nonexistent/map.ilr")); err == nil {
		t.Error("missing artifact accepted")
	}
	// A bad algorithm over a real artifact must fail — and release the
	// mapping on the way out (the error path joins closeMap).
	path := writeArtifact(t, f)
	if _, err := New(WithCompiledFile(path), WithAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm over an artifact accepted")
	}
	if _, err := New(WithCompiledFile(path), WithAlgorithm(AlgoGeometric)); err == nil {
		t.Error("non-compilable algorithm over an artifact accepted")
	}
}

func TestNewWithService(t *testing.T) {
	f := newFixture(t)
	loc, err := BuildLocator(AlgoProbabilistic, f.db, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc := &Service{DB: f.db, Locator: loc}
	in, err := New(WithService(svc))
	if err != nil {
		t.Fatal(err)
	}
	if in.Service != svc {
		t.Error("WithService must adopt the service unchanged")
	}
	if in.Registry.Current().Service != svc {
		t.Error("registry does not serve the adopted service")
	}
	if err := in.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
