package core

import (
	"sync"
	"testing"
	"time"

	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
)

type fixedLocator struct{ name string }

func (f *fixedLocator) Locate(localize.Observation) (localize.Estimate, error) {
	return localize.Estimate{Pos: geom.Point{X: 1, Y: 1}, Name: f.name}, nil
}
func (f *fixedLocator) Name() string { return f.name }

func TestSnapshotRegistryValidation(t *testing.T) {
	if _, err := NewSnapshotRegistry(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := NewSnapshotRegistry(&Snapshot{Service: &Service{}}); err == nil {
		t.Error("snapshot without locator accepted")
	}
	if _, err := StaticSnapshot(nil); err == nil {
		t.Error("nil service accepted")
	}
}

func TestStaticSnapshot(t *testing.T) {
	svc := &Service{Locator: &fixedLocator{name: "a"}}
	reg, err := StaticSnapshot(svc)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Current()
	if snap.Service != svc || snap.Generation != 0 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.BuiltAt.IsZero() {
		t.Error("BuiltAt not stamped")
	}
}

// TestPublishIsAtomic hammers Current from many readers while a writer
// publishes complete snapshots; every read must observe a snapshot
// whose generation matches its service — never a mix.
func TestPublishIsAtomic(t *testing.T) {
	mk := func(gen uint64) *Snapshot {
		return &Snapshot{
			Generation: gen,
			Service:    &Service{Locator: &fixedLocator{name: string(rune('a' + gen%26))}},
			BuiltAt:    time.Now(),
		}
	}
	reg, err := NewSnapshotRegistry(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Current()
				want := string(rune('a' + snap.Generation%26))
				if got := snap.Service.Locator.Name(); got != want {
					t.Errorf("torn snapshot: generation %d with locator %q", snap.Generation, got)
					return
				}
			}
		}()
	}
	for gen := uint64(1); gen <= 2000; gen++ {
		reg.Publish(mk(gen))
	}
	close(stop)
	wg.Wait()
	if got := reg.Current().Generation; got != 2000 {
		t.Errorf("final generation %d", got)
	}
}

// TestCurrentZeroAlloc pins the hot-swap read contract: Current is an
// atomic pointer load and never allocates, even while a writer is
// publishing — the price a follower pays per request for
// hot-swappability is exactly one load.
func TestCurrentZeroAlloc(t *testing.T) {
	svc := &Service{Locator: &fixedLocator{name: "a"}}
	reg, err := StaticSnapshot(svc)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for gen := uint64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
				reg.Publish(&Snapshot{Generation: gen, Service: svc, BuiltAt: time.Now()})
			}
		}
	}()
	allocs := testing.AllocsPerRun(1000, func() {
		if reg.Current() == nil {
			t.Fatal("nil snapshot")
		}
	})
	close(stop)
	<-done
	if allocs != 0 {
		t.Errorf("Current allocates %.1f/op under publish churn, want 0", allocs)
	}
}
