package core

import (
	"errors"
	"fmt"
	"sync"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/locmap"
	"indoorloc/internal/trainingdb"
)

// New is the single entry point for constructing a serving state. It
// replaces the constructor sprawl that grew with the toolkit —
// BuildLocator, BuildLocatorFromCompiled, ServiceFromCompiledFile and
// StaticSnapshot — behind one functional-options call:
//
//	in, err := core.New(core.WithDB(db), core.WithAlgorithm(core.AlgoKNN))
//	in, err := core.New(core.WithCompiledFile("campus.ilr"))
//	in, err := core.New(core.WithService(svc))         // wrap a prebuilt service
//
// Exactly one source option is required: WithDB (train from a raw
// database), WithCompiled (serve a compiled view), WithCompiledFile
// (open and memory-map a v2 artifact), or WithService (adopt a
// prebuilt Service). The returned Instance carries the warmed Service,
// a static SnapshotRegistry over it, and an idempotent Close that
// releases whatever the source pinned (the artifact mapping, for
// WithCompiledFile).
func New(opts ...Option) (*Instance, error) {
	o := newOptions{algo: AlgoProbabilistic}
	for _, opt := range opts {
		opt(&o)
	}
	sources := 0
	for _, set := range []bool{o.db != nil, o.compiled != nil, o.compiledFile != "", o.service != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, errors.New("core: New needs exactly one source (WithDB, WithCompiled, WithCompiledFile or WithService)")
	}

	var (
		svc     *Service
		closeFn func() error
	)
	switch {
	case o.service != nil:
		svc = o.service
	case o.db != nil:
		loc, err := buildLocator(o.algo, o.db, o.cfg)
		if err != nil {
			return nil, err
		}
		svc = &Service{DB: o.db, Locator: loc}
	case o.compiled != nil:
		loc, err := buildLocatorFromCompiled(o.algo, o.compiled, o.cfg)
		if err != nil {
			return nil, err
		}
		svc = &Service{DB: o.compiled.Skeleton(), Locator: loc}
	default: // compiled artifact file
		c, closeMap, err := trainingdb.OpenCompiledFile(o.compiledFile)
		if err != nil {
			return nil, err
		}
		loc, err := buildLocatorFromCompiled(o.algo, c, o.cfg)
		if err != nil {
			return nil, errors.Join(err, closeMap())
		}
		svc = &Service{DB: c.Skeleton(), Locator: loc}
		closeFn = closeMap
		if o.names == nil && !o.entryNames {
			// ServiceFromCompiledFile behaviour: the training locations
			// themselves resolve names unless the caller overrides.
			o.entryNames = true
		}
	}
	if o.names != nil {
		svc.Names = o.names
	} else if o.entryNames && svc.Names == nil && svc.DB != nil {
		names := locmap.New()
		for _, name := range svc.DB.Names() {
			if err := names.Add(name, svc.DB.Entries[name].Pos); err != nil {
				if closeFn != nil {
					err = errors.Join(err, closeFn())
				}
				return nil, fmt.Errorf("core: entry names: %w", err)
			}
		}
		svc.Names = names
	}
	if o.rooms != nil {
		svc.Rooms = o.rooms
	}
	reg, err := StaticSnapshot(svc)
	if err != nil {
		if closeFn != nil {
			err = errors.Join(err, closeFn())
		}
		return nil, err
	}
	return &Instance{Service: svc, Registry: reg, closeFn: closeFn}, nil
}

// Instance is New's product: the warmed serving state plus the
// lifecycle handle for whatever the source pinned.
type Instance struct {
	// Service is the warmed, ready-to-answer serving state.
	Service *Service
	// Registry wraps Service as a forever-current static snapshot. Live
	// deployments (ingest.Manager) publish through their own registry
	// instead.
	Registry *SnapshotRegistry

	closeFn   func() error
	closeOnce sync.Once
	closeErr  error
}

// Close releases resources pinned by the instance's source — the
// memory mapping, for WithCompiledFile. It is idempotent: every call
// after the first returns the first call's error without re-closing.
// Close only after the instance stops answering (and nothing retains
// estimate strings aliasing the mapping).
func (in *Instance) Close() error {
	in.closeOnce.Do(func() {
		if in.closeFn != nil {
			in.closeErr = in.closeFn()
		}
	})
	return in.closeErr
}

// Option configures New.
type Option func(*newOptions)

type newOptions struct {
	db           *trainingdb.DB
	compiled     *trainingdb.Compiled
	compiledFile string
	service      *Service
	algo         string
	cfg          BuildConfig
	names        *locmap.Map
	entryNames   bool
	rooms        []floorplan.Room
}

// WithDB trains the algorithm over a raw training database.
func WithDB(db *trainingdb.DB) Option {
	return func(o *newOptions) { o.db = db }
}

// WithCompiled serves a compiled radio-map view directly (the shape of
// a decoded v2 artifact). Only the compiled-servable algorithms apply;
// see BuildLocatorFromCompiled's doc for the list.
func WithCompiled(c *trainingdb.Compiled) Option {
	return func(o *newOptions) { o.compiled = c }
}

// WithCompiledFile opens a v2 radio-map artifact (memory-mapped where
// supported) and serves it. Instance.Close releases the mapping.
func WithCompiledFile(path string) Option {
	return func(o *newOptions) { o.compiledFile = path }
}

// WithService adopts a prebuilt Service unchanged — the StaticSnapshot
// use case: wrap it in a registry without rebuilding anything.
func WithService(svc *Service) Option {
	return func(o *newOptions) { o.service = svc }
}

// WithAlgorithm selects the registry algorithm; the default is
// AlgoProbabilistic.
func WithAlgorithm(name string) Option {
	return func(o *newOptions) { o.algo = name }
}

// WithConfig applies the locator build knobs (sharding, quantization,
// top-k, AP positions, floor level).
func WithConfig(cfg BuildConfig) Option {
	return func(o *newOptions) { o.cfg = cfg }
}

// WithNames sets the symbolic name resolver.
func WithNames(m *locmap.Map) Option {
	return func(o *newOptions) { o.names = m }
}

// WithEntryNames derives the name resolver from the training entries
// themselves (every training location becomes a resolvable name). The
// default for WithCompiledFile; opt-in for the other sources.
func WithEntryNames() Option {
	return func(o *newOptions) { o.entryNames = true }
}

// WithRooms sets the room-containment regions.
func WithRooms(rooms []floorplan.Room) Option {
	return func(o *newOptions) { o.rooms = rooms }
}
