// Package cliutil holds the small parsing helpers shared by the
// toolkit's command-line tools, which take coordinates and markers as
// compact single-line arguments in the spirit of the paper's
// DOS-invoked utilities.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"indoorloc/internal/geom"
)

// ParsePoint parses "x,y" into a point.
func ParsePoint(s string) (geom.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geom.Point{}, fmt.Errorf("want \"x,y\", got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("x in %q: %v", s, err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("y in %q: %v", s, err)
	}
	return geom.Pt(x, y), nil
}

// NamedPoint is a "name@x,y" argument.
type NamedPoint struct {
	Name string
	Pos  geom.Point
}

// ParseNamedPoint parses "name@x,y". The name may be empty ("@x,y").
func ParseNamedPoint(s string) (NamedPoint, error) {
	at := strings.LastIndex(s, "@")
	if at < 0 {
		return NamedPoint{}, fmt.Errorf("want \"name@x,y\", got %q", s)
	}
	p, err := ParsePoint(s[at+1:])
	if err != nil {
		return NamedPoint{}, err
	}
	return NamedPoint{Name: strings.TrimSpace(s[:at]), Pos: p}, nil
}

// ParseSegment parses "x1,y1:x2,y2" into a segment.
func ParseSegment(s string) (geom.Segment, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return geom.Segment{}, fmt.Errorf("want \"x1,y1:x2,y2\", got %q", s)
	}
	a, err := ParsePoint(parts[0])
	if err != nil {
		return geom.Segment{}, err
	}
	b, err := ParsePoint(parts[1])
	if err != nil {
		return geom.Segment{}, err
	}
	return geom.Seg(a, b), nil
}

// ParseScale parses the Floor Plan Processor's scale argument
// "x1,y1:x2,y2:distFeet" — two clicked pixels and the real distance
// between them.
func ParseScale(s string) (a, b geom.Point, dist float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return geom.Point{}, geom.Point{}, 0, fmt.Errorf("want \"x1,y1:x2,y2:feet\", got %q", s)
	}
	a, err = ParsePoint(parts[0])
	if err != nil {
		return geom.Point{}, geom.Point{}, 0, err
	}
	b, err = ParsePoint(parts[1])
	if err != nil {
		return geom.Point{}, geom.Point{}, 0, err
	}
	dist, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil {
		return geom.Point{}, geom.Point{}, 0, fmt.Errorf("distance in %q: %v", s, err)
	}
	return a, b, dist, nil
}

// StringList is a repeatable flag.Value collecting strings.
type StringList []string

// String implements flag.Value.
func (l *StringList) String() string { return strings.Join(*l, ";") }

// Set implements flag.Value.
func (l *StringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}
