package cliutil

import (
	"flag"
	"testing"

	"indoorloc/internal/geom"
)

func TestParsePoint(t *testing.T) {
	p, err := ParsePoint("3.5, -2")
	if err != nil || p != geom.Pt(3.5, -2) {
		t.Errorf("got %v, %v", p, err)
	}
	for _, bad := range []string{"", "1", "1,2,3", "x,2", "1,y"} {
		if _, err := ParsePoint(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseNamedPoint(t *testing.T) {
	np, err := ParseNamedPoint("kitchen@5,35")
	if err != nil || np.Name != "kitchen" || np.Pos != geom.Pt(5, 35) {
		t.Errorf("got %+v, %v", np, err)
	}
	// Names may contain @ — the last one splits.
	np, err = ParseNamedPoint("room@2@1,2")
	if err != nil || np.Name != "room@2" {
		t.Errorf("got %+v, %v", np, err)
	}
	np, err = ParseNamedPoint("@1,2")
	if err != nil || np.Name != "" {
		t.Errorf("anonymous: %+v, %v", np, err)
	}
	for _, bad := range []string{"nopoint", "name@1", "name@x,y"} {
		if _, err := ParseNamedPoint(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseSegment(t *testing.T) {
	s, err := ParseSegment("0,0:25,40")
	if err != nil || s != geom.Seg(geom.Pt(0, 0), geom.Pt(25, 40)) {
		t.Errorf("got %v, %v", s, err)
	}
	for _, bad := range []string{"", "1,2", "1,2:3", "1,2:3,4:5,6", "a,b:1,2"} {
		if _, err := ParseSegment(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseScale(t *testing.T) {
	a, b, d, err := ParseScale("0,0:100,0:50")
	if err != nil || a != geom.Pt(0, 0) || b != geom.Pt(100, 0) || d != 50 {
		t.Errorf("got %v %v %v, %v", a, b, d, err)
	}
	for _, bad := range []string{"", "1,2:3,4", "1,2:3,4:ft", "x,2:3,4:5"} {
		if _, _, _, err := ParseScale(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestStringList(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var l StringList
	fs.Var(&l, "ap", "repeatable")
	if err := fs.Parse([]string{"-ap", "a@1,2", "-ap", "b@3,4"}); err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 || l[0] != "a@1,2" || l[1] != "b@3,4" {
		t.Errorf("list = %v", l)
	}
	if l.String() != "a@1,2;b@3,4" {
		t.Errorf("String = %q", l.String())
	}
}

func TestParseScaleBadSecondPoint(t *testing.T) {
	if _, _, _, err := ParseScale("1,2:x,4:5"); err == nil {
		t.Error("accepted a malformed second point")
	}
}
