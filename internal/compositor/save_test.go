package compositor

import (
	"bytes"
	"image/png"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveGIFAndPNG(t *testing.T) {
	c := NewCanvas(32, 24)
	c.FillRect(c.Img.Bounds(), White)
	dir := t.TempDir()

	gifPath := filepath.Join(dir, "out.gif")
	if err := c.SaveGIF(gifPath); err != nil {
		t.Fatalf("SaveGIF: %v", err)
	}
	pngPath := filepath.Join(dir, "out.png")
	if err := c.SavePNG(pngPath); err != nil {
		t.Fatalf("SavePNG: %v", err)
	}
	for _, p := range []string{gifPath, pngPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestSaveErrorsOnBadPath(t *testing.T) {
	c := NewCanvas(8, 8)
	bad := filepath.Join(t.TempDir(), "missing-dir", "out.gif")
	if err := c.SaveGIF(bad); err == nil {
		t.Error("SaveGIF into a missing directory should fail")
	}
	if err := c.SavePNG(bad); err == nil {
		t.Error("SavePNG into a missing directory should fail")
	}
}

func TestEncodePNGRoundTrip(t *testing.T) {
	c := NewCanvas(16, 16)
	c.FillRect(c.Img.Bounds(), White)
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		t.Fatalf("EncodePNG: %v", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cfg.Width != 16 || cfg.Height != 16 {
		t.Errorf("got %dx%d, want 16x16", cfg.Width, cfg.Height)
	}
}
