package compositor

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"math"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
)

// Heatmap renders a scalar field over the floor as a color ramp —
// typically one AP's predicted signal strength, the "radio map" view
// localization papers use to sanity-check coverage.
//
// The field is sampled on a grid in world space and painted into the
// plan's pixel frame; cold (weak) values render blue through green and
// yellow to red (strong). Values outside [Lo, Hi] clamp to the ramp
// ends.
type Heatmap struct {
	// Field returns the value at a world point.
	Field func(p geom.Point) float64
	// Lo and Hi bound the color ramp.
	Lo, Hi float64
	// CellFeet is the sampling pitch; zero means 1 ft.
	CellFeet float64
	// Area is the world rectangle to cover.
	Area geom.Rect
}

// rampLevels is the number of distinct heat colors.
const rampLevels = 64

// heatPalette extends the standard drawing palette with the ramp, so
// the canvas primitives (whose Ink indices address the first entries)
// keep working on heatmap canvases.
var heatPalette = func() color.Palette {
	p := append(color.Palette(nil), palette...)
	for i := 0; i < rampLevels; i++ {
		p = append(p, rampColor(float64(i)/(rampLevels-1)))
	}
	return p
}()

// rampColor maps t ∈ [0, 1] to blue→cyan→green→yellow→red.
func rampColor(t float64) color.RGBA {
	switch {
	case t < 0.25:
		u := t / 0.25
		return color.RGBA{0, uint8(255 * u), 255, 255}
	case t < 0.5:
		u := (t - 0.25) / 0.25
		return color.RGBA{0, 255, uint8(255 * (1 - u)), 255}
	case t < 0.75:
		u := (t - 0.5) / 0.25
		return color.RGBA{uint8(255 * u), 255, 0, 255}
	default:
		u := (t - 0.75) / 0.25
		return color.RGBA{255, uint8(255 * (1 - u)), 0, 255}
	}
}

// rampIndex returns the palette index for a normalised heat value.
func rampIndex(t float64) uint8 {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return uint8(len(palette) + int(t*(rampLevels-1)+0.5))
}

// RenderHeatmap paints the field over a canvas sized to the plan's
// image, then overlays walls and APs in black for orientation.
func RenderHeatmap(p *floorplan.Plan, hm Heatmap) (*Canvas, error) {
	if !p.HasImage() {
		return nil, floorplan.ErrNoImage
	}
	if p.FeetPerPixel == 0 {
		return nil, floorplan.ErrNoScale
	}
	if hm.Field == nil {
		return nil, errors.New("compositor: heatmap needs a field")
	}
	if hm.Hi <= hm.Lo {
		return nil, fmt.Errorf("compositor: heatmap range [%v, %v] invalid", hm.Lo, hm.Hi)
	}
	cell := hm.CellFeet
	if cell <= 0 {
		cell = 1
	}
	bounds := p.Image().Bounds()
	img := image.NewPaletted(image.Rect(0, 0, bounds.Dx(), bounds.Dy()), heatPalette)
	for i := range img.Pix {
		img.Pix[i] = uint8(White)
	}
	c := &Canvas{Img: img}

	// Sample the field per heat cell and flood the covering pixels.
	nx := int(math.Ceil(hm.Area.Width() / cell))
	ny := int(math.Ceil(hm.Area.Height() / cell))
	for gy := 0; gy < ny; gy++ {
		for gx := 0; gx < nx; gx++ {
			cellMin := hm.Area.Min.Add(geom.Pt(float64(gx)*cell, float64(gy)*cell))
			centre := cellMin.Add(geom.Pt(cell/2, cell/2))
			v := hm.Field(centre)
			idx := rampIndex((v - hm.Lo) / (hm.Hi - hm.Lo))
			// World cell corners → pixel rows/cols (image Y grows down).
			pxMin, err := p.ToPixel(cellMin.Add(geom.Pt(0, cell)))
			if err != nil {
				return nil, err
			}
			pxMax, err := p.ToPixel(cellMin.Add(geom.Pt(cell, 0)))
			if err != nil {
				return nil, err
			}
			for y := pxMin.Y; y <= pxMax.Y; y++ {
				for x := pxMin.X; x <= pxMax.X; x++ {
					if image.Pt(x, y).In(img.Bounds()) {
						img.SetColorIndex(x, y, idx)
					}
				}
			}
		}
	}
	// Overlay walls and AP markers.
	for _, wall := range p.Walls {
		a, err := p.ToPixel(wall.A)
		if err != nil {
			return nil, err
		}
		b, err := p.ToPixel(wall.B)
		if err != nil {
			return nil, err
		}
		c.Line(a.X, a.Y, b.X, b.Y, Black)
	}
	for _, ap := range p.APs {
		c.FillRect(image.Rect(ap.Pixel.X-3, ap.Pixel.Y-3, ap.Pixel.X+3, ap.Pixel.Y+3), Black)
	}
	return c, nil
}
