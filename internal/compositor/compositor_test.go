package compositor

import (
	"bytes"
	"image"
	"testing"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
)

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(20, 20)
	if c.Count(White) != 400 {
		t.Fatalf("fresh canvas not white: %d", c.Count(White))
	}
	c.Set(5, 5, Black)
	if c.Count(Black) != 1 {
		t.Error("Set failed")
	}
	// Out of bounds is ignored, not a panic.
	c.Set(-1, 0, Black)
	c.Set(0, 99, Black)
	if c.Count(Black) != 1 {
		t.Error("out-of-bounds write landed")
	}
}

func TestLine(t *testing.T) {
	c := NewCanvas(20, 20)
	c.Line(0, 0, 19, 0, Red)
	if c.Count(Red) != 20 {
		t.Errorf("horizontal line painted %d px", c.Count(Red))
	}
	c = NewCanvas(20, 20)
	c.Line(0, 0, 0, 19, Red)
	if c.Count(Red) != 20 {
		t.Errorf("vertical line painted %d px", c.Count(Red))
	}
	c = NewCanvas(20, 20)
	c.Line(0, 0, 19, 19, Red)
	if c.Count(Red) != 20 {
		t.Errorf("diagonal line painted %d px", c.Count(Red))
	}
	// Reversed endpoints draw the same pixels.
	c2 := NewCanvas(20, 20)
	c2.Line(19, 19, 0, 0, Red)
	if !bytes.Equal(c.Img.Pix, c2.Img.Pix) {
		t.Error("line not symmetric")
	}
}

func TestShapes(t *testing.T) {
	c := NewCanvas(30, 30)
	c.Circle(15, 15, 5, Blue)
	if n := c.Count(Blue); n < 20 || n > 40 {
		t.Errorf("circle painted %d px", n)
	}
	c = NewCanvas(30, 30)
	c.FillCircle(15, 15, 5, Blue)
	// Area ≈ πr² ≈ 78.
	if n := c.Count(Blue); n < 70 || n > 90 {
		t.Errorf("disc painted %d px", n)
	}
	c = NewCanvas(30, 30)
	c.FillRect(image.Rect(5, 5, 9, 9), Green)
	if n := c.Count(Green); n != 25 {
		t.Errorf("filled rect painted %d px, want 25", n)
	}
	c = NewCanvas(30, 30)
	c.Cross(15, 15, 3, Red)
	if n := c.Count(Red); n != 13 { // two 7-px diagonals sharing centre
		t.Errorf("cross painted %d px, want 13", n)
	}
	c = NewCanvas(30, 30)
	c.Plus(15, 15, 3, Red)
	if n := c.Count(Red); n != 13 {
		t.Errorf("plus painted %d px, want 13", n)
	}
}

func TestText(t *testing.T) {
	c := NewCanvas(100, 20)
	c.Text(0, 0, "AP-1", Black)
	if c.Count(Black) == 0 {
		t.Fatal("text drew nothing")
	}
	// Lowercase renders as uppercase: identical pixels.
	c2 := NewCanvas(100, 20)
	c2.Text(0, 0, "ap-1", Black)
	if !bytes.Equal(c.Img.Pix, c2.Img.Pix) {
		t.Error("case sensitivity in font")
	}
	// Unknown runes fall back to '?', not a panic.
	c3 := NewCanvas(100, 20)
	c3.Text(0, 0, "héllo", Black)
	if c3.Count(Black) == 0 {
		t.Error("fallback glyph missing")
	}
	if TextWidth("") != 0 {
		t.Error("empty width not 0")
	}
	if TextWidth("AB") != 11 {
		t.Errorf("TextWidth(AB) = %d", TextWidth("AB"))
	}
}

func paperHousePlan(t *testing.T) *floorplan.Plan {
	t.Helper()
	plan, err := Blueprint("experiment house", BlueprintSpec{
		Outline: geom.RectWH(0, 0, 50, 40),
		Walls: []geom.Segment{
			geom.Seg(geom.Pt(25, 0), geom.Pt(25, 25)),
		},
		Title: "HOUSE 50X40",
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestBlueprint(t *testing.T) {
	plan := paperHousePlan(t)
	if !plan.HasImage() {
		t.Fatal("no image")
	}
	if plan.FeetPerPixel == 0 {
		t.Fatal("no scale")
	}
	// 50 ft at 8 px/ft + 2×20 margin = 440 px wide.
	if got := plan.Image().Bounds().Dx(); got != 440 {
		t.Errorf("width = %d px", got)
	}
	if got := plan.Image().Bounds().Dy(); got != 360 {
		t.Errorf("height = %d px", got)
	}
	// Origin maps to world (0,0) and the far corner to (50,40).
	w, err := plan.ToWorld(plan.Origin)
	if err != nil || w != geom.Pt(0, 0) {
		t.Errorf("origin world = %v, %v", w, err)
	}
	px, _ := plan.ToPixel(geom.Pt(50, 40))
	if px != image.Pt(420, 20) {
		t.Errorf("far corner pixel = %v", px)
	}
	// Walls carried into the plan in world coordinates.
	if len(plan.Walls) != 1 || plan.Walls[0].A != geom.Pt(25, 0) {
		t.Errorf("walls = %v", plan.Walls)
	}
	// Degenerate outline rejected.
	if _, err := Blueprint("bad", BlueprintSpec{}); err == nil {
		t.Error("zero outline accepted")
	}
}

func TestRender(t *testing.T) {
	plan := paperHousePlan(t)
	plan.AddAP("A", mustPixel(t, plan, geom.Pt(0, 0)))
	plan.AddLocation("kitchen", mustPixel(t, plan, geom.Pt(5, 35)))
	c, err := Render(plan, RenderOptions{
		DrawAPs:       true,
		DrawLocations: true,
		DrawWalls:     true,
		Labels:        true,
		Markers: []WorldMarker{
			{Pos: geom.Pt(20, 20), Label: "P", Style: StyleDot, Ink: Purple},
			{Pos: geom.Pt(30, 10), Style: StyleCircle, Ink: Teal},
			{Pos: geom.Pt(10, 10), Style: StyleSquare, Ink: Orange},
			{Pos: geom.Pt(40, 30), Style: StylePlus, Ink: Green},
		},
		Vectors: []ErrorVector{
			{Actual: geom.Pt(15, 15), Estimated: geom.Pt(18, 22)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every ink family must have landed.
	for _, ink := range []Ink{Blue, Purple, Teal, Orange, Green, Red, Gray, Black} {
		if c.Count(ink) == 0 {
			t.Errorf("ink %d missing from render", ink)
		}
	}
}

func mustPixel(t *testing.T, plan *floorplan.Plan, w geom.Point) image.Point {
	t.Helper()
	px, err := plan.ToPixel(w)
	if err != nil {
		t.Fatal(err)
	}
	return px
}

func TestRenderErrors(t *testing.T) {
	bare := floorplan.New("bare")
	if _, err := Render(bare, RenderOptions{}); err != floorplan.ErrNoImage {
		t.Errorf("no image: %v", err)
	}
	plan := paperHousePlan(t)
	plan.FeetPerPixel = 0
	if _, err := Render(plan, RenderOptions{}); err != floorplan.ErrNoScale {
		t.Errorf("no scale: %v", err)
	}
}

func TestEncodeGIFRoundTrip(t *testing.T) {
	plan := paperHousePlan(t)
	c, err := Render(plan, RenderOptions{DrawWalls: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.EncodeGIF(&buf); err != nil {
		t.Fatal(err)
	}
	// The rendered GIF loads back through the floor-plan loader —
	// the full Processor↔Compositor loop.
	p2 := floorplan.New("reload")
	if err := p2.LoadImage(&buf); err != nil {
		t.Fatal(err)
	}
	if p2.Image().Bounds() != c.Img.Bounds() {
		t.Error("GIF round trip changed bounds")
	}
	var pngBuf bytes.Buffer
	if err := c.EncodePNG(&pngBuf); err != nil {
		t.Fatal(err)
	}
	if pngBuf.Len() == 0 {
		t.Error("empty PNG")
	}
}
