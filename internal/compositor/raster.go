// Package compositor renders floor plans and localization results to
// images — the toolkit's Floor Plan Compositor. It creates images from
// a floor plan and marks them "with locations out of user-given
// coordinate values": training points, observed test locations, the
// estimates a localizer derived for them, and the error vectors
// between the two. It also generates synthetic blueprint GIFs so the
// whole pipeline runs without scanned architectural drawings.
//
// Everything is pure Go over the stdlib image packages; output is GIF
// (the paper's format) or PNG.
package compositor

import (
	"image"
	"image/color"
)

// Ink indexes the fixed drawing palette.
type Ink uint8

// Palette entries. White is the background.
const (
	White Ink = iota
	Black
	Gray
	LightGray
	Red
	Green
	Blue
	Orange
	Purple
	Teal
)

// palette is the fixed color table used by every canvas.
var palette = color.Palette{
	color.RGBA{255, 255, 255, 255}, // White
	color.RGBA{0, 0, 0, 255},       // Black
	color.RGBA{120, 120, 120, 255}, // Gray
	color.RGBA{200, 200, 200, 255}, // LightGray
	color.RGBA{200, 30, 30, 255},   // Red
	color.RGBA{20, 140, 60, 255},   // Green
	color.RGBA{40, 70, 200, 255},   // Blue
	color.RGBA{230, 140, 20, 255},  // Orange
	color.RGBA{130, 40, 160, 255},  // Purple
	color.RGBA{0, 150, 150, 255},   // Teal
}

// Canvas is a paletted raster with drawing primitives.
type Canvas struct {
	Img *image.Paletted
}

// NewCanvas allocates a white canvas of the given pixel size.
func NewCanvas(w, h int) *Canvas {
	img := image.NewPaletted(image.Rect(0, 0, w, h), palette)
	for i := range img.Pix {
		img.Pix[i] = uint8(White)
	}
	return &Canvas{Img: img}
}

// FromImage wraps an existing paletted image, re-quantising it onto
// the drawing palette so inks render predictably on top.
func FromImage(src *image.Paletted) *Canvas {
	b := src.Bounds()
	c := NewCanvas(b.Dx(), b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c.Img.Set(x-b.Min.X, y-b.Min.Y, src.At(x, y))
		}
	}
	return c
}

// Bounds returns the canvas size.
func (c *Canvas) Bounds() image.Rectangle { return c.Img.Bounds() }

// Set paints one pixel; out-of-bounds writes are ignored.
func (c *Canvas) Set(x, y int, ink Ink) {
	if image.Pt(x, y).In(c.Img.Bounds()) {
		c.Img.SetColorIndex(x, y, uint8(ink))
	}
}

// Line draws a 1-px segment with Bresenham's algorithm.
func (c *Canvas) Line(x0, y0, x1, y1 int, ink Ink) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.Set(x0, y0, ink)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// Rect strokes an axis-aligned rectangle.
func (c *Canvas) Rect(r image.Rectangle, ink Ink) {
	c.Line(r.Min.X, r.Min.Y, r.Max.X, r.Min.Y, ink)
	c.Line(r.Max.X, r.Min.Y, r.Max.X, r.Max.Y, ink)
	c.Line(r.Max.X, r.Max.Y, r.Min.X, r.Max.Y, ink)
	c.Line(r.Min.X, r.Max.Y, r.Min.X, r.Min.Y, ink)
}

// FillRect fills an axis-aligned rectangle (inclusive bounds).
func (c *Canvas) FillRect(r image.Rectangle, ink Ink) {
	for y := r.Min.Y; y <= r.Max.Y; y++ {
		for x := r.Min.X; x <= r.Max.X; x++ {
			c.Set(x, y, ink)
		}
	}
}

// Circle strokes a circle with the midpoint algorithm.
func (c *Canvas) Circle(cx, cy, r int, ink Ink) {
	if r < 0 {
		return
	}
	x, y := r, 0
	err := 1 - r
	for x >= y {
		c.Set(cx+x, cy+y, ink)
		c.Set(cx+y, cy+x, ink)
		c.Set(cx-y, cy+x, ink)
		c.Set(cx-x, cy+y, ink)
		c.Set(cx-x, cy-y, ink)
		c.Set(cx-y, cy-x, ink)
		c.Set(cx+y, cy-x, ink)
		c.Set(cx+x, cy-y, ink)
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// FillCircle fills a disc.
func (c *Canvas) FillCircle(cx, cy, r int, ink Ink) {
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			if x*x+y*y <= r*r {
				c.Set(cx+x, cy+y, ink)
			}
		}
	}
}

// Cross draws an ×-shaped marker with the given arm length.
func (c *Canvas) Cross(cx, cy, arm int, ink Ink) {
	c.Line(cx-arm, cy-arm, cx+arm, cy+arm, ink)
	c.Line(cx-arm, cy+arm, cx+arm, cy-arm, ink)
}

// Plus draws a +-shaped marker with the given arm length.
func (c *Canvas) Plus(cx, cy, arm int, ink Ink) {
	c.Line(cx-arm, cy, cx+arm, cy, ink)
	c.Line(cx, cy-arm, cx, cy+arm, ink)
}

// Count returns how many pixels carry the ink — handy for tests.
func (c *Canvas) Count(ink Ink) int {
	n := 0
	for _, p := range c.Img.Pix {
		if p == uint8(ink) {
			n++
		}
	}
	return n
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
