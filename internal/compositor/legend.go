package compositor

import (
	"fmt"
	"image"
)

// DrawHeatLegend paints a vertical color-bar legend for a heatmap's
// [lo, hi] range into the canvas at pixel position (x, y), with the
// hot end on top and dB labels at the top, middle and bottom. The
// canvas must use the heat palette (i.e. come from RenderHeatmap);
// on a standard canvas the ramp indices would alias to drawing inks.
func (c *Canvas) DrawHeatLegend(x, y int, lo, hi float64) {
	const (
		barW = 12
		barH = 96
	)
	// Frame.
	c.Rect(image.Rect(x-1, y-1, x+barW+1, y+barH+1), Black)
	// Ramp: top row is hottest.
	for row := 0; row < barH; row++ {
		t := 1 - float64(row)/float64(barH-1)
		idx := rampIndex(t)
		for col := 0; col < barW; col++ {
			if image.Pt(x+col, y+row).In(c.Img.Bounds()) {
				c.Img.SetColorIndex(x+col, y+row, idx)
			}
		}
	}
	// Labels.
	c.Text(x+barW+4, y, fmt.Sprintf("%.0f", hi), Black)
	c.Text(x+barW+4, y+barH/2-GlyphHeight/2, fmt.Sprintf("%.0f", (lo+hi)/2), Black)
	c.Text(x+barW+4, y+barH-GlyphHeight, fmt.Sprintf("%.0f", lo), Black)
	c.Text(x-1, y+barH+4, "DBM", Black)
}
