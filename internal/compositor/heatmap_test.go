package compositor

import (
	"bytes"
	"testing"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
)

func TestRampColorEndpoints(t *testing.T) {
	cold := rampColor(0)
	if cold.B != 255 || cold.R != 0 {
		t.Errorf("cold = %+v, want blue", cold)
	}
	hot := rampColor(1)
	if hot.R != 255 || hot.B != 0 || hot.G != 0 {
		t.Errorf("hot = %+v, want red", hot)
	}
	mid := rampColor(0.5)
	if mid.G != 255 {
		t.Errorf("mid = %+v, want green-dominant", mid)
	}
}

func TestRampIndexClamps(t *testing.T) {
	lo := rampIndex(-5)
	hi := rampIndex(5)
	if lo != uint8(len(palette)) {
		t.Errorf("low clamp = %d", lo)
	}
	if hi != uint8(len(palette)+rampLevels-1) {
		t.Errorf("high clamp = %d", hi)
	}
	if rampIndex(0.5) <= lo || rampIndex(0.5) >= hi {
		t.Error("mid not between ends")
	}
}

func TestRenderHeatmap(t *testing.T) {
	plan := paperHousePlan(t)
	px, _ := plan.ToPixel(geom.Pt(0, 0))
	plan.AddAP("A", px)
	area := geom.RectWH(0, 0, 50, 40)
	// A field decaying with distance from the corner AP.
	field := func(p geom.Point) float64 { return -40 - p.Norm() }
	c, err := RenderHeatmap(plan, Heatmap{
		Field: field, Lo: -95, Hi: -40, CellFeet: 2, Area: area,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Near the AP must be hotter (higher palette ramp index) than far.
	near, _ := plan.ToPixel(geom.Pt(5, 5))
	far, _ := plan.ToPixel(geom.Pt(45, 35))
	ni := c.Img.ColorIndexAt(near.X, near.Y)
	fi := c.Img.ColorIndexAt(far.X, far.Y)
	if ni <= fi {
		t.Errorf("near idx %d not hotter than far idx %d", ni, fi)
	}
	if int(ni) < len(palette) || int(fi) < len(palette) {
		t.Error("heat pixels not on the ramp")
	}
	// Wall overlay landed.
	if c.Count(Black) == 0 {
		t.Error("no overlay")
	}
	// Encodes as GIF (paletted, ≤256 colors).
	var buf bytes.Buffer
	if err := c.EncodeGIF(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderHeatmapErrors(t *testing.T) {
	bare := floorplan.New("bare")
	hm := Heatmap{Field: func(geom.Point) float64 { return 0 }, Lo: 0, Hi: 1, Area: geom.RectWH(0, 0, 1, 1)}
	if _, err := RenderHeatmap(bare, hm); err != floorplan.ErrNoImage {
		t.Errorf("no image: %v", err)
	}
	plan := paperHousePlan(t)
	bad := hm
	bad.Field = nil
	if _, err := RenderHeatmap(plan, bad); err == nil {
		t.Error("nil field accepted")
	}
	bad = hm
	bad.Lo, bad.Hi = 1, 1
	if _, err := RenderHeatmap(plan, bad); err == nil {
		t.Error("degenerate range accepted")
	}
}

func TestDrawHeatLegend(t *testing.T) {
	plan := paperHousePlan(t)
	area := geom.RectWH(0, 0, 50, 40)
	c, err := RenderHeatmap(plan, Heatmap{
		Field: func(p geom.Point) float64 { return -60 },
		Lo:    -95, Hi: -40, CellFeet: 4, Area: area,
	})
	if err != nil {
		t.Fatal(err)
	}
	blackBefore := c.Count(Black)
	c.DrawHeatLegend(10, 10, -95, -40)
	if c.Count(Black) <= blackBefore {
		t.Error("legend drew no frame/labels")
	}
	// The ramp top (hot) and bottom (cold) pixels differ.
	top := c.Img.ColorIndexAt(12, 10)
	bottom := c.Img.ColorIndexAt(12, 10+95)
	if top == bottom {
		t.Error("legend ramp is flat")
	}
	if int(top) < len(palette) || int(bottom) < len(palette) {
		t.Errorf("legend not on the heat ramp: %d, %d", top, bottom)
	}
	// Clipped drawing (partially off-canvas) must not panic.
	c.DrawHeatLegend(-5, -5, -95, -40)
	c.DrawHeatLegend(c.Bounds().Dx()-3, c.Bounds().Dy()-3, -95, -40)
}
