package compositor

import (
	"errors"
	"fmt"
	"image"
	"image/gif"
	"image/png"
	"io"
	"math"
	"os"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
)

// MarkerStyle selects the symbol drawn for a world point.
type MarkerStyle int

// Marker symbols.
const (
	StyleDot MarkerStyle = iota // filled disc
	StyleCross
	StylePlus
	StyleCircle // open circle
	StyleSquare
)

// WorldMarker is one coordinate to mark, in the plan's world frame —
// the Compositor's command-line "user-given coordinate values".
type WorldMarker struct {
	Pos   geom.Point
	Label string
	Style MarkerStyle
	Ink   Ink
}

// ErrorVector pairs an actual test location with the estimate a
// localizer derived for it; the renderer connects the two with a line,
// the paper's suggested way to "display all the testing locations and
// their corresponding estimated locations".
type ErrorVector struct {
	Actual, Estimated geom.Point
}

// RenderOptions controls Render.
type RenderOptions struct {
	// Markers are drawn in order.
	Markers []WorldMarker
	// Vectors draw actual→estimated pairs: actual as a green dot,
	// estimate as a red cross, connected by a gray line.
	Vectors []ErrorVector
	// DrawAPs draws the plan's access points as blue squares with
	// labels.
	DrawAPs bool
	// DrawLocations draws the plan's named locations as black pluses
	// with labels.
	DrawLocations bool
	// DrawWalls strokes the plan's wall segments.
	DrawWalls bool
	// Labels enables marker labels.
	Labels bool
}

// Render draws the plan and annotations into a fresh canvas. The plan
// must have an image and a scale.
func Render(p *floorplan.Plan, opts RenderOptions) (*Canvas, error) {
	if !p.HasImage() {
		return nil, floorplan.ErrNoImage
	}
	if p.FeetPerPixel == 0 {
		return nil, floorplan.ErrNoScale
	}
	c := FromImage(p.Image())
	toPx := func(w geom.Point) (image.Point, error) { return p.ToPixel(w) }

	if opts.DrawWalls {
		for _, wall := range p.Walls {
			a, err := toPx(wall.A)
			if err != nil {
				return nil, err
			}
			b, err := toPx(wall.B)
			if err != nil {
				return nil, err
			}
			c.Line(a.X, a.Y, b.X, b.Y, Black)
		}
	}
	if opts.DrawAPs {
		for _, ap := range p.APs {
			px := ap.Pixel
			c.FillRect(image.Rect(px.X-3, px.Y-3, px.X+3, px.Y+3), Blue)
			if opts.Labels {
				c.Text(px.X+5, px.Y-3, ap.Name, Blue)
			}
		}
	}
	if opts.DrawLocations {
		for _, loc := range p.Locations {
			px := loc.Pixel
			c.Plus(px.X, px.Y, 3, Black)
			if opts.Labels {
				c.Text(px.X+5, px.Y+2, loc.Name, Gray)
			}
		}
	}
	for _, v := range opts.Vectors {
		a, err := toPx(v.Actual)
		if err != nil {
			return nil, err
		}
		b, err := toPx(v.Estimated)
		if err != nil {
			return nil, err
		}
		c.Line(a.X, a.Y, b.X, b.Y, Gray)
		c.FillCircle(a.X, a.Y, 3, Green)
		c.Cross(b.X, b.Y, 4, Red)
	}
	for _, m := range opts.Markers {
		px, err := toPx(m.Pos)
		if err != nil {
			return nil, err
		}
		drawMarker(c, px, m.Style, m.Ink)
		if opts.Labels && m.Label != "" {
			c.Text(px.X+6, px.Y-3, m.Label, m.Ink)
		}
	}
	return c, nil
}

func drawMarker(c *Canvas, px image.Point, style MarkerStyle, ink Ink) {
	switch style {
	case StyleCross:
		c.Cross(px.X, px.Y, 4, ink)
	case StylePlus:
		c.Plus(px.X, px.Y, 4, ink)
	case StyleCircle:
		c.Circle(px.X, px.Y, 4, ink)
	case StyleSquare:
		c.FillRect(image.Rect(px.X-3, px.Y-3, px.X+3, px.Y+3), ink)
	default:
		c.FillCircle(px.X, px.Y, 3, ink)
	}
}

// BlueprintSpec describes a synthetic floor plan to rasterise — the
// stand-in for scanning architectural drawings.
type BlueprintSpec struct {
	// Outline is the outer wall rectangle in feet.
	Outline geom.Rect
	// Walls are interior walls in feet.
	Walls []geom.Segment
	// PixelsPerFoot sets the raster resolution; zero means 8.
	PixelsPerFoot float64
	// MarginPx is the white border around the outline; zero means 20.
	MarginPx int
	// Title is drawn in the top margin when non-empty.
	Title string
}

// Blueprint rasterises the spec and returns a ready-to-annotate Plan:
// image attached, scale set, origin at the outline's lower-left
// corner, walls copied in. The GIF it carries round-trips through the
// Floor Plan Processor's save format.
func Blueprint(name string, spec BlueprintSpec) (*floorplan.Plan, error) {
	ppf := spec.PixelsPerFoot
	if ppf <= 0 {
		ppf = 8
	}
	margin := spec.MarginPx
	if margin <= 0 {
		margin = 20
	}
	if spec.Outline.Width() <= 0 || spec.Outline.Height() <= 0 {
		return nil, errors.New("compositor: blueprint outline must have positive area")
	}
	wPx := int(math.Ceil(spec.Outline.Width()*ppf)) + 2*margin
	hPx := int(math.Ceil(spec.Outline.Height()*ppf)) + 2*margin
	c := NewCanvas(wPx, hPx)

	p := floorplan.New(name)
	// Origin pixel: lower-left corner of the outline (image Y grows
	// downward, world Y grows upward).
	origin := image.Pt(margin, hPx-margin)
	p.SetImage(c.Img)
	p.SetOrigin(origin)
	if err := p.SetScale(image.Pt(0, 0), image.Pt(int(math.Round(ppf*100)), 0), 100); err != nil {
		return nil, err
	}

	// World coordinates are taken relative to the outline's lower-left
	// corner, so the plan's origin is that corner.
	rel := func(w geom.Point) geom.Point { return w.Sub(spec.Outline.Min) }
	toPx := func(w geom.Point) image.Point {
		px, _ := p.ToPixel(rel(w)) // scale is set above; cannot fail
		return px
	}
	// Outer walls.
	corners := spec.Outline.Corners()
	for i := range corners {
		a := toPx(corners[i])
		b := toPx(corners[(i+1)%4])
		c.Line(a.X, a.Y, b.X, b.Y, Black)
	}
	// Interior walls.
	for _, wall := range spec.Walls {
		a := toPx(wall.A)
		b := toPx(wall.B)
		c.Line(a.X, a.Y, b.X, b.Y, Black)
		p.AddWall(geom.Seg(rel(wall.A), rel(wall.B)))
	}
	if spec.Title != "" {
		c.Text(margin, (margin-GlyphHeight)/2, spec.Title, Black)
	}
	return p, nil
}

// EncodeGIF writes the canvas as a GIF (the Compositor's output
// format).
func (c *Canvas) EncodeGIF(w io.Writer) error {
	if err := gif.Encode(w, c.Img, &gif.Options{NumColors: len(palette)}); err != nil {
		return fmt.Errorf("compositor: encoding GIF: %w", err)
	}
	return nil
}

// EncodePNG writes the canvas as a PNG.
func (c *Canvas) EncodePNG(w io.Writer) error {
	if err := png.Encode(w, c.Img); err != nil {
		return fmt.Errorf("compositor: encoding PNG: %w", err)
	}
	return nil
}

// SaveGIF writes the canvas to a .gif file.
func (c *Canvas) SaveGIF(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("compositor: %w", err)
	}
	if err := c.EncodeGIF(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// SavePNG writes the canvas to a .png file.
func (c *Canvas) SavePNG(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("compositor: %w", err)
	}
	if err := c.EncodePNG(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
