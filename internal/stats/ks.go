package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum vertical distance between the empirical CDFs of a and b.
// It returns 0 when either sample is empty.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the approximate critical value for the two-sample
// KS test at significance alpha (supported: 0.10, 0.05, 0.01; other
// values use the 0.05 coefficient). Samples whose statistic exceeds it
// differ significantly.
func KSCritical(nA, nB int, alpha float64) float64 {
	if nA <= 0 || nB <= 0 {
		return math.Inf(1)
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.63
	case alpha <= 0.05:
		c = 1.36
	case alpha <= 0.10:
		c = 1.22
	default:
		c = 1.36
	}
	n := float64(nA) * float64(nB) / float64(nA+nB)
	return c / math.Sqrt(n)
}

// KSDiffer reports whether the two samples differ significantly at
// level alpha under the two-sample KS test.
func KSDiffer(a, b []float64, alpha float64) bool {
	return KSStatistic(a, b) > KSCritical(len(a), len(b), alpha)
}
