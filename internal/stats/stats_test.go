package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Error("zero value not neutral")
	}
	r.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if !close(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", r.Mean())
	}
	if !close(r.PopVariance(), 4, 1e-12) {
		t.Errorf("PopVariance = %v", r.PopVariance())
	}
	if !close(r.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Mean() != 42 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Errorf("single sample: %s", r.String())
	}
	if r.Min() != 42 || r.Max() != 42 {
		t.Error("single-sample extrema wrong")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	xs := []float64{-61, -60, -62, -59, -61, -63, -58, -60, -61}
	var whole, a, b Running
	whole.AddAll(xs)
	a.AddAll(xs[:4])
	b.AddAll(xs[4:])
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !close(a.Mean(), whole.Mean(), 1e-12) {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !close(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged Variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged extrema wrong")
	}
	// Merging an empty accumulator is a no-op in both directions.
	var empty Running
	before := a
	a.Merge(&empty)
	if a != before {
		t.Error("merging empty changed state")
	}
	empty.Merge(&a)
	if empty.N() != a.N() || !close(empty.Mean(), a.Mean(), 1e-12) {
		t.Error("merge into empty failed")
	}
}

func TestRunningMergeProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1000))
			}
		}
		if len(clean) < 2 {
			return true
		}
		k := int(split) % len(clean)
		var whole, a, b Running
		whole.AddAll(clean)
		a.AddAll(clean[:k])
		b.AddAll(clean[k:])
		a.Merge(&b)
		return a.N() == whole.N() &&
			close(a.Mean(), whole.Mean(), 1e-6) &&
			close(a.Variance(), whole.Variance(), 1e-6*(1+whole.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Error(err)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice helpers not zero")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	// Median must not reorder its input.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("Median mutated input")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !close(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {-5, 10}, {150, 50},
		{10, 14}, // interpolated: rank 0.4 between 10 and 20
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !close(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not zero")
	}
}

func TestGaussianPDF(t *testing.T) {
	// Standard normal at 0: 1/sqrt(2π).
	if got := GaussianPDF(0, 0, 1); !close(got, 0.3989422804014327, 1e-12) {
		t.Errorf("N(0;0,1) = %v", got)
	}
	// Symmetry.
	if GaussianPDF(2, 0, 1) != GaussianPDF(-2, 0, 1) {
		t.Error("not symmetric")
	}
	// Peak at mean.
	if GaussianPDF(1, 0, 1) >= GaussianPDF(0, 0, 1) {
		t.Error("not peaked at mean")
	}
	// Sigma floor: zero sigma must not panic or return NaN/Inf.
	got := GaussianPDF(5, 5, 0)
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		t.Errorf("sigma floor failed: %v", got)
	}
}

func TestLogGaussianConsistency(t *testing.T) {
	f := func(x, mean, sigma float64) bool {
		norm := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, lim)
		}
		x, mean = norm(x, 100), norm(mean, 100)
		sigma = math.Abs(norm(sigma, 10)) + 0.5
		p := GaussianPDF(x, mean, sigma)
		lp := LogGaussianPDF(x, mean, sigma)
		if p < 1e-300 {
			// Linear-space density underflowed (or is about to lose
			// precision to gradual underflow); the log form must still
			// be finite — that is the point of computing in log space.
			return !math.IsInf(lp, 0) && !math.IsNaN(lp)
		}
		return close(math.Log(p), lp, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 0, 5); err == nil {
		t.Error("degenerate bounds accepted")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	h, err := NewHistogram(-100, -30, 70)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-65, -65.4, -64.9, -80, -200, 10} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// Clamping: -200 landed in bin 0, +10 in the last bin.
	if h.Counts[0] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Error("edge clamping failed")
	}
	// Mode should be near -65 (three samples in adjacent bins; the
	// -65 bin holds two: -65 and -64.9? bin width is 1 dB).
	if m := h.Mode(); m < -66 || m > -64 {
		t.Errorf("Mode = %v", m)
	}
}

func TestHistogramProbSmoothing(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	h.Add(5)
	// Unseen bin gets Laplace mass, never zero.
	if p := h.Prob(1); p <= 0 {
		t.Errorf("unseen bin prob = %v", p)
	}
	// Seen bin strictly more likely than unseen.
	if h.Prob(5) <= h.Prob(1) {
		t.Error("smoothing inverted likelihoods")
	}
	// Probabilities over all bins sum to 1.
	total := 0.0
	for i := 0; i < 10; i++ {
		total += h.Prob(float64(i) + 0.5)
	}
	if !close(total, 1, 1e-9) {
		t.Errorf("probabilities sum to %v", total)
	}
}

func TestECDF(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("empty ECDF err = %v", err)
	}
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !close(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := e.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v", q)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	e, _ := NewECDF([]float64{-61, -58, -70, -65, -59, -61})
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.At(lo) <= e.At(hi)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(102))}); err != nil {
		t.Error(err)
	}
}
