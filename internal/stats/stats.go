// Package stats provides the descriptive statistics and probability
// primitives the localization algorithms rely on: running
// mean/variance (Welford), medians and percentiles, histograms,
// empirical CDFs, and the Gaussian density at the heart of the paper's
// probabilistic approach.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of samples and exposes their count,
// mean, variance and extrema without storing the samples. It uses
// Welford's numerically stable update. The zero value is ready to use.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddAll incorporates every sample in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (n-1 denominator), or
// 0 with fewer than two samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// PopVariance returns the population variance (n denominator), or 0
// with no samples.
func (r *Running) PopVariance() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample seen, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample seen, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Merge combines another accumulator into r, as if r had also seen all
// of o's samples (Chan et al. parallel update).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.mean += delta * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// String summarises the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs, or 0
// with fewer than two samples.
func StdDev(xs []float64) float64 {
	var r Running
	r.AddAll(xs)
	return r.StdDev()
}

// Median returns the median of xs without reordering it, averaging the
// central pair for even lengths. It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between order statistics. It returns 0 for an
// empty slice and clamps p into range.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// GaussianPDF evaluates the normal density with the given mean and
// standard deviation at x. This is exactly the paper's §5.1 likelihood
//
//	value = exp(-(observation-training)² / 2σ²) / sqrt(2πσ²)
//
// A non-positive sigma is floored to MinSigma so a training point whose
// samples happened to be constant still yields a finite likelihood.
func GaussianPDF(x, mean, sigma float64) float64 {
	if sigma < MinSigma {
		sigma = MinSigma
	}
	d := (x - mean) / sigma
	return math.Exp(-d*d/2) / (sigma * math.Sqrt(2*math.Pi))
}

// LogGaussianPDF returns log(GaussianPDF(x, mean, sigma)). Working in
// log space keeps products of many per-AP likelihoods from
// underflowing.
func LogGaussianPDF(x, mean, sigma float64) float64 {
	if sigma < MinSigma {
		sigma = MinSigma
	}
	d := (x - mean) / sigma
	return -d*d/2 - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// MinSigma is the smallest standard deviation the Gaussian primitives
// accept; measured RSSI always carries at least this much spread
// (quantisation alone contributes ~0.3 dB).
const MinSigma = 0.3

// ErrEmpty is returned by constructors that need at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Histogram is a fixed-width binned distribution over [Lo, Hi). Counts
// outside the range clamp into the edge bins, so no sample is lost —
// matching how RSSI histograms are built from quantised dBm readings.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds an empty histogram with the given bounds and bin
// count. It returns an error when hi ≤ lo or bins < 1.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram bounds [%v, %v) invalid", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Bin returns the bin index x falls into, clamped to the edge bins.
func (h *Histogram) Bin(x float64) int {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	i := int(math.Floor((x - h.Lo) / w))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	h.Counts[h.Bin(x)]++
	h.total++
}

// Total returns the number of samples counted.
func (h *Histogram) Total() int { return h.total }

// Prob returns the smoothed probability of the bin containing x, with
// add-one (Laplace) smoothing so unseen bins keep non-zero mass — the
// histogram-method localizer multiplies these across APs.
func (h *Histogram) Prob(x float64) float64 {
	return (float64(h.Counts[h.Bin(x)]) + 1) /
		(float64(h.total) + float64(len(h.Counts)))
}

// Mode returns the midpoint of the most populated bin; ties break
// toward the lower bin. With no samples it returns the range midpoint.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(best)+0.5)*w
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. It returns ErrEmpty for an empty
// sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return &ECDF{sorted: cp}, nil
}

// At returns the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with At(v) ≥ q, for
// q in (0, 1]. q ≤ 0 returns the minimum.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}
