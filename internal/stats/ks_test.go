package stats

import (
	"math"
	"math/rand"
	"testing"
)

func normSample(rng *rand.Rand, n int, mean, sd float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + rng.NormFloat64()*sd
	}
	return out
}

func TestKSStatisticIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(a, a); got != 0 {
		t.Errorf("identical samples: %v", got)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KSStatistic(a, b); got != 1 {
		t.Errorf("disjoint samples: %v, want 1", got)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a = {1,2}, b = {1.5, 2.5}: CDFs cross; max gap is 0.5.
	a := []float64{1, 2}
	b := []float64{1.5, 2.5}
	if got := KSStatistic(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("got %v, want 0.5", got)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if KSStatistic(nil, []float64{1}) != 0 || KSStatistic([]float64{1}, nil) != 0 {
		t.Error("empty samples should give 0")
	}
}

func TestKSStatisticSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := normSample(rng, 40, -60, 3)
	b := normSample(rng, 60, -58, 3)
	if KSStatistic(a, b) != KSStatistic(b, a) {
		t.Error("not symmetric")
	}
}

func TestKSDifferDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := normSample(rng, 200, -60, 2.5)
	same := normSample(rng, 200, -60, 2.5)
	shifted := normSample(rng, 200, -55, 2.5)
	if KSDiffer(base, same, 0.01) {
		t.Error("same-distribution samples flagged at α=0.01")
	}
	if !KSDiffer(base, shifted, 0.01) {
		t.Error("5 dB shift not detected")
	}
}

func TestKSCritical(t *testing.T) {
	// Larger samples → tighter critical value.
	if KSCritical(10, 10, 0.05) <= KSCritical(100, 100, 0.05) {
		t.Error("critical value not shrinking with n")
	}
	// Stricter alpha → larger critical value.
	if KSCritical(50, 50, 0.01) <= KSCritical(50, 50, 0.10) {
		t.Error("critical value ordering wrong across alphas")
	}
	if !math.IsInf(KSCritical(0, 10, 0.05), 1) {
		t.Error("empty sample should give +Inf")
	}
}
