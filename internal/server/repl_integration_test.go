package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"indoorloc/internal/ingest"
	"indoorloc/internal/repl"
)

// replFixture is a complete replication pair: a live-training trainer
// exposing the replication endpoints and a follower serving from its
// replicated radio map, both behind real HTTP servers.
type replFixture struct {
	mgr        *ingest.Manager
	src        *repl.Source
	fol        *repl.Follower
	trainerTS  *httptest.Server
	followerTS *httptest.Server
	trainer    *Server
	follower   *Server
}

func newReplFixture(t *testing.T, opts ...Option) *replFixture {
	t.Helper()
	src := repl.NewSource(repl.SourceConfig{Heartbeat: 50 * time.Millisecond})
	mgr, err := ingest.NewManager(gridDB(25), gridRebuilder, ingest.Config{
		WALPath:      t.TempDir() + "/reports.wal",
		FlushReports: 2, FlushInterval: 15 * time.Millisecond, SnapRadius: 5,
		OnPublish: src.OnPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src.Bind(mgr)
	trainer, err := NewLive(mgr, nil, append([]Option{WithReplicationSource(src)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	trainerTS := httptest.NewServer(trainer)
	t.Cleanup(trainerTS.Close)

	fol, err := repl.NewFollower(repl.FollowerConfig{
		TrainerURL:   trainerTS.URL,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fol.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	follower, err := NewFollower(fol, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	followerTS := httptest.NewServer(follower)
	t.Cleanup(followerTS.Close)
	return &replFixture{
		mgr: mgr, src: src, fol: fol,
		trainerTS: trainerTS, followerTS: followerTS,
		trainer: trainer, follower: follower,
	}
}

// waitConverged blocks until the follower serves the trainer's
// current generation with the whole WAL applied.
func (f *replFixture) waitConverged(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := f.fol.Stats()
		if st.State == repl.StateStreaming &&
			st.Generation == f.mgr.Registry().Current().Generation &&
			st.AppliedSeq == f.mgr.WAL().Seq() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never converged: %+v (trainer gen %d head %d)",
		f.fol.Stats(), f.mgr.Registry().Current().Generation, f.mgr.WAL().Seq())
}

// postRaw posts and returns status plus the raw response bytes.
func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestFollowerLocateByteIdentical is the acceptance property at the
// API surface: at the same generation, trainer and follower answer
// /locate and /locate/batch with byte-identical bodies.
func TestFollowerLocateByteIdentical(t *testing.T) {
	f := newReplFixture(t)
	// Churn the map first so the follower has folded and recompiled,
	// not just bootstrapped.
	for i := 0; i < 30; i++ {
		_, _ = postRaw(t, f.trainerTS.URL+"/train/report", []byte(fmt.Sprintf(
			`{"name":"p_%d_%d","observation":{"ap0":%g,"ap1":-61.5}}`,
			(i%5)*10, (i/5%5)*10, -44.0-float64(i%13))))
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.mgr.Stats().Folded < 30 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	f.waitConverged(t)

	obs := []string{
		`{"observation":{"ap0":-46,"ap1":-52,"ap2":-60}}`,
		`{"observation":{"ap0":-58.5,"ap2":-49}}`,
		`{"observation":{"ap1":-71,"ap2":-55,"ap0":-50.25}}`,
	}
	for _, o := range obs {
		cs, trainerBody := postRaw(t, f.trainerTS.URL+"/locate", []byte(o))
		cf, followerBody := postRaw(t, f.followerTS.URL+"/locate", []byte(o))
		if cs != http.StatusOK || cf != http.StatusOK {
			t.Fatalf("locate status trainer=%d follower=%d", cs, cf)
		}
		if !bytes.Equal(trainerBody, followerBody) {
			t.Errorf("locate diverged for %s:\n trainer: %s\nfollower: %s", o, trainerBody, followerBody)
		}
	}
	batch := []byte(`{"observations":[{"ap0":-46,"ap1":-52},{"ap2":-49,"ap0":-58.5},{"ap1":-71,"ap2":-55}]}`)
	cs, trainerBody := postRaw(t, f.trainerTS.URL+"/locate/batch", batch)
	cf, followerBody := postRaw(t, f.followerTS.URL+"/locate/batch", batch)
	if cs != http.StatusOK || cf != http.StatusOK || !bytes.Equal(trainerBody, followerBody) {
		t.Errorf("batch diverged (%d/%d):\n trainer: %s\nfollower: %s", cs, cf, trainerBody, followerBody)
	}
}

// TestFollowerIsReadOnly: training writes on a follower answer 409
// venue_frozen pointing at the trainer — never 404 (the fleet is one
// logical service; the endpoint exists everywhere).
func TestFollowerIsReadOnly(t *testing.T) {
	f := newReplFixture(t)
	resp, body := postJSON(t, f.followerTS.URL+"/train/report",
		[]byte(`{"name":"p_0_0","observation":{"ap0":-44.5}}`))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("follower /train/report: %d, want 409", resp.StatusCode)
	}
	errBody, ok := body["error"].(map[string]any)
	if !ok || errBody["code"] != "venue_frozen" {
		t.Errorf("error body %v, want code venue_frozen", body)
	}
	// The same write on the trainer is accepted.
	resp, _ = postJSON(t, f.trainerTS.URL+"/train/report",
		[]byte(`{"name":"p_0_0","observation":{"ap0":-44.5}}`))
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("trainer /train/report: %d, want 202", resp.StatusCode)
	}
}

func TestFollowerHealthzAndMetrics(t *testing.T) {
	f := newReplFixture(t)
	f.waitConverged(t)

	resp, body := getJSON(t, f.followerTS.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower healthz: %d", resp.StatusCode)
	}
	if body["mode"] != "follower" {
		t.Errorf("mode %v, want follower", body["mode"])
	}
	rep, ok := body["replication"].(map[string]any)
	if !ok {
		t.Fatalf("no replication section: %v", body)
	}
	if rep["state"] != repl.StateStreaming {
		t.Errorf("replication state %v", rep["state"])
	}
	if _, ok := rep["applied_seq"]; !ok {
		t.Error("replication section lacks applied_seq")
	}

	resp, body = getJSON(t, f.trainerTS.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trainer healthz: %d", resp.StatusCode)
	}
	srcStats, ok := body["replication_source"].(map[string]any)
	if !ok {
		t.Fatalf("no replication_source section: %v", body)
	}
	if srcStats["ready"] != true {
		t.Errorf("source not ready: %v", srcStats)
	}

	for url, wants := range map[string][]string{
		f.followerTS.URL + "/metrics": {
			"indoorloc_repl_lag_seqs ", "indoorloc_repl_lag_bytes ", "indoorloc_repl_lag_seconds ",
			"indoorloc_repl_caught_up 1", "indoorloc_repl_bootstraps_total 1",
		},
		f.trainerTS.URL + "/metrics": {
			"indoorloc_repl_source_ready 1", "indoorloc_repl_source_captures_total ",
		},
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range wants {
			if !strings.Contains(string(raw), want) {
				t.Errorf("%s lacks %q", url, want)
			}
		}
	}
}

// TestFollowerLocateAllocParity is the follower-mode half of the
// zero-allocation serving claim: the follower's /locate path through
// the full front end adds nothing over calling the handler directly —
// replication must not tax the hot path.
func TestFollowerLocateAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime allocations make handler parity nondeterministic")
	}
	f := newReplFixture(t)
	f.waitConverged(t)
	payload := []byte(`{"observation":{"ap0":-46,"ap1":-52,"ap2":-60}}`)

	body := &resetReader{bytes.NewReader(payload)}
	run := func(serve func(w http.ResponseWriter, r *http.Request)) float64 {
		req := httptest.NewRequest("POST", "/locate", nil)
		req.Body = body
		req.ContentLength = int64(len(payload))
		nw := &nullWriter{h: make(http.Header)}
		for i := 0; i < 20; i++ {
			body.Seek(0, io.SeekStart)
			serve(nw, req)
		}
		return testing.AllocsPerRun(100, func() {
			body.Seek(0, io.SeekStart)
			serve(nw, req)
		})
	}
	direct := run(f.follower.handleLocate)
	full := run(f.follower.ServeHTTP)
	t.Logf("follower /locate: direct=%.1f full=%.1f", direct, full)
	if delta := full - direct; delta > 0.5 {
		t.Errorf("follower front end adds %.2f allocs/request on /locate, want 0", delta)
	}
}
