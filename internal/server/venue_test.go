package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/sim"
	"indoorloc/internal/venue"
)

// venueFixture is a multi-venue server over a synthetic city.
type venueFixture struct {
	srv *Server
	dir string
}

func newVenueFixture(t *testing.T, campuses, floors int, cfg venue.Config, opts ...Option) *venueFixture {
	t.Helper()
	dir := t.TempDir()
	if _, err := sim.WriteArtifacts(dir, sim.CityConfig{Campuses: campuses, Floors: floors, Seed: 42}); err != nil {
		t.Fatalf("WriteArtifacts: %v", err)
	}
	cfg.Dir = dir
	vr, err := venue.NewRegistry(cfg)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	srv, err := NewMultiVenue(vr, nil, opts...)
	if err != nil {
		t.Fatalf("NewMultiVenue: %v", err)
	}
	t.Cleanup(func() { srv.Close(); vr.Close() })
	return &venueFixture{srv: srv, dir: dir}
}

// venueObservation captures a live observation inside one venue.
func venueObservation(t *testing.T, campus, floor int) []byte {
	t.Helper()
	s := sim.CityScenario(campus, floor)
	env, err := s.Environment()
	if err != nil {
		t.Fatalf("environment: %v", err)
	}
	sc := sim.NewScanner(env, 7)
	obs := localize.Observation{}
	for _, rec := range sc.Capture(geom.Pt(15, 15), 3, 0) {
		obs[rec.BSSID] = float64(rec.RSSI)
	}
	body, err := json.Marshal(map[string]any{"observation": obs})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func (f *venueFixture) do(t *testing.T, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	f.srv.ServeHTTP(rec, req)
	return rec
}

// errCode extracts the machine-readable code from an error envelope.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q not a JSON envelope: %v", body, err)
	}
	return e.Error.Code
}

func TestMultiVenueServing(t *testing.T) {
	f := newVenueFixture(t, 2, 2, venue.Config{})

	// Two venues serve independently, each from its own radio map.
	for _, v := range [][2]int{{0, 0}, {1, 1}} {
		id := sim.VenueID(v[0], v[1])
		rec := f.do(t, "POST", "/v1/venues/"+id+"/locate", venueObservation(t, v[0], v[1]))
		if rec.Code != 200 {
			t.Fatalf("locate %s: status %d body %s", id, rec.Code, rec.Body)
		}
		var resp locateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("locate %s: %v", id, err)
		}
		out := sim.CityScenario(v[0], v[1]).Outline
		if !out.Contains(geom.Pt(resp.X, resp.Y)) {
			t.Errorf("venue %s estimate (%.1f, %.1f) outside its floor %v", id, resp.X, resp.Y, out)
		}
	}

	// The listing covers all four venues and reports residency.
	rec := f.do(t, "GET", "/v1/venues", nil)
	if rec.Code != 200 {
		t.Fatalf("list: status %d", rec.Code)
	}
	var list venuesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Venues) != 4 {
		t.Fatalf("listing has %d venues, want 4", len(list.Venues))
	}
	if list.Registry.Loaded != 2 || list.Registry.Loads != 2 {
		t.Errorf("registry stats after two cold loads: %+v", list.Registry)
	}

	// Status probes answer without loading the venue.
	rec = f.do(t, "GET", "/v1/venues/"+sim.VenueID(0, 1), nil)
	if rec.Code != 200 {
		t.Fatalf("status: %d body %s", rec.Code, rec.Body)
	}
	var st venue.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Loaded {
		t.Errorf("status probe must not cold-load the venue: %+v", st)
	}
	if got := f.srv.Venues().Stats().Loads; got != 2 {
		t.Errorf("loads after status probe = %d, want 2", got)
	}

	// Multi-venue health and metrics surfaces.
	rec = f.do(t, "GET", "/healthz", nil)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"multi-venue"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body)
	}
	rec = f.do(t, "GET", "/metrics", nil)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "indoorloc_venues_loaded 2") {
		t.Errorf("metrics missing venue gauges: %d", rec.Code)
	}
}

// TestVenueRoutingEdgeCases pins the 404/405/409/414 taxonomy of the
// venue namespace: the structural no_route versus the resource-level
// venue_not_found stay distinguishable by code.
func TestVenueRoutingEdgeCases(t *testing.T) {
	f := newVenueFixture(t, 1, 1, venue.Config{})
	id := sim.VenueID(0, 0)
	obs := venueObservation(t, 0, 0)

	cases := []struct {
		name     string
		method   string
		path     string
		body     []byte
		want     int
		wantCode string
	}{
		{"known venue", "POST", "/v1/venues/" + id + "/locate", obs, 200, ""},
		{"unknown venue", "POST", "/v1/venues/no-such-venue/locate", obs, 404, codeVenueNotFound},
		{"over-long id", "POST", "/v1/venues/" + strings.Repeat("a", 100) + "/locate", obs, 404, codeVenueNotFound},
		{"over-long path", "POST", "/v1/venues/" + strings.Repeat("a", 1100) + "/locate", obs, 414, codePathTooLong},
		{"empty venue id", "POST", "/v1/venues//locate", obs, 404, codeNoRoute},
		{"bare namespace", "GET", "/v1/venues/", nil, 404, codeNoRoute},
		{"unknown sub-path", "POST", "/v1/venues/" + id + "/nope", obs, 404, codeNoRoute},
		{"trailing slash", "POST", "/v1/venues/" + id + "/locate/", obs, 404, codeNoRoute},
		{"dot-segment id", "POST", "/v1/venues/%2e%2e/locate", obs, 404, codeNoRoute},
		{"percent-encoded id", "POST", "/v1/venues/campus%2D000%2Dfloor%2D0/locate", obs, 200, ""},
		{"wrong method", "GET", "/v1/venues/" + id + "/locate", nil, 405, codeMethodNotAllowed},
		{"status of unknown", "GET", "/v1/venues/no-such-venue", nil, 404, codeVenueNotFound},
		{"frozen training", "POST", "/v1/venues/" + id + "/train/report",
			[]byte(`{"name":"x","observation":{"a":-50}}`), 409, codeVenueFrozen},
		{"track deep subpath", "POST", "/v1/venues/" + id + "/track/a/b", obs, 404, codeNoRoute},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			rec := f.do(t, tt.method, tt.path, tt.body)
			if rec.Code != tt.want {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tt.want, rec.Body)
			}
			if tt.wantCode != "" {
				if got := errCode(t, rec.Body.Bytes()); got != tt.wantCode {
					t.Errorf("code %q, want %q", got, tt.wantCode)
				}
			}
		})
	}
}

// TestVenueTrackScoping: the same client id in two venues is two
// independent tracks.
func TestVenueTrackScoping(t *testing.T) {
	f := newVenueFixture(t, 2, 1, venue.Config{})
	a, b := sim.VenueID(0, 0), sim.VenueID(1, 0)

	if rec := f.do(t, "POST", "/v1/venues/"+a+"/track/cart-7", venueObservation(t, 0, 0)); rec.Code != 200 {
		t.Fatalf("track post: %d %s", rec.Code, rec.Body)
	}
	// The other venue never saw cart-7.
	rec := f.do(t, "DELETE", "/v1/venues/"+b+"/track/cart-7", nil)
	if rec.Code != 404 || errCode(t, rec.Body.Bytes()) != codeTrackNotFound {
		t.Fatalf("cross-venue delete: %d %s", rec.Code, rec.Body)
	}
	if rec := f.do(t, "DELETE", "/v1/venues/"+a+"/track/cart-7", nil); rec.Code != 200 {
		t.Fatalf("same-venue delete: %d %s", rec.Code, rec.Body)
	}
}

// TestLegacyAliasDefaultVenue: the unversioned routes serve the
// configured default venue; without one they answer venue_not_found.
// Runs in the race lane too — concurrent alias and versioned traffic
// share one venue's snapshot and tracker scope.
func TestLegacyAliasDefaultVenue(t *testing.T) {
	def := sim.VenueID(0, 0)
	f := newVenueFixture(t, 1, 1, venue.Config{Default: def})
	obs := venueObservation(t, 0, 0)

	for _, path := range []string{"/locate", "/v1/venues/" + def + "/locate"} {
		if rec := f.do(t, "POST", path, obs); rec.Code != 200 {
			t.Fatalf("%s: %d %s", path, rec.Code, rec.Body)
		}
	}
	if rec := f.do(t, "GET", "/locations", nil); rec.Code != 200 {
		t.Fatalf("/locations alias: %d %s", rec.Code, rec.Body)
	}
	// Alias and versioned route share the default venue's track scope.
	if rec := f.do(t, "POST", "/track/cart-1", obs); rec.Code != 200 {
		t.Fatalf("/track alias post: %d %s", rec.Code, rec.Body)
	}
	if rec := f.do(t, "DELETE", "/v1/venues/"+def+"/track/cart-1", nil); rec.Code != 200 {
		t.Fatalf("versioned delete of alias track: %d %s", rec.Code, rec.Body)
	}
	// Frozen default venue refuses training through the alias too.
	rec := f.do(t, "POST", "/train/report", []byte(`{"name":"x","observation":{"a":-50}}`))
	if rec.Code != 409 || errCode(t, rec.Body.Bytes()) != codeVenueFrozen {
		t.Fatalf("/train/report alias: %d %s", rec.Code, rec.Body)
	}

	// Concurrent alias + versioned traffic on one venue.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/locate"
			if i%2 == 0 {
				path = "/v1/venues/" + def + "/locate"
			}
			for j := 0; j < 5; j++ {
				rec := f.do(t, "POST", path, obs)
				if rec.Code != 200 {
					t.Errorf("%s: %d", path, rec.Code)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// No default configured: aliases answer venue_not_found, the
	// versioned route still works.
	g := newVenueFixture(t, 1, 1, venue.Config{})
	rec = g.do(t, "POST", "/locate", obs)
	if rec.Code != 404 || errCode(t, rec.Body.Bytes()) != codeVenueNotFound {
		t.Fatalf("aliased locate without default: %d %s", rec.Code, rec.Body)
	}
}

// TestVenueEvictionUnderServing drives traffic across more venues than
// the budget admits and expects evictions — observable at /metrics —
// while every request still answers.
func TestVenueEvictionUnderServing(t *testing.T) {
	dir := t.TempDir()
	if _, err := sim.WriteArtifacts(dir, sim.CityConfig{Campuses: 3, Floors: 1, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	var maxFile int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if info, err := e.Info(); err == nil && info.Size() > maxFile {
			maxFile = info.Size()
		}
	}
	vr, err := venue.NewRegistry(venue.Config{Dir: dir, MaxBytes: maxFile})
	if err != nil {
		t.Fatal(err)
	}
	defer vr.Close()
	srv, err := NewMultiVenue(vr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f := &venueFixture{srv: srv, dir: dir}

	for round := 0; round < 2; round++ {
		for ca := 0; ca < 3; ca++ {
			id := sim.VenueID(ca, 0)
			rec := f.do(t, "POST", "/v1/venues/"+id+"/locate", venueObservation(t, ca, 0))
			if rec.Code != 200 {
				t.Fatalf("locate %s round %d: %d %s", id, round, rec.Code, rec.Body)
			}
		}
	}
	st := vr.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a one-venue budget: %+v", st)
	}
	if st.ResidentBytes > maxFile {
		t.Errorf("resident %d exceeds budget %d", st.ResidentBytes, maxFile)
	}
	body := f.do(t, "GET", "/metrics", nil).Body.String()
	if !strings.Contains(body, "indoorloc_venue_evictions_total") {
		t.Errorf("eviction counter missing from /metrics")
	}
}

// TestVenueLocateAllocParity proves venue resolution adds zero
// allocations: a full ServeHTTP round trip on the venue route costs no
// more than invoking the shared locate handler directly with the
// venue's already-resolved service.
func TestVenueLocateAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime allocations make handler parity nondeterministic")
	}
	f := newVenueFixture(t, 1, 1, venue.Config{})
	id := sim.VenueID(0, 0)
	path := "/v1/venues/" + id + "/locate"
	payload := venueObservation(t, 0, 0)

	v, err := f.srv.Venues().Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	svc := v.Snapshot().Service

	body := &resetReader{bytes.NewReader(payload)}
	run := func(serve func(w http.ResponseWriter, r *http.Request)) float64 {
		req := httptest.NewRequest("POST", path, nil)
		req.Body = body
		req.ContentLength = int64(len(payload))
		nw := &nullWriter{h: make(http.Header)}
		for i := 0; i < 20; i++ {
			body.Seek(0, io.SeekStart)
			serve(nw, req)
		}
		return testing.AllocsPerRun(100, func() {
			body.Seek(0, io.SeekStart)
			serve(nw, req)
		})
	}
	direct := run(func(w http.ResponseWriter, r *http.Request) { f.srv.locate(w, r, svc) })
	full := run(f.srv.ServeHTTP)
	t.Logf("venue locate: direct=%.1f full=%.1f", direct, full)
	if delta := full - direct; delta > 0.5 {
		t.Errorf("venue resolution + front end adds %.2f allocs/request, want 0", delta)
	}
}
