//go:build race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build; alloc-accounting tests use it to skip assertions the race
// runtime's own allocations would make flaky.
const raceEnabled = true
