package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/metrics"
)

// The router is the zero-allocation front door of the serving path.
// The route table is static — every endpoint is known at construction
// — so dispatch is one map probe (or one prefix compare for
// /track/{client}) with no per-request pattern matching, no
// net/http.ServeMux cleanup/redirect machinery, and no allocations.
// Around every handler runs one fixed middleware chain, in order:
//
//  1. request-id: a monotone counter stamped on the pooled request
//     state; materialized as an X-Request-Id header only on error
//     responses (a success-path header set would allocate).
//  2. limits: the path-length bound (414), the uniform rejection of
//     //-doubled and dot-segment paths (404), and the per-route body
//     cap (413) — enforced against Content-Length for free, and with
//     a pooled limit reader for chunked bodies.
//  3. per-route timeout: routes with a deadline run under a buffered
//     guard that answers 503 when the handler overruns (this tier
//     allocates and is off by default — see DESIGN.md §11).
//  4. recovery + observation: one deferred finish() recovers panics
//     (500, connection closed), records the fixed-bucket latency
//     histogram and status counter, and appends the access-log ring
//     entry. All atomics; zero allocations.
//
// The pooled per-request state (statusWriter, body limiter) makes the
// whole chain add exactly 0 allocs/request on the hot path — enforced
// by TestRouterAllocParity and the loclint hotpathalloc annotations on
// every function the request path executes.

// Request-limit defaults. maxPathLen bounds the only client-controlled
// input the router itself parses; defaultMaxBody caps the
// single-observation endpoints (an averaged observation or a wi-scan
// record list is a few kB — 1 MiB is paranoid headroom).
const (
	maxPathLen     = 1024
	defaultMaxBody = 1 << 20
)

// venuePrefix roots the versioned multi-venue namespace. Paths under
// it carry a venue id as their first segment: /v1/venues/{venue}/...
// The router parses the segment allocation-free (two string slices and
// a map probe); handlers re-derive the id the same way, so nothing is
// stashed per request.
const venuePrefix = "/v1/venues/"

// Router-level error bodies. Routing errors are JSON like every other
// error the service emits — the satellite fix for /track/'s old
// fall-through statuses.
var (
	errNoRoute          = errors.New("no such endpoint")
	errMethodNotAllowed = errors.New("method not allowed")
	errPathTooLong      = errors.New("request path too long")
	errRouteTimeout     = errors.New("handler timed out")
	errBodyTooLarge     = errors.New("request body too large")
)

// routeDef declares one route for newRouter. Handlers are per-method;
// a nil method slot answers 405 with the precomputed Allow header.
type routeDef struct {
	name    string // metrics / access-log label
	path    string // exact path, or the prefix (ending in '/') when prefix is set
	prefix  bool   // /track/-style: path names a prefix, the suffix is one segment
	venue   bool   // venue-tier route: path is the sub-path after /v1/venues/{venue}
	get     http.HandlerFunc
	post    http.HandlerFunc
	del     http.HandlerFunc
	maxBody int64         // body cap; 0 = unlimited
	timeout time.Duration // >0 runs under the timeout guard
}

// route is one compiled row of the static table.
type route struct {
	name    string
	idx     int // metrics registry index
	get     http.HandlerFunc
	post    http.HandlerFunc
	del     http.HandlerFunc
	allow   string
	maxBody int64
	timeout time.Duration
}

// router dispatches requests against the static table.
type router struct {
	exact      map[string]*route
	prefix     *route // the single prefix route; nil when absent
	prefixPath string
	// vtier maps the venue sub-path ("" for the bare-id status route,
	// "/locate", ...) to its route; nil disables the venue namespace.
	// vtrack is the venue tier's one sub-prefix route (/track/{client}).
	vtier      map[string]*route
	vtrack     *route
	vtrackPath string
	metrics    *metrics.Registry
	otherIdx   int // metrics slot for unroutable requests
	alog       *accessLogger
	nextID     atomic.Uint64
	panics     atomic.Uint64
	timeouts   atomic.Uint64
}

// newRouter compiles the table and sizes a metrics registry with one
// slot per route plus the trailing "other" slot for unroutable paths.
func newRouter(defs []routeDef, alog *accessLogger) *router {
	names := make([]string, len(defs)+1)
	rt := &router{exact: make(map[string]*route, len(defs)), alog: alog, otherIdx: len(defs)}
	for i, d := range defs {
		names[i] = d.name
		e := &route{
			name: d.name, idx: i,
			get: d.get, post: d.post, del: d.del,
			allow:   allowHeader(d),
			maxBody: d.maxBody, timeout: d.timeout,
		}
		switch {
		case d.venue && d.prefix:
			rt.vtrack, rt.vtrackPath = e, d.path
		case d.venue:
			if rt.vtier == nil {
				rt.vtier = make(map[string]*route)
			}
			rt.vtier[d.path] = e
		case d.prefix:
			rt.prefix, rt.prefixPath = e, d.path
		default:
			rt.exact[d.path] = e
		}
	}
	names[len(defs)] = "other"
	rt.metrics = metrics.NewRegistry(names)
	return rt
}

func allowHeader(d routeDef) string {
	var methods []string
	if d.get != nil {
		methods = append(methods, http.MethodGet)
	}
	if d.post != nil {
		methods = append(methods, http.MethodPost)
	}
	if d.del != nil {
		methods = append(methods, http.MethodDelete)
	}
	return strings.Join(methods, ", ")
}

// statusWriter wraps the connection's ResponseWriter to capture the
// final status for metrics and the access log. Pooled: a request
// borrows one, finish() returns it.
type statusWriter struct {
	w       http.ResponseWriter
	route   *route
	limiter *bodyLimiter // pooled chunked-body cap, if one was attached
	id      uint64
	status  int
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

//loclint:hotpath
func (sw *statusWriter) Header() http.Header { return sw.w.Header() }

//loclint:hotpath
func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.w.Write(b)
}

//loclint:hotpath
func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	if code == http.StatusRequestEntityTooLarge {
		sw.tooLarge()
	}
	sw.w.WriteHeader(code)
}

// tooLarge stamps the uniform 413 semantics — close the connection
// (the unread remainder would poison keep-alive) and carry the request
// id — no matter which layer emitted the status: the router's
// Content-Length check or a handler that hit the chunked-body cap
// mid-decode. Cold path; idempotent under reject()'s own sets.
func (sw *statusWriter) tooLarge() {
	h := sw.w.Header()
	h.Set("Connection", "close")
	h.Set("X-Request-Id", strconv.FormatUint(sw.id, 10))
}

// Unwrap lets http.ResponseController reach the real connection.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.w }

// bodyLimiter caps a request body whose Content-Length is unknown
// (chunked encoding). The budget is cap+1: a body of exactly the cap
// hits EOF first; one byte more trips errBodyTooLarge, which the
// handlers map to 413.
type bodyLimiter struct {
	rc io.ReadCloser
	n  int64
}

var limiterPool = sync.Pool{New: func() any { return new(bodyLimiter) }}

//loclint:hotpath
func (l *bodyLimiter) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, errBodyTooLarge
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.rc.Read(p)
	l.n -= int64(n)
	return n, err
}

func (l *bodyLimiter) Close() error { return l.rc.Close() }

// ServeHTTP dispatches one request through the fixed middleware chain.
// On the hot path — a routable request within its limits, no timeout
// guard — this function and everything it calls before the handler
// allocate nothing.
//
//loclint:hotpath
func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := swPool.Get().(*statusWriter)
	sw.w, sw.route, sw.limiter, sw.id, sw.status = w, nil, nil, rt.nextID.Add(1), 0
	defer rt.finish(sw, r, start)
	path := r.URL.Path
	if len(path) > maxPathLen {
		rt.reject(sw, http.StatusRequestURITooLong, errPathTooLong)
		return
	}
	e := rt.lookup(path)
	if e == nil {
		rt.reject(sw, http.StatusNotFound, errNoRoute)
		return
	}
	sw.route = e
	h := e.handler(r.Method)
	if h == nil {
		rt.methodNotAllowed(sw, e)
		return
	}
	if e.maxBody > 0 {
		if r.ContentLength > e.maxBody {
			rt.reject(sw, http.StatusRequestEntityTooLarge, errBodyTooLarge)
			return
		}
		if r.ContentLength < 0 && r.Body != nil {
			l := limiterPool.Get().(*bodyLimiter)
			l.rc, l.n = r.Body, e.maxBody+1
			r.Body = l
			sw.limiter = l
		}
	}
	if e.timeout > 0 {
		rt.runGuarded(sw, r, e, h)
		return
	}
	h(sw, r)
}

// lookup resolves a path to its route. Unknown paths, //-doubled
// slashes and dot segments all resolve to nil — one uniform JSON 404,
// never a silent normalization or a misleading fall-through status.
//
//loclint:hotpath
func (rt *router) lookup(path string) *route {
	if e, ok := rt.exact[path]; ok {
		return e
	}
	if !cleanPath(path) {
		return nil
	}
	if rt.vtier != nil && len(path) > len(venuePrefix) &&
		path[:len(venuePrefix)] == venuePrefix {
		return rt.lookupVenue(path[len(venuePrefix):])
	}
	if rt.prefix != nil && len(path) > len(rt.prefixPath) &&
		path[:len(rt.prefixPath)] == rt.prefixPath {
		// The suffix must be a single non-empty segment: /track/a/b is
		// an unknown subpath, not a tracking client named "a/b".
		if !strings.Contains(path[len(rt.prefixPath):], "/") {
			return rt.prefix
		}
	}
	return nil
}

// lookupVenue resolves the venue tier: rest is the path after
// /v1/venues/, so {venue-id}[/sub-path]. The shape is matched here —
// allocation-free, two slices and a map probe; the id's validity and
// existence are the handler's problem (so an unknown venue can answer
// venue_not_found instead of the router's structural no_route). An
// empty id cannot reach here: /v1/venues/ alone fails the length
// check in lookup, and /v1/venues//x fails cleanPath.
//
//loclint:hotpath
func (rt *router) lookupVenue(rest string) *route {
	sub := ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		sub = rest[i:]
	}
	if e, ok := rt.vtier[sub]; ok {
		return e
	}
	if rt.vtrack != nil && len(sub) > len(rt.vtrackPath) &&
		sub[:len(rt.vtrackPath)] == rt.vtrackPath &&
		!strings.Contains(sub[len(rt.vtrackPath):], "/") {
		return rt.vtrack
	}
	return nil
}

// cleanPath reports whether p is free of doubled slashes and dot
// segments (including trailing "/." and "/.."). The router rejects
// unclean paths outright instead of normalizing and redirecting as
// http.ServeMux would — a fleet client retrying a 404 is cheaper than
// every request paying the cleaning pass.
//
//loclint:hotpath
func cleanPath(p string) bool {
	return !strings.Contains(p, "//") &&
		!strings.Contains(p, "/./") &&
		!strings.Contains(p, "/../") &&
		!strings.HasSuffix(p, "/.") &&
		!strings.HasSuffix(p, "/..")
}

// handler picks the method's handler; nil means 405.
//
//loclint:hotpath
func (e *route) handler(method string) http.HandlerFunc {
	switch method {
	case http.MethodGet:
		return e.get
	case http.MethodPost:
		return e.post
	case http.MethodDelete:
		return e.del
	}
	return nil
}

// finish is deferred around every request: recover the panics, record
// the metrics and the access-log entry, return the pooled state. A
// panic that struck after the handler started writing cannot be
// answered — once the bookkeeping is done, finish re-panics with
// http.ErrAbortHandler so net/http aborts the connection instead of
// completing the truncated body as a clean response.
//
//loclint:hotpath
func (rt *router) finish(sw *statusWriter, r *http.Request, start time.Time) {
	abort := false
	if p := recover(); p != nil {
		abort = rt.recovered(sw, p)
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK // handler wrote a bare 200 and no body
	}
	idx := rt.otherIdx
	if sw.route != nil {
		idx = sw.route.idx
	}
	d := time.Since(start)
	rt.metrics.Observe(idx, status, d)
	if rt.alog != nil {
		rt.alog.record(sw.id, idx, r.Method, r.URL.Path, r.RemoteAddr, status, d)
	}
	if l := sw.limiter; l != nil {
		l.rc = nil
		limiterPool.Put(l)
	}
	sw.w, sw.route, sw.limiter = nil, nil, nil
	swPool.Put(sw)
	if abort {
		panic(http.ErrAbortHandler)
	}
}

// recovered answers a panicking handler and reports whether the
// connection must be aborted. Cold path: when no response has started,
// the 500 carries the request id so an operator can line the response
// up with the access log, and the connection is closed — after an
// arbitrary panic the stream state is untrustworthy. When the handler
// already wrote, the status is poisoned for metrics and the caller
// aborts: recovering silently here would let net/http finish the
// truncated body as an apparently complete success.
func (rt *router) recovered(sw *statusWriter, p any) bool {
	rt.panics.Add(1)
	if sw.status == 0 && p != http.ErrAbortHandler {
		h := sw.Header()
		h.Set("Connection", "close")
		h.Set("X-Request-Id", strconv.FormatUint(sw.id, 10))
		writeError(sw, http.StatusInternalServerError, errors.New("internal error"))
		return false
	}
	sw.status = http.StatusInternalServerError
	_ = p // the panic value is deliberately not echoed to the client
	return true
}

// reject writes a routing-layer JSON error. Cold path — the header
// sets below allocate, which is why the ids exist only on errors.
func (rt *router) reject(sw *statusWriter, status int, err error) {
	h := sw.Header()
	h.Set("X-Request-Id", strconv.FormatUint(sw.id, 10))
	if status == http.StatusRequestEntityTooLarge {
		// The unread body would poison a kept-alive connection.
		h.Set("Connection", "close")
	}
	writeError(sw, status, err)
}

func (rt *router) methodNotAllowed(sw *statusWriter, e *route) {
	sw.Header().Set("Allow", e.allow)
	rt.reject(sw, http.StatusMethodNotAllowed, errMethodNotAllowed)
}

// timeoutWriter buffers a guarded handler's response so an abandoned
// handler can keep writing harmlessly after the deadline fired.
type timeoutWriter struct {
	header   http.Header
	body     bytes.Buffer
	status   int
	panicked bool
	panicVal any
}

func (t *timeoutWriter) Header() http.Header { return t.header }

func (t *timeoutWriter) Write(b []byte) (int, error) {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	return t.body.Write(b)
}

func (t *timeoutWriter) WriteHeader(code int) {
	if t.status == 0 {
		t.status = code
	}
}

// runGuarded runs h under the route's deadline: the handler writes
// into a buffer on its own goroutine; if it beats the deadline the
// buffer is replayed to the client, otherwise the client gets 503 and
// the handler finishes into the void. This tier allocates (buffer,
// goroutine, context) — it exists for operators who prefer bounded
// tail latency over the last few allocations, and is off by default.
func (rt *router) runGuarded(sw *statusWriter, r *http.Request, e *route, h http.HandlerFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), e.timeout)
	defer cancel()
	tw := &timeoutWriter{header: make(http.Header)}
	done := make(chan struct{})
	r2 := r.WithContext(ctx)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				tw.panicked, tw.panicVal = true, p
			}
			close(done)
		}()
		h(tw, r2)
	}()
	select {
	case <-done:
		if tw.panicked {
			panic(tw.panicVal) // re-raise on the request goroutine; finish() recovers
		}
		dst := sw.Header()
		for k, v := range tw.header {
			dst[k] = v
		}
		status := tw.status
		if status == 0 {
			status = http.StatusOK
		}
		sw.WriteHeader(status)
		sw.Write(tw.body.Bytes())
	case <-ctx.Done():
		rt.timeouts.Add(1)
		// The abandoned handler still owns r.Body — the pooled limiter,
		// if one was attached. Detach it so finish() leaves it to the GC
		// instead of returning it to the pool under the handler's feet,
		// where the next request would re-acquire it and two goroutines
		// would race on l.rc/l.n (nil-pointer panics, cross-request body
		// reads).
		sw.limiter = nil
		// The handler's fate is still worth observing: a panic after the
		// deadline would otherwise vanish — the guarded goroutine's
		// recover captures it but nothing re-raises it.
		go func() {
			<-done
			if tw.panicked {
				rt.panics.Add(1)
			}
		}()
		rt.reject(sw, http.StatusServiceUnavailable, errRouteTimeout)
	}
}
