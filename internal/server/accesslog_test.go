package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer serializes the drainer's writes against the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogFormat(t *testing.T) {
	var out syncBuffer
	l := newAccessLogger(&out, 64, []string{"locate", "other"})
	l.record(7, 0, "POST", "/locate", "10.1.2.3:5555", 200, 1500*time.Microsecond)
	l.record(8, 1, "GET", "/nowhere", "10.1.2.3:5556", 404, 90*time.Microsecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"req=7", "route=locate", "method=POST", "status=200", "dur_us=1500", "remote=10.1.2.3:5555", "path=/locate"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q missing %q", lines[0], want)
		}
	}
	for _, want := range []string{"req=8", "route=other", "status=404"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("line %q missing %q", lines[1], want)
		}
	}
	if !strings.HasPrefix(lines[0], "t=") {
		t.Errorf("line %q missing timestamp", lines[0])
	}
}

func TestAccessLogTruncatesLongValues(t *testing.T) {
	var out syncBuffer
	l := newAccessLogger(&out, 64, []string{"track"})
	longPath := "/track/" + strings.Repeat("c", 100)
	l.record(1, 0, "POST", longPath, "127.0.0.1:1", 200, time.Millisecond)
	l.Close()
	line := strings.TrimSpace(out.String())
	if !strings.Contains(line, "path="+longPath[:logPathBytes]) {
		t.Errorf("long path not truncated to %d bytes: %q", logPathBytes, line)
	}
	if strings.Contains(line, longPath) {
		t.Errorf("full long path leaked into fixed-width log: %q", line)
	}
}

// slowWriter stalls the drainer so producers lap the ring, while still
// capturing everything that does get written.
type slowWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *slowWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	w.mu.Unlock()
	time.Sleep(200 * time.Microsecond)
	return len(p), nil
}

func (w *slowWriter) lines() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return uint64(bytes.Count(w.buf.Bytes(), []byte{'\n'}))
}

// TestAccessLogDropOldest hammers a tiny ring from several goroutines
// against a deliberately slow sink. The contract under pressure:
// recording never blocks, and every record is either logged or counted
// dropped — nothing silently vanishes, nothing is double-counted.
func TestAccessLogDropOldest(t *testing.T) {
	slow := &slowWriter{}
	l := newAccessLogger(slow, 8, []string{"locate"})
	const producers, each = 4, 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.record(uint64(p*each+i), 0, "POST", "/locate", "127.0.0.1:9", 200, time.Microsecond)
			}
		}(p)
	}
	wg.Wait()
	l.Close()
	if l.Dropped() == 0 {
		t.Errorf("no drops despite a lapped 8-slot ring")
	}
	if got := slow.lines() + l.Dropped(); got != producers*each {
		t.Errorf("logged %d + dropped %d = %d, want every one of %d accounted for",
			slow.lines(), l.Dropped(), got, producers*each)
	}
}

// TestServerAccessLogOption exercises the full wiring: requests into a
// WithAccessLog server come out of Close as formatted lines, and the
// drop counter surfaces in the exposition.
func TestServerAccessLogOption(t *testing.T) {
	var out syncBuffer
	f := newFixture(t, WithAccessLog(&out), WithAccessLogRing(256))
	for _, path := range []string{"/healthz", "/healthz", "/missing"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(exposition), "indoorloc_accesslog_dropped_total 0") {
		t.Errorf("exposition missing the access-log drop counter")
	}
	if err := f.srv.Close(); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "route=healthz"); n != 2 {
		t.Errorf("%d healthz lines, want 2:\n%s", n, got)
	}
	if !strings.Contains(got, "route=other") || !strings.Contains(got, "status=404") {
		t.Errorf("404 request missing from the log:\n%s", got)
	}
	if !strings.Contains(got, "path=/missing") {
		t.Errorf("log lines missing the request path:\n%s", got)
	}
}

// TestAccessLogDrainerBoundsUnpublishedWait simulates a producer
// descheduled between claiming a ticket and publishing the slot: the
// drainer must wait only a bounded time before counting the slot
// dropped and moving on, so one stuck producer cannot stall every
// record behind it for a full ring lap.
func TestAccessLogDrainerBoundsUnpublishedWait(t *testing.T) {
	var out syncBuffer
	l := newAccessLogger(&out, 64, []string{"locate"})
	l.head.Add(1) // claim slot 0 and never publish it
	l.record(42, 0, "POST", "/locate", "127.0.0.1:9", 200, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "req=42") {
		if time.Now().After(deadline) {
			t.Fatal("drainer stalled behind the unpublished slot; req=42 never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if got := l.Dropped(); got != 1 {
		t.Errorf("dropped %d, want 1 (the abandoned slot)", got)
	}
	l.Close()
}

func TestAccessLogCloseIdempotent(t *testing.T) {
	var out syncBuffer
	l := newAccessLogger(&out, 8, nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
