package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"indoorloc/internal/geom"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scrape content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsScrapeParity drives known traffic through the server and
// asserts the exposition reports exactly that traffic, route by route
// and class by class.
func TestMetricsScrapeParity(t *testing.T) {
	f := newFixture(t)
	body := f.observationBody(t, geom.Pt(25, 20))
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, f.ts.URL+"/locate", body)
		if resp.StatusCode != 200 {
			t.Fatalf("locate status %d", resp.StatusCode)
		}
	}
	// One 405 on the locate route, one unroutable 404, one live track.
	resp, err := http.Get(f.ts.URL + "/locate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(f.ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postJSON(t, f.ts.URL+"/track/scraper-client", body)

	scrape(t, f.ts.URL) // the scrape route must count itself...
	out := scrape(t, f.ts.URL)

	for _, want := range []string{
		`indoorloc_http_requests_total{route="locate",class="2xx"} 3`,
		`indoorloc_http_requests_total{route="locate",class="4xx"} 1`,
		`indoorloc_http_requests_total{route="other",class="4xx"} 1`,
		`indoorloc_http_requests_total{route="metrics",class="2xx"} 1`, // ...on the next scrape
		`indoorloc_http_requests_total{route="track",class="2xx"} 1`,
		`indoorloc_http_request_duration_seconds_count{route="locate"} 4`,
		`indoorloc_tracks_active 1`,
		`indoorloc_http_panics_total 0`,
		`indoorloc_http_timeouts_total 0`,
		"# TYPE indoorloc_http_request_duration_seconds histogram",
		"indoorloc_snapshot_generation",
		"indoorloc_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The registry must agree with the text exposition.
	reg := f.srv.Metrics()
	for i, name := range reg.Names() {
		if name == "locate" {
			if got := reg.RouteCount(i); got != 4 {
				t.Errorf("registry locate count %d, want 4", got)
			}
		}
	}
}

// TestMetricsConcurrentScrapeUnderLoad hammers /locate while scraping
// /metrics — the scrape must never block, corrupt or miscount the hot
// path. Run under -race in CI, this is the data-race assertion for the
// whole metrics layer.
func TestMetricsConcurrentScrapeUnderLoad(t *testing.T) {
	f := newFixture(t)
	body := f.observationBody(t, geom.Pt(25, 20))
	const workers, each = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				resp, _ := postJSON(t, f.ts.URL+"/locate", body)
				if resp.StatusCode != 200 {
					t.Errorf("locate status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			scrape(t, f.ts.URL)
		}
	}()
	wg.Wait()
	out := scrape(t, f.ts.URL)
	want := fmt.Sprintf(`indoorloc_http_requests_total{route="locate",class="2xx"} %d`, workers*each)
	if !strings.Contains(out, want) {
		t.Errorf("final scrape missing %q", want)
	}
}
