package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/filter"
	"indoorloc/internal/geom"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

type fixture struct {
	srv  *Server
	ts   *httptest.Server
	scen sim.Scenario
	sc   *sim.Scanner
}

func newFixture(t *testing.T, opts ...Option) *fixture {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 41)
	coll := sc.CaptureCollection(grid, 20)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc := &core.Service{DB: db, Locator: loc, Names: grid}
	srv, err := New(svc, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &fixture{srv: srv, ts: ts, scen: scen, sc: sc}
}

// observationBody builds a /locate request body from a live capture.
func (f *fixture) observationBody(t *testing.T, p geom.Point) []byte {
	t.Helper()
	recs := f.sc.Capture(p, 10, 0)
	req := map[string]any{"records": []map[string]any{}}
	var rows []map[string]any
	for _, r := range recs {
		rows = append(rows, map[string]any{
			"time_millis": r.TimeMillis, "bssid": r.BSSID, "rssi": r.RSSI,
		})
	}
	req["records"] = rows
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil service accepted")
	}
}

func TestHealthz(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	if body["status"] != "ok" || body["locations"].(float64) != 30 {
		t.Errorf("body %v", body)
	}
}

func TestAlgorithmsAndLocations(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.ts.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	var algos []string
	json.NewDecoder(resp.Body).Decode(&algos)
	resp.Body.Close()
	if len(algos) != len(core.Algorithms()) {
		t.Errorf("algorithms %v", algos)
	}
	resp, err = http.Get(f.ts.URL + "/locations")
	if err != nil {
		t.Fatal(err)
	}
	var locs []map[string]any
	json.NewDecoder(resp.Body).Decode(&locs)
	resp.Body.Close()
	if len(locs) != 30 {
		t.Errorf("%d locations", len(locs))
	}
}

func TestLocateWithRecords(t *testing.T) {
	f := newFixture(t)
	target := geom.Pt(25, 20)
	resp, body := postJSON(t, f.ts.URL+"/locate", f.observationBody(t, target))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	// This test checks the HTTP plumbing, not accuracy: the estimate
	// only needs to land inside the house.
	x, y := body["x"].(float64), body["y"].(float64)
	if !f.scen.Outline.Contains(geom.Pt(x, y)) {
		t.Errorf("estimate (%v, %v) outside the house", x, y)
	}
	if body["location"] == "" || body["nearest_name"] == "" {
		t.Errorf("symbolic fields missing: %v", body)
	}
	if body["algorithm"] != "probabilistic-ml" {
		t.Errorf("algorithm %v", body["algorithm"])
	}
	if _, ok := body["confidence_radius_ft"]; !ok {
		t.Error("no confidence radius")
	}
}

func TestLocateWithAveragedObservation(t *testing.T) {
	f := newFixture(t)
	obs := map[string]float64{}
	for _, ap := range f.scen.APs {
		obs[ap.BSSID] = -60
	}
	b, _ := json.Marshal(map[string]any{"observation": obs})
	resp, _ := postJSON(t, f.ts.URL+"/locate", b)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestLocateErrors(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"both fields", `{"observation":{"a":-60},"records":[{"bssid":"a","rssi":-60}]}`, http.StatusBadRequest},
		{"unknown field", `{"wat":1}`, http.StatusBadRequest},
		{"malformed", `{`, http.StatusBadRequest},
		{"no overlap", `{"observation":{"gh:os:t":-60}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, _ := postJSON(t, f.ts.URL+"/locate", []byte(c.body))
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// Wrong method.
	resp, err := http.Get(f.ts.URL + "/locate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /locate: %d", resp.StatusCode)
	}
}

func TestTrackLifecycle(t *testing.T) {
	f := newFixture(t)
	// A client walks; its track smooths.
	for i := 0; i < 5; i++ {
		p := geom.Pt(10+float64(i)*2, 20)
		resp, body := postJSON(t, f.ts.URL+"/track/phone-1", f.observationBody(t, p))
		if resp.StatusCode != 200 {
			t.Fatalf("step %d: %d %v", i, resp.StatusCode, body)
		}
	}
	if f.srv.ActiveTracks() != 1 {
		t.Errorf("%d active tracks", f.srv.ActiveTracks())
	}
	// A second client is independent.
	postJSON(t, f.ts.URL+"/track/phone-2", f.observationBody(t, geom.Pt(40, 30)))
	if f.srv.ActiveTracks() != 2 {
		t.Errorf("%d active tracks", f.srv.ActiveTracks())
	}
	// Forget the first.
	req, _ := http.NewRequest(http.MethodDelete, f.ts.URL+"/track/phone-1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || f.srv.ActiveTracks() != 1 {
		t.Errorf("delete: %d, tracks %d", resp.StatusCode, f.srv.ActiveTracks())
	}
	// Deleting again 404s.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: %d", resp.StatusCode)
	}
}

func TestTrackBadPaths(t *testing.T) {
	f := newFixture(t)
	// The router treats an empty or nested client id as an unknown
	// path — a uniform 404, same as any other unroutable URL.
	resp, _ := postJSON(t, f.ts.URL+"/track/", []byte(`{}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty client: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, f.ts.URL+"/track/a/b", []byte(`{}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("nested client: %d", resp.StatusCode)
	}
	// Unsupported method on /track.
	req, _ := http.NewRequest(http.MethodPut, f.ts.URL+"/track/x", strings.NewReader("{}"))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT: %d", r2.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	f := newFixture(t)
	// Bodies are prepared on the test goroutine: t.Fatal is not legal
	// inside the workers.
	bodies := make([][]byte, 8)
	for c := range bodies {
		bodies[c] = f.observationBody(t, geom.Pt(float64(5+c*5), 20))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", c)
			body := bodies[c]
			for i := 0; i < 5; i++ {
				resp, err := http.Post(f.ts.URL+"/track/"+client, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d", client, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if f.srv.ActiveTracks() != 8 {
		t.Errorf("%d tracks", f.srv.ActiveTracks())
	}
}

// batchBody marshals observations into a /locate/batch request body.
func batchBody(t *testing.T, obs []map[string]float64) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"observations": obs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// averagedObservation builds one averaged observation from a live
// capture at p.
func (f *fixture) averagedObservation(t *testing.T, p geom.Point) map[string]float64 {
	t.Helper()
	recs := f.sc.Capture(p, 10, 0)
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range recs {
		sums[r.BSSID] += float64(r.RSSI)
		counts[r.BSSID]++
	}
	obs := map[string]float64{}
	for b, s := range sums {
		obs[b] = s / float64(counts[b])
	}
	return obs
}

// TestLocateBatchMatchesSingle posts a batch and checks every result
// against the single-observation endpoint: same coordinates, symbolic
// names and confidence, in input order. Runs twice with different
// batch sizes so arena reuse across requests is exercised.
func TestLocateBatchMatchesSingle(t *testing.T) {
	f := newFixture(t)
	points := []geom.Point{
		geom.Pt(10, 10), geom.Pt(25, 20), geom.Pt(40, 30), geom.Pt(15, 35), geom.Pt(45, 12),
	}
	for round, n := range []int{len(points), 2} { // second round smaller: stale arena state must not bleed
		obs := make([]map[string]float64, n)
		for i := range obs {
			obs[i] = f.averagedObservation(t, points[i])
		}
		resp, body := postJSON(t, f.ts.URL+"/locate/batch", batchBody(t, obs))
		if resp.StatusCode != 200 {
			t.Fatalf("round %d: status %d: %v", round, resp.StatusCode, body)
		}
		if body["algorithm"] != "probabilistic-ml" || int(body["count"].(float64)) != n {
			t.Fatalf("round %d: header fields %v", round, body)
		}
		results := body["results"].([]any)
		if len(results) != n {
			t.Fatalf("round %d: %d results, want %d", round, len(results), n)
		}
		for i, raw := range results {
			item := raw.(map[string]any)
			single, err := json.Marshal(map[string]any{"observation": obs[i]})
			if err != nil {
				t.Fatal(err)
			}
			sResp, sBody := postJSON(t, f.ts.URL+"/locate", single)
			if sResp.StatusCode != 200 {
				t.Fatalf("round %d obs %d: single status %d", round, i, sResp.StatusCode)
			}
			for _, field := range []string{"x", "y", "location", "nearest_name", "confidence_radius_ft"} {
				if item[field] != sBody[field] {
					t.Errorf("round %d obs %d %s: batch %v, single %v",
						round, i, field, item[field], sBody[field])
				}
			}
			if _, hasErr := item["error"]; hasErr {
				t.Errorf("round %d obs %d: unexpected error %v", round, i, item["error"])
			}
		}
	}
}

// TestLocateBatchPerObservationErrors checks one bad observation fails
// alone: its result carries an error while its batchmates localize.
func TestLocateBatchPerObservationErrors(t *testing.T) {
	f := newFixture(t)
	obs := []map[string]float64{
		f.averagedObservation(t, geom.Pt(25, 20)),
		{"gh:os:t1": -55}, // no overlap with training
		f.averagedObservation(t, geom.Pt(40, 30)),
	}
	resp, body := postJSON(t, f.ts.URL+"/locate/batch", batchBody(t, obs))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if _, hasErr := results[0].(map[string]any)["error"]; hasErr {
		t.Error("good observation 0 got an error")
	}
	if _, hasErr := results[2].(map[string]any)["error"]; hasErr {
		t.Error("good observation 2 got an error")
	}
	if msg, _ := results[1].(map[string]any)["error"].(string); msg == "" {
		t.Errorf("bad observation got no error: %v", results[1])
	}
}

// TestLocateBatchRequestErrors pins the request-level failure modes.
func TestLocateBatchRequestErrors(t *testing.T) {
	f := newFixture(t)
	f.srv.MaxBatch = 3
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"empty list", `{"observations":[]}`, http.StatusBadRequest},
		{"missing field", `{}`, http.StatusBadRequest},
		{"unknown field", `{"wat":[]}`, http.StatusBadRequest},
		{"not an array", `{"observations":{"a":-60}}`, http.StatusBadRequest},
		{"malformed", `{"observations":[`, http.StatusBadRequest},
		{"bad element", `{"observations":["nope"]}`, http.StatusBadRequest},
		{"over cap", `{"observations":[{"a":-60},{"a":-60},{"a":-60},{"a":-60}]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, _ := postJSON(t, f.ts.URL+"/locate/batch", []byte(c.body))
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	resp, err := http.Get(f.ts.URL + "/locate/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /locate/batch: %d", resp.StatusCode)
	}
}

// slowFilter stalls inside Update, modelling a heavyweight per-client
// filter. It also counts concurrent entries so tests can prove
// same-client serialization survived the per-client locking.
type slowFilter struct {
	delay   time.Duration
	active  *atomic.Int32
	maxSeen *atomic.Int32
}

func (s slowFilter) Update(meas geom.Point) geom.Point {
	n := s.active.Add(1)
	for {
		old := s.maxSeen.Load()
		if n <= old || s.maxSeen.CompareAndSwap(old, n) {
			break
		}
	}
	time.Sleep(s.delay)
	s.active.Add(-1)
	return meas
}
func (s slowFilter) Reset()       {}
func (s slowFilter) Name() string { return "slow" }

// TestTrackClientsNotSerialized is the regression test for the old
// global tracker mutex: with per-client locks, eight clients whose
// filter updates each stall 20ms must overlap instead of queueing
// behind one another. The serial schedule costs ≥ 8×3×20ms = 480ms;
// the test demands well under half that, which only concurrent filter
// updates can deliver (sleeps need no CPU, so this holds on any
// machine).
func TestTrackClientsNotSerialized(t *testing.T) {
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 43)
	coll := sc.CaptureCollection(grid, 20)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var active, maxSeen atomic.Int32
	srv, err := New(&core.Service{DB: db, Locator: loc, Names: grid}, func() filter.PositionFilter {
		return slowFilter{delay: 20 * time.Millisecond, active: &active, maxSeen: &maxSeen}
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	recs := sc.Capture(geom.Pt(25, 20), 10, 0)
	rows := make([]map[string]any, 0, len(recs))
	for _, r := range recs {
		rows = append(rows, map[string]any{"time_millis": r.TimeMillis, "bssid": r.BSSID, "rssi": r.RSSI})
	}
	body, err := json.Marshal(map[string]any{"records": rows})
	if err != nil {
		t.Fatal(err)
	}

	const clients, steps = 8, 3
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/track/slow-%d", ts.URL, c)
			for i := 0; i < steps; i++ {
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	serial := clients * steps * 20 * time.Millisecond
	if elapsed > serial/2 {
		t.Errorf("8 slow clients took %v — over half the serial schedule (%v); /track is serializing across clients", elapsed, serial)
	}
	if maxSeen.Load() < 2 {
		t.Error("filter updates never overlapped across clients")
	}
	if srv.ActiveTracks() != clients {
		t.Errorf("%d tracks", srv.ActiveTracks())
	}
}

// TestTrackSameClientStillSerialized proves the per-client lock kept
// the other half of the contract: one client's stateful filter never
// sees concurrent updates.
func TestTrackSameClientStillSerialized(t *testing.T) {
	f := newFixture(t)
	var active, maxSeen atomic.Int32
	f.srv.newFilter = func() filter.PositionFilter {
		return slowFilter{delay: 5 * time.Millisecond, active: &active, maxSeen: &maxSeen}
	}
	body := f.observationBody(t, geom.Pt(25, 20))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(f.ts.URL+"/track/one-client", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got > 1 {
		t.Errorf("same-client filter updates overlapped (%d concurrent)", got)
	}
}

// TestTrackDeleteDuringPosts races deletes against posts for the same
// client under -race: no panic, no lost server, and the track either
// exists or not at the end — never a corrupt in-between.
func TestTrackDeleteDuringPosts(t *testing.T) {
	f := newFixture(t)
	body := f.observationBody(t, geom.Pt(25, 20))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(f.ts.URL+"/track/flappy", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			req, _ := http.NewRequest(http.MethodDelete, f.ts.URL+"/track/flappy", nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	if n := f.srv.ActiveTracks(); n > 1 {
		t.Errorf("%d tracks for one client", n)
	}
}

// TestDecodeFastSlowParity pins the hand-rolled batch scanner against
// the encoding/json walk: on every body the fast path accepts, both
// must produce identical observations; bodies with JSON the fast path
// cannot handle must be declined (ok=false), not misparsed.
func TestDecodeFastSlowParity(t *testing.T) {
	cases := []struct {
		name     string
		body     string
		wantFast bool // fast path should handle it itself
	}{
		{"canonical", `{"observations":[{"aa:bb":-61.5,"cc:dd":-70}]}`, true},
		{"whitespace", " {\n\t\"observations\" : [ { \"aa:bb\" : -61.5 , \"cc:dd\" : -70 } , { \"ee:ff\" : -40 } ]\n} ", true},
		{"exponents", `{"observations":[{"aa:bb":-6.15e1,"cc:dd":-7E1}]}`, true},
		{"integers", `{"observations":[{"aa:bb":-61}]}`, true},
		{"empty obs object", `{"observations":[{}]}`, true},
		{"empty list", `{"observations":[]}`, true},
		{"many", `{"observations":[{"a":-1},{"b":-2},{"c":-3}]}`, true},
		{"escaped key", `{"observations":[{"aa\u003abb":-61.5}]}`, false},
		{"null value", `{"observations":[{"aa:bb":null}]}`, false},
		{"string value", `{"observations":[{"aa:bb":"-61"}]}`, false},
		{"trailing comma in obs", `{"observations":[{"aa:bb":-61,}]}`, false},
		{"trailing comma in list", `{"observations":[{"aa:bb":-61},]}`, false},
		{"trailing garbage", `{"observations":[]} nope`, false},
		{"wrong key", `{"wat":[]}`, false},
		{"not an object", `[]`, false},
	}
	for _, c := range cases {
		fast := &batchArena{keys: map[string]string{}}
		fast.body.WriteString(c.body)
		fn, ferr, ok := fast.decodeFast(100)
		if ok != c.wantFast {
			t.Errorf("%s: fast ok=%v, want %v", c.name, ok, c.wantFast)
			continue
		}
		if !ok || ferr != nil {
			continue
		}
		slow := &batchArena{keys: map[string]string{}}
		slow.body.WriteString(c.body)
		sn, serr := slow.decodeSlow(100)
		if serr != nil {
			t.Errorf("%s: fast accepted what slow rejects: %v", c.name, serr)
			continue
		}
		if fn != sn {
			t.Errorf("%s: fast %d observations, slow %d", c.name, fn, sn)
			continue
		}
		for i := 0; i < fn; i++ {
			fo, so := fast.obs[i], slow.obs[i]
			if len(fo) != len(so) {
				t.Errorf("%s obs %d: %v vs %v", c.name, i, fo, so)
				continue
			}
			for k, v := range so {
				if fo[k] != v {
					t.Errorf("%s obs %d key %s: %v vs %v", c.name, i, k, fo[k], v)
				}
			}
		}
	}
}

// TestDecodeFastCap checks errBatchTooLarge fires from the fast path
// with the same boundary as the slow one.
func TestDecodeFastCap(t *testing.T) {
	body := `{"observations":[{"a":-1},{"b":-2},{"c":-3}]}`
	for _, max := range []int{2, 3} {
		fast := &batchArena{keys: map[string]string{}}
		fast.body.WriteString(body)
		n, err, ok := fast.decodeFast(max)
		if !ok {
			t.Fatalf("max=%d: fast path declined canonical body", max)
		}
		slow := &batchArena{keys: map[string]string{}}
		slow.body.WriteString(body)
		sn, serr := slow.decodeSlow(max)
		if (err == nil) != (serr == nil) || (err != nil && !errors.Is(serr, errBatchTooLarge)) {
			t.Fatalf("max=%d: fast err %v, slow err %v", max, err, serr)
		}
		if err == nil && n != sn {
			t.Fatalf("max=%d: %d vs %d", max, n, sn)
		}
	}
}
