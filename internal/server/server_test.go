package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

type fixture struct {
	srv  *Server
	ts   *httptest.Server
	scen sim.Scenario
	sc   *sim.Scanner
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 41)
	coll := sc.CaptureCollection(grid, 20)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svc := &core.Service{DB: db, Locator: loc, Names: grid}
	srv, err := New(svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &fixture{srv: srv, ts: ts, scen: scen, sc: sc}
}

// observationBody builds a /locate request body from a live capture.
func (f *fixture) observationBody(t *testing.T, p geom.Point) []byte {
	t.Helper()
	recs := f.sc.Capture(p, 10, 0)
	req := map[string]any{"records": []map[string]any{}}
	var rows []map[string]any
	for _, r := range recs {
		rows = append(rows, map[string]any{
			"time_millis": r.TimeMillis, "bssid": r.BSSID, "rssi": r.RSSI,
		})
	}
	req["records"] = rows
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil service accepted")
	}
}

func TestHealthz(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	if body["status"] != "ok" || body["locations"].(float64) != 30 {
		t.Errorf("body %v", body)
	}
}

func TestAlgorithmsAndLocations(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.ts.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	var algos []string
	json.NewDecoder(resp.Body).Decode(&algos)
	resp.Body.Close()
	if len(algos) != len(core.Algorithms()) {
		t.Errorf("algorithms %v", algos)
	}
	resp, err = http.Get(f.ts.URL + "/locations")
	if err != nil {
		t.Fatal(err)
	}
	var locs []map[string]any
	json.NewDecoder(resp.Body).Decode(&locs)
	resp.Body.Close()
	if len(locs) != 30 {
		t.Errorf("%d locations", len(locs))
	}
}

func TestLocateWithRecords(t *testing.T) {
	f := newFixture(t)
	target := geom.Pt(25, 20)
	resp, body := postJSON(t, f.ts.URL+"/locate", f.observationBody(t, target))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	// This test checks the HTTP plumbing, not accuracy: the estimate
	// only needs to land inside the house.
	x, y := body["x"].(float64), body["y"].(float64)
	if !f.scen.Outline.Contains(geom.Pt(x, y)) {
		t.Errorf("estimate (%v, %v) outside the house", x, y)
	}
	if body["location"] == "" || body["nearest_name"] == "" {
		t.Errorf("symbolic fields missing: %v", body)
	}
	if body["algorithm"] != "probabilistic-ml" {
		t.Errorf("algorithm %v", body["algorithm"])
	}
	if _, ok := body["confidence_radius_ft"]; !ok {
		t.Error("no confidence radius")
	}
}

func TestLocateWithAveragedObservation(t *testing.T) {
	f := newFixture(t)
	obs := map[string]float64{}
	for _, ap := range f.scen.APs {
		obs[ap.BSSID] = -60
	}
	b, _ := json.Marshal(map[string]any{"observation": obs})
	resp, _ := postJSON(t, f.ts.URL+"/locate", b)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestLocateErrors(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"both fields", `{"observation":{"a":-60},"records":[{"bssid":"a","rssi":-60}]}`, http.StatusBadRequest},
		{"unknown field", `{"wat":1}`, http.StatusBadRequest},
		{"malformed", `{`, http.StatusBadRequest},
		{"no overlap", `{"observation":{"gh:os:t":-60}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, _ := postJSON(t, f.ts.URL+"/locate", []byte(c.body))
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// Wrong method.
	resp, err := http.Get(f.ts.URL + "/locate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /locate: %d", resp.StatusCode)
	}
}

func TestTrackLifecycle(t *testing.T) {
	f := newFixture(t)
	// A client walks; its track smooths.
	for i := 0; i < 5; i++ {
		p := geom.Pt(10+float64(i)*2, 20)
		resp, body := postJSON(t, f.ts.URL+"/track/phone-1", f.observationBody(t, p))
		if resp.StatusCode != 200 {
			t.Fatalf("step %d: %d %v", i, resp.StatusCode, body)
		}
	}
	if f.srv.ActiveTracks() != 1 {
		t.Errorf("%d active tracks", f.srv.ActiveTracks())
	}
	// A second client is independent.
	postJSON(t, f.ts.URL+"/track/phone-2", f.observationBody(t, geom.Pt(40, 30)))
	if f.srv.ActiveTracks() != 2 {
		t.Errorf("%d active tracks", f.srv.ActiveTracks())
	}
	// Forget the first.
	req, _ := http.NewRequest(http.MethodDelete, f.ts.URL+"/track/phone-1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || f.srv.ActiveTracks() != 1 {
		t.Errorf("delete: %d, tracks %d", resp.StatusCode, f.srv.ActiveTracks())
	}
	// Deleting again 404s.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: %d", resp.StatusCode)
	}
}

func TestTrackBadPaths(t *testing.T) {
	f := newFixture(t)
	resp, _ := postJSON(t, f.ts.URL+"/track/", []byte(`{}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty client: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, f.ts.URL+"/track/a/b", []byte(`{}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nested client: %d", resp.StatusCode)
	}
	// Unsupported method on /track.
	req, _ := http.NewRequest(http.MethodPut, f.ts.URL+"/track/x", strings.NewReader("{}"))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT: %d", r2.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	f := newFixture(t)
	// Bodies are prepared on the test goroutine: t.Fatal is not legal
	// inside the workers.
	bodies := make([][]byte, 8)
	for c := range bodies {
		bodies[c] = f.observationBody(t, geom.Pt(float64(5+c*5), 20))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", c)
			body := bodies[c]
			for i := 0; i < 5; i++ {
				resp, err := http.Post(f.ts.URL+"/track/"+client, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d", client, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if f.srv.ActiveTracks() != 8 {
		t.Errorf("%d tracks", f.srv.ActiveTracks())
	}
}
