package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/ingest"
	"indoorloc/internal/locmap"
	"indoorloc/internal/trainingdb"
)

// gridDB builds a synthetic database whose entry names encode their
// positions — "p_X_Y" at (X, Y) — so a response's ⟨name, position⟩
// pair is checkable for consistency by construction.
func gridDB(n int) *trainingdb.DB {
	db := &trainingdb.DB{Entries: make(map[string]*trainingdb.Entry)}
	for i := 0; i < n; i++ {
		x, y := (i%5)*10, (i/5)*10
		name := fmt.Sprintf("p_%d_%d", x, y)
		e := &trainingdb.Entry{Name: name, Pos: geom.Point{X: float64(x), Y: float64(y)}, PerAP: map[string]*trainingdb.APStats{}}
		for ap := 0; ap < 3; ap++ {
			s := &trainingdb.APStats{BSSID: fmt.Sprintf("ap%d", ap)}
			for k := 0; k < 4; k++ {
				s.AddSample(-45 - float64(i%13) - 2*float64(ap) - float64(k%2))
			}
			e.PerAP[s.BSSID] = s
		}
		db.Entries[name] = e
	}
	db.BSSIDs = []string{"ap0", "ap1", "ap2"}
	return db
}

// gridRebuilder mirrors locserved's rebuild: probabilistic locator and
// a name map regenerated from the entry set, so NearestName always
// resolves against the same world the estimate came from.
func gridRebuilder(db *trainingdb.DB) (*core.Service, error) {
	locator, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		return nil, err
	}
	names := locmap.New()
	for _, name := range db.Names() {
		if err := names.Add(name, db.Entries[name].Pos); err != nil {
			return nil, err
		}
	}
	return &core.Service{DB: db, Locator: locator, Names: names}, nil
}

type liveFixture struct {
	mgr *ingest.Manager
	srv *Server
	ts  *httptest.Server
}

func newLiveFixture(t *testing.T, cfg ingest.Config) *liveFixture {
	t.Helper()
	if cfg.WALPath == "" {
		cfg.WALPath = filepath.Join(t.TempDir(), "reports.wal")
	}
	mgr, err := ingest.NewManager(gridDB(25), gridRebuilder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	srv, err := NewLive(mgr, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &liveFixture{mgr: mgr, srv: srv, ts: ts}
}

func TestNewLiveValidation(t *testing.T) {
	if _, err := NewLive(nil, nil); err == nil {
		t.Error("nil manager accepted")
	}
}

func TestTrainReportSingleAndBatch(t *testing.T) {
	f := newLiveFixture(t, ingest.Config{FlushReports: 1, FlushInterval: time.Hour})
	resp, body := postJSON(t, f.ts.URL+"/train/report",
		[]byte(`{"name":"p_0_0","observation":{"ap0":-44.5}}`))
	if resp.StatusCode != http.StatusAccepted || body["accepted"].(float64) != 1 {
		t.Fatalf("single: %d %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, f.ts.URL+"/train/report",
		[]byte(`{"reports":[{"name":"p_0_0","observation":{"ap0":-45}},{"pos":{"x":3,"y":1},"observation":{"ap1":-50}}]}`))
	if resp.StatusCode != http.StatusAccepted || body["accepted"].(float64) != 2 {
		t.Fatalf("batch: %d %v", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.mgr.Stats().Folded < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := f.mgr.Stats(); st.Folded != 3 {
		t.Fatalf("folded %d want 3 (stats %+v)", st.Folded, st)
	}
	// The folded samples show up in the served snapshot.
	db := f.srv.Snapshot().Service.DB
	if s := db.Entries["p_0_0"].PerAP["ap0"]; s.N != 6 {
		t.Errorf("p_0_0/ap0 N=%d want 6", s.N)
	}

	for _, bad := range []string{
		`{"observation":{"ap0":-44.5}}`, // no name or pos
		`{"name":"p_0_0"}`,              // no observation
		`{"name":"p_0_0","observation":{"ap0":-44.5},"reports":[{"name":"x","observation":{"ap0":-1}}]}`, // both forms
		`{"reports":[]}`, // empty batch
		`{"name":"p_0_0","observation":{"ap0":5}}`, // RSSI out of range
		`not json`,
	} {
		resp, _ := postJSON(t, f.ts.URL+"/train/report", []byte(bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad body %s: status %d want 400", bad, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(f.ts.URL + "/train/report"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /train/report: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

func TestTrainReportBackpressure429(t *testing.T) {
	f := newLiveFixture(t, ingest.Config{
		QueueDepth: 2, FlushReports: 1 << 30, FlushInterval: time.Hour,
		RetryAfter: 3 * time.Second,
	})
	// A batch larger than the whole queue is deterministically refused.
	var reports []map[string]any
	for i := 0; i < 3; i++ {
		reports = append(reports, map[string]any{"name": "p_0_0", "observation": map[string]float64{"ap0": -50}})
	}
	body, _ := json.Marshal(map[string]any{"reports": reports})
	resp, out := postJSON(t, f.ts.URL+"/train/report", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429 (%v)", resp.StatusCode, out)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q want \"3\"", got)
	}
}

func TestHealthzStaticMetadata(t *testing.T) {
	f := newFixture(t)
	resp, body := getJSON(t, f.ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if body["status"] != "ok" {
		t.Errorf("status field %v", body["status"])
	}
	if _, ok := body["generation"]; !ok {
		t.Error("no generation in static healthz")
	}
	if _, ok := body["built_at"]; !ok {
		t.Error("no built_at in static healthz")
	}
	if body["aps"].(float64) <= 0 || body["locations"].(float64) != 30 {
		t.Errorf("counts %v / %v", body["aps"], body["locations"])
	}
	if _, ok := body["ingest"]; ok {
		t.Error("static healthz carries ingest counters")
	}
}

func TestHealthzLiveMetadata(t *testing.T) {
	f := newLiveFixture(t, ingest.Config{FlushReports: 1, FlushInterval: time.Hour})
	gen0 := f.srv.Snapshot().Generation
	resp, body := postJSON(t, f.ts.URL+"/train/report",
		[]byte(`{"name":"p_10_10","observation":{"ap0":-47}}`))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.mgr.Stats().Swaps < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, body = getJSON(t, f.ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if gen := uint64(body["generation"].(float64)); gen <= gen0 {
		t.Errorf("generation %d did not advance past %d", gen, gen0)
	}
	if _, ok := body["last_swap"]; !ok {
		t.Error("no last_swap after a swap")
	}
	ing, ok := body["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("no ingest counters: %v", body)
	}
	if ing["accepted"].(float64) != 1 || ing["folded"].(float64) != 1 {
		t.Errorf("ingest counters %v", ing)
	}
	if ing["queued"].(float64) != 0 {
		t.Errorf("queued %v want 0", ing["queued"])
	}
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestLocateBatchConsistentUnderIngest is the torn-read hammer: many
// clients pound /locate/batch while a writer streams training reports
// and the compactor swaps snapshots on every fold. Entry names encode
// their positions and the name map is rebuilt per snapshot, so any
// answer mixing two snapshots would betray itself: the location name
// would not match the coordinates, or the nearest name (resolved from
// the same snapshot's map) would not be the location itself. Run under
// -race this also proves the swap path publishes safely.
func TestLocateBatchConsistentUnderIngest(t *testing.T) {
	f := newLiveFixture(t, ingest.Config{FlushReports: 1, FlushInterval: time.Millisecond})

	obsBatch := func() []byte {
		var obs []map[string]float64
		for i := 0; i < 8; i++ {
			obs = append(obs, map[string]float64{
				"ap0": -45 - float64(i), "ap1": -50 - float64(i%7), "ap2": -52,
			})
		}
		b, _ := json.Marshal(map[string]any{"observations": obs})
		return b
	}()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	// Writer: found new entries (names still encode positions) and
	// reinforce old ones, forcing constant generation churn.
	writer.Add(1)
	go func() {
		defer writer.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			x, y := 100+i, 100+2*i
			report := map[string]any{
				"name": fmt.Sprintf("p_%d_%d", x, y),
				"pos":  map[string]float64{"x": float64(x), "y": float64(y)},
				"observation": map[string]float64{
					"ap0": -60 - float64(i%20), fmt.Sprintf("ap%d", i%5): -70,
				},
			}
			b, _ := json.Marshal(report)
			resp, err := http.Post(f.ts.URL+"/train/report", "application/json", bytes.NewReader(b))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()

	var readers sync.WaitGroup
	for c := 0; c < 4; c++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for n := 0; n < 50; n++ {
				resp, err := http.Post(f.ts.URL+"/locate/batch", "application/json", bytes.NewReader(obsBatch))
				if err != nil {
					t.Error(err)
					return
				}
				var out struct {
					Results []struct {
						X        float64 `json:"x"`
						Y        float64 `json:"y"`
						Location string  `json:"location"`
						Nearest  string  `json:"nearest_name"`
						Error    string  `json:"error"`
					} `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range out.Results {
					if r.Error != "" {
						t.Errorf("locate error under ingest: %s", r.Error)
						continue
					}
					var x, y int
					if _, err := fmt.Sscanf(r.Location, "p_%d_%d", &x, &y); err != nil {
						t.Errorf("unparseable location %q", r.Location)
						continue
					}
					if float64(x) != r.X || float64(y) != r.Y {
						t.Errorf("torn pair: location %q at (%g, %g)", r.Location, r.X, r.Y)
					}
					if r.Nearest != r.Location {
						t.Errorf("torn snapshot: location %q but nearest %q", r.Location, r.Nearest)
					}
				}
			}
		}()
	}
	// Readers run to completion against live churn, then the writer is
	// released.
	readers.Wait()
	close(stop)
	writer.Wait()
	if f.mgr.Stats().Swaps == 0 {
		t.Error("no snapshot swaps happened; the hammer tested nothing")
	}
}
