// Package server exposes a trained location service over HTTP — the
// deployment shape the paper's motivating applications assume: clients
// (call routers, conference-material servers, surveillance consoles)
// ask "where is this signal vector?" over the network.
//
// # API
//
//	GET  /healthz            → 200 {"status":"ok", ...snapshot metadata...}
//	GET  /algorithms         → the registry names
//	GET  /locations          → the training locations and coordinates
//	GET  /metrics            → Prometheus text exposition (latency
//	                           histograms, route/status counters, gauges)
//	POST /locate             → localize one observation
//	POST /locate/batch       → localize many observations in one call
//	POST /track/{client}     → stateful tracking: filtered per client
//	DELETE /track/{client}   → forget a client's track
//	POST /train/report       → live training: submit fingerprint reports
//
// Requests enter through a purpose-built static router (router.go),
// not http.ServeMux: exact-match dispatch plus the one /track/ prefix
// route, a fixed middleware chain (panic recovery, request-id,
// per-route body/path limits, optional per-route timeout), and an
// always-on metrics layer — all of it adding zero allocations per
// request on the hot path. Unknown paths, unknown /track/ subpaths,
// //-doubled and dot-segment paths answer a uniform JSON 404; method
// mismatches answer 405 with an Allow header; oversized bodies 413;
// oversized paths 414.
//
// /locate accepts either an averaged observation
//
//	{"observation": {"aa:bb:...": -61.5, ...}}
//
// or raw wi-scan records
//
//	{"records": [{"time_millis":1, "bssid":"aa:bb", "rssi":-61}, ...]}
//
// and returns the estimate, the symbolic name, and a confidence
// radius.
//
// /locate/batch accepts many averaged observations at once
//
//	{"observations": [{"aa:bb:...": -61.5, ...}, ...]}
//
// and returns one result per observation in input order; a result is
// either the /locate answer shape or {"error": "..."} — one bad
// observation never fails its batchmates. The batch path is the
// high-throughput shape of the service: the fan-out feeds the shared
// scoring pool directly and the request runs out of a pooled arena
// (decode buffers, observation maps, response encoder), so the
// per-observation allocation cost is a small constant instead of a
// full request's worth of garbage. All handlers are safe for
// concurrent use.
//
// # Consistency model
//
// Handlers answer from an immutable core.Snapshot loaded once per
// request from a core.SnapshotRegistry (one atomic pointer load).
// A static server (New) wraps its service in a forever-current
// snapshot; a live server (NewLive) reads whatever snapshot the ingest
// compactor last published. Because the estimate, the symbolic name
// and the room all resolve against the one snapshot the request
// loaded, a hot swap mid-request can never produce a torn answer —
// in-flight requests finish on the old world, new requests see the new
// one.
//
// /train/report accepts a single report
//
//	{"name":"room D22", "observation":{"aa:bb:...":-61.5, ...}}
//	{"pos":{"x":12.5,"y":40}, "observation":{...}}
//
// or a batch {"reports":[...]}; accepted reports are journaled to the
// write-ahead log before the 202 acknowledgement. When the bounded
// ingest queue is full the server answers 429 with a Retry-After
// header — explicit backpressure instead of unbounded buffering.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/filter"
	"indoorloc/internal/ingest"
	"indoorloc/internal/localize"
	"indoorloc/internal/metrics"
	"indoorloc/internal/repl"
	"indoorloc/internal/track"
	"indoorloc/internal/venue"
	"indoorloc/internal/wiscan"
)

// DefaultMaxBatch is the observation cap New sets on /locate/batch.
const DefaultMaxBatch = 4096

// maxBatchBody bounds the /locate/batch request body. A full
// DefaultMaxBatch of dense observations is well under a megabyte;
// 8 MiB leaves generous headroom without letting one client pin
// arbitrary memory.
const maxBatchBody = 8 << 20

// Server wraps a trained location service as an http.Handler. It
// serves every request from the snapshot current at the request's
// start, so a live hot-swap never tears an in-flight answer.
type Server struct {
	reg *core.SnapshotRegistry
	rt  *router
	// alog is the ring-buffer access logger; nil when not configured.
	alog *accessLogger
	// ing is the live training pipeline; nil for a static server (no
	// /train/report endpoint, static /healthz counters).
	ing *ingest.Manager
	// venues is the multi-tenant registry; nil for a single-venue
	// server. When set, reg and ing are nil and every serving route
	// resolves its venue from the path (or the registry default).
	venues *venue.Registry
	// follower is the replication follower this server reads from; nil
	// unless built with NewFollower. A follower server is read-only:
	// /train/report answers 409 venue_frozen, and /healthz + /metrics
	// carry the replication lag gauges.
	follower *repl.Follower
	// replSrc is the trainer-side replication source; nil unless
	// WithReplicationSource mounted the /v1/replicate endpoints.
	replSrc *repl.Source
	// started stamps Close-less uptime for the /metrics gauge.
	started time.Time

	// MaxBatch caps the observations accepted by one /locate/batch
	// request (larger batches are refused with 413). New sets
	// DefaultMaxBatch; adjust before serving.
	MaxBatch int

	// trackers maps client → *clientTrack. Each client carries its own
	// lock, so one slow client's filter update never serializes the
	// others' /track traffic.
	trackers sync.Map
	// newFilter builds the per-client tracking filter.
	newFilter func() filter.PositionFilter
}

// clientTrack is one client's tracking state plus the lock that
// serializes updates to it. Filters are stateful and order-dependent,
// so same-client requests still serialize — but only with each other.
type clientTrack struct {
	mu sync.Mutex
	tr *track.Tracker
}

// Option tunes the serving front end at construction.
type Option func(*serverOptions)

type serverOptions struct {
	routeTimeout  time.Duration
	maxBody       int64
	accessLog     io.Writer
	accessLogRing int
	noMetrics     bool
	replSrc       *repl.Source
}

// WithRouteTimeout puts every route under a deadline: a handler that
// overruns answers 503. The timeout guard buffers the response and
// allocates per request — bounded tail latency traded against the
// hot path's zero-allocation property. Zero disables (the default).
func WithRouteTimeout(d time.Duration) Option {
	return func(o *serverOptions) { o.routeTimeout = d }
}

// WithMaxBody overrides every route's request-body cap (bytes).
// Zero keeps the per-route defaults (1 MiB single-observation
// endpoints, 8 MiB batch and training endpoints).
func WithMaxBody(n int64) Option {
	return func(o *serverOptions) { o.maxBody = n }
}

// WithoutMetrics drops the GET /metrics endpoint (it answers 404 like
// any unknown path). Recording still happens — Metrics() exposes the
// registry — only the HTTP exposition is withheld, for deployments
// that must not serve observability on the same port.
func WithoutMetrics() Option {
	return func(o *serverOptions) { o.noMetrics = true }
}

// WithAccessLog streams one line per request into w through the
// lock-free ring buffer (drop-oldest under pressure; dropped counts
// are exported at /metrics). w is written by exactly one background
// goroutine; if it implements io.Closer, Server.Close closes it.
func WithAccessLog(w io.Writer) Option {
	return func(o *serverOptions) { o.accessLog = w }
}

// WithAccessLogRing sizes the access-log ring (rounded up to a power
// of two). Only meaningful with WithAccessLog.
func WithAccessLogRing(n int) Option {
	return func(o *serverOptions) { o.accessLogRing = n }
}

// WithReplicationSource mounts the trainer-side replication endpoints
// (GET /v1/replicate/snapshot, GET /v1/replicate/wal) backed by src.
// The WAL endpoint is a deliberately unbounded chunked stream, so
// both replication routes are exempt from WithRouteTimeout.
func WithReplicationSource(src *repl.Source) Option {
	return func(o *serverOptions) { o.replSrc = src }
}

// New builds a static server over a trained service: the service is
// wrapped as the registry's one forever-current snapshot. filterFactory
// supplies the per-client tracking filter for /track; nil uses a
// Kalman filter with defaults.
func New(svc *core.Service, filterFactory func() filter.PositionFilter, opts ...Option) (*Server, error) {
	reg, err := core.StaticSnapshot(svc)
	if err != nil {
		return nil, errors.New("server: nil service")
	}
	return newServer(reg, nil, nil, nil, filterFactory, opts)
}

// NewLive builds a server over a live ingest pipeline: requests are
// answered from the manager's latest published snapshot, POST
// /train/report feeds the pipeline, and /healthz carries the ingest
// counters.
func NewLive(mgr *ingest.Manager, filterFactory func() filter.PositionFilter, opts ...Option) (*Server, error) {
	if mgr == nil {
		return nil, errors.New("server: nil ingest manager")
	}
	return newServer(mgr.Registry(), mgr, nil, nil, filterFactory, opts)
}

// NewFollower builds a read-only server over a started replication
// follower: requests are answered from whatever snapshot the follower
// last published (the same hot-swap consistency as a live server),
// POST /train/report answers 409 venue_frozen (this node holds no
// authority over the radio map — reports belong at the trainer), and
// /healthz + /metrics expose the replication lag and catch-up state.
func NewFollower(f *repl.Follower, filterFactory func() filter.PositionFilter, opts ...Option) (*Server, error) {
	if f == nil || f.Registry() == nil {
		return nil, errors.New("server: follower not started")
	}
	return newServer(f.Registry(), nil, nil, f, filterFactory, opts)
}

func newServer(reg *core.SnapshotRegistry, mgr *ingest.Manager, vr *venue.Registry, fol *repl.Follower, filterFactory func() filter.PositionFilter, opts []Option) (*Server, error) {
	if filterFactory == nil {
		filterFactory = func() filter.PositionFilter {
			return &filter.Kalman{Dt: 1, ProcessNoise: 0.6, MeasurementNoise: 7}
		}
	}
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{
		reg:       reg,
		ing:       mgr,
		venues:    vr,
		follower:  fol,
		replSrc:   o.replSrc,
		MaxBatch:  DefaultMaxBatch,
		newFilter: filterFactory,
		started:   time.Now(),
	}
	bodyCap := func(def int64) int64 {
		if o.maxBody > 0 {
			return o.maxBody
		}
		return def
	}
	defs := []routeDef{
		{name: "healthz", path: "/healthz", get: s.handleHealth},
		{name: "algorithms", path: "/algorithms", get: s.handleAlgorithms},
	}
	if !o.noMetrics {
		defs = append(defs, routeDef{name: "metrics", path: "/metrics", get: s.handleMetrics})
	}
	if vr != nil {
		// The versioned namespace, plus the legacy unversioned routes as
		// aliases onto the registry's default venue (the venue handlers
		// fall back to the default when the path carries no venue id).
		defs = append(defs,
			routeDef{name: "venues", path: "/v1/venues", get: s.handleVenues},
			routeDef{name: "venue_status", venue: true, path: "", get: s.handleVenueStatus},
			routeDef{name: "venue_locations", venue: true, path: "/locations", get: s.handleVenueLocations},
			routeDef{name: "venue_locate", venue: true, path: "/locate",
				post: s.handleVenueLocate, maxBody: bodyCap(defaultMaxBody)},
			routeDef{name: "venue_locate_batch", venue: true, path: "/locate/batch",
				post: s.handleVenueLocateBatch, maxBody: bodyCap(maxBatchBody)},
			routeDef{name: "venue_track", venue: true, path: "/track/", prefix: true,
				post: s.handleVenueTrackPost, del: s.handleVenueTrackDelete, maxBody: bodyCap(defaultMaxBody)},
			routeDef{name: "venue_train", venue: true, path: "/train/report",
				post: s.handleVenueTrainReport, maxBody: bodyCap(maxTrainBody)},
			routeDef{name: "locations", path: "/locations", get: s.handleVenueLocations},
			routeDef{name: "locate", path: "/locate", post: s.handleVenueLocate, maxBody: bodyCap(defaultMaxBody)},
			routeDef{name: "locate_batch", path: "/locate/batch", post: s.handleVenueLocateBatch, maxBody: bodyCap(maxBatchBody)},
			routeDef{name: "track", path: "/track/", prefix: true,
				post: s.handleVenueTrackPost, del: s.handleVenueTrackDelete, maxBody: bodyCap(defaultMaxBody)},
			routeDef{name: "train_report", path: "/train/report",
				post: s.handleVenueTrainReport, maxBody: bodyCap(maxTrainBody)},
		)
	} else {
		defs = append(defs,
			routeDef{name: "locations", path: "/locations", get: s.handleLocations},
			routeDef{name: "locate", path: "/locate", post: s.handleLocate, maxBody: bodyCap(defaultMaxBody)},
			routeDef{name: "locate_batch", path: "/locate/batch", post: s.handleLocateBatch, maxBody: bodyCap(maxBatchBody)},
			routeDef{name: "track", path: "/track/", prefix: true,
				post: s.handleTrackPost, del: s.handleTrackDelete, maxBody: bodyCap(defaultMaxBody)},
		)
		if mgr != nil {
			defs = append(defs, routeDef{name: "train_report", path: "/train/report",
				post: s.handleTrainReport, maxBody: bodyCap(maxTrainBody)})
		}
		if fol != nil {
			// The follower is read-only: the endpoint exists so clients get
			// a truthful 409 instead of a misleading 404, but reports
			// belong at the trainer.
			defs = append(defs, routeDef{name: "train_report", path: "/train/report",
				post: s.handleTrainReportFrozen, maxBody: bodyCap(maxTrainBody)})
		}
	}
	if o.replSrc != nil {
		defs = append(defs,
			routeDef{name: "replicate_snapshot", path: "/v1/replicate/snapshot", get: o.replSrc.ServeSnapshot},
			routeDef{name: "replicate_wal", path: "/v1/replicate/wal", get: o.replSrc.ServeWAL},
		)
	}
	if o.routeTimeout > 0 {
		for i := range defs {
			// The replication endpoints are streams (the WAL tail is
			// unbounded by design; the snapshot body can be large): a
			// buffered timeout guard would either kill healthy followers
			// or buffer an artifact per request.
			if strings.HasPrefix(defs[i].name, "replicate_") {
				continue
			}
			defs[i].timeout = o.routeTimeout
		}
	}
	if o.accessLog != nil {
		names := make([]string, len(defs)+1)
		for i, d := range defs {
			names[i] = d.name
		}
		names[len(defs)] = "other"
		s.alog = newAccessLogger(o.accessLog, o.accessLogRing, names)
	}
	s.rt = newRouter(defs, s.alog)
	return s, nil
}

// Close releases the server's background resources (the access-log
// drainer, when configured). The server must not serve requests after
// Close. Serving state (snapshots, trackers) needs no teardown.
func (s *Server) Close() error {
	if s.alog != nil {
		return s.alog.Close()
	}
	return nil
}

// Metrics returns the serving metrics registry — what GET /metrics
// renders. Route indexes follow Metrics().Names().
func (s *Server) Metrics() *metrics.Registry { return s.rt.metrics }

// current returns the snapshot this request serves from. Load it once
// per request; every lookup the answer needs must come from the same
// snapshot.
func (s *Server) current() *core.Snapshot { return s.reg.Current() }

// Snapshot returns the snapshot currently being served — what a
// request arriving now would answer from.
func (s *Server) Snapshot() *core.Snapshot { return s.current() }

// ServeHTTP implements http.Handler.
//
//loclint:hotpath
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.rt.ServeHTTP(w, r) }

// locateRequest is the /locate and /track request body.
type locateRequest struct {
	Observation map[string]float64 `json:"observation,omitempty"`
	Records     []recordJSON       `json:"records,omitempty"`
}

// recordJSON mirrors wiscan.Record with stable JSON names.
type recordJSON struct {
	TimeMillis int64  `json:"time_millis"`
	BSSID      string `json:"bssid"`
	SSID       string `json:"ssid,omitempty"`
	Channel    int    `json:"channel,omitempty"`
	RSSI       int    `json:"rssi"`
	Noise      int    `json:"noise,omitempty"`
}

// locateResponse is the /locate and /track response body.
type locateResponse struct {
	X                float64 `json:"x"`
	Y                float64 `json:"y"`
	Location         string  `json:"location,omitempty"`
	NearestName      string  `json:"nearest_name,omitempty"`
	Room             string  `json:"room,omitempty"`
	ConfidenceRadius float64 `json:"confidence_radius_ft"`
	Algorithm        string  `json:"algorithm"`
}

// errorResponse is every error body the service emits, from the
// routing layer down to the handlers: an envelope carrying a stable
// machine-readable code next to the human-readable message.
//
//	{"error": {"code": "venue_not_found", "message": "venue: unknown venue: \"x\""}}
//
// Clients branch on the code; the message is for humans and carries no
// stability promise. The two 404 families stay distinguishable —
// no_route (the path names no endpoint) versus venue_not_found /
// track_not_found (the endpoint exists, the resource does not).
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// The stable error codes. Add, never repurpose.
const (
	codeBadRequest       = "bad_request"
	codeNoRoute          = "no_route"
	codeVenueNotFound    = "venue_not_found"
	codeTrackNotFound    = "track_not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeBodyTooLarge     = "body_too_large"
	codeBatchTooLarge    = "batch_too_large"
	codePathTooLong      = "path_too_long"
	codeUnprocessable    = "unprocessable"
	codeQueueFull        = "queue_full"
	codeVenueFrozen      = "venue_frozen"
	codeVenueLoadFailed  = "venue_load_failed"
	codeInternal         = "internal"
	codeTimeout          = "timeout"
)

// writeJSON is the single success/error serialization point; all
// error bodies funnel through it via writeErrorCode.
//
//loclint:errenvelope
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError derives the code from the error and status; call sites
// with a more specific code use writeErrorCode directly.
func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorCode(w, status, codeFor(status, err), err)
}

//loclint:errenvelope
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: err.Error()}})
}

// codeFor maps an error (and its HTTP status) to the stable code.
//
//loclint:errenvelope
func codeFor(status int, err error) string {
	switch {
	case errors.Is(err, errNoRoute):
		return codeNoRoute
	case errors.Is(err, errMethodNotAllowed):
		return codeMethodNotAllowed
	case errors.Is(err, errPathTooLong):
		return codePathTooLong
	case errors.Is(err, errRouteTimeout):
		return codeTimeout
	case errors.Is(err, errBodyTooLarge):
		return codeBodyTooLarge
	case errors.Is(err, errBatchTooLarge):
		return codeBatchTooLarge
	case errors.Is(err, ingest.ErrQueueFull):
		return codeQueueFull
	case errors.Is(err, ingest.ErrInvalidReport):
		return codeBadRequest
	case errors.Is(err, venue.ErrUnknownVenue), errors.Is(err, venue.ErrInvalidID):
		return codeVenueNotFound
	case errors.Is(err, venue.ErrFrozen):
		return codeVenueFrozen
	}
	switch status {
	case http.StatusBadRequest:
		return codeBadRequest
	case http.StatusNotFound:
		return codeNoRoute
	case http.StatusMethodNotAllowed:
		return codeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return codeBodyTooLarge
	case http.StatusRequestURITooLong:
		return codePathTooLong
	case http.StatusUnprocessableEntity:
		return codeUnprocessable
	case http.StatusTooManyRequests:
		return codeQueueFull
	case http.StatusServiceUnavailable:
		return codeTimeout
	default:
		return codeInternal
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.venues != nil {
		st := s.venues.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"mode":   "multi-venue",
			"venues": st,
		})
		return
	}
	snap := s.current()
	svc := snap.Service
	body := map[string]any{
		"status":     "ok",
		"algorithm":  svc.Locator.Name(),
		"locations":  svc.DB.Len(),
		"aps":        len(svc.DB.BSSIDs),
		"generation": snap.Generation,
		"built_at":   snap.BuiltAt.UTC().Format(time.RFC3339Nano),
	}
	if s.ing != nil {
		st := s.ing.Stats()
		body["ingest"] = st
		if !st.LastSwap.IsZero() {
			body["last_swap"] = st.LastSwap.UTC().Format(time.RFC3339Nano)
		}
	}
	if s.follower != nil {
		body["mode"] = "follower"
		body["replication"] = s.follower.Stats()
	}
	if s.replSrc != nil {
		body["replication_source"] = s.replSrc.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, core.Algorithms())
}

func (s *Server) handleLocations(w http.ResponseWriter, r *http.Request) {
	s.locations(w, s.current().Service)
}

func (s *Server) locations(w http.ResponseWriter, svc *core.Service) {
	type loc struct {
		Name string  `json:"name"`
		X    float64 `json:"x"`
		Y    float64 `json:"y"`
	}
	db := svc.DB
	out := make([]loc, 0, db.Len())
	for _, name := range db.Names() {
		e := db.Entries[name]
		out = append(out, loc{Name: name, X: e.Pos.X, Y: e.Pos.Y})
	}
	writeJSON(w, http.StatusOK, out)
}

// parseObservation extracts the observation from a request body.
func parseObservation(r *http.Request) (localize.Observation, error) {
	var req locateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	switch {
	case len(req.Observation) > 0 && len(req.Records) > 0:
		return nil, errors.New("give observation or records, not both")
	case len(req.Observation) > 0:
		return localize.Observation(req.Observation), nil
	case len(req.Records) > 0:
		recs := make([]wiscan.Record, len(req.Records))
		for i, rj := range req.Records {
			recs[i] = wiscan.Record{
				TimeMillis: rj.TimeMillis,
				BSSID:      rj.BSSID,
				SSID:       rj.SSID,
				Channel:    rj.Channel,
				RSSI:       rj.RSSI,
				Noise:      rj.Noise,
			}
		}
		return localize.ObservationFromRecords(recs), nil
	default:
		return nil, errors.New("empty request: need observation or records")
	}
}

// statusFor maps localization errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, localize.ErrEmptyObservation),
		errors.Is(err, localize.ErrNoOverlap),
		errors.Is(err, localize.ErrTooFewAPs):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// decodeStatus maps body-decode failures: a chunked body that outgrew
// its route's cap answers 413 (the router already 413s declared
// lengths), anything else is the client's malformed JSON.
func decodeStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	s.locate(w, r, s.current().Service)
}

func (s *Server) locate(w http.ResponseWriter, r *http.Request, svc *core.Service) {
	obs, err := parseObservation(r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	res, err := svc.Locate(obs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, locateResponse{
		X:                res.Estimate.Pos.X,
		Y:                res.Estimate.Pos.Y,
		Location:         res.Estimate.Name,
		NearestName:      res.NearestName,
		Room:             res.Room,
		ConfidenceRadius: localize.ConfidenceRadius(res.Estimate, 0.9),
		Algorithm:        svc.Locator.Name(),
	})
}

// batchResponse is the /locate/batch response body. The algorithm is
// stated once; results are per observation, in input order.
type batchResponse struct {
	Algorithm string      `json:"algorithm"`
	Count     int         `json:"count"`
	Results   []batchItem `json:"results"`
}

// batchItem is one observation's answer: the /locate response fields,
// or an error string for observations that failed to localize.
type batchItem struct {
	X                float64 `json:"x"`
	Y                float64 `json:"y"`
	Location         string  `json:"location,omitempty"`
	NearestName      string  `json:"nearest_name,omitempty"`
	Room             string  `json:"room,omitempty"`
	ConfidenceRadius float64 `json:"confidence_radius_ft"`
	Error            string  `json:"error,omitempty"`
}

// errBatchTooLarge distinguishes the 413 case from plain bad input.
var errBatchTooLarge = errors.New("too many observations in batch")

// batchArena is the reusable request-scoped state of one /locate/batch
// call: the decode buffer, the observation maps (cleared and refilled
// in place), the fan-out results, the response items, and an encoder
// bound to a reusable output buffer. Pooled so a serving loop's
// per-observation allocations are the decoder's key strings and the
// scorer's candidate slice, not a fresh copy of all of this.
type batchArena struct {
	body    bytes.Buffer
	obs     []localize.Observation
	results []localize.BatchResult
	items   []batchItem
	out     bytes.Buffer
	enc     *json.Encoder
	// keys interns BSSID strings across requests: a fleet of clients
	// reports the same access points over and over, so after warm-up
	// the decoder stops allocating key strings entirely. Bounded to
	// keep a hostile client from growing it without limit.
	keys map[string]string
}

// maxInternedKeys bounds one arena's BSSID intern table.
const maxInternedKeys = 4096

var batchArenaPool = sync.Pool{New: func() any {
	a := &batchArena{keys: make(map[string]string)}
	a.enc = json.NewEncoder(&a.out)
	return a
}}

// intern returns raw as a string, reusing a previously allocated copy
// when one exists. The map lookup on a []byte key does not allocate.
func (a *batchArena) intern(raw []byte) string {
	if s, ok := a.keys[string(raw)]; ok {
		return s
	}
	s := string(raw)
	if len(a.keys) < maxInternedKeys {
		a.keys[s] = s
	}
	return s
}

// decodeObservations reads the request body into the arena and parses
// {"observations": [...]}, decoding each element into a reused
// observation map. It returns the observation count.
//
// A hand-rolled scanner handles the canonical shape — flat objects of
// plain string keys and numbers — without encoding/json's per-value
// boxing; anything it does not recognise (escaped keys, non-numeric
// values, malformed syntax) falls back to the token-based decoder,
// which produces the user-facing errors.
func (a *batchArena) decodeObservations(body io.Reader, max int) (int, error) {
	a.body.Reset()
	if _, err := a.body.ReadFrom(io.LimitReader(body, maxBatchBody+1)); err != nil {
		return 0, fmt.Errorf("reading request body: %w", err)
	}
	if a.body.Len() > maxBatchBody {
		return 0, errBatchTooLarge
	}
	if n, err, ok := a.decodeFast(max); ok {
		return n, err
	}
	return a.decodeSlow(max)
}

// skipSpace advances past JSON whitespace.
func skipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// simpleString parses a JSON string with no escapes starting at b[i]
// (which must be '"'), returning the raw bytes between the quotes.
func simpleString(b []byte, i int) (raw []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	for j := i + 1; j < len(b); j++ {
		switch {
		case b[j] == '"':
			return b[i+1 : j], j + 1, true
		case b[j] == '\\' || b[j] < 0x20:
			return nil, i, false
		}
	}
	return nil, i, false
}

// number parses a JSON number starting at b[i].
func number(b []byte, i int) (v float64, next int, ok bool) {
	j := i
	for j < len(b) {
		switch c := b[j]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			j++
		default:
			goto done
		}
	}
done:
	if j == i {
		return 0, i, false
	}
	v, err := strconv.ParseFloat(string(b[i:j]), 64)
	if err != nil {
		return 0, i, false
	}
	return v, j, true
}

// decodeFast is the allocation-lean scanner for the canonical batch
// shape. ok=false means "shape not recognised, retry with decodeSlow";
// when ok=true, n and err are the final answer.
//
//loclint:hotpath
func (a *batchArena) decodeFast(max int) (n int, err error, ok bool) {
	b := a.body.Bytes()
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return 0, nil, false
	}
	key, i, sok := simpleString(b, skipSpace(b, i+1))
	if !sok || string(key) != "observations" {
		return 0, nil, false
	}
	i = skipSpace(b, i)
	if i >= len(b) || b[i] != ':' {
		return 0, nil, false
	}
	i = skipSpace(b, i+1)
	if i >= len(b) || b[i] != '[' {
		return 0, nil, false
	}
	i = skipSpace(b, i+1)
	for i < len(b) && b[i] != ']' {
		if n >= max {
			return 0, errBatchTooLarge, true
		}
		if b[i] != '{' {
			return 0, nil, false
		}
		if n == len(a.obs) {
			a.obs = append(a.obs, make(localize.Observation, 8)) //loclint:allow hotpathalloc
		}
		m := a.obs[n]
		clear(m)
		i = skipSpace(b, i+1)
		for i < len(b) && b[i] != '}' {
			raw, j, sok := simpleString(b, i)
			if !sok {
				return 0, nil, false
			}
			j = skipSpace(b, j)
			if j >= len(b) || b[j] != ':' {
				return 0, nil, false
			}
			v, j, nok := number(b, skipSpace(b, j+1))
			if !nok {
				return 0, nil, false
			}
			m[a.intern(raw)] = v
			i = skipSpace(b, j)
			if i < len(b) && b[i] == ',' {
				i = skipSpace(b, i+1)
				if i >= len(b) || b[i] == '}' { // trailing comma
					return 0, nil, false
				}
			} else if i >= len(b) || b[i] != '}' {
				return 0, nil, false
			}
		}
		if i >= len(b) {
			return 0, nil, false
		}
		n++
		i = skipSpace(b, i+1)
		if i < len(b) && b[i] == ',' {
			i = skipSpace(b, i+1)
			if i >= len(b) || b[i] == ']' { // trailing comma
				return 0, nil, false
			}
		} else if i >= len(b) || b[i] != ']' {
			return 0, nil, false
		}
	}
	if i >= len(b) {
		return 0, nil, false
	}
	i = skipSpace(b, i+1) // past ']'
	if i >= len(b) || b[i] != '}' {
		return 0, nil, false
	}
	if skipSpace(b, i+1) != len(b) {
		return 0, nil, false
	}
	return n, nil, true
}

// decodeSlow walks the buffered body token by token with
// encoding/json. It accepts everything JSON allows (escaped keys,
// whitespace oddities) and is the source of the decode error messages.
func (a *batchArena) decodeSlow(max int) (int, error) {
	dec := json.NewDecoder(bytes.NewReader(a.body.Bytes()))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return 0, errors.New("bad request body: want a JSON object")
	}
	n := 0
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return 0, fmt.Errorf("bad request body: %w", err)
		}
		key, _ := keyTok.(string)
		if key != "observations" {
			return 0, fmt.Errorf("bad request body: unknown field %q", key)
		}
		if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
			return 0, errors.New("bad request body: observations must be an array")
		}
		for dec.More() {
			if n >= max {
				return 0, errBatchTooLarge
			}
			if n == len(a.obs) {
				a.obs = append(a.obs, make(localize.Observation, 8))
			}
			m := a.obs[n]
			clear(m)
			if err := dec.Decode(&m); err != nil {
				return 0, fmt.Errorf("bad observation %d: %w", n, err)
			}
			n++
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			return 0, fmt.Errorf("bad request body: %w", err)
		}
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return 0, fmt.Errorf("bad request body: %w", err)
	}
	return n, nil
}

func (s *Server) handleLocateBatch(w http.ResponseWriter, r *http.Request) {
	// One snapshot answers the whole batch: the fan-out, the name and
	// room lookups, and the reported algorithm all come from it.
	s.locateBatch(w, r, s.current().Service)
}

func (s *Server) locateBatch(w http.ResponseWriter, r *http.Request, svc *core.Service) {
	max := s.MaxBatch
	if max <= 0 {
		max = DefaultMaxBatch
	}
	a := batchArenaPool.Get().(*batchArena)
	defer batchArenaPool.Put(a)
	n, err := a.decodeObservations(r.Body, max)
	if err != nil {
		status := decodeStatus(err)
		if errors.Is(err, errBatchTooLarge) {
			status = http.StatusRequestEntityTooLarge
			err = fmt.Errorf("%w (max %d)", err, max)
		}
		writeError(w, status, err)
		return
	}
	if n == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch: need at least one observation"))
		return
	}
	for len(a.results) < n {
		a.results = append(a.results, localize.BatchResult{})
	}
	results := a.results[:n]
	localize.BatchInto(svc.Locator, a.obs[:n], results)
	items := a.items[:0]
	for i := range results {
		var item batchItem
		if err := results[i].Err; err != nil {
			item.Error = err.Error()
		} else {
			est := results[i].Estimate
			item.X, item.Y = est.Pos.X, est.Pos.Y
			item.Location = est.Name
			item.ConfidenceRadius = localize.ConfidenceRadius(est, 0.9)
			if svc.Names != nil {
				if name, _, ok := svc.Names.Nearest(est.Pos); ok {
					item.NearestName = name
				}
			}
			for _, room := range svc.Rooms {
				if room.Poly.Contains(est.Pos) {
					item.Room = room.Name
					break
				}
			}
		}
		items = append(items, item)
	}
	a.items = items
	// Drop the candidate slices before pooling the arena so one big
	// batch does not pin its estimates across unrelated requests.
	clear(results)
	a.out.Reset()
	if err := a.enc.Encode(batchResponse{
		Algorithm: svc.Locator.Name(),
		Count:     n,
		Results:   items,
	}); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(a.out.Bytes())
}

// trackClient extracts the client id from a .../track/{client} path —
// the legacy /track/{client} and the venue tier's
// /v1/venues/{venue}/track/{client} alike. The router guarantees the
// suffix after the last /track/ is one non-empty segment — an unknown
// subpath like /track/a/b never reaches these handlers (uniform 404).
//
//loclint:hotpath
func trackClient(r *http.Request) string {
	p := r.URL.Path
	return p[strings.LastIndex(p, "/track/")+len("/track/"):]
}

func (s *Server) handleTrackDelete(w http.ResponseWriter, r *http.Request) {
	s.trackDelete(w, r, "")
}

// trackDelete forgets keyPrefix+client's tracking state. keyPrefix
// scopes the tracker table per venue ("" for a single-venue server).
func (s *Server) trackDelete(w http.ResponseWriter, r *http.Request, keyPrefix string) {
	client := trackClient(r)
	key := client
	if keyPrefix != "" {
		key = keyPrefix + client
	}
	if _, existed := s.trackers.LoadAndDelete(key); !existed {
		writeErrorCode(w, http.StatusNotFound, codeTrackNotFound, fmt.Errorf("no track for %q", client))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "forgotten"})
}

func (s *Server) handleTrackPost(w http.ResponseWriter, r *http.Request) {
	s.trackPost(w, r, s.current().Service, "")
}

func (s *Server) trackPost(w http.ResponseWriter, r *http.Request, svc *core.Service, keyPrefix string) {
	client := trackClient(r)
	key := client
	if keyPrefix != "" {
		key = keyPrefix + client
	}
	obs, err := parseObservation(r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	est, err := svc.Locator.Locate(obs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// Per-client filter state is serialised under the client's own
	// lock; the heavy Locate above ran outside it, and other
	// clients' updates proceed in parallel. A DELETE racing this
	// update may orphan the slot after we fetched it — the update
	// then lands on state the next POST will rebuild, which is the
	// same outcome as the DELETE arriving a moment later.
	slotAny, ok := s.trackers.Load(key)
	if !ok {
		slotAny, _ = s.trackers.LoadOrStore(key, &clientTrack{})
	}
	slot := slotAny.(*clientTrack)
	slot.mu.Lock()
	if slot.tr == nil {
		tr, err := track.New(svc.Locator, s.newFilter())
		if err != nil {
			slot.mu.Unlock()
			s.trackers.Delete(key)
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		slot.tr = tr
	}
	pos := slot.tr.Filter.Update(est.Pos)
	slot.mu.Unlock()
	resp := locateResponse{
		X:                pos.X,
		Y:                pos.Y,
		Location:         est.Name,
		ConfidenceRadius: localize.ConfidenceRadius(est, 0.9),
		Algorithm:        svc.Locator.Name(),
	}
	if svc.Names != nil {
		if name, _, ok := svc.Names.Nearest(pos); ok {
			resp.NearestName = name
		}
	}
	for _, room := range svc.Rooms {
		if room.Poly.Contains(pos) {
			resp.Room = room.Name
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// metricsBufPool holds the scrape render buffers. One scrape borrows
// one buffer; concurrent scrapes each get their own.
var metricsBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// handleMetrics renders the Prometheus exposition. All rendering
// happens here, off the request hot path; the serving cost of the
// metrics layer is the atomic adds in router.finish.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := metricsBufPool.Get().(*bytes.Buffer)
	defer metricsBufPool.Put(buf)
	buf.Reset()
	gauges := make([]metrics.Gauge, 0, 16)
	if s.venues != nil {
		st := s.venues.Stats()
		gauges = append(gauges,
			metrics.Gauge{Name: "indoorloc_venues_loaded",
				Help: "Venues resident in memory.", Value: float64(st.Loaded)},
			metrics.Gauge{Name: "indoorloc_venues_resident_bytes",
				Help: "Accounted bytes of resident venues.", Value: float64(st.ResidentBytes)},
			metrics.Gauge{Name: "indoorloc_venues_budget_bytes",
				Help: "Configured venue memory budget (0 = unbounded).", Value: float64(st.MaxBytes)},
			metrics.Gauge{Name: "indoorloc_venue_loads_total", Counter: true,
				Help: "Completed venue cold loads.", Value: float64(st.Loads)},
			metrics.Gauge{Name: "indoorloc_venue_load_errors_total", Counter: true,
				Help: "Failed venue cold loads.", Value: float64(st.LoadErrors)},
			metrics.Gauge{Name: "indoorloc_venue_evictions_total", Counter: true,
				Help: "Venues evicted by the LRU memory budget.", Value: float64(st.Evictions)},
			metrics.Gauge{Name: "indoorloc_venue_cold_load_p50_seconds",
				Help: "Median venue cold-load latency.", Value: st.ColdLoadP50.Seconds()},
			metrics.Gauge{Name: "indoorloc_venue_cold_load_p99_seconds",
				Help: "99th-percentile venue cold-load latency.", Value: st.ColdLoadP99.Seconds()},
		)
	} else {
		snap := s.current()
		gauges = append(gauges,
			metrics.Gauge{Name: "indoorloc_snapshot_generation",
				Help: "Radio-map generation of the serving snapshot.", Value: float64(snap.Generation)},
			metrics.Gauge{Name: "indoorloc_snapshot_locations",
				Help: "Training locations in the serving snapshot.", Value: float64(snap.Service.DB.Len())},
		)
	}
	gauges = append(gauges,
		metrics.Gauge{Name: "indoorloc_tracks_active",
			Help: "Clients with live tracking state.", Value: float64(s.ActiveTracks())},
		metrics.Gauge{Name: "indoorloc_uptime_seconds",
			Help: "Seconds since the server was built.", Value: time.Since(s.started).Seconds()},
		metrics.Gauge{Name: "indoorloc_http_panics_total", Counter: true,
			Help: "Handler panics recovered by the router.", Value: float64(s.rt.panics.Load())},
		metrics.Gauge{Name: "indoorloc_http_timeouts_total", Counter: true,
			Help: "Requests cut off by the per-route timeout.", Value: float64(s.rt.timeouts.Load())},
	)
	if s.alog != nil {
		gauges = append(gauges, metrics.Gauge{Name: "indoorloc_accesslog_dropped_total", Counter: true,
			Help: "Access-log entries lost to ring pressure.", Value: float64(s.alog.Dropped())})
	}
	if s.ing != nil {
		st := s.ing.Stats()
		gauges = append(gauges,
			metrics.Gauge{Name: "indoorloc_ingest_accepted_total", Counter: true,
				Help: "Reports journaled and queued.", Value: float64(st.Accepted)},
			metrics.Gauge{Name: "indoorloc_ingest_rejected_total", Counter: true,
				Help: "Reports refused with queue-full backpressure.", Value: float64(st.RejectedFull)},
			metrics.Gauge{Name: "indoorloc_ingest_folded_total", Counter: true,
				Help: "Reports folded into the master database.", Value: float64(st.Folded)},
			metrics.Gauge{Name: "indoorloc_ingest_queued",
				Help: "Accepted-but-unfolded backlog.", Value: float64(st.Queued)},
			metrics.Gauge{Name: "indoorloc_ingest_swaps_total", Counter: true,
				Help: "Published radio-map snapshots.", Value: float64(st.Swaps)},
		)
	}
	if s.follower != nil {
		st := s.follower.Stats()
		caughtUp := 0.0
		if st.State == repl.StateStreaming {
			caughtUp = 1
		}
		gauges = append(gauges,
			metrics.Gauge{Name: "indoorloc_repl_lag_seqs",
				Help: "WAL sequences the follower is behind the trainer head.", Value: float64(st.LagSeqs)},
			metrics.Gauge{Name: "indoorloc_repl_lag_bytes",
				Help: "WAL bytes the follower is behind the trainer head.", Value: float64(st.LagBytes)},
			metrics.Gauge{Name: "indoorloc_repl_lag_seconds",
				Help: "Seconds since replication last made progress (0 when caught up).", Value: st.LagSeconds},
			metrics.Gauge{Name: "indoorloc_repl_applied_seq",
				Help: "Last WAL sequence folded into the replica.", Value: float64(st.AppliedSeq)},
			metrics.Gauge{Name: "indoorloc_repl_caught_up",
				Help: "1 while streaming at the trainer head, 0 while bootstrapping, catching up or disconnected.", Value: caughtUp},
			metrics.Gauge{Name: "indoorloc_repl_bootstraps_total", Counter: true,
				Help: "Successful snapshot bootstraps.", Value: float64(st.Bootstraps)},
			metrics.Gauge{Name: "indoorloc_repl_reconnects_total", Counter: true,
				Help: "WAL stream teardowns and reconnect attempts.", Value: float64(st.Reconnects)},
			metrics.Gauge{Name: "indoorloc_repl_regressions_total", Counter: true,
				Help: "World resets: trainer epoch changes, head regressions, divergences.", Value: float64(st.Regressions)},
			metrics.Gauge{Name: "indoorloc_repl_recompiles_total", Counter: true,
				Help: "Replica recompiles triggered by trainer publishes.", Value: float64(st.Recompiles)},
		)
	}
	if s.replSrc != nil {
		st := s.replSrc.Stats()
		ready := 0.0
		if st.Ready {
			ready = 1
		}
		gauges = append(gauges,
			metrics.Gauge{Name: "indoorloc_repl_source_ready",
				Help: "1 when a bootstrap bundle is captured and servable.", Value: ready},
			metrics.Gauge{Name: "indoorloc_repl_source_generation",
				Help: "Generation of the captured bootstrap bundle.", Value: float64(st.Generation)},
			metrics.Gauge{Name: "indoorloc_repl_source_captures_total", Counter: true,
				Help: "Publish events captured as bootstrap bundles.", Value: float64(st.Captures)},
			metrics.Gauge{Name: "indoorloc_repl_source_capture_errors_total", Counter: true,
				Help: "Publish events that could not be captured.", Value: float64(st.CaptureErrors)},
		)
	}
	s.rt.metrics.WritePrometheus(buf, gauges)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// trainRequest is the /train/report body: either one report's fields
// inline or a batch under "reports".
type trainRequest struct {
	ingest.Report
	Reports []ingest.Report `json:"reports,omitempty"`
}

// maxTrainBody bounds the /train/report request body, mirroring the
// batch-locate bound.
const maxTrainBody = 8 << 20

func (s *Server) handleTrainReport(w http.ResponseWriter, r *http.Request) {
	s.trainReport(w, r, s.ing)
}

// handleTrainReportFrozen is the follower's write path: always 409.
// The same code (venue_frozen) as an artifact-backed venue — in both
// cases the node serves a radio map it has no authority to mutate.
func (s *Server) handleTrainReportFrozen(w http.ResponseWriter, r *http.Request) {
	writeErrorCode(w, http.StatusConflict, codeVenueFrozen,
		errors.New("read-only follower: submit training reports to the trainer"))
}

func (s *Server) trainReport(w http.ResponseWriter, r *http.Request, mgr *ingest.Manager) {
	var req trainRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxTrainBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	reports := req.Reports
	single := len(req.Report.Observation) > 0 || req.Report.Name != "" || req.Report.Pos != nil
	switch {
	case single && len(reports) > 0:
		writeError(w, http.StatusBadRequest, errors.New("give one report or reports, not both"))
		return
	case single:
		reports = []ingest.Report{req.Report}
	case len(reports) == 0:
		writeError(w, http.StatusBadRequest, errors.New("empty request: need a report or reports"))
		return
	}
	if err := mgr.Submit(reports...); err != nil {
		if errors.Is(err, ingest.ErrQueueFull) {
			// The backpressure contract: nothing was journaled, the
			// client should retry the whole batch after the advertised
			// backoff.
			secs := int(mgr.RetryAfter().Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		if errors.Is(err, ingest.ErrInvalidReport) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": len(reports)})
}

// ActiveTracks returns the number of clients with tracking state.
func (s *Server) ActiveTracks() int {
	n := 0
	s.trackers.Range(func(_, _ any) bool { n++; return true })
	return n
}
