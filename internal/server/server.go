// Package server exposes a trained location service over HTTP — the
// deployment shape the paper's motivating applications assume: clients
// (call routers, conference-material servers, surveillance consoles)
// ask "where is this signal vector?" over the network.
//
// # API
//
//	GET  /healthz            → 200 {"status":"ok", ...}
//	GET  /algorithms         → the registry names
//	GET  /locations          → the training locations and coordinates
//	POST /locate             → localize one observation
//	POST /track/{client}     → stateful tracking: filtered per client
//	DELETE /track/{client}   → forget a client's track
//
// /locate accepts either an averaged observation
//
//	{"observation": {"aa:bb:...": -61.5, ...}}
//
// or raw wi-scan records
//
//	{"records": [{"time_millis":1, "bssid":"aa:bb", "rssi":-61}, ...]}
//
// and returns the estimate, the symbolic name, and a confidence
// radius. All handlers are safe for concurrent use.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"indoorloc/internal/core"
	"indoorloc/internal/filter"
	"indoorloc/internal/localize"
	"indoorloc/internal/track"
	"indoorloc/internal/wiscan"
)

// Server wraps a trained core.Service as an http.Handler.
type Server struct {
	svc *core.Service
	mux *http.ServeMux

	mu       sync.Mutex
	trackers map[string]*track.Tracker
	// newFilter builds the per-client tracking filter.
	newFilter func() filter.PositionFilter
}

// New builds a server over a trained service. filterFactory supplies
// the per-client tracking filter for /track; nil uses a Kalman filter
// with defaults.
func New(svc *core.Service, filterFactory func() filter.PositionFilter) (*Server, error) {
	if svc == nil || svc.Locator == nil {
		return nil, errors.New("server: nil service")
	}
	if filterFactory == nil {
		filterFactory = func() filter.PositionFilter {
			return &filter.Kalman{Dt: 1, ProcessNoise: 0.6, MeasurementNoise: 7}
		}
	}
	s := &Server{
		svc:       svc,
		trackers:  make(map[string]*track.Tracker),
		newFilter: filterFactory,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/locations", s.handleLocations)
	mux.HandleFunc("/locate", s.handleLocate)
	mux.HandleFunc("/track/", s.handleTrack)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// locateRequest is the /locate and /track request body.
type locateRequest struct {
	Observation map[string]float64 `json:"observation,omitempty"`
	Records     []recordJSON       `json:"records,omitempty"`
}

// recordJSON mirrors wiscan.Record with stable JSON names.
type recordJSON struct {
	TimeMillis int64  `json:"time_millis"`
	BSSID      string `json:"bssid"`
	SSID       string `json:"ssid,omitempty"`
	Channel    int    `json:"channel,omitempty"`
	RSSI       int    `json:"rssi"`
	Noise      int    `json:"noise,omitempty"`
}

// locateResponse is the /locate and /track response body.
type locateResponse struct {
	X                float64 `json:"x"`
	Y                float64 `json:"y"`
	Location         string  `json:"location,omitempty"`
	NearestName      string  `json:"nearest_name,omitempty"`
	Room             string  `json:"room,omitempty"`
	ConfidenceRadius float64 `json:"confidence_radius_ft"`
	Algorithm        string  `json:"algorithm"`
}

// errorResponse is every error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"algorithm": s.svc.Locator.Name(),
		"locations": s.svc.DB.Len(),
		"aps":       len(s.svc.DB.BSSIDs),
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, core.Algorithms())
}

func (s *Server) handleLocations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	type loc struct {
		Name string  `json:"name"`
		X    float64 `json:"x"`
		Y    float64 `json:"y"`
	}
	out := make([]loc, 0, s.svc.DB.Len())
	for _, name := range s.svc.DB.Names() {
		e := s.svc.DB.Entries[name]
		out = append(out, loc{Name: name, X: e.Pos.X, Y: e.Pos.Y})
	}
	writeJSON(w, http.StatusOK, out)
}

// parseObservation extracts the observation from a request body.
func parseObservation(r *http.Request) (localize.Observation, error) {
	var req locateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	switch {
	case len(req.Observation) > 0 && len(req.Records) > 0:
		return nil, errors.New("give observation or records, not both")
	case len(req.Observation) > 0:
		return localize.Observation(req.Observation), nil
	case len(req.Records) > 0:
		recs := make([]wiscan.Record, len(req.Records))
		for i, rj := range req.Records {
			recs[i] = wiscan.Record{
				TimeMillis: rj.TimeMillis,
				BSSID:      rj.BSSID,
				SSID:       rj.SSID,
				Channel:    rj.Channel,
				RSSI:       rj.RSSI,
				Noise:      rj.Noise,
			}
		}
		return localize.ObservationFromRecords(recs), nil
	default:
		return nil, errors.New("empty request: need observation or records")
	}
}

// statusFor maps localization errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, localize.ErrEmptyObservation),
		errors.Is(err, localize.ErrNoOverlap),
		errors.Is(err, localize.ErrTooFewAPs):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	obs, err := parseObservation(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.svc.Locate(obs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, locateResponse{
		X:                res.Estimate.Pos.X,
		Y:                res.Estimate.Pos.Y,
		Location:         res.Estimate.Name,
		NearestName:      res.NearestName,
		Room:             res.Room,
		ConfidenceRadius: localize.ConfidenceRadius(res.Estimate, 0.9),
		Algorithm:        s.svc.Locator.Name(),
	})
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	client := strings.TrimPrefix(r.URL.Path, "/track/")
	if client == "" || strings.Contains(client, "/") {
		writeError(w, http.StatusBadRequest, errors.New("want /track/{client}"))
		return
	}
	switch r.Method {
	case http.MethodDelete:
		s.mu.Lock()
		_, existed := s.trackers[client]
		delete(s.trackers, client)
		s.mu.Unlock()
		if !existed {
			writeError(w, http.StatusNotFound, fmt.Errorf("no track for %q", client))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "forgotten"})
	case http.MethodPost:
		obs, err := parseObservation(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		est, err := s.svc.Locator.Locate(obs)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		// Per-client filter state is serialised under the lock; the
		// heavy Locate above ran outside it.
		s.mu.Lock()
		tr, ok := s.trackers[client]
		if !ok {
			tr, err = track.New(s.svc.Locator, s.newFilter())
			if err != nil {
				s.mu.Unlock()
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			s.trackers[client] = tr
		}
		pos := tr.Filter.Update(est.Pos)
		s.mu.Unlock()
		resp := locateResponse{
			X:                pos.X,
			Y:                pos.Y,
			Location:         est.Name,
			ConfidenceRadius: localize.ConfidenceRadius(est, 0.9),
			Algorithm:        s.svc.Locator.Name(),
		}
		if s.svc.Names != nil {
			if name, _, ok := s.svc.Names.Nearest(pos); ok {
				resp.NearestName = name
			}
		}
		for _, room := range s.svc.Rooms {
			if room.Poly.Contains(pos) {
				resp.Room = room.Name
				break
			}
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST or DELETE"))
	}
}

// ActiveTracks returns the number of clients with tracking state.
func (s *Server) ActiveTracks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.trackers)
}
