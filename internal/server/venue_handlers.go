package server

import (
	"errors"
	"net/http"
	"strings"

	"indoorloc/internal/filter"
	"indoorloc/internal/venue"
)

// This file is the HTTP face of multi-tenancy: the /v1/venues
// namespace over a venue.Registry. Every serving handler follows the
// same frame — resolve the venue from the path (or the configured
// default for the legacy unversioned aliases), pin it for the request,
// answer from its snapshot, release. The resolution adds zero
// allocations on the resident-venue hot path: the id is sliced out of
// r.URL.Path (the router already proved the shape), Acquire is a
// lock-free map read, and the pin is two atomics.

// NewMultiVenue builds a server over a venue registry: one process,
// many venues, each lazily loaded and LRU-evicted under the registry's
// memory budget.
//
//	GET    /v1/venues                       → venue listing + registry stats
//	GET    /v1/venues/{venue}               → one venue's status
//	GET    /v1/venues/{venue}/locations     → training locations
//	POST   /v1/venues/{venue}/locate        → localize one observation
//	POST   /v1/venues/{venue}/locate/batch  → localize many observations
//	POST   /v1/venues/{venue}/track/{client}   → stateful tracking
//	DELETE /v1/venues/{venue}/track/{client}   → forget a track
//	POST   /v1/venues/{venue}/train/report  → live training (WAL venues)
//
// The unversioned routes (/locate, /locate/batch, /locations,
// /track/{client}, /train/report) remain as deprecated aliases onto
// the registry's default venue; with no default configured they answer
// venue_not_found. Tracking state is scoped per venue — client "cart-7"
// in one venue never collides with "cart-7" in another, and the legacy
// aliases share the default venue's scope.
func NewMultiVenue(vr *venue.Registry, filterFactory func() filter.PositionFilter, opts ...Option) (*Server, error) {
	if vr == nil {
		return nil, errors.New("server: nil venue registry")
	}
	return newServer(nil, nil, vr, nil, filterFactory, opts)
}

// Venues returns the registry a multi-venue server serves from; nil
// for single-venue servers.
func (s *Server) Venues() *venue.Registry { return s.venues }

// venueID slices the venue id out of a /v1/venues/{venue}... path;
// empty for the legacy alias routes (no venue segment).
//
//loclint:hotpath
func venueID(r *http.Request) string {
	p := r.URL.Path
	if len(p) <= len(venuePrefix) || p[:len(venuePrefix)] != venuePrefix {
		return ""
	}
	rest := p[len(venuePrefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// errNoDefaultVenue answers legacy-alias requests when the registry
// has no default venue configured.
var errNoDefaultVenue = errors.New("no default venue configured; use /v1/venues/{venue}/...")

// resolveVenue pins the request's venue: the path's id, or the default
// for legacy aliases. On false the error response has been written.
// The caller must Release the returned venue.
func (s *Server) resolveVenue(w http.ResponseWriter, r *http.Request) (*venue.Venue, bool) {
	id := venueID(r)
	if id == "" {
		id = s.venues.DefaultID()
		if id == "" {
			writeErrorCode(w, http.StatusNotFound, codeVenueNotFound, errNoDefaultVenue)
			return nil, false
		}
	}
	v, err := s.venues.Acquire(id)
	if err != nil {
		if errors.Is(err, venue.ErrUnknownVenue) || errors.Is(err, venue.ErrInvalidID) {
			writeErrorCode(w, http.StatusNotFound, codeVenueNotFound, err)
		} else {
			writeErrorCode(w, http.StatusInternalServerError, codeVenueLoadFailed, err)
		}
		return nil, false
	}
	return v, true
}

// venuesResponse is the GET /v1/venues body.
type venuesResponse struct {
	Venues   []venue.Status `json:"venues"`
	Registry venue.Stats    `json:"registry"`
}

func (s *Server) handleVenues(w http.ResponseWriter, r *http.Request) {
	list, err := s.venues.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, venuesResponse{Venues: list, Registry: s.venues.Stats()})
}

func (s *Server) handleVenueStatus(w http.ResponseWriter, r *http.Request) {
	// Status never forces a cold load: probing a venue must not churn
	// the LRU or spend a load on an operator's curiosity.
	st, err := s.venues.Status(venueID(r))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleVenueLocations(w http.ResponseWriter, r *http.Request) {
	v, ok := s.resolveVenue(w, r)
	if !ok {
		return
	}
	defer v.Release()
	s.locations(w, v.Snapshot().Service)
}

//loclint:hotpath
func (s *Server) handleVenueLocate(w http.ResponseWriter, r *http.Request) {
	v, ok := s.resolveVenue(w, r)
	if !ok {
		return
	}
	defer v.Release()
	s.locate(w, r, v.Snapshot().Service)
}

//loclint:hotpath
func (s *Server) handleVenueLocateBatch(w http.ResponseWriter, r *http.Request) {
	v, ok := s.resolveVenue(w, r)
	if !ok {
		return
	}
	defer v.Release()
	// One snapshot answers the whole batch, as in the single-venue
	// path; the venue pin additionally keeps its mapping alive.
	s.locateBatch(w, r, v.Snapshot().Service)
}

func (s *Server) handleVenueTrackPost(w http.ResponseWriter, r *http.Request) {
	v, ok := s.resolveVenue(w, r)
	if !ok {
		return
	}
	defer v.Release()
	// The venue id scopes the tracker key; '\x00' cannot appear in a
	// venue id, so scopes can never collide by concatenation.
	s.trackPost(w, r, v.Snapshot().Service, v.ID+"\x00")
}

func (s *Server) handleVenueTrackDelete(w http.ResponseWriter, r *http.Request) {
	v, ok := s.resolveVenue(w, r)
	if !ok {
		return
	}
	defer v.Release()
	s.trackDelete(w, r, v.ID+"\x00")
}

func (s *Server) handleVenueTrainReport(w http.ResponseWriter, r *http.Request) {
	v, ok := s.resolveVenue(w, r)
	if !ok {
		return
	}
	defer v.Release()
	mgr := v.Manager()
	if mgr == nil {
		// Artifact-backed venues (and .tdb venues without a WAL dir) are
		// frozen: 409, not 404 — the endpoint and venue both exist, the
		// venue just cannot accept training.
		writeErrorCode(w, http.StatusConflict, codeVenueFrozen, venue.ErrFrozen)
		return
	}
	s.trainReport(w, r, mgr)
}
