package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"indoorloc/internal/geom"
)

// newTestRouter builds a router over a synthetic table so routing
// behaviour is testable without a trained service behind it.
func newTestRouter(alog *accessLogger, timeout time.Duration) *router {
	ok := func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}
	echo := func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, decodeStatus(err), err)
			return
		}
		w.Write(b)
	}
	boom := func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}
	slow := func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		w.Write([]byte("too late"))
	}
	defs := []routeDef{
		{name: "ping", path: "/ping", get: ok, del: ok},
		{name: "echo", path: "/echo", post: echo, maxBody: 16},
		{name: "boom", path: "/boom", get: boom},
		{name: "slow", path: "/slow", get: slow, timeout: timeout},
		{name: "track", path: "/track/", prefix: true, post: ok},
	}
	return newRouter(defs, alog)
}

func TestRouterTable(t *testing.T) {
	rt := newTestRouter(nil, 30*time.Millisecond)
	tests := []struct {
		name      string
		method    string
		path      string
		body      string
		chunked   bool
		want      int
		wantAllow string
	}{
		{name: "exact get", method: "GET", path: "/ping", want: 200},
		{name: "exact delete", method: "DELETE", path: "/ping", want: 200},
		{name: "method not allowed", method: "POST", path: "/ping", want: 405, wantAllow: "GET, DELETE"},
		{name: "post-only route rejects get", method: "GET", path: "/echo", want: 405, wantAllow: "POST"},
		{name: "unknown path", method: "GET", path: "/nope", want: 404},
		{name: "doubled slash", method: "GET", path: "//ping", want: 404},
		{name: "inner doubled slash", method: "POST", path: "/track//x", want: 404},
		{name: "dot segment", method: "GET", path: "/ping/../ping", want: 404},
		{name: "trailing dot", method: "GET", path: "/ping/.", want: 404},
		{name: "trailing dotdot", method: "GET", path: "/ping/..", want: 404},
		{name: "track client ok", method: "POST", path: "/track/alice", want: 200},
		{name: "track empty client", method: "POST", path: "/track/", want: 404},
		{name: "track nested subpath", method: "POST", path: "/track/a/b", want: 404},
		{name: "track wrong method", method: "GET", path: "/track/alice", want: 405, wantAllow: "POST"},
		{name: "body within cap", method: "POST", path: "/echo", body: "0123456789", want: 200},
		{name: "body at cap", method: "POST", path: "/echo", body: strings.Repeat("x", 16), want: 200},
		{name: "body over cap declared", method: "POST", path: "/echo", body: strings.Repeat("x", 17), want: 413},
		{name: "body over cap chunked", method: "POST", path: "/echo", body: strings.Repeat("x", 64), chunked: true, want: 413},
		{name: "path too long", method: "GET", path: "/" + strings.Repeat("p", maxPathLen), want: 414},
		{name: "slow handler times out", method: "GET", path: "/slow", want: 503},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var body io.Reader
			if tt.body != "" {
				body = strings.NewReader(tt.body)
			}
			req := httptest.NewRequest(tt.method, tt.path, body)
			if tt.chunked {
				req.ContentLength = -1
			}
			rec := httptest.NewRecorder()
			rt.ServeHTTP(rec, req)
			if rec.Code != tt.want {
				t.Fatalf("status %d, want %d", rec.Code, tt.want)
			}
			if tt.wantAllow != "" && rec.Header().Get("Allow") != tt.wantAllow {
				t.Errorf("Allow %q, want %q", rec.Header().Get("Allow"), tt.wantAllow)
			}
			if tt.want >= 400 {
				// Every routing-layer error is JSON with a coded error
				// envelope and carries the request id.
				var e errorResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
					t.Errorf("error body %q not a coded JSON envelope: %v", rec.Body.String(), err)
				}
				if rec.Header().Get("X-Request-Id") == "" {
					t.Errorf("error response missing X-Request-Id")
				}
			}
			if tt.want == 413 && rec.Header().Get("Connection") != "close" {
				t.Errorf("413 must close the connection")
			}
		})
	}
	if n := rt.timeouts.Load(); n != 1 {
		t.Errorf("timeouts counter %d, want 1", n)
	}
}

func TestRouterPanicRecovery(t *testing.T) {
	rt := newTestRouter(nil, 0)
	req := httptest.NewRequest("GET", "/boom", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req) // must not propagate the panic
	if rec.Code != 500 {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if rec.Header().Get("Connection") != "close" {
		t.Errorf("recovered response must close the connection")
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("panic body not JSON: %v", err)
	}
	if strings.Contains(e.Error.Message, "exploded") {
		t.Errorf("panic value leaked to the client: %q", e.Error.Message)
	}
	if n := rt.panics.Load(); n != 1 {
		t.Errorf("panics counter %d, want 1", n)
	}
}

// TestRouterGuardedPanic exercises the panic path under the timeout
// guard: the handler panics on its own goroutine and the panic must be
// re-raised and recovered on the request goroutine.
func TestRouterGuardedPanic(t *testing.T) {
	boom := func(w http.ResponseWriter, r *http.Request) { panic("guarded") }
	rt := newRouter([]routeDef{
		{name: "boom", path: "/boom", get: boom, timeout: time.Second},
	}, nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != 500 {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if n := rt.panics.Load(); n != 1 {
		t.Errorf("panics counter %d, want 1", n)
	}
}

// TestRouterMidResponsePanicAborts covers the panic-after-write case:
// once the handler has started the response, finish() cannot answer a
// clean 500 — it must re-panic http.ErrAbortHandler so net/http tears
// the connection down instead of finishing the truncated body as an
// apparently complete success.
func TestRouterMidResponsePanicAborts(t *testing.T) {
	h := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("mid-response")
	}
	rt := newRouter([]routeDef{{name: "mid", path: "/mid", get: h}}, nil)
	rec := httptest.NewRecorder()
	var got any
	func() {
		defer func() { got = recover() }()
		rt.ServeHTTP(rec, httptest.NewRequest("GET", "/mid", nil))
	}()
	if got != http.ErrAbortHandler {
		t.Fatalf("ServeHTTP panicked with %v, want http.ErrAbortHandler", got)
	}
	if n := rt.panics.Load(); n != 1 {
		t.Errorf("panics counter %d, want 1", n)
	}
}

// TestRouterTimeoutDetachesBodyLimiter pins the timeout/limiter
// interaction: when the guard abandons a handler that still holds the
// request body, the pooled chunked-body limiter must NOT go back to
// the pool — the handler's later reads would otherwise race a new
// request that re-acquired it (nil-pointer panics, cross-request body
// reads).
func TestRouterTimeoutDetachesBodyLimiter(t *testing.T) {
	release := make(chan struct{})
	readDone := make(chan error, 1)
	h := func(w http.ResponseWriter, r *http.Request) {
		<-release // outlive the deadline while still owning r.Body
		_, err := io.Copy(io.Discard, r.Body)
		readDone <- err
	}
	rt := newRouter([]routeDef{
		{name: "slow", path: "/slow", post: h, maxBody: 1 << 10, timeout: 5 * time.Millisecond},
	}, nil)
	req := httptest.NewRequest("POST", "/slow", strings.NewReader(strings.Repeat("x", 100)))
	req.ContentLength = -1 // chunked: forces the pooled limiter
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	// The request goroutine has returned and pooled its statusWriter;
	// the abandoned handler now reads the body it still owns. With the
	// limiter wrongly pooled this read hits rc=nil and panics.
	close(release)
	select {
	case err := <-readDone:
		if err != nil {
			t.Errorf("abandoned handler's body read failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned handler never finished its body read (panicked on a recycled limiter?)")
	}
}

// TestRouterTimeoutAbandonedPanicCounted verifies a panic that lands
// after the deadline already fired still shows up in the panics
// counter — the client got its 503, but the operator must see the
// crash in /metrics.
func TestRouterTimeoutAbandonedPanicCounted(t *testing.T) {
	release := make(chan struct{})
	h := func(w http.ResponseWriter, r *http.Request) {
		<-release
		panic("after deadline")
	}
	rt := newRouter([]routeDef{
		{name: "slow", path: "/slow", get: h, timeout: 5 * time.Millisecond},
	}, nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if n := rt.panics.Load(); n != 0 {
		t.Fatalf("panics counter %d before the handler panicked", n)
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for rt.panics.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("panics counter %d, want 1 (timed-out handler's panic invisible)", rt.panics.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterGuardedSuccess verifies the timeout guard replays a fast
// handler's buffered response — headers, status and body intact.
func TestRouterGuardedSuccess(t *testing.T) {
	h := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("made it"))
	}
	rt := newRouter([]routeDef{
		{name: "fast", path: "/fast", get: h, timeout: time.Second},
	}, nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", "/fast", nil))
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d, want 201", rec.Code)
	}
	if rec.Header().Get("X-Custom") != "yes" {
		t.Errorf("header lost in replay")
	}
	if rec.Body.String() != "made it" {
		t.Errorf("body %q lost in replay", rec.Body.String())
	}
}

// TestRouterMetrics verifies every dispatch outcome lands in the
// registry: routed requests under their route, unroutable ones under
// the trailing "other" slot.
func TestRouterMetrics(t *testing.T) {
	rt := newTestRouter(nil, 0)
	for _, req := range []struct{ method, path string }{
		{"GET", "/ping"},
		{"GET", "/ping"},
		{"POST", "/ping"},    // 405: still the ping route
		{"GET", "/nowhere"},  // 404: other
		{"GET", "//ping"},    // unclean: other
		{"POST", "/track/x"}, // prefix route
	} {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(req.method, req.path, nil))
	}
	names := rt.metrics.Names()
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("route %q not in registry %v", name, names)
		return -1
	}
	if got := rt.metrics.RouteCount(idx("ping")); got != 3 {
		t.Errorf("ping count %d, want 3", got)
	}
	if got := rt.metrics.RouteCount(idx("other")); got != 2 {
		t.Errorf("other count %d, want 2", got)
	}
	if got := rt.metrics.RouteCount(idx("track")); got != 1 {
		t.Errorf("track count %d, want 1", got)
	}
}

// nullWriter is a reusable ResponseWriter that costs nothing per
// request, so alloc measurements see only the router's own work.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullWriter) WriteHeader(c int)           { w.status = c }

// TestRouterZeroAllocDispatch is the tentpole's core claim measured
// directly: dispatching a request through the full chain — router
// lookup, limits, statusWriter, metrics, access-log ring — allocates
// nothing once the pools are warm. The tolerance absorbs a rare
// sync.Pool refill after a mid-measurement GC, nothing else.
func TestRouterZeroAllocDispatch(t *testing.T) {
	h := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) }
	alog := newAccessLogger(io.Discard, 64, []string{"ping", "other"})
	defer alog.Close()
	rt := newRouter([]routeDef{{name: "ping", path: "/ping", get: h}}, alog)
	req := httptest.NewRequest("GET", "/ping", nil)
	nw := &nullWriter{h: make(http.Header)}
	for i := 0; i < 100; i++ { // warm the pools
		rt.ServeHTTP(nw, req)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rt.ServeHTTP(nw, req)
	})
	if allocs > 0.01 {
		t.Errorf("router dispatch allocates %.3f/request, want 0", allocs)
	}
}

// resetReader replays the same bytes for every request without
// allocating a fresh reader: Seek back, hand out the same NopCloser.
type resetReader struct {
	*bytes.Reader
}

func (r *resetReader) Close() error { return nil }

// TestRouterAllocParity asserts the front end adds zero allocations on
// the /locate and /locate/batch hot paths: a full ServeHTTP round trip
// through router, middleware, metrics and access log must allocate no
// more than calling the handler directly. The race runtime allocates
// nondeterministically inside the handlers (±2 on ~70 allocs), which
// swamps a zero delta — the race lane relies on
// TestRouterZeroAllocDispatch, which stays exact because the measured
// path does no handler work.
func TestRouterAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime allocations make handler parity nondeterministic")
	}
	f := newFixture(t)
	obs := f.observationBody(t, geom.Pt(25, 20))
	batch := []byte(`{"observations":[{"aa:bb:cc:dd:ee:01":-50,"aa:bb:cc:dd:ee:02":-60},` +
		`{"aa:bb:cc:dd:ee:01":-70,"aa:bb:cc:dd:ee:03":-55}]}`)

	measure := func(path string, payload []byte, h http.HandlerFunc) float64 {
		body := &resetReader{bytes.NewReader(payload)}
		run := func(serve func(w http.ResponseWriter, r *http.Request)) float64 {
			req := httptest.NewRequest("POST", path, nil)
			req.Body = body
			req.ContentLength = int64(len(payload))
			nw := &nullWriter{h: make(http.Header)}
			for i := 0; i < 20; i++ { // warm pools and scoring caches
				body.Seek(0, io.SeekStart)
				serve(nw, req)
			}
			return testing.AllocsPerRun(100, func() {
				body.Seek(0, io.SeekStart)
				serve(nw, req)
			})
		}
		direct := run(h)
		full := run(f.srv.ServeHTTP)
		t.Logf("%s: direct=%.1f full=%.1f", path, direct, full)
		return full - direct
	}

	if delta := measure("/locate", obs, f.srv.handleLocate); delta > 0.5 {
		t.Errorf("front end adds %.2f allocs/request on /locate, want 0", delta)
	}
	if delta := measure("/locate/batch", batch, f.srv.handleLocateBatch); delta > 0.5 {
		t.Errorf("front end adds %.2f allocs/request on /locate/batch, want 0", delta)
	}
}
