package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// The access logger is a lock-free ring between the request goroutines
// and one background drainer. Recording an entry on the serving path
// is a ticket fetch (one atomic add) plus a fixed number of atomic
// stores into a pre-allocated slot — no locks, no channels that can
// block, and no per-request allocations. When producers outrun the
// drainer the ring laps itself and the oldest unread entries are
// dropped (counted, surfaced at /metrics as
// indoorloc_accesslog_dropped_total): under pressure the serving path
// never waits for the log.
//
// Every slot field is an atomic, so producers, a lapping producer and
// the drainer are race-detector-clean by construction. Torn records —
// a slot overwritten between the drainer's sequence checks — are
// detected by re-reading the slot's sequence stamp after the copy and
// dropped rather than logged; that is the drop-oldest contract, not a
// failure.

const (
	// logRemoteBytes holds the longest remote address net/http hands us
	// ("[full-ipv6]:65535" is 47 bytes); logPathBytes covers every
	// route plus a generous /track/{client} suffix. Longer values are
	// truncated — the log stays fixed-width by design.
	logRemoteBytes = 48
	logPathBytes   = 48

	// defaultLogRing is the default ring size; at ~130 kB total it
	// absorbs multi-millisecond drainer stalls at 100k req/s.
	defaultLogRing = 8192
)

// logSlot is one ring entry, fully atomic. meta packs
// status<<32 | route<<24 | method<<16 | remoteLen<<8 | pathLen.
type logSlot struct {
	seq    atomic.Uint64 // pos+1 once published; 0 while being written
	id     atomic.Uint64
	when   atomic.Int64 // unix nanoseconds
	dur    atomic.Int64 // request latency, nanoseconds
	meta   atomic.Uint64
	remote [logRemoteBytes / 8]atomic.Uint64
	path   [logPathBytes / 8]atomic.Uint64
}

// logEntry is one decoded record on the drainer side.
type logEntry struct {
	id        uint64
	when      int64
	dur       int64
	status    int
	route     int
	method    int
	remoteLen int
	pathLen   int
	remoteBuf [logRemoteBytes]byte
	pathBuf   [logPathBytes]byte
}

// accessLogger is the ring plus its drainer goroutine.
type accessLogger struct {
	slots   []logSlot
	mask    uint64
	head    atomic.Uint64
	dropped atomic.Uint64

	names []string // route index → label, shared with the router
	w     io.Writer
	kick  chan struct{}
	stop  chan struct{}
	done  chan struct{}
}

// methodIndex compresses the dispatchable methods into a slot field.
//
//loclint:hotpath
func methodIndex(m string) int {
	switch m {
	case http.MethodGet:
		return 0
	case http.MethodPost:
		return 1
	case http.MethodDelete:
		return 2
	}
	return 3
}

var methodNames = [...]string{"GET", "POST", "DELETE", "OTHER"}

// newAccessLogger starts a logger draining into w. size is rounded up
// to a power of two; size <= 0 uses the default.
func newAccessLogger(w io.Writer, size int, names []string) *accessLogger {
	if size <= 0 {
		size = defaultLogRing
	}
	n := 1
	for n < size {
		n <<= 1
	}
	l := &accessLogger{
		slots: make([]logSlot, n),
		mask:  uint64(n - 1),
		names: names,
		w:     w,
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go l.drain()
	return l
}

// record appends one entry. It never blocks and never allocates: a
// ticket from the head counter names the slot; lapped readers lose.
//
//loclint:hotpath
func (l *accessLogger) record(id uint64, routeIdx int, method, path, remote string, status int, d time.Duration) {
	pos := l.head.Add(1) - 1
	s := &l.slots[pos&l.mask]
	s.seq.Store(0) // invalidate while the fields are in flux
	s.id.Store(id)
	s.when.Store(time.Now().UnixNano())
	s.dur.Store(int64(d))
	var rbuf [logRemoteBytes]byte
	rn := copy(rbuf[:], remote)
	for i := range s.remote {
		s.remote[i].Store(binary.LittleEndian.Uint64(rbuf[i*8:]))
	}
	var pbuf [logPathBytes]byte
	pn := copy(pbuf[:], path)
	for i := range s.path {
		s.path[i].Store(binary.LittleEndian.Uint64(pbuf[i*8:]))
	}
	s.meta.Store(uint64(uint16(status))<<32 | uint64(uint8(routeIdx))<<24 |
		uint64(uint8(methodIndex(method)))<<16 | uint64(uint8(rn))<<8 | uint64(uint8(pn)))
	s.seq.Store(pos + 1) // publish
	select {
	case l.kick <- struct{}{}:
	default: // drainer already signalled
	}
}

// readSlot copies a slot into e and reports whether the copy is
// consistent: the sequence stamp must still match after the field
// reads, or a lapping producer tore the record.
func readSlot(s *logSlot, want uint64, e *logEntry) bool {
	e.id = s.id.Load()
	e.when = s.when.Load()
	e.dur = s.dur.Load()
	meta := s.meta.Load()
	e.status = int(meta >> 32 & 0xffff)
	e.route = int(meta >> 24 & 0xff)
	e.method = int(meta >> 16 & 0xff)
	e.remoteLen = int(meta >> 8 & 0xff)
	e.pathLen = int(meta & 0xff)
	for i := range s.remote {
		binary.LittleEndian.PutUint64(e.remoteBuf[i*8:], s.remote[i].Load())
	}
	for i := range s.path {
		binary.LittleEndian.PutUint64(e.pathBuf[i*8:], s.path[i].Load())
	}
	return s.seq.Load() == want
}

// drain is the single consumer: it follows the head, skips over lapped
// ground, formats consistent records into a reused buffer and writes
// them through one bufio.Writer.
func (l *accessLogger) drain() {
	defer close(l.done)
	bw := bufio.NewWriterSize(l.w, 16<<10)
	flush := time.NewTicker(250 * time.Millisecond)
	defer flush.Stop()
	var cursor uint64
	var e logEntry
	buf := make([]byte, 0, 256)
	// A claimed-but-unpublished slot is normally in flux for
	// nanoseconds, but a producer descheduled mid-record (or before it
	// even invalidated the slot, leaving a stale stamp from the previous
	// lap) can hold one slot hostage for a whole ring lap. The drainer
	// waits a bounded number of yields, then counts the slot dropped and
	// moves on — one stuck producer must not stall the entire log.
	const maxUnpublishedWaits = 50 // ~1 ms of 20 µs yields
	var stuckPos uint64
	var stuckWaits int
	drainReady := func(final bool) {
		for {
			h := l.head.Load()
			if cursor == h {
				return
			}
			if lag := h - cursor; lag > uint64(len(l.slots)) {
				skip := lag - uint64(len(l.slots))
				l.dropped.Add(skip)
				cursor += skip
			}
			s := &l.slots[cursor&l.mask]
			switch seq := s.seq.Load(); {
			case seq == cursor+1:
				if readSlot(s, cursor+1, &e) {
					buf = appendEntry(buf[:0], &e, l.names)
					bw.Write(buf)
				} else {
					l.dropped.Add(1) // torn by a lapping producer
				}
				cursor++
			case seq > cursor+1:
				l.dropped.Add(1) // lapped before we got here
				cursor++
			default:
				// Claimed but not yet published. On the final drain the
				// producer has already returned (Close postdates the last
				// request), so an unpublished slot cannot complete — drop
				// it; otherwise yield briefly and retry, up to the bound.
				if final {
					l.dropped.Add(1)
					cursor++
					continue
				}
				if stuckPos != cursor {
					stuckPos, stuckWaits = cursor, 0
				}
				if stuckWaits++; stuckWaits > maxUnpublishedWaits {
					l.dropped.Add(1)
					cursor++
					continue
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	for {
		drainReady(false)
		// The log is best-effort by contract (drop-oldest ring): a sink
		// write error loses entries exactly like ring pressure does.
		_ = bw.Flush()
		select {
		case <-l.kick:
		case <-flush.C:
		case <-l.stop:
			drainReady(true)
			_ = bw.Flush()
			return
		}
	}
}

// appendEntry formats one record:
//
//	t=2026-08-08T12:00:00.000000001Z req=42 route=locate method=POST status=200 dur_us=1234 remote=127.0.0.1:9 path=/locate
func appendEntry(buf []byte, e *logEntry, names []string) []byte {
	buf = append(buf, "t="...)
	buf = time.Unix(0, e.when).UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, " req="...)
	buf = strconv.AppendUint(buf, e.id, 10)
	buf = append(buf, " route="...)
	if e.route >= 0 && e.route < len(names) {
		buf = append(buf, names[e.route]...)
	} else {
		buf = append(buf, '?')
	}
	buf = append(buf, " method="...)
	m := e.method
	if m < 0 || m >= len(methodNames) {
		m = len(methodNames) - 1
	}
	buf = append(buf, methodNames[m]...)
	buf = append(buf, " status="...)
	buf = strconv.AppendInt(buf, int64(e.status), 10)
	buf = append(buf, " dur_us="...)
	buf = strconv.AppendInt(buf, e.dur/int64(time.Microsecond), 10)
	buf = append(buf, " remote="...)
	buf = append(buf, e.remoteBuf[:min(e.remoteLen, logRemoteBytes)]...)
	buf = append(buf, " path="...)
	buf = append(buf, e.pathBuf[:min(e.pathLen, logPathBytes)]...)
	return append(buf, '\n')
}

// Dropped reports how many entries were lost to lapping or tearing.
func (l *accessLogger) Dropped() uint64 { return l.dropped.Load() }

// Close stops the drainer after a final drain of published entries.
// Callers must stop serving requests first.
func (l *accessLogger) Close() error {
	select {
	case <-l.stop:
		return nil // already closed
	default:
	}
	close(l.stop)
	<-l.done
	if c, ok := l.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
