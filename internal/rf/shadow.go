package rf

import (
	"hash/fnv"
	"math"

	"indoorloc/internal/feq"
	"indoorloc/internal/geom"
)

// ShadowField is a deterministic, spatially correlated Gaussian field
// modelling slow (shadow) fading. Each ⟨AP, location⟩ pair gets a bias
// in dB that is stable across time — the property the paper's
// "second observation" (§2.3) relies on: the signal at a fixed position
// under a fixed AP is steady, yet differs from the pure distance model
// by furniture, construction material, and layout effects.
//
// The field hashes grid-cell corners (per AP key and seed) to unit
// Gaussians and interpolates bilinearly, giving a continuous field with
// correlation length CellSize.
type ShadowField struct {
	Sigma    float64 // standard deviation of the bias in dB
	CellSize float64 // correlation length in feet
	Seed     int64
}

// At returns the shadowing bias in dB for receiver position p under
// the AP identified by key. A zero-sigma or zero-cell field is flat.
func (s ShadowField) At(key string, p geom.Point) float64 {
	if feq.Zero(s.Sigma) || s.CellSize <= 0 {
		return 0
	}
	gx := p.X / s.CellSize
	gy := p.Y / s.CellSize
	x0 := math.Floor(gx)
	y0 := math.Floor(gy)
	fx := gx - x0
	fy := gy - y0
	v00 := s.corner(key, int64(x0), int64(y0))
	v10 := s.corner(key, int64(x0)+1, int64(y0))
	v01 := s.corner(key, int64(x0), int64(y0)+1)
	v11 := s.corner(key, int64(x0)+1, int64(y0)+1)
	// Bilinear blend, then rescale: the blend of four unit Gaussians
	// has variance Σwᵢ², so divide by sqrt of that to keep Sigma honest.
	w00 := (1 - fx) * (1 - fy)
	w10 := fx * (1 - fy)
	w01 := (1 - fx) * fy
	w11 := fx * fy
	blend := v00*w00 + v10*w10 + v01*w01 + v11*w11
	norm := math.Sqrt(w00*w00 + w10*w10 + w01*w01 + w11*w11)
	if feq.Zero(norm) {
		return 0
	}
	return s.Sigma * blend / norm
}

// corner returns a deterministic standard Gaussian for a grid corner.
func (s ShadowField) corner(key string, ix, iy int64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(key))
	put(uint64(s.Seed))
	put(uint64(ix))
	put(uint64(iy))
	bits := h.Sum64()
	// Two uniforms from one hash: split the 64 bits.
	u1 := float64(bits>>40) / float64(1<<24)         // 24 bits
	u2 := float64(bits&((1<<24)-1)) / float64(1<<24) // 24 bits
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	// Box–Muller.
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
