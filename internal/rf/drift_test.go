package rf

import (
	"math"
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

func TestDriftDisabledByDefault(t *testing.T) {
	env := testEnv(t, Config{ShadowSigma: 0.001})
	p := geom.Pt(20, 20)
	if env.MeanAtTime(p, 0, 0) != env.MeanAtTime(p, 0, 5_000_000) {
		t.Error("zero drift changed the mean over time")
	}
}

func TestDriftShape(t *testing.T) {
	d := Drift{Amp: 3, PeriodMillis: 60_000}
	// Bounded by ±Amp, and periodic.
	for tm := int64(0); tm < 300_000; tm += 700 {
		v := d.At("ap", tm)
		if math.Abs(v) > 3+1e-9 {
			t.Fatalf("drift %v exceeds amplitude at t=%d", v, tm)
		}
		if math.Abs(v-d.At("ap", tm+60_000)) > 1e-9 {
			t.Fatalf("not periodic at t=%d", tm)
		}
	}
	// Distinct APs get distinct phases.
	if d.At("ap-one", 0) == d.At("ap-two", 0) {
		t.Error("phases collide")
	}
	// Full swing is realised somewhere in a period.
	var lo, hi float64
	for tm := int64(0); tm < 60_000; tm += 100 {
		v := d.At("ap", tm)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 2.9 || lo > -2.9 {
		t.Errorf("swing [%v, %v], want ≈±3", lo, hi)
	}
}

func TestDriftZeroPeriodDefaults(t *testing.T) {
	d := Drift{Amp: 2}
	// One hour period: value at t and t+1h match.
	if math.Abs(d.At("x", 123)-d.At("x", 123+3_600_000)) > 1e-9 {
		t.Error("default period is not one hour")
	}
}

func TestEnvironmentDriftMovesSamples(t *testing.T) {
	env := testEnv(t, Config{ShadowSigma: 0.001, FastSigma: 0.001})
	env.SetDrift(Drift{Amp: 4, PeriodMillis: 100_000})
	p := geom.Pt(20, 20)
	var spread stats.Running
	for tm := int64(0); tm < 100_000; tm += 2_000 {
		spread.Add(float64(env.MeanAtTime(p, 0, tm)))
	}
	if spread.Max()-spread.Min() < 6 {
		t.Errorf("drift swing %v dB, want ≈8", spread.Max()-spread.Min())
	}
	// Clearing the drift restores stationarity.
	env.SetDrift(Drift{})
	if env.MeanAtTime(p, 0, 0) != env.MeanAtTime(p, 0, 50_000) {
		t.Error("drift not cleared")
	}
}

func TestScanAtMatchesScanWithoutDrift(t *testing.T) {
	env := testEnv(t, Config{})
	p := geom.Pt(25, 20)
	a := env.Scan(p, rand.New(rand.NewSource(5)))
	b := env.ScanAt(p, 12345, rand.New(rand.NewSource(5)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("drift-free ScanAt differs from Scan")
		}
	}
}
