// Package rf simulates 802.11b radio propagation. It stands in for the
// paper's physical testbed (four consumer APs plus a "third-party
// signal strength detecting system"): given access-point positions,
// interior walls and a path-loss model, it produces the RSSI samples
// the rest of the toolkit consumes.
//
// The simulator layers three effects that the indoor-localization
// literature (RADAR and the paper's own Figure 4) identifies:
//
//  1. Deterministic distance decay — a path-loss model such as
//     log-distance with a wall-attenuation factor. This produces the
//     inverse-square-looking curve of Figure 4.
//  2. Slow (shadow) fading — a spatially correlated, time-stable bias
//     per ⟨AP, location⟩. This is what makes fingerprinting work at
//     all: the paper's "second observation" is that RSSI at a fixed
//     position is stable, yet differs from the pure distance model.
//  3. Fast fading — per-sample noise from multipath and interference,
//     the paper's "largest barrier".
//
// All randomness is seeded, so experiments replay exactly.
package rf

import (
	"fmt"
	"math"

	"indoorloc/internal/geom"
	"indoorloc/internal/units"
)

// AP describes one access point as the scanner sees it.
type AP struct {
	BSSID   string     // MAC address, the unique key in wi-scan records
	SSID    string     // network name
	Pos     geom.Point // position in plan frame (feet)
	TxPower units.DBm  // level measured at RefDist from the antenna
	Channel int        // 802.11b channel 1..14
}

// Model predicts the mean received level for a transmitter-receiver
// pair, before shadowing and fading are applied.
type Model interface {
	// MeanRSSI returns the expected level at distance d (feet) with
	// wallCount intervening walls, for a transmitter whose level at the
	// model's reference distance is txPower.
	MeanRSSI(txPower units.DBm, d float64, wallCount int) units.DBm
}

// LogDistance is the standard indoor log-distance path-loss model with
// a RADAR-style wall attenuation factor (WAF):
//
//	RSSI(d) = txPower - 10·n·log10(d/RefDist) - min(wallCount, MaxWalls)·WallLoss
//
// With n = 2 it reduces to free-space decay, which in linear power is
// the inverse-square law the paper fits in Figure 4.
type LogDistance struct {
	Exponent float64   // path-loss exponent n (free space 2, indoor 1.8–4)
	RefDist  float64   // reference distance in feet (where txPower holds)
	WallLoss units.DBm // attenuation per wall crossing, positive dB
	MaxWalls int       // cap on counted walls (RADAR uses 4); 0 = no cap
}

// DefaultLogDistance returns parameters calibrated to the RADAR
// measurements for an office floor: exponent 2.3 beyond 3 ft, ~3.1 dB
// per wall capped at 4 walls.
func DefaultLogDistance() LogDistance {
	return LogDistance{Exponent: 2.3, RefDist: 3, WallLoss: 3.1, MaxWalls: 4}
}

// MeanRSSI implements Model.
func (m LogDistance) MeanRSSI(txPower units.DBm, d float64, wallCount int) units.DBm {
	ref := m.RefDist
	if ref <= 0 {
		ref = 1
	}
	if d < ref {
		d = ref // inside the reference sphere the level saturates
	}
	if m.MaxWalls > 0 && wallCount > m.MaxWalls {
		wallCount = m.MaxWalls
	}
	loss := 10 * m.Exponent * math.Log10(d/ref)
	loss += float64(wallCount) * float64(m.WallLoss)
	return txPower - units.DBm(loss)
}

// FreeSpace is the free-space path-loss model at a fixed frequency; it
// ignores walls entirely and serves as the no-obstruction baseline.
type FreeSpace struct {
	FreqMHz float64 // carrier frequency; 802.11b sits at ~2440 MHz
}

// MeanRSSI implements Model. txPower is interpreted as the transmit
// EIRP; the Friis free-space loss at distance d (feet) is subtracted.
func (m FreeSpace) MeanRSSI(txPower units.DBm, d float64, _ int) units.DBm {
	f := m.FreqMHz
	if f <= 0 {
		f = 2440
	}
	meters := float64(units.Feet(d).Meters())
	if meters < 0.1 {
		meters = 0.1
	}
	// FSPL(dB) = 20·log10(d_km) + 20·log10(f_MHz) + 32.44
	fspl := 20*math.Log10(meters/1000) + 20*math.Log10(f) + 32.44
	return txPower - units.DBm(fspl)
}

// InverseSquareEmpirical is the paper's own empirical model shape,
// SS(d) = A + B/d + C/d², with distances in feet. It exists so the
// simulator can be driven by a curve fitted from data (closing the
// loop with internal/regress) and so tests can compare the fitted
// Figure 4 model against the generating one. Wall counts add WallLoss
// each, uncapped.
type InverseSquareEmpirical struct {
	A, B, C  float64
	MinDist  float64   // clamp, feet
	WallLoss units.DBm // per-wall attenuation
}

// MeanRSSI implements Model. txPower shifts the curve's intercept so a
// hotter transmitter raises the whole profile.
func (m InverseSquareEmpirical) MeanRSSI(txPower units.DBm, d float64, wallCount int) units.DBm {
	min := m.MinDist
	if min <= 0 {
		min = 1
	}
	if d < min {
		d = min
	}
	ss := m.A + m.B/d + m.C/(d*d)
	ss += float64(txPower) // curve is calibrated for txPower = 0 offset
	ss -= float64(wallCount) * float64(m.WallLoss)
	return units.DBm(ss)
}

// Validate checks an AP definition for the constraints wi-scan files
// and the simulator rely on.
func (a AP) Validate() error {
	if a.BSSID == "" {
		return fmt.Errorf("rf: AP %q has empty BSSID", a.SSID)
	}
	if a.Channel < 0 || a.Channel > 14 {
		return fmt.Errorf("rf: AP %s channel %d out of 802.11b range", a.BSSID, a.Channel)
	}
	return nil
}
