package rf

import (
	"fmt"
	"math"
	"math/rand"

	"indoorloc/internal/feq"
	"indoorloc/internal/geom"
	"indoorloc/internal/units"
)

// Reading is one AP's level as observed at a point — the atom of every
// wi-scan record.
type Reading struct {
	BSSID string
	SSID  string
	// RSSI is the quantised received level in whole dBm, as a NIC
	// driver reports it.
	RSSI int
	// Noise is the quantised noise-floor estimate in dBm.
	Noise int
	// Channel is the AP's 802.11b channel.
	Channel int
}

// Environment composes APs, walls, a path-loss model and the two noise
// layers into a samplable radio environment. The zero value is not
// usable; construct with NewEnvironment.
type Environment struct {
	aps    []AP
	walls  []geom.Segment
	model  Model
	shadow ShadowField
	// fastSigma is the standard deviation in dB of per-sample fading.
	fastSigma float64
	// floor is the receiver sensitivity: levels below it are not heard
	// and produce no reading, like a real scan.
	floor units.DBm
	// noiseFloor is the ambient noise level reported in readings.
	noiseFloor units.DBm
	// extraLoss, when non-nil, adds scenario-specific attenuation
	// (people, humidity, furniture factor experiments) in dB for a
	// transmitter-receiver pair.
	extraLoss func(ap AP, rx geom.Point) float64
	// drift is the slow per-AP transmit-level wander; zero disables it.
	drift Drift
}

// Config holds the knobs for NewEnvironment. Zero fields get the
// defaults listed on each field.
type Config struct {
	Model       Model     // default DefaultLogDistance()
	ShadowSigma float64   // dB, default 3.5
	ShadowCell  float64   // feet, default 8
	FastSigma   float64   // dB, default 2.5
	Floor       units.DBm // default -94 dBm
	NoiseFloor  units.DBm // default -96 dBm
	Seed        int64     // shadow-field seed, default 1
}

// NewEnvironment builds a radio environment over the given APs and
// walls. AP definitions are validated; BSSIDs must be unique.
func NewEnvironment(aps []AP, walls []geom.Segment, cfg Config) (*Environment, error) {
	if len(aps) == 0 {
		return nil, fmt.Errorf("rf: environment needs at least one AP")
	}
	seen := make(map[string]bool, len(aps))
	for _, ap := range aps {
		if err := ap.Validate(); err != nil {
			return nil, err
		}
		if seen[ap.BSSID] {
			return nil, fmt.Errorf("rf: duplicate BSSID %s", ap.BSSID)
		}
		seen[ap.BSSID] = true
	}
	if cfg.Model == nil {
		cfg.Model = DefaultLogDistance()
	}
	if feq.Zero(cfg.ShadowSigma) {
		cfg.ShadowSigma = 3.5
	}
	if feq.Zero(cfg.ShadowCell) {
		cfg.ShadowCell = 8
	}
	if feq.Zero(cfg.FastSigma) {
		cfg.FastSigma = 2.5
	}
	if feq.Zero(float64(cfg.Floor)) {
		cfg.Floor = -94
	}
	if feq.Zero(float64(cfg.NoiseFloor)) {
		cfg.NoiseFloor = -96
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Environment{
		aps:   append([]AP(nil), aps...),
		walls: append([]geom.Segment(nil), walls...),
		model: cfg.Model,
		shadow: ShadowField{
			Sigma:    cfg.ShadowSigma,
			CellSize: cfg.ShadowCell,
			Seed:     cfg.Seed,
		},
		fastSigma:  cfg.FastSigma,
		floor:      cfg.Floor,
		noiseFloor: cfg.NoiseFloor,
	}, nil
}

// APs returns the environment's access points (shared slice; treat as
// read-only).
func (e *Environment) APs() []AP { return e.aps }

// Walls returns the environment's wall segments (shared slice; treat
// as read-only).
func (e *Environment) Walls() []geom.Segment { return e.walls }

// Floor returns the receiver sensitivity threshold.
func (e *Environment) Floor() units.DBm { return e.floor }

// SetExtraLoss installs a scenario hook adding attenuation in dB for a
// transmitter-receiver pair; pass nil to remove it. The factor
// experiments (people, humidity, furniture) use this.
func (e *Environment) SetExtraLoss(f func(ap AP, rx geom.Point) float64) {
	e.extraLoss = f
}

// MeanAt returns the time-stable expected level at p from the i-th AP:
// path loss plus wall attenuation plus shadow bias plus scenario loss,
// before fast fading. It is the "true" radio map value localization
// error is measured against.
func (e *Environment) MeanAt(p geom.Point, i int) units.DBm {
	ap := e.aps[i]
	d := ap.Pos.Dist(p)
	wallCount := geom.CrossingCount(ap.Pos, p, e.walls)
	level := e.model.MeanRSSI(ap.TxPower, d, wallCount)
	level += units.DBm(e.shadow.At(ap.BSSID, p))
	if e.extraLoss != nil {
		level -= units.DBm(e.extraLoss(ap, p))
	}
	return level
}

// Sample draws one fast-fading sample of the i-th AP at p. ok is false
// when the sample fell below the receiver floor — the AP simply does
// not appear in that scan, exactly as with real hardware.
func (e *Environment) Sample(p geom.Point, i int, rng *rand.Rand) (Reading, bool) {
	level := float64(e.MeanAt(p, i)) + rng.NormFloat64()*e.fastSigma
	if units.DBm(level) < e.floor {
		return Reading{}, false
	}
	ap := e.aps[i]
	return Reading{
		BSSID:   ap.BSSID,
		SSID:    ap.SSID,
		RSSI:    units.QuantizeRSSI(units.DBm(level)),
		Noise:   units.QuantizeRSSI(e.noiseFloor + units.DBm(rng.NormFloat64())),
		Channel: ap.Channel,
	}, true
}

// Scan draws one scan at p: a reading for every AP currently above the
// receiver floor, in AP order.
func (e *Environment) Scan(p geom.Point, rng *rand.Rand) []Reading {
	out := make([]Reading, 0, len(e.aps))
	for i := range e.aps {
		if r, ok := e.Sample(p, i, rng); ok {
			out = append(out, r)
		}
	}
	return out
}

// MeanVector returns MeanAt for every AP; APs below the floor report
// the floor value with ok=false in the parallel mask.
func (e *Environment) MeanVector(p geom.Point) ([]units.DBm, []bool) {
	levels := make([]units.DBm, len(e.aps))
	audible := make([]bool, len(e.aps))
	for i := range e.aps {
		l := e.MeanAt(p, i)
		levels[i] = l
		audible[i] = l >= e.floor
	}
	return levels, audible
}

// SNRAt returns the mean signal-to-noise ratio in dB at p for AP i.
func (e *Environment) SNRAt(p geom.Point, i int) float64 {
	return float64(e.MeanAt(p, i) - e.noiseFloor)
}

// DistanceForLevel inverts the environment's deterministic path-loss
// model (ignoring walls and shadowing) for AP i: the distance at which
// the mean level equals target. Used as an oracle in tests; real
// localization inverts a *fitted* model instead. The search covers
// [0.1, maxDist] feet by bisection and clamps outside that range.
func (e *Environment) DistanceForLevel(i int, target units.DBm, maxDist float64) float64 {
	ap := e.aps[i]
	f := func(d float64) float64 {
		return float64(e.model.MeanRSSI(ap.TxPower, d, 0) - target)
	}
	lo, hi := 0.1, maxDist
	if f(lo) <= 0 {
		return lo
	}
	if f(hi) >= 0 {
		return hi
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		v := f(mid)
		if math.Abs(v) < 1e-12 || hi-lo < 1e-9 {
			return mid
		}
		if v > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
