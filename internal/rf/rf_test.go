package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
	"indoorloc/internal/units"
)

func testAPs() []AP {
	return []AP{
		{BSSID: "00:02:2d:00:00:0a", SSID: "house", Pos: geom.Pt(0, 0), TxPower: -30, Channel: 1},
		{BSSID: "00:02:2d:00:00:0b", SSID: "house", Pos: geom.Pt(50, 0), TxPower: -30, Channel: 6},
		{BSSID: "00:02:2d:00:00:0c", SSID: "house", Pos: geom.Pt(50, 40), TxPower: -30, Channel: 11},
		{BSSID: "00:02:2d:00:00:0d", SSID: "house", Pos: geom.Pt(0, 40), TxPower: -30, Channel: 1},
	}
}

func testEnv(t *testing.T, cfg Config) *Environment {
	t.Helper()
	env, err := NewEnvironment(testAPs(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestLogDistanceMonotone(t *testing.T) {
	m := DefaultLogDistance()
	prev := m.MeanRSSI(-30, m.RefDist, 0)
	for d := m.RefDist + 1; d < 200; d += 3 {
		cur := m.MeanRSSI(-30, d, 0)
		if cur >= prev {
			t.Fatalf("level rose with distance at %v ft: %v -> %v", d, prev, cur)
		}
		prev = cur
	}
}

func TestLogDistanceReferenceSaturation(t *testing.T) {
	m := DefaultLogDistance()
	at0 := m.MeanRSSI(-30, 0, 0)
	atRef := m.MeanRSSI(-30, m.RefDist, 0)
	if at0 != atRef {
		t.Errorf("inside reference sphere: %v, want %v", at0, atRef)
	}
	if atRef != -30 {
		t.Errorf("level at reference = %v, want -30", atRef)
	}
}

func TestLogDistanceWallCap(t *testing.T) {
	m := LogDistance{Exponent: 2, RefDist: 1, WallLoss: 3, MaxWalls: 4}
	base := m.MeanRSSI(-30, 10, 0)
	four := m.MeanRSSI(-30, 10, 4)
	ten := m.MeanRSSI(-30, 10, 10)
	if float64(base-four) != 12 {
		t.Errorf("4 walls cost %v dB, want 12", base-four)
	}
	if four != ten {
		t.Errorf("wall cap not applied: 4 walls %v, 10 walls %v", four, ten)
	}
	// No cap when MaxWalls = 0.
	m.MaxWalls = 0
	if got := m.MeanRSSI(-30, 10, 10); float64(base-got) != 30 {
		t.Errorf("uncapped 10 walls cost %v dB, want 30", base-got)
	}
}

func TestFreeSpaceKnownValue(t *testing.T) {
	m := FreeSpace{FreqMHz: 2440}
	// FSPL at 100 m, 2440 MHz ≈ 80.2 dB.
	d := float64(units.Meters(100).Feet())
	got := float64(m.MeanRSSI(0, d, 0))
	if math.Abs(got-(-80.2)) > 0.2 {
		t.Errorf("FSPL(100 m) = %v dB, want ≈ -80.2", got)
	}
	// Walls are ignored.
	if m.MeanRSSI(0, d, 5) != m.MeanRSSI(0, d, 0) {
		t.Error("free space counted walls")
	}
}

func TestFreeSpaceInverseSquare(t *testing.T) {
	// Doubling distance must cost exactly 6.02 dB.
	m := FreeSpace{FreqMHz: 2440}
	a := float64(m.MeanRSSI(0, 10, 0))
	b := float64(m.MeanRSSI(0, 20, 0))
	if math.Abs((a-b)-6.0206) > 1e-3 {
		t.Errorf("doubling cost %v dB, want 6.02", a-b)
	}
}

func TestInverseSquareEmpirical(t *testing.T) {
	m := InverseSquareEmpirical{A: -68, B: 120, C: -160, MinDist: 1, WallLoss: 3}
	// At d=10: -68 + 12 - 1.6 = -57.6.
	if got := float64(m.MeanRSSI(0, 10, 0)); math.Abs(got-(-57.6)) > 1e-9 {
		t.Errorf("MeanRSSI(10) = %v", got)
	}
	// Clamp below MinDist.
	if m.MeanRSSI(0, 0.01, 0) != m.MeanRSSI(0, 1, 0) {
		t.Error("MinDist clamp failed")
	}
	// Wall loss applies per wall.
	if got := float64(m.MeanRSSI(0, 10, 2)); math.Abs(got-(-63.6)) > 1e-9 {
		t.Errorf("2-wall level = %v", got)
	}
	// TxPower shifts the whole curve.
	if got := m.MeanRSSI(10, 10, 0) - m.MeanRSSI(0, 10, 0); got != 10 {
		t.Errorf("tx shift = %v", got)
	}
}

func TestAPValidate(t *testing.T) {
	good := AP{BSSID: "aa:bb:cc:dd:ee:ff", Channel: 6}
	if err := good.Validate(); err != nil {
		t.Errorf("valid AP rejected: %v", err)
	}
	if err := (AP{Channel: 6}).Validate(); err == nil {
		t.Error("empty BSSID accepted")
	}
	if err := (AP{BSSID: "x", Channel: 15}).Validate(); err == nil {
		t.Error("channel 15 accepted")
	}
}

func TestNewEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(nil, nil, Config{}); err == nil {
		t.Error("empty AP list accepted")
	}
	dup := []AP{
		{BSSID: "same", Channel: 1},
		{BSSID: "same", Channel: 6},
	}
	if _, err := NewEnvironment(dup, nil, Config{}); err == nil {
		t.Error("duplicate BSSID accepted")
	}
}

func TestShadowFieldDeterministic(t *testing.T) {
	s := ShadowField{Sigma: 3, CellSize: 8, Seed: 5}
	p := geom.Pt(13.7, 22.1)
	if s.At("ap1", p) != s.At("ap1", p) {
		t.Error("field not deterministic")
	}
	// Different APs see different fields.
	if s.At("ap1", p) == s.At("ap2", p) {
		t.Error("field identical across APs")
	}
	// Different seeds give different fields.
	s2 := ShadowField{Sigma: 3, CellSize: 8, Seed: 6}
	if s.At("ap1", p) == s2.At("ap1", p) {
		t.Error("field identical across seeds")
	}
	// Zero sigma is flat.
	flat := ShadowField{Sigma: 0, CellSize: 8, Seed: 5}
	if flat.At("ap1", p) != 0 {
		t.Error("zero-sigma field not flat")
	}
}

func TestShadowFieldContinuity(t *testing.T) {
	s := ShadowField{Sigma: 4, CellSize: 8, Seed: 3}
	// Sampling two points 0.01 ft apart must differ by a tiny amount:
	// the bilinear field is continuous.
	for x := 0.0; x < 40; x += 1.7 {
		a := s.At("ap", geom.Pt(x, 10))
		b := s.At("ap", geom.Pt(x+0.01, 10))
		if math.Abs(a-b) > 0.15 {
			t.Fatalf("field jump at x=%v: %v -> %v", x, a, b)
		}
	}
}

func TestShadowFieldStatistics(t *testing.T) {
	s := ShadowField{Sigma: 3, CellSize: 8, Seed: 11}
	var r stats.Running
	for i := 0; i < 4000; i++ {
		p := geom.Pt(float64(i%200)*1.3, float64(i/200)*2.9)
		r.Add(s.At("ap", p))
	}
	if math.Abs(r.Mean()) > 0.4 {
		t.Errorf("field mean = %v, want ≈0", r.Mean())
	}
	if r.StdDev() < 2 || r.StdDev() > 4 {
		t.Errorf("field sd = %v, want ≈3", r.StdDev())
	}
}

func TestEnvironmentMeanStableAndDecaying(t *testing.T) {
	env := testEnv(t, Config{ShadowSigma: 0.001})
	// Mean is deterministic.
	p := geom.Pt(20, 20)
	if env.MeanAt(p, 0) != env.MeanAt(p, 0) {
		t.Error("MeanAt not deterministic")
	}
	// Farther from AP0 (at origin) is weaker, on the shadow-free model.
	near := env.MeanAt(geom.Pt(5, 5), 0)
	far := env.MeanAt(geom.Pt(45, 35), 0)
	if near <= far {
		t.Errorf("near %v not stronger than far %v", near, far)
	}
}

func TestEnvironmentSampleDistribution(t *testing.T) {
	env := testEnv(t, Config{FastSigma: 2.5, ShadowSigma: 0.001})
	rng := rand.New(rand.NewSource(9))
	p := geom.Pt(20, 20)
	mean := float64(env.MeanAt(p, 0))
	var r stats.Running
	for i := 0; i < 3000; i++ {
		reading, ok := env.Sample(p, 0, rng)
		if !ok {
			t.Fatal("sample below floor in mid-house")
		}
		r.Add(float64(reading.RSSI))
	}
	if math.Abs(r.Mean()-mean) > 0.3 {
		t.Errorf("sample mean %v, model mean %v", r.Mean(), mean)
	}
	// Quantisation adds ~1/12 variance; allow a band around 2.5.
	if r.StdDev() < 2.0 || r.StdDev() > 3.1 {
		t.Errorf("sample sd = %v, want ≈2.5", r.StdDev())
	}
}

func TestEnvironmentFloorDropsReadings(t *testing.T) {
	aps := testAPs()
	env, err := NewEnvironment(aps, nil, Config{Floor: -60, FastSigma: 0.001, ShadowSigma: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Next to AP0, far from AP2: with a -60 dBm floor the far corner
	// APs must be inaudible.
	scan := env.Scan(geom.Pt(1, 1), rng)
	for _, r := range scan {
		if r.BSSID == aps[2].BSSID {
			t.Error("far AP audible above -60 floor")
		}
	}
	if len(scan) == 0 {
		t.Error("adjacent AP inaudible")
	}
}

func TestEnvironmentScanOrderAndFields(t *testing.T) {
	env := testEnv(t, Config{})
	rng := rand.New(rand.NewSource(2))
	scan := env.Scan(geom.Pt(25, 20), rng)
	if len(scan) != 4 {
		t.Fatalf("mid-house scan heard %d APs, want 4", len(scan))
	}
	aps := testAPs()
	for i, r := range scan {
		if r.BSSID != aps[i].BSSID {
			t.Errorf("reading %d BSSID %s, want %s", i, r.BSSID, aps[i].BSSID)
		}
		if r.SSID != "house" || r.Channel != aps[i].Channel {
			t.Errorf("reading %d metadata wrong: %+v", i, r)
		}
		if r.RSSI > 0 || r.RSSI < -120 {
			t.Errorf("reading %d RSSI out of range: %d", i, r.RSSI)
		}
		if r.Noise > -80 {
			t.Errorf("reading %d noise suspicious: %d", i, r.Noise)
		}
	}
}

func TestEnvironmentWallsAttenuate(t *testing.T) {
	wall := []geom.Segment{geom.Seg(geom.Pt(25, -1), geom.Pt(25, 41))}
	withWall, err := NewEnvironment(testAPs(), wall, Config{ShadowSigma: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	noWall := testEnv(t, Config{ShadowSigma: 0.001})
	p := geom.Pt(40, 20) // AP0 at (0,0) is across the wall
	diff := float64(noWall.MeanAt(p, 0) - withWall.MeanAt(p, 0))
	if math.Abs(diff-3.1) > 0.5 {
		t.Errorf("wall cost %v dB, want ≈3.1", diff)
	}
	// Same side of the wall: no cost.
	q := geom.Pt(10, 20)
	if noWall.MeanAt(q, 0) != withWall.MeanAt(q, 0) {
		t.Error("wall attenuated a same-side path")
	}
}

func TestEnvironmentExtraLoss(t *testing.T) {
	env := testEnv(t, Config{ShadowSigma: 0.001})
	p := geom.Pt(20, 20)
	base := env.MeanAt(p, 0)
	env.SetExtraLoss(func(ap AP, rx geom.Point) float64 { return 7 })
	if got := float64(base - env.MeanAt(p, 0)); got != 7 {
		t.Errorf("extra loss applied %v dB, want 7", got)
	}
	env.SetExtraLoss(nil)
	if env.MeanAt(p, 0) != base {
		t.Error("extra loss not removable")
	}
}

func TestDistanceForLevel(t *testing.T) {
	env := testEnv(t, Config{ShadowSigma: 0.001})
	// Round trip: pick distances, compute level, invert.
	m := DefaultLogDistance()
	for _, d := range []float64{5, 10, 25, 60} {
		level := m.MeanRSSI(-30, d, 0)
		got := env.DistanceForLevel(0, level, 200)
		if math.Abs(got-d) > 1e-6 {
			t.Errorf("DistanceForLevel(%v) = %v, want %v", level, got, d)
		}
	}
	// Clamps: absurdly strong → min distance; absurdly weak → max.
	if got := env.DistanceForLevel(0, 0, 200); got != 0.1 {
		t.Errorf("strong clamp = %v", got)
	}
	if got := env.DistanceForLevel(0, -500, 200); got != 200 {
		t.Errorf("weak clamp = %v", got)
	}
}

func TestMeanVector(t *testing.T) {
	env := testEnv(t, Config{})
	levels, audible := env.MeanVector(geom.Pt(25, 20))
	if len(levels) != 4 || len(audible) != 4 {
		t.Fatalf("vector lengths %d/%d", len(levels), len(audible))
	}
	for i := range levels {
		if !audible[i] {
			t.Errorf("AP %d inaudible mid-house", i)
		}
	}
}

func TestSNRPositiveNearAP(t *testing.T) {
	env := testEnv(t, Config{})
	if snr := env.SNRAt(geom.Pt(1, 1), 0); snr < 20 {
		t.Errorf("SNR next to AP = %v dB, want > 20", snr)
	}
}

func TestQuantizedSamplePropertyInRange(t *testing.T) {
	env := testEnv(t, Config{})
	rng := rand.New(rand.NewSource(77))
	f := func(xRaw, yRaw float64) bool {
		clamp := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return lim / 2
			}
			return math.Mod(math.Abs(v), lim)
		}
		p := geom.Pt(clamp(xRaw, 50), clamp(yRaw, 40))
		for i := 0; i < 4; i++ {
			if r, ok := env.Sample(p, i, rng); ok {
				if r.RSSI > 0 || r.RSSI < -120 {
					return false
				}
				if units.DBm(r.RSSI) < env.Floor()-1 { // -1 for quantisation
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(104))}); err != nil {
		t.Error(err)
	}
}
