package rf

import (
	"hash/fnv"
	"math"

	"indoorloc/internal/feq"
	"indoorloc/internal/geom"
	"indoorloc/internal/units"
)

// Drift models slow, time-varying transmit-level wander — thermal
// cycling, power-supply sag, firmware AGC — one of the components of
// the paper's "unstableness of the RF signal strength". Each AP
// follows its own sinusoid: amplitude Amp dB, period PeriodMillis,
// with a per-AP phase derived from the BSSID so APs never drift in
// lockstep.
type Drift struct {
	// Amp is the peak deviation in dB; zero disables drift.
	Amp float64
	// PeriodMillis is the oscillation period; zero means one hour.
	PeriodMillis int64
}

// At returns the drift offset in dB for an AP at time tMillis.
func (d Drift) At(bssid string, tMillis int64) float64 {
	if feq.Zero(d.Amp) {
		return 0
	}
	period := d.PeriodMillis
	if period <= 0 {
		period = 3_600_000
	}
	h := fnv.New32a()
	h.Write([]byte(bssid))
	phase := float64(h.Sum32()) / float64(1<<32) * 2 * math.Pi
	return d.Amp * math.Sin(2*math.Pi*float64(tMillis)/float64(period)+phase)
}

// SetDrift installs (or clears, with a zero Drift) the environment's
// transmit-level drift model.
func (e *Environment) SetDrift(d Drift) { e.drift = d }

// MeanAtTime is MeanAt plus the drift offset at time tMillis.
func (e *Environment) MeanAtTime(p geom.Point, i int, tMillis int64) units.DBm {
	level := e.MeanAt(p, i)
	level += units.DBm(e.drift.At(e.aps[i].BSSID, tMillis))
	return level
}

// SampleAt draws one fast-fading sample at time tMillis, including
// drift. ok is false below the receiver floor.
func (e *Environment) SampleAt(p geom.Point, i int, tMillis int64, rng randSource) (Reading, bool) {
	level := float64(e.MeanAtTime(p, i, tMillis)) + rng.NormFloat64()*e.fastSigma
	if units.DBm(level) < e.floor {
		return Reading{}, false
	}
	ap := e.aps[i]
	return Reading{
		BSSID:   ap.BSSID,
		SSID:    ap.SSID,
		RSSI:    units.QuantizeRSSI(units.DBm(level)),
		Noise:   units.QuantizeRSSI(e.noiseFloor + units.DBm(rng.NormFloat64())),
		Channel: ap.Channel,
	}, true
}

// ScanAt draws one full scan at time tMillis, including drift.
func (e *Environment) ScanAt(p geom.Point, tMillis int64, rng randSource) []Reading {
	out := make([]Reading, 0, len(e.aps))
	for i := range e.aps {
		if r, ok := e.SampleAt(p, i, tMillis, rng); ok {
			out = append(out, r)
		}
	}
	return out
}

// randSource is the subset of *rand.Rand the samplers need; declared
// here so SampleAt's contract is explicit and testable.
type randSource interface {
	NormFloat64() float64
}
