// Package repl is the trainer → follower replication subsystem: one
// writer ingests crowdsourced fingerprint reports while any number of
// read-only replicas serve localization from generation-numbered
// snapshots of the same radio map.
//
// The protocol has exactly two endpoints on the trainer:
//
//	GET /v1/replicate/snapshot        — bootstrap payload: a manifest,
//	                                    the compiled ILRMAPv2 artifact,
//	                                    and the exact-resume sigma blob
//	GET /v1/replicate/wal?from=<seq>&gen=<g>
//	                                  — chunked tail of the report WAL
//	                                    as CRC-framed records, with
//	                                    publish notes and heartbeats;
//	                                    gen names the generation the
//	                                    follower already serves
//
// A follower bootstraps from the snapshot payload, reconstructs a
// replica training database that is bit-identical to the trainer's
// frozen state at the snapshot's WAL watermark, then folds the tailed
// records in strict sequence order. Because the trainer folds in WAL
// order too (ingest.Manager serializes journal append and queue
// insertion), and because Welford resume state ships exactly (the raw
// per-cell standard deviations, not the clamped compiled ones), the
// replica's compiled matrices after record N are byte-identical to the
// trainer's after record N — the property the chaos tests pin.
//
// # Identity and ordering invariants
//
//   - A WAL lifetime is named by its epoch (ingest.WAL.Epoch). Sequence
//     numbers are 1-based ordinals within one epoch and are never
//     reused. A follower position ⟨epoch, seq⟩ from another epoch is
//     meaningless: on any epoch mismatch the follower discards its
//     world and re-bootstraps.
//   - Within an epoch the head only grows. A hello or heartbeat whose
//     head is below the follower's applied sequence means the trainer's
//     history regressed (a restored backup, a truncated log): the
//     follower re-bootstraps rather than guess.
//   - Snapshot generations grow monotonically within an epoch. A
//     bootstrap manifest older than what the follower already serves is
//     rejected as stale (the trainer will publish a newer one; retry
//     with backoff).
//   - A publish note is only announced at stream positions ≥ its
//     watermark, so when a follower's applied sequence equals the note's
//     watermark, replica generation and note generation must agree —
//     disagreement means the histories forked and the follower
//     re-bootstraps.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Manifest describes one published trainer snapshot: the identity of
// the radio map (epoch, generation, WAL watermark), the fold and
// floor parameters a follower must mirror exactly, and the checksums
// of the two payload blobs that follow it in a snapshot response.
type Manifest struct {
	// Epoch is the WAL lifetime the watermark counts within.
	Epoch uint64 `json:"epoch"`
	// Generation is the radio-map generation of the artifact.
	Generation uint64 `json:"generation"`
	// Watermark is the WAL sequence folded into the artifact: resuming
	// the tail from it replays exactly the records the artifact has not
	// seen.
	Watermark uint64 `json:"wal_watermark"`
	// FloorRSSI and FloorSigma are the floor-model parameters the
	// trainer compiles with; a follower recompiles with the same values.
	FloorRSSI  float64 `json:"floor_rssi"`
	FloorSigma float64 `json:"floor_sigma"`
	// SnapRadius is the coordinate-snap fold rule (ingest.ResolveReport);
	// mirroring it exactly keeps fold resolution identical.
	SnapRadius float64 `json:"snap_radius"`
	// Entries and APs are the artifact's dimensions, for operators.
	Entries int `json:"entries"`
	APs     int `json:"aps"`
	// ArtifactSize/ArtifactCRC frame the ILRMAPv2 blob in the snapshot
	// response; ResumeSize/ResumeCRC frame the sigma resume blob.
	ArtifactSize int64  `json:"artifact_size"`
	ArtifactCRC  uint32 `json:"artifact_crc"`
	ResumeSize   int64  `json:"resume_size"`
	ResumeCRC    uint32 `json:"resume_crc"`
}

// Payload size sanity bounds for ParseManifest. The artifact for even
// a continent-scale venue fits well under 4 GiB; the resume blob is
// 8 bytes per trained cell and strictly smaller than the artifact.
const (
	maxArtifactSize = int64(1) << 32
	maxResumeSize   = int64(1) << 31
	// maxManifestSize bounds the JSON blob itself on the wire.
	maxManifestSize = 1 << 16
)

// ParseManifest decodes and validates a wire manifest. It rejects
// impossible identities (a zero epoch — the follower's "no epoch yet"
// sentinel must never appear on the wire) and insane payload framing
// before any byte of the blobs is trusted.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("repl: parse manifest: %w", err)
	}
	switch {
	case m.Epoch == 0:
		return nil, errors.New("repl: manifest has zero epoch")
	case m.Entries < 0 || m.APs < 0:
		return nil, fmt.Errorf("repl: manifest has negative dimensions (%d×%d)", m.Entries, m.APs)
	case m.ArtifactSize <= 0 || m.ArtifactSize > maxArtifactSize:
		return nil, fmt.Errorf("repl: manifest artifact size %d out of range", m.ArtifactSize)
	case m.ResumeSize <= 0 || m.ResumeSize > maxResumeSize:
		return nil, fmt.Errorf("repl: manifest resume size %d out of range", m.ResumeSize)
	}
	return &m, nil
}

// Hello is the first frame of every WAL stream and the payload of
// every heartbeat: where the trainer's log stands (head) and where
// this stream stands in it (from), plus the latest published snapshot
// identity, so the follower can compute lag in sequences and bytes
// without a side channel.
type Hello struct {
	// Epoch is the WAL lifetime being streamed.
	Epoch uint64 `json:"epoch"`
	// HeadSeq/HeadBytes are the last durable record's sequence and the
	// byte offset just past it.
	HeadSeq   uint64 `json:"head_seq"`
	HeadBytes int64  `json:"head_bytes"`
	// FromSeq/FromBytes are the stream cursor: the sequence and byte
	// offset the next record frame continues from. On the initial hello
	// FromBytes anchors the follower's byte-lag accounting.
	FromSeq   uint64 `json:"from_seq"`
	FromBytes int64  `json:"from_bytes"`
	// Generation/Watermark identify the latest published snapshot (zero
	// when the source has not captured one yet).
	Generation uint64 `json:"generation"`
	Watermark  uint64 `json:"wal_watermark"`
}

// ParseHello decodes and validates a hello/heartbeat payload.
func ParseHello(data []byte) (*Hello, error) {
	var h Hello
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("repl: parse hello: %w", err)
	}
	switch {
	case h.Epoch == 0:
		return nil, errors.New("repl: hello has zero epoch")
	case h.HeadBytes < 0 || h.FromBytes < 0:
		return nil, errors.New("repl: hello has negative byte offsets")
	case h.FromSeq > h.HeadSeq:
		return nil, fmt.Errorf("repl: hello cursor %d beyond head %d", h.FromSeq, h.HeadSeq)
	}
	return &h, nil
}
