package repl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"indoorloc/internal/ingest"
	"indoorloc/internal/trainingdb"
)

// snapshotMagic opens every snapshot response body:
//
//	8 bytes  magic "ILRREPL1"
//	u32      manifest length (little endian)
//	…        manifest JSON
//	…        ILRMAPv2 artifact (Manifest.ArtifactSize bytes)
//	…        resume blob (Manifest.ResumeSize bytes)
const snapshotMagic = "ILRREPL1"

// SourceConfig tunes the trainer-side replication source. The zero
// value is usable.
type SourceConfig struct {
	// Heartbeat is the idle-stream heartbeat cadence. Zero means 2s.
	Heartbeat time.Duration
}

// bundle is one captured publish: everything a follower bootstrap
// needs, encoded once on the compactor goroutine and served to any
// number of followers from then on.
type bundle struct {
	manifest     Manifest
	manifestJSON []byte
	artifact     []byte
	resume       []byte
}

// Source is the trainer side of replication. It captures every
// snapshot publish via ingest.Config.OnPublish and serves the two
// replication endpoints. Wire it in three steps:
//
//	src := repl.NewSource(repl.SourceConfig{})
//	mgr, err := ingest.NewManager(db, rebuild, ingest.Config{..., OnPublish: src.OnPublish})
//	src.Bind(mgr)
//
// OnPublish fires during NewManager (the initial snapshot) before
// Bind; the captured bundle is complete on its own, and the WAL
// stream endpoint answers 503 until Bind.
type Source struct {
	heartbeat time.Duration

	mu      sync.RWMutex
	mgr     *ingest.Manager
	b       *bundle
	lastErr string

	captures      uint64
	captureErrors uint64
}

// NewSource returns an unbound source.
func NewSource(cfg SourceConfig) *Source {
	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = 2 * time.Second
	}
	return &Source{heartbeat: hb}
}

// Bind attaches the ingest manager whose WAL the source streams. Call
// once, after ingest.NewManager returns.
func (s *Source) Bind(m *ingest.Manager) {
	s.mu.Lock()
	s.mgr = m
	s.mu.Unlock()
}

// OnPublish captures one published snapshot as a bootstrap bundle. It
// runs on the compactor goroutine: the encode work (one artifact
// serialization per publish, same cost as the artifact file write) is
// off the serving path by construction.
func (s *Source) OnPublish(ev ingest.PublishEvent) {
	b, err := buildBundle(ev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.captureErrors++
		s.lastErr = err.Error()
		return
	}
	s.b = b
	s.captures++
	s.lastErr = ""
}

// buildBundle encodes a publish event into a servable bundle.
func buildBundle(ev ingest.PublishEvent) (*bundle, error) {
	if ev.Compiled == nil {
		return nil, errors.New("repl: snapshot locator exposes no compiled view; not replicable")
	}
	artifact, err := trainingdb.EncodeCompiled(ev.Compiled)
	if err != nil {
		return nil, fmt.Errorf("repl: encode artifact: %w", err)
	}
	resume, err := EncodeResume(ev.Compiled, ev.DB)
	if err != nil {
		return nil, err
	}
	m := Manifest{
		Epoch:        ev.Epoch,
		Generation:   ev.Snapshot.Generation,
		Watermark:    ev.Watermark,
		FloorRSSI:    ev.Compiled.FloorRSSI,
		FloorSigma:   ev.Compiled.FloorSigma,
		SnapRadius:   ev.SnapRadius,
		Entries:      ev.Compiled.NumEntries(),
		APs:          ev.Compiled.NumAPs(),
		ArtifactSize: int64(len(artifact)),
		ArtifactCRC:  crc32.ChecksumIEEE(artifact),
		ResumeSize:   int64(len(resume)),
		ResumeCRC:    crc32.ChecksumIEEE(resume),
	}
	mj, err := json.Marshal(&m)
	if err != nil {
		return nil, fmt.Errorf("repl: encode manifest: %w", err)
	}
	return &bundle{manifest: m, manifestJSON: mj, artifact: artifact, resume: resume}, nil
}

// latest returns the current bundle (nil before the first successful
// capture) and the bound manager.
func (s *Source) latest() (*bundle, *ingest.Manager) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b, s.mgr
}

// SourceStats is the source's telemetry for /healthz.
type SourceStats struct {
	// Ready reports whether a bootstrap bundle has been captured.
	Ready bool `json:"ready"`
	// Generation/Watermark identify the captured bundle (zero when not
	// ready).
	Generation uint64 `json:"generation"`
	Watermark  uint64 `json:"wal_watermark"`
	// Captures counts bundles captured; CaptureErrors counts publishes
	// that could not be (the last error is kept).
	Captures      uint64 `json:"captures"`
	CaptureErrors uint64 `json:"capture_errors"`
	LastError     string `json:"last_error,omitempty"`
}

// Stats returns the source's telemetry.
func (s *Source) Stats() SourceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := SourceStats{
		Ready:         s.b != nil,
		Captures:      s.captures,
		CaptureErrors: s.captureErrors,
		LastError:     s.lastErr,
	}
	if s.b != nil {
		st.Generation = s.b.manifest.Generation
		st.Watermark = s.b.manifest.Watermark
	}
	return st
}

// The replication endpoints emit the same {"error":{code,message}}
// envelope as the serving API (see internal/server, "The stable error
// codes"), so a follower and a human curl see one error shape
// everywhere. Only the codes these endpoints can produce are declared
// here.
const (
	codeBadRequest         = "bad_request"
	codeNotReady           = "not_ready"
	codeGenerationConflict = "generation_conflict"
	codeInternal           = "internal"
)

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// replError answers a JSON error body in the unified envelope; the
// replication endpoints are machine-to-machine, and followers treat
// the message as opaque text.
//
//loclint:errenvelope
func replError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: code, Message: msg}})
}

// ServeSnapshot answers GET /v1/replicate/snapshot: the bootstrap
// payload for the latest published generation. An optional ?gen=<g>
// asserts the expected generation; a mismatch answers 409 with the
// latest generation so the caller can decide whether it is stale.
func (s *Source) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	b, _ := s.latest()
	if b == nil {
		replError(w, http.StatusServiceUnavailable, codeNotReady, "no replicable snapshot captured yet")
		return
	}
	if g := r.URL.Query().Get("gen"); g != "" {
		want, err := strconv.ParseUint(g, 10, 64)
		if err != nil {
			replError(w, http.StatusBadRequest, codeBadRequest, "bad gen parameter")
			return
		}
		if want != b.manifest.Generation {
			replError(w, http.StatusConflict, codeGenerationConflict,
				fmt.Sprintf("generation %d not available; latest is %d", want, b.manifest.Generation))
			return
		}
	}
	var hdr [12]byte
	copy(hdr[:], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(b.manifestJSON)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length",
		strconv.Itoa(len(hdr)+len(b.manifestJSON)+len(b.artifact)+len(b.resume)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(hdr[:]); err != nil {
		return
	}
	if _, err := w.Write(b.manifestJSON); err != nil {
		return
	}
	if _, err := w.Write(b.artifact); err != nil {
		return
	}
	w.Write(b.resume)
}

// ServeWAL answers GET /v1/replicate/wal?from=<seq>&gen=<g>: a
// chunked, unbounded stream of frames tailing the report WAL from
// just past sequence <from>. The stream opens with a hello, carries
// every record in sequence order, announces snapshot publishes once
// the stream position reaches their watermark, and heartbeats while
// idle. The optional gen parameter names the generation the follower
// already serves: the current bundle's note is suppressed only when
// it matches, so a follower reconnecting mid-history still hears
// about a publish it folded past but never recompiled for. The stream
// ends only when the client goes away, the server shuts down, or the
// log becomes unreadable — the follower reconnects with backoff.
func (s *Source) ServeWAL(w http.ResponseWriter, r *http.Request) {
	b, mgr := s.latest()
	if mgr == nil {
		replError(w, http.StatusServiceUnavailable, codeNotReady, "replication source not bound")
		return
	}
	var from, serving uint64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			replError(w, http.StatusBadRequest, codeBadRequest, "bad from parameter")
			return
		}
		from = v
	}
	if q := r.URL.Query().Get("gen"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			replError(w, http.StatusBadRequest, codeBadRequest, "bad gen parameter")
			return
		}
		serving = v
	}
	wal := mgr.WAL()
	tail, err := ingest.OpenTail(wal.Path(), from)
	if err != nil {
		replError(w, http.StatusInternalServerError, codeInternal, "open wal tail: "+err.Error())
		return
	}
	defer tail.Close()

	rc := http.NewResponseController(w)
	bw := bufio.NewWriterSize(w, 32<<10)
	flush := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		return rc.Flush()
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	hello := s.helloAt(wal, tail)
	hj, _ := json.Marshal(&hello)
	if err := WriteFrame(bw, FrameHello, tail.Seq(), hj); err != nil {
		return
	}
	if err := flush(); err != nil {
		return
	}
	if tail.Seq() < from {
		// The log does not reach the requested position — the follower's
		// history is ahead of ours (fresh WAL after a trainer reset, or a
		// position from another life). The hello's head tells it so; end
		// the stream and let it re-bootstrap.
		return
	}

	var announced uint64
	if b != nil && serving == b.manifest.Generation {
		// The follower already serves the current bundle's generation (it
		// bootstrapped from this very snapshot, or recompiled at its
		// note on a previous stream), so there is nothing to announce
		// until the next publish. A follower that merely folded past the
		// watermark without recompiling reports an older gen and gets
		// the note.
		announced = b.manifest.Generation
	}
	announce := func() error {
		nb, _ := s.latest()
		if nb == nil || nb.manifest.Generation == announced || tail.Seq() < nb.manifest.Watermark {
			return nil
		}
		if err := WriteFrame(bw, FramePublish, tail.Seq(), nb.manifestJSON); err != nil {
			return err
		}
		announced = nb.manifest.Generation
		return nil
	}

	ctx := r.Context()
	hb := time.NewTimer(s.heartbeat)
	defer hb.Stop()
	for {
		changed := wal.Changed()
		for {
			rec, err := tail.Next()
			if errors.Is(err, io.EOF) {
				break // durable end; wait for growth
			}
			if err != nil {
				// Corruption or I/O under the cursor: cut the stream rather
				// than ship bytes we cannot vouch for.
				return
			}
			if err := WriteFrame(bw, FrameRecord, rec.Seq, rec.Payload); err != nil {
				return
			}
			if err := announce(); err != nil {
				return
			}
		}
		// A publish can land without new records reaching this cursor
		// (the compactor swapped for records already streamed).
		if err := announce(); err != nil {
			return
		}
		if err := flush(); err != nil {
			return
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(s.heartbeat)
		select {
		case <-ctx.Done():
			return
		case <-changed:
		case <-hb.C:
			h := s.helloAt(wal, tail)
			hj, _ := json.Marshal(&h)
			if err := WriteFrame(bw, FrameHeartbeat, tail.Seq(), hj); err != nil {
				return
			}
			if err := flush(); err != nil {
				return
			}
		}
	}
}

// helloAt builds the hello/heartbeat payload for the current head and
// stream cursor.
func (s *Source) helloAt(wal *ingest.WAL, tail *ingest.TailReader) Hello {
	h := Hello{
		Epoch:     wal.Epoch(),
		HeadSeq:   wal.Seq(),
		HeadBytes: wal.Size(),
		FromSeq:   tail.Seq(),
		FromBytes: tail.Offset(),
	}
	if b, _ := s.latest(); b != nil {
		h.Generation = b.manifest.Generation
		h.Watermark = b.manifest.Watermark
	}
	return h
}
