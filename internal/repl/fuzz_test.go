package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReplFrameDecode throws hostile bytes at every wire decoder a
// follower runs against trainer-supplied input: the frame decoder
// (both the one-shot and streaming forms) and the JSON payload
// parsers. The invariants: no panic, no over-read, the two frame
// decoders agree, and a decoded frame re-encodes to the bytes it was
// decoded from.
func FuzzReplFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, FrameHello, 0, []byte(`{"epoch":1,"head_seq":3,"from_seq":3}`)))
	f.Add(AppendFrame(nil, FrameRecord, 1, []byte(`{"name":"g0","observation":{"ap0":-50}}`)))
	f.Add(AppendFrame(nil, FramePublish, 9,
		[]byte(`{"epoch":2,"generation":4,"wal_watermark":9,"artifact_size":128,"resume_size":32}`)))
	f.Add(AppendFrame(nil, FrameHeartbeat, 12, nil))
	// Two frames back to back, and a torn tail.
	two := AppendFrame(AppendFrame(nil, FrameRecord, 1, []byte("a")), FrameRecord, 2, []byte("b"))
	f.Add(two)
	f.Add(two[:len(two)-3])
	// Hostile headers: zero bytes, oversize length, bad type, bad CRC.
	f.Add(make([]byte, FrameHeaderSize))
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	bad := AppendFrame(nil, FrameRecord, 5, []byte("checksummed"))
	bad[len(bad)-1] ^= 0x01
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		sf, serr := NewFrameReader(bytes.NewReader(data)).Next()
		if err != nil {
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			// The streaming reader must also fail (it may classify a cut
			// differently — io.EOF on an empty buffer — but never succeed).
			if serr == nil {
				t.Fatalf("DecodeFrame failed (%v) but FrameReader decoded %+v", err, sf)
			}
			return
		}
		if n < FrameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if serr != nil {
			t.Fatalf("DecodeFrame succeeded but FrameReader failed: %v", serr)
		}
		if sf.Type != fr.Type || sf.Seq != fr.Seq || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("decoders disagree: %+v vs %+v", fr, sf)
		}
		// Round trip: re-encoding reproduces the consumed bytes exactly.
		if re := AppendFrame(nil, fr.Type, fr.Seq, fr.Payload); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// The JSON payload parsers must never panic on frame payloads,
		// whatever the frame type claims.
		ParseHello(fr.Payload)
		ParseManifest(fr.Payload)
	})
}
