package repl

import (
	"fmt"
	"math"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/trainingdb"
)

// replTestDB builds a synthetic training database with the awkward
// cases the resume blob exists for: σ=0 cells (every sample equal,
// which Compile clamps), single-sample cells, and entries that miss
// some APs entirely.
func replTestDB() *trainingdb.DB {
	db := &trainingdb.DB{Entries: make(map[string]*trainingdb.Entry)}
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("g%d", i)
		pos := geom.Point{X: float64(i%3) * 20, Y: float64(i/3) * 20}
		e := &trainingdb.Entry{Name: name, Pos: pos, PerAP: make(map[string]*trainingdb.APStats)}
		for ap := 0; ap < 3; ap++ {
			if (i+ap)%4 == 3 {
				continue // untrained cell
			}
			s := &trainingdb.APStats{BSSID: fmt.Sprintf("ap%d", ap)}
			samples := 1 + (i+ap)%5
			for k := 0; k < samples; k++ {
				v := -48 - float64(i) - 3*float64(ap)
				if i%3 != 0 { // i%3==0 entries stay σ=0
					v -= float64(k % 2)
				}
				s.AddSample(v)
			}
			e.PerAP[s.BSSID] = s
		}
		db.Entries[name] = e
	}
	db.BSSIDs = []string{"ap0", "ap1", "ap2"}
	return db
}

// compiledEqual asserts two compiled views are byte-identical in every
// field a locator or a fold can observe. Float comparisons go through
// Float64bits: the property is bit equality, not approximation.
func compiledEqual(t *testing.T, label string, a, b *trainingdb.Compiled) {
	t.Helper()
	if a.Generation != b.Generation {
		t.Errorf("%s: generation %d != %d", label, a.Generation, b.Generation)
	}
	if a.FloorRSSI != b.FloorRSSI || a.FloorSigma != b.FloorSigma {
		t.Errorf("%s: floor (%v,%v) != (%v,%v)", label, a.FloorRSSI, a.FloorSigma, b.FloorRSSI, b.FloorSigma)
	}
	if len(a.Names) != len(b.Names) || len(a.BSSIDs) != len(b.BSSIDs) {
		t.Fatalf("%s: dimensions %dx%d != %dx%d", label, len(a.Names), len(a.BSSIDs), len(b.Names), len(b.BSSIDs))
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			t.Fatalf("%s: name[%d] %q != %q", label, i, a.Names[i], b.Names[i])
		}
		if a.Pos[i] != b.Pos[i] {
			t.Errorf("%s: pos[%d] %v != %v", label, i, a.Pos[i], b.Pos[i])
		}
	}
	for j := range a.BSSIDs {
		if a.BSSIDs[j] != b.BSSIDs[j] {
			t.Fatalf("%s: bssid[%d] %q != %q", label, j, a.BSSIDs[j], b.BSSIDs[j])
		}
	}
	mats := []struct {
		name string
		a, b []float64
	}{
		{"Mean", a.Mean, b.Mean},
		{"Sigma", a.Sigma, b.Sigma},
		{"LogNorm", a.LogNorm, b.LogNorm},
		{"FloorLL", a.FloorLL, b.FloorLL},
		{"UnheardLL", a.UnheardLL, b.UnheardLL},
		{"SignalBase", a.SignalBase, b.SignalBase},
	}
	for _, m := range mats {
		if len(m.a) != len(m.b) {
			t.Fatalf("%s: %s length %d != %d", label, m.name, len(m.a), len(m.b))
		}
		for i := range m.a {
			if math.Float64bits(m.a[i]) != math.Float64bits(m.b[i]) {
				t.Fatalf("%s: %s[%d] bits %x != %x (%v vs %v)",
					label, m.name, i, math.Float64bits(m.a[i]), math.Float64bits(m.b[i]), m.a[i], m.b[i])
			}
		}
	}
	for i := range a.Trained {
		if a.Trained[i] != b.Trained[i] || a.N[i] != b.N[i] {
			t.Fatalf("%s: cell %d trained/N (%v,%d) != (%v,%d)", label, i, a.Trained[i], a.N[i], b.Trained[i], b.N[i])
		}
	}
}

func TestResumeRoundTrip(t *testing.T) {
	db := replTestDB()
	c := db.Compile(-95, 2)
	blob, err := EncodeResume(c, db)
	if err != nil {
		t.Fatal(err)
	}
	sigmas, err := DecodeResume(blob, c)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := BuildReplica(c, sigmas)
	if err != nil {
		t.Fatal(err)
	}
	compiledEqual(t, "bootstrap", c, replica.Compile(-95, 2))
}

func TestDecodeResumeValidation(t *testing.T) {
	db := replTestDB()
	c := db.Compile(-95, 2)
	blob, err := EncodeResume(c, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-4] }},
		{"extra bytes", func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0, 0, 0, 0) }},
		{"wrong dims", func(b []byte) []byte { b[8]++; return b }},
		{"wrong count", func(b []byte) []byte { b[16]++; return b }},
	} {
		bad := tc.mutate(append([]byte(nil), blob...))
		if _, err := DecodeResume(bad, c); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestReplicaFoldsBitIdentical is the core replication property at the
// unit level: a replica reconstructed from artifact + resume blob,
// folding the same reports in the same order as the master, compiles
// to byte-identical matrices after every single fold — σ=0 clamp
// cases, brand-new entries, and brand-new APs included.
func TestReplicaFoldsBitIdentical(t *testing.T) {
	master := replTestDB()
	c := master.Compile(-95, 2)
	blob, err := EncodeResume(c, master)
	if err != nil {
		t.Fatal(err)
	}
	sigmas, err := DecodeResume(blob, c)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := BuildReplica(c, sigmas)
	if err != nil {
		t.Fatal(err)
	}

	folds := []struct {
		name string
		pos  geom.Point
		obs  map[string]float64
	}{
		{"g0", geom.Point{}, map[string]float64{"ap0": -48}},   // σ=0 cell gains an equal sample: stays σ=0
		{"g0", geom.Point{}, map[string]float64{"ap0": -50.5}}, // σ=0 cell diverges
		{"g4", geom.Point{X: 20, Y: 20}, map[string]float64{"ap1": -61.25, "ap2": -70}},
		{"g2", geom.Point{X: 40}, map[string]float64{"ap2": -80}},                         // possibly untrained cell founds stats
		{"annex", geom.Point{X: 99, Y: 99}, map[string]float64{"ap0": -77, "apNEW": -81}}, // new entry + new AP
		{"annex", geom.Point{X: 99, Y: 99}, map[string]float64{"apNEW": -81}},             // reinforce, σ=0 path again
	}
	for i, f := range folds {
		master.Fold(f.name, f.pos, f.obs)
		replica.Fold(f.name, f.pos, f.obs)
		compiledEqual(t, fmt.Sprintf("after fold %d", i),
			master.Compile(-95, 2), replica.Compile(-95, 2))
	}
}

func TestEncodeResumeMissingCell(t *testing.T) {
	db := replTestDB()
	c := db.Compile(-95, 2)
	delete(db.Entries["g0"].PerAP, "ap0")
	if _, err := EncodeResume(c, db); err == nil {
		t.Error("missing cell not detected")
	}
	delete(db.Entries, "g1")
	if _, err := EncodeResume(c, db); err == nil {
		t.Error("missing entry not detected")
	}
}
