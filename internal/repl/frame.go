package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types on a WAL stream.
const (
	// FrameHello opens the stream: a Hello JSON payload anchoring the
	// follower's position and lag accounting.
	FrameHello byte = 1
	// FrameRecord carries one WAL record's raw payload (compact report
	// JSON); Seq is its WAL sequence number.
	FrameRecord byte = 2
	// FramePublish announces a published trainer snapshot: a Manifest
	// JSON payload. It is only sent at stream positions ≥ the
	// manifest's watermark, which is what lets a follower equate "I
	// reached the watermark" with "my replica is the trainer's frozen
	// state".
	FramePublish byte = 3
	// FrameHeartbeat carries a Hello payload refreshing the head
	// gauges while the log is idle, so lag-in-seconds stays honest.
	FrameHeartbeat byte = 4
)

// FrameHeaderSize is the fixed frame prefix:
//
//	u8  type
//	u64 sequence (little endian)
//	u32 payload length (little endian)
//	u32 CRC-32 (IEEE) of the payload
const FrameHeaderSize = 1 + 8 + 4 + 4

// MaxFramePayload bounds one frame's payload. Record payloads are
// bounded by the WAL's own record cap (1 MiB); manifests and hellos
// are far smaller. Anything larger is corruption, not data.
const MaxFramePayload = 1 << 20

// ErrFrameCorrupt marks a structurally invalid frame: an unknown
// type, an insane length, or a payload failing its checksum.
var ErrFrameCorrupt = errors.New("repl: corrupt frame")

// Frame is one decoded stream frame.
type Frame struct {
	Type    byte
	Seq     uint64
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the
// extended slice.
func AppendFrame(dst []byte, typ byte, seq uint64, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:9], seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame encodes one frame to w.
func WriteFrame(w io.Writer, typ byte, seq uint64, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("repl: frame payload %d exceeds cap", len(payload))
	}
	var hdr [FrameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:9], seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// DecodeFrame decodes one frame from the front of data, returning the
// frame and how many bytes it consumed. io.ErrUnexpectedEOF means the
// buffer holds a truncated frame (more bytes needed); ErrFrameCorrupt
// means the bytes can never become a valid frame.
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) < FrameHeaderSize {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	typ := data[0]
	seq := binary.LittleEndian.Uint64(data[1:9])
	length := binary.LittleEndian.Uint32(data[9:13])
	sum := binary.LittleEndian.Uint32(data[13:17])
	if typ < FrameHello || typ > FrameHeartbeat {
		return Frame{}, 0, fmt.Errorf("%w: unknown type %d", ErrFrameCorrupt, typ)
	}
	if length > MaxFramePayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrFrameCorrupt, length)
	}
	total := FrameHeaderSize + int(length)
	if len(data) < total {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	payload := data[FrameHeaderSize:total]
	if crc32.ChecksumIEEE(payload) != sum {
		return Frame{}, 0, fmt.Errorf("%w: payload checksum mismatch", ErrFrameCorrupt)
	}
	return Frame{Type: typ, Seq: seq, Payload: payload}, total, nil
}

// FrameReader decodes a stream of frames from r. The payload returned
// by Next is valid until the following call.
type FrameReader struct {
	br      *bufio.Reader
	hdr     [FrameHeaderSize]byte
	payload []byte
}

// NewFrameReader wraps r for frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 32<<10), payload: make([]byte, 0, 4096)}
}

// Next reads one frame. io.EOF means the stream ended cleanly on a
// frame boundary; io.ErrUnexpectedEOF means it was cut mid-frame (the
// torn-segment case — the connection died inside a frame, nothing
// decoded from the partial bytes).
func (fr *FrameReader) Next() (Frame, error) {
	if _, err := io.ReadFull(fr.br, fr.hdr[:]); err != nil {
		return Frame{}, err // io.EOF on a boundary, ErrUnexpectedEOF mid-header
	}
	typ := fr.hdr[0]
	seq := binary.LittleEndian.Uint64(fr.hdr[1:9])
	length := binary.LittleEndian.Uint32(fr.hdr[9:13])
	sum := binary.LittleEndian.Uint32(fr.hdr[13:17])
	if typ < FrameHello || typ > FrameHeartbeat {
		return Frame{}, fmt.Errorf("%w: unknown type %d", ErrFrameCorrupt, typ)
	}
	if length > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds cap", ErrFrameCorrupt, length)
	}
	if cap(fr.payload) < int(length) {
		fr.payload = make([]byte, length)
	}
	fr.payload = fr.payload[:length]
	if _, err := io.ReadFull(fr.br, fr.payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc32.ChecksumIEEE(fr.payload) != sum {
		return Frame{}, fmt.Errorf("%w: payload checksum mismatch", ErrFrameCorrupt)
	}
	return Frame{Type: typ, Seq: seq, Payload: fr.payload}, nil
}
