package repl

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/ingest"
	"indoorloc/internal/trainingdb"
)

// Follower states, reported by Stats and /healthz.
const (
	// StateBootstrapping: fetching and decoding a snapshot payload (or
	// backing off to retry one).
	StateBootstrapping = "bootstrapping"
	// StateCatchingUp: streaming the WAL with the head ahead of the
	// applied sequence.
	StateCatchingUp = "catching_up"
	// StateStreaming: at the head, folding records as they arrive.
	StateStreaming = "streaming"
	// StateDisconnected: trainer unreachable; backing off to reconnect.
	StateDisconnected = "disconnected"
)

// internal state codes backing the atomic.
const (
	stateBootstrapping int32 = iota
	stateCatchingUp
	stateStreaming
	stateDisconnected
)

var stateNames = [...]string{StateBootstrapping, StateCatchingUp, StateStreaming, StateDisconnected}

// NamesMode selects how a follower's published services resolve
// symbolic location names; see FollowerConfig.Names.
type NamesMode int

const (
	// NamesFromEntries derives the name map from the replica's entries.
	NamesFromEntries NamesMode = iota
	// NamesNone publishes position-only services (no name map).
	NamesNone
)

// FollowerConfig configures a follower.
type FollowerConfig struct {
	// TrainerURL is the trainer's base URL (scheme://host:port);
	// required.
	TrainerURL string
	// Algorithm selects the serving locator. Only the compiled-servable
	// algorithms apply (probabilistic, nnss, knn, wknn, sector); the
	// default is core.AlgoProbabilistic. Match the trainer's algorithm
	// and build knobs for answer-identical serving.
	Algorithm string
	// Build carries the locator build knobs (sharding, quantization,
	// top-k); mirror the trainer's.
	Build core.BuildConfig
	// Names controls the symbolic-name layer of published services.
	// The zero value, NamesFromEntries, derives the name map from the
	// replica's entries — right when the trainer serves its training
	// grid's names. NamesNone publishes position-only services for a
	// trainer that runs without a name map; a mismatch on this knob
	// breaks trainer/follower response identity (and on big maps the
	// per-locate nearest-name scan is O(entries), so a follower must
	// not pay it when its trainer doesn't).
	Names NamesMode
	// Client overrides the HTTP client. The default has no timeout —
	// the WAL stream is deliberately unbounded; cancellation comes from
	// Close.
	Client *http.Client
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// after trainer loss or a failed bootstrap. Zero means 250ms / 5s.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

// Follower is the read-fleet side of replication: it bootstraps a
// replica radio map from the trainer's snapshot payload, tails the
// WAL folding every record exactly as the trainer's compactor did,
// and republishes through a core.SnapshotRegistry on every trainer
// publish — so a server reading the registry serves answers identical
// to the trainer's at the same generation, with hot swaps and an
// allocation-free locate path, while holding no authority over the
// map (its world is discarded and re-bootstrapped whenever the
// trainer's history changes under it).
type Follower struct {
	cfg    FollowerConfig
	client *http.Client

	reg    *core.SnapshotRegistry
	ready  chan struct{} // closed after the first successful bootstrap
	stop   chan struct{}
	done   chan struct{}
	cancel context.CancelFunc
	once   sync.Once

	// Run-goroutine-owned world state (no locks needed).
	replica    *trainingdb.DB
	floorRSSI  float64
	floorSigma float64
	snapRadius float64

	// Shared gauges and counters.
	state        atomic.Int32
	epoch        atomic.Uint64
	gen          atomic.Uint64
	appliedSeq   atomic.Uint64
	headSeq      atomic.Uint64
	appliedBytes atomic.Int64
	headBytes    atomic.Int64
	lastProgress atomic.Int64 // UnixNano of the last applied record or caught-up observation
	bootstraps   atomic.Uint64
	reconnects   atomic.Uint64
	regressions  atomic.Uint64
	staleRejects atomic.Uint64
	folded       atomic.Uint64
	dropped      atomic.Uint64
	recompiles   atomic.Uint64
	lastErr      atomic.Value // string
}

// NewFollower validates the configuration. Call Start to connect.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.TrainerURL == "" {
		return nil, errors.New("repl: FollowerConfig.TrainerURL required")
	}
	u, err := url.Parse(cfg.TrainerURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repl: bad trainer URL %q", cfg.TrainerURL)
	}
	cfg.TrainerURL = strings.TrimRight(cfg.TrainerURL, "/")
	if cfg.Algorithm == "" {
		cfg.Algorithm = core.AlgoProbabilistic
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 250 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 5 * time.Second
		if cfg.ReconnectMax < cfg.ReconnectMin {
			cfg.ReconnectMax = cfg.ReconnectMin
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Follower{
		cfg:    cfg,
		client: client,
		ready:  make(chan struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	f.state.Store(stateBootstrapping)
	f.lastErr.Store("")
	return f, nil
}

// Start launches the follow loop and blocks until the first snapshot
// bootstrap succeeds (so Registry is valid) or ctx expires. The loop
// keeps running — reconnecting, re-bootstrapping — until Close.
func (f *Follower) Start(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go f.run(runCtx)
	select {
	case <-f.ready:
		return nil
	case <-ctx.Done():
		f.Close()
		return fmt.Errorf("repl: bootstrap did not complete: %w (last error: %s)", ctx.Err(), f.lastError())
	}
}

// Registry returns the snapshot registry the follower publishes
// through. Valid only after Start returns nil. Read handlers call
// this per request, so it stays an allocation-free field load.
//
//loclint:hotpath
func (f *Follower) Registry() *core.SnapshotRegistry { return f.reg }

// Close stops the follow loop and waits for it to exit. The registry
// keeps serving its last published snapshot.
func (f *Follower) Close() error {
	f.once.Do(func() {
		close(f.stop)
		if f.cancel != nil {
			f.cancel()
		}
	})
	<-f.done
	return nil
}

// run is the follow loop: bootstrap when the world is empty or was
// discarded, stream until disconnect, back off with jitter, repeat.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := f.cfg.ReconnectMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if f.replica == nil {
			f.state.Store(stateBootstrapping)
			if err := f.bootstrap(ctx); err != nil {
				f.setErr(err)
				if !f.sleep(ctx, backoff) {
					return
				}
				backoff = f.grow(backoff)
				continue
			}
			backoff = f.cfg.ReconnectMin
		}
		reset, err := f.stream(ctx)
		select {
		case <-f.stop:
			return
		default:
		}
		f.state.Store(stateDisconnected)
		f.reconnects.Add(1)
		if err != nil {
			f.setErr(err)
		}
		if reset {
			// The trainer's history changed under us (epoch change, head
			// regression, or a fold divergence): every position we hold is
			// meaningless. Discard the world; the next loop re-bootstraps
			// accepting whatever the trainer now serves.
			f.replica = nil
			f.epoch.Store(0)
			f.gen.Store(0)
			f.appliedSeq.Store(0)
			f.appliedBytes.Store(0)
			f.regressions.Add(1)
		}
		if !f.sleep(ctx, backoff) {
			return
		}
		backoff = f.grow(backoff)
	}
}

// grow doubles the backoff up to the cap.
func (f *Follower) grow(d time.Duration) time.Duration {
	d *= 2
	if d > f.cfg.ReconnectMax {
		d = f.cfg.ReconnectMax
	}
	return d
}

// sleep waits a jittered duration in [d/2, d], interruptible by stop;
// it reports whether the loop should continue.
func (f *Follower) sleep(ctx context.Context, d time.Duration) bool {
	j := d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(j)
	defer t.Stop()
	select {
	case <-f.stop:
		return false
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (f *Follower) setErr(err error) { f.lastErr.Store(err.Error()) }

func (f *Follower) lastError() string {
	s, _ := f.lastErr.Load().(string)
	return s
}

// markProgress stamps the lag-seconds clock.
func (f *Follower) markProgress() { f.lastProgress.Store(time.Now().UnixNano()) }

// bootstrap fetches the snapshot payload, verifies it end to end,
// reconstructs the replica database, and publishes the first (or a
// fresh) serving snapshot.
func (f *Follower) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.TrainerURL+"/v1/replicate/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("repl: snapshot fetch: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var hdr [12]byte
	if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
		return fmt.Errorf("repl: snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapshotMagic {
		return fmt.Errorf("repl: snapshot response has bad magic %q", hdr[:8])
	}
	mlen := binary.LittleEndian.Uint32(hdr[8:12])
	if mlen == 0 || mlen > maxManifestSize {
		return fmt.Errorf("repl: snapshot manifest length %d out of range", mlen)
	}
	mj := make([]byte, mlen)
	if _, err := io.ReadFull(resp.Body, mj); err != nil {
		return fmt.Errorf("repl: snapshot manifest: %w", err)
	}
	m, err := ParseManifest(mj)
	if err != nil {
		return err
	}
	// Staleness: within the epoch we already follow, never step the
	// serving generation backwards. (After a world reset the epoch
	// gauge is zero and anything is accepted.)
	if e := f.epoch.Load(); e != 0 && m.Epoch == e && m.Generation < f.gen.Load() {
		f.staleRejects.Add(1)
		return fmt.Errorf("repl: stale snapshot: generation %d < serving %d", m.Generation, f.gen.Load())
	}
	artifact := make([]byte, m.ArtifactSize)
	if _, err := io.ReadFull(resp.Body, artifact); err != nil {
		return fmt.Errorf("repl: snapshot artifact: %w", err)
	}
	resume := make([]byte, m.ResumeSize)
	if _, err := io.ReadFull(resp.Body, resume); err != nil {
		return fmt.Errorf("repl: snapshot resume blob: %w", err)
	}
	if got := crc32.ChecksumIEEE(artifact); got != m.ArtifactCRC {
		return fmt.Errorf("repl: snapshot artifact CRC mismatch (%08x != %08x)", got, m.ArtifactCRC)
	}
	if got := crc32.ChecksumIEEE(resume); got != m.ResumeCRC {
		return fmt.Errorf("repl: snapshot resume CRC mismatch (%08x != %08x)", got, m.ResumeCRC)
	}
	c, err := trainingdb.DecodeCompiled(artifact, trainingdb.DecodeOptions{VerifyCRC: true})
	if err != nil {
		return fmt.Errorf("repl: decode artifact: %w", err)
	}
	if c.Generation != m.Generation {
		return fmt.Errorf("repl: artifact generation %d != manifest %d", c.Generation, m.Generation)
	}
	sigmas, err := DecodeResume(resume, c)
	if err != nil {
		return err
	}
	replica, err := BuildReplica(c, sigmas)
	if err != nil {
		return err
	}
	if err := f.publish(c, m.Generation); err != nil {
		return err
	}
	f.replica = replica
	f.floorRSSI, f.floorSigma = c.FloorRSSI, c.FloorSigma
	f.snapRadius = m.SnapRadius
	f.epoch.Store(m.Epoch)
	f.appliedSeq.Store(m.Watermark)
	f.appliedBytes.Store(0) // anchored by the stream hello's FromBytes
	if m.Watermark > f.headSeq.Load() {
		f.headSeq.Store(m.Watermark)
	}
	f.bootstraps.Add(1)
	f.markProgress()
	return nil
}

// publish builds a serving snapshot from the compiled view and swaps
// it into the registry (creating the registry on the first call).
// The build runs on the follow goroutine; readers only ever see the
// finished atomic swap.
func (f *Follower) publish(c *trainingdb.Compiled, gen uint64) error {
	opts := []core.Option{
		core.WithCompiled(c),
		core.WithAlgorithm(f.cfg.Algorithm),
		core.WithConfig(f.cfg.Build),
	}
	if f.cfg.Names == NamesFromEntries {
		opts = append(opts, core.WithEntryNames())
	}
	in, err := core.New(opts...)
	if err != nil {
		return fmt.Errorf("repl: build follower service: %w", err)
	}
	snap := &core.Snapshot{Generation: gen, Service: in.Service, BuiltAt: time.Now()}
	if f.reg == nil {
		reg, err := core.NewSnapshotRegistry(snap)
		if err != nil {
			return err
		}
		f.reg = reg
		close(f.ready)
	} else {
		f.reg.Publish(snap)
	}
	f.gen.Store(gen)
	return nil
}

// stream tails the WAL from the applied sequence, folding records and
// republishing on publish notes. It returns reset=true when the
// trainer's history is incompatible with the follower's world (the
// caller discards it and re-bootstraps) and reset=false for plain
// disconnects (the caller reconnects from the applied sequence).
func (f *Follower) stream(ctx context.Context) (reset bool, err error) {
	from := f.appliedSeq.Load()
	u := f.cfg.TrainerURL + "/v1/replicate/wal?from=" + strconv.FormatUint(from, 10) +
		"&gen=" + strconv.FormatUint(f.gen.Load(), 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("repl: wal stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fr := NewFrameReader(resp.Body)
	frame, err := fr.Next()
	if err != nil {
		return false, fmt.Errorf("repl: wal stream hello: %w", err)
	}
	if frame.Type != FrameHello {
		return false, fmt.Errorf("repl: wal stream opened with frame type %d, want hello", frame.Type)
	}
	hello, err := ParseHello(frame.Payload)
	if err != nil {
		return false, err
	}
	if hello.Epoch != f.epoch.Load() {
		return true, fmt.Errorf("repl: trainer epoch changed (%x → %x); re-bootstrapping", f.epoch.Load(), hello.Epoch)
	}
	if hello.HeadSeq < from {
		return true, fmt.Errorf("repl: trainer head %d behind applied %d; history regressed", hello.HeadSeq, from)
	}
	if hello.FromSeq != from {
		return false, fmt.Errorf("repl: stream cursor %d, requested %d", hello.FromSeq, from)
	}
	f.headSeq.Store(hello.HeadSeq)
	f.headBytes.Store(hello.HeadBytes)
	f.appliedBytes.Store(hello.FromBytes)
	f.observeLag()

	for {
		frame, err := fr.Next()
		if err != nil {
			return false, fmt.Errorf("repl: wal stream: %w", err)
		}
		switch frame.Type {
		case FrameRecord:
			want := f.appliedSeq.Load() + 1
			if frame.Seq != want {
				return false, fmt.Errorf("repl: wal stream gap: got seq %d, want %d", frame.Seq, want)
			}
			var rep ingest.Report
			if err := json.Unmarshal(frame.Payload, &rep); err != nil {
				return false, fmt.Errorf("repl: undecodable record %d: %w", frame.Seq, err)
			}
			f.fold(rep)
			f.appliedSeq.Store(frame.Seq)
			f.appliedBytes.Add(int64(FrameRecordOverhead + len(frame.Payload)))
			if frame.Seq > f.headSeq.Load() {
				f.headSeq.Store(frame.Seq)
			}
			f.markProgress()
			f.observeLag()
		case FramePublish:
			m, err := ParseManifest(frame.Payload)
			if err != nil {
				return false, err
			}
			if m.Epoch != f.epoch.Load() {
				return true, fmt.Errorf("repl: publish note from epoch %x, following %x", m.Epoch, f.epoch.Load())
			}
			applied := f.appliedSeq.Load()
			if m.Watermark > applied {
				return false, fmt.Errorf("repl: publish note watermark %d ahead of stream position %d", m.Watermark, applied)
			}
			if m.Watermark == applied && m.Generation != f.replica.Generation() {
				return true, fmt.Errorf("repl: diverged: replica generation %d != trainer %d at seq %d",
					f.replica.Generation(), m.Generation, applied)
			}
			f.floorRSSI, f.floorSigma = m.FloorRSSI, m.FloorSigma
			f.snapRadius = m.SnapRadius
			c := f.replica.Compile(f.floorRSSI, f.floorSigma)
			if err := f.publish(c, f.replica.Generation()); err != nil {
				return false, err
			}
			f.recompiles.Add(1)
		case FrameHeartbeat:
			hb, err := ParseHello(frame.Payload)
			if err != nil {
				return false, err
			}
			if hb.Epoch != f.epoch.Load() {
				return true, fmt.Errorf("repl: heartbeat from epoch %x, following %x", hb.Epoch, f.epoch.Load())
			}
			if hb.HeadSeq < f.appliedSeq.Load() {
				return true, fmt.Errorf("repl: trainer head %d regressed behind applied %d", hb.HeadSeq, f.appliedSeq.Load())
			}
			f.headSeq.Store(hb.HeadSeq)
			f.headBytes.Store(hb.HeadBytes)
			f.observeLag()
		default:
			return false, fmt.Errorf("repl: unexpected frame type %d mid-stream", frame.Type)
		}
	}
}

// FrameRecordOverhead is the on-disk WAL framing per record (length +
// CRC); byte-lag accounting adds it to each payload so follower bytes
// track the trainer's file offsets.
const FrameRecordOverhead = 8

// fold applies one WAL record to the replica exactly as the trainer's
// compactor does — same resolution rules, same Welford update — minus
// the copy-on-write clone: the replica's entries are never shared
// with published snapshots (Compile deep-copies into matrices).
func (f *Follower) fold(r ingest.Report) {
	name, pos, ok := ingest.ResolveReport(f.replica, r, f.snapRadius)
	if !ok {
		f.dropped.Add(1)
		return
	}
	f.replica.Fold(name, pos, r.Observation)
	f.folded.Add(1)
}

// observeLag refreshes the state gauge from the head/applied pair and
// stamps the progress clock when fully caught up.
func (f *Follower) observeLag() {
	if f.appliedSeq.Load() >= f.headSeq.Load() {
		f.state.Store(stateStreaming)
		f.markProgress()
	} else {
		f.state.Store(stateCatchingUp)
	}
}

// FollowerStats is the follower's telemetry for /healthz + /metrics.
type FollowerStats struct {
	// State is one of the State* constants.
	State string `json:"state"`
	// Generation is the serving snapshot's generation.
	Generation uint64 `json:"generation"`
	// AppliedSeq/HeadSeq are the replication cursor and the trainer's
	// last known head.
	AppliedSeq uint64 `json:"applied_seq"`
	HeadSeq    uint64 `json:"head_seq"`
	// LagSeqs/LagBytes/LagSeconds measure how far behind the trainer
	// this follower is. LagSeconds is zero while caught up, otherwise
	// the time since replication last made progress.
	LagSeqs    uint64  `json:"lag_seqs"`
	LagBytes   int64   `json:"lag_bytes"`
	LagSeconds float64 `json:"lag_seconds"`
	// Bootstraps counts successful snapshot bootstraps; Reconnects
	// counts stream teardowns; Regressions counts world resets (epoch
	// change, head regression, divergence); StaleRejects counts
	// bootstrap manifests refused as older than the serving generation.
	Bootstraps   uint64 `json:"bootstraps"`
	Reconnects   uint64 `json:"reconnects"`
	Regressions  uint64 `json:"regressions"`
	StaleRejects uint64 `json:"stale_rejects"`
	// Folded/Dropped/Recompiles mirror the trainer-side fold counters.
	Folded     uint64 `json:"folded"`
	Dropped    uint64 `json:"dropped"`
	Recompiles uint64 `json:"recompiles"`
	// LastError is the most recent bootstrap/stream error, empty when
	// none has occurred.
	LastError string `json:"last_error,omitempty"`
}

// Stats returns a point-in-time counter snapshot.
func (f *Follower) Stats() FollowerStats {
	applied, head := f.appliedSeq.Load(), f.headSeq.Load()
	st := FollowerStats{
		State:        stateNames[f.state.Load()],
		Generation:   f.gen.Load(),
		AppliedSeq:   applied,
		HeadSeq:      head,
		Bootstraps:   f.bootstraps.Load(),
		Reconnects:   f.reconnects.Load(),
		Regressions:  f.regressions.Load(),
		StaleRejects: f.staleRejects.Load(),
		Folded:       f.folded.Load(),
		Dropped:      f.dropped.Load(),
		Recompiles:   f.recompiles.Load(),
		LastError:    f.lastError(),
	}
	if head > applied {
		st.LagSeqs = head - applied
		if hb, ab := f.headBytes.Load(), f.appliedBytes.Load(); hb > ab && ab > 0 {
			st.LagBytes = hb - ab
		}
		if p := f.lastProgress.Load(); p != 0 {
			st.LagSeconds = time.Since(time.Unix(0, p)).Seconds()
		}
	}
	return st
}
