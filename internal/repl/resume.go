package repl

import (
	"encoding/binary"
	"fmt"
	"math"

	"indoorloc/internal/trainingdb"
)

// The resume blob ships the one piece of trainer state the compiled
// artifact destroys: the exact per-cell standard deviations. Compile
// clamps Sigma to stats.MinSigma (σ=0 cells — every sample equal —
// are common) and AddSample recovers Welford's second moment from the
// stored σ, so resuming a fold from the clamped matrix would diverge
// from the trainer on the very next record. Shipping the raw float64
// bits restores the trainer's exact accumulator state: both sides run
// the identical σ → m2 → σ round trip from identical bits, so every
// subsequent fold lands on identical bits too.
//
// Layout (all little endian):
//
//	8  bytes  magic "ILRSIGM1"
//	u32       entry count (must match the artifact)
//	u32       AP count (must match the artifact)
//	u64       trained-cell count
//	f64 × n   raw StdDev per trained cell, entry-major artifact order
const resumeMagic = "ILRSIGM1"

const resumeHeaderSize = 8 + 4 + 4 + 8

// EncodeResume captures the raw standard deviations for every trained
// cell of c from the frozen database it was compiled from, in the
// artifact's entry-major cell order.
func EncodeResume(c *trainingdb.Compiled, db *trainingdb.DB) ([]byte, error) {
	nE, nAP := c.NumEntries(), c.NumAPs()
	trained := 0
	for _, t := range c.Trained {
		if t {
			trained++
		}
	}
	out := make([]byte, resumeHeaderSize, resumeHeaderSize+8*trained)
	copy(out, resumeMagic)
	binary.LittleEndian.PutUint32(out[8:12], uint32(nE))
	binary.LittleEndian.PutUint32(out[12:16], uint32(nAP))
	binary.LittleEndian.PutUint64(out[16:24], uint64(trained))
	var cell [8]byte
	for i, name := range c.Names {
		e := db.Entries[name]
		if e == nil {
			return nil, fmt.Errorf("repl: resume: entry %q in artifact but not in database", name)
		}
		base := i * nAP
		for j, b := range c.BSSIDs {
			if !c.Trained[base+j] {
				continue
			}
			s := e.PerAP[b]
			if s == nil {
				return nil, fmt.Errorf("repl: resume: cell ⟨%s, %s⟩ trained in artifact but missing in database", name, b)
			}
			binary.LittleEndian.PutUint64(cell[:], math.Float64bits(s.StdDev))
			out = append(out, cell[:]...)
		}
	}
	return out, nil
}

// DecodeResume validates the blob against the artifact's dimensions
// and returns the raw sigmas in trained-cell order.
func DecodeResume(data []byte, c *trainingdb.Compiled) ([]float64, error) {
	if len(data) < resumeHeaderSize || string(data[:8]) != resumeMagic {
		return nil, fmt.Errorf("repl: resume blob has bad magic")
	}
	nE := int(binary.LittleEndian.Uint32(data[8:12]))
	nAP := int(binary.LittleEndian.Uint32(data[12:16]))
	count := binary.LittleEndian.Uint64(data[16:24])
	if nE != c.NumEntries() || nAP != c.NumAPs() {
		return nil, fmt.Errorf("repl: resume blob is %d×%d, artifact is %d×%d", nE, nAP, c.NumEntries(), c.NumAPs())
	}
	trained := 0
	for _, t := range c.Trained {
		if t {
			trained++
		}
	}
	if count != uint64(trained) {
		return nil, fmt.Errorf("repl: resume blob has %d cells, artifact has %d trained", count, trained)
	}
	if int64(len(data)-resumeHeaderSize) != int64(count)*8 {
		return nil, fmt.Errorf("repl: resume blob length %d does not frame %d cells", len(data), count)
	}
	sigmas := make([]float64, count)
	for i := range sigmas {
		off := resumeHeaderSize + i*8
		sigmas[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
	}
	return sigmas, nil
}

// BuildReplica reconstructs a training database bit-identical (in
// every field Compile and ResolveReport read) to the trainer's frozen
// master at the artifact's generation: entry positions and per-cell
// ⟨N, Mean⟩ come from the artifact's float64 matrices, the raw StdDev
// from the resume blob. Raw sample lists are not replicated — nothing
// on the follower's serve or fold path reads them (the follower is
// restricted to compiled-servable algorithms). The replica's
// generation counter is aligned to the artifact's, so trainer and
// follower folding the same WAL suffix produce the same generation
// numbers.
func BuildReplica(c *trainingdb.Compiled, sigmas []float64) (*trainingdb.DB, error) {
	if c.Mean == nil || c.N == nil {
		return nil, fmt.Errorf("repl: artifact lacks float64 matrices; cannot reconstruct a replica")
	}
	nAP := c.NumAPs()
	db := &trainingdb.DB{
		Entries: make(map[string]*trainingdb.Entry, len(c.Names)),
		BSSIDs:  append([]string(nil), c.BSSIDs...),
	}
	k := 0
	for i, name := range c.Names {
		e := &trainingdb.Entry{Name: name, Pos: c.Pos[i], PerAP: make(map[string]*trainingdb.APStats)}
		base := i * nAP
		for j, b := range c.BSSIDs {
			cell := base + j
			if !c.Trained[cell] {
				continue
			}
			if k >= len(sigmas) {
				return nil, fmt.Errorf("repl: resume blob exhausted at cell ⟨%s, %s⟩", name, b)
			}
			mean := c.Mean[cell]
			e.PerAP[b] = &trainingdb.APStats{
				BSSID:  b,
				N:      int(c.N[cell]),
				Mean:   mean,
				StdDev: sigmas[k],
				Min:    mean,
				Max:    mean,
			}
			k++
		}
		db.Entries[name] = e
	}
	if k != len(sigmas) {
		return nil, fmt.Errorf("repl: resume blob has %d extra cells", len(sigmas)-k)
	}
	db.SetGeneration(c.Generation)
	return db, nil
}
