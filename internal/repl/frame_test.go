package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"name":"g0","observation":{"ap0":-50}}`),
		bytes.Repeat([]byte{0xA5}, 4096),
	}
	var buf bytes.Buffer
	for i, p := range payloads {
		if err := WriteFrame(&buf, FrameRecord, uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, p := range payloads {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != FrameRecord || f.Seq != uint64(i+1) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d round-tripped wrong: %+v", i, f)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean boundary: err %v, want io.EOF", err)
	}
}

func TestFrameDecodeMatchesReader(t *testing.T) {
	data := AppendFrame(nil, FramePublish, 42, []byte(`{"epoch":1}`))
	data = AppendFrame(data, FrameHeartbeat, 43, nil)
	f, n, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FramePublish || f.Seq != 42 || string(f.Payload) != `{"epoch":1}` {
		t.Fatalf("decoded %+v", f)
	}
	f2, n2, err := DecodeFrame(data[n:])
	if err != nil {
		t.Fatal(err)
	}
	if f2.Type != FrameHeartbeat || f2.Seq != 43 || len(f2.Payload) != 0 {
		t.Fatalf("second frame %+v", f2)
	}
	if n+n2 != len(data) {
		t.Fatalf("consumed %d+%d of %d bytes", n, n2, len(data))
	}
}

// TestFrameTornStream pins the torn-segment contract: a stream cut at
// any interior byte yields io.ErrUnexpectedEOF from the reader — never
// a decoded partial frame, never a clean EOF.
func TestFrameTornStream(t *testing.T) {
	full := AppendFrame(nil, FrameRecord, 7, []byte("torn-me-somewhere"))
	for cut := 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		if _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err %v, want io.ErrUnexpectedEOF", cut, err)
		}
		if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("DecodeFrame cut at %d: err %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	good := AppendFrame(nil, FrameRecord, 1, []byte("payload"))

	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0xFF
		return b
	}
	// Unknown type.
	if _, _, err := DecodeFrame(flip(0)); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("bad type: %v", err)
	}
	// Flipped payload byte fails the checksum.
	if _, _, err := DecodeFrame(flip(FrameHeaderSize)); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("bad payload: %v", err)
	}
	// Flipped checksum byte fails too.
	if _, _, err := DecodeFrame(flip(13)); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("bad crc: %v", err)
	}
	// Insane length is corruption, not a request for more bytes.
	b := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(b[9:13], MaxFramePayload+1)
	if _, _, err := DecodeFrame(b); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("oversize length: %v", err)
	}
	// The reader agrees on every verdict.
	for _, bad := range [][]byte{flip(0), flip(FrameHeaderSize), flip(13), b} {
		if _, err := NewFrameReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrFrameCorrupt) {
			t.Errorf("reader on corrupt frame: %v", err)
		}
	}
	// WriteFrame refuses to emit an over-cap payload.
	if err := WriteFrame(io.Discard, FrameRecord, 1, make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("oversize payload written")
	}
}

func TestParseHelloValidation(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"epoch":0,"head_seq":1}`,
		`{"epoch":1,"head_bytes":-1}`,
		`{"epoch":1,"from_seq":5,"head_seq":4}`,
	} {
		if _, err := ParseHello([]byte(bad)); err == nil {
			t.Errorf("hello %s accepted", bad)
		}
	}
	h, err := ParseHello([]byte(`{"epoch":9,"head_seq":10,"head_bytes":100,"from_seq":4,"from_bytes":40}`))
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 9 || h.HeadSeq != 10 || h.FromSeq != 4 || h.FromBytes != 40 {
		t.Fatalf("hello %+v", h)
	}
}

func TestParseManifestValidation(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"epoch":0,"artifact_size":10,"resume_size":10}`,
		`{"epoch":1,"artifact_size":0,"resume_size":10}`,
		`{"epoch":1,"artifact_size":10,"resume_size":-5}`,
		`{"epoch":1,"artifact_size":10,"resume_size":10,"entries":-1}`,
	} {
		if _, err := ParseManifest([]byte(bad)); err == nil {
			t.Errorf("manifest %s accepted", bad)
		}
	}
	m, err := ParseManifest([]byte(`{"epoch":3,"generation":7,"wal_watermark":12,"artifact_size":100,"resume_size":16}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 3 || m.Generation != 7 || m.Watermark != 12 {
		t.Fatalf("manifest %+v", m)
	}
}
