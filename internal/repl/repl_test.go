package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/ingest"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/trainingdb"
)

// This file holds the chaos/property suite for the full replication
// loop: a real ingest.Manager + Source on one end of an HTTP server,
// a real Follower on the other, with the network in between
// deliberately cut, swapped, and regressed.

// replRebuilder mirrors locserved's: probabilistic locator plus entry
// names, so the snapshot locator exposes a compiled view to replicate.
func replRebuilder(db *trainingdb.DB) (*core.Service, error) {
	locator, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		return nil, err
	}
	names := locmap.New()
	for _, name := range db.Names() {
		if err := names.Add(name, db.Entries[name].Pos); err != nil {
			return nil, err
		}
	}
	return &core.Service{DB: db, Locator: locator, Names: names}, nil
}

// trainerInstance is one trainer lifetime: manager, source, and a
// channel that kills its in-flight WAL streams when the "process"
// dies (a real restart drops the TCP connections; httptest keeps the
// listener, so the harness cuts the streams itself).
type trainerInstance struct {
	mgr  *ingest.Manager
	src  *Source
	dead chan struct{}
}

// trainerHarness serves replication endpoints for a swappable trainer
// instance, with a one-shot byte limit that tears a WAL stream
// mid-flight and a kill switch that drops every active stream (the
// way a real restart drops TCP connections).
type trainerHarness struct {
	t   *testing.T
	ts  *httptest.Server
	cur atomic.Pointer[trainerInstance]
	cut atomic.Int64 // one-shot: >0 tears the next WAL stream after N bytes

	mu   sync.Mutex
	kill chan struct{} // closed+replaced to drop active WAL streams
}

func newTrainerHarness(t *testing.T, walPath string, cfg ingest.Config) *trainerHarness {
	t.Helper()
	h := &trainerHarness{t: t, kill: make(chan struct{})}
	h.cur.Store(h.spawn(walPath, cfg))
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/replicate/snapshot", func(w http.ResponseWriter, r *http.Request) {
		h.cur.Load().src.ServeSnapshot(w, r)
	})
	mux.HandleFunc("/v1/replicate/wal", func(w http.ResponseWriter, r *http.Request) {
		inst := h.cur.Load()
		h.mu.Lock()
		kill := h.kill
		h.mu.Unlock()
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		go func() {
			select {
			case <-inst.dead:
				cancel()
			case <-kill:
				cancel()
			case <-ctx.Done():
			}
		}()
		if limit := h.cut.Swap(0); limit > 0 {
			w = &cutWriter{ResponseWriter: w, budget: limit}
		}
		inst.src.ServeWAL(w, r.WithContext(ctx))
	})
	h.ts = httptest.NewServer(mux)
	t.Cleanup(h.ts.Close)
	t.Cleanup(func() { h.cur.Load().mgr.Close() })
	return h
}

// tear arms a byte budget for the next WAL stream and drops the
// active ones, so the follower reconnects into the cut.
func (h *trainerHarness) tear(limit int64) {
	h.cut.Store(limit)
	h.mu.Lock()
	close(h.kill)
	h.kill = make(chan struct{})
	h.mu.Unlock()
}

// spawn builds a trainer instance over a fresh master DB and the given
// WAL path, with replication capture wired from the first publish.
func (h *trainerHarness) spawn(walPath string, cfg ingest.Config) *trainerInstance {
	h.t.Helper()
	src := NewSource(SourceConfig{Heartbeat: 50 * time.Millisecond})
	cfg.WALPath = walPath
	cfg.OnPublish = src.OnPublish
	mgr, err := ingest.NewManager(replTestDB(), replRebuilder, cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	src.Bind(mgr)
	return &trainerInstance{mgr: mgr, src: src, dead: make(chan struct{})}
}

// restart simulates a trainer dying and coming back with a fresh WAL
// (a new epoch, a new history): the old instance's streams are cut,
// its manager closed, and a new instance serves the same URL.
func (h *trainerHarness) restart(walPath string, cfg ingest.Config) *trainerInstance {
	h.t.Helper()
	old := h.cur.Load()
	close(old.dead)
	old.mgr.Close()
	inst := h.spawn(walPath, cfg)
	h.cur.Store(inst)
	h.t.Cleanup(func() { inst.mgr.Close() })
	return inst
}

func (h *trainerHarness) mgr() *ingest.Manager { return h.cur.Load().mgr }

// cutWriter tears the response after a byte budget: the next Write
// that would exceed it writes the remainder and then fails, so the
// stream dies mid-frame from the client's point of view.
type cutWriter struct {
	http.ResponseWriter
	budget int64
}

func (c *cutWriter) Write(b []byte) (int, error) {
	if c.budget <= 0 {
		return 0, fmt.Errorf("stream torn by test harness")
	}
	if int64(len(b)) > c.budget {
		n, _ := c.ResponseWriter.Write(b[:c.budget])
		c.budget = 0
		if f, ok := c.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		return n, fmt.Errorf("stream torn by test harness")
	}
	c.budget -= int64(len(b))
	return c.ResponseWriter.Write(b)
}

func (c *cutWriter) Unwrap() http.ResponseWriter { return c.ResponseWriter }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func startFollower(t *testing.T, url string) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerConfig{
		TrainerURL:   url,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// compiledOf extracts the dense radio-map view a registry snapshot
// serves from.
func compiledOf(t *testing.T, snap *core.Snapshot) *trainingdb.Compiled {
	t.Helper()
	src, ok := snap.Service.Locator.(localize.CompiledSource)
	if !ok || src.CompiledView() == nil {
		t.Fatalf("snapshot locator %T exposes no compiled view", snap.Service.Locator)
	}
	return src.CompiledView()
}

// converged waits until the follower serves the trainer's current
// generation with the stream fully applied, then asserts the two
// compiled radio maps are byte-identical.
func converged(t *testing.T, mgr *ingest.Manager, f *Follower) {
	t.Helper()
	defer func() {
		if t.Failed() {
			t.Logf("follower stats: %+v", f.Stats())
			t.Logf("trainer: gen %d head %d", mgr.Registry().Current().Generation, mgr.WAL().Seq())
		}
	}()
	waitFor(t, "follower convergence", func() bool {
		st := f.Stats()
		return st.State == StateStreaming &&
			st.Generation == mgr.Registry().Current().Generation &&
			st.AppliedSeq == mgr.WAL().Seq()
	})
	want := compiledOf(t, mgr.Registry().Current())
	got := compiledOf(t, f.Registry().Current())
	compiledEqual(t, "trainer vs follower", want, got)
}

// submitReports streams n mixed reports through the trainer: named
// reinforcements, coordinate snaps, new entries, new APs.
func submitReports(t *testing.T, mgr *ingest.Manager, n, seed int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := seed + i
		var r ingest.Report
		switch k % 4 {
		case 0:
			r = ingest.Report{Name: fmt.Sprintf("g%d", k%9),
				Observation: map[string]float64{"ap0": -45 - float64(k%17)}}
		case 1:
			r = ingest.Report{Pos: &ingest.ReportPos{X: float64(k%3) * 20, Y: 1},
				Observation: map[string]float64{"ap1": -55.5 - float64(k%7)}}
		case 2:
			r = ingest.Report{Name: fmt.Sprintf("wing%d", k%3), Pos: &ingest.ReportPos{X: 200 + float64(k%3), Y: 300},
				Observation: map[string]float64{"ap2": -70, fmt.Sprintf("ap-x%d", k%2): -82}}
		default:
			r = ingest.Report{Name: "g4", Observation: map[string]float64{"ap0": -50, "ap1": -60, "ap2": -70}}
		}
		if err := mgr.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFollowerConvergesByteIdentical is the tentpole property end to
// end: bootstrap from the snapshot payload, tail the WAL through real
// HTTP, and land on compiled matrices byte-identical to the trainer's
// at the same generation — through new entries, new APs, and σ=0
// clamp cases.
func TestFollowerConvergesByteIdentical(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 5, FlushInterval: 20 * time.Millisecond, SnapRadius: 5})
	f := startFollower(t, h.ts.URL)
	converged(t, h.mgr(), f)

	submitReports(t, h.mgr(), 60, 0)
	waitFor(t, "trainer folds", func() bool { return h.mgr().Stats().Folded >= 60 })
	converged(t, h.mgr(), f)
	st := f.Stats()
	if st.Bootstraps != 1 {
		t.Errorf("bootstraps %d, want exactly 1", st.Bootstraps)
	}
	if st.Regressions != 0 {
		t.Errorf("regressions %d, want 0", st.Regressions)
	}
	if st.Folded == 0 {
		t.Error("follower folded nothing; it converged by re-bootstrapping, not streaming")
	}
}

// TestFollowerNamesMode checks the Names knob: the default derives a
// symbolic name map from the replica's entries, NamesNone publishes
// position-only services — matching a trainer that serves without a
// name map (and skipping the O(entries) nearest-name scan per locate).
func TestFollowerNamesMode(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 5, FlushInterval: 20 * time.Millisecond, SnapRadius: 5})

	def := startFollower(t, h.ts.URL)
	converged(t, h.mgr(), def)
	if def.Registry().Current().Service.Names == nil {
		t.Error("default follower published no name map; want entry-derived names")
	}

	bare, err := NewFollower(FollowerConfig{
		TrainerURL:   h.ts.URL,
		Names:        NamesNone,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := bare.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bare.Close() })
	converged(t, h.mgr(), bare)
	if bare.Registry().Current().Service.Names != nil {
		t.Error("NamesNone follower published a name map; want position-only services")
	}

	// The knob changes only the name layer, never the radio map.
	submitReports(t, h.mgr(), 20, 0)
	waitFor(t, "trainer folds", func() bool { return h.mgr().Stats().Folded >= 20 })
	converged(t, h.mgr(), def)
	converged(t, h.mgr(), bare)
}

// TestFollowerSurvivesTornStreams cuts the WAL stream at hostile byte
// positions — mid-header, mid-payload — and checks the follower
// reconnects from its applied sequence and still converges bit-for-bit
// with no world reset.
func TestFollowerSurvivesTornStreams(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 4, FlushInterval: 15 * time.Millisecond, SnapRadius: 5})
	f := startFollower(t, h.ts.URL)
	converged(t, h.mgr(), f)

	for round, limit := range []int64{23, 158, 401} {
		h.tear(limit)
		submitReports(t, h.mgr(), 30, 1000*(round+1))
		waitFor(t, "trainer folds", func() bool {
			return h.mgr().Stats().Folded >= uint64(30*(round+1))
		})
		converged(t, h.mgr(), f)
	}
	st := f.Stats()
	if st.Reconnects == 0 {
		t.Error("no reconnects — the cuts never landed and the test proved nothing")
	}
	if st.Regressions != 0 || st.Bootstraps != 1 {
		t.Errorf("torn streams caused %d regressions / %d bootstraps; want 0 / 1", st.Regressions, st.Bootstraps)
	}
}

// TestFollowerKillAndRestart kills a follower and starts a fresh one
// (the restart case: no memory, empty state) against a trainer that
// kept moving; the newcomer must bootstrap once and converge to the
// same bytes.
func TestFollowerKillAndRestart(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 3, FlushInterval: 15 * time.Millisecond, SnapRadius: 5})
	f := startFollower(t, h.ts.URL)
	submitReports(t, h.mgr(), 20, 0)
	waitFor(t, "trainer folds", func() bool { return h.mgr().Stats().Folded >= 20 })
	converged(t, h.mgr(), f)
	f.Close() // kill

	// The trainer keeps publishing while the follower is down.
	submitReports(t, h.mgr(), 25, 500)
	waitFor(t, "trainer folds", func() bool { return h.mgr().Stats().Folded >= 45 })

	f2 := startFollower(t, h.ts.URL)
	converged(t, h.mgr(), f2)
	if st := f2.Stats(); st.Bootstraps != 1 || st.Regressions != 0 {
		t.Errorf("restarted follower: %d bootstraps / %d regressions, want 1 / 0", st.Bootstraps, st.Regressions)
	}
}

// TestFollowerRebootstrapsOnEpochChange is the trainer-restart chaos
// case: the trainer dies and comes back with a fresh WAL — a new
// epoch, a new history whose sequence numbers overlap the old ones.
// The follower must detect the regression, discard its world, and
// re-bootstrap onto the new history rather than fold alien records.
func TestFollowerRebootstrapsOnEpochChange(t *testing.T) {
	dir := t.TempDir()
	cfg := ingest.Config{FlushReports: 3, FlushInterval: 15 * time.Millisecond, SnapRadius: 5}
	h := newTrainerHarness(t, filepath.Join(dir, "life1.wal"), cfg)
	f := startFollower(t, h.ts.URL)
	submitReports(t, h.mgr(), 20, 0)
	waitFor(t, "trainer folds", func() bool { return h.mgr().Stats().Folded >= 20 })
	converged(t, h.mgr(), f)
	epoch1 := h.mgr().WAL().Epoch()

	// Trainer restart with a brand-new journal: different epoch, head
	// far below the follower's applied sequence.
	inst := h.restart(filepath.Join(dir, "life2.wal"), cfg)
	if e2 := inst.mgr.WAL().Epoch(); e2 == epoch1 {
		t.Fatalf("fresh WAL reused epoch %x", e2)
	}
	submitReports(t, inst.mgr, 7, 9000)
	waitFor(t, "new trainer folds", func() bool { return inst.mgr.Stats().Folded >= 7 })

	waitFor(t, "world reset", func() bool { return f.Stats().Regressions >= 1 })
	converged(t, inst.mgr, f)
	if st := f.Stats(); st.Bootstraps < 2 {
		t.Errorf("bootstraps %d, want ≥ 2 (one per trainer life)", st.Bootstraps)
	}
}

// TestBootstrapRejectsStaleGeneration pins the stale-snapshot guard: a
// bootstrap manifest from the epoch the follower already follows with
// a generation below what it serves must be refused, not regress the
// fleet.
func TestBootstrapRejectsStaleGeneration(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 1, FlushInterval: time.Hour})
	f, err := NewFollower(FollowerConfig{TrainerURL: h.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	// Pretend the fleet already serves a later generation of this epoch
	// (e.g. the balancer handed us a lagging trainer's snapshot).
	f.gen.Store(f.gen.Load() + 5)
	err = f.bootstrap(ctx)
	if err == nil {
		t.Fatal("stale snapshot accepted")
	}
	if st := f.Stats(); st.StaleRejects != 1 {
		t.Errorf("stale rejects %d, want 1 (err: %v)", st.StaleRejects, err)
	}
}

// TestServeWALPositionBeyondHead: a follower whose position is past
// the trainer's head (history regressed without an epoch change, e.g.
// a restored WAL backup) gets the hello and a clean end of stream, and
// the follower-side check turns it into a world reset.
func TestServeWALPositionBeyondHead(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 1, FlushInterval: time.Hour})
	resp, err := http.Get(h.ts.URL + "/v1/replicate/wal?from=999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := NewFrameReader(resp.Body)
	frame, err := fr.Next()
	if err != nil || frame.Type != FrameHello {
		t.Fatalf("first frame %+v, err %v", frame, err)
	}
	hello, err := ParseHello(frame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if hello.HeadSeq >= 999 {
		t.Fatalf("head %d should be below the requested position", hello.HeadSeq)
	}
	if _, err := fr.Next(); err == nil {
		t.Fatal("stream continued past an unreachable position")
	}
}

func TestServeSnapshotGenAssertion(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 1, FlushInterval: time.Hour})
	st := h.cur.Load().src.Stats()
	if !st.Ready {
		t.Fatal("source captured nothing from the initial publish")
	}
	get := func(q string) int {
		resp, err := http.Get(h.ts.URL + "/v1/replicate/snapshot" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(fmt.Sprintf("?gen=%d", st.Generation)); code != http.StatusOK {
		t.Errorf("matching gen: %d", code)
	}
	if code := get(fmt.Sprintf("?gen=%d", st.Generation+1)); code != http.StatusConflict {
		t.Errorf("mismatched gen: %d, want 409", code)
	}
	if code := get("?gen=bogus"); code != http.StatusBadRequest {
		t.Errorf("unparsable gen: %d, want 400", code)
	}
}

// TestReplErrorEnvelope: replication-endpoint errors carry the same
// {"error":{code,message}} envelope as the serving API, with a stable
// machine-readable code, so followers and operators branch on codes
// rather than message text. Regression test for the ad-hoc
// {"error":"msg"} bodies replError used to emit.
func TestReplErrorEnvelope(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 1, FlushInterval: time.Hour})
	st := h.cur.Load().src.Stats()
	cases := []struct {
		path     string
		status   int
		wantCode string
	}{
		{"/v1/replicate/snapshot?gen=bogus", http.StatusBadRequest, "bad_request"},
		{fmt.Sprintf("/v1/replicate/snapshot?gen=%d", st.Generation+1), http.StatusConflict, "generation_conflict"},
		{"/v1/replicate/wal?from=bogus", http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		resp, err := http.Get(h.ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: body is not an error envelope: %v", tc.path, err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if env.Error.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.path, env.Error.Code, tc.wantCode)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty message", tc.path)
		}
	}
}

// TestFollowerStatsUnderChurn runs readers over Stats while the
// follower streams — the gauges are read from handler goroutines in
// production, so this is the -race contract for the telemetry path.
func TestFollowerStatsUnderChurn(t *testing.T) {
	h := newTrainerHarness(t, filepath.Join(t.TempDir(), "t.wal"),
		ingest.Config{FlushReports: 2, FlushInterval: 10 * time.Millisecond, SnapRadius: 5})
	f := startFollower(t, h.ts.URL)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := f.Stats()
					if st.HeadSeq >= st.AppliedSeq && st.LagSeqs != st.HeadSeq-st.AppliedSeq {
						t.Errorf("inconsistent lag: %+v", st)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}
	submitReports(t, h.mgr(), 40, 0)
	waitFor(t, "trainer folds", func() bool { return h.mgr().Stats().Folded >= 40 })
	converged(t, h.mgr(), f)
	close(stop)
	wg.Wait()
}
