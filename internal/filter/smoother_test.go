package filter

import (
	"math"
	"testing"

	"indoorloc/internal/geom"
)

func TestSmoothPathDegenerate(t *testing.T) {
	if SmoothPath(nil, 1, 1, 5) != nil {
		t.Error("nil input produced output")
	}
	one := SmoothPath([]geom.Point{geom.Pt(3, 4)}, 1, 1, 5)
	if len(one) != 1 || one[0].Dist(geom.Pt(3, 4)) > 1 {
		t.Errorf("single point: %v", one)
	}
}

func TestSmoothPathBeatsOnlineKalman(t *testing.T) {
	truth, meas := walkPath(120, 5, 11)
	online := runFilter(&Kalman{Dt: 1, ProcessNoise: 0.5, MeasurementNoise: 5}, meas)
	smoothed := SmoothPath(meas, 1, 0.5, 5)
	if len(smoothed) != len(truth) {
		t.Fatalf("%d smoothed points", len(smoothed))
	}
	onlineErr := rmse(truth, online)
	smoothErr := rmse(truth, smoothed)
	rawErr := rmse(truth, meas)
	if smoothErr >= onlineErr {
		t.Errorf("smoother (%.2f) not better than online Kalman (%.2f)", smoothErr, onlineErr)
	}
	if smoothErr >= rawErr {
		t.Errorf("smoother (%.2f) not better than raw (%.2f)", smoothErr, rawErr)
	}
}

func TestSmoothPathNoiseFreeIsNearExact(t *testing.T) {
	// A clean constant-velocity track should pass through nearly
	// unchanged.
	var meas []geom.Point
	for i := 0; i < 50; i++ {
		meas = append(meas, geom.Pt(float64(i)*2, float64(i)))
	}
	smoothed := SmoothPath(meas, 1, 0.5, 3)
	worst := 0.0
	for i := range meas {
		if d := smoothed[i].Dist(meas[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.5 {
		t.Errorf("clean track distorted by %.2f ft", worst)
	}
}

func TestSmoothPathEndpointsAnchored(t *testing.T) {
	truth, meas := walkPath(60, 4, 13)
	smoothed := SmoothPath(meas, 1, 0.5, 4)
	// The last smoothed state equals the last filtered state; both ends
	// should still be in the neighbourhood of the truth.
	if d := smoothed[len(smoothed)-1].Dist(truth[len(truth)-1]); d > 12 {
		t.Errorf("end drifted %.1f ft", d)
	}
	if d := smoothed[0].Dist(truth[0]); d > 12 {
		t.Errorf("start drifted %.1f ft", d)
	}
}

func TestSmoothPathDefaults(t *testing.T) {
	_, meas := walkPath(20, 3, 14)
	// Zero parameters take defaults without NaNs.
	smoothed := SmoothPath(meas, 0, 0, 0)
	for i, p := range smoothed {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("NaN at %d", i)
		}
	}
}
