package filter

import "indoorloc/internal/geom"

// SmoothPath runs a Rauch–Tung–Striebel smoother over a complete
// measurement sequence: a forward constant-velocity Kalman pass
// followed by a backward pass that conditions every state on the whole
// track. Unlike the online filters, the smoother sees the future, so
// it is the right tool for after-the-fact analysis — replaying a
// surveillance log, cleaning a survey walk, or grading a tracking
// experiment's ceiling.
//
// Parameters match Kalman: dt between measurements, process noise q
// (feet/s² white acceleration) and measurement noise r (feet, std
// dev). Non-positive values take the Kalman defaults. The returned
// slice has one smoothed position per measurement.
func SmoothPath(meas []geom.Point, dt, q, r float64) []geom.Point {
	n := len(meas)
	if n == 0 {
		return nil
	}
	if dt <= 0 {
		dt = 1
	}
	if q <= 0 {
		q = 1
	}
	if r <= 0 {
		r = 5
	}
	xs := smoothAxis1D(collect(meas, func(p geom.Point) float64 { return p.X }), dt, q, r)
	ys := smoothAxis1D(collect(meas, func(p geom.Point) float64 { return p.Y }), dt, q, r)
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(xs[i], ys[i])
	}
	return out
}

func collect(pts []geom.Point, f func(geom.Point) float64) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = f(p)
	}
	return out
}

// axisState is one filtered step's state and covariance along an axis.
type axisState struct {
	pos, vel      float64
	p11, p12, p22 float64
}

// smoothAxis1D runs forward filtering then RTS backward smoothing for
// one axis.
func smoothAxis1D(z []float64, dt, q, r float64) []float64 {
	n := len(z)
	// Forward pass, storing predicted and filtered states.
	filtered := make([]axisState, n)
	predicted := make([]axisState, n) // prior at step i (before update)
	var s axisState
	for i := 0; i < n; i++ {
		if i == 0 {
			predicted[0] = axisState{pos: z[0], p11: r * r, p22: 100}
		} else {
			// Predict.
			dt2 := dt * dt
			dt3 := dt2 * dt
			dt4 := dt2 * dt2
			predicted[i] = axisState{
				pos: s.pos + s.vel*dt,
				vel: s.vel,
				p11: s.p11 + 2*dt*s.p12 + dt2*s.p22 + q*dt4/4,
				p12: s.p12 + dt*s.p22 + q*dt3/2,
				p22: s.p22 + q*dt2,
			}
		}
		// Update.
		pr := predicted[i]
		denom := pr.p11 + r*r
		k1 := pr.p11 / denom
		k2 := pr.p12 / denom
		innov := z[i] - pr.pos
		s = axisState{
			pos: pr.pos + k1*innov,
			vel: pr.vel + k2*innov,
			p11: (1 - k1) * pr.p11,
			p12: (1 - k1) * pr.p12,
			p22: pr.p22 - k2*pr.p12,
		}
		filtered[i] = s
	}
	// Backward RTS pass.
	smoothed := make([]axisState, n)
	smoothed[n-1] = filtered[n-1]
	for i := n - 2; i >= 0; i-- {
		f := filtered[i]
		pr := predicted[i+1]
		// Smoother gain G = P_f Fᵀ P_pred⁻¹ for the 2-state model.
		// F = [1 dt; 0 1]; P_f Fᵀ rows:
		a11 := f.p11 + dt*f.p12
		a12 := f.p12
		a21 := f.p12 + dt*f.p22
		a22 := f.p22
		det := pr.p11*pr.p22 - pr.p12*pr.p12
		if det == 0 {
			smoothed[i] = f
			continue
		}
		// inv(P_pred)
		i11 := pr.p22 / det
		i12 := -pr.p12 / det
		i22 := pr.p11 / det
		g11 := a11*i11 + a12*i12
		g12 := a11*i12 + a12*i22
		g21 := a21*i11 + a22*i12
		g22 := a21*i12 + a22*i22
		dp := smoothed[i+1].pos - pr.pos
		dv := smoothed[i+1].vel - pr.vel
		smoothed[i] = axisState{
			pos: f.pos + g11*dp + g12*dv,
			vel: f.vel + g21*dp + g22*dv,
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = smoothed[i].pos
	}
	return out
}
