package filter

import (
	"math"
	"sort"

	"indoorloc/internal/geom"
)

// GridBayes is a discrete Bayes filter over the training grid: the
// belief is a probability per training point, propagated with a
// distance-decay motion model and updated with the per-training-point
// likelihoods that probabilistic localizers expose via their
// candidates. This is the "Bayesian-filter" the paper's future work
// names, applied to its own symbolic output space.
type GridBayes struct {
	// Points are the training positions, fixed at construction.
	points []geom.Point
	names  []string
	belief []float64
	// MoveSigma scales the motion model: the probability of hopping
	// from point i to point j in one step decays as a Gaussian in the
	// distance between them. Zero means 12 ft.
	MoveSigma float64

	started bool
}

// NewGridBayes builds a filter over named training positions. The map
// iteration order is normalised by sorting names, keeping the belief
// vector layout deterministic.
func NewGridBayes(points map[string]geom.Point) *GridBayes {
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	g := &GridBayes{names: names}
	for _, n := range names {
		g.points = append(g.points, points[n])
	}
	g.belief = make([]float64, len(g.points))
	return g
}

// UpdateLikelihood fuses one observation's per-training-point
// likelihoods (keyed by name; linear scale, need not be normalised)
// and returns the maximum-a-posteriori name and position, plus the
// posterior expectation of position. Unknown names are ignored;
// missing names contribute a small floor likelihood so the belief
// never collapses to zero.
func (g *GridBayes) UpdateLikelihood(lik map[string]float64) (name string, mode geom.Point, mean geom.Point) {
	n := len(g.points)
	if n == 0 {
		return "", geom.Point{}, geom.Point{}
	}
	if !g.started {
		for i := range g.belief {
			g.belief[i] = 1 / float64(n)
		}
		g.started = true
	} else {
		g.predict()
	}
	const floorLik = 1e-12
	sum := 0.0
	for i, nm := range g.names {
		l, ok := lik[nm]
		if !ok || l <= 0 {
			l = floorLik
		}
		g.belief[i] *= l
		sum += g.belief[i]
	}
	if sum <= 0 {
		for i := range g.belief {
			g.belief[i] = 1 / float64(n)
		}
		sum = 1
	} else {
		for i := range g.belief {
			g.belief[i] /= sum
		}
	}
	best := 0
	var ex, ey float64
	for i, b := range g.belief {
		if b > g.belief[best] {
			best = i
		}
		ex += b * g.points[i].X
		ey += b * g.points[i].Y
	}
	return g.names[best], g.points[best], geom.Pt(ex, ey)
}

// predict spreads belief with the Gaussian motion kernel.
func (g *GridBayes) predict() {
	sigma := g.MoveSigma
	if sigma <= 0 {
		sigma = 12
	}
	n := len(g.points)
	next := make([]float64, n)
	weights := make([]float64, n)
	for j := 0; j < n; j++ {
		if g.belief[j] == 0 {
			continue
		}
		// Kernel weights from j to every i, normalised per source so
		// each point's mass is conserved (no edge leakage).
		var wsum float64
		for i := 0; i < n; i++ {
			d := g.points[i].Dist(g.points[j])
			w := math.Exp(-d * d / (2 * sigma * sigma))
			weights[i] = w
			wsum += w
		}
		if wsum == 0 {
			next[j] += g.belief[j]
			continue
		}
		for i := 0; i < n; i++ {
			next[i] += g.belief[j] * weights[i] / wsum
		}
	}
	g.belief = next
}

// Belief returns the current posterior keyed by name (a copy).
func (g *GridBayes) Belief() map[string]float64 {
	out := make(map[string]float64, len(g.names))
	for i, n := range g.names {
		out[n] = g.belief[i]
	}
	return out
}

// Reset implements the filter contract: the next update starts from a
// uniform belief.
func (g *GridBayes) Reset() {
	g.started = false
	for i := range g.belief {
		g.belief[i] = 0
	}
}

// Name identifies the filter.
func (g *GridBayes) Name() string { return "grid-bayes" }
