// Package filter implements the client-tracking filters the paper
// names as future work (§6.2): combining "the historical location
// value and the current signal strength value to derive the current
// location", including the Bayesian filtering it calls "more powerful
// statistic tool[s]".
//
// All filters consume a stream of raw position estimates (the output
// of any localize.Locator applied per observation window) and emit
// smoothed positions:
//
//   - EWMA — exponentially weighted moving average, the simplest
//     history blend.
//   - Kalman — 2-D constant-velocity Kalman filter.
//   - Particle — sequential Monte Carlo with a random-walk motion
//     model.
//   - GridBayes — a discrete Bayes filter over the training grid,
//     consuming the per-training-point posterior that probabilistic
//     localizers expose through their candidates.
package filter

import "indoorloc/internal/geom"

// PositionFilter smooths a stream of position estimates.
type PositionFilter interface {
	// Update consumes one raw estimate and returns the filtered
	// position.
	Update(meas geom.Point) geom.Point
	// Reset clears history, starting a new track.
	Reset()
	// Name identifies the filter for reports.
	Name() string
}

// Raw is the identity filter — the no-tracking baseline every ablation
// compares against.
type Raw struct{}

// Update implements PositionFilter.
func (Raw) Update(meas geom.Point) geom.Point { return meas }

// Reset implements PositionFilter.
func (Raw) Reset() {}

// Name implements PositionFilter.
func (Raw) Name() string { return "raw" }

// EWMA blends each measurement into a running average:
// out = α·meas + (1-α)·prev. Smaller α trusts history more.
type EWMA struct {
	// Alpha is the blend factor in (0, 1]; zero value behaves as 1
	// (no smoothing) until SetAlpha or a literal sets it.
	Alpha float64

	prev    geom.Point
	started bool
}

// Update implements PositionFilter.
func (f *EWMA) Update(meas geom.Point) geom.Point {
	a := f.Alpha
	if a <= 0 || a > 1 {
		a = 1
	}
	if !f.started {
		f.prev = meas
		f.started = true
		return meas
	}
	f.prev = meas.Scale(a).Add(f.prev.Scale(1 - a))
	return f.prev
}

// Reset implements PositionFilter.
func (f *EWMA) Reset() { f.started = false; f.prev = geom.Point{} }

// Name implements PositionFilter.
func (f *EWMA) Name() string { return "ewma" }
