package filter

import "indoorloc/internal/geom"

// Kalman is a 2-D constant-velocity Kalman filter. The state is
// [x, y, vx, vy]; measurements are positions. Because the x and y
// dynamics are independent and identical, the filter runs two
// decoupled 2-state (position, velocity) filters, which keeps the
// algebra exact and allocation-free.
type Kalman struct {
	// Dt is the time step between updates in seconds (the paper's
	// observation windows). Zero value means 1.
	Dt float64
	// ProcessNoise is the acceleration noise density (feet/s²);
	// zero value means 1.
	ProcessNoise float64
	// MeasurementNoise is the standard deviation of position
	// measurements in feet; zero value means 5 (a typical RSSI
	// localization error).
	MeasurementNoise float64

	x, y    axis1D
	started bool
}

// axis1D is a position+velocity Kalman filter along one axis.
type axis1D struct {
	pos, vel      float64
	p11, p12, p22 float64 // covariance (symmetric)
}

// Update implements PositionFilter.
func (k *Kalman) Update(meas geom.Point) geom.Point {
	dt := k.Dt
	if dt <= 0 {
		dt = 1
	}
	q := k.ProcessNoise
	if q <= 0 {
		q = 1
	}
	r := k.MeasurementNoise
	if r <= 0 {
		r = 5
	}
	if !k.started {
		k.x = axis1D{pos: meas.X, p11: r * r, p22: 100}
		k.y = axis1D{pos: meas.Y, p11: r * r, p22: 100}
		k.started = true
		return meas
	}
	k.x.step(meas.X, dt, q, r)
	k.y.step(meas.Y, dt, q, r)
	return geom.Pt(k.x.pos, k.y.pos)
}

// step runs one predict+update cycle along one axis.
func (a *axis1D) step(z, dt, q, r float64) {
	// Predict: x' = F x with F = [1 dt; 0 1].
	a.pos += a.vel * dt
	// P' = F P Fᵀ + Q, Q from white acceleration noise.
	dt2 := dt * dt
	dt3 := dt2 * dt
	dt4 := dt2 * dt2
	p11 := a.p11 + 2*dt*a.p12 + dt2*a.p22 + q*dt4/4
	p12 := a.p12 + dt*a.p22 + q*dt3/2
	p22 := a.p22 + q*dt2
	// Update with measurement z of position (H = [1 0]).
	s := p11 + r*r
	k1 := p11 / s
	k2 := p12 / s
	innov := z - a.pos
	a.pos += k1 * innov
	a.vel += k2 * innov
	a.p11 = (1 - k1) * p11
	a.p12 = (1 - k1) * p12
	a.p22 = p22 - k2*p12
}

// Velocity returns the current velocity estimate in feet per second.
func (k *Kalman) Velocity() geom.Point { return geom.Pt(k.x.vel, k.y.vel) }

// Reset implements PositionFilter.
func (k *Kalman) Reset() {
	k.x = axis1D{}
	k.y = axis1D{}
	k.started = false
}

// Name implements PositionFilter.
func (k *Kalman) Name() string { return "kalman" }
