package filter

import (
	"math"
	"math/rand"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// Particle is a sequential Monte Carlo (particle) filter with a
// random-walk motion model: particles diffuse by MotionSigma each
// step, are reweighted by a Gaussian measurement likelihood around the
// raw estimate, and systematically resampled when the effective sample
// size collapses. The filtered position is the weighted particle mean.
type Particle struct {
	// N is the particle count; zero value means 500.
	N int
	// MotionSigma is the per-step diffusion in feet; zero means 3.
	MotionSigma float64
	// MeasurementSigma is the measurement noise in feet; zero means 6.
	MeasurementSigma float64
	// Bounds, when non-zero, clamps particles into the floor area.
	Bounds geom.Rect
	// Rng supplies randomness; nil means a fixed-seed source, keeping
	// runs reproducible by default.
	Rng *rand.Rand

	xs, ys, ws []float64
	started    bool
}

func (f *Particle) rng() *rand.Rand {
	if f.Rng == nil {
		f.Rng = rand.New(rand.NewSource(1))
	}
	return f.Rng
}

func (f *Particle) n() int {
	if f.N <= 0 {
		return 500
	}
	return f.N
}

// Update implements PositionFilter.
func (f *Particle) Update(meas geom.Point) geom.Point {
	n := f.n()
	motion := f.MotionSigma
	if motion <= 0 {
		motion = 3
	}
	msigma := f.MeasurementSigma
	if msigma <= 0 {
		msigma = 6
	}
	rng := f.rng()
	if !f.started {
		// Initialise the cloud around the first measurement.
		f.xs = make([]float64, n)
		f.ys = make([]float64, n)
		f.ws = make([]float64, n)
		for i := 0; i < n; i++ {
			f.xs[i] = meas.X + rng.NormFloat64()*msigma
			f.ys[i] = meas.Y + rng.NormFloat64()*msigma
			f.ws[i] = 1 / float64(n)
		}
		f.clampAll()
		f.started = true
		return f.mean()
	}
	// Motion: random-walk diffusion.
	for i := 0; i < n; i++ {
		f.xs[i] += rng.NormFloat64() * motion
		f.ys[i] += rng.NormFloat64() * motion
	}
	f.clampAll()
	// Measurement update.
	sum := 0.0
	for i := 0; i < n; i++ {
		dx := f.xs[i] - meas.X
		dy := f.ys[i] - meas.Y
		w := f.ws[i] * stats.GaussianPDF(math.Hypot(dx, dy), 0, msigma)
		f.ws[i] = w
		sum += w
	}
	if sum <= 0 {
		// Degenerate: all particles impossibly far. Reseed at the
		// measurement rather than dividing by zero.
		f.started = false
		return f.Update(meas)
	}
	ess := 0.0
	for i := 0; i < n; i++ {
		f.ws[i] /= sum
		ess += f.ws[i] * f.ws[i]
	}
	if 1/ess < float64(n)/2 {
		f.resample()
	}
	return f.mean()
}

// mean returns the weighted particle centroid.
func (f *Particle) mean() geom.Point {
	var x, y float64
	for i := range f.xs {
		x += f.ws[i] * f.xs[i]
		y += f.ws[i] * f.ys[i]
	}
	return geom.Pt(x, y)
}

// resample performs systematic (low-variance) resampling.
func (f *Particle) resample() {
	n := len(f.xs)
	xs := make([]float64, n)
	ys := make([]float64, n)
	step := 1 / float64(n)
	u := f.rng().Float64() * step
	cum := f.ws[0]
	j := 0
	for i := 0; i < n; i++ {
		for u > cum && j < n-1 {
			j++
			cum += f.ws[j]
		}
		xs[i] = f.xs[j]
		ys[i] = f.ys[j]
		u += step
	}
	f.xs, f.ys = xs, ys
	for i := range f.ws {
		f.ws[i] = step
	}
}

func (f *Particle) clampAll() {
	if f.Bounds.Width() == 0 && f.Bounds.Height() == 0 {
		return
	}
	for i := range f.xs {
		p := f.Bounds.Clamp(geom.Pt(f.xs[i], f.ys[i]))
		f.xs[i], f.ys[i] = p.X, p.Y
	}
}

// Reset implements PositionFilter.
func (f *Particle) Reset() {
	f.xs, f.ys, f.ws = nil, nil, nil
	f.started = false
}

// Name implements PositionFilter.
func (f *Particle) Name() string { return "particle" }
