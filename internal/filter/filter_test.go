package filter

import (
	"math"
	"math/rand"
	"testing"

	"indoorloc/internal/geom"
)

// walkPath generates a straight walk with Gaussian measurement noise.
func walkPath(n int, noise float64, seed int64) (truth, meas []geom.Point) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := geom.Pt(5+float64(i)*0.8, 20) // 0.8 ft per step along y=20
		truth = append(truth, p)
		meas = append(meas, geom.Pt(
			p.X+rng.NormFloat64()*noise,
			p.Y+rng.NormFloat64()*noise,
		))
	}
	return truth, meas
}

func rmse(truth, est []geom.Point) float64 {
	s := 0.0
	for i := range truth {
		d := truth[i].Dist(est[i])
		s += d * d
	}
	return math.Sqrt(s / float64(len(truth)))
}

func runFilter(f PositionFilter, meas []geom.Point) []geom.Point {
	out := make([]geom.Point, len(meas))
	for i, m := range meas {
		out[i] = f.Update(m)
	}
	return out
}

func TestRawIdentity(t *testing.T) {
	var f Raw
	if f.Name() != "raw" {
		t.Errorf("Name = %q", f.Name())
	}
	p := geom.Pt(3, 4)
	if f.Update(p) != p {
		t.Error("raw filter changed the measurement")
	}
	f.Reset() // must not panic
}

func TestEWMASmoothing(t *testing.T) {
	truth, meas := walkPath(60, 5, 1)
	f := &EWMA{Alpha: 0.3}
	if f.Name() != "ewma" {
		t.Errorf("Name = %q", f.Name())
	}
	est := runFilter(f, meas)
	if rmse(truth, est) >= rmse(truth, meas) {
		t.Errorf("EWMA did not reduce RMSE: %.2f vs %.2f",
			rmse(truth, est), rmse(truth, meas))
	}
	// First output is the first measurement.
	if est[0] != meas[0] {
		t.Error("first output should pass through")
	}
}

func TestEWMAAlphaOneIsIdentity(t *testing.T) {
	_, meas := walkPath(10, 3, 2)
	f := &EWMA{Alpha: 1}
	est := runFilter(f, meas)
	for i := range meas {
		if est[i] != meas[i] {
			t.Fatalf("alpha=1 changed measurement %d", i)
		}
	}
	// Zero alpha defaults to identity too (documented zero-value rule).
	f2 := &EWMA{}
	est2 := runFilter(f2, meas)
	for i := range meas {
		if est2[i] != meas[i] {
			t.Fatalf("alpha=0 changed measurement %d", i)
		}
	}
}

func TestEWMAReset(t *testing.T) {
	f := &EWMA{Alpha: 0.2}
	f.Update(geom.Pt(100, 100))
	f.Reset()
	p := geom.Pt(0, 0)
	if got := f.Update(p); got != p {
		t.Errorf("after reset first update = %v", got)
	}
}

func TestKalmanSmoothing(t *testing.T) {
	truth, meas := walkPath(100, 5, 3)
	f := &Kalman{Dt: 1, ProcessNoise: 0.5, MeasurementNoise: 5}
	if f.Name() != "kalman" {
		t.Errorf("Name = %q", f.Name())
	}
	est := runFilter(f, meas)
	if rmse(truth, est) >= rmse(truth, meas)*0.8 {
		t.Errorf("Kalman gain too small: %.2f vs raw %.2f",
			rmse(truth, est), rmse(truth, meas))
	}
}

func TestKalmanTracksVelocity(t *testing.T) {
	// Noise-free constant-velocity walk: the filter must learn the
	// velocity and track with vanishing error.
	f := &Kalman{Dt: 1, ProcessNoise: 0.1, MeasurementNoise: 1}
	var last geom.Point
	for i := 0; i < 200; i++ {
		p := geom.Pt(float64(i)*2, float64(i)*-1)
		last = f.Update(p)
	}
	want := geom.Pt(199*2, -199)
	if last.Dist(want) > 1 {
		t.Errorf("converged to %v, want %v", last, want)
	}
	v := f.Velocity()
	if math.Abs(v.X-2) > 0.2 || math.Abs(v.Y-(-1)) > 0.2 {
		t.Errorf("velocity = %v, want (2,-1)", v)
	}
}

func TestKalmanDefaultsAndReset(t *testing.T) {
	f := &Kalman{} // all defaults
	p := geom.Pt(10, 10)
	if got := f.Update(p); got != p {
		t.Error("first update should pass through")
	}
	f.Update(geom.Pt(11, 10))
	f.Reset()
	if got := f.Update(geom.Pt(0, 0)); got != geom.Pt(0, 0) {
		t.Errorf("after reset = %v", got)
	}
}

func TestParticleSmoothing(t *testing.T) {
	truth, meas := walkPath(80, 5, 4)
	f := &Particle{
		N: 800, MotionSigma: 1.5, MeasurementSigma: 5,
		Rng: rand.New(rand.NewSource(8)),
	}
	if f.Name() != "particle" {
		t.Errorf("Name = %q", f.Name())
	}
	est := runFilter(f, meas)
	if rmse(truth, est) >= rmse(truth, meas) {
		t.Errorf("particle filter did not reduce RMSE: %.2f vs %.2f",
			rmse(truth, est), rmse(truth, meas))
	}
}

func TestParticleDeterministicDefaultSeed(t *testing.T) {
	_, meas := walkPath(20, 3, 5)
	a := runFilter(&Particle{}, meas)
	b := runFilter(&Particle{}, meas)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("default-seeded particle filter not reproducible")
		}
	}
}

func TestParticleBounds(t *testing.T) {
	bounds := geom.RectWH(0, 0, 50, 40)
	f := &Particle{
		N: 300, Bounds: bounds, MeasurementSigma: 4,
		Rng: rand.New(rand.NewSource(3)),
	}
	// Measurements outside the floor: estimates stay inside.
	for i := 0; i < 20; i++ {
		got := f.Update(geom.Pt(-30, 100))
		if !bounds.Contains(got) {
			t.Fatalf("estimate %v escaped bounds", got)
		}
	}
}

func TestParticleReset(t *testing.T) {
	f := &Particle{Rng: rand.New(rand.NewSource(2))}
	f.Update(geom.Pt(100, 100))
	f.Reset()
	got := f.Update(geom.Pt(0, 0))
	if got.Norm() > 2 {
		t.Errorf("after reset estimate %v not near new measurement", got)
	}
}

func gridPoints() map[string]geom.Point {
	pts := make(map[string]geom.Point)
	for gx := 0; gx <= 5; gx++ {
		for gy := 0; gy <= 4; gy++ {
			pts[pointName(gx, gy)] = geom.Pt(float64(gx*10), float64(gy*10))
		}
	}
	return pts
}

func pointName(gx, gy int) string {
	return string(rune('a'+gx)) + string(rune('0'+gy))
}

func TestGridBayesConvergence(t *testing.T) {
	g := NewGridBayes(gridPoints())
	if g.Name() != "grid-bayes" {
		t.Errorf("Name = %q", g.Name())
	}
	// Repeated strong evidence for c2 (= (20, 20)) must dominate.
	lik := map[string]float64{pointName(2, 2): 1.0, pointName(3, 2): 0.2}
	var name string
	var mode geom.Point
	for i := 0; i < 5; i++ {
		name, mode, _ = g.UpdateLikelihood(lik)
	}
	if name != pointName(2, 2) || mode != geom.Pt(20, 20) {
		t.Errorf("converged to %q %v", name, mode)
	}
	b := g.Belief()
	if b[pointName(2, 2)] < 0.5 {
		t.Errorf("belief at true point = %v", b[pointName(2, 2)])
	}
	// Posterior sums to 1.
	sum := 0.0
	for _, v := range b {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("belief sums to %v", sum)
	}
}

func TestGridBayesSmoothsJumps(t *testing.T) {
	g := NewGridBayes(gridPoints())
	g.MoveSigma = 8
	// Establish position at a0 = (0,0).
	at := func(n string) map[string]float64 { return map[string]float64{n: 1.0} }
	for i := 0; i < 4; i++ {
		g.UpdateLikelihood(at(pointName(0, 0)))
	}
	// One contradictory flash of evidence across the house, weaker than
	// certainty: ambiguous likelihood split 60/40 toward the far point.
	lik := map[string]float64{
		pointName(5, 4): 0.6,
		pointName(0, 0): 0.4,
	}
	name, _, mean := g.UpdateLikelihood(lik)
	// History should hold the belief near a0: the motion model says a
	// 64-ft hop in one step is implausible.
	if name != pointName(0, 0) {
		t.Errorf("one ambiguous flash moved the MAP to %q", name)
	}
	if mean.Dist(geom.Pt(0, 0)) > mean.Dist(geom.Pt(50, 40)) {
		t.Error("posterior mean jumped across the house")
	}
}

func TestGridBayesUnknownAndMissingNames(t *testing.T) {
	g := NewGridBayes(gridPoints())
	// Unknown names ignored; missing names floored, not zeroed.
	name, _, _ := g.UpdateLikelihood(map[string]float64{"nonexistent": 5})
	if name == "" {
		t.Error("no MAP returned")
	}
	b := g.Belief()
	for n, v := range b {
		if v < 0 {
			t.Errorf("negative belief at %s", n)
		}
	}
}

func TestGridBayesEmptyAndReset(t *testing.T) {
	empty := NewGridBayes(nil)
	if name, _, _ := empty.UpdateLikelihood(map[string]float64{"x": 1}); name != "" {
		t.Error("empty filter returned a name")
	}
	g := NewGridBayes(gridPoints())
	g.UpdateLikelihood(map[string]float64{pointName(1, 1): 1})
	g.Reset()
	// After reset the belief restarts uniform: a single weak update
	// should make that point the MAP again without history.
	name, _, _ := g.UpdateLikelihood(map[string]float64{pointName(4, 3): 0.01})
	if name != pointName(4, 3) {
		t.Errorf("after reset MAP = %q", name)
	}
}
