package wiscan

import "testing"

func recAt(t int64) Record {
	return Record{TimeMillis: t, BSSID: "a", RSSI: -60}
}

func TestWindowsNonOverlapping(t *testing.T) {
	var recs []Record
	for ms := int64(0); ms < 10_000; ms += 1000 {
		recs = append(recs, recAt(ms))
	}
	wins := Windows(recs, 3000, 0)
	if len(wins) != 4 { // [0,3k) [3k,6k) [6k,9k) [9k,12k)
		t.Fatalf("%d windows", len(wins))
	}
	if len(wins[0]) != 3 || len(wins[3]) != 1 {
		t.Errorf("window sizes %d...%d", len(wins[0]), len(wins[3]))
	}
	// Total records preserved across non-overlapping windows.
	total := 0
	for _, w := range wins {
		total += len(w)
	}
	if total != len(recs) {
		t.Errorf("total %d, want %d", total, len(recs))
	}
}

func TestWindowsOverlapping(t *testing.T) {
	var recs []Record
	for ms := int64(0); ms < 6000; ms += 1000 {
		recs = append(recs, recAt(ms))
	}
	wins := Windows(recs, 4000, 2000)
	if len(wins) != 3 {
		t.Fatalf("%d windows", len(wins))
	}
	// First window [0,4k) has 4 records; second [2k,6k) has 4.
	if len(wins[0]) != 4 || len(wins[1]) != 4 {
		t.Errorf("sizes %d, %d", len(wins[0]), len(wins[1]))
	}
}

func TestWindowsUnsortedInput(t *testing.T) {
	recs := []Record{recAt(5000), recAt(0), recAt(2500)}
	wins := Windows(recs, 3000, 0)
	if len(wins) != 2 {
		t.Fatalf("%d windows", len(wins))
	}
	if wins[0][0].TimeMillis != 0 || wins[0][1].TimeMillis != 2500 {
		t.Errorf("first window %v", wins[0])
	}
	// Input slice untouched.
	if recs[0].TimeMillis != 5000 {
		t.Error("input reordered")
	}
}

func TestWindowsEmptyGapsSkipped(t *testing.T) {
	recs := []Record{recAt(0), recAt(10_000)}
	wins := Windows(recs, 1000, 0)
	if len(wins) != 2 {
		t.Fatalf("%d windows (gaps should be skipped)", len(wins))
	}
}

func TestWindowsDegenerate(t *testing.T) {
	if Windows(nil, 1000, 0) != nil {
		t.Error("nil records produced windows")
	}
	if Windows([]Record{recAt(0)}, 0, 0) != nil {
		t.Error("zero window produced windows")
	}
}
