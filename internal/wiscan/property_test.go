package wiscan

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomRecord generates a valid record from quick's random source.
type randomRecord Record

// Generate implements quick.Generator, constraining fields to the
// format's legal ranges.
func (randomRecord) Generate(r *rand.Rand, _ int) reflect.Value {
	ssids := []string{"house", "coffee shop wifi", "", "net-5G", "привет"}
	rec := randomRecord{
		TimeMillis: r.Int63n(2_000_000_000_000),
		BSSID:      randomBSSID(r),
		SSID:       ssids[r.Intn(len(ssids))],
		Channel:    r.Intn(15),
		RSSI:       -r.Intn(121),
		Noise:      -80 - r.Intn(40),
	}
	return reflect.ValueOf(rec)
}

func randomBSSID(r *rand.Rand) string {
	const hex = "0123456789abcdef"
	var b strings.Builder
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.WriteByte(':')
		}
		b.WriteByte(hex[r.Intn(16)])
		b.WriteByte(hex[r.Intn(16)])
	}
	return b.String()
}

// TestWriteParsePropertyRoundTrip: anything the writer emits, the
// parser accepts and reproduces exactly.
func TestWriteParsePropertyRoundTrip(t *testing.T) {
	f := func(rrs []randomRecord) bool {
		if len(rrs) == 0 {
			return true
		}
		orig := &File{Location: "prop"}
		for _, rr := range rrs {
			orig.Records = append(orig.Records, Record(rr))
		}
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			return false
		}
		back, err := Read(&buf, "other")
		if err != nil {
			return false
		}
		if back.Location != "prop" || len(back.Records) != len(orig.Records) {
			return false
		}
		for i := range orig.Records {
			if back.Records[i] != orig.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics: arbitrary line mutations produce errors, not
// panics, and accepted records always satisfy the format's invariants.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := "1118161600123\t00:02:2d:0a:0b:0c\thouse\t6\t-61\t-96\n"
	chars := []byte("\t\n 0123456789-abcxyz:.#")
	for i := 0; i < 2000; i++ {
		b := []byte(strings.Repeat(base, 1+rng.Intn(3)))
		// Mutate a few bytes.
		for m := 0; m < 1+rng.Intn(5); m++ {
			b[rng.Intn(len(b))] = chars[rng.Intn(len(chars))]
		}
		f, err := Read(bytes.NewReader(b), "fuzz")
		if err != nil {
			continue
		}
		for _, rec := range f.Records {
			if rec.RSSI > 0 || rec.RSSI < -120 {
				t.Fatalf("accepted invalid RSSI %d from %q", rec.RSSI, b)
			}
			if rec.TimeMillis < 0 {
				t.Fatalf("accepted negative timestamp from %q", b)
			}
			if rec.BSSID == "" {
				t.Fatalf("accepted empty BSSID from %q", b)
			}
		}
	}
}
