package wiscan

import (
	"archive/zip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Collection is a set of wi-scan files keyed by location name — what
// the Training Database Generator receives. The paper passes it as
// "a string representing either the name of a directory containing the
// wi-scan files or a zip file containing the wi-scan files";
// ReadCollection accepts exactly that.
type Collection struct {
	Files map[string]*File
}

// Locations returns the collection's location names, sorted.
func (c *Collection) Locations() []string {
	out := make([]string, 0, len(c.Files))
	for name := range c.Files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalRecords returns the number of records across all files.
func (c *Collection) TotalRecords() int {
	n := 0
	for _, f := range c.Files {
		n += len(f.Records)
	}
	return n
}

// ReadCollection loads a wi-scan collection from path: a directory
// (walked recursively) or a .zip archive. Files with extension .wiscan
// or .txt are parsed; anything else is skipped. Nested directories are
// flattened: the location name is the file's base name without
// extension unless a "# location:" header overrides it. Duplicate
// location names across subdirectories are an error, since a training
// database must key observations by location.
func ReadCollection(path string) (*Collection, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("wiscan: %w", err)
	}
	if info.IsDir() {
		return readDirCollection(path)
	}
	if strings.EqualFold(filepath.Ext(path), ".zip") {
		return readZipCollection(path)
	}
	return nil, fmt.Errorf("wiscan: %s is neither a directory nor a .zip archive", path)
}

func isScanFile(name string) bool {
	ext := strings.ToLower(filepath.Ext(name))
	return ext == ".wiscan" || ext == ".txt"
}

func locationFromName(name string) string {
	base := filepath.Base(name)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func readDirCollection(dir string) (*Collection, error) {
	c := &Collection{Files: make(map[string]*File)}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !isScanFile(path) {
			return nil
		}
		fh, err := os.Open(path)
		if err != nil {
			return err
		}
		defer fh.Close()
		return c.add(fh, path)
	})
	if err != nil {
		return nil, fmt.Errorf("wiscan: walking %s: %w", dir, err)
	}
	if len(c.Files) == 0 {
		return nil, fmt.Errorf("wiscan: no wi-scan files under %s", dir)
	}
	return c, nil
}

func readZipCollection(path string) (*Collection, error) {
	zr, err := zip.OpenReader(path)
	if err != nil {
		return nil, fmt.Errorf("wiscan: opening zip %s: %w", path, err)
	}
	defer zr.Close()
	c := &Collection{Files: make(map[string]*File)}
	for _, entry := range zr.File {
		if entry.FileInfo().IsDir() || !isScanFile(entry.Name) {
			continue
		}
		rc, err := entry.Open()
		if err != nil {
			return nil, fmt.Errorf("wiscan: zip entry %s: %w", entry.Name, err)
		}
		err = c.add(rc, entry.Name)
		rc.Close()
		if err != nil {
			return nil, err
		}
	}
	if len(c.Files) == 0 {
		return nil, fmt.Errorf("wiscan: no wi-scan files in %s", path)
	}
	return c, nil
}

// add parses one stream into the collection under the location derived
// from name (or the file's own header).
func (c *Collection) add(r io.Reader, name string) error {
	f, err := Read(r, locationFromName(name))
	if err != nil {
		return fmt.Errorf("wiscan: %s: %w", name, err)
	}
	if _, dup := c.Files[f.Location]; dup {
		return fmt.Errorf("wiscan: duplicate location %q (file %s)", f.Location, name)
	}
	c.Files[f.Location] = f
	return nil
}

// WriteDir writes every file in the collection into dir as
// <location>.wiscan, creating dir if needed.
func (c *Collection) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wiscan: %w", err)
	}
	for name, f := range c.Files {
		path := filepath.Join(dir, name+".wiscan")
		fh, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("wiscan: %w", err)
		}
		if err := Write(fh, f); err != nil {
			fh.Close()
			return fmt.Errorf("wiscan: writing %s: %w", path, err)
		}
		if err := fh.Close(); err != nil {
			return fmt.Errorf("wiscan: closing %s: %w", path, err)
		}
	}
	return nil
}

// WriteZip writes the collection as a zip archive at path, one
// <location>.wiscan entry per file, sorted for reproducible bytes.
func (c *Collection) WriteZip(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wiscan: %w", err)
	}
	zw := zip.NewWriter(fh)
	for _, name := range c.Locations() {
		w, err := zw.Create(name + ".wiscan")
		if err != nil {
			fh.Close()
			return fmt.Errorf("wiscan: zip entry %s: %w", name, err)
		}
		if err := Write(w, c.Files[name]); err != nil {
			fh.Close()
			return fmt.Errorf("wiscan: writing zip entry %s: %w", name, err)
		}
	}
	if err := zw.Close(); err != nil {
		fh.Close()
		return fmt.Errorf("wiscan: finalising zip: %w", err)
	}
	return fh.Close()
}
