package wiscan

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWiscanParse throws arbitrary bytes at the wi-scan reader. Two
// properties must hold: Read never panics, and any file it accepts
// survives a Write/Read round trip with identical records — the
// canonical form Write emits must mean the same thing Read understood.
func FuzzWiscanParse(f *testing.F) {
	f.Add([]byte("# wi-scan v1\n# location: kitchen\n1118161600123\t00:02:2d:0a:0b:0c\thouse\t6\t-61\t-96\n1118161600123\t00:02:2d:0a:0b:0d\thouse\t11\t-74\t-95\n"))
	f.Add([]byte("1118161600123 00:02:2d:0a:0b:0c house 6 -61 -96\r\n1118161601130 00:02:2d:0a:0b:0c house 6 -62\r\n"))
	f.Add([]byte("# comment only\n\n"))
	f.Add([]byte("not-a-timestamp\tbssid\tssid\t1\t-50\n"))
	f.Add([]byte("123\t00:11:22:33:44:55\t\t6\t-1\t0\n"))
	f.Add([]byte("9\taa\tan ssid with spaces\t-3\t-120\t-200\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Read(bytes.NewReader(data), "fuzz-location")
		if err != nil {
			return
		}
		if len(parsed.Records) == 0 {
			t.Fatal("Read returned nil error but no records")
		}
		var out bytes.Buffer
		if err := Write(&out, parsed); err != nil {
			t.Fatalf("Write of accepted file failed: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()), parsed.Location)
		if err != nil {
			t.Fatalf("re-Read of canonical form failed: %v\ncanonical:\n%s", err, out.Bytes())
		}
		if again.Location != parsed.Location {
			t.Fatalf("location changed across round trip: %q -> %q", parsed.Location, again.Location)
		}
		if !reflect.DeepEqual(again.Records, parsed.Records) {
			t.Fatalf("records changed across round trip:\nfirst:  %#v\nsecond: %#v", parsed.Records, again.Records)
		}
	})
}
