package wiscan

import "sort"

// Windows slices a continuous capture into observation windows of
// windowMillis, starting a new window every strideMillis — the
// pre-processing a tracking client applies to its scan log before
// localizing each window. Records are bucketed by timestamp; windows
// with no records are skipped. strideMillis ≤ 0 means non-overlapping
// windows (stride = window).
func Windows(recs []Record, windowMillis, strideMillis int64) [][]Record {
	if len(recs) == 0 || windowMillis <= 0 {
		return nil
	}
	if strideMillis <= 0 {
		strideMillis = windowMillis
	}
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].TimeMillis < sorted[j].TimeMillis
	})
	first := sorted[0].TimeMillis
	last := sorted[len(sorted)-1].TimeMillis
	var out [][]Record
	for start := first; start <= last; start += strideMillis {
		end := start + windowMillis
		// Records in [start, end).
		lo := sort.Search(len(sorted), func(i int) bool {
			return sorted[i].TimeMillis >= start
		})
		hi := sort.Search(len(sorted), func(i int) bool {
			return sorted[i].TimeMillis >= end
		})
		if hi > lo {
			win := make([]Record, hi-lo)
			copy(win, sorted[lo:hi])
			out = append(out, win)
		}
	}
	return out
}
